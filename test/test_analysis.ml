(* The static authorization-dependency analysis (lib/analysis). Four
   pillars:

   1. deltas — policies diff structurally at the view level: no-op rule
      rewrites produce empty deltas, single-permission revocations
      produce exactly the facts that changed, and schema changes are
      flagged incompatible rather than diffed;
   2. soundness — the qcheck property the serve layer's incremental
      invalidation rests on: as long as a policy delta removes no fact
      in a plan's dependency set, the verifier's verdict on that plan
      is unchanged (grant overlaps included — monotonicity), and for
      revoke-only disjoint deltas the query stays plannable — serving
      the retained plan never masks a query that should now be denied.
      (A fresh replan may land on a *differently shaped* equally valid
      plan — the optimizer's local search is not stable under deleting
      never-chosen candidates — which is why the churn bench compares
      responses as canonical row multisets, not bytes);
   3. audit — who-sees-what on the paper's running example, including
      join paths, with filters and a stable rendering;
   4. canonical diagnostics — two independent builds of the same
      failing verification render byte-identically, node ids cited as
      preorder positions rather than allocation-counter values. *)

open Relalg
open Authz

let env = Policy_dsl.parse Policy_dsl.example
let policy = env.Policy_dsl.policy

let user =
  List.find (fun s -> s.Subject.role = Subject.User) env.Policy_dsl.subjects

let running_query =
  "select T, avg(P) from Hosp join Ins on S=C where D='stroke' \
   group by T having P>100"

let parse_running () =
  Mpq_sql.Sql_plan.parse_and_plan ~catalog:env.Policy_dsl.schemas
    running_query

let fact s a level =
  { Analysis.Fact.subject = s; attr = Attr.make a; level }

let fact_set_testable =
  Alcotest.testable
    (fun fmt s ->
      Format.pp_print_string fmt (Analysis.Fact.Set.to_string s))
    Analysis.Fact.Set.equal

(* --- deltas ----------------------------------------------------------- *)

let diff_exn old_policy new_policy =
  match Analysis.Delta.diff ~old_policy ~new_policy () with
  | `Delta d -> d
  | `Incompatible -> Alcotest.fail "unexpected Incompatible"

let test_delta_empty () =
  let d = diff_exn policy policy in
  Alcotest.(check bool) "identical policies: empty delta" true
    (Analysis.Delta.is_empty d);
  (* a rule-list no-op: re-parsing the same text is a different value
     but the same views *)
  let reparsed = (Policy_dsl.parse Policy_dsl.example).Policy_dsl.policy in
  Alcotest.(check bool) "re-parse: empty delta" true
    (Analysis.Delta.is_empty (diff_exn policy reparsed))

let test_delta_single_revocation () =
  let revoked =
    (Policy_dsl.parse
       (Str.global_replace
          (Str.regexp_string "authorize Ins to Y plain P enc C")
          "authorize Ins to Y enc C" Policy_dsl.example))
      .Policy_dsl.policy
  in
  let d = diff_exn policy revoked in
  Alcotest.check fact_set_testable "exactly one fact removed"
    (Analysis.Fact.Set.singleton
       (fact (Subject.provider "Y") "P" Analysis.Fact.Plain))
    d.Analysis.Delta.removed;
  Alcotest.check fact_set_testable "nothing added"
    Analysis.Fact.Set.empty d.Analysis.Delta.added;
  Alcotest.(check bool) "not grant-only" false (Analysis.Delta.grant_only d);
  (* the reverse direction is the grant *)
  let d' = diff_exn revoked policy in
  Alcotest.(check bool) "restore is grant-only" true
    (Analysis.Delta.grant_only d');
  Alcotest.check fact_set_testable "the same fact, added back"
    (Analysis.Fact.Set.singleton
       (fact (Subject.provider "Y") "P" Analysis.Fact.Plain))
    d'.Analysis.Delta.added

let test_delta_implicit_rule () =
  (* writing a relation's owner an explicit rule silently replaces its
     implicit full-plaintext view — a view-level diff must see the
     shrink even though, rule-for-rule, something was "added" *)
  let schemas = [ Gen.rel3 ] in
  let implicit = Authorization.make ~schemas [] in
  let explicit =
    Authorization.make ~schemas
      [ Authorization.rule ~rel:"R3" ~plain:[ "h" ] (Authorization.To (Subject.authority "A2")) ]
  in
  let d = diff_exn implicit explicit in
  Alcotest.check fact_set_testable "owner lost k"
    (Analysis.Fact.Set.singleton
       (fact (Subject.authority "A2") "k" Analysis.Fact.Plain))
    d.Analysis.Delta.removed

let test_delta_incompatible () =
  let renamed =
    Schema.make ~name:"R3" ~owner:"A2"
      [ ("h", Schema.Tint); ("kk", Schema.Tint) ]
  in
  let a = Authorization.make ~schemas:[ Gen.rel3 ] [] in
  let b = Authorization.make ~schemas:[ renamed ] [] in
  match Analysis.Delta.diff ~old_policy:a ~new_policy:b () with
  | `Incompatible -> ()
  | `Delta _ -> Alcotest.fail "schema change must be incompatible"

(* --- soundness (qcheck) ----------------------------------------------- *)

let verifier_ok ~policy (r : Planner.Optimizer.result) =
  Verify.Verifier.ok
    (Verify.Verifier.run
       { Verify.Verifier.policy;
         config = r.Planner.Optimizer.config;
         extended = r.Planner.Optimizer.extended;
         clusters = r.Planner.Optimizer.clusters;
         requests = r.Planner.Optimizer.requests })

let prop_deps_soundness =
  QCheck.Test.make ~count:60
    ~name:
      "no removed dependency => verdict unchanged; revoke-only disjoint \
       => still plannable"
    Gen.arbitrary_plan_policy
    (fun (plan, policy0) ->
      match
        Planner.Optimizer.plan ~policy:policy0 ~subjects:Gen.subjects
          ~deliver_to:Gen.user plan
      with
      | exception Planner.Optimizer.No_candidate _ -> true
      | exception Planner.Optimizer.User_not_authorized _ -> true
      | exception Planner.Optimizer.Verification_failed _ -> true
      | r ->
          let deps =
            Analysis.Deps.of_extended ~deliver_to:Gen.user ~original:plan
              ~extended:r.Planner.Optimizer.extended
              ~clusters:r.Planner.Optimizer.clusters ()
          in
          if Analysis.Fact.Set.is_empty deps then
            QCheck.Test.fail_report "planned query has empty dependency set";
          let st = Random.State.make [| Hashtbl.hash (Analysis.Fact.Set.to_string deps) |] in
          (* walk a chain of mutations, checking the invalidation
             protocol's claims against the *cached* plan [r] for as
             long as the protocol would retain it *)
          let rec walk p steps =
            if steps = 0 then true
            else
              let p' = Gen.mutate_policy ~mode:`Mixed p st in
              match Analysis.Delta.diff ~subjects:Gen.subjects ~old_policy:p
                      ~new_policy:p' ()
              with
              | `Incompatible ->
                  QCheck.Test.fail_report "mutation changed the schemas"
              | `Delta d ->
                  let removed_hit =
                    not
                      (Analysis.Fact.Set.is_empty
                         (Analysis.Fact.Set.inter d.Analysis.Delta.removed deps))
                  in
                  if removed_hit then true
                    (* protocol drops the entry; nothing further to hold *)
                  else begin
                    (* grants may overlap the dependency set; revokes do
                       not: the verdict must be unchanged *)
                    if not (verifier_ok ~policy:p' r) then
                      QCheck.Test.fail_reportf
                        "verdict flipped without a removed dependency\n\
                         delta %s"
                        (Analysis.Delta.to_string d);
                    (if
                       Analysis.Fact.Set.is_empty d.Analysis.Delta.added
                       && not (Analysis.Delta.is_empty d)
                     then
                       (* revoke-only and disjoint: the query must stay
                          plannable, so serving the retained entry never
                          masks a rejection. (The fresh plan's *shape*
                          may differ — the local search is not stable
                          under deleting never-chosen candidates — so
                          equal results are asserted over executions in
                          the churn bench, canonically, not here.) *)
                       match
                         Planner.Optimizer.plan ~policy:p'
                           ~subjects:Gen.subjects ~deliver_to:Gen.user plan
                       with
                       | (_ : Planner.Optimizer.result) -> ()
                       | exception e ->
                           QCheck.Test.fail_reportf
                             "disjoint revoke made the query unplannable: %s"
                             (Printexc.to_string e));
                    walk p' (steps - 1)
                  end
          in
          walk policy0 4)

(* --- audit ------------------------------------------------------------ *)

let has_line findings line =
  List.exists
    (fun l -> String.equal l line)
    (String.split_on_char '\n' (Analysis.Audit.render findings))

let test_audit_running_example () =
  let findings = Analysis.Audit.run ~policy () in
  List.iter
    (fun line ->
      Alcotest.(check bool) (Printf.sprintf "present: %s" line) true
        (has_line findings line))
    [ "S: U plain via relation Hosp";
      "S: X enc via relation Hosp";
      "P: Y plain via relation Ins";
      (* U holds S and C plaintext, so it may run the S=C equi-join and
         observe both sides *)
      "S: U plain via join Hosp.S = Ins.C";
      (* X holds S and C encrypted only: the join is lawful over
         deterministic ciphertext, and reveals only ciphertext *)
      "S: X enc via join Hosp.S = Ins.C" ];
  List.iter
    (fun prefix ->
      Alcotest.(check bool) (Printf.sprintf "absent: %s*" prefix) false
        (List.exists
           (fun l -> String.length l >= String.length prefix
                     && String.equal (String.sub l 0 (String.length prefix)) prefix)
           (String.split_on_char '\n' (Analysis.Audit.render findings))))
    [ (* X was never granted B, directly or via any *)
      "B: X";
      (* X holds S encrypted only: no plaintext sight of S, by any path *)
      "S: X plain" ]

let test_audit_filters () =
  let all = Analysis.Audit.run ~policy () in
  let only_s = Analysis.Audit.run ~policy ~attr:"S" () in
  Alcotest.(check bool) "attr filter is a restriction" true
    (List.for_all
       (fun (f : Analysis.Audit.finding) ->
         String.equal (Attr.name f.Analysis.Audit.attr) "S")
       only_s);
  Alcotest.(check bool) "attr filter keeps all S findings" true
    (List.length only_s
    = List.length
        (List.filter
           (fun (f : Analysis.Audit.finding) ->
             String.equal (Attr.name f.Analysis.Audit.attr) "S")
           all));
  let only_u = Analysis.Audit.run ~policy ~subject:"U" () in
  Alcotest.(check bool) "subject filter is a restriction" true
    (List.for_all
       (fun (f : Analysis.Audit.finding) ->
         String.equal (Subject.name f.Analysis.Audit.subject) "U")
       only_u);
  (* deterministic output: two runs render byte-identically *)
  Alcotest.(check string) "stable rendering"
    (Analysis.Audit.render all)
    (Analysis.Audit.render (Analysis.Audit.run ~policy ()))

(* --- canonical diagnostics -------------------------------------------- *)

let test_canonical_diagnostics () =
  let revoked =
    (Policy_dsl.parse
       (Str.global_replace
          (Str.regexp_string "authorize Ins to Y plain P enc C")
          "authorize Ins to Y enc C" Policy_dsl.example))
      .Policy_dsl.policy
  in
  (* verify a plan built under the full policy against the revoked one:
     guaranteed errors, and every build allocates fresh node ids *)
  let build () =
    let r =
      Planner.Optimizer.plan ~policy ~subjects:env.Policy_dsl.subjects
        ~deliver_to:user (parse_running ())
    in
    Verify.Verifier.run
      { Verify.Verifier.policy = revoked;
        config = r.Planner.Optimizer.config;
        extended = r.Planner.Optimizer.extended;
        clusters = r.Planner.Optimizer.clusters;
        requests = r.Planner.Optimizer.requests }
  in
  let a = build () and b = build () in
  Alcotest.(check bool) "revocation produces errors" true
    (Verify.Diag.has_errors a);
  Alcotest.(check string) "independent builds render byte-identically"
    (Verify.Diag.render a) (Verify.Diag.render b);
  (* positions, not allocation ids: every cited node id is small (the
     plan has well under 100 nodes; raw allocation ids keep growing
     across builds) *)
  List.iter
    (fun (d : Verify.Diag.t) ->
      match d.Verify.Diag.node_id with
      | Some id ->
          Alcotest.(check bool)
            (Printf.sprintf "node id %d is a preorder position" id)
            true (id >= 0 && id < 100)
      | None -> ())
    b

let () =
  let qsuite =
    List.map (QCheck_alcotest.to_alcotest ~verbose:false) [ prop_deps_soundness ]
  in
  Alcotest.run "analysis"
    [ ( "delta",
        [ ("empty on identical views", `Quick, test_delta_empty);
          ("single revocation", `Quick, test_delta_single_revocation);
          ("implicit owner rule", `Quick, test_delta_implicit_rule);
          ("schema change incompatible", `Quick, test_delta_incompatible) ] );
      ("soundness", qsuite);
      ( "audit",
        [ ("running example", `Quick, test_audit_running_example);
          ("filters and stability", `Quick, test_audit_filters) ] );
      ( "diagnostics",
        [ ("canonical across builds", `Quick, test_canonical_diagnostics) ] ) ]
