(* The socket server's overload contract, asserted over real sockets:

   1. framing — every request line ends in exactly one framed response
      (status comment + CSV, or a single structured refusal line);
      accepted requests answer byte-identically to a direct
      Service.submit oracle;
   2. isolation — a session spraying garbage or vanishing mid-batch
      leaves a well-behaved neighbour's (normalized) response stream
      identical to a run where it had the server to itself, and leaves
      the shared cache statistics untouched by refused requests;
   3. overload — a backlog bound refuses the excess with structured
      shed lines (none admitted when the bound is zero), deadlines
      are refused structurally at admission and between plan and exec;
   4. shutdown — stop() drains admitted and delayed requests, flushes,
      and ends every session with EOF, not a hang;
   5. chaos — a 25-seed Netfaults sweep (slow, stall, disconnect,
      garbage) never produces an unstructured outcome: every reply
      parses, every table matches the oracle byte for byte, every
      stream ends in EOF within the timeout. *)

open Authz

let demo_tables (env : Policy_dsl.t) =
  let find name =
    List.find (fun s -> s.Relalg.Schema.name = name) env.Policy_dsl.schemas
  in
  let s x = Relalg.Value.Str x and n x = Relalg.Value.Int x in
  let v = Relalg.Value.date_of_string in
  [ ( "Hosp",
      Engine.Table.of_schema (find "Hosp")
        [ [| s "alice"; v "1980-01-01"; s "stroke"; s "tpa" |];
          [| s "bob"; v "1975-05-12"; s "stroke"; s "surgery" |];
          [| s "carol"; v "1990-09-30"; s "flu"; s "rest" |];
          [| s "dave"; v "1968-03-22"; s "stroke"; s "tpa" |] ] );
    ( "Ins",
      Engine.Table.of_schema (find "Ins")
        [ [| s "alice"; n 120 |]; [| s "bob"; n 300 |];
          [| s "carol"; n 80 |]; [| s "dave"; n 150 |] ] ) ]

let example_service () =
  let env = Policy_dsl.parse Policy_dsl.example in
  Serve.Service.create ~policy:env.Policy_dsl.policy
    ~subjects:env.Policy_dsl.subjects ~tables:(demo_tables env) ()

let queries =
  [| "select T, avg(P) from Hosp join Ins on S=C where D='stroke' group by \
      T having P>100";
     "select S, D from Hosp where T='tpa'";
     "select C, P from Ins where P>100";
     "select D, count(T) from Hosp group by D";
     "select T, P from Hosp join Ins on S=C where P>100";
     "select avg(P) from Ins" |]

(* the direct-call oracle: table bytes are a pure function of (query,
   environment, seed) — independent of cache history and of how the
   query reached the service — so a fresh service is a valid oracle
   for any accepted request *)
let oracle_csv () =
  let service = example_service () in
  Array.map
    (fun q ->
      match (Serve.Service.submit_sql service q).Serve.Service.outcome with
      | Serve.Service.Table t -> Engine.Csv.to_string t
      | Serve.Service.Rejected m -> Alcotest.failf "oracle rejected: %s" m
      | Serve.Service.Expired m -> Alcotest.failf "oracle expired: %s" m)
    queries

let with_server ?config f =
  let service = example_service () in
  let server = Serve.Server.create ?config ~service (Serve.Server.Tcp 0) in
  let addr = Serve.Server.bound_addr server in
  let d = Domain.spawn (fun () -> Serve.Server.run server) in
  let finally () =
    Serve.Server.stop server;
    Domain.join d
  in
  Fun.protect ~finally (fun () -> f server service addr)

(* timing-dependent tokens scrubbed; hit|miss folded together (cache
   history legitimately differs between a shared and a private run) *)
let normalize_reply (r : Serve.Client.reply) =
  let tag =
    match r.Serve.Client.tag with "hit" | "miss" -> "served" | t -> t
  in
  Printf.sprintf "[%d] %s%s" r.Serve.Client.line tag
    (match Serve.Client.table_csv r with
    | Some csv -> ":\n" ^ csv
    | None -> "")

let structured_tags =
  [ "served"; "rejected"; "shed"; "deadline exceeded"; "stats" ]

let check_structured (r : Serve.Client.reply) =
  let tag =
    match r.Serve.Client.tag with "hit" | "miss" -> "served" | t -> t
  in
  if
    not
      (List.mem tag structured_tags
      || String.starts_with ~prefix:"parse error" tag)
  then Alcotest.failf "unstructured reply tag %S" r.Serve.Client.tag

(* --- framing ---------------------------------------------------------- *)

let test_two_sessions () =
  let oracle = oracle_csv () in
  with_server @@ fun server _service addr ->
  let a = Serve.Client.connect addr and b = Serve.Client.connect addr in
  Serve.Client.send a queries.(0);
  Serve.Client.send b queries.(1);
  Serve.Client.send a queries.(2);
  Serve.Client.send b queries.(0);
  Serve.Client.shutdown_send a;
  Serve.Client.shutdown_send b;
  let ra = Serve.Client.recv_all a and rb = Serve.Client.recv_all b in
  Serve.Client.close a;
  Serve.Client.close b;
  Alcotest.(check int) "a got both replies" 2 (List.length ra);
  Alcotest.(check int) "b got both replies" 2 (List.length rb);
  let check_table qi (r : Serve.Client.reply) =
    match Serve.Client.table_csv r with
    | Some csv ->
        Alcotest.(check string)
          (Printf.sprintf "oracle bytes for query %d" qi)
          oracle.(qi) csv
    | None -> Alcotest.failf "expected a table, got %s" r.Serve.Client.tag
  in
  (match List.sort (fun (x : Serve.Client.reply) y -> compare x.line y.line) ra with
  | [ r1; r2 ] ->
      check_table 0 r1;
      check_table 2 r2
  | _ -> assert false);
  (match List.sort (fun (x : Serve.Client.reply) y -> compare x.line y.line) rb with
  | [ r1; r2 ] ->
      check_table 1 r1;
      check_table 0 r2
  | _ -> assert false);
  let st = Serve.Server.stats server in
  Alcotest.(check int) "two sessions" 2 st.Serve.Server.sessions;
  Alcotest.(check int) "four accepted" 4 st.Serve.Server.accepted;
  Alcotest.(check int) "four tables" 4 st.Serve.Server.tables

let test_stats_directive () =
  with_server @@ fun _server _service addr ->
  let c = Serve.Client.connect addr in
  Serve.Client.send c "\\stats";
  Serve.Client.send c "\\policy /tmp/nope.mpq";
  Serve.Client.shutdown_send c;
  let rs = Serve.Client.recv_all c in
  Serve.Client.close c;
  match rs with
  | [ stats; refused ] ->
      Alcotest.(check string) "stats answered" "stats" stats.Serve.Client.tag;
      Alcotest.(check string)
        "mutating directive refused structurally" "rejected"
        refused.Serve.Client.tag
  | rs -> Alcotest.failf "expected 2 replies, got %d" (List.length rs)

(* --- isolation -------------------------------------------------------- *)

let victim_run addr =
  let c = Serve.Client.connect addr in
  Array.iteri (fun i _ -> Serve.Client.send c queries.(i)) queries;
  Serve.Client.shutdown_send c;
  let rs = Serve.Client.recv_all c in
  Serve.Client.close c;
  List.map normalize_reply rs

let test_session_isolation () =
  (* the victim alone on a fresh server *)
  let solo = with_server (fun _ _ addr -> victim_run addr) in
  (* the victim next to a garbage-spraying session and one that
     vanishes owing responses *)
  let shared =
    with_server @@ fun _server _service addr ->
    let garbler = Serve.Client.connect addr in
    let vanisher = Serve.Client.connect addr in
    Serve.Client.send garbler "\x01\x02 not ( sql | at ; all \x03";
    Serve.Client.send vanisher queries.(0);
    Serve.Client.send vanisher queries.(1);
    Serve.Client.close vanisher;
    let rs = victim_run addr in
    Serve.Client.send garbler ")))) still not sql ((((";
    Serve.Client.shutdown_send garbler;
    let gr = Serve.Client.recv_all garbler in
    Serve.Client.close garbler;
    List.iter check_structured gr;
    Alcotest.(check int) "garbler got structured refusals" 2 (List.length gr);
    List.iter
      (fun (r : Serve.Client.reply) ->
        Alcotest.(check bool)
          (Printf.sprintf "refusal tag %S" r.Serve.Client.tag)
          true
          (String.starts_with ~prefix:"parse error" r.Serve.Client.tag))
      gr;
    rs
  in
  Alcotest.(check (list string))
    "victim stream identical next to faulty sessions" solo shared

(* --- overload --------------------------------------------------------- *)

let test_shed_structured () =
  with_server
    ~config:{ Serve.Server.default_config with Serve.Server.backlog = 0 }
  @@ fun server service addr ->
  let c = Serve.Client.connect addr in
  for i = 0 to 4 do
    Serve.Client.send c queries.(i mod Array.length queries)
  done;
  Serve.Client.shutdown_send c;
  let rs = Serve.Client.recv_all c in
  Serve.Client.close c;
  Alcotest.(check int) "every request answered" 5 (List.length rs);
  List.iter
    (fun (r : Serve.Client.reply) ->
      Alcotest.(check string) "structured shed" "shed" r.Serve.Client.tag;
      Alcotest.(check (list string)) "single line, no body" []
        r.Serve.Client.body)
    rs;
  let st = Serve.Server.stats server in
  Alcotest.(check int) "all shed" 5 st.Serve.Server.shed;
  Alcotest.(check int) "none accepted" 0 st.Serve.Server.accepted;
  (* a refused request never touches the service or its cache *)
  let ss = Serve.Service.stats service in
  Alcotest.(check int) "service untouched" 0 ss.Serve.Service.queries;
  Alcotest.(check int) "no hits" 0 ss.Serve.Service.hits;
  Alcotest.(check int) "no misses" 0 ss.Serve.Service.misses

let test_deadline_at_admission () =
  with_server
    ~config:
      { Serve.Server.default_config with
        Serve.Server.deadline_ms = Some (-1) }
  @@ fun server service addr ->
  let c = Serve.Client.connect addr in
  for i = 0 to 3 do
    Serve.Client.send c queries.(i)
  done;
  Serve.Client.shutdown_send c;
  let rs = Serve.Client.recv_all c in
  Serve.Client.close c;
  Alcotest.(check int) "every request answered" 4 (List.length rs);
  List.iter
    (fun (r : Serve.Client.reply) ->
      Alcotest.(check string) "structured expiry" "deadline exceeded"
        r.Serve.Client.tag;
      Alcotest.(check bool) "names the checkpoint" true
        (r.Serve.Client.info = "at admission"))
    rs;
  let st = Serve.Server.stats server in
  Alcotest.(check int) "counted as expired" 4 st.Serve.Server.expired;
  (* the service saw them (and counted them) but its cache never moved *)
  let ss = Serve.Service.stats service in
  Alcotest.(check int) "service counted expiries" 4 ss.Serve.Service.expired;
  Alcotest.(check int) "no hits" 0 ss.Serve.Service.hits;
  Alcotest.(check int) "no misses" 0 ss.Serve.Service.misses;
  Alcotest.(check int) "no cache entries" 0
    (List.length (Serve.Service.cache_keys service))

(* between plan and exec: a fake clock on the service itself forces the
   second checkpoint deterministically — admission passes at t=0, the
   plan lands, then the clock jumps past the deadline *)
let test_deadline_between_plan_and_exec () =
  let env = Policy_dsl.parse Policy_dsl.example in
  let calls = ref 0 in
  let now () =
    incr calls;
    if !calls = 1 then 0.0 else 100.0
  in
  let service =
    Serve.Service.create ~now ~policy:env.Policy_dsl.policy
      ~subjects:env.Policy_dsl.subjects ~tables:(demo_tables env) ()
  in
  let q = Serve.Service.parse service queries.(0) in
  let r =
    Serve.Service.submit_request service
      (Serve.Service.request ~deadline:50.0 q)
  in
  (match r.Serve.Service.outcome with
  | Serve.Service.Expired why ->
      Alcotest.(check string) "names the checkpoint" "between plan and exec"
        why
  | Serve.Service.Table _ -> Alcotest.fail "expired request served"
  | Serve.Service.Rejected m -> Alcotest.failf "rejected instead: %s" m);
  Alcotest.(check bool) "the plan itself landed" true
    (r.Serve.Service.planned <> None);
  (* the planning work was not wasted: the entry is cached and a live
     resubmission hits *)
  let r2 = Serve.Service.submit service q in
  Alcotest.(check bool) "resubmission hits" true
    (r2.Serve.Service.status = Serve.Service.Hit)

(* --- graceful shutdown ------------------------------------------------ *)

let test_shutdown_drains () =
  (* every request is held 5 s by a slow fault; stop() must promote and
     answer them all rather than wait out the delays *)
  let config =
    { Serve.Server.default_config with
      Serve.Server.netfaults = Serve.Netfaults.parse "slow=5000" }
  in
  let t0 = Unix.gettimeofday () in
  let replies =
    with_server ~config @@ fun server _service addr ->
    let c = Serve.Client.connect addr in
    for i = 0 to 3 do
      Serve.Client.send c queries.(i)
    done;
    (* give the loop time to read the lines into the delayed queue *)
    Unix.sleepf 0.3;
    Serve.Server.stop server;
    let rs = Serve.Client.recv_all c in
    Serve.Client.close c;
    rs
  in
  let wall = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "all four answered at shutdown" 4
    (List.length replies);
  List.iter
    (fun (r : Serve.Client.reply) ->
      match Serve.Client.table_csv r with
      | Some _ -> ()
      | None -> Alcotest.failf "expected a table, got %s" r.Serve.Client.tag)
    replies;
  Alcotest.(check bool)
    (Printf.sprintf "drain promoted the delays (%.1f s)" wall)
    true (wall < 4.0)

(* --- netfaults determinism -------------------------------------------- *)

let schedule_trace ~seed spec n =
  let s = Serve.Netfaults.session ~seed spec n in
  let reqs =
    List.init 10 (fun _ ->
        let v = Serve.Netfaults.on_request s in
        (v.Serve.Netfaults.delay_ms, v.Serve.Netfaults.garbage))
  in
  ( Serve.Netfaults.active s,
    Serve.Netfaults.stall_after s,
    Serve.Netfaults.disconnect_after s,
    reqs,
    Serve.Netfaults.garble s "select x from y" )

let test_netfaults_deterministic () =
  let spec =
    Serve.Netfaults.parse "sessions=0.6,slow=30@0.3,garbage=0.2,stall@6"
  in
  for i = 0 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "session %d schedule reproducible" i)
      true
      (schedule_trace ~seed:42 spec i = schedule_trace ~seed:42 spec i)
  done;
  (* the spec round-trips *)
  Alcotest.(check string) "render/parse round-trip"
    (Serve.Netfaults.render spec)
    (Serve.Netfaults.render
       (Serve.Netfaults.parse (Serve.Netfaults.render spec)));
  (* and different seeds move at least one session's schedule *)
  Alcotest.(check bool) "seed matters" true
    (List.init 8 (fun i -> schedule_trace ~seed:1 spec i)
    <> List.init 8 (fun i -> schedule_trace ~seed:2 spec i))

(* --- the chaos sweep -------------------------------------------------- *)

let chaos_spec = "sessions=0.7,slow=25@0.3,garbage=0.15,stall@6,disconnect@4"
let chaos_sessions = 3
let chaos_requests = 8

let run_chaos_seed ~oracle seed =
  let config =
    { Serve.Server.default_config with
      Serve.Server.netfaults = Serve.Netfaults.parse chaos_spec;
      fault_seed = seed }
  in
  with_server ~config @@ fun server _service addr ->
  (* sequential connects pin the accept order, hence each session's
     derived fault schedule *)
  let clients =
    List.init chaos_sessions (fun _ -> Serve.Client.connect ~timeout_s:30.0 addr)
  in
  let sent = Array.make chaos_sessions [] in
  for r = 0 to chaos_requests - 1 do
    List.iteri
      (fun i c ->
        let qi = (r + (i * 2)) mod Array.length queries in
        sent.(i) <- (r + 1, qi) :: sent.(i);
        try Serve.Client.send c queries.(qi)
        with Unix.Unix_error _ -> () (* server already cut this session *))
      clients
  done;
  List.iter
    (fun c ->
      try Serve.Client.shutdown_send c with Unix.Unix_error _ -> ())
    clients;
  let all_replies =
    List.mapi
      (fun i c ->
        (* recv_all must terminate with EOF — a hang (Timeout) or an
           unparseable line (Protocol_error) fails the sweep *)
        let rs =
          try Serve.Client.recv_all c with
          | Serve.Client.Timeout ->
              Alcotest.failf "seed %d: session %d hung" seed i
          | Serve.Client.Protocol_error m ->
              Alcotest.failf "seed %d: session %d unstructured: %s" seed i m
        in
        Serve.Client.close c;
        rs)
      clients
  in
  List.iteri
    (fun i rs ->
      List.iter
        (fun (r : Serve.Client.reply) ->
          check_structured r;
          match Serve.Client.table_csv r with
          | None -> ()
          | Some csv -> (
              (* a served table answers the original request of that
                 line byte-identically to the direct oracle (garbled
                 lines can only come back as parse errors) *)
              match List.assoc_opt r.Serve.Client.line sent.(i) with
              | Some qi ->
                  Alcotest.(check string)
                    (Printf.sprintf "seed %d session %d line %d oracle"
                       seed i r.Serve.Client.line)
                    oracle.(qi) csv
              | None ->
                  Alcotest.failf "seed %d: reply to a line never sent: %d"
                    seed r.Serve.Client.line))
        rs)
    all_replies;
  (Serve.Server.stats server, List.length (List.concat all_replies))

let test_chaos_sweep () =
  let oracle = oracle_csv () in
  let garbled = ref 0
  and stalled = ref 0
  and forced = ref 0
  and replies = ref 0 in
  for seed = 0 to 24 do
    let st, n = run_chaos_seed ~oracle seed in
    garbled := !garbled + st.Serve.Server.garbled;
    stalled := !stalled + st.Serve.Server.stalled;
    forced := !forced + st.Serve.Server.forced_disconnects;
    replies := !replies + n
  done;
  (* the sweep exercised every chaos mode and still answered *)
  Alcotest.(check bool) "garbage fired" true (!garbled > 0);
  Alcotest.(check bool) "stalls fired" true (!stalled > 0);
  Alcotest.(check bool) "disconnect cuts fired" true (!forced > 0);
  Alcotest.(check bool) "plenty of structured replies" true (!replies > 100)

let () =
  Alcotest.run "server"
    [ ( "framing",
        [ Alcotest.test_case "two concurrent sessions" `Quick
            test_two_sessions;
          Alcotest.test_case "stats + refused directives" `Quick
            test_stats_directive ] );
      ( "isolation",
        [ Alcotest.test_case "faulty neighbours leave no trace" `Quick
            test_session_isolation ] );
      ( "overload",
        [ Alcotest.test_case "backlog full sheds structurally" `Quick
            test_shed_structured;
          Alcotest.test_case "deadline refused at admission" `Quick
            test_deadline_at_admission;
          Alcotest.test_case "deadline between plan and exec" `Quick
            test_deadline_between_plan_and_exec ] );
      ( "shutdown",
        [ Alcotest.test_case "stop drains delayed requests" `Quick
            test_shutdown_drains ] );
      ( "netfaults",
        [ Alcotest.test_case "schedules are seed-deterministic" `Quick
            test_netfaults_deterministic;
          Alcotest.test_case "25-seed chaos sweep" `Slow test_chaos_sweep ] ) ]
