(* Enc_exec regressions and properties: lossless float serialization,
   checked numeric images (no silent int_of_float garbage), OPE
   prefix-only ordering across the cent scale, and the batched column
   kernels' byte-equivalence with the row-at-a-time encryptor. *)

open Relalg
open Engine
module C = Mpq_crypto

let attr = Attr.make

(* one keyring per ctx: ciphertexts must be a pure function of
   (seed, cluster, position) *)
let ctx_of schemes = Enc_exec.of_schemes (C.Keyring.create ~seed:7L ()) schemes

let det_ctx = lazy (ctx_of [ ("x", C.Scheme.Det) ])
let rnd_ctx = lazy (ctx_of [ ("x", C.Scheme.Rnd) ])
let ope_ctx = lazy (ctx_of [ ("x", C.Scheme.Ope) ])
let phe_ctx = lazy (ctx_of [ ("x", C.Scheme.Phe) ])

let roundtrip ctx v =
  Enc_exec.decrypt_value ctx (Enc_exec.encrypt_value ctx (attr "x") v)

let bits = Int64.bits_of_float

let value_eq a b =
  match (a, b) with
  | Value.Float x, Value.Float y ->
      (* bit-exact (catches -0.0 and one-ulp loss); nan payload bits are
         not representable in %h, so any nan matches any nan *)
      bits x = bits y || (Float.is_nan x && Float.is_nan y)
  | a, b -> a = b

let check_value msg expected got =
  if not (value_eq expected got) then
    Alcotest.failf "%s: expected %s, got %s" msg (Value.to_string expected)
      (Value.to_string got)

let expect_crypto_error msg f =
  match f () with
  | v ->
      Alcotest.failf "%s: expected Crypto_error, got %s" msg
        (Value.to_string v)
  | exception Enc_exec.Crypto_error _ -> ()

(* --- bugfix 1: lossless float serialization --------------------------- *)

let adversarial_floats =
  [ 0.1 +. 0.2 (* 0.30000000000000004 — string_of_float drops the tail *);
    1.0000000000000002 (* one ulp above 1.0 *);
    -0.0;
    4.9e-324 (* smallest subnormal *);
    -1.2345678901234567e-310 (* negative subnormal *);
    1.7976931348623157e308 (* max finite *);
    Float.pi;
    nan;
    infinity;
    neg_infinity ]

let test_float_serialization () =
  List.iter
    (fun f ->
      let v = Value.Float f in
      check_value "serialize/deserialize" v
        (Enc_exec.deserialize (Enc_exec.serialize v));
      check_value "det roundtrip" v (roundtrip (Lazy.force det_ctx) v);
      check_value "rnd roundtrip" v (roundtrip (Lazy.force rnd_ctx) v))
    adversarial_floats

(* --- bugfix 2: checked numeric images --------------------------------- *)

let test_phe_range_checks () =
  let ctx = Lazy.force phe_ctx in
  let enc v () = Enc_exec.encrypt_value ctx (attr "x") v in
  expect_crypto_error "phe of nan" (enc (Value.Float nan));
  expect_crypto_error "phe of +inf" (enc (Value.Float infinity));
  expect_crypto_error "phe of -inf" (enc (Value.Float neg_infinity));
  expect_crypto_error "phe of 1e19" (enc (Value.Float 1e19));
  expect_crypto_error "phe of max_int" (enc (Value.Int max_int));
  expect_crypto_error "phe of min_int" (enc (Value.Int min_int));
  (* in-range values still round-trip, negatives included *)
  check_value "phe int" (Value.Int 42) (roundtrip ctx (Value.Int 42));
  check_value "phe negative int" (Value.Int (-7)) (roundtrip ctx (Value.Int (-7)));
  check_value "phe cents" (Value.Float 1.25) (roundtrip ctx (Value.Float 1.25))

let test_ope_range_checks () =
  let ctx = Lazy.force ope_ctx in
  let enc v () = Enc_exec.encrypt_value ctx (attr "x") v in
  (* 2^39 cents = ±5 497 558 138.88 is the edge of the OPE domain *)
  expect_crypto_error "ope of 2^35" (enc (Value.Int (1 lsl 35)));
  expect_crypto_error "ope of -(2^35)" (enc (Value.Int (-(1 lsl 35))));
  expect_crypto_error "ope of 1e10" (enc (Value.Float 1e10));
  expect_crypto_error "ope of nan" (enc (Value.Float nan));
  check_value "ope big int" (Value.Int 5_000_000_000)
    (roundtrip ctx (Value.Int 5_000_000_000));
  check_value "ope negative" (Value.Int (-5_000_000_000))
    (roundtrip ctx (Value.Int (-5_000_000_000)))

(* --- bugfix 3: OPE ordering ------------------------------------------- *)

let test_ope_cross_scale_order () =
  (* pre-fix, Int images were unit-scale while Float images were cents:
     Enc(4) < Enc(3.5) because 4 < 350 *)
  let ctx = Lazy.force ope_ctx in
  let e v = Enc_exec.encrypt_value ctx (attr "x") v in
  let cmp op a b = Eval.compare_values ~ctx op (e a) (e b) in
  Alcotest.(check bool) "4 > 3.5" true
    (cmp Predicate.Gt (Value.Int 4) (Value.Float 3.5));
  Alcotest.(check bool) "3 < 3.5" true
    (cmp Predicate.Lt (Value.Int 3) (Value.Float 3.5));
  Alcotest.(check bool) "4 = 4.0 at cent precision" true
    (cmp Predicate.Eq (Value.Int 4) (Value.Float 4.0));
  Alcotest.(check bool) "-5 < 3" true
    (cmp Predicate.Lt (Value.Int (-5)) (Value.Int 3));
  Alcotest.(check bool) "-5 < -4.5" true
    (cmp Predicate.Lt (Value.Int (-5)) (Value.Float (-4.5)));
  Alcotest.(check bool) "-2.5 < -2.4" true
    (cmp Predicate.Lt (Value.Float (-2.5)) (Value.Float (-2.4)));
  (* the cent scale must also decrypt back out *)
  check_value "int decrypts unscaled" (Value.Int 4) (roundtrip ctx (Value.Int 4))

let test_ope_tied_prefix_strings () =
  let ctx = Lazy.force ope_ctx in
  let e s = Enc_exec.encrypt_value ctx (attr "x") (Value.Str s) in
  let cipher s = match e s with Value.Enc c -> c | _ -> assert false in
  (* equality is exact (the deterministic tail decides) *)
  Alcotest.(check bool) "tied prefix, Neq" true
    (Eval.compare_values ~ctx Predicate.Neq (e "abcdX") (e "abcdY"));
  Alcotest.(check bool) "tied prefix, Eq is false" false
    (Eval.compare_values ~ctx Predicate.Eq (e "abcdX") (e "abcdY"));
  Alcotest.(check bool) "same string, Eq" true
    (Eval.compare_values ~ctx Predicate.Eq (e "abcdX") (e "abcdX"));
  Alcotest.(check bool) "same string, Le" true
    (Eval.compare_values ~ctx Predicate.Le (e "abcdX") (e "abcdX"));
  (* order across distinct prefixes still works *)
  Alcotest.(check bool) "abc < abd" true
    (Eval.compare_values ~ctx Predicate.Lt (e "abc") (e "abd"));
  (* ... but a range comparison of distinct strings sharing a 4-byte
     prefix must refuse rather than order by the det tail (pre-fix it
     silently returned whatever the tail bytes said) *)
  (match Eval.compare_values ~ctx Predicate.Lt (e "abcdX") (e "abcdY") with
  | b -> Alcotest.failf "expected Crypto_error, got %b" b
  | exception Enc_exec.Crypto_error _ -> ());
  (match Enc_exec.ope_compare (cipher "abcdX") (cipher "abcdY") with
  | c -> Alcotest.failf "expected Crypto_error, got %d" c
  | exception Enc_exec.Crypto_error _ -> ());
  Alcotest.(check int) "ope_compare distinct prefixes" (-1)
    (compare (Enc_exec.ope_compare (cipher "abc") (cipher "abd")) 0)

(* --- properties: roundtrip + order preservation over all schemes ------ *)

let cent_floats =
  QCheck.Gen.map
    (fun c -> float_of_int c /. 100.0)
    (QCheck.Gen.int_range (-100_000_000) 100_000_000)

let gen_numeric =
  QCheck.Gen.(
    frequency
      [ (3, map (fun i -> Value.Int i) (int_range (-100_000) 100_000));
        (1, oneofl [ Value.Int 5_000_000_000; Value.Int (-5_000_000_000) ]);
        (3, map (fun f -> Value.Float f) cent_floats);
        (1, map (fun d -> Value.Date d) (int_range 0 40_000));
        (1, map (fun b -> Value.Bool b) bool) ])

let gen_string =
  (* pool with shared and distinct 4-byte prefixes *)
  QCheck.Gen.oneofl
    [ "alpha"; "beta"; "gamma"; "delta"; "zz"; ""; "abcd"; "abcdX"; "abcdY" ]

let gen_value =
  QCheck.Gen.(
    frequency
      [ (6, gen_numeric);
        (2, map (fun s -> Value.Str s) gen_string);
        (1, return Value.Null) ])

let cent_round = function
  | Value.Float f -> Value.Float (Float.round (f *. 100.0) /. 100.0)
  | v -> v

let prop_roundtrip =
  QCheck.Test.make ~count:300 ~name:"encrypt/decrypt roundtrip, all schemes"
    (QCheck.make ~print:Value.to_string gen_value)
    (fun v ->
      let exact ctx = value_eq v (roundtrip (Lazy.force ctx) v) in
      (* det / rnd: exact for every value *)
      exact det_ctx && exact rnd_ctx
      (* ope: numeric at cent precision, strings exact (det tail) *)
      && value_eq (cent_round v) (roundtrip (Lazy.force ope_ctx) v)
      (* phe: numeric at cent precision; strings have no additive image *)
      &&
      match v with
      | Value.Str _ -> (
          match roundtrip (Lazy.force phe_ctx) v with
          | _ -> false
          | exception Enc_exec.Crypto_error _ -> true)
      | _ -> value_eq (cent_round v) (roundtrip (Lazy.force phe_ctx) v))

let cents_of = function
  | Value.Int i -> i * 100
  | Value.Float f -> int_of_float (Float.round (f *. 100.0))
  | Value.Date d -> d * 100
  | Value.Bool b -> if b then 100 else 0
  | _ -> assert false

let prop_ope_order =
  QCheck.Test.make ~count:300 ~name:"OPE preserves order (cent scale)"
    (QCheck.make
       ~print:(fun (a, b) -> Value.to_string a ^ " vs " ^ Value.to_string b)
       QCheck.Gen.(pair gen_numeric gen_numeric))
    (fun (a, b) ->
      let ctx = Lazy.force ope_ctx in
      let cipher v =
        match Enc_exec.encrypt_value ctx (attr "x") v with
        | Value.Enc c -> c
        | _ -> assert false
      in
      match (a, b) with
      | Value.Bool _, Value.Bool _ | Value.Date _, Value.Date _
      | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
          compare (cents_of a) (cents_of b)
          = Enc_exec.ope_compare (cipher a) (cipher b)
      | _ ->
          (* incomparable type classes must refuse, like plaintext *)
          ( match Enc_exec.ope_compare (cipher a) (cipher b) with
          | _ -> false
          | exception Enc_exec.Crypto_error _ -> true ))

let prop_ope_string_order =
  QCheck.Test.make ~count:200 ~name:"OPE string order: prefix or refuse"
    (QCheck.make
       ~print:(fun (a, b) -> a ^ " vs " ^ b)
       QCheck.Gen.(pair gen_string gen_string))
    (fun (a, b) ->
      let ctx = Lazy.force ope_ctx in
      let cipher s =
        match Enc_exec.encrypt_value ctx (attr "x") (Value.Str s) with
        | Value.Enc c -> c
        | _ -> assert false
      in
      let prefix s = String.sub (s ^ "\x00\x00\x00\x00") 0 4 in
      let tied = String.equal (prefix a) (prefix b) && not (String.equal a b) in
      match Enc_exec.ope_compare (cipher a) (cipher b) with
      | c -> (not tied) && compare (compare (prefix a) (prefix b)) 0 = compare c 0
      | exception Enc_exec.Crypto_error _ -> tied)

(* --- columnar batch kernels == row-at-a-time -------------------------- *)

let test_batch_vs_row () =
  let schemes =
    [ ("a", C.Scheme.Det); ("b", C.Scheme.Ope); ("c", C.Scheme.Phe);
      ("d", C.Scheme.Rnd) ]
  in
  let ctx = ctx_of schemes in
  let n = 17 in
  let col_a =
    Column.Strs (Array.init n (fun i -> Printf.sprintf "s%d" (i mod 5)))
  in
  let col_b = Column.Floats (Array.init n (fun i -> float_of_int (i - 8) /. 4.)) in
  let col_c =
    (* mixed with Nulls: Null cells must draw no randomness *)
    Column.Values
      (Array.init n (fun i ->
           if i mod 4 = 2 then Value.Null else Value.Int ((i * 7) - 30)))
  in
  let col_d = Column.Ints (Array.init n (fun i -> i * i)) in
  let cols = [ col_a; col_b; col_c; col_d ] in
  let attrs = List.map attr [ "a"; "b"; "c"; "d" ] in
  let nrng = Enc_exec.node_rng ctx 3 in
  (* reference: the row-at-a-time encryptor, per-row derived generator
     consumed across attributes in order *)
  let row_path =
    List.map
      (fun (a, col) ->
        Array.init n (fun k ->
            let rng = C.Prng.derive nrng k in
            (* consume the row's draws for the columns before this one,
               exactly like a row-major pass would *)
            List.iter
              (fun (a', col') ->
                if Attr.compare a' a < 0 then
                  ignore
                    (Enc_exec.encrypt_value ~rng ctx a' (Column.get col' k)))
              (List.combine attrs cols);
            Enc_exec.encrypt_value ~rng ctx a (Column.get col k))
      )
      (List.combine attrs cols)
  in
  let check tag batch =
    List.iteri
      (fun j col ->
        let got = Column.to_values col in
        Array.iteri
          (fun k v ->
            if not (value_eq (List.nth row_path j).(k) v) then
              Alcotest.failf "%s: column %d row %d differs" tag j k)
          got)
      batch
  in
  (* whole batch at once *)
  check "single batch"
    (Enc_exec.encrypt_batch ctx ~rng_root:nrng ~start:0
       ~enc:(List.combine attrs cols));
  (* split batches: results must not depend on the chunking *)
  let split_at = 9 in
  let part s l =
    Enc_exec.encrypt_batch ctx ~rng_root:nrng ~start:s
      ~enc:(List.map (fun (a, c) -> (a, Column.sub c s l)) (List.combine attrs cols))
  in
  let merged =
    List.map2
      (fun c1 c2 -> Column.concat [ c1; c2 ])
      (part 0 split_at)
      (part split_at (n - split_at))
  in
  check "split batches" merged;
  (* and decrypt_batch inverts the lot *)
  List.iteri
    (fun j col ->
      let plain = Column.to_values (Enc_exec.decrypt_batch ctx col) in
      Array.iteri
        (fun k v -> check_value "decrypt_batch" (Column.get (List.nth cols j) k) v)
        plain)
    merged

(* --- plan-level differential: row-layout vs column-layout tables ------ *)

let udf_impls =
  [ ( "f",
      fun vals ->
        let total =
          List.fold_left
            (fun acc v ->
              match Value.to_float v with Some f -> acc +. f | None -> acc)
            0.0 vals
        in
        Value.Int (int_of_float total mod 97) ) ]

let byte_identical a b =
  List.equal Attr.equal (Table.attrs a) (Table.attrs b)
  && List.equal
       (fun (r1 : Value.t array) r2 -> r1 = r2)
       (Table.rows a) (Table.rows b)

let gen_tables st =
  let int () = Value.Int (QCheck.Gen.int_bound 120 st) in
  let str () =
    Value.Str (List.nth [ "ga"; "bu"; "zo"; "meu" ] (QCheck.Gen.int_bound 3 st))
  in
  let rows n mk = List.init n (fun _ -> mk ()) in
  let t1 =
    Table.of_schema Gen.rel1
      (rows (3 + QCheck.Gen.int_bound 12 st) (fun () ->
           [| int (); int (); str (); int () |]))
  in
  let t2 =
    Table.of_schema Gen.rel2
      (rows (3 + QCheck.Gen.int_bound 12 st) (fun () ->
           [| int (); int (); str () |]))
  in
  let t3 =
    Table.of_schema Gen.rel3
      (rows (3 + QCheck.Gen.int_bound 8 st) (fun () -> [| int (); int () |]))
  in
  [ ("R1", t1); ("R2", t2); ("R3", t3) ]

let prop_columnar_layout_identical =
  QCheck.Test.make ~count:80
    ~name:"column-layout base tables byte-identical to row-layout"
    (QCheck.make
       ~print:(fun ((c : Gen.extended_case), _) ->
         Plan_printer.to_ascii c.Gen.executable)
       QCheck.Gen.(
         Gen.gen_extended >>= fun case ->
         fun st -> (case, gen_tables st)))
    (fun (case, tables) ->
      let ctx tables =
        let keyring = C.Keyring.create ~seed:123L () in
        let crypto = Enc_exec.make keyring case.Gen.clusters in
        Exec.context ~udfs:udf_impls ~crypto tables
      in
      let columnized =
        List.map
          (fun (name, t) ->
            (name, Table.of_columns (Table.attrs t) (Table.columns t)))
          tables
      in
      let by_rows = Exec.run (ctx tables) case.Gen.executable in
      let by_cols = Exec.run (ctx columnized) case.Gen.executable in
      if byte_identical by_rows by_cols then true
      else
        QCheck.Test.fail_reportf
          "row-layout and column-layout runs differ:\n%s\nvs\n%s"
          (Table.to_string by_rows) (Table.to_string by_cols))

let () =
  Alcotest.run "enc_exec"
    [ ( "serialization",
        [ ("lossless floats (incl. nan/inf/subnormals)", `Quick,
           test_float_serialization) ] );
      ( "range checks",
        [ ("phe rejects non-finite and overflow", `Quick, test_phe_range_checks);
          ("ope rejects out-of-domain", `Quick, test_ope_range_checks) ] );
      ( "ope ordering",
        [ ("cent scale across int/float", `Quick, test_ope_cross_scale_order);
          ("tied 4-byte prefixes refuse ordering", `Quick,
           test_ope_tied_prefix_strings) ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_ope_order;
          QCheck_alcotest.to_alcotest prop_ope_string_order ] );
      ( "columnar",
        [ ("batch kernels == row-at-a-time (incl. split)", `Quick,
           test_batch_vs_row);
          QCheck_alcotest.to_alcotest prop_columnar_layout_identical ] ) ]
