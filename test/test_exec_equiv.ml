(* The strongest end-to-end property in the suite: for random plans,
   random policies, random data and any assignment drawn from the
   candidate sets, executing the minimally extended plan over real
   ciphertext — deterministic equality, OPE ranges, Paillier aggregation,
   on-the-fly encrypt/decrypt — produces exactly the same bag of rows as
   executing the original plan over plaintext (after decrypting the
   delivered result). *)

open Relalg
open Authz
open Engine

(* random tables for Gen's catalog; values kept in OPE/phe-friendly
   ranges and low-cardinality so joins and selections actually match *)
let gen_tables st =
  let int () = Value.Int (QCheck.Gen.int_bound 120 st) in
  let str () =
    Value.Str (List.nth [ "ga"; "bu"; "zo"; "meu" ] (QCheck.Gen.int_bound 3 st))
  in
  let rows n mk = List.init n (fun _ -> mk ()) in
  let t1 =
    Table.of_schema Gen.rel1
      (rows (3 + QCheck.Gen.int_bound 12 st) (fun () ->
           [| int (); int (); str (); int () |]))
  in
  let t2 =
    Table.of_schema Gen.rel2
      (rows (3 + QCheck.Gen.int_bound 12 st) (fun () ->
           [| int (); int (); str () |]))
  in
  let t3 =
    Table.of_schema Gen.rel3
      (rows (3 + QCheck.Gen.int_bound 8 st) (fun () -> [| int (); int () |]))
  in
  [ ("R1", t1); ("R2", t2); ("R3", t3) ]

let gen_case =
  QCheck.Gen.(
    Gen.gen_plan >>= fun plan ->
    Gen.gen_policy >>= fun policy ->
    fun st ->
      let tables = gen_tables st in
      let config = Opreq.resolve_conflicts Opreq.default plan in
      let lam = Candidates.compute ~policy ~subjects:Gen.subjects ~config plan in
      let assignment =
        Plan.fold
          (fun acc n ->
            if Candidates.is_source_side n then acc
            else
              match
                Subject.Set.elements (Candidates.candidates_of lam n)
              with
              | [] -> acc
              | cands ->
                  let i = QCheck.Gen.int_bound (List.length cands - 1) st in
                  Imap.add (Plan.id n) (List.nth cands i) acc)
          Imap.empty plan
      in
      (plan, policy, config, assignment, tables))

let plannable plan assignment =
  Plan.fold
    (fun acc n ->
      acc && (Candidates.is_source_side n || Imap.mem (Plan.id n) assignment))
    true plan

(* the udf used by Gen plans: an arithmetic tweak over its inputs *)
let udf_impls =
  [ ( "f",
      fun vals ->
        let total =
          List.fold_left
            (fun acc v ->
              match Value.to_float v with Some f -> acc +. f | None -> acc)
            0.0 vals
        in
        Value.Int (int_of_float total mod 97) ) ]

let prop_encrypted_equals_plain =
  QCheck.Test.make ~count:250
    ~name:"extended-over-ciphertext = original-over-plaintext"
    (QCheck.make
       ~print:(fun (plan, _, _, _, _) -> Plan_printer.to_ascii plan)
       gen_case)
    (fun (plan, policy, config, assignment, tables) ->
      QCheck.assume (plannable plan assignment);
      (* the udf needs plaintext inputs by default; its candidates may be
         empty under a stingy random policy — filtered by assume above *)
      let expected =
        Exec.run (Exec.context ~udfs:udf_impls tables) plan
      in
      let ext =
        Extend.extend ~policy ~config ~assignment ~deliver_to:Gen.user plan
      in
      let keyring = Mpq_crypto.Keyring.create ~seed:123L () in
      let clusters = Plan_keys.compute ~config ~original:plan ext in
      let crypto = Enc_exec.make keyring clusters in
      let actual =
        Exec.run (Exec.context ~udfs:udf_impls ~crypto tables) ext.Extend.plan
      in
      (* deliver_to decrypts visible ciphertext; bags must coincide *)
      if Table.equal_bag expected actual then true
      else
        QCheck.Test.fail_reportf
          "results differ:\nexpected:\n%s\nactual:\n%s\nextended:\n%s"
          (Table.to_string expected) (Table.to_string actual)
          (Extend.to_ascii ext))

let prop_monitor_clean =
  QCheck.Test.make ~count:150
    ~name:"monitor finds no violation on optimizer-produced plans"
    (QCheck.make
       ~print:(fun (plan, _, _, _, _) -> Plan_printer.to_ascii plan)
       gen_case)
    (fun (plan, policy, config, assignment, tables) ->
      QCheck.assume (plannable plan assignment);
      ignore config;
      let config = Opreq.resolve_conflicts Opreq.default plan in
      let ext =
        Extend.extend ~policy ~config ~assignment ~deliver_to:Gen.user plan
      in
      let keyring = Mpq_crypto.Keyring.create ~seed:7L () in
      let clusters = Plan_keys.compute ~config ~original:plan ext in
      let crypto = Enc_exec.make keyring clusters in
      let _, report =
        Monitor.run ~enforce:false ~policy
          (Exec.context ~udfs:udf_impls ~crypto tables)
          ext
      in
      report.Monitor.violations = [])

(* Regression: numerically equal Int/Float join keys must land in the
   same hash bucket. The old key encoding sent [Int i] to ["N<i>"]
   unconditionally but normalized integer-valued floats only below 1e15,
   so [Int 1_000_000_000_000_000] and [Float 1e15] — equal under
   [Value.compare], hence matched by the nested-loop path — hashed to
   different buckets and the pair silently vanished from hash joins. *)
let test_mixed_numeric_hash_join () =
  let l =
    Table.create
      [ Attr.make "a"; Attr.make "tag" ]
      [ [| Value.Int 1; Value.Str "small-int" |];
        [| Value.Int 1_000_000_000_000_000; Value.Str "big-int" |];
        [| Value.Float 2.5; Value.Str "frac" |];
        [| Value.Int 7; Value.Str "lonely" |] ]
  in
  let r =
    Table.create
      [ Attr.make "c" ]
      [ [| Value.Float 1.0 |]; [| Value.Float 1e15 |]; [| Value.Float 2.5 |];
        [| Value.Int 5 |] ]
  in
  let la =
    Plan.base
      (Schema.make ~name:"L" ~owner:"H"
         [ ("a", Schema.Tfloat); ("tag", Schema.Tstring) ])
  in
  let ra =
    Plan.base (Schema.make ~name:"R" ~owner:"H" [ ("c", Schema.Tfloat) ])
  in
  let a = Attr.make "a" and c = Attr.make "c" in
  let hash_plan =
    Plan.join (Predicate.conj [ Predicate.Cmp_attr (a, Predicate.Eq, c) ]) la ra
  in
  (* same predicate as [a <= c and a >= c]: no equi pair to extract, so
     the executor takes the nested-loop path — the semantic reference *)
  let nested_plan =
    Plan.join
      (Predicate.conj
         [ Predicate.Cmp_attr (a, Predicate.Le, c);
           Predicate.Cmp_attr (a, Predicate.Ge, c) ])
      la ra
  in
  let ctx = Exec.context [ ("L", l); ("R", r) ] in
  let hashed = Exec.run ctx hash_plan in
  let nested = Exec.run ctx nested_plan in
  Alcotest.(check int) "three mixed-type matches" 3 (Table.cardinality hashed);
  Alcotest.(check bool) "hash path = nested-loop path" true
    (Table.equal_bag hashed nested)

let () =
  Alcotest.run "exec-equivalence"
    [ ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_encrypted_equals_plain; prop_monitor_clean ] );
      ( "regressions",
        [ ("mixed Int/Float hash join", `Quick, test_mixed_numeric_hash_join) ]
      ) ]
