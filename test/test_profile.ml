(* Fig. 2 profile rules, operator by operator, plus Thm. 3.1 as a
   property over random plans: (i) profile attributes only persist going
   up the plan, (ii) equivalence classes only grow. *)

open Relalg
open Authz

let profile = Alcotest.testable Profile.pp Profile.equal
let set = Attr.Set.of_names
let a = Attr.make

(* Fig. 2's example column uses a relation R1 with profile
   [v: BDTP (SC enc in some rows), i: D, ≃: SC]; we rebuild the same
   inputs per row. *)

let test_projection () =
  (* π_BP over v:BDTP i:D ≃:SC  ->  v:BP i:D ≃:SC *)
  let r = Profile.make ~vp:[ "B"; "D"; "T"; "P" ] ~ip:[ "D" ] ~eq:[ [ "S"; "C" ] ] () in
  Alcotest.check profile "π"
    (Profile.make ~vp:[ "B"; "P" ] ~ip:[ "D" ] ~eq:[ [ "S"; "C" ] ] ())
    (Profile.project (set [ "B"; "P" ]) r)

let test_selection_const () =
  (* σ_D=stroke over v:BDTP i:∅ ≃:SC  ->  i gains D *)
  let r = Profile.make ~vp:[ "B"; "D"; "T"; "P" ] ~eq:[ [ "S"; "C" ] ] () in
  Alcotest.check profile "σ const"
    (Profile.make ~vp:[ "B"; "D"; "T"; "P" ] ~ip:[ "D" ] ~eq:[ [ "S"; "C" ] ] ())
    (Profile.select
       (Predicate.conj [ Predicate.Cmp_const (a "D", Predicate.Eq, Value.Str "x") ])
       r)

let test_selection_const_encrypted () =
  (* selecting on an encrypted attribute populates ie, not ip *)
  let r = Profile.make ~vp:[ "B" ] ~ve:[ "D" ] () in
  Alcotest.check profile "σ enc const"
    (Profile.make ~vp:[ "B" ] ~ve:[ "D" ] ~ie:[ "D" ] ())
    (Profile.select
       (Predicate.conj [ Predicate.Cmp_const (a "D", Predicate.Eq, Value.Str "x") ])
       r)

let test_selection_attr_pair () =
  (* σ_S=C merges S and C into an equivalence class *)
  let r = Profile.make ~vp:[ "S"; "C"; "T"; "P" ] ~ip:[ "D" ] () in
  Alcotest.check profile "σ pair"
    (Profile.make ~vp:[ "S"; "C"; "T"; "P" ] ~ip:[ "D" ] ~eq:[ [ "S"; "C" ] ] ())
    (Profile.select
       (Predicate.conj [ Predicate.Cmp_attr (a "S", Predicate.Eq, a "C") ])
       r)

let test_selection_nonuniform_rejected () =
  let r = Profile.make ~vp:[ "S" ] ~ve:[ "C" ] () in
  Alcotest.check_raises "plaintext vs encrypted comparison"
    (Profile.Not_executable
       "select: S and C are not uniformly visible (plaintext vs encrypted)")
    (fun () ->
      ignore
        (Profile.select
           (Predicate.conj [ Predicate.Cmp_attr (a "S", Predicate.Eq, a "C") ])
           r))

let test_product () =
  let l = Profile.make ~vp:[ "S"; "C" ] ~ve:[ "P" ] ~ip:[ "D" ] ~eq:[ [ "S"; "C" ] ] () in
  let r = Profile.make ~vp:[ "B" ] ~ip:[ "T" ] () in
  Alcotest.check profile "×"
    (Profile.make ~vp:[ "S"; "C"; "B" ] ~ve:[ "P" ] ~ip:[ "D"; "T" ]
       ~eq:[ [ "S"; "C" ] ] ())
    (Profile.product l r)

let test_join () =
  (* Fig. 2's join row: ⋈_D=C over [v:DB] and [v:C i:P ≃:SC]
     -> v:DCB i:P ≃:{SCD} *)
  let l = Profile.make ~vp:[ "D"; "B" ] () in
  let r = Profile.make ~vp:[ "C" ] ~ip:[ "P" ] ~eq:[ [ "S"; "C" ] ] () in
  Alcotest.check profile "⋈"
    (Profile.make ~vp:[ "D"; "C"; "B" ] ~ip:[ "P" ]
       ~eq:[ [ "S"; "C"; "D" ] ] ())
    (Profile.join
       (Predicate.conj [ Predicate.Cmp_attr (a "D", Predicate.Eq, a "C") ])
       l r)

let test_group_by () =
  (* γ_T,avg(P) over v:DTPSC i:D ≃:SC -> v:TP i:DT ≃:SC *)
  let r =
    Profile.make ~vp:[ "D"; "T"; "P"; "S"; "C" ] ~ip:[ "D" ]
      ~eq:[ [ "S"; "C" ] ] ()
  in
  Alcotest.check profile "γ"
    (Profile.make ~vp:[ "T"; "P" ] ~ip:[ "D"; "T" ] ~eq:[ [ "S"; "C" ] ] ())
    (Profile.group_by (set [ "T" ]) [ Aggregate.make (Aggregate.Avg (a "P")) ] r)

let test_group_by_encrypted_keys () =
  let r = Profile.make ~vp:[ "P" ] ~ve:[ "T" ] () in
  Alcotest.check profile "γ enc keys"
    (Profile.make ~vp:[ "P" ] ~ve:[ "T" ] ~ie:[ "T" ] ())
    (Profile.group_by (set [ "T" ]) [ Aggregate.make (Aggregate.Sum (a "P")) ] r)

let test_udf () =
  (* µ_SB,S over v:SBCT i:D ≃:SC -> v:SCT i:D ≃:{SBC} (Fig. 2 udf row) *)
  let r = Profile.make ~vp:[ "S"; "B"; "C"; "T" ] ~ip:[ "D" ] ~eq:[ [ "S"; "C" ] ] () in
  Alcotest.check profile "µ"
    (Profile.make ~vp:[ "S"; "C"; "T" ] ~ip:[ "D" ]
       ~eq:[ [ "S"; "B"; "C" ] ] ())
    (Profile.udf (set [ "S"; "B" ]) (a "S") r)

let test_order_by_leaks_keys () =
  (* our Fig. 2 extension: sort keys join the implicit attributes *)
  let r = Profile.make ~vp:[ "A" ] ~ve:[ "B" ] () in
  Alcotest.check profile "τ"
    (Profile.make ~vp:[ "A" ] ~ve:[ "B" ] ~ip:[ "A" ] ~ie:[ "B" ] ())
    (Profile.order_by [ (a "A", Plan.Asc); (a "B", Plan.Desc) ] r)

let test_encrypt_decrypt () =
  let r = Profile.make ~vp:[ "S"; "B"; "T" ] ~ip:[ "D" ] () in
  let enc = Profile.encrypt (set [ "T" ]) r in
  Alcotest.check profile "encrypt T"
    (Profile.make ~vp:[ "S"; "B" ] ~ve:[ "T" ] ~ip:[ "D" ] ())
    enc;
  Alcotest.check profile "decrypt T restores" r (Profile.decrypt (set [ "T" ]) enc)

let test_encrypt_requires_plaintext () =
  let r = Profile.make ~vp:[ "S" ] ~ve:[ "T" ] () in
  Alcotest.check_raises "double encryption rejected"
    (Profile.Not_executable "encrypt: attributes T are not visible plaintext")
    (fun () -> ignore (Profile.encrypt (set [ "T" ]) r))

(* --- Thm. 3.1 as a property ------------------------------------------

   The theorem's full carrier-persistence claim presumes the paper's
   normalized plans (projections pushed into leaves, group-by operands
   containing exactly the grouped/aggregated attributes); an arbitrary
   mid-plan projection legitimately drops plain visible attributes. The
   load-bearing persistent core — implicit attributes and equivalence
   classes, which Def. 6.1's key derivation reads off the root — must
   hold on {e every} plan, and that is what we check here. *)

let persistent p =
  List.fold_left Attr.Set.union
    (Attr.Set.union p.Profile.ip p.Profile.ie)
    (Partition.sets p.Profile.eq)

let prop_thm_3_1 =
  QCheck.Test.make ~count:300
    ~name:"Thm 3.1: implicit attrs and eq classes persist upward"
    Gen.arbitrary_plan (fun plan ->
      let profiles = Profile.annotate plan in
      let ok = ref true in
      Plan.iter
        (fun nx ->
          let px = Hashtbl.find profiles (Plan.id nx) in
          Plan.iter
            (fun ny ->
              if Plan.id ny <> Plan.id nx then begin
                let py = Hashtbl.find profiles (Plan.id ny) in
                (* (i) implicit/equivalent attributes survive in the
                   ancestor's full profile *)
                if
                  not
                    (Attr.Set.subset (persistent py) (Profile.all_attrs px))
                then ok := false;
                (* (ii) classes only coarsen upward *)
                if not (Partition.refines py.Profile.eq px.Profile.eq) then
                  ok := false
              end)
            nx)
        plan;
      !ok)

let prop_visible_matches_schema =
  QCheck.Test.make ~count:300 ~name:"visible attributes = plan schema"
    Gen.arbitrary_plan (fun plan ->
      let profiles = Profile.annotate plan in
      Plan.fold
        (fun acc n ->
          acc
          && Attr.Set.equal
               (Profile.visible (Hashtbl.find profiles (Plan.id n)))
               (Plan.schema n))
        true plan)

let prop_base_no_implicit =
  QCheck.Test.make ~count:100 ~name:"base profiles carry nothing implicit"
    Gen.arbitrary_plan (fun plan ->
      let profiles = Profile.annotate plan in
      Plan.fold
        (fun acc n ->
          match Plan.node n with
          | Plan.Base _ ->
              let p = Hashtbl.find profiles (Plan.id n) in
              acc
              && Attr.Set.is_empty p.Profile.ip
              && Attr.Set.is_empty p.Profile.ie
              && Attr.Set.is_empty p.Profile.ve
              && Partition.is_empty p.Profile.eq
          | _ -> acc)
        true plan)

let () =
  Alcotest.run "profile"
    [ ( "fig2-rules",
        [ ("projection", `Quick, test_projection);
          ("selection, constant", `Quick, test_selection_const);
          ("selection on encrypted attr", `Quick, test_selection_const_encrypted);
          ("selection, attribute pair", `Quick, test_selection_attr_pair);
          ("non-uniform comparison rejected", `Quick, test_selection_nonuniform_rejected);
          ("cartesian product", `Quick, test_product);
          ("join", `Quick, test_join);
          ("group by", `Quick, test_group_by);
          ("group by on encrypted keys", `Quick, test_group_by_encrypted_keys);
          ("udf", `Quick, test_udf);
          ("order-by leaks keys", `Quick, test_order_by_leaks_keys);
          ("encrypt/decrypt", `Quick, test_encrypt_decrypt);
          ("encrypt requires plaintext", `Quick, test_encrypt_requires_plaintext) ] );
      ( "thm-3.1",
        List.map QCheck_alcotest.to_alcotest
          [ prop_thm_3_1; prop_visible_matches_schema; prop_base_no_implicit ]
      ) ]
