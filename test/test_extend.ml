(* Minimally extended plans (Def. 5.4) against Thm. 5.2 and Thm. 5.3:

   - completeness (5.2 ii): any assignment drawn from the candidate sets
     can be made authorized by the injected encryption/decryption;
   - soundness (5.2 i): an assignment that verifies authorized on the
     extended plan only uses candidates;
   - 5.3 (i): the produced extension verifies;
   - 5.3 (ii): every injected encryption is justified by Def. 5.4's
     formula (no gratuitous encryption), and extensions never encrypt
     more than the encrypt-everything strategy of the minimum required
     views. *)

open Relalg
open Authz

(* draw one assignment from the candidate sets, seeded deterministically *)
let draw_assignment st lam plan =
  Plan.fold
    (fun acc n ->
      if Candidates.is_source_side n then acc
      else
        let cands = Subject.Set.elements (Candidates.candidates_of lam n) in
        match cands with
        | [] -> acc (* unplannable node: caller filters *)
        | _ ->
            let i = QCheck.Gen.int_bound (List.length cands - 1) st in
            Imap.add (Plan.id n) (List.nth cands i) acc)
    Imap.empty plan

let all_assignable_covered lam assignment plan =
  Plan.fold
    (fun acc n ->
      acc
      && (Candidates.is_source_side n
         || Imap.mem (Plan.id n) assignment
         || Subject.Set.is_empty (Candidates.candidates_of lam n)))
    true plan

let gen_case =
  QCheck.Gen.(
    Gen.gen_plan >>= fun plan ->
    Gen.gen_policy >>= fun policy ->
    fun st ->
      let config = Opreq.resolve_conflicts Opreq.default plan in
      let lam =
        Candidates.compute ~policy ~subjects:Gen.subjects ~config plan
      in
      let assignment = draw_assignment st lam plan in
      (plan, policy, config, lam, assignment))

let arbitrary_case =
  QCheck.make
    ~print:(fun (plan, _, _, _, _) -> Plan_printer.to_ascii plan)
    gen_case

let plannable lam assignment plan =
  Plan.fold
    (fun acc n ->
      acc
      && (Candidates.is_source_side n || Imap.mem (Plan.id n) assignment))
    true plan
  && all_assignable_covered lam assignment plan

(* --- Thm. 5.2 (ii) + 5.3 (i): drawn-from-Λ assignments verify -------- *)

let prop_completeness =
  QCheck.Test.make ~count:300
    ~name:"Thm 5.2(ii)/5.3(i): any λ ∈ Λ extends to an authorized plan"
    arbitrary_case (fun (plan, policy, config, lam, assignment) ->
      QCheck.assume (plannable lam assignment plan);
      let ext = Extend.extend ~policy ~config ~assignment plan in
      match Extend.verify ~policy ext with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "verification failed: %s" msg)

(* --- Thm. 5.2 (i): authorized assignments are candidates ------------- *)

let prop_soundness =
  QCheck.Test.make ~count:300
    ~name:"Thm 5.2(i): assignments that verify use only candidates"
    (QCheck.make
       ~print:(fun (plan, _, _) -> Plan_printer.to_ascii plan)
       QCheck.Gen.(
         Gen.gen_plan >>= fun plan ->
         Gen.gen_policy >>= fun policy ->
         fun st ->
           (* arbitrary assignment over ALL subjects, not just candidates *)
           let assignment =
             Plan.fold
               (fun acc n ->
                 if Candidates.is_source_side n then acc
                 else
                   let i =
                     QCheck.Gen.int_bound (List.length Gen.subjects - 1) st
                   in
                   Imap.add (Plan.id n) (List.nth Gen.subjects i) acc)
               Imap.empty plan
           in
           (plan, policy, assignment)))
    (fun (plan, policy, assignment) ->
      let config = Opreq.resolve_conflicts Opreq.default plan in
      match Extend.extend ~policy ~config ~assignment plan with
      | exception Profile.Not_executable _ ->
          true (* the arbitrary assignment wasn't executable at all *)
      | ext -> (
          match Extend.verify ~policy ext with
          | Error _ -> true (* unauthorized: nothing to check *)
          | Ok () ->
              (* authorized: Thm 5.2(i) says it must be within Λ *)
              let lam =
                Candidates.compute ~policy ~subjects:Gen.subjects ~config plan
              in
              Candidates.valid_assignment lam assignment))

(* --- Thm. 5.3 (ii): minimality --------------------------------------- *)

(* Every Encrypt node's attribute set is justified: an attribute is
   encrypted only if some ancestor's executor may not see it plaintext
   (Def. 5.4's two terms), or it is compared with such an attribute
   (uniform-visibility repair: the comparison must run over ciphertext,
   so its plaintext side is encrypted under the shared cluster key). *)
let justified_encryptions policy (ext : Extend.t) plan_orig =
  let root_eq = (Profile.of_plan plan_orig).Profile.eq in
  let parents =
    let tbl = Hashtbl.create 32 in
    Plan.iter
      (fun n ->
        List.iter (fun c -> Hashtbl.replace tbl (Plan.id c) n) (Plan.children n))
      ext.Extend.plan;
    tbl
  in
  let executor n = Imap.find (Plan.id n) ext.Extend.assignment in
  let rec ancestors n =
    match Hashtbl.find_opt parents (Plan.id n) with
    | None -> []
    | Some p -> p :: ancestors p
  in
  Plan.fold
    (fun acc n ->
      acc
      &&
      match Plan.node n with
      | Plan.Encrypt (attrs, _) ->
          let ancs = ancestors n in
          let protected_above a =
            List.exists
              (fun anc ->
                let view = Authorization.view policy (executor anc) in
                Attr.Set.mem a view.Authorization.enc)
              ancs
          in
          Attr.Set.for_all
            (fun a ->
              protected_above a
              || Attr.Set.exists protected_above (Partition.find root_eq a))
            attrs
      | _ -> acc)
    true ext.Extend.plan

let prop_minimality_justified =
  QCheck.Test.make ~count:300
    ~name:"Thm 5.3(ii): every encryption is demanded by some ancestor's view"
    arbitrary_case (fun (plan, policy, config, lam, assignment) ->
      QCheck.assume (plannable lam assignment plan);
      let ext = Extend.extend ~policy ~config ~assignment plan in
      justified_encryptions policy ext plan)

(* the extension never encrypts more than the encrypt-everything bound *)
let prop_minimality_bounded =
  QCheck.Test.make ~count:300
    ~name:"Thm 5.3(ii): encrypted set within the min-view upper bound"
    arbitrary_case (fun (plan, policy, config, lam, assignment) ->
      QCheck.assume (plannable lam assignment plan);
      let ext = Extend.extend ~policy ~config ~assignment plan in
      (* the min-required-view strategy encrypts every visible attribute
         that some node may not see plaintext — a superset of all attrs *)
      let all =
        Plan.fold
          (fun acc n -> Attr.Set.union acc (Plan.schema n))
          Attr.Set.empty plan
      in
      Attr.Set.subset (Extend.encrypted_attrs ext) all)

(* deliver_to produces an all-plaintext root *)
let prop_deliver_to_decrypts =
  QCheck.Test.make ~count:200 ~name:"deliver_to leaves no ciphertext at root"
    arbitrary_case (fun (plan, policy, config, lam, assignment) ->
      QCheck.assume (plannable lam assignment plan);
      let ext =
        Extend.extend ~policy ~config ~assignment ~deliver_to:Gen.user plan
      in
      let root_profile =
        Hashtbl.find ext.Extend.profiles (Plan.id ext.Extend.plan)
      in
      Attr.Set.is_empty root_profile.Profile.ve)

(* stripping the crypto operators recovers the original plan shape *)
let prop_strip_recovers =
  QCheck.Test.make ~count:200 ~name:"strip_crypto(extended) = original"
    arbitrary_case (fun (plan, policy, config, lam, assignment) ->
      QCheck.assume (plannable lam assignment plan);
      let ext = Extend.extend ~policy ~config ~assignment plan in
      Plan.equal_shape (Plan.strip_crypto ext.Extend.plan) (Plan.strip_crypto plan))

(* The paper's key-distribution claim (Sec. 6): "since such subjects are
   authorized for the encryption/decryption operation (i.e., they are
   authorized for plaintext visibility of the attributes to be
   encrypted/decrypted in the operand relation), key distribution obeys
   authorizations". Check it on random cases: every crypto operator's
   executor holds plaintext rights over the attributes it transforms. *)
let prop_key_distribution_obeys_authorizations =
  QCheck.Test.make ~count:300
    ~name:"crypto operators run under plaintext-authorized subjects"
    arbitrary_case (fun (plan, policy, config, lam, assignment) ->
      QCheck.assume (plannable lam assignment plan);
      let ext =
        Extend.extend ~policy ~config ~assignment ~deliver_to:Gen.user plan
      in
      Plan.fold
        (fun acc n ->
          acc
          &&
          match Plan.node n with
          | Plan.Encrypt (attrs, _) | Plan.Decrypt (attrs, _) ->
              let s = Imap.find (Plan.id n) ext.Extend.assignment in
              let view = Authorization.view policy s in
              Attr.Set.subset attrs view.Authorization.plain
          | _ -> acc)
        true ext.Extend.plan)

(* dispatch structure on random cases *)
let prop_dispatch_structure =
  QCheck.Test.make ~count:200 ~name:"fragments partition, calls in order"
    arbitrary_case (fun (plan, policy, config, lam, assignment) ->
      QCheck.assume (plannable lam assignment plan);
      let ext =
        Extend.extend ~policy ~config ~assignment ~deliver_to:Gen.user plan
      in
      let clusters = Plan_keys.compute ~config ~original:plan ext in
      let requests = Dispatch.requests ext clusters in
      (* dependency order *)
      let seen = Hashtbl.create 8 in
      let ordered =
        List.for_all
          (fun (r : Dispatch.request) ->
            let ok = List.for_all (Hashtbl.mem seen) r.Dispatch.calls in
            Hashtbl.replace seen r.Dispatch.name ();
            ok)
          requests
      in
      (* every fragment root id is a node of the plan, ids unique *)
      let ids = List.map (fun r -> r.Dispatch.root_id) requests in
      ordered
      && List.length ids = List.length (List.sort_uniq compare ids)
      && List.for_all (fun id -> Plan.find ext.Extend.plan id <> None) ids)

let () =
  Alcotest.run "extend"
    [ ( "thm-5.2-5.3",
        List.map QCheck_alcotest.to_alcotest
          [ prop_completeness; prop_soundness; prop_minimality_justified;
            prop_minimality_bounded; prop_deliver_to_decrypts;
            prop_strip_recovers; prop_key_distribution_obeys_authorizations;
            prop_dispatch_structure ] ) ]
