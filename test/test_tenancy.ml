(* Multi-tenant sharded serving: the isolation & determinism battery.

   1. Shard_lru — a sharded cache must be observationally identical to
      the single-table Lru it replaces: a randomized op stream
      (find/peek/add/remap with rekeying, drops and collisions) is
      replayed against the Lru oracle and Shard_lru at 1, 4 and 16
      shards, comparing keys, order, stats and remap drop counts at
      every checkpoint. Sharding partitions lock granularity, never
      behaviour.
   2. cross-tenant isolation — the same query stream served under two
      tenants with different policies produces per-tenant responses
      byte-identical to single-tenant oracle services, disjoint cache
      key sets, additive hit/miss/sub-plan statistics (no cross-tenant
      reuse of anything) and cross_tenant_hits = 0. Isolation is a
      key-space property: the tenant id is a field of the environment
      fingerprint, so two tenants cannot collide even when their
      policies are byte-identical.
   3. shard determinism — one generated stream (queries + policy
      mutations, two tenants) replayed at shards {1,4,16} x jobs
      {1,MPQ_JOBS} yields byte-identical responses, identical
      hit/miss/eviction stats, and identical final plan- and sub-plan
      cache key sets: the PR-5/PR-6 deterministic cache-evolution
      guarantee survives sharding.
   4. per-tenant invalidation — revoking a permission in tenant A
      drops exactly the entries a single-tenant control service would
      drop (the Analysis.Deps prediction), while tenant B's warm hits,
      sub-plan entries, environment fingerprint and counters are
      untouched. *)

open Relalg
open Authz

let byte_identical a b =
  List.equal Attr.equal (Engine.Table.attrs a) (Engine.Table.attrs b)
  && List.equal
       (fun (r1 : Value.t array) r2 -> r1 = r2)
       (Engine.Table.rows a) (Engine.Table.rows b)

let outcome_equal a b =
  match (a, b) with
  | Serve.Service.Table x, Serve.Service.Table y -> byte_identical x y
  | Serve.Service.Rejected x, Serve.Service.Rejected y -> x = y
  | _ -> false

let par_jobs =
  match Sys.getenv_opt "MPQ_JOBS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 4)
  | None -> 4

(* --- Shard_lru vs Lru oracle ------------------------------------------ *)

(* Keys are [structural-fingerprint # environment] composites like the
   serve layer's, so remap can rotate the environment component while
   the shard key stays fixed — the exact rekeying contract Shard_lru
   documents. Rotating back onto an environment that still has
   residents also exercises the remap collision path (later visited
   wins) on both sides of the differential. *)
let test_shard_lru_oracle_differential () =
  let rand = Random.State.make [| 0x5EED; 0x10 |] in
  let skeys = Array.init 10 (Printf.sprintf "fp%02d") in
  let envs = [| "e0"; "e1"; "e2"; "e3" |] in
  let compose sk env = sk ^ "#" ^ env in
  let skey_of k =
    match String.index_opt k '#' with
    | Some i -> String.sub k 0 i
    | None -> k
  in
  let env_idx = ref 0 in
  let oracle = Serve.Lru.create ~capacity:24 in
  let shs =
    List.map
      (fun n -> (n, Serve.Shard_lru.create ~capacity:24 ~shards:n))
      [ 1; 4; 16 ]
  in
  let check msg =
    let keys = Serve.Lru.keys oracle in
    let so = Serve.Lru.stats oracle in
    List.iter
      (fun (n, t) ->
        Alcotest.(check (list string))
          (Printf.sprintf "%s: keys/order @%d shards" msg n)
          keys (Serve.Shard_lru.keys t);
        Alcotest.(check int)
          (Printf.sprintf "%s: length @%d shards" msg n)
          (List.length keys) (Serve.Shard_lru.length t);
        let st = Serve.Shard_lru.stats t in
        Alcotest.(check (list int))
          (Printf.sprintf "%s: stats @%d shards" msg n)
          [ so.Serve.Lru.hits; so.Serve.Lru.misses; so.Serve.Lru.insertions;
            so.Serve.Lru.evictions ]
          [ st.Serve.Shard_lru.hits; st.Serve.Shard_lru.misses;
            st.Serve.Shard_lru.insertions; st.Serve.Shard_lru.evictions ])
      shs
  in
  for step = 1 to 600 do
    let r = Random.State.int rand 100 in
    let sk = skeys.(Random.State.int rand (Array.length skeys)) in
    let k = compose sk envs.(!env_idx) in
    if r < 45 then (
      let v = Random.State.int rand 1000 in
      Serve.Lru.add oracle k v;
      List.iter (fun (_, t) -> Serve.Shard_lru.add t ~skey:sk k v) shs)
    else if r < 75 then (
      let o = Serve.Lru.find oracle k in
      List.iter
        (fun (n, t) ->
          if Serve.Shard_lru.find t ~skey:sk k <> o then
            Alcotest.failf "step %d: find diverges @%d shards" step n)
        shs)
    else if r < 90 then (
      let o = Serve.Lru.peek oracle k and m = Serve.Lru.mem oracle k in
      List.iter
        (fun (n, t) ->
          if Serve.Shard_lru.peek t ~skey:sk k <> o then
            Alcotest.failf "step %d: peek diverges @%d shards" step n;
          if Serve.Shard_lru.mem t ~skey:sk k <> m then
            Alcotest.failf "step %d: mem diverges @%d shards" step n)
        shs)
    else (
      (* environment rotation: rekey every binding (shard key fixed),
         dropping the multiples of 7 — Lru.remap's drop + collision
         semantics must survive sharding verbatim *)
      env_idx := (!env_idx + 1) mod Array.length envs;
      let nenv = envs.(!env_idx) in
      let f k v =
        if v mod 7 = 0 then None else Some (compose (skey_of k) nenv, v + 1)
      in
      let d0 = Serve.Lru.remap oracle f in
      List.iter
        (fun (n, t) ->
          let d = Serve.Shard_lru.remap t f in
          if d <> d0 then
            Alcotest.failf "step %d: remap dropped %d, oracle %d @%d shards"
              step d d0 n)
        shs);
    if step mod 25 = 0 then check (Printf.sprintf "step %d" step)
  done;
  check "final";
  List.iter (fun (_, t) -> Serve.Shard_lru.clear t) shs;
  Serve.Lru.clear oracle;
  check "after clear"

let test_shard_lru_edges () =
  Alcotest.check_raises "capacity < 1"
    (Invalid_argument "Shard_lru.create: capacity 0 < 1") (fun () ->
      ignore (Serve.Shard_lru.create ~capacity:0 ~shards:1));
  Alcotest.check_raises "shards < 1"
    (Invalid_argument "Shard_lru.create: shards 0 < 1") (fun () ->
      ignore (Serve.Shard_lru.create ~capacity:8 ~shards:0));
  let t = Serve.Shard_lru.create ~capacity:8 ~shards:4 in
  Alcotest.(check int) "capacity" 8 (Serve.Shard_lru.capacity t);
  Alcotest.(check int) "shards" 4 (Serve.Shard_lru.shards t);
  let skeys = List.init 12 (Printf.sprintf "k%d") in
  List.iter
    (fun sk ->
      let i = Serve.Shard_lru.shard_of t ~skey:sk in
      Alcotest.(check bool) "shard index in range" true (i >= 0 && i < 4);
      Alcotest.(check int) "shard placement is stable" i
        (Serve.Shard_lru.shard_of t ~skey:sk))
    skeys;
  List.iteri (fun i sk -> Serve.Shard_lru.add t ~skey:sk sk i) skeys;
  Alcotest.(check int) "bounded" 8 (Serve.Shard_lru.length t);
  List.iter (fun sk -> ignore (Serve.Shard_lru.peek t ~skey:sk sk)) skeys;
  Alcotest.(check int) "probe counters sum to the peek count" 12
    (Array.fold_left ( + ) 0 (Serve.Shard_lru.probes t));
  Serve.Shard_lru.clear t;
  Alcotest.(check int) "clear empties" 0 (Serve.Shard_lru.length t);
  Alcotest.(check (list string)) "clear empties keys" []
    (Serve.Shard_lru.keys t)

(* --- service fixtures ------------------------------------------------- *)

let example_env () = Policy_dsl.parse Policy_dsl.example

let demo_tables (env : Policy_dsl.t) =
  let find name =
    List.find (fun s -> s.Schema.name = name) env.Policy_dsl.schemas
  in
  let s x = Value.Str x and n x = Value.Int x in
  let v = Value.date_of_string in
  [ ( "Hosp",
      Engine.Table.of_schema (find "Hosp")
        [ [| s "alice"; v "1980-01-01"; s "stroke"; s "tpa" |];
          [| s "bob"; v "1975-05-12"; s "stroke"; s "surgery" |];
          [| s "carol"; v "1990-09-30"; s "flu"; s "rest" |];
          [| s "dave"; v "1968-03-22"; s "stroke"; s "tpa" |] ] );
    ( "Ins",
      Engine.Table.of_schema (find "Ins")
        [ [| s "alice"; n 120 |]; [| s "bob"; n 300 |];
          [| s "carol"; n 80 |]; [| s "dave"; n 150 |] ] ) ]

let example_service ?pool ?shards ?policy () =
  let env = example_env () in
  Serve.Service.create ?pool ?shards
    ~policy:(Option.value ~default:env.Policy_dsl.policy policy)
    ~subjects:env.Policy_dsl.subjects ~tables:(demo_tables env) ()

let running_query =
  "select T, avg(P) from Hosp join Ins on S=C where D='stroke' \
   group by T having P>100"

(* random-catalog tables, deterministic rows (test_serve's fixture) *)
let gen_catalog_tables () =
  let mk schema n row =
    (schema.Schema.name, Engine.Table.of_schema schema (List.init n row))
  in
  let strs = [| "ga"; "bu"; "zo"; "meu" |] in
  [ mk Gen.rel1 17 (fun i ->
        [| Value.Int (i mod 7); Value.Int (i * 3 mod 11);
           Value.Str strs.(i mod 4); Value.Int (i mod 5) |]);
    mk Gen.rel2 13 (fun i ->
        [| Value.Int (i mod 7); Value.Int (i mod 9); Value.Str strs.(i mod 4) |]);
    mk Gen.rel3 11 (fun i -> [| Value.Int (i mod 6); Value.Int (i mod 4) |]) ]

let udf_impls =
  [ ( "f",
      fun vals ->
        let total =
          List.fold_left
            (fun acc v ->
              match Value.to_float v with Some f -> acc +. f | None -> acc)
            0.0 vals
        in
        Value.Int (int_of_float total mod 97) ) ]

let gen_service ?pool ?shards policy =
  Serve.Service.create ?pool ?shards ~policy ~subjects:Gen.subjects
    ~tables:(gen_catalog_tables ()) ~udfs:udf_impls ~deliver_to:Gen.user ()

(* --- tenant registry -------------------------------------------------- *)

let test_tenant_registry () =
  let service = example_service ~shards:4 () in
  Alcotest.(check (list string)) "starts with the default tenant"
    [ Serve.Tenancy.default_id ]
    (Serve.Service.tenant_ids service);
  Serve.Service.add_tenant service ~id:"acme" ();
  Alcotest.(check (list string)) "ids sorted" [ "acme"; "default" ]
    (Serve.Service.tenant_ids service);
  (try
     Serve.Service.add_tenant service ~id:"acme" ();
     Alcotest.fail "duplicate tenant id must be refused"
   with Invalid_argument _ -> ());
  (* byte-identical policy, still a disjoint key space: the tenant id
     itself is a fingerprint field *)
  Alcotest.(check bool) "identical policies, distinct environments" false
    (Serve.Service.environment service
    = Serve.Service.environment ~tenant:"acme" service);
  let before_keys = Serve.Service.cache_keys service in
  (* parsing is tenant-scoped too (it needs the tenant's schemas) and
     fails loudly on an unknown id *)
  (try
     ignore (Serve.Service.parse ~tenant:"ghost" service running_query);
     Alcotest.fail "parse under an unknown tenant must be refused"
   with Invalid_argument _ -> ());
  let plan = Serve.Service.parse service running_query in
  let r = Serve.Service.submit ~tenant:"ghost" service plan in
  (match r.Serve.Service.outcome with
  | Serve.Service.Rejected msg ->
      Alcotest.(check bool) "rejection names the tenant" true
        (try
           ignore (Str.search_forward (Str.regexp_string "ghost") msg 0);
           true
         with Not_found -> false)
  | _ -> Alcotest.fail "unknown tenant must be rejected");
  Alcotest.(check string) "refused before keying" "" r.Serve.Service.key;
  Alcotest.(check string) "tenant echoed" "ghost" r.Serve.Service.tenant;
  Alcotest.(check (list string)) "cache untouched by the refusal"
    before_keys
    (Serve.Service.cache_keys service);
  (* the same query under both tenants: one entry each, both warm *)
  let a = Serve.Service.submit_sql service running_query in
  let b = Serve.Service.submit_sql ~tenant:"acme" service running_query in
  Alcotest.(check bool) "disjoint keys for the same query" false
    (a.Serve.Service.key = b.Serve.Service.key);
  Alcotest.(check bool) "equal bytes under equal policies" true
    (outcome_equal a.Serve.Service.outcome b.Serve.Service.outcome);
  Alcotest.(check bool) "acme warm" true
    ((Serve.Service.submit_sql ~tenant:"acme" service running_query)
       .Serve.Service.status = Serve.Service.Hit);
  let stats = Serve.Service.stats service in
  Alcotest.(check int) "tenants counted" 2 stats.Serve.Service.tenants;
  Alcotest.(check int) "shards reported" 4 stats.Serve.Service.shards;
  Alcotest.(check int) "no cross-tenant hits" 0
    stats.Serve.Service.cross_tenant_hits;
  let per = Serve.Service.tenant_stats service in
  let acme = List.assoc "acme" per and dflt = List.assoc "default" per in
  Alcotest.(check int) "acme queries" 2 acme.Serve.Tenancy.queries;
  Alcotest.(check int) "acme hits" 1 acme.Serve.Tenancy.hits;
  Alcotest.(check int) "default queries" 1 dflt.Serve.Tenancy.queries;
  Alcotest.(check int) "ghost refusal charged to no registered tenant" 1
    stats.Serve.Service.rejections

(* --- cross-tenant isolation (property) -------------------------------- *)

let arbitrary_batch_two_policies =
  QCheck.make
    ~print:(fun (qs, _, _) ->
      String.concat "\n--- next query ---\n" (List.map Plan_printer.to_ascii qs))
    QCheck.Gen.(
      triple (Gen.gen_batch ~overlap:0.8 6) Gen.gen_policy Gen.gen_policy)

(* One batch, every query submitted under both tenants, interleaved in
   a single round. Each tenant's subsequence must be indistinguishable
   from a single-tenant oracle service running that tenant's policy —
   statuses, bytes, and (for the default tenant, whose id matches the
   oracle's) cache keys — and every statistic must be additive: any
   cross-tenant reuse of a plan or sub-plan result would show up as a
   hit the oracles don't have. *)
let prop_cross_tenant_isolation =
  QCheck.Test.make ~count:6
    ~name:
      "cross-tenant isolation: disjoint keys, additive stats, \
       oracle-identical bytes"
    arbitrary_batch_two_policies
    (fun (batch, pa, pb) ->
      let multi = gen_service pa in
      Serve.Service.add_tenant multi ~id:"b" ~policy:pb ();
      let reqs =
        List.concat_map
          (fun q ->
            [ Serve.Service.request q;
              Serve.Service.request ~tenant:"b" q ])
          batch
      in
      let rs = Serve.Service.submit_batch_requests multi reqs in
      let ra = List.filteri (fun i _ -> i mod 2 = 0) rs in
      let rb = List.filteri (fun i _ -> i mod 2 = 1) rs in
      let oa = gen_service pa and ob = gen_service pb in
      let osa = Serve.Service.submit_batch oa batch in
      let osb = Serve.Service.submit_batch ob batch in
      let check_against ~tenant ~keys_equal side oracle =
        List.iteri
          (fun i ((m : Serve.Service.response), (o : Serve.Service.response)) ->
            if m.Serve.Service.tenant <> tenant then
              QCheck.Test.fail_reportf "query %d: served under %S, not %S" i
                m.Serve.Service.tenant tenant;
            if m.Serve.Service.status <> o.Serve.Service.status then
              QCheck.Test.fail_reportf "query %d [%s]: status diverges" i
                tenant;
            if keys_equal && m.Serve.Service.key <> o.Serve.Service.key then
              QCheck.Test.fail_reportf "query %d [%s]: key diverges" i tenant;
            if
              (not keys_equal)
              && m.Serve.Service.key = o.Serve.Service.key
            then
              QCheck.Test.fail_reportf
                "query %d [%s]: key ignores the tenant id" i tenant;
            if
              not
                (outcome_equal m.Serve.Service.outcome o.Serve.Service.outcome)
            then
              QCheck.Test.fail_reportf
                "query %d [%s]: bytes diverge from the oracle" i tenant)
          (List.combine side oracle)
      in
      check_against ~tenant:"default" ~keys_equal:true ra osa;
      (* tenant b runs policy pb under id "b"; the oracle runs pb under
         id "default" — bytes equal, keys provably different *)
      check_against ~tenant:"b" ~keys_equal:false rb osb;
      let keys side =
        List.map (fun (r : Serve.Service.response) -> r.Serve.Service.key) side
      in
      let kb = keys rb in
      List.iteri
        (fun i k ->
          if List.mem k kb then
            QCheck.Test.fail_reportf "query %d: key collides across tenants" i)
        (keys ra);
      let s = Serve.Service.stats multi in
      let sa = Serve.Service.stats oa and sb = Serve.Service.stats ob in
      let additive what f =
        if f s <> f sa + f sb then
          QCheck.Test.fail_reportf
            "%s not additive: %d under two tenants, %d + %d in isolation" what
            (f s) (f sa) (f sb)
      in
      additive "hits" (fun (s : Serve.Service.stats) -> s.Serve.Service.hits);
      additive "misses" (fun (s : Serve.Service.stats) ->
          s.Serve.Service.misses);
      additive "insertions" (fun (s : Serve.Service.stats) ->
          s.Serve.Service.insertions);
      (* sub-plan hit/store totals are deliberately NOT compared: the
         hash-consed DAG is structural and service-global, so a second
         tenant planning the same shapes raises occurrence counts and
         shifts which subtrees count as maximal memo positions. That
         changes how many entries get stored — never whose results are
         reused (keys stay tenant-disjoint; bytes match the oracles;
         cross_tenant_hits stays 0). *)
      additive "shared execs" (fun (s : Serve.Service.stats) ->
          s.Serve.Service.shared_execs);
      if s.Serve.Service.cross_tenant_hits <> 0 then
        QCheck.Test.fail_reportf "%d cross-tenant hits"
          s.Serve.Service.cross_tenant_hits;
      (* warm replay: every request hits inside its own tenant's key
         space and answers do not change *)
      let rs2 = Serve.Service.submit_batch_requests multi reqs in
      List.iteri
        (fun i ((r1 : Serve.Service.response), (r2 : Serve.Service.response)) ->
          if r2.Serve.Service.status <> Serve.Service.Hit then
            QCheck.Test.fail_reportf "query %d: warm replay missed" i;
          if r1.Serve.Service.key <> r2.Serve.Service.key then
            QCheck.Test.fail_reportf "query %d: warm replay changed keys" i;
          if
            not
              (outcome_equal r1.Serve.Service.outcome r2.Serve.Service.outcome)
          then QCheck.Test.fail_reportf "query %d: warm replay changed bytes" i)
        (List.combine rs rs2);
      if (Serve.Service.stats multi).Serve.Service.cross_tenant_hits <> 0 then
        QCheck.Test.fail_report "warm replay produced cross-tenant hits";
      true)

(* --- shard determinism ------------------------------------------------ *)

(* One concretized stream — queries under two tenants plus interleaved
   default-tenant policy mutations — replayed at shards {1,4,16} x
   jobs {1,MPQ_JOBS}. Every replay must produce byte-identical
   responses, identical hit/miss/insertion/eviction statistics and
   identical final plan- and sub-plan-cache key sets: capacity and
   recency are global in Shard_lru, so the shard count (like the job
   count since PR 5) is invisible to everything but lock contention. *)
let test_shard_determinism () =
  let rand = Random.State.make [| 0x7E4A47 |] in
  let plan_pool = Array.init 10 (fun _ -> Gen.gen_plan rand) in
  let policy0 = Gen.gen_policy rand in
  let policy_b = Gen.mutate_policy ~mode:`Mixed policy0 rand in
  let events =
    Gen.gen_stream ~repeat_rate:0.6 ~mutation_rate:0.05 ~pool:plan_pool 120
      rand
  in
  (* concretize once: every replay sees the same queries, the same
     tenant assignment, the same mutated policies *)
  let script =
    List.rev
      (snd
         (List.fold_left
            (fun (policy, acc) ev ->
              match ev with
              | Gen.Squery q ->
                  let tenant =
                    if List.length acc mod 3 = 2 then "b" else "default"
                  in
                  (policy, `Query (q, tenant) :: acc)
              | Gen.Smutate ->
                  let policy' = Gen.mutate_policy ~mode:`Mixed policy rand in
                  (policy', `Set policy' :: acc))
            (policy0, []) events))
  in
  let replay ~shards ~jobs () =
    let run pool =
      let service = gen_service ?pool ~shards policy0 in
      Serve.Service.add_tenant service ~id:"b" ~policy:policy_b ();
      let flush batch acc =
        match batch with
        | [] -> acc
        | rs -> acc @ Serve.Service.submit_batch_requests service (List.rev rs)
      in
      let responses, pending =
        List.fold_left
          (fun (acc, batch) ev ->
            match ev with
            | `Query (q, tenant) ->
                (acc, Serve.Service.request ~tenant q :: batch)
            | `Set policy ->
                let acc = flush batch acc in
                Serve.Service.set_policy service policy;
                (acc, []))
          ([], []) script
      in
      let responses = flush pending responses in
      ( responses,
        Serve.Service.cache_keys service,
        Serve.Service.subcache_keys service,
        Serve.Service.stats service,
        Array.fold_left ( + ) 0 (Serve.Service.shard_probes service) )
    in
    if jobs <= 1 then run None
    else
      let pool = Par.create ~name:"tenancy-test" jobs in
      Fun.protect ~finally:(fun () -> Par.shutdown pool) @@ fun () ->
      run (Some pool)
  in
  let base_r, base_keys, base_sub, base_stats, base_probes =
    replay ~shards:1 ~jobs:1 ()
  in
  Alcotest.(check bool) "stream produced queries" true (base_r <> []);
  List.iter
    (fun (shards, jobs) ->
      let label what =
        Printf.sprintf "%s @%d shards, %d jobs" what shards jobs
      in
      let r, keys, sub, stats, probes = replay ~shards ~jobs () in
      Alcotest.(check int) (label "response count") (List.length base_r)
        (List.length r);
      List.iteri
        (fun i ((a : Serve.Service.response), (b : Serve.Service.response)) ->
          if
            a.Serve.Service.status <> b.Serve.Service.status
            || a.Serve.Service.key <> b.Serve.Service.key
            || a.Serve.Service.tenant <> b.Serve.Service.tenant
            || not
                 (outcome_equal a.Serve.Service.outcome b.Serve.Service.outcome)
          then Alcotest.failf "%s diverges" (label (Printf.sprintf "response %d" i)))
        (List.combine base_r r);
      Alcotest.(check (list string)) (label "final plan-cache keys") base_keys
        keys;
      Alcotest.(check (list string)) (label "final sub-plan-cache keys")
        base_sub sub;
      Alcotest.(check (list int)) (label "stats")
        [ base_stats.Serve.Service.hits; base_stats.Serve.Service.misses;
          base_stats.Serve.Service.insertions;
          base_stats.Serve.Service.evictions;
          base_stats.Serve.Service.invalidated;
          base_stats.Serve.Service.reverified;
          base_stats.Serve.Service.retained;
          base_stats.Serve.Service.subplan_hits;
          base_stats.Serve.Service.subplan_stores;
          base_stats.Serve.Service.subplan_invalidated;
          base_stats.Serve.Service.shared_execs ]
        [ stats.Serve.Service.hits; stats.Serve.Service.misses;
          stats.Serve.Service.insertions; stats.Serve.Service.evictions;
          stats.Serve.Service.invalidated; stats.Serve.Service.reverified;
          stats.Serve.Service.retained; stats.Serve.Service.subplan_hits;
          stats.Serve.Service.subplan_stores;
          stats.Serve.Service.subplan_invalidated;
          stats.Serve.Service.shared_execs ];
      Alcotest.(check int) (label "cross-tenant hits") 0
        stats.Serve.Service.cross_tenant_hits;
      Alcotest.(check int) (label "worker probe volume") base_probes probes)
    [ (1, par_jobs); (4, 1); (4, par_jobs); (16, 1); (16, par_jobs) ]

(* --- per-tenant invalidation ------------------------------------------ *)

let test_per_tenant_invalidation () =
  let original = example_env () in
  let revoked =
    (* Y loses plaintext P on Ins — a fact the running query's plan
       provably depends on *)
    Policy_dsl.parse
      (Str.global_replace
         (Str.regexp_string "authorize Ins to Y plain P enc C")
         "authorize Ins to Y enc C" Policy_dsl.example)
  in
  let multi = example_service ~shards:4 () in
  Serve.Service.add_tenant multi ~id:"b" ();
  let submit tenant = Serve.Service.submit_sql ~tenant multi running_query in
  let a1 = submit "default" in
  let b1 = submit "b" in
  Alcotest.(check bool) "default warm" true
    ((submit "default").Serve.Service.status = Serve.Service.Hit);
  Alcotest.(check bool) "b warm" true
    ((submit "b").Serve.Service.status = Serve.Service.Hit);
  (* the Deps prediction that makes the default-tenant drop mandatory *)
  (match a1.Serve.Service.planned with
  | None -> Alcotest.fail "running query should be plannable"
  | Some r ->
      let deps =
        Analysis.Deps.of_extended
          ~deliver_to:
            (List.find
               (fun s -> s.Subject.role = Subject.User)
               original.Policy_dsl.subjects)
          ~extended:r.Planner.Optimizer.extended
          ~clusters:r.Planner.Optimizer.clusters ()
      in
      Alcotest.(check bool) "revoked fact is a dependency" true
        (Analysis.Fact.Set.mem
           { Analysis.Fact.subject = Subject.provider "Y";
             attr = Attr.make "P"; level = Analysis.Fact.Plain }
           deps));
  (* control: the same warm-up + revoke on a single-tenant service is
     the exact prediction for what tenant-scoped migration may drop *)
  let control = example_service () in
  ignore (Serve.Service.submit_sql control running_query);
  ignore (Serve.Service.submit_sql control running_query);
  Serve.Service.set_policy control revoked.Policy_dsl.policy;
  let cs = Serve.Service.stats control in
  let before = Serve.Service.stats multi in
  let env_a = Serve.Service.environment multi in
  let env_b = Serve.Service.environment ~tenant:"b" multi in
  Serve.Service.set_policy multi revoked.Policy_dsl.policy;
  let after = Serve.Service.stats multi in
  Alcotest.(check int) "plan drops match the single-tenant prediction"
    cs.Serve.Service.invalidated
    (after.Serve.Service.invalidated - before.Serve.Service.invalidated);
  Alcotest.(check int) "sub-plan drops match the single-tenant prediction"
    cs.Serve.Service.subplan_invalidated
    (after.Serve.Service.subplan_invalidated
    - before.Serve.Service.subplan_invalidated);
  Alcotest.(check bool) "default's environment rotated" false
    (Serve.Service.environment multi = env_a);
  Alcotest.(check string) "b's environment did not rotate" env_b
    (Serve.Service.environment ~tenant:"b" multi);
  (* tenant b is untouched in every observable respect *)
  let b2 = submit "b" in
  Alcotest.(check bool) "b still hits after the revoke in default" true
    (b2.Serve.Service.status = Serve.Service.Hit);
  Alcotest.(check string) "b's key survived untouched" b1.Serve.Service.key
    b2.Serve.Service.key;
  Alcotest.(check bool) "b's bytes unchanged" true
    (outcome_equal b1.Serve.Service.outcome b2.Serve.Service.outcome);
  let per = Serve.Service.tenant_stats multi in
  Alcotest.(check int) "b lost no entries" 0
    (List.assoc "b" per).Serve.Tenancy.invalidated;
  Alcotest.(check int)
    "default charged for every drop (plans + sub-plans)"
    (cs.Serve.Service.invalidated + cs.Serve.Service.subplan_invalidated)
    (List.assoc "default" per).Serve.Tenancy.invalidated;
  Alcotest.(check int) "b's epoch did not advance" 0
    (List.assoc "b" per).Serve.Tenancy.epoch;
  (* the default tenant replans, and the replan equals a cache-less
     service under the revoked policy *)
  let a2 = submit "default" in
  Alcotest.(check bool) "dependent revocation forces a default miss" true
    (a2.Serve.Service.status = Serve.Service.Miss);
  let fresh = example_service ~policy:revoked.Policy_dsl.policy () in
  Alcotest.(check bool) "default replan equals a cache-less oracle" true
    (outcome_equal a2.Serve.Service.outcome
       (Serve.Service.submit_sql fresh running_query).Serve.Service.outcome);
  Alcotest.(check int) "still no cross-tenant hits" 0
    (Serve.Service.stats multi).Serve.Service.cross_tenant_hits

let () =
  Alcotest.run "tenancy"
    [ ( "shard-lru",
        [ ("oracle differential at 1/4/16 shards", `Quick,
           test_shard_lru_oracle_differential);
          ("bounds, probes, stability, clear", `Quick, test_shard_lru_edges) ]
      );
      ( "tenants",
        [ ("registry, unknown tenant, key-space separation", `Quick,
           test_tenant_registry);
          QCheck_alcotest.to_alcotest prop_cross_tenant_isolation;
          ("per-tenant invalidation with Deps predictions", `Quick,
           test_per_tenant_invalidation) ] );
      ( "determinism",
        [ ("one stream at shards {1,4,16} x jobs {1,N}", `Slow,
           test_shard_determinism) ] ) ]
