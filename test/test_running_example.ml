(* End-to-end checks of the paper's running example against the published
   figures: profiles (Fig. 3), overall views (Fig. 4), authorized
   relations (Ex. 4.1), candidates (Figs. 5-6), minimally extended plans
   (Fig. 7), key establishment and dispatch (Sec. 6, Fig. 8). *)

open Relalg
open Authz
open Paper_example

let attr_set = Alcotest.testable Attr.Set.pp Attr.Set.equal
let profile = Alcotest.testable Profile.pp Profile.equal

let subject_set =
  Alcotest.testable Subject.pp_set Subject.Set.equal

let set = Attr.Set.of_names
let subjects_of l = Subject.Set.of_list l

(* --- Fig. 4: overall views --------------------------------------- *)

let check_view name s plain enc () =
  let v = Authorization.view policy s in
  Alcotest.check attr_set (name ^ " plain") (set plain)
    v.Authorization.plain;
  Alcotest.check attr_set (name ^ " enc") (set enc) v.Authorization.enc

let view_tests =
  [ ("P_H/E_H", `Quick, check_view "H" h [ "S"; "B"; "D"; "T"; "C" ] [ "P" ]);
    ("P_I/E_I", `Quick, check_view "I" i [ "B"; "C"; "P" ] [ "S"; "D"; "T" ]);
    ("P_U/E_U", `Quick, check_view "U" u [ "S"; "D"; "T"; "C"; "P" ] []);
    ("P_X/E_X", `Quick, check_view "X" x [ "D"; "T" ] [ "S"; "C"; "P" ]);
    ("P_Y/E_Y", `Quick, check_view "Y" y [ "B"; "D"; "T"; "P" ] [ "S"; "C" ]);
    ("P_Z/E_Z", `Quick, check_view "Z" z [ "S"; "T"; "C" ] [ "D"; "P" ]) ]

(* --- Fig. 3: profiles along the original plan --------------------- *)

let profile_tests =
  let n = build_plan () in
  let profiles = Profile.annotate n.plan in
  let check name node expected () =
    Alcotest.check profile name expected
      (Hashtbl.find profiles (Plan.id node))
  in
  [ ( "π S,D,T",
      `Quick,
      check "proj" n.n_proj (Profile.make ~vp:[ "S"; "D"; "T" ] ()) );
    ( "σ D=stroke",
      `Quick,
      check "sel" n.n_sel
        (Profile.make ~vp:[ "S"; "D"; "T" ] ~ip:[ "D" ] ()) );
    ( "⋈ S=C",
      `Quick,
      check "join" n.n_join
        (Profile.make
           ~vp:[ "S"; "D"; "T"; "C"; "P" ]
           ~ip:[ "D" ]
           ~eq:[ [ "S"; "C" ] ]
           ()) );
    ( "γ T,avg(P)",
      `Quick,
      check "group" n.n_group
        (Profile.make ~vp:[ "T"; "P" ] ~ip:[ "D"; "T" ]
           ~eq:[ [ "S"; "C" ] ]
           ()) );
    ( "σ avg(P)>100",
      `Quick,
      check "having" n.n_having
        (Profile.make ~vp:[ "T"; "P" ]
           ~ip:[ "D"; "T"; "P" ]
           ~eq:[ [ "S"; "C" ] ]
           ()) ) ]

(* --- Example 4.1: authorized relations ----------------------------- *)

let example_4_1 =
  let r =
    Profile.make ~vp:[ "P" ] ~ve:[ "B"; "S"; "C" ] ~eq:[ [ "S"; "C" ] ] ()
  in
  let auth s = Authorized.is_authorized (Authorization.view policy s) r in
  let fails s cond () =
    match Authorized.check (Authorization.view policy s) r with
    | Ok () -> Alcotest.failf "%s should not be authorized" (Subject.name s)
    | Error v -> (
        match (cond, v) with
        | `Plain, Authorized.Plaintext_violation _
        | `Enc, Authorized.Encrypted_violation _
        | `Unif, Authorized.Uniformity_violation _ ->
            ()
        | _ ->
            Alcotest.failf "%s fails with unexpected violation %a"
              (Subject.name s) Authorized.pp_violation v)
  in
  [ ("Y is authorized", `Quick, fun () -> Alcotest.(check bool) "Y" true (auth y));
    ("H violates condition 1 (P)", `Quick, fails h `Plain);
    ("U violates condition 2 (B)", `Quick, fails u `Enc);
    ("I violates condition 3 (SC)", `Quick, fails i `Unif) ]

(* --- Figs. 5-6: minimum required views and candidates -------------- *)

let candidate_tests =
  let n = build_plan () in
  let config = Opreq.resolve_conflicts Opreq.default n.plan in
  let lam = Candidates.compute ~policy ~subjects ~config n.plan in
  let check name node expected () =
    Alcotest.check subject_set name
      (subjects_of expected)
      (Candidates.candidates_of lam node)
  in
  [ ( "conflict resolution forces avg(P) plaintext at having",
      `Quick,
      fun () ->
        Alcotest.check attr_set "Ap(having)"
          (set [ "P" ])
          (Opreq.plaintext_attrs config n.n_having) );
    ("Λ(σD) = HIUXYZ", `Quick, check "sel" n.n_sel [ h; i; u; x; y; z ]);
    ("Λ(⋈) = HUXYZ", `Quick, check "join" n.n_join [ h; u; x; y; z ]);
    ("Λ(γ) = HUXYZ", `Quick, check "group" n.n_group [ h; u; x; y; z ]);
    ("Λ(σavg) = UY", `Quick, check "having" n.n_having [ u; y ]);
    ( "explain: I excluded by uniformity at the join (Sec. 5)",
      `Quick,
      fun () ->
        let n = build_plan () in
        let config = Opreq.resolve_conflicts Opreq.default n.plan in
        let verdicts =
          Candidates.explain ~policy ~subjects ~config n.plan n.n_join
        in
        (match List.assoc i verdicts with
        | Some (Authorized.Uniformity_violation cls) ->
            Alcotest.check attr_set "class" (set [ "S"; "C" ]) cls
        | _ -> Alcotest.fail "expected uniformity violation for I");
        match List.assoc y verdicts with
        | None -> ()
        | Some v ->
            Alcotest.failf "Y should be a candidate, got %a"
              Authorized.pp_violation v );
    ( "π is source-side",
      `Quick,
      fun () ->
        Alcotest.(check bool) "source" true (Candidates.is_source_side n.n_proj)
    ) ]

(* --- Fig. 7: minimally extended plans ------------------------------ *)

let encrypts_of plan =
  Plan.fold
    (fun acc nd ->
      match Plan.node nd with
      | Plan.Encrypt (a, _) -> Attr.Set.union acc a
      | _ -> acc)
    Attr.Set.empty plan

let decrypts_of plan =
  Plan.fold
    (fun acc nd ->
      match Plan.node nd with
      | Plan.Decrypt (a, _) -> Attr.Set.union acc a
      | _ -> acc)
    Attr.Set.empty plan

let extend_7a () =
  let n = build_plan () in
  let config = Opreq.resolve_conflicts Opreq.default n.plan in
  (n, config, Extend.extend ~policy ~config ~assignment:(assignment_7a n) n.plan)

let extend_7b () =
  let n = build_plan () in
  let config = Opreq.resolve_conflicts Opreq.default n.plan in
  (n, config, Extend.extend ~policy ~config ~assignment:(assignment_7b n) n.plan)

let extension_tests =
  [ ( "7(a): encrypts exactly {S,C,P}",
      `Quick,
      fun () ->
        let _, _, ext = extend_7a () in
        Alcotest.check attr_set "Ak" (set [ "S"; "C"; "P" ])
          (encrypts_of ext.Extend.plan) );
    ( "7(a): decrypts exactly {P}",
      `Quick,
      fun () ->
        let _, _, ext = extend_7a () in
        Alcotest.check attr_set "dec" (set [ "P" ])
          (decrypts_of ext.Extend.plan) );
    ( "7(a): assignment is authorized on the extended plan",
      `Quick,
      fun () ->
        let _, _, ext = extend_7a () in
        match Extend.verify ~policy ext with
        | Ok () -> ()
        | Error e -> Alcotest.fail e );
    ( "7(b): encrypts exactly {D,P}",
      `Quick,
      fun () ->
        let _, _, ext = extend_7b () in
        Alcotest.check attr_set "Ak" (set [ "D"; "P" ])
          (encrypts_of ext.Extend.plan) );
    ( "7(b): assignment is authorized on the extended plan",
      `Quick,
      fun () ->
        let _, _, ext = extend_7b () in
        match Extend.verify ~policy ext with
        | Ok () -> ()
        | Error e -> Alcotest.fail e ) ]

(* --- Sec. 6 / Def. 6.1: keys; Fig. 8: dispatch --------------------- *)

let key_tests =
  [ ( "7(a): clusters {CS}->{H,I}, {P}->{I,Y}",
      `Quick,
      fun () ->
        let n, config, ext = extend_7a () in
        let clusters = Plan_keys.compute ~config ~original:n.plan ext in
        let ids = List.map (fun c -> c.Plan_keys.id) clusters in
        Alcotest.(check (list string)) "cluster ids" [ "CS"; "P" ] ids;
        let holders id =
          let c = List.find (fun c -> c.Plan_keys.id = id) clusters in
          c.Plan_keys.holders
        in
        Alcotest.check subject_set "kCS" (subjects_of [ h; i ]) (holders "CS");
        Alcotest.check subject_set "kP" (subjects_of [ i; y ]) (holders "P") );
    ( "7(a): schemes det for SC, phe for P",
      `Quick,
      fun () ->
        let n, config, ext = extend_7a () in
        let clusters = Plan_keys.compute ~config ~original:n.plan ext in
        let scheme id =
          (List.find (fun c -> c.Plan_keys.id = id) clusters).Plan_keys.scheme
        in
        Alcotest.(check string) "CS" "det"
          (Mpq_crypto.Scheme.name (scheme "CS"));
        Alcotest.(check string) "P" "phe"
          (Mpq_crypto.Scheme.name (scheme "P")) );
    ( "7(b): clusters {D}->{H}, {P}->{I,Y}",
      `Quick,
      fun () ->
        let n, config, ext = extend_7b () in
        let clusters = Plan_keys.compute ~config ~original:n.plan ext in
        let ids = List.map (fun c -> c.Plan_keys.id) clusters in
        Alcotest.(check (list string)) "cluster ids" [ "D"; "P" ] ids;
        let holders id =
          (List.find (fun c -> c.Plan_keys.id = id) clusters).Plan_keys.holders
        in
        Alcotest.check subject_set "kD" (subjects_of [ h ]) (holders "D");
        Alcotest.check subject_set "kP" (subjects_of [ i; y ]) (holders "P") );
    ( "7(a): dispatch has four fragments H,I,X,Y in dependency order",
      `Quick,
      fun () ->
        let n, config, ext = extend_7a () in
        let clusters = Plan_keys.compute ~config ~original:n.plan ext in
        let reqs = Dispatch.requests ext clusters in
        let execs = List.map (fun r -> Subject.name r.Dispatch.subject) reqs in
        (match execs with
        | [ a; b; "X"; "Y" ] when (a = "H" && b = "I") || (a = "I" && b = "H")
          ->
            ()
        | _ ->
            Alcotest.failf "unexpected fragment order: %s"
              (String.concat "," execs));
        let top = List.nth reqs 3 in
        Alcotest.(check (list string)) "Y's keys" [ "P" ]
          top.Dispatch.key_clusters;
        Alcotest.(check (list string)) "Y calls X" [ "req_X" ]
          top.Dispatch.calls ) ]

let () =
  Alcotest.run "running-example"
    [ ("views-fig4", view_tests);
      ("profiles-fig3", profile_tests);
      ("authorized-ex4.1", example_4_1);
      ("candidates-fig6", candidate_tests);
      ("extension-fig7", extension_tests);
      ("keys-dispatch", key_tests) ]
