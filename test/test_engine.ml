(* Execution-engine tests: operators over plaintext, and end-to-end
   equivalence between the original plan and its minimally extended
   variants executed over ciphertext (running example, Fig. 7). *)

open Relalg
open Authz
open Engine
open Paper_example

let tables = Test_engine_data.tables
let expected = Test_engine_data.expected
let v_str = Test_engine_data.v_str
let v_int = Test_engine_data.v_int

let run_plain () =
  let n = build_plan () in
  let ctx = Exec.context (tables ()) in
  Exec.run ctx n.plan

let test_plain () =
  let result = run_plain () in
  Alcotest.(check bool)
    "plain execution matches hand computation" true
    (Table.equal_bag result (expected ()))

let run_extended assignment_of =
  let n = build_plan () in
  let config = Opreq.resolve_conflicts Opreq.default n.plan in
  let ext =
    Extend.extend ~policy ~config ~assignment:(assignment_of n)
      ~deliver_to:u n.plan
  in
  let keyring = Mpq_crypto.Keyring.create ~seed:7L () in
  let clusters = Plan_keys.compute ~config ~original:n.plan ext in
  let crypto = Enc_exec.make keyring clusters in
  let ctx = Exec.context ~crypto (tables ()) in
  (ext, Exec.run ctx ext.Extend.plan, ctx)

let test_extended_7a () =
  let _, result, _ = run_extended assignment_7a in
  Alcotest.(check bool)
    "7(a) over ciphertext = plain result" true
    (Table.equal_bag result (expected ()))

let test_extended_7b () =
  let _, result, _ = run_extended assignment_7b in
  Alcotest.(check bool)
    "7(b) over ciphertext = plain result" true
    (Table.equal_bag result (expected ()))

let test_monitor_clean () =
  let n = build_plan () in
  let config = Opreq.resolve_conflicts Opreq.default n.plan in
  let ext =
    Extend.extend ~policy ~config ~assignment:(assignment_7a n) ~deliver_to:u
      n.plan
  in
  let keyring = Mpq_crypto.Keyring.create ~seed:7L () in
  let clusters = Plan_keys.compute ~config ~original:n.plan ext in
  let crypto = Enc_exec.make keyring clusters in
  let ctx = Exec.context ~crypto (tables ()) in
  let result, report = Monitor.run ~policy ctx ext in
  Alcotest.(check bool) "result ok" true (Table.equal_bag result (expected ()));
  Alcotest.(check int) "no violations" 0 (List.length report.Monitor.violations);
  Alcotest.(check bool)
    "some cross-subject transfers were checked" true
    (List.exists
       (fun e -> match e.Monitor.kind with `Transfer _ -> true | _ -> false)
       report.Monitor.events)

let test_monitor_catches_unauthorized () =
  (* Hand-build a "bad" extension: assign the join to X but skip the
     encryption of S — the monitor must flag the transfer. *)
  let n = build_plan () in
  let config = Opreq.resolve_conflicts Opreq.default n.plan in
  let ext =
    Extend.extend ~policy ~config ~assignment:(assignment_7a n) ~deliver_to:u
      n.plan
  in
  (* strip every Encrypt node, keeping assignments by position: easiest is
     to rebuild an extension with an empty-policy... instead we lie about
     the profiles: point every node's profile at an all-plaintext one. *)
  let bad_profiles = Hashtbl.copy ext.Extend.profiles in
  Hashtbl.iter
    (fun id (p : Profile.t) ->
      let all = Attr.Set.union p.Profile.vp p.Profile.ve in
      Hashtbl.replace bad_profiles id
        { p with Profile.vp = all; Profile.ve = Attr.Set.empty })
    ext.Extend.profiles;
  let bad_ext = { ext with Extend.profiles = bad_profiles } in
  match Extend.verify ~policy bad_ext with
  | Ok () -> Alcotest.fail "expected verification failure"
  | Error _ -> ()

(* --- small operator-level checks ---------------------------------- *)

let test_join_hash_vs_nested () =
  let l = Table.create [ Attr.make "a"; Attr.make "b" ]
      [ [| v_int 1; v_str "x" |]; [| v_int 2; v_str "y" |]; [| v_int 2; v_str "z" |] ]
  in
  let r = Table.create [ Attr.make "c"; Attr.make "d" ]
      [ [| v_int 2; v_int 10 |]; [| v_int 3; v_int 20 |]; [| v_int 2; v_int 30 |] ]
  in
  let la = Plan.base (Schema.make ~name:"L" ~owner:"H" [ ("a", Schema.Tint); ("b", Schema.Tstring) ]) in
  let ra = Plan.base (Schema.make ~name:"R" ~owner:"H" [ ("c", Schema.Tint); ("d", Schema.Tint) ]) in
  let plan = Plan.join (Predicate.conj [ Predicate.Cmp_attr (Attr.make "a", Predicate.Eq, Attr.make "c") ]) la ra in
  let ctx = Exec.context [ ("L", l); ("R", r) ] in
  let result = Exec.run ctx plan in
  Alcotest.(check int) "2x2 matches" 4 (Table.cardinality result)

let test_group_by_aggregates () =
  let t = Table.create [ Attr.make "g"; Attr.make "v" ]
      [ [| v_str "a"; v_int 1 |]; [| v_str "a"; v_int 3 |]; [| v_str "b"; v_int 5 |] ]
  in
  let plan =
    Plan.group_by (Attr.Set.of_names [ "g" ])
      [ Aggregate.make (Aggregate.Sum (Attr.make "v")) ]
      (Plan.base (Schema.make ~name:"T" ~owner:"H" [ ("g", Schema.Tstring); ("v", Schema.Tint) ]))
  in
  let result = Exec.run (Exec.context [ ("T", t) ]) plan in
  let expected =
    Table.create [ Attr.make "g"; Attr.make "v" ]
      [ [| v_str "a"; v_int 4 |]; [| v_str "b"; v_int 5 |] ]
  in
  Alcotest.(check bool) "sums" true (Table.equal_bag result expected)

let test_order_by_limit () =
  let t = Table.create [ Attr.make "g"; Attr.make "v" ]
      [ [| v_str "a"; v_int 3 |]; [| v_str "b"; v_int 1 |]; [| v_str "c"; v_int 2 |] ]
  in
  let schema = Schema.make ~name:"T" ~owner:"H" [ ("g", Schema.Tstring); ("v", Schema.Tint) ] in
  let plan = Plan.limit 2 (Plan.order_by [ (Attr.make "v", Plan.Desc) ] (Plan.base schema)) in
  let result = Exec.run (Exec.context [ ("T", t) ]) plan in
  Alcotest.(check int) "two rows" 2 (Table.cardinality result);
  match Table.rows result with
  | [ r1; r2 ] ->
      Alcotest.(check bool) "descending" true
        (Value.compare r1.(1) r2.(1) > 0);
      Alcotest.(check bool) "top value is 3" true (Value.equal r1.(1) (v_int 3))
  | _ -> Alcotest.fail "unexpected shape"

let test_order_by_over_ope () =
  (* sorting over OPE ciphertext orders like the plaintext *)
  let keyring = Mpq_crypto.Keyring.create ~seed:3L () in
  let crypto = Enc_exec.of_schemes keyring [ ("v", Mpq_crypto.Scheme.Ope) ] in
  let t = Table.create [ Attr.make "v" ]
      [ [| v_int 30 |]; [| v_int 10 |]; [| v_int 20 |] ]
  in
  let schema = Schema.make ~name:"T" ~owner:"H" [ ("v", Schema.Tint) ] in
  let plan =
    Plan.decrypt (Attr.Set.of_names [ "v" ])
      (Plan.order_by [ (Attr.make "v", Plan.Asc) ]
         (Plan.encrypt (Attr.Set.of_names [ "v" ]) (Plan.base schema)))
  in
  let result = Exec.run (Exec.context ~crypto [ ("T", t) ]) plan in
  Alcotest.(check bool) "sorted ascending" true
    (List.map (fun r -> r.(0)) (Table.rows result)
    = [ v_int 10; v_int 20; v_int 30 ])

let () =
  Alcotest.run "engine"
    [ ( "running-example-exec",
        [ ("plain plan executes correctly", `Quick, test_plain);
          ("extended 7(a) over ciphertext", `Quick, test_extended_7a);
          ("extended 7(b) over ciphertext", `Quick, test_extended_7b);
          ("monitor: clean run has no violations", `Quick, test_monitor_clean);
          ( "verify rejects plaintext-leaking extension",
            `Quick,
            test_monitor_catches_unauthorized ) ] );
      ( "operators",
        [ ("hash join", `Quick, test_join_hash_vs_nested);
          ("group-by sum", `Quick, test_group_by_aggregates);
          ("order-by + limit", `Quick, test_order_by_limit);
          ("order-by over OPE ciphertext", `Quick, test_order_by_over_ope) ] ) ]
