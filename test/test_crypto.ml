(* Crypto substrate: bignum arithmetic laws, block-cipher and mode
   round trips, tamper detection, OPE order preservation, Paillier
   homomorphism, PRF determinism, keyring derivation. *)

open Mpq_crypto

let rng () = Prng.create 0xC0FFEEL
let key16 seed = Prng.bytes (Prng.create seed) 16

(* --- Bignum ----------------------------------------------------------- *)

let bn = Alcotest.testable Bignum.pp Bignum.equal

let test_bignum_string_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Bignum.to_string (Bignum.of_string s)))
    [ "0"; "1"; "-1"; "123456789"; "123456789012345678901234567890";
      "-98765432109876543210987654321" ]

let test_bignum_int_roundtrip () =
  List.iter
    (fun i ->
      Alcotest.(check (option int))
        (string_of_int i) (Some i)
        (Bignum.to_int_opt (Bignum.of_int i)))
    [ 0; 1; -1; max_int / 2; min_int / 2; 42 ]

let test_bignum_add_sub () =
  let a = Bignum.of_string "999999999999999999999999" in
  let b = Bignum.of_string "1" in
  Alcotest.check bn "a+b"
    (Bignum.of_string "1000000000000000000000000")
    (Bignum.add a b);
  Alcotest.check bn "a-a" Bignum.zero (Bignum.sub a a);
  Alcotest.check bn "a + (-a)" Bignum.zero (Bignum.add a (Bignum.neg a))

let test_bignum_mul_pow () =
  Alcotest.check bn "10^24"
    (Bignum.of_string "1000000000000000000000000")
    (Bignum.pow (Bignum.of_int 10) 24);
  Alcotest.check bn "(2^62)^2 = 2^124"
    (Bignum.shift_left Bignum.one 124)
    (Bignum.mul (Bignum.shift_left Bignum.one 62) (Bignum.shift_left Bignum.one 62))

let test_bignum_divmod_euclidean () =
  let check a b =
    let a = Bignum.of_int a and b = Bignum.of_int b in
    let q, r = Bignum.divmod a b in
    Alcotest.(check bool) "a = q*b + r" true
      (Bignum.equal a (Bignum.add (Bignum.mul q b) r));
    Alcotest.(check bool) "0 <= r < |b|" true
      (Bignum.sign r >= 0 && Bignum.compare r (Bignum.abs b) < 0)
  in
  List.iter
    (fun (a, b) -> check a b)
    [ (17, 5); (-17, 5); (17, -5); (-17, -5); (0, 3); (4, 4) ]

let test_bignum_gcd_invmod () =
  Alcotest.check bn "gcd(54,24)" (Bignum.of_int 6)
    (Bignum.gcd (Bignum.of_int 54) (Bignum.of_int 24));
  let n = Bignum.of_int 97 in
  for a = 1 to 96 do
    match Bignum.invmod (Bignum.of_int a) n with
    | Some inv ->
        Alcotest.check bn
          (Printf.sprintf "%d * inv mod 97" a)
          Bignum.one
          (Bignum.rem (Bignum.mul (Bignum.of_int a) inv) n)
    | None -> Alcotest.failf "no inverse for %d mod 97" a
  done

let test_bignum_mod_pow_fermat () =
  (* Fermat: a^(p-1) = 1 mod p for prime p *)
  let p = Bignum.of_int 1000003 in
  List.iter
    (fun a ->
      Alcotest.check bn
        (Printf.sprintf "%d^(p-1) mod p" a)
        Bignum.one
        (Bignum.mod_pow ~base:(Bignum.of_int a) ~exp:(Bignum.pred p) ~modulus:p))
    [ 2; 3; 65537 ]

let test_bignum_primality () =
  let r = rng () in
  List.iter
    (fun (n, expect) ->
      Alcotest.(check bool)
        (string_of_int n) expect
        (Bignum.is_probable_prime r (Bignum.of_int n)))
    [ (2, true); (3, true); (4, false); (561, false) (* Carmichael *);
      (7919, true); (7917, false); (1000003, true) ]

let test_bignum_random_prime_bits () =
  let r = rng () in
  List.iter
    (fun bits ->
      let p = Bignum.random_prime r bits in
      Alcotest.(check int) "bit length" bits (Bignum.bit_length p);
      Alcotest.(check bool) "prime" true (Bignum.is_probable_prime r p))
    [ 16; 32; 64 ]

let test_bignum_bytes_roundtrip () =
  let r = rng () in
  for _ = 1 to 50 do
    let v = Bignum.random_bits r (1 + Prng.int r 200) in
    Alcotest.check bn "bytes roundtrip" v
      (Bignum.of_bytes_be (Bignum.to_bytes_be v))
  done

let prop_bignum_ring =
  QCheck.Test.make ~count:500 ~name:"ring laws on 128-bit values"
    QCheck.(make Gen.(pair (pair int int) (pair int int)))
    (fun ((a, b), (c, _)) ->
      let x = Bignum.mul (Bignum.of_int a) (Bignum.of_int c) in
      let y = Bignum.of_int b in
      let z = Bignum.of_int c in
      (* (x + y) + z = x + (y + z), x*(y+z) = x*y + x*z *)
      Bignum.equal
        (Bignum.add (Bignum.add x y) z)
        (Bignum.add x (Bignum.add y z))
      && Bignum.equal
           (Bignum.mul x (Bignum.add y z))
           (Bignum.add (Bignum.mul x y) (Bignum.mul x z)))

let prop_bignum_divmod =
  QCheck.Test.make ~count:500 ~name:"divmod invariant on random values"
    QCheck.(make Gen.(pair (int_range 0 300) (int_range 1 200)))
    (fun (abits, bbits) ->
      let r = Prng.create (Int64.of_int ((abits * 1000) + bbits)) in
      let a = Bignum.random_bits r abits in
      let b = Bignum.succ (Bignum.random_bits r bbits) in
      let q, rm = Bignum.divmod a b in
      Bignum.equal a (Bignum.add (Bignum.mul q b) rm)
      && Bignum.sign rm >= 0
      && Bignum.compare rm b < 0)

(* --- Speck / PRF ------------------------------------------------------ *)

let test_speck_roundtrip () =
  let k = Speck.expand_key (key16 1L) in
  List.iter
    (fun v ->
      Alcotest.(check int64) (Int64.to_string v) v
        (Speck.decrypt_block k (Speck.encrypt_block k v)))
    [ 0L; 1L; -1L; 0x0123456789ABCDEFL; Int64.min_int; Int64.max_int ]

let test_speck_key_sensitivity () =
  let k1 = Speck.expand_key (key16 1L) in
  let k2 = Speck.expand_key (key16 2L) in
  Alcotest.(check bool) "different keys differ" false
    (Speck.encrypt_block k1 42L = Speck.encrypt_block k2 42L)

let test_prf_deterministic () =
  let p = Prf.create (key16 3L) in
  Alcotest.(check int64) "same input same mac" (Prf.mac p "hello")
    (Prf.mac p "hello");
  Alcotest.(check bool) "prefix-free" false
    (Prf.mac p "ab" = Prf.mac p "ab\x00")

let test_prf_expand_length () =
  let p = Prf.create (key16 4L) in
  List.iter
    (fun n ->
      Alcotest.(check int) (string_of_int n) n
        (String.length (Prf.expand p "label" n)))
    [ 1; 8; 16; 33; 100 ]

(* --- Det / Rnd -------------------------------------------------------- *)

let test_det_roundtrip_and_determinism () =
  let k = Det.key_of_string (key16 5L) in
  List.iter
    (fun m -> Alcotest.(check string) "roundtrip" m (Det.decrypt k (Det.encrypt k m)))
    [ ""; "x"; "hello world"; String.make 1000 'z' ];
  Alcotest.(check string) "deterministic" (Det.encrypt k "abc") (Det.encrypt k "abc");
  Alcotest.(check bool) "key separation" false
    (Det.encrypt k "abc" = Det.encrypt (Det.key_of_string (key16 6L)) "abc")

let test_det_tamper_detected () =
  let k = Det.key_of_string (key16 5L) in
  let c = Det.encrypt k "attack at dawn" in
  let c' = Bytes.of_string c in
  Bytes.set c' (String.length c - 1)
    (Char.chr (Char.code (Bytes.get c' (String.length c - 1)) lxor 1));
  Alcotest.check_raises "tamper" (Failure "Det.decrypt: authentication failure")
    (fun () -> ignore (Det.decrypt k (Bytes.to_string c')))

let test_rnd_roundtrip_and_randomness () =
  let k = Rnd.key_of_string (key16 7L) in
  let r = rng () in
  List.iter
    (fun m ->
      Alcotest.(check string) "roundtrip" m (Rnd.decrypt k (Rnd.encrypt k r m)))
    [ ""; "x"; "some plaintext"; String.make 500 'q' ];
  Alcotest.(check bool) "two encryptions differ" false
    (Rnd.encrypt k r "same" = Rnd.encrypt k r "same")

let test_rnd_tamper_detected () =
  let k = Rnd.key_of_string (key16 7L) in
  let c = Rnd.encrypt k (rng ()) "money" in
  let c' = Bytes.of_string c in
  Bytes.set c' 9 (Char.chr (Char.code (Bytes.get c' 9) lxor 0x80));
  Alcotest.check_raises "tamper" (Failure "Rnd.decrypt: authentication failure")
    (fun () -> ignore (Rnd.decrypt k (Bytes.to_string c')))

(* --- OPE --------------------------------------------------------------- *)

let prop_ope_roundtrip =
  QCheck.Test.make ~count:300 ~name:"OPE decrypt inverts encrypt"
    QCheck.(int_range (-1_000_000_000) 1_000_000_000)
    (fun v ->
      let k = Ope.key_of_string (key16 8L) in
      Ope.decrypt k (Ope.encrypt k v) = v)

let prop_ope_order =
  QCheck.Test.make ~count:300 ~name:"OPE preserves strict order"
    QCheck.(pair (int_range (-1_000_000) 1_000_000) (int_range (-1_000_000) 1_000_000))
    (fun (a, b) ->
      let k = Ope.key_of_string (key16 8L) in
      if a = b then Ope.encrypt k a = Ope.encrypt k b
      else if a < b then Ope.encrypt k a < Ope.encrypt k b
      else Ope.encrypt k a > Ope.encrypt k b)

let prop_ope_bytes_order =
  QCheck.Test.make ~count:300 ~name:"OPE byte encoding compares like values"
    QCheck.(pair (int_range (-100000) 100000) (int_range (-100000) 100000))
    (fun (a, b) ->
      let k = Ope.key_of_string (key16 8L) in
      compare a b = compare (Ope.encrypt_bytes k a) (Ope.encrypt_bytes k b))

let test_ope_domain_check () =
  let k = Ope.key_of_string (key16 8L) in
  Alcotest.check_raises "out of domain"
    (Invalid_argument "Ope.encrypt: 1099511627776 out of domain") (fun () ->
      ignore (Ope.encrypt k (1 lsl 40)))

(* --- Paillier ----------------------------------------------------------- *)

let test_paillier_roundtrip () =
  let r = rng () in
  let pk, sk = Paillier.keygen ~bits:192 r in
  List.iter
    (fun m ->
      let m = Bignum.of_int m in
      Alcotest.check bn "roundtrip" m
        (Paillier.decrypt_signed pk sk (Paillier.encrypt pk r m)))
    [ 0; 1; -1; 123456; -987654; 100000000 ]

let prop_paillier_additive =
  let r = rng () in
  let pk, sk = Paillier.keygen ~bits:192 r in
  QCheck.Test.make ~count:50 ~name:"Paillier: dec(c1*c2) = m1+m2"
    QCheck.(pair (int_range (-100000) 100000) (int_range (-100000) 100000))
    (fun (m1, m2) ->
      let c1 = Paillier.encrypt pk r (Bignum.of_int m1) in
      let c2 = Paillier.encrypt pk r (Bignum.of_int m2) in
      Bignum.equal
        (Paillier.decrypt_signed pk sk (Paillier.add pk c1 c2))
        (Bignum.of_int (m1 + m2)))

let prop_paillier_scalar =
  let r = rng () in
  let pk, sk = Paillier.keygen ~bits:192 r in
  QCheck.Test.make ~count:50 ~name:"Paillier: dec(c^k) = m*k"
    QCheck.(pair (int_range (-10000) 10000) (int_range 0 50))
    (fun (m, k) ->
      let c = Paillier.encrypt pk r (Bignum.of_int m) in
      Bignum.equal
        (Paillier.decrypt_signed pk sk (Paillier.mul_scalar pk c (Bignum.of_int k)))
        (Bignum.of_int (m * k)))

let test_paillier_probabilistic () =
  let r = rng () in
  let pk, _ = Paillier.keygen ~bits:192 r in
  Alcotest.(check bool) "ciphertexts differ" false
    (Bignum.equal
       (Paillier.encrypt pk r (Bignum.of_int 5))
       (Paillier.encrypt pk r (Bignum.of_int 5)))

(* --- Keyring / scheme --------------------------------------------------- *)

let test_keyring_cluster_separation () =
  let kr = Keyring.create ~seed:11L () in
  Alcotest.(check bool) "clusters get distinct secrets" false
    (Keyring.cluster_secret kr "SC" = Keyring.cluster_secret kr "P");
  Alcotest.(check string) "derivation is stable"
    (Keyring.cluster_secret kr "SC")
    (Keyring.cluster_secret kr "SC")

let test_wrong_keyring_rejected () =
  let k1 = Keyring.create ~seed:100L () and k2 = Keyring.create ~seed:200L () in
  let d1 = Keyring.det_key k1 "c" and d2 = Keyring.det_key k2 "c" in
  let c = Det.encrypt d1 "secret" in
  (match Det.decrypt d2 c with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "foreign keyring decrypted");
  (* OPE under different keyrings produces incomparable orderings: at
     least the decryption disagrees *)
  let o1 = Keyring.ope_key k1 "c" and o2 = Keyring.ope_key k2 "c" in
  Alcotest.(check bool) "ope keys differ" true
    (Ope.decrypt o2 (Ope.encrypt o1 12345) <> 12345
    || Ope.encrypt o1 12345 <> Ope.encrypt o2 12345)

let test_scheme_selection () =
  let open Scheme in
  Alcotest.(check (option string)) "no ops -> rnd" (Some "rnd")
    (Option.map name (strongest_supporting []));
  Alcotest.(check (option string)) "equality -> det" (Some "det")
    (Option.map name (strongest_supporting [ Cap_equality ]));
  Alcotest.(check (option string)) "order -> ope" (Some "ope")
    (Option.map name (strongest_supporting [ Cap_order ]));
  Alcotest.(check (option string)) "addition -> phe" (Some "phe")
    (Option.map name (strongest_supporting [ Cap_addition ]));
  Alcotest.(check (option string)) "eq+order -> ope" (Some "ope")
    (Option.map name (strongest_supporting [ Cap_equality; Cap_order ]));
  Alcotest.(check (option string)) "order+addition impossible" None
    (Option.map name (strongest_supporting [ Cap_order; Cap_addition ]))

let q = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "crypto"
    [ ( "bignum",
        [ ("string roundtrip", `Quick, test_bignum_string_roundtrip);
          ("int roundtrip", `Quick, test_bignum_int_roundtrip);
          ("add/sub", `Quick, test_bignum_add_sub);
          ("mul/pow", `Quick, test_bignum_mul_pow);
          ("euclidean divmod", `Quick, test_bignum_divmod_euclidean);
          ("gcd/invmod", `Quick, test_bignum_gcd_invmod);
          ("mod_pow (Fermat)", `Quick, test_bignum_mod_pow_fermat);
          ("primality", `Quick, test_bignum_primality);
          ("random primes", `Quick, test_bignum_random_prime_bits);
          ("bytes roundtrip", `Quick, test_bignum_bytes_roundtrip);
          q prop_bignum_ring; q prop_bignum_divmod ] );
      ( "speck-prf",
        [ ("speck roundtrip", `Quick, test_speck_roundtrip);
          ("speck key sensitivity", `Quick, test_speck_key_sensitivity);
          ("prf deterministic and prefix-free", `Quick, test_prf_deterministic);
          ("prf expand length", `Quick, test_prf_expand_length) ] );
      ( "det-rnd",
        [ ("det roundtrip/determinism", `Quick, test_det_roundtrip_and_determinism);
          ("det tamper detection", `Quick, test_det_tamper_detected);
          ("rnd roundtrip/randomness", `Quick, test_rnd_roundtrip_and_randomness);
          ("rnd tamper detection", `Quick, test_rnd_tamper_detected) ] );
      ( "ope",
        [ q prop_ope_roundtrip; q prop_ope_order; q prop_ope_bytes_order;
          ("domain check", `Quick, test_ope_domain_check) ] );
      ( "paillier",
        [ ("roundtrip incl. negatives", `Quick, test_paillier_roundtrip);
          q prop_paillier_additive; q prop_paillier_scalar;
          ("probabilistic encryption", `Quick, test_paillier_probabilistic) ] );
      ( "keyring-scheme",
        [ ("cluster separation", `Quick, test_keyring_cluster_separation);
          ("foreign keyring rejected", `Quick, test_wrong_keyring_rejected);
          ("scheme selection rule", `Quick, test_scheme_selection) ] ) ]
