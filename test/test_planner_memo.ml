(* The evaluate memo and the per-round view cache are pure speed-ups:
   planning with [memoize:true] (the default) must return exactly the
   plan that [memoize:false] computes from scratch — same total cost,
   same operation assignment, same key clusters — on every TPC-H query
   under every authorization scenario.

   Node ids come from a global counter, so two plannings of the same
   query never share ids; assignments are compared by id rank (ids are
   allocated in construction order, which is deterministic) and clusters
   by their canonical rendering (cluster ids are attribute-based). *)

open Authz

let assignment_canonical (r : Planner.Optimizer.result) =
  List.map
    (fun (_, s) -> Subject.name s)
    (Imap.bindings r.Planner.Optimizer.extended.Extend.assignment)

let clusters_canonical (r : Planner.Optimizer.result) =
  List.sort String.compare
    (List.map
       (Format.asprintf "%a" Plan_keys.pp_cluster)
       r.Planner.Optimizer.clusters)

let check_config q scenario =
  let label = Printf.sprintf "q%d %s" q (Tpch.Scenarios.name scenario) in
  let run memoize =
    Tpch.Scenarios.optimize ~memoize ~scenario (Tpch.Tpch_queries.query q)
  in
  let plain = run false in
  let memo = run true in
  Alcotest.(check (float 0.0))
    (label ^ ": total cost")
    (Planner.Cost.total plain.Planner.Optimizer.cost)
    (Planner.Cost.total memo.Planner.Optimizer.cost);
  Alcotest.(check (list string))
    (label ^ ": assignment")
    (assignment_canonical plain) (assignment_canonical memo);
  Alcotest.(check (list string))
    (label ^ ": clusters")
    (clusters_canonical plain) (clusters_canonical memo)

let test_all_configs () =
  (* the verifier pass is identical on both sides and dominates the
     runtime of this exhaustive sweep; it has its own tests *)
  let was = !Planner.Optimizer.self_check in
  Planner.Optimizer.self_check := false;
  Fun.protect ~finally:(fun () -> Planner.Optimizer.self_check := was)
  @@ fun () ->
  List.iter
    (fun (q, _, _) -> List.iter (check_config q) Tpch.Scenarios.all)
    Tpch.Tpch_queries.all

let () =
  Alcotest.run "planner-memo"
    [ ( "equivalence",
        [ ("memoized = unmemoized on TPC-H 22x3", `Quick, test_all_configs) ]
      ) ]
