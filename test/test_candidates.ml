(* Minimum required views (Def. 5.2) and candidate sets (Def. 5.3),
   including Thm. 5.1's monotonicity as a property over random plans and
   policies. *)

open Relalg
open Authz

let profile = Alcotest.testable Profile.pp Profile.equal
let set = Attr.Set.of_names

(* --- Def. 5.2 unit tests --------------------------------------------- *)

let test_minview_all_encrypted () =
  (* no plaintext requirement: every visible attribute gets encrypted *)
  let p = Profile.make ~vp:[ "a"; "b" ] ~ip:[ "c" ] ~eq:[ [ "a"; "d" ] ] () in
  Alcotest.check profile "min view"
    (Profile.make ~ve:[ "a"; "b" ] ~ip:[ "c" ] ~eq:[ [ "a"; "d" ] ] ())
    (Minview.of_profile ~ap:Attr.Set.empty p)

let test_minview_keeps_ap_plain () =
  let p = Profile.make ~vp:[ "a"; "b" ] () in
  Alcotest.check profile "ap stays plaintext"
    (Profile.make ~vp:[ "a" ] ~ve:[ "b" ] ())
    (Minview.of_profile ~ap:(set [ "a" ]) p)

let test_minview_decrypts_ap () =
  (* an attribute already encrypted but needed in plaintext is decrypted *)
  let p = Profile.make ~vp:[ "a" ] ~ve:[ "b" ] () in
  Alcotest.check profile "ap decrypted"
    (Profile.make ~vp:[ "b" ] ~ve:[ "a" ] ())
    (Minview.of_profile ~ap:(set [ "b" ]) p)

let test_minview_implicit_plaintext_untouched () =
  (* implicit plaintext cannot be hidden by later encryption *)
  let p = Profile.make ~vp:[ "a" ] ~ip:[ "d" ] () in
  let v = Minview.of_profile ~ap:Attr.Set.empty p in
  Alcotest.(check bool) "d still implicit plaintext" true
    (Attr.Set.mem (Attr.make "d") v.Profile.ip)

(* --- Thm. 5.1: candidate monotonicity -------------------------------- *)

(* Premise: the node's plaintext-required attributes (visible plaintext of
   its minimum required operand views) all land in the implicit component
   of its result — true for constant selections, vacuously true for
   fully-encryptable operations, false for udfs (which is exactly the
   theorem's carve-out). *)
let prop_thm_5_1 =
  QCheck.Test.make ~count:400 ~name:"Thm 5.1: candidates shrink going up"
    Gen.arbitrary_plan_policy (fun (plan, policy) ->
      let config = Opreq.resolve_conflicts Opreq.default plan in
      let lam =
        Candidates.compute ~policy ~subjects:Gen.subjects ~config plan
      in
      let table = Minview.annotate_min ~config plan in
      let operand_view_union f n =
        List.fold_left
          (fun acc c ->
            match Hashtbl.find_opt table (-Plan.id c) with
            | Some v -> Attr.Set.union acc (f v)
            | None -> acc)
          Attr.Set.empty (Plan.children n)
      in
      (* The theorem presumes the paper's normalized plans: no operand
         attribute vanishes at any node (leaf projections keep only
         consumed columns). A group-by dropping a never-used column
         lowers its own bar relative to its descendants, so we restrict
         the property to plans with the nothing-vanishes shape. *)
      let normalized =
        Plan.fold
          (fun acc n ->
            acc
            && (Plan.is_leaf n
               ||
               let result = Hashtbl.find table (Plan.id n) in
               Attr.Set.subset
                 (operand_view_union Profile.visible n)
                 (Profile.all_attrs result)))
          true plan
      in
      QCheck.assume normalized;
      let ok = ref true in
      Plan.iter
        (fun n ->
          if not (Candidates.is_source_side n) then begin
            let operand_vp = operand_view_union (fun v -> v.Profile.vp) n in
            let result = Hashtbl.find table (Plan.id n) in
            (* premise: attributes read in plaintext leave a plaintext
               implicit trace (σ with a constant does; a udf — leaving
               only an equivalence trace — is the theorem's carve-out) *)
            let premise = Attr.Set.subset operand_vp result.Profile.ip in
            if premise then
              let cand_n = Candidates.candidates_of lam n in
              Plan.iter
                (fun anc ->
                  if
                    Plan.id anc <> Plan.id n
                    && Plan.descendants anc n
                    && not (Candidates.is_source_side anc)
                  then
                    let cand_anc = Candidates.candidates_of lam anc in
                    if not (Subject.Set.subset cand_anc cand_n) then
                      ok := false)
                plan
          end)
        plan;
      !ok)

(* the user with full plaintext visibility is always a candidate *)
let prop_full_plaintext_always_candidate =
  QCheck.Test.make ~count:200 ~name:"omniscient user is candidate everywhere"
    Gen.arbitrary_plan (fun plan ->
      let policy =
        Authorization.make ~schemas:Gen.schemas
          (List.map
             (fun s ->
               Authorization.rule ~rel:s.Schema.name
                 ~plain:(List.map Attr.name (Schema.attr_list s))
                 (To Gen.user))
             Gen.schemas)
      in
      let config = Opreq.resolve_conflicts Opreq.default plan in
      let lam =
        Candidates.compute ~policy ~subjects:Gen.subjects ~config plan
      in
      Plan.fold
        (fun acc n ->
          acc
          && (Candidates.is_source_side n
             || Subject.Set.mem Gen.user (Candidates.candidates_of lam n)))
        true plan)

(* a subject with no authorizations is never a candidate *)
let prop_unauthorized_never_candidate =
  QCheck.Test.make ~count:200 ~name:"subject with no grants is never candidate"
    Gen.arbitrary_plan_policy (fun (plan, policy) ->
      let stranger = Subject.provider "W" in
      let config = Opreq.resolve_conflicts Opreq.default plan in
      let lam =
        Candidates.compute ~policy ~subjects:(stranger :: Gen.subjects)
          ~config plan
      in
      Plan.fold
        (fun acc n ->
          acc
          && not (Subject.Set.mem stranger (Candidates.candidates_of lam n)))
        true plan)

let () =
  Alcotest.run "candidates"
    [ ( "minview-def5.2",
        [ ("all encrypted by default", `Quick, test_minview_all_encrypted);
          ("Ap stays plaintext", `Quick, test_minview_keeps_ap_plain);
          ("Ap gets decrypted", `Quick, test_minview_decrypts_ap);
          ( "implicit plaintext is sticky",
            `Quick,
            test_minview_implicit_plaintext_untouched ) ] );
      ( "thm-5.1",
        List.map QCheck_alcotest.to_alcotest
          [ prop_thm_5_1; prop_full_plaintext_always_candidate;
            prop_unauthorized_never_candidate ] ) ]
