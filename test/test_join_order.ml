(* Join-order optimization: semantic preservation (same result bags on
   real data), C_out never worsens, and TPC-H improvements. *)

open Relalg
open Engine

let base_stats name =
  let mk card cols = Some (Planner.Estimate.of_widths ~card cols) in
  match name with
  | "R1" -> mk 1000.0 [ ("a", 8.); ("b", 8.); ("c", 12.); ("d", 8.) ]
  | "R2" -> mk 50.0 [ ("e", 8.); ("f", 8.); ("g", 12.) ]
  | "R3" -> mk 10.0 [ ("h", 8.); ("k", 8.) ]
  | _ -> None

let a = Attr.make
let eq x y = Predicate.Cmp_attr (a x, Predicate.Eq, a y)

(* R1 ⋈ R2 ⋈ R3 written biggest-first: the optimizer should start from
   the small tables *)
let chain () =
  let l1 = Plan.project (Attr.Set.of_names [ "a"; "b" ]) (Plan.base Gen.rel1) in
  let l2 = Plan.project (Attr.Set.of_names [ "e"; "f" ]) (Plan.base Gen.rel2) in
  let l3 = Plan.project (Attr.Set.of_names [ "h" ]) (Plan.base Gen.rel3) in
  Plan.join
    (Predicate.conj [ eq "f" "h" ])
    (Plan.join (Predicate.conj [ eq "a" "e" ]) l1 l2)
    l3

let test_cout_improves () =
  let plan = chain () in
  let before = Planner.Join_order.cout ~base:base_stats plan in
  let reordered = Planner.Join_order.reorder ~base:base_stats plan in
  let after = Planner.Join_order.cout ~base:base_stats reordered in
  Alcotest.(check bool)
    (Printf.sprintf "cout %.0f <= %.0f" after before)
    true (after <= before +. 1e-9);
  (* with R3 tiny, the best order does not start from R1 x R2 *)
  Alcotest.(check bool) "strictly better here" true (after < before)

let test_semantics_preserved () =
  let plan = chain () in
  let reordered = Planner.Join_order.reorder ~base:base_stats plan in
  let tables =
    [ ( "R1",
        Table.of_schema Gen.rel1
          (List.init 20 (fun i ->
               [| Value.Int (i mod 7); Value.Int i; Value.Str "x";
                  Value.Int (i * 2) |])) );
      ( "R2",
        Table.of_schema Gen.rel2
          (List.init 15 (fun i ->
               [| Value.Int (i mod 7); Value.Int (i mod 5); Value.Str "y" |]))
      );
      ( "R3",
        Table.of_schema Gen.rel3
          (List.init 6 (fun i -> [| Value.Int (i mod 5); Value.Int i |])) )
    ]
  in
  let run p = Exec.run (Exec.context tables) p in
  Alcotest.(check bool) "same bags" true
    (Table.equal_bag (run plan) (run reordered))

let test_shape_preserved_above () =
  (* operators above/below the join region survive in place *)
  let plan =
    Plan.group_by (Attr.Set.of_names [ "b" ])
      [ Aggregate.make (Aggregate.Sum (a "h")) ]
      (chain ())
  in
  let reordered = Planner.Join_order.reorder ~base:base_stats plan in
  Alcotest.(check string) "root still group_by" "group_by"
    (Plan.operator_name reordered);
  Alcotest.(check int) "same base relations" 3
    (List.length (Plan.base_relations reordered))

let test_disconnected_products_last () =
  (* no predicate connects R3: it must not destroy the R1-R2 join *)
  let l1 = Plan.project (Attr.Set.of_names [ "a" ]) (Plan.base Gen.rel1) in
  let l2 = Plan.project (Attr.Set.of_names [ "e" ]) (Plan.base Gen.rel2) in
  let l3 = Plan.project (Attr.Set.of_names [ "h" ]) (Plan.base Gen.rel3) in
  let plan =
    Plan.join (Predicate.conj [ eq "a" "e" ]) (Plan.product l1 l3) l2
  in
  (* the product sits under the join: region detection keeps it a block,
     so reorder must at least not crash and must preserve semantics *)
  let reordered = Planner.Join_order.reorder ~base:base_stats plan in
  Alcotest.(check int) "three bases" 3
    (List.length (Plan.base_relations reordered))

let test_tpch_q5_improves_or_equal () =
  let base = Tpch.Tpch_schema.base_stats ~sf:1.0 in
  List.iter
    (fun q ->
      let plan = Tpch.Tpch_queries.query q in
      let before = Planner.Join_order.cout ~base plan in
      let after =
        Planner.Join_order.cout ~base (Planner.Join_order.reorder ~base plan)
      in
      Alcotest.(check bool)
        (Printf.sprintf "Q%d: %.3g <= %.3g" q after before)
        true
        (after <= before *. 1.0001))
    [ 2; 3; 5; 7; 8; 9; 10; 21 ]

let test_authz_pipeline_still_works () =
  (* a reordered TPC-H query still plans and verifies under UAPenc *)
  let base = Tpch.Tpch_schema.base_stats ~sf:1.0 in
  let plan = Planner.Join_order.reorder ~base (Tpch.Tpch_queries.query 5) in
  let r = Tpch.Scenarios.optimize ~scenario:Tpch.Scenarios.UAPenc plan in
  match
    Authz.Extend.verify
      ~policy:(Tpch.Scenarios.policy Tpch.Scenarios.UAPenc)
      r.Planner.Optimizer.extended
  with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "join-order"
    [ ( "reorder",
        [ ("C_out improves on bad order", `Quick, test_cout_improves);
          ("semantics preserved on data", `Quick, test_semantics_preserved);
          ("surrounding operators preserved", `Quick, test_shape_preserved_above);
          ("disconnected inputs handled", `Quick, test_disconnected_products_last);
          ("TPC-H joins never worsen", `Quick, test_tpch_q5_improves_or_equal);
          ("plays with authorization pipeline", `Quick, test_authz_pipeline_still_works)
        ] ) ]
