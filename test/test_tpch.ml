(* TPC-H substrate: generator sanity, all 22 query plans build and
   execute, and the three authorization scenarios plan + verify on every
   query. A couple of queries additionally run end-to-end over ciphertext
   and must match their plaintext execution. *)

open Relalg

let sf = 0.001
let data = lazy (Tpch.Tpch_data.generate ~sf ())

let tables () =
  List.map
    (fun s ->
      ( s.Schema.name,
        Engine.Table.of_schema s (List.assoc s.Schema.name (Lazy.force data))
      ))
    Tpch.Tpch_schema.all

(* --- generator -------------------------------------------------------- *)

let test_generator_cardinalities () =
  let d = Lazy.force data in
  let card name = List.length (List.assoc name d) in
  Alcotest.(check int) "regions" 5 (card "region");
  Alcotest.(check int) "nations" 25 (card "nation");
  Alcotest.(check int) "suppliers" 10 (card "supplier");
  Alcotest.(check int) "parts" 200 (card "part");
  Alcotest.(check int) "partsupp = 4x parts" 800 (card "partsupp");
  Alcotest.(check int) "customers" 150 (card "customer");
  Alcotest.(check int) "orders" 1500 (card "orders");
  Alcotest.(check bool) "lineitems ≈ 4x orders" true
    (let l = card "lineitem" in
     l > 1500 && l < 1500 * 8)

let test_generator_foreign_keys () =
  let d = Lazy.force data in
  let ints rel col =
    let schema =
      List.find (fun s -> s.Schema.name = rel) Tpch.Tpch_schema.all
    in
    let t = Engine.Table.of_schema schema (List.assoc rel d) in
    List.map
      (fun row ->
        match Engine.Table.value t row (Attr.make col) with
        | Value.Int i -> i
        | v -> Alcotest.failf "expected int, got %s" (Value.to_string v))
      (Engine.Table.rows t)
  in
  let in_range lo hi = List.for_all (fun v -> v >= lo && v <= hi) in
  Alcotest.(check bool) "l_orderkey in range" true
    (in_range 1 1500 (ints "lineitem" "l_orderkey"));
  Alcotest.(check bool) "o_custkey in range" true
    (in_range 1 150 (ints "orders" "o_custkey"));
  Alcotest.(check bool) "ps_suppkey in range" true
    (in_range 1 10 (ints "partsupp" "ps_suppkey"));
  Alcotest.(check bool) "n_regionkey in range" true
    (in_range 0 4 (ints "nation" "n_regionkey"))

let test_generator_deterministic () =
  let d1 = Tpch.Tpch_data.generate ~sf:0.0005 () in
  let d2 = Tpch.Tpch_data.generate ~sf:0.0005 () in
  Alcotest.(check bool) "same seed, same data" true (d1 = d2)

let test_generator_dates_in_range () =
  let d = Lazy.force data in
  let schema = Tpch.Tpch_schema.orders in
  let t = Engine.Table.of_schema schema (List.assoc "orders" d) in
  let lo = Tpch.Tpch_data.start_date and hi = Tpch.Tpch_data.end_date in
  Alcotest.(check bool) "order dates within [1992, 1998-08-02]" true
    (List.for_all
       (fun row ->
         let v = Engine.Table.value t row (Attr.make "o_orderdate") in
         Value.compare lo v <= 0 && Value.compare v hi <= 0)
       (Engine.Table.rows t))

(* --- all 22 queries build, estimate, execute -------------------------- *)

let test_queries_build () =
  List.iter
    (fun (n, _, build) ->
      let plan = build () in
      Alcotest.(check bool)
        (Printf.sprintf "Q%d non-trivial" n)
        true
        (Plan.size plan > 3);
      (* profiles computable: no Not_executable on the original plan *)
      ignore (Authz.Profile.of_plan plan))
    Tpch.Tpch_queries.all

let test_queries_execute_plain () =
  let ctx =
    Engine.Exec.context ~udfs:Tpch.Tpch_queries.udf_impls (tables ())
  in
  List.iter
    (fun (n, _, build) ->
      let result = Engine.Exec.run ctx (build ()) in
      (* every query returns a well-formed table; most are non-empty at
         this scale but highly selective ones may legitimately be empty *)
      Alcotest.(check bool)
        (Printf.sprintf "Q%d executes" n)
        true
        (Engine.Table.cardinality result >= 0))
    Tpch.Tpch_queries.all

let test_enough_queries_nonempty () =
  let ctx =
    Engine.Exec.context ~udfs:Tpch.Tpch_queries.udf_impls (tables ())
  in
  let nonempty =
    List.filter
      (fun (_, _, build) ->
        Engine.Table.cardinality (Engine.Exec.run ctx (build ())) > 0)
      Tpch.Tpch_queries.all
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d/22 queries non-empty" (List.length nonempty))
    true
    (List.length nonempty >= 15)

(* --- scenarios plan and verify on all queries ------------------------- *)

let test_scenarios_plan_all () =
  List.iter
    (fun (n, _, build) ->
      List.iter
        (fun sc ->
          let r = Tpch.Scenarios.optimize ~scenario:sc (build ()) in
          (match
             Authz.Extend.verify
               ~policy:(Tpch.Scenarios.policy sc)
               r.Planner.Optimizer.extended
           with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "Q%d %s: %s" n (Tpch.Scenarios.name sc) e);
          (* the independent static verifier must agree: zero Error
             diagnostics on every optimizer-produced plan *)
          let diags =
            Verify.Verifier.run
              { Verify.Verifier.policy = Tpch.Scenarios.policy sc;
                config = r.Planner.Optimizer.config;
                extended = r.Planner.Optimizer.extended;
                clusters = r.Planner.Optimizer.clusters;
                requests = r.Planner.Optimizer.requests }
          in
          if Verify.Diag.has_errors diags then
            Alcotest.failf "Q%d %s: static verifier found errors:\n%s" n
              (Tpch.Scenarios.name sc)
              (Verify.Diag.render (Verify.Diag.errors diags));
          Alcotest.(check bool)
            (Printf.sprintf "Q%d %s positive cost" n (Tpch.Scenarios.name sc))
            true
            (Planner.Cost.total r.Planner.Optimizer.cost > 0.0))
        Tpch.Scenarios.all)
    Tpch.Tpch_queries.all

let test_scenario_ordering () =
  (* cumulative: UA >= UAPenc >= UAPmix (more options never cost more) *)
  let total sc =
    List.fold_left
      (fun acc (_, _, build) ->
        let r = Tpch.Scenarios.optimize ~scenario:sc (build ()) in
        let ua = Tpch.Scenarios.optimize ~scenario:Tpch.Scenarios.UA (build ()) in
        acc
        +. (Planner.Cost.total r.Planner.Optimizer.cost
           /. Planner.Cost.total ua.Planner.Optimizer.cost))
      0.0 Tpch.Tpch_queries.all
  in
  let ua = total Tpch.Scenarios.UA in
  let enc = total Tpch.Scenarios.UAPenc in
  let mix = total Tpch.Scenarios.UAPmix in
  Alcotest.(check bool) "UAPenc <= UA" true (enc <= ua +. 1e-6);
  Alcotest.(check bool) "UAPmix <= UAPenc" true (mix <= enc +. 1e-6);
  Alcotest.(check bool) "UAPenc saves at least 30%" true (enc /. ua < 0.7);
  Alcotest.(check bool) "UAPmix saves at least 50%" true (mix /. ua < 0.5)

(* --- encrypted execution equivalence ---------------------------------- *)

let test_encrypted_execution_matches f n =
  let plan = Tpch.Tpch_queries.query n in
  let ctx_plain =
    Engine.Exec.context ~udfs:Tpch.Tpch_queries.udf_impls (tables ())
  in
  let expected = Engine.Exec.run ctx_plain plan in
  (* plan under UAPenc at the same scale, then execute the extended plan *)
  let r =
    Tpch.Scenarios.optimize ~sf ~fold_leaf_filters:false
      ~scenario:Tpch.Scenarios.UAPenc plan
  in
  let keyring = Mpq_crypto.Keyring.create ~seed:99L () in
  let crypto = Engine.Enc_exec.make keyring r.Planner.Optimizer.clusters in
  let ctx =
    Engine.Exec.context ~udfs:Tpch.Tpch_queries.udf_impls ~crypto (tables ())
  in
  let actual =
    Engine.Exec.run ctx r.Planner.Optimizer.extended.Authz.Extend.plan
  in
  Alcotest.(check bool)
    (Printf.sprintf "Q%d encrypted = plain (%d rows)" n
       (Engine.Table.cardinality expected))
    true
    (f expected actual)

let bag_equal = Engine.Table.equal_bag

let () =
  Alcotest.run "tpch"
    [ ( "generator",
        [ ("cardinalities", `Quick, test_generator_cardinalities);
          ("foreign keys in range", `Quick, test_generator_foreign_keys);
          ("deterministic", `Quick, test_generator_deterministic);
          ("dates in range", `Quick, test_generator_dates_in_range) ] );
      ( "queries",
        [ ("all 22 build", `Quick, test_queries_build);
          ("all 22 execute", `Quick, test_queries_execute_plain);
          ("most queries non-empty", `Quick, test_enough_queries_nonempty) ] );
      ( "scenarios",
        [ ("plan + verify all 22 x 3", `Slow, test_scenarios_plan_all);
          ("scenario cost ordering", `Slow, test_scenario_ordering) ] );
      ( "encrypted-execution",
        List.map
          (fun (q, _, _) ->
            ( Printf.sprintf "Q%d over ciphertext" q,
              `Slow,
              fun () -> test_encrypted_execution_matches bag_equal q ))
          Tpch.Tpch_queries.all ) ]
