(* SQL front end: lexer, parser, plan building, error reporting, and
   round trips through the engine. *)

open Relalg
open Mpq_sql

let catalog = [ Paper_example.hosp; Paper_example.ins ]

let parse s = Sql_parser.parse s
let plan s = Sql_plan.parse_and_plan ~catalog s

(* --- lexer ---------------------------------------------------------- *)

let test_lexer_basics () =
  let open Sql_lexer in
  Alcotest.(check bool) "tokens" true
    (tokenize "select A, 12 from t where x <= 3.5 and s = 'it''s'"
    = [ Ident "select"; Ident "a"; Symbol ","; Int 12; Ident "from";
        Ident "t"; Ident "where"; Ident "x"; Symbol "<="; Float 3.5;
        Ident "and"; Ident "s"; Symbol "="; String "it's"; Eof ])

let test_lexer_error () =
  Alcotest.check_raises "bad char" (Sql_lexer.Lex_error ("unexpected '&'", 7))
    (fun () -> ignore (Sql_lexer.tokenize "select &"))

(* --- parser --------------------------------------------------------- *)

let test_parse_running_example () =
  let q =
    parse
      "select T, avg(P) from Hosp join Ins on S = C where D = 'stroke' \
       group by T having P > 100"
  in
  Alcotest.(check int) "select items" 2 (List.length q.Sql_ast.select);
  Alcotest.(check (list string)) "from" [ "hosp"; "ins" ] q.Sql_ast.from;
  Alcotest.(check int) "join conds" 1 (List.length q.Sql_ast.join_on);
  Alcotest.(check int) "where" 1 (List.length q.Sql_ast.where);
  Alcotest.(check (list string)) "group" [ "t" ] q.Sql_ast.group_by;
  Alcotest.(check int) "having" 1 (List.length q.Sql_ast.having)

let test_parse_between_in_or () =
  let q =
    parse
      "select S from Hosp where (D = 'flu' or D = 'cold') and B between \
       date '1980-01-01' and date '1990-01-01' and T in ('tpa', 'rest')"
  in
  Alcotest.(check int) "three conjuncts" 3 (List.length q.Sql_ast.where)

let test_parse_errors () =
  let expect_fail s =
    match parse s with
    | exception Sql_parser.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %s" s
  in
  expect_fail "select from Hosp";
  expect_fail "select S Hosp";
  expect_fail "select S from Hosp where";
  expect_fail "select S from Hosp where D ="

(* --- planning ------------------------------------------------------- *)

let test_plan_shape () =
  let p =
    plan
      "select T, avg(P) from Hosp join Ins on S = C where D = 'stroke' \
       group by T having P > 100"
  in
  (* σ over γ over ⋈ over (σ over π over base, π over base) *)
  Alcotest.(check string) "root is having-select" "select"
    (Plan.operator_name p);
  let ops = List.map Plan.operator_name (Plan.nodes p) in
  Alcotest.(check bool) "has join" true (List.mem "join" ops);
  Alcotest.(check bool) "has group_by" true (List.mem "group_by" ops);
  Alcotest.(check int) "two bases" 2 (List.length (Plan.base_relations p))

let test_plan_pushdown () =
  (* the single-relation filter lands below the join *)
  let p = plan "select S, P from Hosp join Ins on S = C where D = 'stroke'" in
  let rec find_join n =
    match Plan.node n with
    | Plan.Join _ -> Some n
    | _ -> List.find_map find_join (Plan.children n)
  in
  let join = Option.get (find_join p) in
  let left = List.hd (Plan.children join) in
  Alcotest.(check string) "selection below join" "select"
    (Plan.operator_name left)

let test_plan_product_when_unjoined () =
  let p = plan "select S, P from Hosp, Ins" in
  Alcotest.(check bool) "product" true
    (List.exists
       (fun n -> Plan.operator_name n = "product")
       (Plan.nodes p))

let test_plan_case_insensitive () =
  let p = plan "SELECT t FROM hosp WHERE d = 'x'" in
  Alcotest.(check bool) "canonical attr survives" true
    (Attr.Set.mem (Attr.make "T") (Plan.schema p))

let test_plan_errors () =
  let expect_fail s =
    match plan s with
    | exception Sql_plan.Plan_error _ -> ()
    | _ -> Alcotest.failf "expected plan error for %s" s
  in
  expect_fail "select Z from Hosp";
  expect_fail "select S from Nowhere";
  expect_fail "select S, count(*) from Hosp" (* S not grouped *)

(* --- engine round trip ---------------------------------------------- *)

let test_order_limit_parse_and_plan () =
  let p =
    plan "select S, P from Hosp join Ins on S = C order by P desc limit 2"
  in
  Alcotest.(check string) "root is limit" "limit" (Plan.operator_name p);
  match Plan.children p with
  | [ c ] -> Alcotest.(check string) "then order_by" "order_by" (Plan.operator_name c)
  | _ -> Alcotest.fail "limit arity"

let test_distinct () =
  let p = plan "select distinct D from Hosp" in
  Alcotest.(check string) "distinct becomes group_by" "group_by"
    (Plan.operator_name p);
  let tables =
    [ ("Hosp", Engine.Table.of_schema Paper_example.hosp
         [ [| Value.Str "a"; Value.date_of_string "1980-01-01";
              Value.Str "flu"; Value.Str "x" |];
           [| Value.Str "b"; Value.date_of_string "1981-01-01";
              Value.Str "flu"; Value.Str "y" |];
           [| Value.Str "c"; Value.date_of_string "1982-01-01";
              Value.Str "cold"; Value.Str "z" |] ]) ]
  in
  let result = Engine.Exec.run (Engine.Exec.context tables) p in
  Alcotest.(check int) "two distinct values" 2
    (Engine.Table.cardinality result)

let test_sql_executes () =
  let p =
    plan
      "select T, avg(P) from Hosp join Ins on S = C where D = 'stroke' \
       group by T having P > 100"
  in
  let tables =
    [ ("Hosp", Engine.Table.of_schema Paper_example.hosp
         [ [| Value.Str "ann"; Value.date_of_string "1980-01-01";
              Value.Str "stroke"; Value.Str "tpa" |];
           [| Value.Str "bob"; Value.date_of_string "1970-03-02";
              Value.Str "flu"; Value.Str "rest" |] ]);
      ("Ins", Engine.Table.of_schema Paper_example.ins
         [ [| Value.Str "ann"; Value.Int 200 |];
           [| Value.Str "bob"; Value.Int 900 |] ]) ]
  in
  let result = Engine.Exec.run (Engine.Exec.context tables) p in
  Alcotest.(check int) "one group" 1 (Engine.Table.cardinality result)

(* the parser and planner fail only with their own exceptions, never
   with Match_failure / Invalid_argument & co. *)
let prop_parser_total =
  QCheck.Test.make ~count:2000 ~name:"parser is total over garbage"
    QCheck.(string_of_size (QCheck.Gen.int_bound 60))
    (fun input ->
      match plan input with
      | _ -> true
      | exception Sql_lexer.Lex_error _ -> true
      | exception Sql_parser.Parse_error _ -> true
      | exception Sql_plan.Plan_error _ -> true
      | exception _ -> false)

let prop_parser_total_sqlish =
  QCheck.Test.make ~count:2000 ~name:"parser is total over SQL-ish noise"
    (QCheck.make
       QCheck.Gen.(
         let word =
           oneofl
             [ "select"; "from"; "where"; "group"; "by"; "having"; "and";
               "or"; "join"; "on"; "in"; "like"; "between"; "order"; "limit";
               "distinct"; "T"; "P"; "S"; "C"; "D"; "Hosp"; "Ins"; "avg";
               "count"; "sum"; "("; ")"; ","; "="; "<"; ">="; "'x'"; "42";
               "3.5"; "*" ]
         in
         list_size (int_bound 25) word >>= fun ws -> return (String.concat " " ws)))
    (fun input ->
      match plan input with
      | _ -> true
      | exception Sql_lexer.Lex_error _ -> true
      | exception Sql_parser.Parse_error _ -> true
      | exception Sql_plan.Plan_error _ -> true
      | exception _ -> false)

let () =
  Alcotest.run "sql"
    [ ( "lexer",
        [ ("basics", `Quick, test_lexer_basics);
          ("error position", `Quick, test_lexer_error) ] );
      ( "parser",
        [ ("running example", `Quick, test_parse_running_example);
          ("between/in/or", `Quick, test_parse_between_in_or);
          ("errors", `Quick, test_parse_errors) ] );
      ( "planner",
        [ ("shape", `Quick, test_plan_shape);
          ("selection pushdown", `Quick, test_plan_pushdown);
          ("product fallback", `Quick, test_plan_product_when_unjoined);
          ("case insensitivity", `Quick, test_plan_case_insensitive);
          ("errors", `Quick, test_plan_errors) ] );
      ( "robustness",
        List.map QCheck_alcotest.to_alcotest
          [ prop_parser_total; prop_parser_total_sqlish ] );
      ( "integration",
        [ ("executes", `Quick, test_sql_executes);
          ("distinct", `Quick, test_distinct);
          ("order by / limit", `Quick, test_order_limit_parse_and_plan) ] ) ]
