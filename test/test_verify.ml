(* The static plan verifier (lib/verify) against the production
   pipeline and against deliberately corrupted artifacts:

   - property: every plan the optimizer produces over random
     plans/policies verifies with zero Error diagnostics;
   - property: every extension of a candidate-drawn assignment verifies
     with zero Error diagnostics;
   - mutation tests: corrupting one artifact at a time (assignment,
     profiles, injected encryption, key holders, cluster schemes,
     dispatch requests) trips exactly the expected MPQxxx code. *)

open Relalg
open Authz

let has code diags =
  List.exists (fun (d : Verify.Diag.t) -> String.equal d.Verify.Diag.code code) diags

let check_has code diags =
  if not (has code diags) then
    Alcotest.failf "expected %s (%s); got:\n%s" code
      (Option.value ~default:"?" (Verify.Diag.describe code))
      (Verify.Diag.render diags)

let run = Verify.Verifier.run

(* --- properties over random plans/policies --------------------------- *)

let prop_optimizer_clean =
  QCheck.Test.make ~count:120
    ~name:"optimizer-produced plans verify with zero errors"
    Gen.arbitrary_plan_policy (fun (plan, policy) ->
      match
        Planner.Optimizer.plan ~policy ~subjects:Gen.subjects
          ~deliver_to:Gen.user plan
      with
      | exception Planner.Optimizer.No_candidate _ ->
          QCheck.assume_fail ()
      | exception Planner.Optimizer.User_not_authorized _ ->
          QCheck.assume_fail ()
      | r ->
          let diags =
            run
              { Verify.Verifier.policy;
                config = r.Planner.Optimizer.config;
                extended = r.Planner.Optimizer.extended;
                clusters = r.Planner.Optimizer.clusters;
                requests = r.Planner.Optimizer.requests }
          in
          if Verify.Diag.has_errors diags then
            QCheck.Test.fail_reportf "verifier disagrees:\n%s"
              (Verify.Diag.render diags)
          else true)

(* draw one assignment from the candidate sets (as in test_extend) *)
let draw_assignment st lam plan =
  Plan.fold
    (fun acc n ->
      if Candidates.is_source_side n then acc
      else
        let cands = Subject.Set.elements (Candidates.candidates_of lam n) in
        match cands with
        | [] -> acc
        | _ ->
            let i = QCheck.Gen.int_bound (List.length cands - 1) st in
            Imap.add (Plan.id n) (List.nth cands i) acc)
    Imap.empty plan

let plannable lam assignment plan =
  Plan.fold
    (fun acc n ->
      acc
      && (Candidates.is_source_side n || Imap.mem (Plan.id n) assignment
         || Subject.Set.is_empty (Candidates.candidates_of lam n)))
    true plan
  && Plan.fold
       (fun acc n ->
         acc
         && (Candidates.is_source_side n || Imap.mem (Plan.id n) assignment))
       true plan

let gen_case =
  QCheck.Gen.(
    Gen.gen_plan >>= fun plan ->
    Gen.gen_policy >>= fun policy ->
    fun st ->
      let config = Opreq.resolve_conflicts Opreq.default plan in
      let lam =
        Candidates.compute ~policy ~subjects:Gen.subjects ~config plan
      in
      let assignment = draw_assignment st lam plan in
      (plan, policy, config, lam, assignment))

let arbitrary_case =
  QCheck.make
    ~print:(fun (plan, _, _, _, _) -> Plan_printer.to_ascii plan)
    gen_case

let prop_extension_clean =
  QCheck.Test.make ~count:200
    ~name:"candidate-drawn extensions verify with zero errors"
    arbitrary_case (fun (plan, policy, config, lam, assignment) ->
      QCheck.assume (plannable lam assignment plan);
      let ext = Extend.extend ~policy ~config ~assignment plan in
      let input =
        Verify.Verifier.make_input ~policy ~config ~original:plan ext
      in
      let diags = run input in
      if Verify.Diag.has_errors diags then
        QCheck.Test.fail_reportf "verifier disagrees:\n%s"
          (Verify.Diag.render diags)
      else true)

(* --- mutation fixture ------------------------------------------------- *)

let schema_r =
  Schema.make ~name:"R" ~owner:"A" [ ("a", Schema.Tint); ("b", Schema.Tint) ]

let u = Subject.user "U"
let prov_p = Subject.provider "P"
let prov_q = Subject.provider "Q"

let fixture_policy =
  Authorization.make ~schemas:[ schema_r ]
    [ Authorization.rule ~rel:"R" ~plain:[ "a"; "b" ] (To u);
      Authorization.rule ~rel:"R" ~enc:[ "a"; "b" ] (To prov_p) ]

let fixture_pred =
  Predicate.conj [ Predicate.Cmp_const (Attr.make "b", Predicate.Eq, Value.Int 5) ]

(* base R -> select(b=5); assigning the select to P (encrypted-only view)
   forces the extension to inject encrypt{ab}@A below and, via
   deliver_to, decrypt{ab}@U on top *)
let fixture () =
  let plan = Plan.select fixture_pred (Plan.base schema_r) in
  let config = Opreq.resolve_conflicts Opreq.default plan in
  let assignment = Imap.add (Plan.id plan) prov_p Imap.empty in
  let ext =
    Extend.extend ~policy:fixture_policy ~config ~assignment ~deliver_to:u
      plan
  in
  let clusters = Plan_keys.compute ~config ~original:plan ext in
  let requests = Dispatch.requests ext clusters in
  { Verify.Verifier.policy = fixture_policy; config; extended = ext;
    clusters; requests }

let find_node plan pred =
  match List.find_opt (fun n -> pred (Plan.node n)) (Plan.nodes plan) with
  | Some n -> n
  | None -> Alcotest.fail "fixture node not found"

let test_fixture_clean () =
  let diags = run (fixture ()) in
  Alcotest.(check int)
    (Printf.sprintf "clean fixture, got:\n%s" (Verify.Diag.render diags))
    0 (List.length diags)

let test_corrupt_assignment () =
  (* the select lands on a subject with no view at all *)
  let input = fixture () in
  let ext = input.Verify.Verifier.extended in
  let sel =
    find_node ext.Extend.plan (function Plan.Select _ -> true | _ -> false)
  in
  let ext' =
    { ext with
      Extend.assignment =
        Imap.add (Plan.id sel) prov_q ext.Extend.assignment }
  in
  let diags = run { input with Verify.Verifier.extended = ext' } in
  check_has "MPQ011" diags;
  check_has "MPQ012" diags

let test_missing_executor () =
  let input = fixture () in
  let ext = input.Verify.Verifier.extended in
  let sel =
    find_node ext.Extend.plan (function Plan.Select _ -> true | _ -> false)
  in
  let ext' =
    { ext with
      Extend.assignment = Imap.remove (Plan.id sel) ext.Extend.assignment }
  in
  check_has "MPQ010" (run { input with Verify.Verifier.extended = ext' })

let test_tampered_profile () =
  let input = fixture () in
  let ext = input.Verify.Verifier.extended in
  let profiles = Hashtbl.copy ext.Extend.profiles in
  Hashtbl.replace profiles
    (Plan.id ext.Extend.plan)
    (Profile.make ~vp:[ "a" ] ());
  let ext' = { ext with Extend.profiles = profiles } in
  check_has "MPQ001" (run { input with Verify.Verifier.extended = ext' })

let test_missing_profile () =
  let input = fixture () in
  let ext = input.Verify.Verifier.extended in
  let profiles = Hashtbl.copy ext.Extend.profiles in
  Hashtbl.remove profiles (Plan.id ext.Extend.plan);
  let ext' = { ext with Extend.profiles = profiles } in
  check_has "MPQ003" (run { input with Verify.Verifier.extended = ext' })

let test_dropped_encryption () =
  (* hand-build the same assignment WITHOUT the injected encryption:
     P now reads the base relation in plaintext *)
  let plan = Plan.select fixture_pred (Plan.base schema_r) in
  let config = Opreq.resolve_conflicts Opreq.default plan in
  let base =
    find_node plan (function Plan.Base _ -> true | _ -> false)
  in
  let assignment =
    Imap.add (Plan.id base) (Subject.authority "A")
      (Imap.add (Plan.id plan) prov_p Imap.empty)
  in
  let ext =
    { Extend.plan; assignment; profiles = Profile.annotate plan }
  in
  let requests = Dispatch.requests ext [] in
  let diags =
    run
      { Verify.Verifier.policy = fixture_policy; config; extended = ext;
        clusters = []; requests }
  in
  check_has "MPQ011" diags

let test_precondition_violation () =
  (* encrypting b twice: the inner Encrypt leaves b ciphertext, so the
     outer one violates Fig. 2's plaintext precondition *)
  let attr_b = Attr.Set.of_names [ "b" ] in
  let plan = Plan.encrypt attr_b (Plan.encrypt attr_b (Plan.base schema_r)) in
  let config = Opreq.default in
  let auth = Subject.authority "A" in
  let assignment =
    List.fold_left
      (fun acc n -> Imap.add (Plan.id n) auth acc)
      Imap.empty (Plan.nodes plan)
  in
  let ext = { Extend.plan; assignment; profiles = Hashtbl.create 4 } in
  let diags =
    run ~checks:[ Verify.Verifier.Profiles ]
      { Verify.Verifier.policy = fixture_policy; config; extended = ext;
        clusters = []; requests = [] }
  in
  check_has "MPQ002" diags

let test_widened_holders () =
  let input = fixture () in
  let clusters =
    List.map
      (fun (c : Plan_keys.cluster) ->
        { c with
          Plan_keys.holders = Subject.Set.add prov_q c.Plan_keys.holders })
      input.Verify.Verifier.clusters
  in
  let diags = run { input with Verify.Verifier.clusters = clusters } in
  check_has "MPQ032" diags

let test_unauthorized_holder () =
  (* shrink U's grant to plaintext-a only: U still decrypts b at the
     top, so it holds b's key without plaintext authorization *)
  let policy =
    Authorization.make ~schemas:[ schema_r ]
      [ Authorization.rule ~rel:"R" ~plain:[ "a" ] ~enc:[ "b" ] (To u);
        Authorization.rule ~rel:"R" ~enc:[ "a"; "b" ] (To prov_p) ]
  in
  let input = fixture () in
  let diags = run { input with Verify.Verifier.policy = policy } in
  check_has "MPQ030" diags

let test_missing_key () =
  let input = fixture () in
  let clusters =
    List.map
      (fun (c : Plan_keys.cluster) ->
        { c with Plan_keys.holders = Subject.Set.remove u c.Plan_keys.holders })
      input.Verify.Verifier.clusters
  in
  check_has "MPQ031" (run { input with Verify.Verifier.clusters = clusters })

let test_clusterless_attr () =
  let input = fixture () in
  let clusters =
    List.filter
      (fun (c : Plan_keys.cluster) ->
        not (Attr.Set.mem (Attr.make "a") c.Plan_keys.attrs))
      input.Verify.Verifier.clusters
  in
  check_has "MPQ033" (run { input with Verify.Verifier.clusters = clusters })

let test_insufficient_scheme () =
  (* the select evaluates b=5 over ciphertext: downgrading b's cluster
     to Rnd makes that equality test impossible *)
  let input = fixture () in
  let clusters =
    List.map
      (fun (c : Plan_keys.cluster) ->
        if Attr.Set.mem (Attr.make "b") c.Plan_keys.attrs then
          { c with Plan_keys.scheme = Mpq_crypto.Scheme.Rnd }
        else c)
      input.Verify.Verifier.clusters
  in
  check_has "MPQ040" (run { input with Verify.Verifier.clusters = clusters })

let test_spurious_encryption () =
  (* P is plaintext-authorized, yet the plan encrypts a around P's
     select: safe but over-protective (Thm. 5.3 says the extension
     procedure never does this) *)
  let policy =
    Authorization.make ~schemas:[ schema_r ]
      [ Authorization.rule ~rel:"R" ~plain:[ "a"; "b" ] (To u);
        Authorization.rule ~rel:"R" ~plain:[ "a"; "b" ] (To prov_p) ]
  in
  let attr_a = Attr.Set.of_names [ "a" ] in
  let plan =
    Plan.decrypt attr_a
      (Plan.select fixture_pred (Plan.encrypt attr_a (Plan.base schema_r)))
  in
  let config = Opreq.resolve_conflicts Opreq.default plan in
  let auth = Subject.authority "A" in
  let assignment =
    List.fold_left
      (fun acc n ->
        let s =
          match Plan.node n with
          | Plan.Base _ | Plan.Encrypt _ -> auth
          | Plan.Select _ -> prov_p
          | _ -> u
        in
        Imap.add (Plan.id n) s acc)
      Imap.empty (Plan.nodes plan)
  in
  let ext = { Extend.plan; assignment; profiles = Profile.annotate plan } in
  let input =
    Verify.Verifier.make_input ~policy ~config
      ~original:(Plan.strip_crypto plan) ext
  in
  let diags = run input in
  check_has "MPQ020" diags;
  Alcotest.(check bool)
    (Printf.sprintf "no errors, only warnings:\n%s" (Verify.Diag.render diags))
    false
    (Verify.Diag.has_errors diags)

(* --- dispatch mutations ----------------------------------------------- *)

let with_requests input requests =
  { input with Verify.Verifier.requests }

let test_dropped_request () =
  let input = fixture () in
  match input.Verify.Verifier.requests with
  | first :: rest ->
      let diags = run (with_requests input rest) in
      check_has "MPQ055" diags;
      (* the caller still references the dropped fragment *)
      if List.exists (fun (r : Dispatch.request) ->
             List.mem first.Dispatch.name r.Dispatch.calls)
           rest
      then check_has "MPQ050" diags
  | [] -> Alcotest.fail "fixture produced no requests"

let test_reversed_requests () =
  let input = fixture () in
  let diags =
    run (with_requests input (List.rev input.Verify.Verifier.requests))
  in
  check_has "MPQ052" diags

let test_wrong_request_subject () =
  let input = fixture () in
  let requests =
    List.map
      (fun (r : Dispatch.request) ->
        if Subject.equal r.Dispatch.subject prov_p then
          { r with Dispatch.subject = prov_q }
        else r)
      input.Verify.Verifier.requests
  in
  check_has "MPQ053" (run (with_requests input requests))

let test_stripped_keys () =
  let input = fixture () in
  let requests =
    List.map
      (fun (r : Dispatch.request) -> { r with Dispatch.key_clusters = [] })
      input.Verify.Verifier.requests
  in
  check_has "MPQ054" (run (with_requests input requests))

let test_unknown_reference () =
  let input = fixture () in
  let requests =
    List.map
      (fun (r : Dispatch.request) ->
        match r.Dispatch.calls with
        | [] -> r
        | _ :: rest -> { r with Dispatch.calls = "req_nobody" :: rest })
      input.Verify.Verifier.requests
  in
  check_has "MPQ050" (run (with_requests input requests))

let test_call_cycle () =
  let input = fixture () in
  let requests = input.Verify.Verifier.requests in
  let last_name =
    (List.nth requests (List.length requests - 1)).Dispatch.name
  in
  let requests =
    match requests with
    | first :: rest ->
        { first with Dispatch.calls = [ last_name ] } :: rest
    | [] -> []
  in
  check_has "MPQ051" (run (with_requests input requests))

let test_references_scanner () =
  Alcotest.(check (list string))
    "embedded refs" [ "req_A"; "req_P_2" ]
    (Verify.Check_dispatch.references
       "\xe2\x9f\xa6req_A\xe2\x9f\xa7 \xe2\x8b\x88 \xcf\x83(\xe2\x9f\xa6req_P_2\xe2\x9f\xa7)")

let test_catalog_documented () =
  (* every code the checkers can emit is in the catalog, and the
     catalog's codes are unique *)
  let codes = List.map (fun (c, _, _) -> c) Verify.Diag.catalog in
  Alcotest.(check int)
    "no duplicate codes"
    (List.length codes)
    (List.length (List.sort_uniq String.compare codes));
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " described") true
        (Verify.Diag.describe c <> None))
    [ "MPQ001"; "MPQ002"; "MPQ003"; "MPQ010"; "MPQ011"; "MPQ012"; "MPQ020";
      "MPQ030"; "MPQ031"; "MPQ032"; "MPQ033"; "MPQ040"; "MPQ050"; "MPQ051";
      "MPQ052"; "MPQ053"; "MPQ054"; "MPQ055" ]

let () =
  (* the properties drive the optimizer; its own self-check gate would
     turn verifier findings into exceptions before the property sees
     them, so exercise the verifier explicitly *)
  Planner.Optimizer.self_check := false;
  Alcotest.run "verify"
    [ ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_optimizer_clean; prop_extension_clean ] );
      ( "mutations",
        [ ("fixture is clean", `Quick, test_fixture_clean);
          ("corrupt assignment -> MPQ011/012", `Quick, test_corrupt_assignment);
          ("missing executor -> MPQ010", `Quick, test_missing_executor);
          ("tampered profile -> MPQ001", `Quick, test_tampered_profile);
          ("missing profile -> MPQ003", `Quick, test_missing_profile);
          ("dropped encryption -> MPQ011", `Quick, test_dropped_encryption);
          ("double encryption -> MPQ002", `Quick, test_precondition_violation);
          ("widened holders -> MPQ032", `Quick, test_widened_holders);
          ("unauthorized holder -> MPQ030", `Quick, test_unauthorized_holder);
          ("missing key -> MPQ031", `Quick, test_missing_key);
          ("clusterless attribute -> MPQ033", `Quick, test_clusterless_attr);
          ("insufficient scheme -> MPQ040", `Quick, test_insufficient_scheme);
          ("spurious encryption -> MPQ020", `Quick, test_spurious_encryption) ]
      );
      ( "dispatch",
        [ ("dropped request -> MPQ055", `Quick, test_dropped_request);
          ("reversed order -> MPQ052", `Quick, test_reversed_requests);
          ("wrong subject -> MPQ053", `Quick, test_wrong_request_subject);
          ("stripped keys -> MPQ054", `Quick, test_stripped_keys);
          ("unknown reference -> MPQ050", `Quick, test_unknown_reference);
          ("call cycle -> MPQ051", `Quick, test_call_cycle);
          ("reference scanner", `Quick, test_references_scanner) ] );
      ( "catalog",
        [ ("codes documented and unique", `Quick, test_catalog_documented) ]
      ) ]
