(* Fault injection and the resilient runtime: spec parsing, determinism,
   retry/timeout recovery, authorized failover re-planning, degraded
   aborts, and the safety property that no injected fault can widen what
   any subject sees or change a completed result. *)

open Authz
open Paper_example

let planned assignment_of =
  let n = build_plan () in
  let config = Opreq.resolve_conflicts Opreq.default n.plan in
  let ext =
    Extend.extend ~policy ~config ~assignment:(assignment_of n) ~deliver_to:u
      n.plan
  in
  let clusters = Plan_keys.compute ~config ~original:n.plan ext in
  (n, config, ext, clusters)

(* A replanner over the paper example that additionally pushes every
   re-planned extension through the static verifier, failing the test on
   any Error-severity finding (acceptance: every failover-replanned
   assignment verifies clean). *)
let verified_replanner ~exclude =
  let n = build_plan () in
  let remaining =
    List.filter (fun s -> not (Subject.Set.mem s exclude)) subjects
  in
  match
    Planner.Optimizer.plan ~policy ~subjects:remaining ~deliver_to:u n.plan
  with
  | r ->
      let diags =
        Verify.Verifier.run
          { Verify.Verifier.policy;
            config = r.Planner.Optimizer.config;
            extended = r.Planner.Optimizer.extended;
            clusters = r.Planner.Optimizer.clusters;
            requests = r.Planner.Optimizer.requests }
      in
      if Verify.Diag.has_errors diags then
        Alcotest.failf "replanned extension has verifier errors:\n%s"
          (Verify.Diag.render (Verify.Diag.errors diags));
      Some (r.Planner.Optimizer.extended, r.Planner.Optimizer.clusters)
  | exception
      ( Planner.Optimizer.No_candidate _
      | Planner.Optimizer.User_not_authorized _ ) ->
      None

let run_sim ?faults ?retry ?replan ?self_check ?(policy = policy) () =
  let _, config, ext, clusters = planned assignment_7a in
  Distsim.Runtime.execute ~policy
    ~pki:(Distsim.Pki.create ())
    ~keyring:(Mpq_crypto.Keyring.create ~seed:5L ())
    ~user:u
    ~tables:(Test_engine_data.tables ())
    ~config ?self_check ?faults ?retry ?replan ~extended:ext ~clusters ()

let expected = Test_engine_data.expected

let render_trace outcome =
  String.concat "\n"
    (List.map
       (fun e -> Format.asprintf "%a" Distsim.Runtime.pp_event e)
       outcome.Distsim.Runtime.trace)

(* Plan-node ids come from a process-global counter, so two runs that
   each build (and re-plan) their own plan render different raw ids.
   Renumber [n<digits>] tokens by first appearance; everything else in
   the trace must match byte for byte. *)
let canonical_node_ids s =
  let seen = Hashtbl.create 16 in
  Str.global_substitute
    (Str.regexp "n[0-9]+")
    (fun whole ->
      let tok = Str.matched_string whole in
      match Hashtbl.find_opt seen tok with
      | Some c -> c
      | None ->
          let c = Printf.sprintf "n#%d" (Hashtbl.length seen) in
          Hashtbl.add seen tok c;
          c)
    s

let count outcome p =
  List.length (List.filter p outcome.Distsim.Runtime.trace)

let completed outcome =
  match outcome.Distsim.Runtime.status with
  | Distsim.Runtime.Completed t -> Some t
  | Distsim.Runtime.Degraded _ -> None

(* --- spec parsing ------------------------------------------------------ *)

let test_parse_spec () =
  let spec =
    Distsim.Faults.parse " X:crash@4, Y:transient=0.25; Z:slow=1500@0.5 ,H:corrupt=0.1"
  in
  Alcotest.(check string)
    "canonical render" "X:crash@4,Y:transient=0.25,Z:slow=1500@0.5,H:corrupt=0.1"
    (Distsim.Faults.render spec);
  Alcotest.(check string) "slow without prob" "Y:slow=200"
    (Distsim.Faults.render (Distsim.Faults.parse "Y:slow=200"));
  Alcotest.(check int) "empty spec" 0
    (List.length (Distsim.Faults.parse "  "))

let test_parse_spec_errors () =
  let rejects s =
    match Distsim.Faults.parse s with
    | _ -> Alcotest.failf "accepted bad spec %S" s
    | exception Distsim.Faults.Bad_spec _ -> ()
  in
  rejects "nocolon";
  rejects "X:flaky=0.5";
  rejects "X:transient=1.5";
  rejects "X:crash@-1";
  rejects ":transient=0.5";
  rejects "X:slow=abc"

(* --- no faults = old behaviour ----------------------------------------- *)

let test_no_faults_completes () =
  let outcome = run_sim () in
  (match completed outcome with
  | Some t ->
      Alcotest.(check bool) "result" true
        (Engine.Table.equal_bag t (expected ()))
  | None -> Alcotest.fail "degraded without faults");
  Alcotest.(check int) "no retries" 0
    (count outcome (function Distsim.Runtime.Retry _ -> true | _ -> false));
  Alcotest.(check int) "no replans" 0 outcome.Distsim.Runtime.replans

(* --- determinism -------------------------------------------------------- *)

let test_determinism () =
  let spec =
    Distsim.Faults.parse "X:crash@6,Y:transient=0.3,Z:slow=1500@0.4"
  in
  let once () =
    run_sim
      ~faults:(Distsim.Faults.make ~seed:7 spec)
      ~replan:verified_replanner ()
  in
  let a = once () and b = once () in
  Alcotest.(check string) "byte-identical trace"
    (canonical_node_ids (render_trace a))
    (canonical_node_ids (render_trace b));
  Alcotest.(check int) "same simulated clock" a.Distsim.Runtime.clock_ms
    b.Distsim.Runtime.clock_ms;
  Alcotest.(check int) "same replans" a.Distsim.Runtime.replans
    b.Distsim.Runtime.replans;
  match (completed a, completed b) with
  | Some ta, Some tb ->
      Alcotest.(check bool) "same result" true (Engine.Table.equal_bag ta tb)
  | None, None -> ()
  | _ -> Alcotest.fail "one run completed, the other degraded"

(* --- transient faults are retried; denials are not ---------------------- *)

let test_transient_retried_to_success () =
  (* some seed in 1..50 must both inject a transient fault and complete *)
  let spec = Distsim.Faults.parse "X:transient=0.3" in
  let rec search seed =
    if seed > 50 then Alcotest.fail "no seed produced a retried success"
    else
      let outcome =
        run_sim ~faults:(Distsim.Faults.make ~seed spec) ()
      in
      let retries =
        count outcome (function Distsim.Runtime.Retry _ -> true | _ -> false)
      in
      match completed outcome with
      | Some t when retries > 0 ->
          Alcotest.(check bool) "retried run still correct" true
            (Engine.Table.equal_bag t (expected ()))
      | Some _ -> search (seed + 1)
      | None -> Alcotest.fail "transient faults must not degrade the run"
  in
  search 1

(* The policy stripped of every provider rule: X holds nothing, so the
   very first cross-boundary release check (H -> X) is denied. *)
let no_provider_policy =
  Authorization.make ~schemas:[ hosp; ins ]
    [ Authorization.rule ~rel:"Hosp" ~plain:[ "S"; "B"; "D"; "T" ] (To h);
      Authorization.rule ~rel:"Ins" ~plain:[ "C" ] ~enc:[ "P" ] (To h);
      Authorization.rule ~rel:"Hosp" ~plain:[ "B" ] ~enc:[ "S"; "D"; "T" ]
        (To i);
      Authorization.rule ~rel:"Ins" ~plain:[ "C"; "P" ] (To i);
      Authorization.rule ~rel:"Hosp" ~plain:[ "S"; "D"; "T" ] (To u);
      Authorization.rule ~rel:"Ins" ~plain:[ "C"; "P" ] (To u) ]

let test_denial_never_retried () =
  (* enable the Obs counters so we can count retries across the aborted
     run, whose trace is lost to the exception *)
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
  (match
     (* self_check off: let execution reach the release check itself
        rather than the pre-dispatch verifier gate *)
     run_sim ~policy:no_provider_policy ~self_check:false ()
   with
  | _ -> Alcotest.fail "expected Distributed_violation"
  | exception Distsim.Runtime.Distributed_violation msg ->
      Alcotest.(check bool) "denial message" true
        (String.length msg > 0
        && Str.string_match (Str.regexp ".*refuses to release.*") msg 0));
  Alcotest.(check bool) "the denied release check ran" true
    (Obs.counter "distsim.release_checks" >= 1);
  Alcotest.(check int) "an authorization denial is never retried" 0
    (Obs.counter "distsim.retries")

(* --- failover re-planning ----------------------------------------------- *)

let test_crash_fails_over () =
  (* X (join + group-by in Fig. 7a) is down from the start: the runtime
     must declare it dead and re-plan onto the surviving subjects *)
  let outcome =
    run_sim
      ~faults:(Distsim.Faults.make ~seed:1 (Distsim.Faults.parse "X:crash@0"))
      ~replan:verified_replanner ()
  in
  Alcotest.(check bool) "at least one failover" true
    (count outcome
       (function Distsim.Runtime.Failover_replanned _ -> true | _ -> false)
    >= 1);
  Alcotest.(check bool) "replan counter" true
    (outcome.Distsim.Runtime.replans >= 1);
  match completed outcome with
  | Some t ->
      Alcotest.(check bool) "failover preserves the result" true
        (Engine.Table.equal_bag t (expected ()))
  | None -> Alcotest.fail "an authorized alternative exists: X is avoidable"

let test_dead_authority_degrades () =
  (* H owns Hosp: no re-planning can route around it *)
  let outcome =
    run_sim
      ~faults:(Distsim.Faults.make ~seed:1 (Distsim.Faults.parse "H:crash@0"))
      ~replan:verified_replanner ()
  in
  (match outcome.Distsim.Runtime.status with
  | Distsim.Runtime.Completed _ ->
      Alcotest.fail "completed without its data authority"
  | Distsim.Runtime.Degraded d ->
      Alcotest.(check bool) "H among the dead" true
        (List.exists (Subject.equal h) d.Distsim.Runtime.dead));
  Alcotest.(check bool) "degraded abort in trace" true
    (count outcome
       (function Distsim.Runtime.Degraded_abort _ -> true | _ -> false)
    = 1)

let test_no_replanner_degrades () =
  let outcome =
    run_sim
      ~faults:(Distsim.Faults.make ~seed:1 (Distsim.Faults.parse "X:crash@0"))
      ()
  in
  match outcome.Distsim.Runtime.status with
  | Distsim.Runtime.Completed _ -> Alcotest.fail "X was down"
  | Distsim.Runtime.Degraded _ -> ()

(* --- safety sweep -------------------------------------------------------- *)

(* Acceptance: across >= 20 seeds of crash + transient + slow faults,
   every completed run equals the fault-free result, every re-planned
   extension verifies clean (verified_replanner), and no denied release
   or key check is ever followed by a transfer to that subject. *)
let test_safety_sweep () =
  let spec =
    Distsim.Faults.parse
      "X:crash@6,Y:transient=0.25,Z:transient=0.25,X:transient=0.2"
  in
  let completed_runs = ref 0 and degraded_runs = ref 0 in
  for seed = 1 to 25 do
    let outcome =
      run_sim
        ~faults:(Distsim.Faults.make ~seed spec)
        ~replan:verified_replanner ()
    in
    (* trace safety: after a denied check, never a transfer to that subject *)
    let denied = ref [] in
    List.iter
      (fun e ->
        match e with
        | Distsim.Runtime.Release_check { for_; ok = false; _ }
        | Distsim.Runtime.Key_check { by = for_; ok = false; _ } ->
            denied := for_ :: !denied
        | Distsim.Runtime.Data_transfer { to_; _ } ->
            if List.exists (Subject.equal to_) !denied then
              Alcotest.failf "seed %d: transfer to %s after a denied check"
                seed (Subject.name to_)
        | _ -> ())
      outcome.Distsim.Runtime.trace;
    match completed outcome with
    | Some t ->
        incr completed_runs;
        if not (Engine.Table.equal_bag t (expected ())) then
          Alcotest.failf "seed %d: completed with a wrong result" seed
    | None -> incr degraded_runs
  done;
  (* the sweep must actually exercise recovery, not degrade everywhere *)
  Alcotest.(check bool)
    (Printf.sprintf "most runs complete (%d completed, %d degraded)"
       !completed_runs !degraded_runs)
    true
    (!completed_runs >= 15)

let () =
  Alcotest.run "faults"
    [ ( "spec",
        [ ("parse + render", `Quick, test_parse_spec);
          ("malformed specs rejected", `Quick, test_parse_spec_errors) ] );
      ( "recovery",
        [ ("fault-free run unchanged", `Quick, test_no_faults_completes);
          ("same seed, byte-identical trace", `Quick, test_determinism);
          ("transient retried to success", `Quick,
           test_transient_retried_to_success);
          ("authorization denial never retried", `Quick,
           test_denial_never_retried) ] );
      ( "failover",
        [ ("crashed provider fails over", `Quick, test_crash_fails_over);
          ("dead authority degrades", `Quick, test_dead_authority_degrades);
          ("no replanner degrades", `Quick, test_no_replanner_degrades) ] );
      ( "safety",
        [ ("25-seed sweep: no wrong answer, no unauthorized release",
           `Slow, test_safety_sweep) ] ) ]
