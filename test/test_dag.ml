(* Hash-consed plan DAGs (Planner.Dag) and the per-occurrence position
   arithmetic they force on consumers:

   1. interning — structurally equal plans collapse onto one physical
      representative; occurrence/sharing accounting is exact; the
      interned plan is equal_shape-identical to its input;
   2. collision resistance — near-colliding shapes (the attribute-set
      concatenations the length-prefixed fingerprints exist for) do
      NOT merge: a merge here would make the sub-plan result cache
      serve one query's bytes for a different query;
   3. crypto-free classification — the position-independence predicate
      that decides whether a cached subtree result may be reused at a
      different preorder position;
   4. positions under sharing — a physically shared node sits at
      several preorder positions; first-visit-wins id tables, the
      child_positions arithmetic, and — the regression that motivated
      threading positions through Exec — ciphertext bytes of a
      DAG-interned plan must be byte-identical to its tree-shaped
      original (per-occurrence randomness labels, not per-id). *)

open Relalg

let byte_identical a b =
  List.equal Attr.equal (Engine.Table.attrs a) (Engine.Table.attrs b)
  && List.equal
       (fun (r1 : Value.t array) r2 -> r1 = r2)
       (Engine.Table.rows a) (Engine.Table.rows b)

let r_schema =
  Schema.make ~name:"R" ~owner:"O"
    [ ("a", Schema.Tint); ("b", Schema.Tint); ("c", Schema.Tstring);
      ("d", Schema.Tint) ]

let r_table () =
  let strs = [| "ga"; "bu"; "zo"; "meu" |] in
  Engine.Table.of_schema r_schema
    (List.init 9 (fun i ->
         [| Value.Int (i mod 5); Value.Int (i mod 3); Value.Str strs.(i mod 4);
            Value.Int (7 - i) |]))

(* two structurally identical builds (fresh node ids each time) *)
let build_query () =
  Plan.limit 4
    (Plan.order_by
       [ (Attr.make "a", Plan.Asc) ]
       (Plan.select
          (Predicate.conj [ Predicate.Cmp_const (Attr.make "b", Predicate.Lt, Value.Int 2) ])
          (Plan.base r_schema)))

(* --- interning -------------------------------------------------------- *)

let test_intern_merges_equal_shapes () =
  let d = Planner.Dag.create () in
  let p1 = build_query () and p2 = build_query () in
  let i1 = Planner.Dag.intern d p1 in
  let i2 = Planner.Dag.intern d p2 in
  Alcotest.(check bool) "same physical representative" true (i1 == i2);
  Alcotest.(check bool) "interning preserves shape" true
    (Plan.equal_shape p1 i1);
  Alcotest.(check string) "memoized fingerprint = Fingerprint.of_plan"
    (Planner.Fingerprint.of_plan p1)
    (Planner.Dag.fingerprint d p1);
  Alcotest.(check int) "root seen twice" 2 (Planner.Dag.occurrences d i1);
  Alcotest.(check bool) "root is shared" true (Planner.Dag.is_shared d i1);
  let s = Planner.Dag.stats d in
  Alcotest.(check int) "plans" 2 s.Planner.Dag.plans;
  Alcotest.(check int) "distinct nodes" (Plan.size p1) s.Planner.Dag.nodes;
  Alcotest.(check int) "occurrences" (2 * Plan.size p1)
    s.Planner.Dag.occurrences;
  Alcotest.(check int) "every node shared" (Plan.size p1)
    s.Planner.Dag.shared_nodes;
  Alcotest.(check int) "materializations saved" (Plan.size p1)
    s.Planner.Dag.shared_occurrences;
  Planner.Dag.clear d;
  Alcotest.(check int) "clear empties the store" 0
    (Planner.Dag.stats d).Planner.Dag.nodes

let test_intern_splices_shared_subtree () =
  (* distinct tops over one structurally repeated core: after interning
     both, the second plan's core is physically the first's *)
  let d = Planner.Dag.create () in
  let core () =
    Plan.select
      (Predicate.conj [ Predicate.Cmp_const (Attr.make "a", Predicate.Ge, Value.Int 1) ])
      (Plan.base r_schema)
  in
  let q1 = Plan.order_by [ (Attr.make "b", Plan.Desc) ] (core ()) in
  let q2 = Plan.limit 3 (core ()) in
  let i1 = Planner.Dag.intern d q1 and i2 = Planner.Dag.intern d q2 in
  Alcotest.(check bool) "distinct roots stay distinct" false (i1 == i2);
  (match (Plan.children i1, Plan.children i2) with
  | [ c1 ], [ c2 ] ->
      Alcotest.(check bool) "shared core is one physical node" true (c1 == c2);
      Alcotest.(check int) "core occurrences" 2 (Planner.Dag.occurrences d c1)
  | _ -> Alcotest.fail "expected unary tops");
  Alcotest.(check bool) "roots unshared" false (Planner.Dag.is_shared d i1)

let test_near_collision_shapes_do_not_merge () =
  (* {ab} vs {a,b}: a naive set concatenation fingerprints both as
     "ab"; a merge would alias two different projections in the
     sub-plan result cache *)
  let schema =
    Schema.make ~name:"N" ~owner:"O"
      [ ("a", Schema.Tint); ("b", Schema.Tint); ("ab", Schema.Tint) ]
  in
  let d = Planner.Dag.create () in
  let proj names = Plan.project (Attr.Set.of_names names) (Plan.base schema) in
  let one = Planner.Dag.intern d (proj [ "ab" ]) in
  let two = Planner.Dag.intern d (proj [ "a"; "b" ]) in
  Alcotest.(check bool) "distinct representatives" false (one == two);
  Alcotest.(check bool) "distinct fingerprints" false
    (Planner.Dag.fingerprint d one = Planner.Dag.fingerprint d two);
  Alcotest.(check bool) "neither root shared" false
    (Planner.Dag.is_shared d one || Planner.Dag.is_shared d two);
  (* the common base below them is shared *)
  Alcotest.(check int) "base shared underneath" 2
    (Planner.Dag.occurrences d (Plan.base schema))

(* --- crypto-free classification --------------------------------------- *)

let test_crypto_free () =
  let plain = build_query () in
  Alcotest.(check bool) "plain tree is crypto-free" true
    (Planner.Dag.crypto_free plain);
  let enc = Plan.encrypt (Attr.Set.of_names [ "c" ]) (Plan.base r_schema) in
  Alcotest.(check bool) "Encrypt poisons" false (Planner.Dag.crypto_free enc);
  Alcotest.(check bool) "Decrypt poisons" false
    (Planner.Dag.crypto_free (Plan.decrypt (Attr.Set.of_names [ "c" ]) enc));
  let outsourced =
    Schema.make ~name:"S" ~owner:"O"
      ~storage:(Schema.outsourced ~host:"X" ~encrypted:[ "v" ])
      [ ("k", Schema.Tint); ("v", Schema.Tint) ]
  in
  Alcotest.(check bool) "encrypted-at-rest base poisons" false
    (Planner.Dag.crypto_free (Plan.base outsourced));
  Alcotest.(check bool) "plain select above stays poisoned" false
    (Planner.Dag.crypto_free
       (Plan.select
          (Predicate.conj
             [ Predicate.Cmp_const (Attr.make "k", Predicate.Eq, Value.Int 1) ])
          (Plan.base outsourced)))

(* --- positions under sharing ------------------------------------------ *)

(* one physical subtree with two parents: x feeds both join operands
   (visible schemas disjoint, so the join is well-formed) *)
let shared_x_plan () =
  let x = Plan.encrypt (Attr.Set.of_names [ "c"; "d" ]) (Plan.base r_schema) in
  let l = Plan.project (Attr.Set.of_names [ "a"; "c" ]) x in
  let r = Plan.project (Attr.Set.of_names [ "b"; "d" ]) x in
  let j =
    Plan.join
      (Predicate.conj
         [ Predicate.Cmp_attr (Attr.make "a", Predicate.Eq, Attr.make "b") ])
      l r
  in
  (j, x, l, r)

let tree_x_plan () =
  let mk () =
    Plan.encrypt (Attr.Set.of_names [ "c"; "d" ]) (Plan.base r_schema)
  in
  Plan.join
    (Predicate.conj
       [ Predicate.Cmp_attr (Attr.make "a", Predicate.Eq, Attr.make "b") ])
    (Plan.project (Attr.Set.of_names [ "a"; "c" ]) (mk ()))
    (Plan.project (Attr.Set.of_names [ "b"; "d" ]) (mk ()))

let test_positions_first_visit_wins () =
  let j, x, l, r = shared_x_plan () in
  Alcotest.(check int) "tree-equivalent size counts occurrences" 7
    (Plan.size j);
  let positions = Plan.preorder_positions j in
  let pos p = Hashtbl.find positions (Plan.id p) in
  Alcotest.(check int) "root at 0" 0 (pos j);
  Alcotest.(check int) "left operand at 1" 1 (pos l);
  Alcotest.(check int) "shared node keeps its first position" 2 (pos x);
  Alcotest.(check int) "right operand accounts the revisit" 4 (pos r);
  (* per-occurrence positions come from the traversal arithmetic *)
  (match Plan.child_positions j 0 with
  | [ (cl, 1); (cr, 4) ] ->
      Alcotest.(check bool) "children in order" true (cl == l && cr == r)
  | _ -> Alcotest.fail "unexpected root child positions");
  match Plan.child_positions r 4 with
  | [ (cx, 5) ] ->
      Alcotest.(check bool) "second occurrence of x at 5" true (cx == x)
  | _ -> Alcotest.fail "unexpected right-operand child positions"

(* The regression Exec's threaded positions exist for: encryption
   randomness must be labelled per occurrence, so executing the shared
   plan yields bytes identical to its tree-shaped original. Under the
   old id-keyed labelling both occurrences of x drew the same
   randomness stream and one join side's ciphertext came out wrong. *)
let test_dag_execution_byte_identical () =
  let ctx =
    Engine.Exec.context
      ~crypto:
        (Engine.Enc_exec.of_schemes
           (Mpq_crypto.Keyring.create ~seed:7L ())
           [ ("c", Mpq_crypto.Scheme.Rnd); ("d", Mpq_crypto.Scheme.Rnd) ])
      [ ("R", r_table ()) ]
  in
  let shared, _, _, _ = shared_x_plan () in
  let tree = tree_x_plan () in
  Alcotest.(check bool) "same shape" true (Plan.equal_shape shared tree);
  let a = Engine.Exec.run ctx shared and b = Engine.Exec.run ctx tree in
  Alcotest.(check bool) "rows survive the join" true
    (Engine.Table.rows a <> []);
  Alcotest.(check bool) "shared execution = tree execution (bytes)" true
    (byte_identical a b);
  (* the serve path: Dag.intern merges the tree's two x builds into one
     physical node — bytes still must not move *)
  let d = Planner.Dag.create () in
  let interned = Planner.Dag.intern d tree in
  Alcotest.(check int) "intern found the repeat" 2
    (Planner.Dag.occurrences d
       (Plan.encrypt (Attr.Set.of_names [ "c"; "d" ]) (Plan.base r_schema)));
  let c = Engine.Exec.run ctx interned in
  Alcotest.(check bool) "interned execution = tree execution (bytes)" true
    (byte_identical c b)

let () =
  Alcotest.run "dag"
    [ ( "interning",
        [ ("equal shapes merge", `Quick, test_intern_merges_equal_shapes);
          ("shared subtree spliced across plans", `Quick,
           test_intern_splices_shared_subtree);
          ("near-collision shapes stay distinct", `Quick,
           test_near_collision_shapes_do_not_merge) ] );
      ( "crypto-free",
        [ ("classification", `Quick, test_crypto_free) ] );
      ( "positions",
        [ ("first-visit-wins table, per-occurrence arithmetic", `Quick,
           test_positions_first_visit_wins);
          ("DAG execution byte-identical to tree", `Quick,
           test_dag_execution_byte_identical) ] ) ]
