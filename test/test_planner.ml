(* Planner: estimates, cost model units, DP assignment vs exhaustive
   search, leaf-filter folding, pricing/network configuration. *)

open Relalg
open Authz
open Paper_example

(* --- estimates -------------------------------------------------------- *)

let base_stats name =
  match name with
  | "Hosp" ->
      Some
        (Planner.Estimate.of_widths ~card:10000.0
           [ ("S", 12.); ("B", 4.); ("D", 10.); ("T", 10.) ])
  | "Ins" ->
      Some
        (Planner.Estimate.of_widths ~card:8000.0 [ ("C", 12.); ("P", 8.) ])
  | _ -> None

let test_estimate_monotone () =
  let n = build_plan () in
  let stats = Planner.Estimate.annotate ~base:base_stats n.plan in
  let card node = (Imap.find (Plan.id node) stats).Planner.Estimate.card in
  Alcotest.(check bool) "selection reduces" true (card n.n_sel < card n.n_proj);
  Alcotest.(check bool) "join bounded by product" true
    (card n.n_join <= card n.n_sel *. 8000.0);
  Alcotest.(check bool) "group-by reduces" true (card n.n_group <= card n.n_join);
  Alcotest.(check bool) "all positive" true
    (Imap.for_all (fun _ s -> s.Planner.Estimate.card >= 1.0) stats)

let test_estimate_encryption_expands () =
  let n = build_plan () in
  let plain = Planner.Estimate.annotate ~base:base_stats n.plan in
  let enc_plan = Plan.encrypt (Attr.Set.of_names [ "S"; "D"; "T" ]) n.n_proj in
  let enc = Planner.Estimate.annotate ~base:base_stats enc_plan in
  let bytes stats node =
    Planner.Estimate.table_bytes (Imap.find (Plan.id node) stats)
  in
  Alcotest.(check bool) "ciphertext wider than plaintext" true
    (bytes enc enc_plan > bytes plain n.n_proj)

(* --- cost model ------------------------------------------------------- *)

let test_rates_roles () =
  let pricing = Planner.Pricing.make () in
  let r s = (Planner.Pricing.rates_for pricing s).Planner.Pricing.cpu_per_min in
  Alcotest.(check bool) "user = 10x provider" true
    (abs_float (r u /. r x -. 10.0) < 1e-9);
  Alcotest.(check bool) "authority = 3x provider" true
    (abs_float (r h /. r x -. 3.0) < 1e-9)

let test_network_bottleneck () =
  let net = Planner.Network.make () in
  let fast = Planner.Network.transfer_seconds net h i 1e9 in
  let slow = Planner.Network.transfer_seconds net h u 1e9 in
  Alcotest.(check bool) "client link is 100x slower" true
    (slow > 90.0 *. fast);
  Alcotest.(check (float 0.0)) "self transfer is free" 0.0
    (Planner.Network.transfer_seconds net h h 1e9)

let optimizer_result ?policy:(pol = policy) () =
  let n = build_plan () in
  ( n,
    Planner.Optimizer.plan ~policy:pol ~subjects ~base:base_stats
      ~deliver_to:u n.plan )

let test_optimizer_verifies () =
  let _, r = optimizer_result () in
  match Extend.verify ~policy r.Planner.Optimizer.extended with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_optimizer_positive_cost () =
  let _, r = optimizer_result () in
  Alcotest.(check bool) "cost > 0" true
    (Planner.Cost.total r.Planner.Optimizer.cost > 0.0)

(* DP finds the exhaustive optimum (under the exact re-costing) within a
   small tolerance: the DP's edge model approximates Def. 5.4's
   ancestor-driven encryptions, so allow 10%. *)
let test_dp_close_to_exhaustive () =
  let n = build_plan () in
  let config = Opreq.resolve_conflicts Opreq.default n.plan in
  let candidates = Candidates.compute ~policy ~subjects ~config n.plan in
  let pricing = Planner.Pricing.make () in
  let network = Planner.Network.make () in
  let exact assignment =
    let ext = Extend.extend ~policy ~config ~assignment ~deliver_to:u n.plan in
    let scheme_of = Plan_keys.actual_schemes ~original:n.plan ext in
    Planner.Cost.total
      (Planner.Cost.of_extended ~pricing ~network ~base:base_stats ~scheme_of
         ext)
  in
  let all = Planner.Assign.enumerate candidates n.plan in
  Alcotest.(check bool) "search space non-trivial" true (List.length all > 50);
  let best_exhaustive =
    List.fold_left (fun acc a -> Float.min acc (exact a)) infinity all
  in
  let _, r = optimizer_result () in
  let dp_exact = Planner.Cost.total r.Planner.Optimizer.cost in
  Alcotest.(check bool)
    (Printf.sprintf "dp %.6f within 10%% of optimum %.6f" dp_exact
       best_exhaustive)
    true
    (dp_exact <= best_exhaustive *. 1.10 +. 1e-12)

(* DP vs exhaustive across random plans and policies (small candidate
   spaces only; both sides re-costed exactly). *)
let prop_dp_vs_exhaustive =
  QCheck.Test.make ~count:60 ~name:"DP within 15% of exhaustive, random cases"
    Gen.arbitrary_plan_policy (fun (plan, policy') ->
      let config = Opreq.resolve_conflicts Opreq.default plan in
      let candidates =
        Candidates.compute ~policy:policy' ~subjects:Gen.subjects ~config plan
      in
      let space =
        Imap.fold
          (fun _ s acc -> acc * max 1 (Subject.Set.cardinal s))
          candidates 1
      in
      QCheck.assume (space > 1 && space <= 200);
      QCheck.assume
        (Imap.for_all (fun _ s -> not (Subject.Set.is_empty s)) candidates);
      let stats =
        Planner.Estimate.annotate
          ~base:(fun _ ->
            Some
              (Planner.Estimate.of_widths ~card:5000.0
                 [ ("a", 8.); ("b", 8.); ("c", 12.); ("d", 8.); ("e", 8.);
                   ("f", 8.); ("g", 12.); ("h", 8.); ("k", 8.) ]))
          plan
      in
      ignore stats;
      let base _ = None in
      let pricing = Planner.Pricing.make () in
      let network = Planner.Network.make () in
      let exact assignment =
        let ext =
          Extend.extend ~policy:policy' ~config ~assignment
            ~deliver_to:Gen.user plan
        in
        let scheme_of = Plan_keys.actual_schemes ~original:plan ext in
        Planner.Cost.total
          (Planner.Cost.of_extended ~pricing ~network ~base ~scheme_of ext)
      in
      let best =
        List.fold_left
          (fun acc a -> Float.min acc (exact a))
          infinity
          (Planner.Assign.enumerate candidates plan)
      in
      let r =
        Planner.Optimizer.plan ~policy:policy' ~subjects:Gen.subjects
          ~deliver_to:Gen.user plan
      in
      let dp = Planner.Cost.total r.Planner.Optimizer.cost in
      if dp <= (best *. 1.15) +. 1e-9 then true
      else
        QCheck.Test.fail_reportf "dp %.9f vs exhaustive %.9f" dp best)

(* --- performance threshold (Sec. 7) ----------------------------------- *)

let test_latency_threshold () =
  let n = build_plan () in
  let unconstrained =
    Planner.Optimizer.plan ~policy ~subjects ~base:base_stats ~deliver_to:u
      n.plan
  in
  let free_latency = unconstrained.Planner.Optimizer.cost.Planner.Cost.latency in
  (* a bound tighter than the unconstrained plan's latency must yield a
     plan at most as slow as the unconstrained one *)
  let constrained =
    Planner.Optimizer.plan ~policy ~subjects ~base:base_stats ~deliver_to:u
      ~max_latency:(free_latency /. 2.0)
      (build_plan ()).plan
  in
  Alcotest.(check bool) "latency never worse than unconstrained" true
    (constrained.Planner.Optimizer.cost.Planner.Cost.latency
    <= free_latency +. 1e-9);
  (* and a generous bound reproduces the unconstrained optimum *)
  let generous =
    Planner.Optimizer.plan ~policy ~subjects ~base:base_stats ~deliver_to:u
      ~max_latency:(free_latency *. 100.0)
      (build_plan ()).plan
  in
  Alcotest.(check (float 1e-9)) "generous bound = unconstrained cost"
    (Planner.Cost.total unconstrained.Planner.Optimizer.cost)
    (Planner.Cost.total generous.Planner.Optimizer.cost)

let test_latency_critical_path () =
  (* latency is a max over parallel branches, not their sum *)
  let n = build_plan () in
  let r =
    Planner.Optimizer.plan ~policy ~subjects ~base:base_stats ~deliver_to:u
      n.plan
  in
  let c = r.Planner.Optimizer.cost in
  Alcotest.(check bool) "latency <= summed seconds" true
    (c.Planner.Cost.latency <= c.Planner.Cost.seconds +. 1e-9);
  Alcotest.(check bool) "latency positive" true (c.Planner.Cost.latency > 0.0)

(* --- leaf-filter folding --------------------------------------------- *)

let test_fold_removes_leaf_filters () =
  let n = build_plan () in
  let folded, factors = Planner.Leaf_filters.fold n.plan in
  (* σ D='stroke' sits on a projected base: folded away *)
  let selects plan =
    List.length
      (List.filter (fun x -> Plan.operator_name x = "select") (Plan.nodes plan))
  in
  Alcotest.(check int) "one select folded" (selects n.plan - 1) (selects folded);
  Alcotest.(check (float 1e-9)) "selectivity recorded" 0.1
    (List.assoc "Hosp" factors)

let test_fold_keeps_join_conditions () =
  let n = build_plan () in
  let folded, _ = Planner.Leaf_filters.fold n.plan in
  Alcotest.(check bool) "join survives" true
    (List.exists (fun x -> Plan.operator_name x = "join") (Plan.nodes folded));
  (* having (above γ, not source-side) survives *)
  Alcotest.(check string) "having survives" "select" (Plan.operator_name folded)

let test_fold_scales_stats () =
  let n = build_plan () in
  let _, factors = Planner.Leaf_filters.fold n.plan in
  let scaled = Planner.Leaf_filters.scale_stats base_stats factors in
  match (scaled "Hosp", base_stats "Hosp") with
  | Some s, Some b ->
      Alcotest.(check (float 1e-6)) "card scaled by 0.1"
        (b.Planner.Estimate.card *. 0.1)
        s.Planner.Estimate.card
  | _ -> Alcotest.fail "missing stats"

(* --- no-candidate rejection ------------------------------------------ *)

let test_no_candidate_raises () =
  let restrictive =
    Authorization.make ~schemas:[ hosp; ins ]
      [ Authorization.rule ~rel:"Hosp" ~plain:[ "S"; "D"; "T" ] (To u) ]
  in
  let n = build_plan () in
  match
    Planner.Optimizer.plan ~policy:restrictive ~subjects ~base:base_stats
      n.plan
  with
  | exception Planner.Optimizer.No_candidate _ -> ()
  | _ -> Alcotest.fail "expected No_candidate"

let test_user_input_authorization () =
  (* the querying user must be authorized for the projected inputs *)
  let narrow_user =
    Authorization.make ~schemas:[ hosp; ins ]
      [ Authorization.rule ~rel:"Hosp" ~plain:[ "D"; "T" ] (To u);
        (* no S: but the query projects S for the join *)
        Authorization.rule ~rel:"Ins" ~plain:[ "C"; "P" ] (To u);
        Authorization.rule ~rel:"Hosp" ~plain:[ "S"; "D"; "T" ] ~enc:[]
          (To y);
        Authorization.rule ~rel:"Ins" ~plain:[ "C"; "P" ] (To y) ]
  in
  let n = build_plan () in
  match
    Planner.Optimizer.plan ~policy:narrow_user ~subjects ~base:base_stats
      ~deliver_to:u n.plan
  with
  | exception Planner.Optimizer.User_not_authorized _ -> ()
  | _ -> Alcotest.fail "expected User_not_authorized"

let () =
  Alcotest.run "planner"
    [ ( "estimate",
        [ ("cardinalities monotone", `Quick, test_estimate_monotone);
          ("encryption expands bytes", `Quick, test_estimate_encryption_expands)
        ] );
      ( "pricing-network",
        [ ("role factors", `Quick, test_rates_roles);
          ("bandwidth bottleneck", `Quick, test_network_bottleneck) ] );
      ( "optimizer",
        [ ("result verifies", `Quick, test_optimizer_verifies);
          ("positive cost", `Quick, test_optimizer_positive_cost);
          ("dp close to exhaustive", `Slow, test_dp_close_to_exhaustive);
          ("no-candidate rejection", `Quick, test_no_candidate_raises);
          ("latency threshold (Sec. 7)", `Quick, test_latency_threshold);
          ("latency is critical-path", `Quick, test_latency_critical_path);
          ("user input authorization (Sec. 6)", `Quick, test_user_input_authorization) ] );
      ( "dp-differential",
        [ QCheck_alcotest.to_alcotest prop_dp_vs_exhaustive ] );
      ( "leaf-filters",
        [ ("folds constant leaf filters", `Quick, test_fold_removes_leaf_filters);
          ("keeps join/having", `Quick, test_fold_keeps_join_conditions);
          ("scales statistics", `Quick, test_fold_scales_stats) ] ) ]
