(* Relational-algebra substrate: values, schemas, predicates, plan
   construction invariants, printers. *)

open Relalg

let a = Attr.make

(* --- values ----------------------------------------------------------- *)

let test_value_compare () =
  Alcotest.(check bool) "int order" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  Alcotest.(check bool) "mixed numeric" true
    (Value.compare (Value.Int 2) (Value.Float 1.5) > 0);
  Alcotest.(check bool) "null first" true
    (Value.compare Value.Null (Value.Int (-100)) < 0);
  Alcotest.(check bool) "int/float equal" true
    (Value.equal (Value.Int 3) (Value.Float 3.0));
  match Value.compare (Value.Int 1) (Value.Str "x") with
  | exception Value.Incomparable _ -> ()
  | _ -> Alcotest.fail "expected Incomparable"

let test_value_dates () =
  let d1 = Value.date_of_string "1992-01-01" in
  let d2 = Value.date_of_string "1998-08-02" in
  Alcotest.(check bool) "dates ordered" true (Value.compare d1 d2 < 0);
  (match (d1, d2) with
  | Value.Date x, Value.Date y ->
      Alcotest.(check int) "span in days" 2405 (y - x)
  | _ -> Alcotest.fail "not dates");
  Alcotest.(check bool) "epoch is zero" true
    (Value.equal (Value.date_of_string "1970-01-01") (Value.Date 0));
  match Value.date_of_string "not-a-date" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure"

(* --- attr sets -------------------------------------------------------- *)

let test_attr_set_printing () =
  Alcotest.(check string) "single letters concatenate" "DST"
    (Attr.Set.to_string (Attr.Set.of_names [ "S"; "D"; "T" ]));
  Alcotest.(check string) "long names comma-separate" "l_orderkey,o_orderkey"
    (Attr.Set.to_string (Attr.Set.of_names [ "o_orderkey"; "l_orderkey" ]))

(* --- schema ------------------------------------------------------------ *)

let test_schema_validation () =
  (match Schema.make ~name:"R" ~owner:"A" [ ("x", Schema.Tint); ("x", Schema.Tint) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate column accepted");
  match
    Schema.make ~name:"R" ~owner:"A"
      ~storage:(Schema.outsourced ~host:"W" ~encrypted:[ "nope" ])
      [ ("x", Schema.Tint) ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "foreign storage column accepted"

(* --- predicates --------------------------------------------------------- *)

let test_like_matching () =
  let check pat s expected =
    Alcotest.(check bool)
      (Printf.sprintf "%s ~ %s" s pat)
      expected
      (Predicate.like_matches ~pattern:pat s)
  in
  check "%BRASS" "SMALL BRASS" true;
  check "%BRASS" "BRASSY" false;
  check "PROMO%" "PROMO POLISHED" true;
  check "%green%" "dark green cyan" true;
  check "a_c" "abc" true;
  check "a_c" "ac" false;
  check "%" "" true;
  check "a%b%c" "aXXbYYc" true;
  check "a%b%c" "acb" false

let test_predicate_accessors () =
  let p =
    [ [ Predicate.Cmp_attr (a "x", Predicate.Eq, a "y") ];
      [ Predicate.Cmp_const (a "z", Predicate.Lt, Value.Int 3);
        Predicate.Like (a "w", "q%") ] ]
  in
  Alcotest.(check int) "pairs" 1 (List.length (Predicate.attr_pairs p));
  Alcotest.(check string) "const attrs" "wz"
    (Attr.Set.to_string (Predicate.const_attrs p));
  Alcotest.(check string) "all attrs" "wxyz"
    (Attr.Set.to_string (Predicate.attrs p))

(* --- plan construction invariants --------------------------------------- *)

let r1 = Schema.make ~name:"R1" ~owner:"A" [ ("x", Schema.Tint); ("y", Schema.Tint) ]
let r2 = Schema.make ~name:"R2" ~owner:"B" [ ("z", Schema.Tint) ]
let r2_clash = Schema.make ~name:"R2c" ~owner:"B" [ ("x", Schema.Tint) ]

let test_plan_checks () =
  let b1 = Plan.base r1 and b2 = Plan.base r2 in
  (match Plan.project (Attr.Set.of_names [ "nope" ]) b1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "foreign projection accepted");
  (match Plan.product (Plan.base r1) (Plan.base r2_clash) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overlapping schemas accepted");
  (match
     Plan.join (Predicate.conj [ Predicate.Cmp_const (a "x", Predicate.Eq, Value.Int 1) ]) b1 b2
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "pairless join accepted");
  (match Plan.udf "f" (Attr.Set.of_names [ "x" ]) (a "z") b1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "udf output not among inputs accepted");
  (* encrypt of nothing is the identity *)
  let e = Plan.encrypt Attr.Set.empty b1 in
  Alcotest.(check int) "empty encrypt = id" (Plan.id b1) (Plan.id e)

let test_plan_traversals () =
  let plan =
    Plan.join
      (Predicate.conj [ Predicate.Cmp_attr (a "x", Predicate.Eq, a "z") ])
      (Plan.select
         (Predicate.conj [ Predicate.Cmp_const (a "y", Predicate.Gt, Value.Int 0) ])
         (Plan.base r1))
      (Plan.base r2)
  in
  Alcotest.(check int) "size" 4 (Plan.size plan);
  Alcotest.(check int) "height" 3 (Plan.height plan);
  Alcotest.(check int) "two bases" 2 (List.length (Plan.base_relations plan));
  (* post-order: children before parents *)
  let order = List.map Plan.id (Plan.nodes plan) in
  Alcotest.(check bool) "root last" true
    (List.nth order (List.length order - 1) = Plan.id plan);
  Alcotest.(check string) "schema" "xyz"
    (Attr.Set.to_string (Plan.schema plan));
  Alcotest.(check bool) "find self" true (Plan.find plan (Plan.id plan) <> None);
  Alcotest.(check bool) "strip_crypto idempotent on plain plans" true
    (Plan.equal_shape plan (Plan.strip_crypto plan))

let test_printers () =
  let plan =
    Plan.group_by (Attr.Set.of_names [ "x" ])
      [ Aggregate.make (Aggregate.Sum (a "y")) ]
      (Plan.base r1)
  in
  let ascii = Plan_printer.to_ascii plan in
  Alcotest.(check bool) "ascii mentions gamma" true
    (try ignore (Str.search_forward (Str.regexp_string "γ") ascii 0); true
     with Not_found -> false);
  let dot = Plan_printer.to_dot plan in
  Alcotest.(check bool) "dot is a digraph" true
    (String.length dot > 10 && String.sub dot 0 7 = "digraph")

(* --- table -------------------------------------------------------------- *)

let test_table_ops () =
  let t =
    Engine.Table.of_schema r1 [ [| Value.Int 1; Value.Int 2 |]; [| Value.Int 3; Value.Int 4 |] ]
  in
  Alcotest.(check int) "cardinality" 2 (Engine.Table.cardinality t);
  let sel = Engine.Table.select_columns t [ a "y" ] in
  Alcotest.(check int) "one column" 1 (List.length (Engine.Table.attrs sel));
  let mapped = Engine.Table.map_column t (a "x") (fun _ -> Value.Int 0) in
  Alcotest.(check bool) "map column" true
    (List.for_all
       (fun r -> Value.equal r.(0) (Value.Int 0))
       (Engine.Table.rows mapped));
  (* bag equality is column-order and row-order insensitive *)
  let t' =
    Engine.Table.create [ a "y"; a "x" ]
      [ [| Value.Int 4; Value.Int 3 |]; [| Value.Int 2; Value.Int 1 |] ]
  in
  Alcotest.(check bool) "equal bags modulo order" true (Engine.Table.equal_bag t t');
  match Engine.Table.create [ a "x" ] [ [| Value.Int 1; Value.Int 2 |] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch accepted"

(* --- eval negative paths ------------------------------------------------ *)

let test_eval_encrypted_errors () =
  let keyring = Mpq_crypto.Keyring.create ~seed:4L () in
  let ctx =
    Engine.Enc_exec.of_schemes keyring
      [ ("x", Mpq_crypto.Scheme.Rnd); ("y", Mpq_crypto.Scheme.Det);
        ("z", Mpq_crypto.Scheme.Det) ]
  in
  let enc attr v = Engine.Enc_exec.encrypt_value ctx (a attr) v in
  (* rnd supports nothing *)
  (match Engine.Eval.compare_values ~ctx Predicate.Eq (enc "x" (Value.Int 1)) (Value.Int 1) with
  | exception Engine.Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "rnd comparison accepted");
  (* det supports equality but not order *)
  Alcotest.(check bool) "det equality" true
    (Engine.Eval.compare_values ~ctx Predicate.Eq (enc "y" (Value.Int 5)) (Value.Int 5));
  (match Engine.Eval.compare_values ~ctx Predicate.Lt (enc "y" (Value.Int 5)) (Value.Int 9) with
  | exception Engine.Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "det order accepted");
  (* ciphertexts under different clusters never compare *)
  match
    Engine.Eval.compare_values ~ctx Predicate.Eq (enc "y" (Value.Int 5))
      (enc "z" (Value.Int 5))
  with
  | exception Engine.Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "cross-cluster comparison accepted"

let () =
  Alcotest.run "relalg"
    [ ( "values",
        [ ("compare", `Quick, test_value_compare);
          ("dates", `Quick, test_value_dates) ] );
      ("attrs", [ ("set printing", `Quick, test_attr_set_printing) ]);
      ("schema", [ ("validation", `Quick, test_schema_validation) ]);
      ( "predicates",
        [ ("LIKE matching", `Quick, test_like_matching);
          ("accessors", `Quick, test_predicate_accessors) ] );
      ( "plans",
        [ ("constructor checks", `Quick, test_plan_checks);
          ("traversals", `Quick, test_plan_traversals);
          ("printers", `Quick, test_printers) ] );
      ("tables", [ ("operations", `Quick, test_table_ops) ]);
      ( "eval",
        [ ("encrypted comparison limits", `Quick, test_eval_encrypted_errors) ]
      ) ]
