(* Shared concrete data for the running example (used by the engine and
   distributed-simulation tests). *)

open Relalg
open Engine

let v_str s = Value.Str s
let v_int i = Value.Int i

let hosp_rows =
  [ [| v_str "alice"; Value.date_of_string "1980-01-01"; v_str "stroke"; v_str "tpa" |];
    [| v_str "bob"; Value.date_of_string "1975-05-12"; v_str "stroke"; v_str "surgery" |];
    [| v_str "carol"; Value.date_of_string "1990-09-30"; v_str "flu"; v_str "rest" |];
    [| v_str "dave"; Value.date_of_string "1968-03-22"; v_str "stroke"; v_str "tpa" |];
    [| v_str "erin"; Value.date_of_string "1985-07-04"; v_str "asthma"; v_str "inhaler" |] ]

let ins_rows =
  [ [| v_str "alice"; v_int 120 |];
    [| v_str "bob"; v_int 300 |];
    [| v_str "carol"; v_int 80 |];
    [| v_str "dave"; v_int 150 |];
    [| v_str "frank"; v_int 90 |] ]

let tables () =
  [ ("Hosp", Table.of_schema Paper_example.hosp hosp_rows);
    ("Ins", Table.of_schema Paper_example.ins ins_rows) ]

(* stroke patients: alice(tpa,120), bob(surgery,300), dave(tpa,150)
   -> tpa avg=135, surgery avg=300; having >100 keeps both *)
let expected () =
  Table.create
    [ Attr.make "P"; Attr.make "T" ]
    [ [| Value.Float 135.0; v_str "tpa" |];
      [| Value.Float 300.0; v_str "surgery" |] ]
