(* The paper's running example (Sec. 1): hospital H with Hosp(S,B,D,T),
   insurer I with Ins(C,P), user U, providers X, Y, Z, and the query
     select T, avg(P) from Hosp join Ins on S=C
     where D='stroke' group by T having avg(P)>100
   with the authorizations of Fig. 1(b) / Fig. 4. Shared by tests,
   examples and benchmarks. *)

open Relalg
open Authz

let hosp =
  Schema.make ~name:"Hosp" ~owner:"H"
    [ ("S", Schema.Tstring); ("B", Schema.Tdate); ("D", Schema.Tstring);
      ("T", Schema.Tstring) ]

let ins =
  Schema.make ~name:"Ins" ~owner:"I"
    [ ("C", Schema.Tstring); ("P", Schema.Tint) ]

let u = Subject.user "U"
let h = Subject.authority "H"
let i = Subject.authority "I"
let x = Subject.provider "X"
let y = Subject.provider "Y"
let z = Subject.provider "Z"

let subjects = [ u; h; i; x; y; z ]

let policy =
  Authorization.make ~schemas:[ hosp; ins ]
    [ Authorization.rule ~rel:"Hosp" ~plain:[ "S"; "B"; "D"; "T" ] (To h);
      Authorization.rule ~rel:"Ins" ~plain:[ "C" ] ~enc:[ "P" ] (To h);
      Authorization.rule ~rel:"Hosp" ~plain:[ "B" ]
        ~enc:[ "S"; "D"; "T" ] (To i);
      Authorization.rule ~rel:"Ins" ~plain:[ "C"; "P" ] (To i);
      Authorization.rule ~rel:"Hosp" ~plain:[ "S"; "D"; "T" ] (To u);
      Authorization.rule ~rel:"Ins" ~plain:[ "C"; "P" ] (To u);
      Authorization.rule ~rel:"Hosp" ~plain:[ "D"; "T" ] ~enc:[ "S" ] (To x);
      Authorization.rule ~rel:"Ins" ~enc:[ "C"; "P" ] (To x);
      Authorization.rule ~rel:"Hosp" ~plain:[ "B"; "D"; "T" ] ~enc:[ "S" ]
        (To y);
      Authorization.rule ~rel:"Ins" ~plain:[ "P" ] ~enc:[ "C" ] (To y);
      Authorization.rule ~rel:"Hosp" ~plain:[ "S"; "T" ] ~enc:[ "D" ] (To z);
      Authorization.rule ~rel:"Ins" ~plain:[ "C" ] ~enc:[ "P" ] (To z);
      Authorization.rule ~rel:"Hosp" ~plain:[ "D"; "T" ] Any;
      Authorization.rule ~rel:"Ins" ~enc:[ "P" ] Any ]

let a n = Attr.make n
let attrs ns = Attr.Set.of_names ns

(* Fig. 1(a): σ_avg(P)>100 ∘ γ_T,avg(P) ∘ ⋈_S=C(σ_D=stroke(π_SDT(Hosp)), Ins) *)
type nodes = {
  plan : Plan.t;
  n_proj : Plan.t;
  n_sel : Plan.t;
  n_join : Plan.t;
  n_group : Plan.t;
  n_having : Plan.t;
}

let build_plan () =
  let n_proj = Plan.project (attrs [ "S"; "D"; "T" ]) (Plan.base hosp) in
  let n_sel =
    Plan.select
      (Predicate.conj
         [ Predicate.Cmp_const (a "D", Predicate.Eq, Value.Str "stroke") ])
      n_proj
  in
  let n_join =
    Plan.join
      (Predicate.conj [ Predicate.Cmp_attr (a "S", Predicate.Eq, a "C") ])
      n_sel (Plan.base ins)
  in
  let n_group =
    Plan.group_by (attrs [ "T" ])
      [ Aggregate.make (Aggregate.Avg (a "P")) ]
      n_join
  in
  let n_having =
    Plan.select
      (Predicate.conj
         [ Predicate.Cmp_const (a "P", Predicate.Gt, Value.Int 100) ])
      n_group
  in
  { plan = n_having; n_proj; n_sel; n_join; n_group; n_having }

(* Fig. 7(a): σD→H, ⋈→X, γ→X, σavg→Y. *)
let assignment_7a n =
  Imap.(
    empty
    |> add (Plan.id n.n_sel) h
    |> add (Plan.id n.n_join) x
    |> add (Plan.id n.n_group) x
    |> add (Plan.id n.n_having) y)

(* Fig. 7(b): σD→H, ⋈→Z, γ→Z, σavg→Y. *)
let assignment_7b n =
  Imap.(
    empty
    |> add (Plan.id n.n_sel) h
    |> add (Plan.id n.n_join) z
    |> add (Plan.id n.n_group) z
    |> add (Plan.id n.n_having) y)
