(* The query-serving layer and its verified plan cache. Four pillars:

   1. fingerprints — cache keys are collision-free (length-prefixed
      fields; the naive concatenation keys they replace demonstrably
      collided) and structural (node-id independent, so re-parsing a
      query re-finds its cache entry), and every planner input rotates
      the environment fingerprint;
   2. warm = cold — a cache hit returns a plan structurally identical
      to a cold planning round, and executing both yields
      byte-identical tables (TPC-H and random queries);
   3. invalidation — mutating a single permission (or the pricing,
      network or capability config) makes the next lookup a miss, the
      replanned plan re-passes the verifier, and stale entries are
      never served;
   4. concurrency — replaying a shuffled 200-query stream with
      interleaved policy mutations at 1 and 4 domains produces
      identical per-query responses and a deterministic final cache
      state. *)

open Relalg
open Authz

let byte_identical a b =
  List.equal Attr.equal (Engine.Table.attrs a) (Engine.Table.attrs b)
  && List.equal
       (fun (r1 : Value.t array) r2 -> r1 = r2)
       (Engine.Table.rows a) (Engine.Table.rows b)

let outcome_equal a b =
  match (a, b) with
  | Serve.Service.Table x, Serve.Service.Table y -> byte_identical x y
  | Serve.Service.Rejected x, Serve.Service.Rejected y -> x = y
  | _ -> false

(* Order-insensitive table equality. An incrementally retained cache
   entry may carry a differently shaped (but equally verified) plan
   than a fresh replan would produce, and plan shape decides the
   arrival order of rows at a final grouping — the answer is the same
   multiset of rows. *)
let canonical_equal a b =
  List.equal Attr.equal (Engine.Table.attrs a) (Engine.Table.attrs b)
  && List.sort compare (Engine.Table.rows a)
     = List.sort compare (Engine.Table.rows b)

let outcome_canonical_equal a b =
  match (a, b) with
  | Serve.Service.Table x, Serve.Service.Table y -> canonical_equal x y
  | Serve.Service.Rejected x, Serve.Service.Rejected y -> x = y
  | _ -> false

(* --- LRU -------------------------------------------------------------- *)

let test_lru_bounds () =
  let c = Serve.Lru.create ~capacity:3 in
  List.iter (fun k -> Serve.Lru.add c k (int_of_string k)) [ "1"; "2"; "3" ];
  Alcotest.(check (list string)) "MRU order" [ "3"; "2"; "1" ]
    (Serve.Lru.keys c);
  (* touching 1 promotes it, so adding a 4th evicts 2 *)
  Alcotest.(check (option int)) "hit refreshes" (Some 1)
    (Serve.Lru.find c "1");
  Serve.Lru.add c "4" 4;
  Alcotest.(check (list string)) "LRU evicted" [ "4"; "1"; "3" ]
    (Serve.Lru.keys c);
  Alcotest.(check (option int)) "evicted entry gone" None
    (Serve.Lru.find c "2");
  (* replacement neither grows the cache nor counts as an insertion *)
  Serve.Lru.add c "4" 44;
  Alcotest.(check int) "replace keeps length" 3 (Serve.Lru.length c);
  let s = Serve.Lru.stats c in
  Alcotest.(check int) "hits" 1 s.Serve.Lru.hits;
  Alcotest.(check int) "misses" 1 s.Serve.Lru.misses;
  Alcotest.(check int) "insertions" 4 s.Serve.Lru.insertions;
  Alcotest.(check int) "evictions" 1 s.Serve.Lru.evictions;
  Alcotest.(check bool) "mem is pure" true (Serve.Lru.mem c "3");
  Alcotest.(check (list string)) "mem did not promote" [ "4"; "1"; "3" ]
    (Serve.Lru.keys c)

(* The intrusive-recency-list implementation must be observationally
   identical — keys order, membership, every statistic — to the obvious
   stamp-based reference model, across random op sequences that hold
   the cache at capacity (the regime the O(1) eviction exists for),
   including remap migrations (drop / rebind / rekey), whose contract
   is to preserve recency order. *)
let test_lru_model_differential () =
  let module Ref = struct
    (* the old O(n) implementation, reduced to its observable core *)
    type 'a t = {
      cap : int;
      mutable entries : (string * ('a * int)) list;
      mutable clock : int;
      mutable hits : int;
      mutable misses : int;
      mutable insertions : int;
      mutable evictions : int;
    }

    let create cap =
      { cap; entries = []; clock = 0; hits = 0; misses = 0; insertions = 0;
        evictions = 0 }

    let tick t =
      t.clock <- t.clock + 1;
      t.clock

    let find t k =
      match List.assoc_opt k t.entries with
      | Some (v, _) ->
          t.hits <- t.hits + 1;
          t.entries <-
            (k, (v, tick t)) :: List.remove_assoc k t.entries;
          Some v
      | None ->
          t.misses <- t.misses + 1;
          None

    let add t k v =
      if List.mem_assoc k t.entries then
        t.entries <- (k, (v, tick t)) :: List.remove_assoc k t.entries
      else begin
        t.insertions <- t.insertions + 1;
        t.entries <- (k, (v, tick t)) :: t.entries;
        if List.length t.entries > t.cap then begin
          let victim, _ =
            List.fold_left
              (fun (bk, bs) (k, (_, s)) ->
                if s < bs then (k, s) else (bk, bs))
              ("", max_int) t.entries
          in
          t.entries <- List.remove_assoc victim t.entries;
          t.evictions <- t.evictions + 1
        end
      end

    let remap t f =
      let dropped = ref 0 in
      t.entries <-
        List.filter_map
          (fun (k, (v, s)) ->
            match f k v with
            | None ->
                incr dropped;
                None
            | Some (k', v') -> Some (k', (v', s)))
          (List.sort (fun (_, (_, a)) (_, (_, b)) -> compare b a) t.entries);
      !dropped

    let keys t =
      List.map fst
        (List.sort (fun (_, (_, a)) (_, (_, b)) -> compare b a) t.entries)
  end in
  let rng = Mpq_crypto.Prng.create 7L in
  let key () = string_of_int (Mpq_crypto.Prng.int rng 12) in
  let lru = Serve.Lru.create ~capacity:4 and model = Ref.create 4 in
  let agree step =
    Alcotest.(check (list string))
      (Printf.sprintf "keys agree after step %d" step)
      (Ref.keys model) (Serve.Lru.keys lru);
    let s = Serve.Lru.stats lru in
    Alcotest.(check (list int))
      (Printf.sprintf "stats agree after step %d" step)
      [ model.Ref.hits; model.Ref.misses; model.Ref.insertions;
        model.Ref.evictions ]
      [ s.Serve.Lru.hits; s.Serve.Lru.misses; s.Serve.Lru.insertions;
        s.Serve.Lru.evictions ]
  in
  for step = 1 to 600 do
    (match Mpq_crypto.Prng.int rng 10 with
    | 0 | 1 | 2 | 3 ->
        let k = key () in
        Serve.Lru.add lru k step;
        Ref.add model k step
    | 4 | 5 | 6 | 7 ->
        let k = key () in
        Alcotest.(check (option int)) "find agrees" (Ref.find model k)
          (Serve.Lru.find lru k)
    | 8 ->
        let k = key () in
        Alcotest.(check bool) "mem agrees"
          (List.mem_assoc k model.Ref.entries)
          (Serve.Lru.mem lru k)
    | _ ->
        (* a migration pass: drop ~1/4, rekey ~1/4, rewrite the rest in
           place — recency order must survive on both sides *)
        let f k v =
          match (Hashtbl.hash k + step) mod 4 with
          | 0 -> None
          | 1 -> Some ("r" ^ string_of_int step ^ "." ^ k, v + 1)
          | _ -> Some (k, v + 1)
        in
        Alcotest.(check int) "remap drop count agrees" (Ref.remap model f)
          (Serve.Lru.remap lru f));
    agree step
  done;
  (* a rekeyed cache keeps evicting correctly at capacity *)
  List.iter
    (fun k ->
      Serve.Lru.add lru k 0;
      Ref.add model k 0)
    [ "a"; "b"; "c"; "d"; "e"; "f" ];
  agree 601

(* --- fingerprints ----------------------------------------------------- *)

(* the regression the length prefixes exist for: under the old
   `id ":" name ";"` concatenation both assignments rendered as
   "1:A;2:B;" *)
let test_assignment_fingerprint_collision () =
  let one =
    Imap.add 1 (Subject.provider "A;2:B") Imap.empty
  in
  let two =
    Imap.add 1 (Subject.provider "A") (Imap.add 2 (Subject.provider "B") Imap.empty)
  in
  Alcotest.(check bool) "crafted assignments no longer collide" false
    (Planner.Optimizer.fingerprint one = Planner.Optimizer.fingerprint two);
  (* same names, different roles: also distinct *)
  let p = Imap.add 1 (Subject.provider "A") Imap.empty in
  let a = Imap.add 1 (Subject.authority "A") Imap.empty in
  Alcotest.(check bool) "role is part of the key" false
    (Planner.Optimizer.fingerprint p = Planner.Optimizer.fingerprint a)

let test_plan_fingerprint_no_set_collision () =
  (* {ab} vs {a,b}: naive set concatenation renders both as "ab" *)
  let schema =
    Schema.make ~name:"R" ~owner:"O"
      [ ("a", Schema.Tint); ("b", Schema.Tint); ("ab", Schema.Tint) ]
  in
  let proj names =
    Planner.Fingerprint.of_plan
      (Plan.project (Attr.Set.of_names names) (Plan.base schema))
  in
  Alcotest.(check bool) "{ab} vs {a,b}" false (proj [ "ab" ] = proj [ "a"; "b" ])

let test_plan_fingerprint_structural () =
  (* fresh node ids must not show: two builds of the same TPC-H query
     fingerprint identically, two different queries differently *)
  let q5 = Planner.Fingerprint.of_plan (Tpch.Tpch_queries.query 5) in
  let q5' = Planner.Fingerprint.of_plan (Tpch.Tpch_queries.query 5) in
  let q3 = Planner.Fingerprint.of_plan (Tpch.Tpch_queries.query 3) in
  Alcotest.(check string) "rebuild is stable" q5 q5';
  Alcotest.(check bool) "distinct queries distinct" false (q5 = q3);
  (* and equal fingerprints track equal shapes *)
  Alcotest.(check bool) "equal_shape agrees" true
    (Plan.equal_shape (Tpch.Tpch_queries.query 5) (Tpch.Tpch_queries.query 5))

let example_env () = Policy_dsl.parse Policy_dsl.example

let test_environment_sensitivity () =
  let env = example_env () in
  let base ?(policy = env.Policy_dsl.policy)
      ?(subjects = env.Policy_dsl.subjects) ?config ?pricing ?network
      ?deliver_to ?max_latency () =
    Planner.Optimizer.environment_fingerprint ~policy ~subjects ?config
      ?pricing ?network ?deliver_to ?max_latency ()
  in
  let reference = base () in
  let mutated_policy =
    (* one permission revoked: Y loses plaintext P on Ins *)
    (Policy_dsl.parse
       (Str.global_replace
          (Str.regexp_string "authorize Ins to Y plain P enc C")
          "authorize Ins to Y enc C" Policy_dsl.example))
      .Policy_dsl.policy
  in
  let checks =
    [ ("policy permission", base ~policy:mutated_policy ());
      ("subject set",
       base ~subjects:(List.tl env.Policy_dsl.subjects) ());
      ("config", base ~config:Opreq.strict ());
      ("pricing",
       base ~pricing:(Planner.Pricing.make ~user_factor:12.0 ()) ());
      ("network",
       base ~network:(Planner.Network.make ~client_mbps:10.0 ()) ());
      ("deliver_to",
       base ~deliver_to:(List.hd env.Policy_dsl.subjects) ());
      ("max_latency", base ~max_latency:1.5 ()) ]
  in
  List.iter
    (fun (what, fp) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s rotates the fingerprint" what)
        false (fp = reference))
    checks;
  Alcotest.(check string) "recomputation is stable" reference (base ())

(* --- service fixtures ------------------------------------------------- *)

let demo_tables (env : Policy_dsl.t) =
  let find name =
    List.find (fun s -> s.Schema.name = name) env.Policy_dsl.schemas
  in
  let s x = Value.Str x and n x = Value.Int x in
  let v = Value.date_of_string in
  [ ( "Hosp",
      Engine.Table.of_schema (find "Hosp")
        [ [| s "alice"; v "1980-01-01"; s "stroke"; s "tpa" |];
          [| s "bob"; v "1975-05-12"; s "stroke"; s "surgery" |];
          [| s "carol"; v "1990-09-30"; s "flu"; s "rest" |];
          [| s "dave"; v "1968-03-22"; s "stroke"; s "tpa" |] ] );
    ( "Ins",
      Engine.Table.of_schema (find "Ins")
        [ [| s "alice"; n 120 |]; [| s "bob"; n 300 |];
          [| s "carol"; n 80 |]; [| s "dave"; n 150 |] ] ) ]

let example_service ?pool ?cache_capacity ?max_batch ?policy () =
  let env = example_env () in
  Serve.Service.create ?pool ?cache_capacity ?max_batch
    ~policy:(Option.value ~default:env.Policy_dsl.policy policy)
    ~subjects:env.Policy_dsl.subjects ~tables:(demo_tables env) ()

let running_query =
  "select T, avg(P) from Hosp join Ins on S=C where D='stroke' \
   group by T having P>100"

(* random-catalog tables, deterministic rows *)
let gen_catalog_tables () =
  let mk schema n row =
    (schema.Schema.name, Engine.Table.of_schema schema (List.init n row))
  in
  let strs = [| "ga"; "bu"; "zo"; "meu" |] in
  [ mk Gen.rel1 17 (fun i ->
        [| Value.Int (i mod 7); Value.Int (i * 3 mod 11);
           Value.Str strs.(i mod 4); Value.Int (i mod 5) |]);
    mk Gen.rel2 13 (fun i ->
        [| Value.Int (i mod 7); Value.Int (i mod 9); Value.Str strs.(i mod 4) |]);
    mk Gen.rel3 11 (fun i -> [| Value.Int (i mod 6); Value.Int (i mod 4) |]) ]

let udf_impls =
  [ ( "f",
      fun vals ->
        let total =
          List.fold_left
            (fun acc v ->
              match Value.to_float v with Some f -> acc +. f | None -> acc)
            0.0 vals
        in
        Value.Int (int_of_float total mod 97) ) ]

let gen_service ?pool ?sharing policy =
  Serve.Service.create ?pool ?sharing ~policy ~subjects:Gen.subjects
    ~tables:(gen_catalog_tables ()) ~udfs:udf_impls ~deliver_to:Gen.user ()

(* --- warm = cold ------------------------------------------------------ *)

(* A warm hit must return a plan structurally identical to what cold
   planning produces, and executing both must coincide byte for byte.
   The warm submission rebuilds the query (fresh node ids), so this
   also pins the structural nature of the key. *)
let test_tpch_warm_equals_cold () =
  let sf = 0.0005 in
  let data = Tpch.Tpch_data.generate ~sf () in
  let tables =
    List.map
      (fun (s : Schema.t) ->
        (s.Schema.name, Engine.Table.of_schema s (List.assoc s.Schema.name data)))
      Tpch.Tpch_schema.all
  in
  List.iter
    (fun sc ->
      let service =
        Serve.Service.create ~policy:(Tpch.Scenarios.policy sc)
          ~subjects:Tpch.Scenarios.subjects ~pricing:Tpch.Scenarios.pricing
          ~base:(Tpch.Tpch_schema.base_stats ~sf)
          ~deliver_to:Tpch.Scenarios.user ~udfs:Tpch.Tpch_queries.udf_impls
          ~tables ()
      in
      List.iter
        (fun q ->
          let label fmt =
            Printf.sprintf "q%d %s %s" q (Tpch.Scenarios.name sc) fmt
          in
          let cold = Serve.Service.submit service (Tpch.Tpch_queries.query q) in
          let warm = Serve.Service.submit service (Tpch.Tpch_queries.query q) in
          Alcotest.(check bool) (label "cold is a miss") true
            (cold.Serve.Service.status = Serve.Service.Miss);
          Alcotest.(check bool) (label "warm is a hit") true
            (warm.Serve.Service.status = Serve.Service.Hit);
          Alcotest.(check string) (label "same key") cold.Serve.Service.key
            warm.Serve.Service.key;
          let plan_of (r : Serve.Service.response) =
            (Option.get r.Serve.Service.planned)
              .Planner.Optimizer.extended.Extend.plan
          in
          (* the cached plan against an independent cold planning round *)
          let fresh =
            Planner.Optimizer.plan ~policy:(Tpch.Scenarios.policy sc)
              ~subjects:Tpch.Scenarios.subjects ~pricing:Tpch.Scenarios.pricing
              ~base:(Tpch.Tpch_schema.base_stats ~sf)
              ~deliver_to:Tpch.Scenarios.user (Tpch.Tpch_queries.query q)
          in
          Alcotest.(check bool) (label "warm plan = cold plan (structure)")
            true
            (Plan.equal_shape (plan_of warm) (plan_of cold));
          Alcotest.(check bool) (label "warm plan = fresh replan (structure)")
            true
            (Plan.equal_shape (plan_of warm)
               fresh.Planner.Optimizer.extended.Extend.plan);
          match (cold.Serve.Service.outcome, warm.Serve.Service.outcome) with
          | Serve.Service.Table a, Serve.Service.Table b ->
              Alcotest.(check bool) (label "results byte-identical") true
                (byte_identical a b)
          | _ -> Alcotest.fail (label "expected executed tables"))
        [ 1; 3; 5; 10 ])
    Tpch.Scenarios.all

let prop_warm_equals_cold =
  QCheck.Test.make ~count:40
    ~name:"warm hit = cold plan (structure and bytes) on random queries"
    Gen.arbitrary_plan_policy
    (fun (plan, policy) ->
      let service = gen_service policy in
      let cold = Serve.Service.submit service plan in
      let warm = Serve.Service.submit service plan in
      if cold.Serve.Service.status <> Serve.Service.Miss then
        QCheck.Test.fail_report "first submission was not a miss";
      if warm.Serve.Service.status <> Serve.Service.Hit then
        QCheck.Test.fail_report "second submission was not a hit";
      if not (outcome_equal cold.Serve.Service.outcome warm.Serve.Service.outcome)
      then QCheck.Test.fail_report "warm outcome differs from cold";
      (match warm.Serve.Service.planned with
      | None -> ()
      | Some r ->
          (* the entry the cache served still satisfies the verifier *)
          let diags =
            Verify.Verifier.run
              { Verify.Verifier.policy;
                config = r.Planner.Optimizer.config;
                extended = r.Planner.Optimizer.extended;
                clusters = r.Planner.Optimizer.clusters;
                requests = r.Planner.Optimizer.requests }
          in
          if not (Verify.Verifier.ok diags) then
            QCheck.Test.fail_reportf "cached plan fails verification:\n%s"
              (Verify.Diag.render diags);
          (* and equals an independent replanning round structurally *)
          let fresh =
            Planner.Optimizer.plan ~policy ~subjects:Gen.subjects
              ~deliver_to:Gen.user plan
          in
          if
            not
              (Plan.equal_shape r.Planner.Optimizer.extended.Extend.plan
                 fresh.Planner.Optimizer.extended.Extend.plan)
          then QCheck.Test.fail_report "cached plan differs from fresh replan");
      true)

(* --- invalidation ----------------------------------------------------- *)

let test_policy_invalidation () =
  let original = example_env () in
  let revoked =
    (* a single permission revoked: Y loses plaintext P on Ins *)
    Policy_dsl.parse
      (Str.global_replace
         (Str.regexp_string "authorize Ins to Y plain P enc C")
         "authorize Ins to Y enc C" Policy_dsl.example)
  in
  let granted =
    (* a brand-new subject: its facts can be in no dependency set *)
    Policy_dsl.parse
      (Str.global_replace
         (Str.regexp_string "authorize Hosp to H")
         "provider W\nauthorize Hosp to W enc D\nauthorize Hosp to H"
         Policy_dsl.example)
  in
  (* what a cache-less full replan answers under [policy] *)
  let fresh_outcome policy =
    let s = example_service ~policy () in
    (Serve.Service.submit_sql s running_query).Serve.Service.outcome
  in
  let service = example_service () in
  let r1 = Serve.Service.submit_sql service running_query in
  let r1' = Serve.Service.submit_sql service running_query in
  Alcotest.(check bool) "warmed up" true
    (r1'.Serve.Service.status = Serve.Service.Hit);
  (* the entry's dependency set contains the fact the revocation below
     removes — that is what makes the drop mandatory *)
  (match r1.Serve.Service.planned with
  | None -> Alcotest.fail "running query should be plannable"
  | Some r ->
      let deps =
        Analysis.Deps.of_extended
          ~deliver_to:(List.find
                         (fun s -> s.Subject.role = Subject.User)
                         original.Policy_dsl.subjects)
          ~extended:r.Planner.Optimizer.extended
          ~clusters:r.Planner.Optimizer.clusters ()
      in
      Alcotest.(check bool) "revoked fact is a dependency" true
        (Analysis.Fact.Set.mem
           { Analysis.Fact.subject = Subject.provider "Y";
             attr = Attr.make "P"; level = Analysis.Fact.Plain }
           deps));
  (* 1 — a disjoint delta: the entry survives, rekeyed, and keeps
     hitting with the very same plan (hence raw byte equality) *)
  let env_before = Serve.Service.environment service in
  Serve.Service.set_policy service granted.Policy_dsl.policy;
  Alcotest.(check bool) "policy change rotates the environment" false
    (Serve.Service.environment service = env_before);
  let ra = Serve.Service.submit_sql service running_query in
  Alcotest.(check bool) "disjoint delta keeps the entry live" true
    (ra.Serve.Service.status = Serve.Service.Hit);
  Alcotest.(check bool) "rekeyed under the new environment" false
    (ra.Serve.Service.key = r1.Serve.Service.key);
  Alcotest.(check bool) "same plan, same bytes" true
    (outcome_equal r1.Serve.Service.outcome ra.Serve.Service.outcome);
  (* 2 — revoking a fact the plan depends on drops the entry: miss,
     full replan, and the replanned entry re-passes the verifier *)
  Serve.Service.set_policy service revoked.Policy_dsl.policy;
  let r2 = Serve.Service.submit_sql service running_query in
  Alcotest.(check bool) "dependent revocation forces a miss" true
    (r2.Serve.Service.status = Serve.Service.Miss);
  Alcotest.(check bool) "new key" false
    (r2.Serve.Service.key = r1.Serve.Service.key);
  Alcotest.(check bool) "dropped, not stranded" false
    (List.mem ra.Serve.Service.key (Serve.Service.cache_keys service));
  Alcotest.(check bool) "replan equals a cache-less service" true
    (outcome_equal r2.Serve.Service.outcome
       (fresh_outcome revoked.Policy_dsl.policy));
  (match r2.Serve.Service.planned with
  | None -> Alcotest.fail "query should still be plannable after revocation"
  | Some r ->
      let diags =
        Verify.Verifier.run
          { Verify.Verifier.policy = revoked.Policy_dsl.policy;
            config = r.Planner.Optimizer.config;
            extended = r.Planner.Optimizer.extended;
            clusters = r.Planner.Optimizer.clusters;
            requests = r.Planner.Optimizer.requests }
      in
      Alcotest.(check bool) "replanned entry passes the verifier" true
        (Verify.Verifier.ok diags));
  (* 3 — restoring the policy is a grant-only delta: the resident
     (revocation-era) entry is re-certified by an incremental verifier
     pass and keeps serving — no replanning, answers canonically equal
     to both the original response and a cache-less replan *)
  Serve.Service.set_policy service original.Policy_dsl.policy;
  let r3 = Serve.Service.submit_sql service running_query in
  Alcotest.(check bool) "grant-only delta retains the entry" true
    (r3.Serve.Service.status = Serve.Service.Hit);
  Alcotest.(check bool) "answer canonically unchanged" true
    (outcome_canonical_equal r1.Serve.Service.outcome r3.Serve.Service.outcome);
  Alcotest.(check bool) "canonically equal to a cache-less replan" true
    (outcome_canonical_equal r3.Serve.Service.outcome
       (fresh_outcome original.Policy_dsl.policy));
  let s = Serve.Service.stats service in
  Alcotest.(check bool) "migration accounting" true
    (s.Serve.Service.invalidated >= 1 && s.Serve.Service.retained >= 1)

let test_config_invalidation () =
  let service = example_service () in
  let warm () = Serve.Service.submit_sql service running_query in
  ignore (warm ());
  Alcotest.(check bool) "warm" true
    ((warm ()).Serve.Service.status = Serve.Service.Hit);
  (* pricing change: replanned, and replanning is real — the costed
     plan may genuinely change, so the entry must re-verify *)
  Serve.Service.set_pricing service
    (Planner.Pricing.make ~provider_multipliers:[ ("X", 0.1) ] ());
  let after_pricing = warm () in
  Alcotest.(check bool) "pricing change invalidates" true
    (after_pricing.Serve.Service.status = Serve.Service.Miss);
  Alcotest.(check bool) "pricing replan warm again" true
    ((warm ()).Serve.Service.status = Serve.Service.Hit);
  (* network change *)
  Serve.Service.set_network service (Planner.Network.make ~client_mbps:1.0 ());
  Alcotest.(check bool) "network change invalidates" true
    ((warm ()).Serve.Service.status = Serve.Service.Miss);
  (* capability config change: strict forbids all computation over
     ciphertext; the running example is still plannable *)
  Serve.Service.set_config service Opreq.strict;
  let after_config = warm () in
  Alcotest.(check bool) "config change invalidates" true
    (after_config.Serve.Service.status = Serve.Service.Miss);
  match after_config.Serve.Service.outcome with
  | Serve.Service.Table _ -> ()
  | Serve.Service.Rejected msg ->
      Alcotest.failf "strict config unexpectedly rejects: %s" msg
  | Serve.Service.Expired why ->
      Alcotest.failf "no deadline was set, yet expired: %s" why

(* --- concurrency ------------------------------------------------------ *)

(* Replay the same stream — queries with verbatim repeats, interleaved
   policy mutations — through two services that differ only in the
   domain pool, and require identical responses (statuses, bytes) and
   an identical final cache state. Batches exercise the admission
   bound: 200 events at max_batch 16 force many rounds. *)
let test_stream_determinism () =
  let rand = Random.State.make [| 0xC0FFEE |] in
  let plan_pool =
    Array.init 12 (fun _ -> Gen.gen_plan rand)
  in
  let policy0 = Gen.gen_policy rand in
  let events =
    Gen.gen_stream ~repeat_rate:0.6 ~mutation_rate:0.05 ~pool:plan_pool 200
      rand
  in
  (* concretize mutations once, so both replays see the same policies *)
  let script =
    List.rev
      (snd
         (List.fold_left
            (fun (policy, acc) ev ->
              match ev with
              | Gen.Squery q -> (policy, `Query q :: acc)
              | Gen.Smutate ->
                  (* mixed grants and revokes: the differential also
                     covers incremental retention and re-verification *)
                  let policy' = Gen.mutate_policy ~mode:`Mixed policy rand in
                  (policy', `Set policy' :: acc))
            (policy0, []) events))
  in
  let queries =
    List.length
      (List.filter (function `Query _ -> true | _ -> false) script)
  in
  let replay pool =
    let service =
      gen_service ?pool policy0
    in
    let flush batch acc =
      match batch with
      | [] -> acc
      | qs -> acc @ Serve.Service.submit_batch service (List.rev qs)
    in
    let responses, pending =
      List.fold_left
        (fun (acc, batch) ev ->
          match ev with
          | `Query q -> (acc, q :: batch)
          | `Set policy ->
              let acc = flush batch acc in
              Serve.Service.set_policy service policy;
              (acc, []))
        ([], []) script
    in
    let responses = flush pending responses in
    (responses, Serve.Service.cache_keys service, Serve.Service.stats service)
  in
  let seq, seq_keys, seq_stats = replay None in
  let pool = Par.create ~name:"serve-test" 4 in
  let par, par_keys, par_stats =
    Fun.protect ~finally:(fun () -> Par.shutdown pool) @@ fun () ->
    replay (Some pool)
  in
  Alcotest.(check int) "every query answered" queries (List.length seq);
  Alcotest.(check int) "same response count" (List.length seq)
    (List.length par);
  List.iteri
    (fun i ((a : Serve.Service.response), (b : Serve.Service.response)) ->
      Alcotest.(check bool)
        (Printf.sprintf "response %d: same status" i)
        true
        (a.Serve.Service.status = b.Serve.Service.status);
      Alcotest.(check string)
        (Printf.sprintf "response %d: same key" i)
        a.Serve.Service.key b.Serve.Service.key;
      Alcotest.(check bool)
        (Printf.sprintf "response %d: same bytes" i)
        true
        (outcome_equal a.Serve.Service.outcome b.Serve.Service.outcome))
    (List.combine seq par);
  Alcotest.(check (list string)) "deterministic final cache state" seq_keys
    par_keys;
  Alcotest.(check int) "same hits" seq_stats.Serve.Service.hits
    par_stats.Serve.Service.hits;
  Alcotest.(check int) "same misses" seq_stats.Serve.Service.misses
    par_stats.Serve.Service.misses;
  Alcotest.(check int) "same evictions" seq_stats.Serve.Service.evictions
    par_stats.Serve.Service.evictions

(* a small-capacity cache under the same differential: evictions on the
   hot path must be deterministic too *)
let test_eviction_determinism () =
  let rand = Random.State.make [| 42 |] in
  let plan_pool = Array.init 10 (fun _ -> Gen.gen_plan rand) in
  let policy = Gen.gen_policy rand in
  let events =
    Gen.gen_stream ~repeat_rate:0.5 ~pool:plan_pool 120 rand
  in
  let queries =
    List.filter_map (function Gen.Squery q -> Some q | Gen.Smutate -> None)
      events
  in
  let replay pool =
    let service =
      Serve.Service.create ?pool ~cache_capacity:4 ~max_batch:8 ~policy
        ~subjects:Gen.subjects ~tables:(gen_catalog_tables ())
        ~udfs:udf_impls ~deliver_to:Gen.user ()
    in
    let responses = Serve.Service.submit_batch service queries in
    (responses, Serve.Service.cache_keys service, Serve.Service.stats service)
  in
  let seq, seq_keys, seq_stats = replay None in
  let pool = Par.create ~name:"serve-evict" 4 in
  let par, par_keys, par_stats =
    Fun.protect ~finally:(fun () -> Par.shutdown pool) @@ fun () ->
    replay (Some pool)
  in
  Alcotest.(check bool) "evictions actually happened" true
    (seq_stats.Serve.Service.evictions > 0);
  Alcotest.(check int) "cache bounded" 4
    (List.length seq_keys);
  Alcotest.(check (list string)) "same final keys" seq_keys par_keys;
  Alcotest.(check int) "same evictions" seq_stats.Serve.Service.evictions
    par_stats.Serve.Service.evictions;
  List.iteri
    (fun i ((a : Serve.Service.response), (b : Serve.Service.response)) ->
      Alcotest.(check bool)
        (Printf.sprintf "response %d equal" i)
        true
        (a.Serve.Service.status = b.Serve.Service.status
        && outcome_equal a.Serve.Service.outcome b.Serve.Service.outcome))
    (List.combine seq par)

(* batching is an implementation detail: one-by-one submission and any
   batch split produce the same responses and cache evolution *)
let test_batching_transparent () =
  let rand = Random.State.make [| 7; 11 |] in
  let plan_pool = Array.init 8 (fun _ -> Gen.gen_plan rand) in
  let policy = Gen.gen_policy rand in
  let events = Gen.gen_stream ~repeat_rate:0.5 ~pool:plan_pool 60 rand in
  let queries =
    List.filter_map (function Gen.Squery q -> Some q | Gen.Smutate -> None)
      events
  in
  let one_by_one =
    let service = gen_service policy in
    ( List.map (Serve.Service.submit service) queries,
      Serve.Service.cache_keys service )
  in
  let batched =
    let service = gen_service policy in
    (Serve.Service.submit_batch service queries,
     Serve.Service.cache_keys service)
  in
  List.iteri
    (fun i ((a : Serve.Service.response), (b : Serve.Service.response)) ->
      Alcotest.(check bool)
        (Printf.sprintf "query %d: same status and bytes" i)
        true
        (a.Serve.Service.status = b.Serve.Service.status
        && outcome_equal a.Serve.Service.outcome b.Serve.Service.outcome))
    (List.combine (fst one_by_one) (fst batched));
  Alcotest.(check (list string)) "same cache evolution" (snd one_by_one)
    (snd batched)

(* --- multi-query sharing ---------------------------------------------- *)

let par_jobs =
  match Sys.getenv_opt "MPQ_JOBS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 4)
  | None -> 4

let arbitrary_batch_policy =
  QCheck.make
    ~print:(fun (qs, _) ->
      String.concat "\n--- next query ---\n" (List.map Plan_printer.to_ascii qs))
    QCheck.Gen.(pair (Gen.gen_batch ~overlap:0.8 6) Gen.gen_policy)

(* The tentpole differential: a batch served with multi-query sharing
   (plan DAG, batch grouping, sub-plan result memoization) must be
   indistinguishable — statuses, cache keys, result bytes, final plan
   cache — from the isolated baseline ([~sharing:false]) and from a
   fresh cache-less service per query; and the whole sharing tier must
   evolve identically at 1 and [MPQ_JOBS] domains, sub-plan cache
   contents included. *)
let prop_sharing_vs_isolated =
  QCheck.Test.make ~count:8
    ~name:
      "sharing differential: batch = isolated baseline = fresh oracle, 1 vs N \
       domains"
    arbitrary_batch_policy
    (fun (batch, policy) ->
      let serve ?pool ?sharing () =
        let service = gen_service ?pool ?sharing policy in
        (Serve.Service.submit_batch service batch, service)
      in
      let rs, shared = serve () in
      let ri, isolated = serve ~sharing:false () in
      List.iteri
        (fun i ((a : Serve.Service.response), (b : Serve.Service.response)) ->
          if a.Serve.Service.status <> b.Serve.Service.status then
            QCheck.Test.fail_reportf "query %d: status diverges from isolated" i;
          if a.Serve.Service.key <> b.Serve.Service.key then
            QCheck.Test.fail_reportf "query %d: key diverges from isolated" i;
          if
            not (outcome_equal a.Serve.Service.outcome b.Serve.Service.outcome)
          then
            QCheck.Test.fail_reportf "query %d: bytes diverge from isolated" i)
        (List.combine rs ri);
      if Serve.Service.cache_keys shared <> Serve.Service.cache_keys isolated
      then QCheck.Test.fail_report "plan-cache evolution diverges from isolated";
      if Serve.Service.subcache_keys isolated <> [] then
        QCheck.Test.fail_report "isolated service stored sub-plan results";
      (* every response equals a fresh, cache-less, sharing-free service *)
      List.iteri
        (fun i (q, (r : Serve.Service.response)) ->
          let fresh = gen_service ~sharing:false policy in
          let f = Serve.Service.submit fresh q in
          if not (outcome_equal f.Serve.Service.outcome r.Serve.Service.outcome)
          then
            QCheck.Test.fail_reportf "query %d: bytes diverge from fresh oracle"
              i)
        (List.combine batch rs);
      (* and the rounds are job-count independent, sub-plan tier included *)
      let pool = Par.create ~name:"serve-sharing" par_jobs in
      let rp, par =
        Fun.protect ~finally:(fun () -> Par.shutdown pool) @@ fun () ->
        serve ~pool ()
      in
      List.iteri
        (fun i ((a : Serve.Service.response), (b : Serve.Service.response)) ->
          if
            a.Serve.Service.status <> b.Serve.Service.status
            || a.Serve.Service.key <> b.Serve.Service.key
            || not
                 (outcome_equal a.Serve.Service.outcome b.Serve.Service.outcome)
          then QCheck.Test.fail_reportf "query %d: parallel replay diverges" i)
        (List.combine rs rp);
      if Serve.Service.cache_keys shared <> Serve.Service.cache_keys par then
        QCheck.Test.fail_report "parallel plan-cache state diverges";
      if Serve.Service.subcache_keys shared <> Serve.Service.subcache_keys par
      then QCheck.Test.fail_report "parallel sub-plan cache state diverges";
      let s1 = Serve.Service.stats shared and sn = Serve.Service.stats par in
      if
        s1.Serve.Service.subplan_hits <> sn.Serve.Service.subplan_hits
        || s1.Serve.Service.subplan_stores <> sn.Serve.Service.subplan_stores
        || s1.Serve.Service.shared_execs <> sn.Serve.Service.shared_execs
      then QCheck.Test.fail_report "sub-plan statistics diverge across job counts";
      true)

(* Shared sub-plan lifecycle over one structurally repeated core:

   - cross-query reuse: a brand-new query shape (a plan-cache miss)
     still hits the sub-plan result cached from earlier queries'
     shared core, with bytes equal to a sharing-free fresh service at
     1 and [MPQ_JOBS] domains;
   - a grant-only policy delta keeps every sub-plan entry (rekeyed)
     and the shared hits keep coming;
   - a revocation the consumers depend on drops the shared entry once
     for all of them, and replanned answers equal the fresh oracle. *)
let test_shared_subplan_lifecycle () =
  let core () =
    Plan.join
      (Predicate.conj
         [ Predicate.Cmp_attr (Attr.make "a", Predicate.Eq, Attr.make "e") ])
      (Plan.base Gen.rel1) (Plan.base Gen.rel2)
  in
  let q1 = Plan.order_by [ (Attr.make "b", Plan.Asc) ] (core ()) in
  let q2 = Plan.limit 5 (core ()) in
  let q3 = Plan.project (Attr.Set.of_names [ "a"; "b"; "f" ]) (core ()) in
  let is_table (r : Serve.Service.response) =
    match r.Serve.Service.outcome with
    | Serve.Service.Table _ -> true
    | _ -> false
  in
  let deps_of (r : Serve.Service.response) q =
    let p = Option.get r.Serve.Service.planned in
    Analysis.Deps.of_extended ~deliver_to:Gen.user ~original:q
      ~extended:p.Planner.Optimizer.extended
      ~clusters:p.Planner.Optimizer.clusters ()
  in
  let dep_hitting_revoke ~rand ~policy d1 d2 =
    (* a revocation both cached consumers depend on; [None] when the
       draw budget finds none (e.g. the optimizer assigned every node
       to storing subjects, whose rules revoke_once spares) *)
    let rec go tries =
      if tries > 499 then None
      else
        let candidate = Gen.revoke_once policy rand in
        match
          Analysis.Delta.diff ~subjects:Gen.subjects ~old_policy:policy
            ~new_policy:candidate ()
        with
        | `Delta d
          when (not
                  (Analysis.Fact.Set.is_empty
                     (Analysis.Fact.Set.inter d.Analysis.Delta.removed d1)))
               && not
                    (Analysis.Fact.Set.is_empty
                       (Analysis.Fact.Set.inter d.Analysis.Delta.removed d2))
          ->
            Some candidate
        | _ -> go (tries + 1)
    in
    go 0
  in
  (* search a seeded policy that admits the scenario — all three
     queries plannable, the shared core actually reused across
     queries, and some revocation hits both consumers' dependency
     sets; the fixed seed sequence keeps the pick deterministic *)
  let rec find_policy seed =
    if seed > 199 then Alcotest.fail "no generated policy admits the scenario"
    else
      let rand = Random.State.make [| 0xBEEF; seed |] in
      let policy = Gen.gen_policy rand in
      let service = gen_service policy in
      let r1 = Serve.Service.submit service q1 in
      let r2 = Serve.Service.submit service q2 in
      let before = Serve.Service.stats service in
      let r3 = Serve.Service.submit service q3 in
      let after = Serve.Service.stats service in
      if
        List.for_all is_table [ r1; r2; r3 ]
        && after.Serve.Service.subplan_hits > before.Serve.Service.subplan_hits
        && dep_hitting_revoke
             ~rand:(Random.State.make [| 0xD0; seed |])
             ~policy (deps_of r1 q1) (deps_of r2 q2)
           <> None
      then (rand, policy, service, r1, r2, r3)
      else find_policy (seed + 1)
  in
  let rand, policy, service, r1, r2, r3 = find_policy 0 in
  Alcotest.(check bool) "cross-query reuse fired on a full-query miss" true
    (r3.Serve.Service.status = Serve.Service.Miss);
  Alcotest.(check bool) "the queries share plan-DAG nodes" true
    ((Serve.Service.dag_stats service).Planner.Dag.shared_occurrences > 0);
  (* reuse never shows in the bytes: a sharing-free fresh service
     answers identically, serially and on a pool *)
  let fresh_oracle ?pool q =
    let fresh = gen_service ?pool ~sharing:false policy in
    (Serve.Service.submit fresh q).Serve.Service.outcome
  in
  Alcotest.(check bool) "reused answer = fresh oracle (1 domain)" true
    (outcome_equal r3.Serve.Service.outcome (fresh_oracle q3));
  let pool = Par.create ~name:"serve-lifecycle" par_jobs in
  Fun.protect ~finally:(fun () -> Par.shutdown pool) (fun () ->
      Alcotest.(check bool)
        (Printf.sprintf "reused answer = fresh oracle (%d domains)" par_jobs)
        true
        (outcome_equal r3.Serve.Service.outcome (fresh_oracle ~pool q3)));
  (* --- grant-only delta: sub-plan entries survive, rekeyed --- *)
  let rec find_grant tries p =
    if tries > 99 then Alcotest.fail "no grant-only mutation found"
    else
      let candidate = Gen.grant_once p rand in
      match
        Analysis.Delta.diff ~subjects:Gen.subjects ~old_policy:p
          ~new_policy:candidate ()
      with
      | `Delta d
        when Analysis.Delta.grant_only d && not (Analysis.Delta.is_empty d) ->
          candidate
      | _ -> find_grant (tries + 1) p
  in
  let granted = find_grant 0 policy in
  let before = Serve.Service.stats service in
  Serve.Service.set_policy service granted;
  let after = Serve.Service.stats service in
  Alcotest.(check int) "grant-only delta drops no sub-plan entry"
    before.Serve.Service.subplan_invalidated
    after.Serve.Service.subplan_invalidated;
  Alcotest.(check int) "sub-plan entries retained across the migration"
    before.Serve.Service.subplan_entries after.Serve.Service.subplan_entries;
  let r1' = Serve.Service.submit service q1 in
  let hit = Serve.Service.stats service in
  Alcotest.(check bool) "plan entry still hits after the grant" true
    (r1'.Serve.Service.status = Serve.Service.Hit);
  Alcotest.(check bool) "shared sub-plan hits keep coming after the grant" true
    (hit.Serve.Service.subplan_hits > after.Serve.Service.subplan_hits);
  Alcotest.(check bool) "grant leaves the cached bytes untouched" true
    (outcome_equal r1.Serve.Service.outcome r1'.Serve.Service.outcome);
  (* --- revocation the consumers depend on: dropped for all --- *)
  let revoked =
    match
      dep_hitting_revoke ~rand ~policy:granted (deps_of r1 q1) (deps_of r2 q2)
    with
    | Some p -> p
    | None -> Alcotest.fail "no dependency-hitting revocation found"
  in
  let pre_revoke = Serve.Service.stats service in
  Serve.Service.set_policy service revoked;
  let after = Serve.Service.stats service in
  Alcotest.(check bool)
    "dependent revocation drops sub-plan entries (once, for every consumer)"
    true
    (after.Serve.Service.subplan_invalidated
     > pre_revoke.Serve.Service.subplan_invalidated);
  Alcotest.(check bool) "resident sub-plan results shrank" true
    (after.Serve.Service.subplan_entries
     < pre_revoke.Serve.Service.subplan_entries);
  let r1'' = Serve.Service.submit service q1 in
  let r2'' = Serve.Service.submit service q2 in
  Alcotest.(check bool) "both consumers replan" true
    (r1''.Serve.Service.status = Serve.Service.Miss
    && r2''.Serve.Service.status = Serve.Service.Miss);
  let fresh_revoked q =
    let fresh = gen_service ~sharing:false revoked in
    (Serve.Service.submit fresh q).Serve.Service.outcome
  in
  Alcotest.(check bool) "replanned answers equal the fresh oracle" true
    (outcome_equal r1''.Serve.Service.outcome (fresh_revoked q1)
    && outcome_equal r2''.Serve.Service.outcome (fresh_revoked q2))

(* Leakage gate: structurally equal subtrees under different
   environments must never share bytes. Same environment, same
   structure ⇒ identical sub-plan cache keys (sharing is deterministic
   across service instances); any environment difference ⇒ disjoint
   keys, including across policy epochs of one service. *)
let test_no_cross_environment_sharing () =
  let rec find seed =
    if seed > 199 then Alcotest.fail "no seed admits the scenario"
    else
      let rand = Random.State.make [| 0xFACE; seed |] in
      let q = Gen.gen_plan rand in
      let pa = Gen.gen_policy rand in
      let pb = Gen.revoke_once pa rand in
      let sa = gen_service pa in
      let sb = gen_service pb in
      let ra = Serve.Service.submit sa q and rb = Serve.Service.submit sb q in
      let planned (r : Serve.Service.response) =
        match r.Serve.Service.outcome with
        | Serve.Service.Table _ -> true
        | _ -> false
      in
      if
        planned ra && planned rb
        && Serve.Service.environment sa <> Serve.Service.environment sb
      then (q, pa, pb, sa, sb)
      else find (seed + 1)
  in
  let q, pa, pb, sa, sb = find 0 in
  let keys_a = Serve.Service.subcache_keys sa in
  let keys_b = Serve.Service.subcache_keys sb in
  Alcotest.(check bool) "sub-plan results were stored" true (keys_a <> []);
  (* determinism: a twin service under the same environment builds the
     exact same keys *)
  let sa' = gen_service pa in
  ignore (Serve.Service.submit sa' q);
  Alcotest.(check (list string)) "same environment ⇒ identical keys" keys_a
    (Serve.Service.subcache_keys sa');
  (* different policy ⇒ different environment fingerprint ⇒ disjoint *)
  Alcotest.(check bool) "different environment ⇒ disjoint keys" true
    (List.for_all (fun k -> not (List.mem k keys_b)) keys_a);
  (* epochs of one service: a policy change rotates the environment,
     so pre-mutation keys are unreachable afterwards — even for
     entries the migration retained (they are rekeyed) *)
  Serve.Service.set_policy sa pb;
  ignore (Serve.Service.submit sa q);
  Alcotest.(check bool) "old-epoch keys unreachable after set_policy" true
    (List.for_all
       (fun k -> not (List.mem k keys_a))
       (Serve.Service.subcache_keys sa))

(* --- service stats ---------------------------------------------------- *)

let test_stats_accounting () =
  let service = example_service ~cache_capacity:8 () in
  ignore (Serve.Service.submit_sql service running_query);
  ignore (Serve.Service.submit_sql service running_query);
  ignore (Serve.Service.submit_sql service "select S from Hosp where D='flu'");
  let s = Serve.Service.stats service in
  Alcotest.(check int) "queries" 3 s.Serve.Service.queries;
  Alcotest.(check int) "hits" 1 s.Serve.Service.hits;
  Alcotest.(check int) "misses" 2 s.Serve.Service.misses;
  Alcotest.(check int) "entries" 2 s.Serve.Service.entries;
  Alcotest.(check int) "rejections" 0 s.Serve.Service.rejections;
  Alcotest.(check bool) "plan time accounted" true
    (s.Serve.Service.plan_ms > 0.0);
  (* invalidate drops entries, keeps counters *)
  Serve.Service.invalidate service;
  let s' = Serve.Service.stats service in
  Alcotest.(check int) "cache emptied" 0 s'.Serve.Service.entries;
  Alcotest.(check int) "history kept" 2 s'.Serve.Service.misses

let () =
  Alcotest.run "serve"
    [ ( "lru",
        [ ("bounds, order, stats", `Quick, test_lru_bounds);
          ("recency-list vs stamp model, 600 random ops", `Quick,
           test_lru_model_differential) ] );
      ( "fingerprint",
        [ ("assignment collision regression", `Quick,
           test_assignment_fingerprint_collision);
          ("attribute-set collision regression", `Quick,
           test_plan_fingerprint_no_set_collision);
          ("structural stability", `Quick, test_plan_fingerprint_structural);
          ("environment sensitivity", `Quick, test_environment_sensitivity) ] );
      ( "warm=cold",
        [ ("tpch 4 queries x 3 scenarios", `Slow, test_tpch_warm_equals_cold);
          QCheck_alcotest.to_alcotest prop_warm_equals_cold ] );
      ( "invalidation",
        [ ("single-permission policy change", `Quick, test_policy_invalidation);
          ("pricing/network/config change", `Quick, test_config_invalidation) ]
      );
      ( "concurrency",
        [ ("200-query stream, 1 vs 4 domains", `Slow, test_stream_determinism);
          ("eviction determinism under small cache", `Slow,
           test_eviction_determinism);
          ("batching transparency", `Slow, test_batching_transparent) ] );
      ( "sharing",
        [ QCheck_alcotest.to_alcotest prop_sharing_vs_isolated;
          ("shared sub-plan lifecycle: reuse, grants, revocation", `Slow,
           test_shared_subplan_lifecycle);
          ("no sharing across environments", `Quick,
           test_no_cross_environment_sharing) ] );
      ( "stats",
        [ ("hit/miss accounting", `Quick, test_stats_accounting) ] ) ]
