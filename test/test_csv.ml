(* CSV import/export and the policy DSL. *)

open Relalg
open Engine

let schema =
  Schema.make ~name:"T" ~owner:"A"
    [ ("id", Schema.Tint); ("name", Schema.Tstring); ("bal", Schema.Tfloat);
      ("day", Schema.Tdate); ("ok", Schema.Tbool) ]

let test_roundtrip () =
  let t =
    Table.of_schema schema
      [ [| Value.Int 1; Value.Str "plain"; Value.Float 1.5;
           Value.date_of_string "2001-02-03"; Value.Bool true |];
        [| Value.Int 2; Value.Str "with,comma"; Value.Float (-2.0);
           Value.date_of_string "1999-12-31"; Value.Bool false |];
        [| Value.Int 3; Value.Str "with \"quotes\""; Value.Null;
           Value.date_of_string "1970-01-01"; Value.Bool true |] ]
  in
  (* dates render as date(n): not re-importable; compare the other cols *)
  let text =
    "id,name,bal,ok\n1,plain,1.5,true\n2,\"with,comma\",-2,false\n3,\"with \
     \"\"quotes\"\"\",,true\n"
  in
  let small =
    Schema.make ~name:"T2" ~owner:"A"
      [ ("id", Schema.Tint); ("name", Schema.Tstring); ("bal", Schema.Tfloat);
        ("ok", Schema.Tbool) ]
  in
  let parsed = Csv.parse small text in
  Alcotest.(check int) "rows" 3 (Table.cardinality parsed);
  Alcotest.(check bool) "null bal" true
    (Value.equal Value.Null
       (Table.value parsed (List.nth (Table.rows parsed) 2) (Attr.make "bal")));
  Alcotest.(check bool) "comma preserved" true
    (Value.equal (Value.Str "with,comma")
       (Table.value parsed (List.nth (Table.rows parsed) 1) (Attr.make "name")));
  ignore t

let test_header_reorder () =
  let small =
    Schema.make ~name:"T3" ~owner:"A" [ ("x", Schema.Tint); ("y", Schema.Tint) ]
  in
  let parsed = Csv.parse small "y,x\n2,1\n" in
  let row = List.hd (Table.rows parsed) in
  Alcotest.(check bool) "x=1" true
    (Value.equal (Value.Int 1) (Table.value parsed row (Attr.make "x")));
  Alcotest.(check bool) "y=2" true
    (Value.equal (Value.Int 2) (Table.value parsed row (Attr.make "y")))

let test_errors () =
  let small =
    Schema.make ~name:"T4" ~owner:"A" [ ("x", Schema.Tint) ]
  in
  let expect_fail text =
    match Csv.parse small text with
    | exception Csv.Csv_error _ -> ()
    | _ -> Alcotest.failf "expected failure on %S" text
  in
  expect_fail "x\nnot_an_int\n";
  expect_fail "wrong_col\n1\n";
  expect_fail "x\n\"unterminated\n";
  (* a duplicated header column used to be accepted silently *)
  expect_fail "x,x\n1,2\n"

let test_export_then_import () =
  let small =
    Schema.make ~name:"T5" ~owner:"A"
      [ ("x", Schema.Tint); ("s", Schema.Tstring) ]
  in
  let t =
    Table.of_schema small
      [ [| Value.Int 7; Value.Str "a,b\"c" |]; [| Value.Int 8; Value.Str "" |] ]
  in
  let back = Csv.parse small (Csv.to_string t) in
  Alcotest.(check bool) "roundtrip" true
    (let r0 = List.hd (Table.rows back) in
     Value.equal (Value.Str "a,b\"c") (Table.value back r0 (Attr.make "s")))

(* --- policy DSL -------------------------------------------------------- *)

let test_dsl_example () =
  let env = Authz.Policy_dsl.parse Authz.Policy_dsl.example in
  Alcotest.(check int) "two relations" 2
    (List.length env.Authz.Policy_dsl.schemas);
  Alcotest.(check int) "six subjects" 6
    (List.length env.Authz.Policy_dsl.subjects);
  (* views match Fig. 4 *)
  let x = Authz.Subject.provider "X" in
  let v = Authz.Authorization.view env.Authz.Policy_dsl.policy x in
  Alcotest.(check string) "P_X" "DT" (Attr.Set.to_string v.Authz.Authorization.plain);
  Alcotest.(check string) "E_X" "CPS" (Attr.Set.to_string v.Authz.Authorization.enc)

let test_dsl_hosted () =
  let env =
    Authz.Policy_dsl.parse
      "relation R owner H hosted W enc a,b (a int, b int, c string)\nuser U\nauthorize R to U plain a,b,c\n"
  in
  let r = List.hd env.Authz.Policy_dsl.schemas in
  Alcotest.(check string) "host" "W" (Schema.host_name r);
  Alcotest.(check string) "at-rest enc" "ab"
    (Attr.Set.to_string (Schema.stored_encrypted r));
  Alcotest.(check bool) "host subject declared" true
    (List.exists
       (fun s -> Authz.Subject.name s = "W")
       env.Authz.Policy_dsl.subjects)

let test_dsl_errors () =
  let expect_fail text =
    match Authz.Policy_dsl.parse text with
    | exception Authz.Policy_dsl.Syntax_error _ -> ()
    | _ -> Alcotest.failf "expected syntax error on %S" text
  in
  expect_fail "relation R owner";
  expect_fail "authorize R to U plain a";
  expect_fail "relation R owner H (a int\n";
  expect_fail "frobnicate"

(* --- JSON export -------------------------------------------------------- *)

let test_json_escaping () =
  let j =
    Json.Obj
      [ ("k\"ey", Json.String "line\nbreak \"quoted\" tab\t");
        ("nums", Json.List [ Json.Int 1; Json.Float 2.5; Json.Float nan ]);
        ("empty", Json.Obj []) ]
  in
  let s = Json.to_string ~pretty:false j in
  Alcotest.(check bool) "escapes quote" true
    (String.length s > 0
    && (try ignore (Str.search_forward (Str.regexp_string "\\\"") s 0); true
        with Not_found -> false))

let test_json_report () =
  let env = Authz.Policy_dsl.parse Authz.Policy_dsl.example in
  let plan =
    Mpq_sql.Sql_plan.parse_and_plan ~catalog:env.Authz.Policy_dsl.schemas
      "select T, avg(P) from Hosp join Ins on S = C where D = 'stroke' \
       group by T having P > 100"
  in
  let u =
    List.find
      (fun s -> s.Authz.Subject.role = Authz.Subject.User)
      env.Authz.Policy_dsl.subjects
  in
  let r =
    Planner.Optimizer.plan ~policy:env.Authz.Policy_dsl.policy
      ~subjects:env.Authz.Policy_dsl.subjects ~deliver_to:u plan
  in
  let s = Planner.Report.to_string r in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " present") true
        (try ignore (Str.search_forward (Str.regexp_string key) s 0); true
         with Not_found -> false))
    [ "\"plan\""; "\"keys\""; "\"dispatch\""; "\"cost\"";
      "\"executor\""; "\"equivalence_sets\"" ]

let () =
  Alcotest.run "csv-dsl"
    [ ( "csv",
        [ ("parse with quotes/nulls", `Quick, test_roundtrip);
          ("header reordering", `Quick, test_header_reorder);
          ("errors", `Quick, test_errors);
          ("export/import", `Quick, test_export_then_import) ] );
      ( "json",
        [ ("escaping", `Quick, test_json_escaping);
          ("planning report", `Quick, test_json_report) ] );
      ( "policy-dsl",
        [ ("running example parses to Fig. 4", `Quick, test_dsl_example);
          ("hosted relations", `Quick, test_dsl_hosted);
          ("syntax errors", `Quick, test_dsl_errors) ] ) ]
