(* Authorization policies (Def. 2.1): validation, per-relation views,
   the 'any' default, implicit owner rules, and Def. 4.1 corner cases. *)

open Relalg
open Authz

let hosp = Paper_example.hosp
let ins = Paper_example.ins

let test_rule_disjointness () =
  match Authorization.rule ~rel:"Hosp" ~plain:[ "S" ] ~enc:[ "S" ] Any with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "P and E overlap accepted"

let test_unknown_relation_rejected () =
  match
    Authorization.make ~schemas:[ hosp ]
      [ Authorization.rule ~rel:"Nope" ~plain:[ "S" ] Any ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown relation accepted"

let test_unknown_attribute_rejected () =
  match
    Authorization.make ~schemas:[ hosp ]
      [ Authorization.rule ~rel:"Hosp" ~plain:[ "Z" ] Any ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown attribute accepted"

let test_duplicate_rule_rejected () =
  let u = Subject.user "U" in
  match
    Authorization.make ~schemas:[ hosp ]
      [ Authorization.rule ~rel:"Hosp" ~plain:[ "S" ] (To u);
        Authorization.rule ~rel:"Hosp" ~enc:[ "D" ] (To u) ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "two rules for one (relation, subject) accepted"

let test_any_fallback () =
  let u = Subject.user "U" and p = Subject.provider "P" in
  let policy =
    Authorization.make ~schemas:[ hosp ]
      [ Authorization.rule ~rel:"Hosp" ~plain:[ "S"; "D" ] (To u);
        Authorization.rule ~rel:"Hosp" ~plain:[ "T" ] ~enc:[ "D" ] Any ]
  in
  (* explicit rule wins over 'any' entirely (no merging) *)
  let vu = Authorization.relation_view policy "Hosp" u in
  Alcotest.(check string) "U plain" "DS" (Attr.Set.to_string vu.Authorization.plain);
  Alcotest.(check string) "U enc" "" (Attr.Set.to_string vu.Authorization.enc);
  (* unlisted subjects get the 'any' rule *)
  let vp = Authorization.relation_view policy "Hosp" p in
  Alcotest.(check string) "P plain" "T" (Attr.Set.to_string vp.Authorization.plain);
  Alcotest.(check string) "P enc" "D" (Attr.Set.to_string vp.Authorization.enc)

let test_no_rule_no_visibility () =
  let policy = Authorization.make ~schemas:[ hosp ] [] in
  let v = Authorization.relation_view policy "Hosp" (Subject.provider "P") in
  Alcotest.(check bool) "closed policy" true
    (Attr.Set.is_empty v.Authorization.plain
    && Attr.Set.is_empty v.Authorization.enc)

let test_implicit_owner_rule () =
  let policy = Authorization.make ~schemas:[ hosp; ins ] [] in
  let vh = Authorization.view policy (Subject.authority "H") in
  Alcotest.(check string) "H sees its own relation plaintext" "BDST"
    (Attr.Set.to_string vh.Authorization.plain);
  (* ... and nothing of the other authority's *)
  Alcotest.(check bool) "nothing of Ins" true
    (Attr.Set.is_empty (Attr.Set.inter vh.Authorization.plain (Attr.Set.of_names [ "C"; "P" ])))

let test_explicit_owner_rule_overrides () =
  (* an authority can restrict even itself with an explicit rule *)
  let policy =
    Authorization.make ~schemas:[ hosp ]
      [ Authorization.rule ~rel:"Hosp" ~plain:[ "D"; "T" ]
          (To (Subject.authority "H")) ]
  in
  let vh = Authorization.view policy (Subject.authority "H") in
  Alcotest.(check string) "restricted owner" "DT"
    (Attr.Set.to_string vh.Authorization.plain)

(* --- Def. 4.1 corner cases ------------------------------------------- *)

let test_plaintext_implies_encrypted_ok () =
  (* condition 2: plaintext rights satisfy encrypted requirements *)
  let view =
    { Authorization.plain = Attr.Set.of_names [ "A" ]; enc = Attr.Set.empty }
  in
  let p = Profile.make ~ve:[ "A" ] () in
  Alcotest.(check bool) "ve covered by P" true (Authorized.is_authorized view p)

let test_implicit_encrypted_needs_any_visibility () =
  let view =
    { Authorization.plain = Attr.Set.empty; enc = Attr.Set.of_names [ "A" ] }
  in
  Alcotest.(check bool) "ie ⊆ E ok" true
    (Authorized.is_authorized view (Profile.make ~ie:[ "A" ] ()));
  Alcotest.(check bool) "ip ⊆ E not ok" false
    (Authorized.is_authorized view (Profile.make ~ip:[ "A" ] ()))

let test_uniformity_over_invisible_attrs () =
  (* condition 3 applies to equivalence classes even when neither member
     is in the relation's schema *)
  let view =
    { Authorization.plain = Attr.Set.of_names [ "X"; "A" ];
      enc = Attr.Set.of_names [ "B" ] }
  in
  let p = Profile.make ~vp:[ "X" ] ~eq:[ [ "A"; "B" ] ] () in
  Alcotest.(check bool) "mixed class rejected" false
    (Authorized.is_authorized view p);
  let uniform =
    { Authorization.plain = Attr.Set.of_names [ "X" ];
      enc = Attr.Set.of_names [ "A"; "B" ] }
  in
  Alcotest.(check bool) "uniformly encrypted class ok" true
    (Authorized.is_authorized uniform p)

let () =
  Alcotest.run "authorization"
    [ ( "policy-validation",
        [ ("P/E disjoint", `Quick, test_rule_disjointness);
          ("unknown relation", `Quick, test_unknown_relation_rejected);
          ("unknown attribute", `Quick, test_unknown_attribute_rejected);
          ("one rule per subject", `Quick, test_duplicate_rule_rejected) ] );
      ( "views",
        [ ("any fallback", `Quick, test_any_fallback);
          ("closed policy", `Quick, test_no_rule_no_visibility);
          ("implicit owner rule", `Quick, test_implicit_owner_rule);
          ("explicit owner rule overrides", `Quick, test_explicit_owner_rule_overrides)
        ] );
      ( "def-4.1-corners",
        [ ("plaintext implies encrypted", `Quick, test_plaintext_implies_encrypted_ok);
          ("implicit forms", `Quick, test_implicit_encrypted_needs_any_visibility);
          ("uniformity over invisible attrs", `Quick, test_uniformity_over_invisible_attrs)
        ] ) ]
