(* The parallel-execution subsystem: pool mechanics (reuse, exception
   propagation) plus the differential property the whole design hangs
   on — running any plan, extended or not, on a domain pool produces a
   result byte-identical to the sequential run: same attributes, same
   rows in the same order, same ciphertext bytes. Exercised over random
   plans at 2 and 4 domains, and over the full TPC-H suite (every query
   x every scenario) at [MPQ_JOBS] domains. *)

open Relalg
open Engine

let jobs_env =
  match Sys.getenv_opt "MPQ_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 4)
  | None -> 4

(* --- pool unit tests -------------------------------------------------- *)

let test_pool_reuse () =
  let pool = Par.create ~name:"t" 3 in
  Alcotest.(check int) "size" 3 (Par.size pool);
  (* several batches through the same pool: workers are spawned once and
     must survive across batches *)
  for round = 1 to 5 do
    let n = 50 * round in
    let expected = List.init n (fun i -> i * i) in
    let got = Par.run_all pool (List.init n (fun i () -> i * i)) in
    Alcotest.(check (list int)) "batch results in order" expected got
  done;
  let a, b = Par.both pool (fun () -> "left") (fun () -> 42) in
  Alcotest.(check string) "both left" "left" a;
  Alcotest.(check int) "both right" 42 b;
  Par.shutdown pool;
  Par.shutdown pool (* idempotent *)

let test_pool_exception () =
  let pool = Par.create ~name:"t" 4 in
  let ran = Array.make 8 false in
  (* the first failing task (in input order) is what the submitter sees,
     and the batch still settles: every task runs *)
  (match
     Par.run_all pool
       (List.init 8 (fun i () ->
            ran.(i) <- true;
            if i = 3 || i = 5 then failwith (Printf.sprintf "task %d" i);
            i))
   with
  | _ -> Alcotest.fail "expected the task exception to propagate"
  | exception Failure msg ->
      Alcotest.(check string) "first failure in input order" "task 3" msg);
  Alcotest.(check bool) "whole batch settled" true
    (Array.for_all (fun x -> x) ran);
  (* the pool survives a failed batch *)
  let got = Par.run_all pool (List.init 10 (fun i () -> i + 1)) in
  Alcotest.(check (list int)) "usable after failure"
    (List.init 10 (fun i -> i + 1))
    got;
  Par.shutdown pool

let test_with_pool () =
  Par.with_pool 1 (fun pool ->
      Alcotest.(check bool) "jobs<=1 runs inline" true (pool = None));
  Par.with_pool 3 (fun pool ->
      match pool with
      | None -> Alcotest.fail "expected a pool"
      | Some p ->
          Alcotest.(check (list int)) "map_list order"
            (List.init 100 (fun i -> 2 * i))
            (Par.map_list p (fun i -> 2 * i) (List.init 100 Fun.id)))

let test_map_chunks_offsets () =
  Par.with_pool 4 (fun pool ->
      let p = Option.get pool in
      let xs = List.init 500 Fun.id in
      (* start indices must be the chunk's offset in the input: the
         executor keys derived randomness on them *)
      let chunks = Par.map_chunks p ~chunk:64 ~f:(fun start c -> (start, c)) xs in
      let rebuilt =
        List.concat_map
          (fun (start, c) ->
            List.mapi (fun k x ->
                Alcotest.(check int) "offset consistent" (start + k) x;
                x)
              c)
          chunks
      in
      Alcotest.(check (list int)) "concat of chunks = input" xs rebuilt)

(* --- differential property: parallel = sequential --------------------- *)

(* random tables for Gen's catalog, as in test_exec_equiv *)
let gen_tables st =
  let int () = Value.Int (QCheck.Gen.int_bound 120 st) in
  let str () =
    Value.Str (List.nth [ "ga"; "bu"; "zo"; "meu" ] (QCheck.Gen.int_bound 3 st))
  in
  let rows n mk = List.init n (fun _ -> mk ()) in
  let t1 =
    Table.of_schema Gen.rel1
      (rows (3 + QCheck.Gen.int_bound 12 st) (fun () ->
           [| int (); int (); str (); int () |]))
  in
  let t2 =
    Table.of_schema Gen.rel2
      (rows (3 + QCheck.Gen.int_bound 12 st) (fun () ->
           [| int (); int (); str () |]))
  in
  let t3 =
    Table.of_schema Gen.rel3
      (rows (3 + QCheck.Gen.int_bound 8 st) (fun () -> [| int (); int () |]))
  in
  [ ("R1", t1); ("R2", t2); ("R3", t3) ]

let udf_impls =
  [ ( "f",
      fun vals ->
        let total =
          List.fold_left
            (fun acc v ->
              match Value.to_float v with Some f -> acc +. f | None -> acc)
            0.0 vals
        in
        Value.Int (int_of_float total mod 97) ) ]

(* header, row order and every value — ciphertext payloads included *)
let byte_identical a b =
  List.equal Attr.equal (Table.attrs a) (Table.attrs b)
  && List.equal
       (fun (r1 : Value.t array) r2 -> r1 = r2)
       (Table.rows a) (Table.rows b)

let gen_diff_case =
  QCheck.Gen.(
    Gen.gen_extended >>= fun case ->
    fun st -> (case, gen_tables st))

(* shared pools: spawned once for the whole property, so the 2x150
   parallel runs also stress batch-after-batch reuse *)
let pool2 = lazy (Par.create ~name:"test2" 2)
let pool4 = lazy (Par.create ~name:"test4" 4)

let prop_parallel_identical =
  QCheck.Test.make ~count:150
    ~name:"pooled run (2 and 4 domains) byte-identical to sequential"
    (QCheck.make
       ~print:(fun ((c : Gen.extended_case), _) ->
         Plan_printer.to_ascii c.Gen.executable)
       gen_diff_case)
    (fun (case, tables) ->
      let ctx () =
        (* fresh keyring per run: randomness is derived from (node, row)
           position, so equal seeds must give equal ciphertexts *)
        let keyring = Mpq_crypto.Keyring.create ~seed:123L () in
        let crypto = Enc_exec.make keyring case.Gen.clusters in
        Exec.context ~udfs:udf_impls ~crypto tables
      in
      let seq = Exec.run (ctx ()) case.Gen.executable in
      let check pool tag =
        let par = Exec.run ~pool (ctx ()) case.Gen.executable in
        if byte_identical seq par then true
        else
          QCheck.Test.fail_reportf
            "%s run differs from sequential:\nsequential:\n%s\nparallel:\n%s"
            tag (Table.to_string seq) (Table.to_string par)
      in
      check (Lazy.force pool2) "2-domain" && check (Lazy.force pool4) "4-domain")

(* --- hook post-order determinism -------------------------------------- *)

let test_hook_determinism () =
  (* both join sides deep enough (> 2 nodes) that the executor runs them
     concurrently under a pool *)
  let side schema att v =
    Plan.select
      (Predicate.conj [ Predicate.Cmp_const (Attr.make att, Predicate.Ge, v) ])
      (Plan.project (Schema.attrs schema) (Plan.base schema))
  in
  let l = side Gen.rel1 "a" (Value.Int 0) in
  let r = side Gen.rel2 "e" (Value.Int 0) in
  let plan =
    Plan.order_by
      [ (Attr.make "b", Plan.Asc) ]
      (Plan.join
         (Predicate.conj
            [ Predicate.Cmp_attr (Attr.make "a", Predicate.Eq, Attr.make "e") ])
         l r)
  in
  let tables =
    [ ("R1",
       Table.of_schema Gen.rel1
         (List.init 40 (fun i ->
              [| Value.Int (i mod 7); Value.Int i; Value.Str "ga";
                 Value.Int (i * 3) |])));
      ("R2",
       Table.of_schema Gen.rel2
         (List.init 30 (fun i ->
              [| Value.Int (i mod 7); Value.Int i; Value.Str "bu" |]))) ]
  in
  let trace pool =
    let log = ref [] in
    let hook n t = log := (Plan.id n, Table.cardinality t) :: !log in
    let result = Exec.run_with_hook ?pool (Exec.context tables) ~hook plan in
    (result, List.rev !log)
  in
  let seq, seq_log = trace None in
  Par.with_pool 4 (fun pool ->
      let par, par_log = trace pool in
      Alcotest.(check bool) "same table" true (byte_identical seq par);
      Alcotest.(check (list (pair int int)))
        "hook order independent of jobs" seq_log par_log);
  Alcotest.(check bool) "log covers every node" true
    (List.length seq_log = Plan.size plan)

(* --- named column-lookup errors --------------------------------------- *)

let test_unknown_attribute () =
  let t = Table.create [ Attr.make "a" ] [ [| Value.Int 1 |] ] in
  (match Table.col_index t (Attr.make "zz") with
  | _ -> Alcotest.fail "expected Unknown_attribute"
  | exception Table.Unknown_attribute { attr; columns } ->
      Alcotest.(check string) "names the attribute" "zz" attr;
      Alcotest.(check (list string)) "carries the header" [ "a" ] columns);
  (* through the executor it surfaces as an Exec_error with the operator
     tag, not a bare Not_found *)
  let schema =
    Schema.make ~name:"L" ~owner:"H" [ ("a", Schema.Tint); ("b", Schema.Tint) ]
  in
  let ctx = Exec.context [ ("L", t) ] in
  (match Exec.run ctx (Plan.base schema) with
  | _ -> Alcotest.fail "expected Exec_error"
  | exception Exec.Exec_error msg ->
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "message names attribute and columns: %s" msg)
        true
        (contains msg "unknown attribute b" && contains msg "a"))

(* --- TPC-H: every query, every scenario ------------------------------- *)

let test_tpch_byte_identity () =
  let sf = 0.0005 in
  let data = Tpch.Tpch_data.generate ~sf () in
  let tables =
    List.map
      (fun (s : Schema.t) ->
        (s.Schema.name, Table.of_schema s (List.assoc s.Schema.name data)))
      Tpch.Tpch_schema.all
  in
  let queries = List.map (fun (q, _, _) -> q) Tpch.Tpch_queries.all in
  let pool =
    if jobs_env > 1 then Some (Par.create ~name:"tpch" jobs_env) else None
  in
  Planner.Optimizer.self_check := false;
  List.iter
    (fun q ->
      List.iter
        (fun sc ->
          let r =
            Tpch.Scenarios.optimize ~sf ~fold_leaf_filters:false ~scenario:sc
              (Tpch.Tpch_queries.query q)
          in
          let plan = r.Planner.Optimizer.extended.Authz.Extend.plan in
          let ctx () =
            let keyring = Mpq_crypto.Keyring.create ~seed:42L () in
            let crypto = Enc_exec.make keyring r.Planner.Optimizer.clusters in
            Exec.context ~udfs:Tpch.Tpch_queries.udf_impls ~crypto tables
          in
          let seq = Exec.run (ctx ()) plan in
          let par = Exec.run ?pool (ctx ()) plan in
          Alcotest.(check bool)
            (Printf.sprintf "q%d %s byte-identical at %d jobs" q
               (Tpch.Scenarios.name sc) jobs_env)
            true (byte_identical seq par))
        Tpch.Scenarios.all)
    queries;
  Option.iter Par.shutdown pool

let () =
  let shutdown_shared () =
    if Lazy.is_val pool2 then Par.shutdown (Lazy.force pool2);
    if Lazy.is_val pool4 then Par.shutdown (Lazy.force pool4)
  in
  Fun.protect ~finally:shutdown_shared @@ fun () ->
  Alcotest.run "par"
    [ ( "pool",
        [ ("reuse across batches", `Quick, test_pool_reuse);
          ("exception propagation", `Quick, test_pool_exception);
          ("with_pool", `Quick, test_with_pool);
          ("map_chunks offsets", `Quick, test_map_chunks_offsets) ] );
      ( "differential",
        [ QCheck_alcotest.to_alcotest prop_parallel_identical;
          ("hook post-order determinism", `Quick, test_hook_determinism) ] );
      ( "errors",
        [ ("unknown attribute is named", `Quick, test_unknown_attribute) ] );
      ( "tpch",
        [ ("22 queries x 3 scenarios byte-identical", `Slow,
           test_tpch_byte_identity) ] ) ]
