(* Dispatch fragments (Sec. 6, Fig. 8) and the distributed execution
   simulator: envelope security, key distribution checks, release checks,
   and end-to-end correctness. *)

open Relalg
open Authz
open Paper_example

let planned assignment_of =
  let n = build_plan () in
  let config = Opreq.resolve_conflicts Opreq.default n.plan in
  let ext =
    Extend.extend ~policy ~config ~assignment:(assignment_of n) ~deliver_to:u
      n.plan
  in
  let clusters = Plan_keys.compute ~config ~original:n.plan ext in
  (n, ext, clusters)

(* --- fragments -------------------------------------------------------- *)

let test_fragments_partition () =
  let _, ext, _ = planned assignment_7a in
  let roots = Dispatch.fragment_roots ext in
  (* every node belongs to exactly one fragment: walking up from any node,
     the first fragment root found determines its fragment; each root's
     executor matches the node's executor within the fragment *)
  let parent_of =
    let tbl = Hashtbl.create 32 in
    Plan.iter
      (fun n ->
        List.iter (fun c -> Hashtbl.replace tbl (Plan.id c) n) (Plan.children n))
      ext.Extend.plan;
    tbl
  in
  let rec fragment_root n =
    if List.mem_assoc (Plan.id n) roots then Plan.id n
    else
      match Hashtbl.find_opt parent_of (Plan.id n) with
      | Some p -> fragment_root p
      | None -> Alcotest.fail "node outside every fragment"
  in
  Plan.iter
    (fun n ->
      let root = fragment_root n in
      let root_subject = List.assoc root roots in
      let own_subject = Imap.find (Plan.id n) ext.Extend.assignment in
      Alcotest.(check bool)
        (Printf.sprintf "node %d executor matches fragment root" (Plan.id n))
        true
        (Subject.equal root_subject own_subject))
    ext.Extend.plan

let test_requests_dependency_order () =
  let _, ext, clusters = planned assignment_7a in
  let requests = Dispatch.requests ext clusters in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (r : Dispatch.request) ->
      List.iter
        (fun callee ->
          Alcotest.(check bool)
            (Printf.sprintf "%s called by %s defined before" callee
               r.Dispatch.name)
            true (Hashtbl.mem seen callee))
        r.Dispatch.calls;
      Hashtbl.replace seen r.Dispatch.name ())
    requests;
  (* the last request is the top fragment with no caller *)
  let last = List.nth requests (List.length requests - 1) in
  Alcotest.(check bool) "top fragment last" true
    (List.for_all
       (fun (r : Dispatch.request) ->
         not (List.mem last.Dispatch.name r.Dispatch.calls))
       requests)

let test_request_names_unique () =
  let _, ext, clusters = planned assignment_7a in
  let requests = Dispatch.requests ext clusters in
  let names = List.map (fun r -> r.Dispatch.name) requests in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

(* --- PKI --------------------------------------------------------------- *)

let test_pki_roundtrip () =
  let pki = Distsim.Pki.create () in
  let sealed = Distsim.Pki.seal pki ~sender:"U" ~recipient:"X" "hello" in
  Alcotest.(check string) "roundtrip" "hello"
    (Distsim.Pki.open_ pki ~recipient:"X" sealed)

let test_pki_wrong_recipient () =
  let pki = Distsim.Pki.create () in
  let sealed = Distsim.Pki.seal pki ~sender:"U" ~recipient:"X" "secret" in
  Alcotest.check_raises "wrong recipient"
    (Distsim.Pki.Bad_envelope "envelope addressed to a different subject")
    (fun () -> ignore (Distsim.Pki.open_ pki ~recipient:"Y" sealed));
  (* even claiming to be X doesn't help without X's box key *)
  let stolen = { sealed with Distsim.Pki.recipient = "Y" } in
  Alcotest.check_raises "re-addressed envelope fails decryption"
    (Distsim.Pki.Bad_envelope "decryption failure") (fun () ->
      ignore (Distsim.Pki.open_ pki ~recipient:"Y" stolen))

let test_pki_forged_signature () =
  let pki = Distsim.Pki.create () in
  let sealed = Distsim.Pki.seal pki ~sender:"U" ~recipient:"X" "pay 100" in
  let forged = { sealed with Distsim.Pki.sender = "Z" } in
  (* Z's box key differs, so decryption already fails — exactly what the
     sender-bound box gives us *)
  Alcotest.check_raises "forged sender"
    (Distsim.Pki.Bad_envelope "decryption failure") (fun () ->
      ignore (Distsim.Pki.open_ pki ~recipient:"X" forged))

let flip_bit s i =
  String.mapi
    (fun j c -> if j = i then Char.chr (Char.code c lxor 1) else c)
    s

let test_pki_tampered_ciphertext () =
  let pki = Distsim.Pki.create () in
  let sealed = Distsim.Pki.seal pki ~sender:"U" ~recipient:"X" "pay 100" in
  (* flipping any ciphertext bit must trip the authenticated envelope,
     wherever the flip lands (IV, body or tag) *)
  for i = 0 to String.length sealed.Distsim.Pki.ciphertext - 1 do
    let tampered =
      { sealed with
        Distsim.Pki.ciphertext = flip_bit sealed.Distsim.Pki.ciphertext i }
    in
    match Distsim.Pki.open_ pki ~recipient:"X" tampered with
    | _ -> Alcotest.failf "tampered byte %d accepted" i
    | exception Distsim.Pki.Bad_envelope _ -> ()
  done

let test_pki_tampered_signature () =
  let pki = Distsim.Pki.create () in
  let sealed = Distsim.Pki.seal pki ~sender:"U" ~recipient:"X" "pay 100" in
  for i = 0 to String.length sealed.Distsim.Pki.signature - 1 do
    let tampered =
      { sealed with
        Distsim.Pki.signature = flip_bit sealed.Distsim.Pki.signature i }
    in
    Alcotest.check_raises
      (Printf.sprintf "signature byte %d" i)
      (Distsim.Pki.Bad_envelope "signature verification failure")
      (fun () -> ignore (Distsim.Pki.open_ pki ~recipient:"X" tampered))
  done

(* --- end-to-end simulation -------------------------------------------- *)

let run_sim assignment_of =
  let _, ext, clusters = planned assignment_of in
  Distsim.Runtime.execute ~policy ~pki:(Distsim.Pki.create ())
    ~keyring:(Mpq_crypto.Keyring.create ~seed:5L ())
    ~user:u
    ~tables:(Test_engine_data.tables ())
    ~extended:ext ~clusters ()

let expected = Test_engine_data.expected

let test_sim_correct_result () =
  let outcome = run_sim assignment_7a in
  Alcotest.(check bool) "result" true
    (Engine.Table.equal_bag (Distsim.Runtime.result outcome) (expected ()))

let test_sim_trace_complete () =
  let outcome = run_sim assignment_7a in
  let count pred = List.length (List.filter pred outcome.Distsim.Runtime.trace) in
  Alcotest.(check int) "four requests sent" 4
    (count (function Distsim.Runtime.Request_sent _ -> true | _ -> false));
  Alcotest.(check int) "four requests opened" 4
    (count (function Distsim.Runtime.Request_opened _ -> true | _ -> false));
  Alcotest.(check bool) "release checks happened" true
    (count (function Distsim.Runtime.Release_check _ -> true | _ -> false) >= 3);
  Alcotest.(check bool) "all release checks passed" true
    (List.for_all
       (function Distsim.Runtime.Release_check { ok; _ } -> ok | _ -> true)
       outcome.Distsim.Runtime.trace);
  Alcotest.(check bool) "all key checks passed" true
    (List.for_all
       (function Distsim.Runtime.Key_check { ok; _ } -> ok | _ -> true)
       outcome.Distsim.Runtime.trace)

let test_sim_7b_also_works () =
  let outcome = run_sim assignment_7b in
  Alcotest.(check bool) "7(b) result" true
    (Engine.Table.equal_bag (Distsim.Runtime.result outcome) (expected ()))

let test_sim_detects_missing_key () =
  let _, ext, clusters = planned assignment_7a in
  (* strip Y from kP's holders: the decrypt at Y must be flagged *)
  let clusters' =
    List.map
      (fun (c : Plan_keys.cluster) ->
        if c.Plan_keys.id = "P" then
          { c with Plan_keys.holders = Subject.Set.remove y c.Plan_keys.holders }
        else c)
      clusters
  in
  match
    Distsim.Runtime.execute ~policy ~pki:(Distsim.Pki.create ())
      ~keyring:(Mpq_crypto.Keyring.create ())
      ~user:u
      ~tables:(Test_engine_data.tables ())
      ~extended:ext ~clusters:clusters' ()
  with
  | _ -> Alcotest.fail "expected Distributed_violation"
  | exception Distsim.Runtime.Distributed_violation _ -> ()

let () =
  Alcotest.run "distsim"
    [ ( "dispatch",
        [ ("fragments partition the plan", `Quick, test_fragments_partition);
          ("dependency order", `Quick, test_requests_dependency_order);
          ("unique names", `Quick, test_request_names_unique) ] );
      ( "pki",
        [ ("seal/open roundtrip", `Quick, test_pki_roundtrip);
          ("wrong recipient rejected", `Quick, test_pki_wrong_recipient);
          ("forged sender rejected", `Quick, test_pki_forged_signature);
          ("tampered ciphertext rejected", `Quick, test_pki_tampered_ciphertext);
          ("tampered signature rejected", `Quick, test_pki_tampered_signature)
        ] );
      ( "runtime",
        [ ("correct result (7a)", `Quick, test_sim_correct_result);
          ("trace is complete and clean", `Quick, test_sim_trace_complete);
          ("correct result (7b)", `Quick, test_sim_7b_also_works);
          ("missing key detected", `Quick, test_sim_detects_missing_key) ] ) ]
