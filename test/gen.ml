(* QCheck generators for random plans and policies, shared by property
   tests of the theorems (Thm. 3.1, 5.1, 5.2, 5.3). Plans are built
   bottom-up over a fixed two-authority catalog; generated policies give
   each subject random plaintext/encrypted slices of each relation. *)

open Relalg
open Authz

let rel1 =
  Schema.make ~name:"R1" ~owner:"A1"
    [ ("a", Schema.Tint); ("b", Schema.Tint); ("c", Schema.Tstring);
      ("d", Schema.Tint) ]

let rel2 =
  Schema.make ~name:"R2" ~owner:"A2"
    [ ("e", Schema.Tint); ("f", Schema.Tint); ("g", Schema.Tstring) ]

let rel3 =
  Schema.make ~name:"R3" ~owner:"A2" [ ("h", Schema.Tint); ("k", Schema.Tint) ]

let schemas = [ rel1; rel2; rel3 ]

let user = Subject.user "U"
let providers = List.map Subject.provider [ "X"; "Y"; "Z" ]

let subjects =
  (user :: List.map (fun s -> Subject.authority s.Schema.owner) [ rel1; rel2 ])
  @ providers

(* --- random plans ---------------------------------------------------- *)

(* pick a subset of a set, at least [min] elements *)
let pick_subset ?(min = 1) st set =
  let elements = Attr.Set.elements set in
  let chosen =
    List.filter (fun _ -> QCheck.Gen.bool st) elements
  in
  let chosen = if List.length chosen >= min then chosen else elements in
  Attr.Set.of_list chosen

let pick_one st set =
  let elements = Attr.Set.elements set in
  List.nth elements (QCheck.Gen.int_bound (List.length elements - 1) st)

(* columns c and g are strings in the catalog above; everything else is
   an int — generated atoms must be type-consistent or execution would
   compare apples with 67 *)
let is_string a = List.mem (Attr.name a) [ "c"; "g" ]

let string_pool = [| "ga"; "bu"; "zo"; "meu" |]

let gen_const_atom st schema =
  let a = pick_one st schema in
  let ops = [| Predicate.Eq; Predicate.Lt; Predicate.Ge |] in
  let op = ops.(QCheck.Gen.int_bound 2 st) in
  let v =
    if is_string a then
      Value.Str string_pool.(QCheck.Gen.int_bound 3 st)
    else Value.Int (QCheck.Gen.int_bound 100 st)
  in
  Predicate.Cmp_const (a, op, v)

let gen_pair_atom st schema =
  let a = pick_one st schema in
  let b = pick_one st schema in
  if Attr.equal a b || is_string a <> is_string b then None
  else Some (Predicate.Cmp_attr (a, Predicate.Eq, b))

(* A random plan: leaves (projected base relations), then 1-6 random
   unary/binary operators. *)
let gen_plan : Plan.t QCheck.Gen.t =
 fun st ->
  let leaf schema =
    let cols = pick_subset ~min:2 st (Schema.attrs schema) in
    Plan.project cols (Plan.base schema)
  in
  let rec grow plan fuel other_leaves =
    if fuel = 0 then plan
    else
      let schema = Plan.schema plan in
      let choice = QCheck.Gen.int_bound 6 st in
      let next, other_leaves =
        match choice with
        | 0 when Attr.Set.cardinal schema > 1 ->
            (Plan.project (pick_subset st schema) plan, other_leaves)
        | 1 -> (Plan.select (Predicate.conj [ gen_const_atom st schema ]) plan, other_leaves)
        | 2 -> (
            match gen_pair_atom st schema with
            | Some atom -> (Plan.select [ [ atom ] ] plan, other_leaves)
            | None -> (plan, other_leaves))
        | 3 -> (
            match other_leaves with
            | next :: rest ->
                let right = leaf next in
                let numeric s = Attr.Set.filter (fun a -> not (is_string a)) s in
                let la = numeric schema and ra = numeric (Plan.schema right) in
                if Attr.Set.is_empty la || Attr.Set.is_empty ra then
                  (plan, other_leaves)
                else
                  let a = pick_one st la and b = pick_one st ra in
                  ( Plan.join
                      (Predicate.conj
                         [ Predicate.Cmp_attr (a, Predicate.Eq, b) ])
                      plan right,
                    rest )
            | [] -> (plan, []))
        | 4 ->
            let keys = pick_subset st schema in
            let rest =
              Attr.Set.filter
                (fun a -> not (is_string a))
                (Attr.Set.diff schema keys)
            in
            (* vary the aggregate beyond Sum — the operation requirements
               differ (addition for Sum/Avg, order for Min/Max, none for
               Count), so each stresses a distinct candidate/extension
               path. Count_star is excluded: its output is a fresh
               attribute invisible to downstream profiles, which only
               track source attributes (derived outputs reuse an input's
               name, as udf outputs do). *)
            let aggs =
              if Attr.Set.is_empty rest then []
              else
                let operand = pick_one st rest in
                let fn =
                  match QCheck.Gen.int_bound 4 st with
                  | 0 -> Aggregate.Sum operand
                  | 1 -> Aggregate.Avg operand
                  | 2 -> Aggregate.Min operand
                  | 3 -> Aggregate.Max operand
                  | _ -> Aggregate.Count operand
                in
                [ Aggregate.make fn ]
            in
            (Plan.group_by keys aggs plan, other_leaves)
        | 5 ->
            let numeric = Attr.Set.filter (fun a -> not (is_string a)) schema in
            if Attr.Set.is_empty numeric then (plan, other_leaves)
            else
              let inputs = pick_subset st numeric in
              (Plan.udf "f" inputs (pick_one st inputs) plan, other_leaves)
        | _ ->
            let dir = if QCheck.Gen.bool st then Plan.Asc else Plan.Desc in
            (Plan.order_by [ (pick_one st schema, dir) ] plan, other_leaves)
      in
      grow next (fuel - 1) other_leaves
  in
  let plan = leaf rel1 in
  grow plan (1 + QCheck.Gen.int_bound 5 st) [ rel2; rel3 ]

(* --- random policies -------------------------------------------------- *)

let gen_policy : Authorization.t QCheck.Gen.t =
 fun st ->
  let rule_for schema subject =
    let attrs = Schema.attr_list schema in
    let classify _a =
      (* the querying user is fully plaintext-authorized (the paper's
         premise: it must read the response and the query inputs);
         providers get encrypted-biased random slices *)
      let r = QCheck.Gen.int_bound 99 st in
      match subject.Subject.role with
      | Subject.User -> `Plain
      | _ -> if r < 30 then `Plain else if r < 80 then `Enc else `None
    in
    let plain, enc =
      List.fold_left
        (fun (p, e) a ->
          match classify a with
          | `Plain -> (Attr.name a :: p, e)
          | `Enc -> (p, Attr.name a :: e)
          | `None -> (p, e))
        ([], []) attrs
    in
    if plain = [] && enc = [] then None
    else
      Some
        (Authorization.rule ~rel:schema.Schema.name ~plain ~enc
           (To subject))
  in
  let rules =
    List.concat_map
      (fun schema ->
        List.filter_map (rule_for schema) (user :: providers))
      schemas
  in
  Authorization.make ~schemas rules

let arbitrary_plan = QCheck.make ~print:Plan_printer.to_ascii gen_plan

let arbitrary_plan_policy =
  QCheck.make
    ~print:(fun (p, _) -> Plan_printer.to_ascii p)
    (QCheck.Gen.pair gen_plan gen_policy)

(* --- minimally extended plans ---------------------------------------- *)

(* An executable case for the engine: the original plan plus — when the
   random policy admits a full assignment — its minimal extension with
   [Encrypt]/[Decrypt] nodes and the query-plan key clusters needed to
   run it over real ciphertext. When some operator ends up with no
   candidate the case degrades to the unextended plan with no clusters,
   so consumers see a mix of plaintext-only and encrypting plans. *)
type extended_case = {
  original : Plan.t;
  executable : Plan.t;  (** [original], or its extension with crypto nodes *)
  clusters : Plan_keys.cluster list;
}

let gen_extended : extended_case QCheck.Gen.t =
  QCheck.Gen.(
    gen_plan >>= fun plan ->
    gen_policy >>= fun policy ->
    fun st ->
      let config = Opreq.resolve_conflicts Opreq.default plan in
      let lam = Candidates.compute ~policy ~subjects ~config plan in
      let assignment, complete =
        Plan.fold
          (fun (acc, ok) n ->
            if Candidates.is_source_side n then (acc, ok)
            else
              match Subject.Set.elements (Candidates.candidates_of lam n) with
              | [] -> (acc, false)
              | cands ->
                  let i = QCheck.Gen.int_bound (List.length cands - 1) st in
                  (Imap.add (Plan.id n) (List.nth cands i) acc, ok))
          (Imap.empty, true) plan
      in
      if not complete then
        { original = plan; executable = plan; clusters = [] }
      else
        let ext =
          Extend.extend ~policy ~config ~assignment ~deliver_to:user plan
        in
        let clusters = Plan_keys.compute ~config ~original:plan ext in
        { original = plan; executable = ext.Extend.plan; clusters })

let arbitrary_extended =
  QCheck.make
    ~print:(fun c -> Plan_printer.to_ascii c.executable)
    gen_extended

(* --- query streams ---------------------------------------------------- *)

(* The serving layer's workload shape: long streams of queries where
   many repeat verbatim (cache hits) under a policy that occasionally
   changes (invalidation). Shared by test_serve.ml and serve_bench.ml,
   so both the differential tests and the benchmark replay the same
   kind of traffic. *)

type 'q stream_event =
  | Squery of 'q
  | Smutate  (** mutate the policy before serving the next query *)

(* [gen_stream ~repeat_rate ~mutation_rate ~pool n]: [n] events. Each
   event is a policy mutation with probability [mutation_rate];
   otherwise a query — a verbatim repeat of an earlier one with
   probability [repeat_rate] (once any was issued), else a fresh pick
   from [pool]. With a finite pool, fresh picks repeat naturally too,
   so the realized hit rate is at least [repeat_rate]. *)
let gen_stream ?(repeat_rate = 0.6) ?(mutation_rate = 0.0) ~pool n :
    'q stream_event list QCheck.Gen.t =
 fun st ->
  if Array.length pool = 0 then invalid_arg "gen_stream: empty query pool";
  let issued = ref [] in
  let pick_issued () =
    List.nth !issued (QCheck.Gen.int_bound (List.length !issued - 1) st)
  in
  let pick_fresh () =
    let q = pool.(QCheck.Gen.int_bound (Array.length pool - 1) st) in
    issued := q :: !issued;
    q
  in
  List.init n (fun _ ->
      if QCheck.Gen.float_bound_inclusive 1.0 st < mutation_rate then Smutate
      else if
        !issued <> [] && QCheck.Gen.float_bound_inclusive 1.0 st < repeat_rate
      then Squery (pick_issued ())
      else Squery (pick_fresh ()))

(* --- overlapping batches ---------------------------------------------- *)

(* [gen_batch ~overlap n]: a batch of [n] queries designed to exercise
   multi-query work sharing. A few random "cores" are generated first;
   each batch member is, with probability [overlap], one shared core
   under a fresh single-operator top (project/select/order-by/limit),
   otherwise an independent random plan. A single-operator top leaves
   the core at preorder position 1 in every wrapped query, so
   position-bound sub-plan sharing (ciphertext-producing cores) can
   actually fire across batch members — crypto-free cores share
   position-independently anyway. Cores are reused as physically
   shared [Plan.t] values, which additionally exercises DAG-safe
   position labelling on the consumer side. *)
let gen_batch ?(overlap = 0.7) n : Plan.t list QCheck.Gen.t =
 fun st ->
  if n < 1 then invalid_arg "gen_batch: n < 1";
  let cores =
    Array.init (1 + QCheck.Gen.int_bound 1 st) (fun _ -> gen_plan st)
  in
  let wrap core =
    let schema = Plan.schema core in
    match QCheck.Gen.int_bound 3 st with
    | 0 when Attr.Set.cardinal schema > 1 ->
        Plan.project (pick_subset st schema) core
    | 1 -> Plan.select (Predicate.conj [ gen_const_atom st schema ]) core
    | 2 ->
        let dir = if QCheck.Gen.bool st then Plan.Asc else Plan.Desc in
        Plan.order_by [ (pick_one st schema, dir) ] core
    | _ -> Plan.limit (1 + QCheck.Gen.int_bound 20 st) core
  in
  List.init n (fun _ ->
      if QCheck.Gen.float_bound_inclusive 1.0 st < overlap then
        wrap cores.(QCheck.Gen.int_bound (Array.length cores - 1) st)
      else gen_plan st)

(* Revoke one permission: drop a random attribute from a random
   non-user rule's plain or enc set. Works on any policy (the random
   ones above, the TPC-H scenarios). User rules are spared — the
   querying user must stay authorized for inputs and results, so
   revoking there would only produce blanket rejections. Rules granting
   a relation's storing subject (its owner authority, or the provider
   hosting the outsourced copy) its own relation are spared too: that
   subject physically holds the data and is the only possible executor
   of the base scan, so the "revocation" would not model any transfer
   of trust — it would only make every query over the relation
   unverifiable forever. Returns the policy unchanged when no rule is
   mutable. *)
let revoke_once policy st =
  let schemas = Authorization.schemas policy in
  let stores_relation s rel =
    match
      List.find_opt (fun sch -> String.equal sch.Schema.name rel) schemas
    with
    | None -> false
    | Some sch -> (
        Subject.equal s (Subject.authority sch.Schema.owner)
        ||
        match sch.Schema.storage with
        | Schema.At_authority -> false
        | Schema.Outsourced { host; _ } ->
            Subject.equal s (Subject.provider host))
  in
  let mutable_rule (r : Authorization.rule) =
    (match r.Authorization.grantee with
    | Authorization.To s ->
        s.Subject.role <> Subject.User
        && not (stores_relation s r.Authorization.relation)
    | Authorization.Any -> true)
    && not
         (Attr.Set.is_empty r.Authorization.plain
         && Attr.Set.is_empty r.Authorization.enc)
  in
  let rules = Authorization.rules policy in
  match List.filter mutable_rule rules with
  | [] -> policy
  | candidates ->
      let victim =
        List.nth candidates (QCheck.Gen.int_bound (List.length candidates - 1) st)
      in
      let from_plain =
        (not (Attr.Set.is_empty victim.Authorization.plain))
        && (Attr.Set.is_empty victim.Authorization.enc || QCheck.Gen.bool st)
      in
      let set =
        if from_plain then victim.Authorization.plain
        else victim.Authorization.enc
      in
      let attrs = Attr.Set.elements set in
      let dropped =
        List.nth attrs (QCheck.Gen.int_bound (List.length attrs - 1) st)
      in
      let shrunk = Attr.Set.remove dropped set in
      let victim' =
        if from_plain then { victim with Authorization.plain = shrunk }
        else { victim with Authorization.enc = shrunk }
      in
      let rules' =
        List.map (fun r -> if r == victim then victim' else r) rules
      in
      Authorization.make ~schemas:(Authorization.schemas policy) rules'

(* Grant one absent attribute to one non-user subject. Pure fact
   addition only: attributes are added to a rule's plain or enc set,
   never moved between them (enc→plain upgrades can break equivalence-
   class uniformity, so they are not monotone). Subjects whose whole
   visibility is an implicit rule (a relation's owner or outsourcing
   host without an explicit rule) are skipped — writing them an
   explicit rule would silently replace the implicit full view with a
   one-attribute one, a revocation in grant's clothing. *)
let grant_once policy st =
  let schemas = Authorization.schemas policy in
  let rules = Authorization.rules policy in
  let grantees =
    List.filter
      (fun s -> s.Subject.role <> Subject.User)
      (Subject.Set.elements (Authorization.explicit_subjects policy))
  in
  let has_rule s (sch : Schema.t) =
    List.exists
      (fun (r : Authorization.rule) ->
        String.equal r.Authorization.relation sch.Schema.name
        && match r.Authorization.grantee with
           | Authorization.To x -> Subject.equal x s
           | Authorization.Any -> false)
      rules
  in
  let implicit_only s (sch : Schema.t) =
    (not (has_rule s sch))
    && (Subject.equal s (Subject.authority sch.Schema.owner)
       ||
       match sch.Schema.storage with
       | Schema.At_authority -> false
       | Schema.Outsourced { host; _ } ->
           Subject.equal s (Subject.provider host))
  in
  let attempt () =
    match grantees with
    | [] -> None
    | _ -> (
        let s =
          List.nth grantees (QCheck.Gen.int_bound (List.length grantees - 1) st)
        in
        let sch =
          List.nth schemas (QCheck.Gen.int_bound (List.length schemas - 1) st)
        in
        if implicit_only s sch then None
        else
          let held =
            List.fold_left
              (fun acc (r : Authorization.rule) ->
                if
                  String.equal r.Authorization.relation sch.Schema.name
                  && (match r.Authorization.grantee with
                     | Authorization.To x -> Subject.equal x s
                     | Authorization.Any -> false)
                then
                  Attr.Set.union acc
                    (Attr.Set.union r.Authorization.plain r.Authorization.enc)
                else acc)
              Attr.Set.empty rules
          in
          let absent = Attr.Set.elements (Attr.Set.diff (Schema.attrs sch) held) in
          match absent with
          | [] -> None
          | _ ->
              let attr =
                List.nth absent
                  (QCheck.Gen.int_bound (List.length absent - 1) st)
              in
              let to_plain = QCheck.Gen.bool st in
              let rules' =
                if has_rule s sch then
                  List.map
                    (fun (r : Authorization.rule) ->
                      if
                        String.equal r.Authorization.relation sch.Schema.name
                        && (match r.Authorization.grantee with
                           | Authorization.To x -> Subject.equal x s
                           | Authorization.Any -> false)
                      then
                        if to_plain then
                          { r with
                            Authorization.plain =
                              Attr.Set.add attr r.Authorization.plain }
                        else
                          { r with
                            Authorization.enc =
                              Attr.Set.add attr r.Authorization.enc }
                      else r)
                    rules
                else
                  { Authorization.relation = sch.Schema.name;
                    grantee = Authorization.To s;
                    plain =
                      (if to_plain then Attr.Set.singleton attr
                       else Attr.Set.empty);
                    enc =
                      (if to_plain then Attr.Set.empty
                       else Attr.Set.singleton attr) }
                  :: rules
              in
              Some (Authorization.make ~schemas rules'))
  in
  let rec try_n n = if n = 0 then policy
    else match attempt () with Some p -> p | None -> try_n (n - 1)
  in
  try_n 5

let mutate_policy ?(mode = `Revoke) policy : Authorization.t QCheck.Gen.t =
 fun st ->
  match mode with
  | `Revoke -> revoke_once policy st
  | `Grant -> grant_once policy st
  | `Mixed ->
      if QCheck.Gen.bool st then grant_once policy st
      else revoke_once policy st
