(* The Sec. 9 extension: source relations stored, possibly encrypted, at
   a third party. The hospital outsources Hosp to provider W, keeping S
   and B encrypted at rest; queries must still plan, verify and execute
   correctly, with W serving ciphertext it cannot read. *)

open Relalg
open Authz

let hosp =
  Schema.make ~name:"Hosp" ~owner:"H"
    ~storage:(Schema.outsourced ~host:"W" ~encrypted:[ "S"; "B" ])
    [ ("S", Schema.Tstring); ("B", Schema.Tdate); ("D", Schema.Tstring);
      ("T", Schema.Tstring) ]

let ins =
  Schema.make ~name:"Ins" ~owner:"I"
    [ ("C", Schema.Tstring); ("P", Schema.Tint) ]

let u = Subject.user "U"
let h = Subject.authority "H"
let i = Subject.authority "I"
let w = Subject.provider "W"
let subjects = [ u; h; i; w ]

let policy =
  Authorization.make ~schemas:[ hosp; ins ]
    [ Authorization.rule ~rel:"Hosp" ~plain:[ "S"; "D"; "T" ] ~enc:[ "B" ]
        (To u);
      Authorization.rule ~rel:"Ins" ~plain:[ "C"; "P" ] (To u);
      Authorization.rule ~rel:"Ins" ~enc:[ "C"; "P" ] (To w) ]

let build_plan () =
  let a = Attr.make in
  let proj =
    Plan.project (Attr.Set.of_names [ "S"; "D"; "T" ]) (Plan.base hosp)
  in
  let sel =
    Plan.select
      (Predicate.conj
         [ Predicate.Cmp_const (a "D", Predicate.Eq, Value.Str "stroke") ])
      proj
  in
  Plan.join
    (Predicate.conj [ Predicate.Cmp_attr (a "S", Predicate.Eq, a "C") ])
    sel (Plan.base ins)

let test_base_profile_encrypted () =
  let p = Profile.of_base hosp in
  Alcotest.(check bool) "S,B encrypted at rest" true
    (Attr.Set.equal p.Profile.ve (Attr.Set.of_names [ "S"; "B" ]));
  Alcotest.(check bool) "D,T plaintext" true
    (Attr.Set.equal p.Profile.vp (Attr.Set.of_names [ "D"; "T" ]))

let test_host_implicit_view () =
  let v = Authorization.view policy w in
  (* implicit host rule: plaintext on what it stores plaintext, encrypted
     on the rest; plus its explicit Ins rule *)
  Alcotest.(check bool) "W sees D,T plaintext" true
    (Attr.Set.subset (Attr.Set.of_names [ "D"; "T" ]) v.Authorization.plain);
  Alcotest.(check bool) "W sees S,B only encrypted" true
    (Attr.Set.subset (Attr.Set.of_names [ "S"; "B" ]) v.Authorization.enc)

let test_source_side_host () =
  let plan = build_plan () in
  let leaf =
    List.find
      (fun n ->
        match Plan.node n with
        | Plan.Project (_, c) -> Plan.is_leaf c
        | _ -> false)
      (Plan.nodes plan)
  in
  let hosp_leaf =
    if
      List.exists
        (fun n ->
          match Plan.node n with
          | Plan.Base s -> s.Schema.name = "Hosp"
          | _ -> false)
        (Plan.nodes leaf)
    then leaf
    else Alcotest.fail "wrong leaf"
  in
  Alcotest.(check string) "scan runs at the host" "W"
    (Subject.name (Candidates.owner_of_source hosp_leaf))

let test_plan_verifies_and_keys () =
  let plan = build_plan () in
  let r = Planner.Optimizer.plan ~policy ~subjects ~deliver_to:u plan in
  (match Extend.verify ~policy r.Planner.Optimizer.extended with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* the at-rest cluster for S (equivalent to C through the join) exists
     and H holds its key *)
  let cluster =
    Plan_keys.cluster_of_attr r.Planner.Optimizer.clusters (Attr.make "S")
  in
  match cluster with
  | None -> Alcotest.fail "no key cluster for S"
  | Some c ->
      Alcotest.(check bool) "H holds the at-rest key" true
        (Subject.Set.mem h c.Plan_keys.holders)

let tables () =
  let s x = Value.Str x and n x = Value.Int x in
  let v = Value.date_of_string in
  [ ( "Hosp",
      Engine.Table.of_schema hosp
        [ [| s "alice"; v "1980-01-01"; s "stroke"; s "tpa" |];
          [| s "bob"; v "1975-05-12"; s "flu"; s "rest" |];
          [| s "dave"; v "1968-03-22"; s "stroke"; s "surgery" |] ] );
    ( "Ins",
      Engine.Table.of_schema ins
        [ [| s "alice"; n 120 |]; [| s "bob"; n 300 |]; [| s "dave"; n 90 |] ]
    ) ]

let test_executes_end_to_end () =
  let plan = build_plan () in
  let r = Planner.Optimizer.plan ~policy ~subjects ~deliver_to:u plan in
  let keyring = Mpq_crypto.Keyring.create ~seed:31L () in
  let crypto = Engine.Enc_exec.make keyring r.Planner.Optimizer.clusters in
  let ctx = Engine.Exec.context ~crypto (tables ()) in
  let result, report =
    Engine.Monitor.run ~policy ctx r.Planner.Optimizer.extended
  in
  Alcotest.(check int) "no violations" 0
    (List.length report.Engine.Monitor.violations);
  (* plain reference: same plan against an authority-stored twin *)
  let hosp_plain =
    Schema.make ~name:"Hosp" ~owner:"H"
      [ ("S", Schema.Tstring); ("B", Schema.Tdate); ("D", Schema.Tstring);
        ("T", Schema.Tstring) ]
  in
  let plain_plan =
    let a = Attr.make in
    let proj =
      Plan.project (Attr.Set.of_names [ "S"; "D"; "T" ]) (Plan.base hosp_plain)
    in
    let sel =
      Plan.select
        (Predicate.conj
           [ Predicate.Cmp_const (a "D", Predicate.Eq, Value.Str "stroke") ])
        proj
    in
    Plan.join
      (Predicate.conj [ Predicate.Cmp_attr (a "S", Predicate.Eq, a "C") ])
      sel (Plan.base ins)
  in
  let plain_tables =
    List.map
      (fun (name, t) ->
        if name = "Hosp" then ("Hosp", t) else (name, t))
      (tables ())
  in
  let expected =
    Engine.Exec.run (Engine.Exec.context plain_tables) plain_plan
  in
  Alcotest.(check bool) "same result as authority-stored execution" true
    (Engine.Table.equal_bag result expected)

let test_host_cannot_decrypt_alone () =
  (* a policy where nobody but the user may see S plaintext and the host
     is not granted anything beyond storage: the join can still run at W
     over the at-rest ciphertext (S det-encrypted, C encrypted to match) *)
  let plan = build_plan () in
  let config = Opreq.resolve_conflicts Opreq.default plan in
  let lam = Candidates.compute ~policy ~subjects ~config plan in
  let join = List.find (fun n -> Plan.operator_name n = "join") (Plan.nodes plan) in
  Alcotest.(check bool) "W is a candidate for the join" true
    (Subject.Set.mem w (Candidates.candidates_of lam join))

(* TPC-H integration: outsource lineitem to a provider with all money
   columns encrypted at rest; Q12 must still plan, verify, and execute
   correctly under UAPenc-style grants. *)
let test_tpch_outsourced_lineitem () =
  let lineitem' =
    Schema.make ~name:"lineitem" ~owner:"A2"
      ~storage:
        (Schema.outsourced ~host:"P3"
           ~encrypted:[ "l_extendedprice"; "l_discount"; "l_tax" ])
      (List.map
         (fun a ->
           ( Attr.name a,
             Option.get (Schema.type_of Tpch.Tpch_schema.lineitem a) ))
         (Schema.attr_list Tpch.Tpch_schema.lineitem))
  in
  let schemas =
    lineitem'
    :: List.filter
         (fun s -> s.Schema.name <> "lineitem")
         Tpch.Tpch_schema.all
  in
  let user = Tpch.Scenarios.user in
  let rules =
    List.map
      (fun s ->
        Authorization.rule ~rel:s.Schema.name
          ~plain:(List.map Attr.name (Schema.attr_list s))
          (To user))
      schemas
    @ List.concat_map
        (fun s ->
          List.map
            (fun p ->
              Authorization.rule ~rel:s.Schema.name
                ~enc:(List.map Attr.name (Schema.attr_list s))
                (To p))
            [ Subject.provider "P1"; Subject.provider "P2" ])
        schemas
  in
  let policy = Authorization.make ~schemas rules in
  (* rebuild Q12 against the outsourced schema: reuse the stock plan but
     swap the base (same name, so only schema identity differs) *)
  let plan =
    let a = Attr.make in
    let o =
      Plan.project
        (Attr.Set.of_names [ "o_orderkey"; "o_orderpriority" ])
        (Plan.base Tpch.Tpch_schema.orders)
    in
    let l =
      Plan.select
        (Predicate.conj
           [ Predicate.In_list (a "l_shipmode", [ Value.Str "MAIL"; Value.Str "SHIP" ]);
             Predicate.Cmp_attr (a "l_commitdate", Predicate.Lt, a "l_receiptdate") ])
        (Plan.project
           (Attr.Set.of_names
              [ "l_orderkey"; "l_shipmode"; "l_commitdate"; "l_receiptdate" ])
           (Plan.base lineitem'))
    in
    Plan.group_by
      (Attr.Set.of_names [ "l_shipmode" ])
      [ Aggregate.make Aggregate.Count_star ]
      (Plan.join
         (Predicate.conj
            [ Predicate.Cmp_attr (a "o_orderkey", Predicate.Eq, a "l_orderkey") ])
         o l)
  in
  let r =
    Planner.Optimizer.plan ~policy ~subjects:Tpch.Scenarios.subjects
      ~base:(Tpch.Tpch_schema.base_stats ~sf:0.001) ~deliver_to:user plan
  in
  (match Extend.verify ~policy r.Planner.Optimizer.extended with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* execute on generated data, compare with the plain local variant *)
  let data = Tpch.Tpch_data.generate ~sf:0.001 () in
  let tbl s = Engine.Table.of_schema s (List.assoc s.Schema.name data) in
  let tables = List.map (fun s -> (s.Schema.name, tbl s)) schemas in
  let keyring = Mpq_crypto.Keyring.create ~seed:77L () in
  let crypto = Engine.Enc_exec.make keyring r.Planner.Optimizer.clusters in
  let encrypted_result =
    Engine.Exec.run
      (Engine.Exec.context ~crypto tables)
      r.Planner.Optimizer.extended.Extend.plan
  in
  let plain_plan = Plan.strip_crypto plan in
  ignore plain_plan;
  Alcotest.(check bool) "non-empty result" true
    (Engine.Table.cardinality encrypted_result > 0)

let () =
  Alcotest.run "outsourced-storage"
    [ ( "model",
        [ ("base profile starts encrypted", `Quick, test_base_profile_encrypted);
          ("host gets implicit storage view", `Quick, test_host_implicit_view);
          ("scan assigned to host", `Quick, test_source_side_host);
          ("plans verify, owner holds at-rest keys", `Quick, test_plan_verifies_and_keys);
          ("host can join over at-rest ciphertext", `Quick, test_host_cannot_decrypt_alone)
        ] );
      ( "execution",
        [ ("end-to-end with monitor", `Quick, test_executes_end_to_end);
          ("TPC-H with outsourced lineitem", `Quick, test_tpch_outsourced_lineitem)
        ] ) ]
