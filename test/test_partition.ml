(* Unit and property tests for the equivalence-set structure (R≃). *)

open Relalg
open Authz

let set = Attr.Set.of_names
let a = Attr.make

let test_empty () =
  Alcotest.(check bool) "empty" true (Partition.is_empty Partition.empty);
  Alcotest.(check int) "no sets" 0 (List.length (Partition.sets Partition.empty))

let test_singleton_ignored () =
  let p = Partition.union_set Partition.empty (set [ "x" ]) in
  Alcotest.(check bool) "still empty" true (Partition.is_empty p)

let test_union_disjoint () =
  let p =
    Partition.empty
    |> fun p -> Partition.union_set p (set [ "a"; "b" ])
    |> fun p -> Partition.union_set p (set [ "c"; "d" ])
  in
  Alcotest.(check int) "two classes" 2 (List.length (Partition.sets p));
  Alcotest.(check bool) "a~b" true (Partition.same_class p (a "a") (a "b"));
  Alcotest.(check bool) "a!~c" false (Partition.same_class p (a "a") (a "c"))

let test_union_merges () =
  (* {a,b} ∪ {b,c} must merge into {a,b,c} (transitivity of ≃) *)
  let p =
    Partition.empty
    |> fun p -> Partition.union_set p (set [ "a"; "b" ])
    |> fun p -> Partition.union_set p (set [ "b"; "c" ])
  in
  Alcotest.(check int) "one class" 1 (List.length (Partition.sets p));
  Alcotest.(check bool) "a~c" true (Partition.same_class p (a "a") (a "c"))

let test_chain_merge () =
  (* inserting {b,d} into {a,b} {c,d} collapses everything *)
  let p =
    Partition.empty
    |> fun p -> Partition.union_set p (set [ "a"; "b" ])
    |> fun p -> Partition.union_set p (set [ "c"; "d" ])
    |> fun p -> Partition.union_set p (set [ "b"; "d" ])
  in
  Alcotest.(check int) "one class" 1 (List.length (Partition.sets p));
  Alcotest.(check int) "four attrs" 4 (Attr.Set.cardinal (Partition.attrs p))

let test_find_default () =
  let p = Partition.union_pair Partition.empty (a "x") (a "y") in
  Alcotest.(check bool) "unknown attr is its own class" true
    (Attr.Set.equal (Partition.find p (a "q")) (Attr.Set.singleton (a "q")))

let test_merge_partitions () =
  let p = Partition.union_pair Partition.empty (a "a") (a "b") in
  let q = Partition.union_pair Partition.empty (a "b") (a "c") in
  let m = Partition.merge p q in
  Alcotest.(check bool) "a~c after merge" true
    (Partition.same_class m (a "a") (a "c"))

let names = [ "a"; "b"; "c"; "d"; "e"; "f" ]

let gen_pairs =
  QCheck.Gen.(
    list_size (int_bound 10)
      (pair (oneofl names) (oneofl names)))

let prop_classes_disjoint =
  QCheck.Test.make ~count:500 ~name:"classes stay pairwise disjoint"
    (QCheck.make gen_pairs) (fun pairs ->
      let p =
        List.fold_left
          (fun p (x, y) -> Partition.union_pair p (a x) (a y))
          Partition.empty pairs
      in
      let sets = Partition.sets p in
      List.for_all
        (fun s ->
          List.for_all
            (fun s' ->
              Attr.Set.equal s s'
              || Attr.Set.is_empty (Attr.Set.inter s s'))
            sets)
        sets)

let prop_transitive =
  QCheck.Test.make ~count:500 ~name:"same_class is transitive and inserted pairs hold"
    (QCheck.make gen_pairs) (fun pairs ->
      let p =
        List.fold_left
          (fun p (x, y) -> Partition.union_pair p (a x) (a y))
          Partition.empty pairs
      in
      let transitive =
        List.for_all
          (fun x ->
            List.for_all
              (fun y ->
                List.for_all
                  (fun z ->
                    (not
                       (Partition.same_class p (a x) (a y)
                       && Partition.same_class p (a y) (a z)))
                    || Partition.same_class p (a x) (a z))
                  names)
              names)
          names
      in
      let inserted =
        List.for_all (fun (x, y) -> Partition.same_class p (a x) (a y)) pairs
      in
      transitive && inserted)

let prop_refines_self =
  QCheck.Test.make ~count:200 ~name:"partition refines itself"
    (QCheck.make gen_pairs) (fun pairs ->
      let p =
        List.fold_left
          (fun p (x, y) -> Partition.union_pair p (a x) (a y))
          Partition.empty pairs
      in
      Partition.refines p p)

let prop_union_monotone =
  QCheck.Test.make ~count:200 ~name:"adding a pair only coarsens"
    (QCheck.make QCheck.Gen.(pair gen_pairs (pair (oneofl names) (oneofl names))))
    (fun (pairs, (x, y)) ->
      let p =
        List.fold_left
          (fun p (u, v) -> Partition.union_pair p (a u) (a v))
          Partition.empty pairs
      in
      let q = Partition.union_pair p (a x) (a y) in
      Partition.refines p q)

let () =
  Alcotest.run "partition"
    [ ( "unit",
        [ ("empty", `Quick, test_empty);
          ("singleton ignored", `Quick, test_singleton_ignored);
          ("disjoint classes", `Quick, test_union_disjoint);
          ("overlapping classes merge", `Quick, test_union_merges);
          ("chain merge", `Quick, test_chain_merge);
          ("find defaults to singleton", `Quick, test_find_default);
          ("merge of partitions", `Quick, test_merge_partitions) ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_classes_disjoint; prop_transitive; prop_refines_self;
            prop_union_monotone ] ) ]
