(* Plan normalization: selection pushdown and projection pruning preserve
   semantics on real data and never worsen measured intermediate
   volumes. *)

open Relalg
open Engine

let tables_for st =
  let int () = Value.Int (QCheck.Gen.int_bound 60 st) in
  let str () =
    Value.Str (List.nth [ "ga"; "bu"; "zo"; "meu" ] (QCheck.Gen.int_bound 3 st))
  in
  let rows n mk = List.init n (fun _ -> mk ()) in
  [ ( "R1",
      Table.of_schema Gen.rel1
        (rows (4 + QCheck.Gen.int_bound 10 st) (fun () ->
             [| int (); int (); str (); int () |])) );
    ( "R2",
      Table.of_schema Gen.rel2
        (rows (4 + QCheck.Gen.int_bound 10 st) (fun () ->
             [| int (); int (); str () |])) );
    ( "R3",
      Table.of_schema Gen.rel3
        (rows (3 + QCheck.Gen.int_bound 6 st) (fun () -> [| int (); int () |]))
    ) ]

let udfs =
  [ ( "f",
      fun vals ->
        let total =
          List.fold_left
            (fun acc v ->
              match Value.to_float v with Some f -> acc +. f | None -> acc)
            0.0 vals
        in
        Relalg.Value.Int (int_of_float total mod 97) ) ]

let gen_case =
  QCheck.Gen.(
    Gen.gen_plan >>= fun plan ->
    fun st -> (plan, tables_for st))

let arb =
  QCheck.make ~print:(fun (p, _) -> Plan_printer.to_ascii p) gen_case

let run tables plan = Exec.run (Exec.context ~udfs tables) plan

let prop_normalize_semantics =
  QCheck.Test.make ~count:300 ~name:"normalize preserves semantics"
    arb (fun (plan, tables) ->
      let expected = run tables plan in
      let normalized = Planner.Rewrite.normalize plan in
      (* ancestors may consume fewer columns after pruning: compare on
         the common (= normalized) schema, bags must agree there *)
      let cols = Attr.Set.elements (Plan.schema normalized) in
      let narrow t = Table.select_columns t cols in
      Table.equal_bag (narrow expected) (narrow (run tables normalized)))

let prop_push_semantics_exact =
  QCheck.Test.make ~count:300 ~name:"selection pushdown is schema-exact"
    arb (fun (plan, tables) ->
      let pushed = Planner.Rewrite.push_selections plan in
      Attr.Set.equal (Plan.schema plan) (Plan.schema pushed)
      && Table.equal_bag (run tables plan) (run tables pushed))

let prop_no_stacked_selects =
  QCheck.Test.make ~count:200 ~name:"pushdown leaves no stacked selections"
    Gen.arbitrary_plan (fun plan ->
      let pushed = Planner.Rewrite.push_selections plan in
      Plan.fold
        (fun acc n ->
          acc
          &&
          match Plan.node n with
          | Plan.Select (_, c) -> (
              match Plan.node c with Plan.Select _ -> false | _ -> true)
          | _ -> true)
        true pushed)

(* On real data, pushing a filter below a join shrinks the join's inputs
   and hence its output (subset monotonicity) — measured intermediate
   volumes can only go down. (The estimated C_out metric does not enjoy
   this theorem: a min()-style join estimate can ignore a filter on the
   non-minimal side, so we measure, not estimate.) *)
let prop_measured_volume_not_worse =
  QCheck.Test.make ~count:200 ~name:"pushdown never worsens measured join volume"
    arb (fun (plan, tables) ->
      let measure p =
        let total = ref 0 in
        let hook n t =
          match Plan.node n with
          | Plan.Join _ | Plan.Product _ ->
              total := !total + Table.cardinality t
          | _ -> ()
        in
        ignore (Exec.run_with_hook (Exec.context ~udfs tables) ~hook p);
        !total
      in
      measure (Planner.Rewrite.push_selections plan) <= measure plan)

(* deterministic unit case: the running example normalizes to itself
   (already pushed down) *)
let test_fixpoint_on_normalized () =
  let plan = Tpch.Tpch_queries.query 3 in
  let once = Planner.Rewrite.normalize plan in
  let twice = Planner.Rewrite.normalize once in
  Alcotest.(check bool) "normalize is idempotent on Q3" true
    (Plan.equal_shape once twice)

let test_pushdown_moves_filter_below_join () =
  let a = Attr.make in
  let l = Plan.project (Attr.Set.of_names [ "a"; "b" ]) (Plan.base Gen.rel1) in
  let r = Plan.project (Attr.Set.of_names [ "e" ]) (Plan.base Gen.rel2) in
  let joined =
    Plan.join (Predicate.conj [ Predicate.Cmp_attr (a "a", Predicate.Eq, a "e") ]) l r
  in
  let with_filter =
    Plan.select
      (Predicate.conj [ Predicate.Cmp_const (a "b", Predicate.Lt, Value.Int 5) ])
      joined
  in
  let pushed = Planner.Rewrite.push_selections with_filter in
  Alcotest.(check string) "root is the join now" "join"
    (Plan.operator_name pushed);
  match Plan.children pushed with
  | [ left; _ ] ->
      (* pushed through the projection too, onto the base relation *)
      let rec has_select n =
        Plan.operator_name n = "select"
        || List.exists has_select (Plan.children n)
      in
      Alcotest.(check bool) "filter below the join, on the left input" true
        (has_select left)
  | _ -> Alcotest.fail "join arity"

let () =
  Alcotest.run "rewrite"
    [ ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_normalize_semantics; prop_push_semantics_exact;
            prop_no_stacked_selects; prop_measured_volume_not_worse ] );
      ( "unit",
        [ ("idempotent on Q3", `Quick, test_fixpoint_on_normalized);
          ("filter below join", `Quick, test_pushdown_moves_filter_below_join)
        ] ) ]
