(* mpqcli — authorization-aware multi-provider query planning from the
   command line.

     mpqcli plan       -p policy.mpq -q "select ..."   plan + profiles + Λ
     mpqcli optimize   -p policy.mpq -q "select ..."   full planning report
     mpqcli serve      -p policy.mpq -f queries.sql    query loop, plan cache
     mpqcli tpch       -n 5 -s UAPenc                   TPC-H query report
     mpqcli scenarios                                   Fig. 9/10 summary
     mpqcli example                                     built-in policy file

   The policy file format is documented in `mpqcli example` output. *)

open Cmdliner
open Relalg

(* Exit-code discipline (see EXIT STATUS in --help): 0 success, 1 usage,
   parse or I/O errors, 2 authorization or verification failures,
   3 degraded (faults defeated every authorized alternative). *)
let exit_ok = 0
let exit_input_error = 1
let exit_verification = 2
let exit_degraded = 3

let guard f =
  try f () with
  | Authz.Policy_dsl.Syntax_error (line, msg) ->
      Printf.eprintf "mpqcli: policy syntax error at line %d: %s\n" line msg;
      exit_input_error
  | Mpq_sql.Sql_lexer.Lex_error (msg, pos) ->
      Printf.eprintf "mpqcli: SQL lexical error at %d: %s\n" pos msg;
      exit_input_error
  | Mpq_sql.Sql_parser.Parse_error msg | Mpq_sql.Sql_plan.Plan_error msg ->
      Printf.eprintf "mpqcli: SQL error: %s\n" msg;
      exit_input_error
  | Engine.Csv.Csv_error msg ->
      Printf.eprintf "mpqcli: CSV error: %s\n" msg;
      exit_input_error
  | Distsim.Faults.Bad_spec msg ->
      Printf.eprintf "mpqcli: bad fault spec: %s\n" msg;
      exit_input_error
  | Sys_error msg | Failure msg | Invalid_argument msg ->
      Printf.eprintf "mpqcli: %s\n" msg;
      exit_input_error
  | Planner.Optimizer.No_candidate msg
  | Planner.Optimizer.User_not_authorized msg ->
      Printf.eprintf "mpqcli: query rejected: %s\n" msg;
      exit_verification
  | Planner.Optimizer.Verification_failed msg
  | Distsim.Runtime.Distributed_violation msg ->
      Printf.eprintf "mpqcli: %s\n" msg;
      exit_verification
  | Distsim.Pki.Bad_envelope msg ->
      Printf.eprintf "mpqcli: envelope rejected: %s\n" msg;
      exit_verification

let exit_status_man =
  [ `S "EXIT STATUS";
    `P "$(b,0) on success.";
    `P "$(b,1) on usage, policy/SQL parse, or I/O errors.";
    `P "$(b,2) when a query is rejected by the authorization model, the \
        static verifier reports an Error-severity diagnostic, or an \
        envelope fails authentication.";
    `P "$(b,3) when injected faults leave no authorized alternative and \
        the run ends degraded (see $(b,--faults))." ]

(* --- observability ---------------------------------------------------- *)

let stats_arg =
  let fmt = Arg.enum [ ("text", `Text); ("json", `Json) ] in
  Arg.(
    value
    & opt ~vopt:(Some `Text) (some fmt) None
    & info [ "stats" ] ~docv:"FORMAT"
        ~doc:
          "Collect tracing spans and counters while the command runs and \
           print the report to standard error afterwards (stdout keeps its \
           documented output). $(docv) is $(b,text) (span tree + counters) \
           or $(b,json) (one machine-readable JSON object).")

let span_trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Print the tracing span tree (wall-clock per phase) to standard \
           error; a lighter $(b,--stats) without the counters.")

let obs_args =
  Term.(const (fun stats trace -> (stats, trace)) $ stats_arg $ span_trace_arg)

(* Enable the Obs collectors around [f] and render the requested reports
   to stderr when it finishes — also on failure, where the partial trace
   is exactly what one wants to see. *)
let with_obs (stats, trace) f =
  if stats = None && not trace then f ()
  else begin
    Obs.reset ();
    Obs.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        (match stats with
        | Some `Text -> prerr_string (Obs.render_text ())
        | Some `Json -> prerr_endline (Json.to_string (Obs.render_json ()))
        | None -> prerr_string (Obs.render_text ~counters:false ()));
        Obs.set_enabled false)
      f
  end

let load_policy path =
  match path with
  | Some p -> Authz.Policy_dsl.load p
  | None -> Authz.Policy_dsl.parse Authz.Policy_dsl.example

let parse_query ?(raw = false) env q =
  let plan =
    Mpq_sql.Sql_plan.parse_and_plan ~catalog:env.Authz.Policy_dsl.schemas q
  in
  if raw then plan
  else
    (* classical optimization first (Sec. 1's premise): normalize, then
       order the joins by estimated cost *)
    Planner.Join_order.reorder
      ~base:(fun _ -> None)
      (Planner.Rewrite.normalize plan)

let policy_arg =
  let doc = "Policy file (schemas, subjects, authorizations). Defaults to \
             the paper's running example." in
  Arg.(value & opt (some file) None & info [ "p"; "policy" ] ~doc)

let query_arg =
  let doc = "SQL query (select-from-where-group by-having subset)." in
  Arg.(required & opt (some string) None & info [ "q"; "query" ] ~doc)

(* --- plan ----------------------------------------------------------- *)

let plan_cmd =
  let explain_arg =
    Arg.(value & opt (some string) None
         & info [ "explain" ]
             ~doc:"Explain why the named subject is (not) a candidate for \
                   each operation.")
  in
  let run policy_path query explain_subject obs =
    guard @@ fun () ->
    with_obs obs @@ fun () ->
    let env = load_policy policy_path in
    let plan = parse_query env query in
    let profiles = Authz.Profile.annotate plan in
    print_endline "--- plan with profiles (Def. 3.1) ---";
    print_string
      (Plan_printer.to_ascii
         ~annot:(fun n ->
           Option.map Authz.Profile.to_string
             (Hashtbl.find_opt profiles (Plan.id n)))
         plan);
    print_endline "\n--- subject views ---";
    List.iter
      (fun s ->
        Format.printf "  %-4s %a@." (Authz.Subject.name s)
          Authz.Authorization.pp_view
          (Authz.Authorization.view env.Authz.Policy_dsl.policy s))
      env.Authz.Policy_dsl.subjects;
    print_endline "\n--- assignment candidates (Def. 5.3) ---";
    let config = Authz.Opreq.resolve_conflicts Authz.Opreq.default plan in
    let lam =
      Authz.Candidates.compute ~policy:env.Authz.Policy_dsl.policy
        ~subjects:env.Authz.Policy_dsl.subjects ~config plan
    in
    Plan.iter
      (fun n ->
        if not (Authz.Candidates.is_source_side n) then
          Format.printf "  %-30s Λ = %a@."
            (Plan_printer.node_label n)
            Authz.Subject.pp_set
            (Authz.Candidates.candidates_of lam n))
      plan;
    (match explain_subject with
    | None -> ()
    | Some name ->
        Printf.printf "\n--- why is %s (not) a candidate? ---\n" name;
        Plan.iter
          (fun n ->
            if not (Authz.Candidates.is_source_side n) then
              List.iter
                (fun (s, verdict) ->
                  if Authz.Subject.name s = name then
                    match verdict with
                    | None ->
                        Format.printf "  %-30s candidate@."
                          (Plan_printer.node_label n)
                    | Some v ->
                        Format.printf "  %-30s excluded: %a@."
                          (Plan_printer.node_label n)
                          Authz.Authorized.pp_violation v)
                (Authz.Candidates.explain ~policy:env.Authz.Policy_dsl.policy
                   ~subjects:env.Authz.Policy_dsl.subjects ~config plan n))
          plan);
    exit_ok
  in
  let doc = "show a query plan, its profiles and candidate sets" in
  Cmd.v (Cmd.info "plan" ~doc)
    Term.(const run $ policy_arg $ query_arg $ explain_arg $ obs_args)

(* --- optimize ------------------------------------------------------- *)

let optimize_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit a JSON planning report.")
  in
  let run policy_path query json obs =
    guard @@ fun () ->
    with_obs obs @@ fun () ->
    let env = load_policy policy_path in
    let plan = parse_query env query in
    let user =
      List.find_opt
        (fun s -> s.Authz.Subject.role = Authz.Subject.User)
        env.Authz.Policy_dsl.subjects
    in
    let r =
      Planner.Optimizer.plan ~policy:env.Authz.Policy_dsl.policy
        ~subjects:env.Authz.Policy_dsl.subjects ?deliver_to:user plan
    in
    if json then print_endline (Planner.Report.to_string r)
    else print_string (Planner.Optimizer.report r);
    exit_ok
  in
  let doc = "authorization-aware planning: assignment, encryption, keys, \
             dispatch, cost" in
  Cmd.v (Cmd.info "optimize" ~doc)
    Term.(const run $ policy_arg $ query_arg $ json_arg $ obs_args)

(* --- tpch ----------------------------------------------------------- *)

let tpch_cmd =
  let number =
    Arg.(value & opt int 5 & info [ "n"; "number" ] ~doc:"TPC-H query (1-22).")
  in
  let scenario =
    Arg.(
      value
      & opt (enum [ ("UA", Tpch.Scenarios.UA); ("UAPenc", Tpch.Scenarios.UAPenc);
                    ("UAPmix", Tpch.Scenarios.UAPmix) ])
          Tpch.Scenarios.UAPenc
      & info [ "s"; "scenario" ] ~doc:"Authorization scenario.")
  in
  let run n scenario obs =
    guard @@ fun () ->
    with_obs obs @@ fun () ->
    let r = Tpch.Scenarios.optimize ~scenario (Tpch.Tpch_queries.query n) in
    print_string (Planner.Optimizer.report r);
    exit_ok
  in
  let doc = "plan a TPC-H query under an authorization scenario (Sec. 7)" in
  Cmd.v (Cmd.info "tpch" ~doc) Term.(const run $ number $ scenario $ obs_args)

(* --- scenarios ------------------------------------------------------ *)

let scenarios_cmd =
  let run obs =
    guard @@ fun () ->
    with_obs obs @@ fun () ->
    Printf.printf "%-4s %10s %10s %10s\n" "q" "UA" "UAPenc" "UAPmix";
    let totals = Hashtbl.create 3 in
    List.iter
      (fun (q, _, build) ->
        let cost sc =
          Planner.Cost.total
            (Tpch.Scenarios.optimize ~scenario:sc (build ())).Planner.Optimizer.cost
        in
        let ua = cost Tpch.Scenarios.UA in
        let row =
          List.map
            (fun sc ->
              let c = cost sc /. ua in
              let prev = Option.value ~default:0.0 (Hashtbl.find_opt totals sc) in
              Hashtbl.replace totals sc (prev +. c);
              c)
            Tpch.Scenarios.all
        in
        match row with
        | [ a; b; c ] -> Printf.printf "%-4d %10.3f %10.3f %10.3f\n" q a b c
        | _ -> ())
      Tpch.Tpch_queries.all;
    let total sc = Hashtbl.find totals sc in
    Printf.printf "\nsavings vs UA: UAPenc %.1f%%  UAPmix %.1f%%\n"
      (100. *. (1. -. (total Tpch.Scenarios.UAPenc /. total Tpch.Scenarios.UA)))
      (100. *. (1. -. (total Tpch.Scenarios.UAPmix /. total Tpch.Scenarios.UA)));
    exit_ok
  in
  let doc = "normalized cost of all 22 TPC-H queries under UA/UAPenc/UAPmix" in
  Cmd.v (Cmd.info "scenarios" ~doc) Term.(const run $ obs_args)

(* --- run -------------------------------------------------------------- *)

let demo_tables env =
  (* built-in rows for the running-example schemas, keyed by relation *)
  let find name =
    List.find_opt
      (fun s -> s.Schema.name = name)
      env.Authz.Policy_dsl.schemas
  in
  match (find "Hosp", find "Ins") with
  | Some hosp, Some ins ->
      let s x = Value.Str x and n x = Value.Int x in
      let v = Value.date_of_string in
      [ ( "Hosp",
          Engine.Table.of_schema hosp
            [ [| s "alice"; v "1980-01-01"; s "stroke"; s "tpa" |];
              [| s "bob"; v "1975-05-12"; s "stroke"; s "surgery" |];
              [| s "carol"; v "1990-09-30"; s "flu"; s "rest" |];
              [| s "dave"; v "1968-03-22"; s "stroke"; s "tpa" |] ] );
        ( "Ins",
          Engine.Table.of_schema ins
            [ [| s "alice"; n 120 |]; [| s "bob"; n 300 |];
              [| s "carol"; n 80 |]; [| s "dave"; n 150 |] ] ) ]
  | _ -> []

let tables_arg =
  let doc = "Load a base relation from CSV: $(i,REL)=$(i,FILE). Repeatable.                Without any, built-in demo rows for the example policy are                used." in
  Arg.(value & opt_all (pair ~sep:'=' string file) []
       & info [ "t"; "table" ] ~doc)

let load_tables env table_specs =
  if table_specs = [] then demo_tables env
  else
    List.map
      (fun (rel, path) ->
        match
          List.find_opt
            (fun s -> s.Schema.name = rel)
            env.Authz.Policy_dsl.schemas
        with
        | Some schema -> (rel, Engine.Csv.load schema path)
        | None -> failwith ("unknown relation " ^ rel))
      table_specs

let find_user env =
  match
    List.find_opt
      (fun s -> s.Authz.Subject.role = Authz.Subject.User)
      env.Authz.Policy_dsl.subjects
  with
  | Some u -> u
  | None -> failwith "the policy declares no user"

(* --- fault-injection flags (run, chaos) ------------------------------- *)

let faults_arg =
  Arg.(value & opt (some string) None
       & info [ "faults" ] ~docv:"SPEC"
           ~doc:
             "Inject deterministic faults while executing. $(docv) is a \
              comma-separated list of $(i,SUBJECT):$(i,FAULT) entries with \
              $(i,FAULT) one of $(b,crash@K) (down from interaction step K \
              on), $(b,transient=P) (drop a message with probability P), \
              $(b,corrupt=P) (corrupt a payload in transit), $(b,slow=MS) \
              or $(b,slow=MS@P) (add MS ms simulated latency). Example: \
              $(b,X:crash@4,Y:transient=0.2).")

let fault_seed_arg =
  Arg.(value & opt int 1
       & info [ "fault-seed" ] ~docv:"N"
           ~doc:
             "Seed of the fault plan's PRNG; the same seed and spec \
              reproduce the exact same faults, retries and trace.")

let max_retries_arg =
  Arg.(value & opt int Distsim.Runtime.default_retry.Distsim.Runtime.max_retries
       & info [ "max-retries" ] ~docv:"N"
           ~doc:
             "Retries per network interaction before the peer is declared \
              dead and the query fails over to a re-planned assignment.")

let timeout_ms_arg =
  Arg.(value & opt int Distsim.Runtime.default_retry.Distsim.Runtime.timeout_ms
       & info [ "timeout-ms" ] ~docv:"MS"
           ~doc:"Per-attempt timeout on the simulated clock.")

let retry_policy max_retries timeout_ms =
  { Distsim.Runtime.default_retry with
    Distsim.Runtime.max_retries;
    Distsim.Runtime.timeout_ms }

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:
             "Execute the plan on $(docv) domains (default 1: fully \
              sequential). Results are byte-identical at any value; the \
              trace and simulated clock are unaffected.")

let run_cmd =
  let trace_arg =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the dispatch/release trace.")
  in
  (* [--trace] here predates the span tracer and prints the dispatch /
     release event log; span data is available through [--stats]. *)
  let run policy_path query table_specs trace stats faults_spec fault_seed
      max_retries timeout_ms jobs =
    guard @@ fun () ->
    with_obs (stats, false) @@ fun () ->
    Par.with_pool ~name:"exec" jobs @@ fun pool ->
    let env = load_policy policy_path in
    let plan = parse_query env query in
    let user = find_user env in
    let tables = load_tables env table_specs in
    let r =
      Planner.Optimizer.plan ~policy:env.Authz.Policy_dsl.policy
        ~subjects:env.Authz.Policy_dsl.subjects ~deliver_to:user plan
    in
    let faults =
      Option.map
        (fun spec ->
          Distsim.Faults.make ~seed:fault_seed (Distsim.Faults.parse spec))
        faults_spec
    in
    let replan =
      Distsim.Runtime.optimizer_replanner ~policy:env.Authz.Policy_dsl.policy
        ~subjects:env.Authz.Policy_dsl.subjects
        ~config:r.Planner.Optimizer.config ~deliver_to:user plan
    in
    let outcome =
      Distsim.Runtime.execute ~policy:env.Authz.Policy_dsl.policy
        ~pki:(Distsim.Pki.create ())
        ~keyring:(Mpq_crypto.Keyring.create ())
        ~user ~tables ~config:r.Planner.Optimizer.config ?faults
        ~retry:(retry_policy max_retries timeout_ms) ~replan ?pool
        ~extended:r.Planner.Optimizer.extended
        ~clusters:r.Planner.Optimizer.clusters ()
    in
    if trace then begin
      print_endline "--- trace ---";
      List.iter
        (fun e -> Format.printf "  %a@." Distsim.Runtime.pp_event e)
        outcome.Distsim.Runtime.trace
    end;
    match outcome.Distsim.Runtime.status with
    | Distsim.Runtime.Completed table ->
        print_string (Engine.Csv.to_string table);
        exit_ok
    | Distsim.Runtime.Degraded d ->
        Printf.eprintf "mpqcli: degraded: %s (dead: %s; %d ms simulated)\n"
          d.Distsim.Runtime.reason
          (String.concat ", "
             (List.map Authz.Subject.name d.Distsim.Runtime.dead))
          outcome.Distsim.Runtime.clock_ms;
        exit_degraded
  in
  let doc = "execute a query end-to-end through the distributed simulator" in
  Cmd.v (Cmd.info "run" ~doc ~man:exit_status_man)
    Term.(
      const run $ policy_arg $ query_arg $ tables_arg $ trace_arg $ stats_arg
      $ faults_arg $ fault_seed_arg $ max_retries_arg $ timeout_ms_arg
      $ jobs_arg)

(* --- chaos ------------------------------------------------------------ *)

let chaos_cmd =
  let seeds_arg =
    Arg.(value & opt int 10
         & info [ "seeds" ] ~docv:"N" ~doc:"Fault seeds to sweep (1..N).")
  in
  let verbose_arg =
    Arg.(value & flag
         & info [ "v"; "verbose" ] ~doc:"Print the trace of unsafe runs.")
  in
  (* Without --faults: crash a provider the baseline plan actually uses
     (forcing failover re-planning) and make every provider's links
     flaky. *)
  let default_spec env (r : Planner.Optimizer.result) =
    let providers =
      List.filter
        (fun s -> s.Authz.Subject.role = Authz.Subject.Provider)
        env.Authz.Policy_dsl.subjects
    in
    let assigned =
      Authz.Imap.fold
        (fun _ s acc -> Authz.Subject.Set.add s acc)
        r.Planner.Optimizer.extended.Authz.Extend.assignment
        Authz.Subject.Set.empty
    in
    let victim =
      match
        List.find_opt (fun s -> Authz.Subject.Set.mem s assigned) providers
      with
      | Some p -> Some p
      | None -> ( match providers with p :: _ -> Some p | [] -> None)
    in
    match victim with
    | None ->
        List.filter_map
          (fun s ->
            if s.Authz.Subject.role = Authz.Subject.User then None
            else Some (Authz.Subject.name s, Distsim.Faults.Transient 0.2))
          env.Authz.Policy_dsl.subjects
    | Some v ->
        (Authz.Subject.name v, Distsim.Faults.Crash_at 4)
        :: List.map
             (fun s -> (Authz.Subject.name s, Distsim.Faults.Transient 0.15))
             providers
  in
  let run policy_path query table_specs faults_spec seeds max_retries
      timeout_ms verbose obs =
    guard @@ fun () ->
    with_obs obs @@ fun () ->
    let env = load_policy policy_path in
    let plan = parse_query env query in
    let user = find_user env in
    let tables = load_tables env table_specs in
    let r =
      Planner.Optimizer.plan ~policy:env.Authz.Policy_dsl.policy
        ~subjects:env.Authz.Policy_dsl.subjects ~deliver_to:user plan
    in
    let spec =
      match faults_spec with
      | Some s -> Distsim.Faults.parse s
      | None -> default_spec env r
    in
    let retry = retry_policy max_retries timeout_ms in
    let replan =
      Distsim.Runtime.optimizer_replanner ~policy:env.Authz.Policy_dsl.policy
        ~subjects:env.Authz.Policy_dsl.subjects
        ~config:r.Planner.Optimizer.config ~deliver_to:user plan
    in
    let execute ?faults () =
      Distsim.Runtime.execute ~policy:env.Authz.Policy_dsl.policy
        ~pki:(Distsim.Pki.create ())
        ~keyring:(Mpq_crypto.Keyring.create ())
        ~user ~tables ~config:r.Planner.Optimizer.config ?faults ~retry
        ~replan ~extended:r.Planner.Optimizer.extended
        ~clusters:r.Planner.Optimizer.clusters ()
    in
    let baseline = Distsim.Runtime.result (execute ()) in
    Printf.printf "chaos sweep: %d seeds, faults %s\n" seeds
      (Distsim.Faults.render spec);
    let ok = ref 0 and degraded = ref 0 and unsafe = ref 0 in
    for seed = 1 to seeds do
      let faults = Distsim.Faults.make ~seed spec in
      let count trace p = List.length (List.filter p trace) in
      match execute ~faults () with
      | outcome -> (
          let trace = outcome.Distsim.Runtime.trace in
          let retries =
            count trace
              (function Distsim.Runtime.Retry _ -> true | _ -> false)
          and failovers =
            count trace
              (function
                | Distsim.Runtime.Failover_replanned _ -> true | _ -> false)
          in
          let stats =
            Printf.sprintf "%d retries, %d failovers, %d ms simulated"
              retries failovers outcome.Distsim.Runtime.clock_ms
          in
          match outcome.Distsim.Runtime.status with
          | Distsim.Runtime.Completed table
            when Engine.Table.equal_bag table baseline ->
              incr ok;
              Printf.printf "  seed %-3d ok        (%s)\n" seed stats
          | Distsim.Runtime.Completed _ ->
              incr unsafe;
              Printf.printf "  seed %-3d WRONG RESULT (%s)\n" seed stats;
              if verbose then
                List.iter
                  (fun e ->
                    Format.printf "    %a@." Distsim.Runtime.pp_event e)
                  trace
          | Distsim.Runtime.Degraded d ->
              incr degraded;
              Printf.printf "  seed %-3d degraded  (%s; %s)\n" seed
                d.Distsim.Runtime.reason stats)
      | exception Distsim.Runtime.Distributed_violation msg ->
          (* transport faults must never surface as authorization
             violations: if one does, the recovery path is broken *)
          incr unsafe;
          Printf.printf "  seed %-3d VIOLATION: %s\n" seed msg
    done;
    Printf.printf "summary: %d ok, %d degraded, %d unsafe\n" !ok !degraded
      !unsafe;
    if !unsafe > 0 then exit_verification else exit_ok
  in
  let doc =
    "sweep fault seeds and check every run ends safe (fault-free result \
     or verified degraded abort)"
  in
  let man =
    [ `S Manpage.s_description;
      `P "Plans the query once, executes it fault-free for a baseline, \
          then re-executes under the fault spec for every seed in \
          1..$(b,--seeds). A run is $(i,safe) when it either completes \
          with the baseline result (possibly after retries and verified \
          failover re-planning) or aborts with a structured degraded \
          outcome; a wrong result or an authorization violation is \
          $(i,unsafe) and fails the sweep.";
      `P "Without $(b,--faults), a default profile crashes the first \
          provider at step 4 and makes every provider's links drop 15% \
          of messages." ]
    @ exit_status_man
  in
  Cmd.v (Cmd.info "chaos" ~doc ~man)
    Term.(
      const run $ policy_arg $ query_arg $ tables_arg $ faults_arg
      $ seeds_arg $ max_retries_arg $ timeout_ms_arg $ verbose_arg
      $ obs_args)

(* --- check ---------------------------------------------------------- *)

let check_cmd =
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the diagnostics as a JSON report.")
  in
  let tpch_arg =
    Arg.(value & opt (some int) None
         & info [ "tpch" ]
             ~doc:"Verify a TPC-H query (1-22) under an authorization \
                   scenario instead of $(b,-q); 0 verifies all 22.")
  in
  let scenario_arg =
    Arg.(value & opt (some (enum
            [ ("UA", Tpch.Scenarios.UA); ("UAPenc", Tpch.Scenarios.UAPenc);
              ("UAPmix", Tpch.Scenarios.UAPmix) ])) None
         & info [ "s"; "scenario" ]
             ~doc:"TPC-H authorization scenario (default: all three).")
  in
  let run policy_path query tpch scenario json obs =
    guard @@ fun () ->
    with_obs obs @@ fun () ->
    (* collect the diagnostics ourselves rather than letting the
       planner's own assertion gate turn them into an exception *)
    let was = !Planner.Optimizer.self_check in
    Planner.Optimizer.self_check := false;
    Fun.protect ~finally:(fun () -> Planner.Optimizer.self_check := was)
    @@ fun () ->
    let targets =
      match (query, tpch) with
      | Some q, None ->
          let env = load_policy policy_path in
          let plan = parse_query env q in
          let user =
            List.find_opt
              (fun s -> s.Authz.Subject.role = Authz.Subject.User)
              env.Authz.Policy_dsl.subjects
          in
          [ ( "query",
              fun () ->
                let r =
                  Planner.Optimizer.plan ~policy:env.Authz.Policy_dsl.policy
                    ~subjects:env.Authz.Policy_dsl.subjects ?deliver_to:user
                    plan
                in
                (env.Authz.Policy_dsl.policy, r) ) ]
      | None, Some n ->
          let numbers =
            if n = 0 then List.map (fun (q, _, _) -> q) Tpch.Tpch_queries.all
            else [ n ]
          in
          let scenarios =
            match scenario with Some s -> [ s ] | None -> Tpch.Scenarios.all
          in
          List.concat_map
            (fun q ->
              List.map
                (fun sc ->
                  ( Printf.sprintf "tpch q%d %s" q (Tpch.Scenarios.name sc),
                    fun () ->
                      ( Tpch.Scenarios.policy sc,
                        Tpch.Scenarios.optimize ~scenario:sc
                          (Tpch.Tpch_queries.query q) ) ))
                scenarios)
            numbers
      | Some _, Some _ -> failwith "use either -q or --tpch, not both"
      | None, None -> failwith "nothing to check: pass -q QUERY or --tpch N"
    in
    let reports =
      List.map
        (fun (label, produce) ->
          let policy, (r : Planner.Optimizer.result) = produce () in
          let diags =
            Verify.Verifier.run
              { Verify.Verifier.policy; config = r.Planner.Optimizer.config;
                extended = r.Planner.Optimizer.extended;
                clusters = r.Planner.Optimizer.clusters;
                requests = r.Planner.Optimizer.requests }
          in
          (label, diags))
        targets
    in
    if json then
      print_endline
        (Json.to_string
           (Json.Obj
              (List.map
                 (fun (label, diags) ->
                   (label, Verify.Diag.report_json diags))
                 reports)))
    else
      List.iter
        (fun (label, diags) ->
          Printf.printf "--- %s ---\n%s" label (Verify.Diag.render diags))
        reports;
    if List.exists (fun (_, d) -> Verify.Diag.has_errors d) reports then
      exit_verification
    else exit_ok
  in
  let doc =
    "statically verify a plan: profiles, authorizations, minimality, \
     keys, schemes, dispatch"
  in
  let man =
    [ `S Manpage.s_description;
      `P "Plans the query, then re-derives every invariant of the \
          authorization model with the independent static verifier and \
          prints the findings as $(b,MPQ)$(i,NNN) diagnostics: profile \
          propagation (MPQ001-003), authorized assignees (MPQ010-012), \
          encryption minimality (MPQ020), key distribution (MPQ030-033), \
          scheme sufficiency (MPQ040) and dispatch well-formedness \
          (MPQ050-055).";
      `P "Exits with status 2 when any Error-severity diagnostic is \
          reported; warnings alone keep the exit status at 0." ]
    @ exit_status_man
  in
  Cmd.v (Cmd.info "check" ~doc ~man)
    Term.(const run $ policy_arg
          $ Arg.(value & opt (some string) None
                 & info [ "q"; "query" ]
                     ~doc:"SQL query to plan and verify.")
          $ tpch_arg $ scenario_arg $ json_arg $ obs_args)

(* --- serve ----------------------------------------------------------- *)

let serve_cmd =
  let file_arg =
    Arg.(value & opt (some file) None
         & info [ "f"; "file" ] ~docv:"FILE"
             ~doc:"Read queries from $(docv) instead of standard input \
                   (batch mode: the whole request stream is served and the \
                   process exits).")
  in
  let cache_arg =
    Arg.(value & opt int 128
         & info [ "cache" ] ~docv:"N"
             ~doc:"Plan-cache capacity: at most $(docv) verified plans are \
                   retained, least-recently-used first out.")
  in
  let batch_arg =
    Arg.(value & opt int 16
         & info [ "batch" ] ~docv:"N"
             ~doc:"Admission bound: queued queries are served in rounds of \
                   at most $(docv); larger backlogs wait (backpressure).")
  in
  let listen_arg =
    Arg.(value & opt (some string) None
         & info [ "listen" ] ~docv:"ADDR"
             ~doc:"Serve over a socket instead of standard input: a port \
                   number listens on the IPv4 loopback ($(b,0) picks a free \
                   port, printed to standard error), anything containing \
                   $(b,/) is a Unix-domain socket path. Many concurrent \
                   sessions share one plan cache; responses use the same \
                   line protocol as stdin mode.")
  in
  let backlog_arg =
    Arg.(value & opt int 64
         & info [ "backlog" ] ~docv:"N"
             ~doc:"Socket mode: global admission bound. A request arriving \
                   when $(docv) requests are already queued is refused with \
                   a structured $(b,-- [N] shed:) line — never silently \
                   dropped.")
  in
  let deadline_arg =
    Arg.(value & opt (some int) None
         & info [ "deadline-ms" ] ~docv:"T"
             ~doc:"Socket mode: per-request budget in milliseconds, counted \
                   from the moment the request line is read. Checked at \
                   admission to the planner and again between the plan and \
                   exec phases; an expired request is answered \
                   $(b,-- [N] deadline exceeded:) and is never half-served.")
  in
  let netfaults_arg =
    Arg.(value & opt (some string) None
         & info [ "netfaults" ] ~docv:"SPEC"
             ~doc:"Socket mode: connection-level chaos plan, applied \
                   per-session from a seeded schedule. $(docv) entries \
                   (comma-separated): $(b,slow=MS\\[@P\\]) (delay request \
                   admission), $(b,stall\\@K) (inbound goes silent after K \
                   requests), $(b,disconnect\\@K) (force-close after K \
                   responses, at a response boundary), $(b,garbage=P) \
                   (corrupt request lines), $(b,sessions=P) (fraction of \
                   sessions affected).")
  in
  let fault_seed_arg =
    Arg.(value & opt int 1337
         & info [ "fault-seed" ] ~docv:"N"
             ~doc:"Seed for the $(b,--netfaults) schedule: the same seed \
                   and spec reproduce the same per-session fault plan.")
  in
  let shards_arg =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:"Split the plan and sub-plan caches into $(docv) \
                   mutex-guarded shards so worker domains probe \
                   concurrently. Capacity, recency and eviction stay \
                   global: responses and final cache contents are \
                   identical at any shard count.")
  in
  let tenants_arg =
    Arg.(value & opt_all string []
         & info [ "tenant" ] ~docv:"ID=FILE"
             ~doc:"Register tenant $(b,ID) with the policy environment \
                   loaded from $(b,FILE) (repeatable). Each tenant plans \
                   under its own policy, subjects and recipient, and its \
                   cache keys embed the tenant id, so tenants can never \
                   observe each other's cached plans or sub-plan results. \
                   Requests target a tenant with the $(b,\\tenant use ID) \
                   directive (stdin mode and per socket session); the \
                   unnamed environment is tenant $(b,default).")
  in
  let run policy_path table_specs file cache batch listen backlog deadline_ms
      netfaults fault_seed shards tenants jobs obs =
    guard @@ fun () ->
    with_obs obs @@ fun () ->
    Par.with_pool ~name:"serve" jobs @@ fun pool ->
    let env = load_policy policy_path in
    let tables = load_tables env table_specs in
    let service =
      Serve.Service.create ?pool ~cache_capacity:cache ~max_batch:batch
        ~shards ~policy:env.Authz.Policy_dsl.policy
        ~subjects:env.Authz.Policy_dsl.subjects ~tables ()
    in
    (* tenant subject populations, for the \policy same-subjects check *)
    let tenant_subjects = Hashtbl.create 4 in
    Hashtbl.replace tenant_subjects Serve.Tenancy.default_id
      env.Authz.Policy_dsl.subjects;
    List.iter
      (fun spec ->
        match String.index_opt spec '=' with
        | None ->
            failwith
              (Printf.sprintf
                 "--tenant %s: expected ID=FILE (a policy file per tenant)"
                 spec)
        | Some i ->
            let id = String.sub spec 0 i in
            let path = String.sub spec (i + 1) (String.length spec - i - 1) in
            if id = "" || path = "" then
              failwith (Printf.sprintf "--tenant %s: expected ID=FILE" spec);
            let tenv = load_policy (Some path) in
            Serve.Service.add_tenant service ~id
              ~policy:tenv.Authz.Policy_dsl.policy
              ~subjects:tenv.Authz.Policy_dsl.subjects ();
            Hashtbl.replace tenant_subjects id tenv.Authz.Policy_dsl.subjects)
      tenants;
    match listen with
    | Some addr_spec ->
        (* socket mode: the event loop owns the service; SIGTERM/SIGINT
           request a graceful drain (answer everything admitted, flush,
           report) rather than killing mid-response *)
        let addr = Serve.Server.addr_of_string addr_spec in
        let nf =
          match netfaults with
          | None -> Serve.Netfaults.none
          | Some spec -> Serve.Netfaults.parse spec
        in
        let config =
          { Serve.Server.default_config with
            Serve.Server.backlog; deadline_ms = deadline_ms;
            netfaults = nf; fault_seed }
        in
        let server = Serve.Server.create ~config ~service addr in
        let stop _ = Serve.Server.stop server in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
        Printf.eprintf "-- serving on %s (backlog %d%s%s)\n%!"
          (Serve.Server.addr_to_string (Serve.Server.bound_addr server))
          backlog
          (match deadline_ms with
          | Some t -> Printf.sprintf ", deadline %d ms" t
          | None -> "")
          (match netfaults with
          | Some s -> Printf.sprintf ", netfaults %s seed %d" s fault_seed
          | None -> "");
        Serve.Server.run server;
        prerr_endline
          (Serve.Server.render_stats (Serve.Server.stats server));
        prerr_endline
          (Serve.Service.render_stats (Serve.Service.stats service));
        exit_ok
    | None ->
    let ic = match file with Some p -> open_in p | None -> stdin in
    let line_no = ref 0 in
    let tenant = ref Serve.Tenancy.default_id in
    let pending = ref [] in
    (* newest first; (line, request) — the request carries the tenant
       that was current when the line was read *)
    let drain () =
      match List.rev !pending with
      | [] -> ()
      | batch ->
          pending := [];
          let responses =
            Serve.Service.submit_batch_requests service (List.map snd batch)
          in
          List.iter2
            (fun (n, _) (r : Serve.Service.response) ->
              match r.Serve.Service.outcome with
              | Serve.Service.Table t ->
                  Printf.printf "-- [%d] %s: plan %.2f ms, exec %.2f ms, %d rows\n"
                    n
                    (match r.Serve.Service.status with
                    | Serve.Service.Hit -> "hit"
                    | Serve.Service.Miss -> "miss")
                    r.Serve.Service.plan_ms r.Serve.Service.exec_ms
                    (Engine.Table.cardinality t);
                  print_string (Engine.Csv.to_string t)
              | Serve.Service.Rejected msg ->
                  Printf.printf "-- [%d] rejected: %s\n" n msg
              | Serve.Service.Expired why ->
                  (* stdin mode never sets deadlines, but keep the
                     rendering uniform with the socket server *)
                  Printf.printf "-- [%d] deadline exceeded: %s\n" n why)
            batch responses;
          flush stdout
    in
    let directive line =
      (* a directive flushes the backlog first: its effect must order
         with the queries around it exactly as written *)
      drain ();
      match
        List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
      with
      | [ "\\stats" ] ->
          (* the channel contract: anything answering a request line is a
             response and belongs on stdout; stderr carries operational
             notices only *)
          Printf.printf "%s\n%!"
            (Serve.Service.render_stats (Serve.Service.stats service))
      | [ "\\invalidate" ] -> Serve.Service.invalidate service
      | [ "\\tenant" ] -> Printf.printf "-- tenant: %s\n%!" !tenant
      | [ "\\tenant"; "list" ] ->
          Printf.printf "-- tenants: %s\n%!"
            (String.concat ", " (Serve.Service.tenant_ids service))
      | [ "\\tenant"; "use"; id ] ->
          if List.mem id (Serve.Service.tenant_ids service) then begin
            tenant := id;
            Printf.printf "-- tenant: %s\n%!" id
          end
          else
            Printf.printf "-- [%d] rejected: unknown tenant %S\n%!" !line_no
              id
      | [ "\\policy"; path ] -> (
          match Authz.Policy_dsl.load path with
          | e ->
              (* applies to the current tenant. An unchanged subject
                 population keeps the incremental migration path; a
                 swap forces the rotation fallback *)
              let same_subjects =
                List.sort compare e.Authz.Policy_dsl.subjects
                = List.sort compare
                    (Option.value ~default:[]
                       (Hashtbl.find_opt tenant_subjects !tenant))
              in
              if same_subjects then
                Serve.Service.set_policy ~tenant:!tenant service
                  e.Authz.Policy_dsl.policy
              else
                Serve.Service.set_policy
                  ~subjects:e.Authz.Policy_dsl.subjects ~tenant:!tenant
                  service e.Authz.Policy_dsl.policy;
              Hashtbl.replace tenant_subjects !tenant
                e.Authz.Policy_dsl.subjects;
              Printf.printf "-- policy %s installed for %s, cache %s\n%!"
                path !tenant
                (if same_subjects then "migrated incrementally"
                 else "rotated (subjects changed)")
          | exception Authz.Policy_dsl.Syntax_error (l, msg) ->
              Printf.printf "-- [%d] policy %s rejected: line %d: %s\n%!"
                !line_no path l msg
          | exception Sys_error msg ->
              Printf.printf "-- [%d] policy load failed: %s\n%!" !line_no msg)
      | d :: _ ->
          Printf.printf
            "-- [%d] unknown directive %s (try \\stats, \\policy FILE, \
             \\invalidate, \\tenant [use ID|list])\n%!"
            !line_no d
      | [] -> ()
    in
    (* SIGINT/SIGTERM leave through the same drain-and-report path as
       end of input: answer what was admitted, then the final stats *)
    let interrupted = ref false in
    let break _ = raise Sys.Break in
    let old_int = Sys.signal Sys.sigint (Sys.Signal_handle break) in
    let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle break) in
    (try
       while true do
         let raw = input_line ic in
         incr line_no;
         let line = String.trim raw in
         if line = "" || line.[0] = '#' then ()
         else if line.[0] = '\\' then directive line
         else begin
           (* report parse errors after the backlog so responses keep
              line order *)
           (match Serve.Service.parse ~tenant:!tenant service line with
           | plan ->
               pending :=
                 (!line_no, Serve.Service.request ~tenant:!tenant plan)
                 :: !pending
           | exception Mpq_sql.Sql_lexer.Lex_error (msg, pos) ->
               drain ();
               Printf.printf "-- [%d] parse error at %d: %s\n" !line_no pos msg
           | exception Mpq_sql.Sql_parser.Parse_error msg
           | exception Mpq_sql.Sql_plan.Plan_error msg ->
               drain ();
               Printf.printf "-- [%d] parse error: %s\n" !line_no msg);
           if List.length !pending >= batch then drain ()
         end
       done
     with
    | End_of_file -> ()
    | Sys.Break -> interrupted := true);
    (* a second signal during the drain kills the process as usual *)
    Sys.set_signal Sys.sigint old_int;
    Sys.set_signal Sys.sigterm old_term;
    if !interrupted then
      prerr_endline "-- interrupted: draining admitted requests";
    drain ();
    if file <> None then close_in ic;
    prerr_endline (Serve.Service.render_stats (Serve.Service.stats service));
    exit_ok
  in
  let doc = "serve a stream of queries through the verified plan cache" in
  let man =
    [ `S Manpage.s_description;
      `P "Reads one request per line from $(b,--file) or standard input and \
          answers each on standard output: a $(b,-- [LINE] hit|miss) status \
          comment with the planning and execution latency, then the result \
          as CSV. Optimized plans are cached after passing the static \
          verifier once, keyed by (query structure, policy, configuration); \
          a repeated query skips planning $(i,and) re-verification. Queries \
          the policy rejects report $(b,rejected) and the verdict is cached \
          too.";
      `P "Blank lines and $(b,#) comments are skipped. Directives: \
          $(b,\\\\stats) prints cache statistics, \
          $(b,\\\\policy FILE) installs a new policy for the current \
          tenant — every cached plan keyed under its old policy becomes \
          unreachable at once — $(b,\\\\invalidate) drops the cache, and \
          $(b,\\\\tenant use ID) switches subsequent requests to a tenant \
          registered with $(b,--tenant) ($(b,\\\\tenant list) enumerates \
          them). Base relations are fixed at startup ($(b,--table)); a \
          swapped policy must keep the relations it queries.";
      `P "Channel contract: standard output carries exactly the responses \
          to request lines — status comments, CSV tables, rejections, \
          parse errors and directive results, in request order. Standard \
          error carries operational notices only: the listening banner, \
          interruption notes and the final statistics line. SIGINT and \
          SIGTERM exit through the same drain as end of input: admitted \
          requests are answered, then the stats are reported.";
      `P "With $(b,--jobs N) queued queries are planned and executed on N \
          domains in admission-bounded rounds ($(b,--batch)); responses, \
          response order and cache evolution are identical to sequential \
          serving, byte for byte.";
      `P "With $(b,--listen ADDR) the same service is exposed on a socket \
          to many concurrent sessions at once, with overload behaviour \
          engineered in: a bounded global backlog ($(b,--backlog)) that \
          refuses excess requests with structured $(b,shed) lines, \
          per-request deadlines ($(b,--deadline-ms)) checked at admission \
          and between the plan and exec phases, per-session isolation (a \
          malformed or stalled connection cannot corrupt another session's \
          responses or the shared cache), and graceful shutdown on \
          SIGTERM/SIGINT (drain, flush, report). $(b,--netfaults) turns on \
          deterministic connection-level chaos for testing." ]
    @ exit_status_man
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(
      const run $ policy_arg $ tables_arg $ file_arg $ cache_arg $ batch_arg
      $ listen_arg $ backlog_arg $ deadline_arg $ netfaults_arg
      $ fault_seed_arg $ shards_arg $ tenants_arg $ jobs_arg $ obs_args)

(* --- audit ----------------------------------------------------------- *)

let audit_cmd =
  let attr_arg =
    Arg.(value & opt (some string) None
         & info [ "a"; "attr" ] ~docv:"ATTR"
             ~doc:"Restrict the report to attribute $(docv) (\"who could \
                   ever see $(docv)?\").")
  in
  let subject_arg =
    Arg.(value & opt (some string) None
         & info [ "s"; "subject" ] ~docv:"SUBJECT"
             ~doc:"Restrict the report to subject $(docv) (\"what could \
                   $(docv) ever see?\").")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the findings as JSON.")
  in
  let run policy_path attr subject json obs =
    guard @@ fun () ->
    with_obs obs @@ fun () ->
    let env = load_policy policy_path in
    let findings =
      Analysis.Audit.run ~policy:env.Authz.Policy_dsl.policy
        ~subjects:env.Authz.Policy_dsl.subjects ?attr ?subject ()
    in
    if json then
      print_endline (Json.to_string (Analysis.Audit.to_json findings))
    else print_string (Analysis.Audit.render findings);
    exit_ok
  in
  let doc =
    "audit a policy: who could ever see which attribute, at what level, \
     via which relation or join path"
  in
  let man =
    [ `S Manpage.s_description;
      `P "Answers the reachability question a policy author actually has \
          — not \"what does rule 7 say\" but \"who could ever observe \
          attribute X, in plaintext or as ciphertext, and along which \
          path?\". Each finding cites its path: a relation the subject's \
          (explicit, $(b,any), or implicit owner/host) rule covers, or a \
          type-compatible cross-relation join the subject could lawfully \
          execute under Def. 4.1 — an equi-join over deterministic \
          ciphertext still reveals the compared column to its executor.";
      `P "One line per finding, sorted and deduplicated: \
          $(i,ATTR): $(i,SUBJECT) $(i,LEVEL) via relation $(i,REL), or \
          via join $(i,REL.A) = $(i,REL'.B). The output is stable across \
          runs, so it can be diffed between policy versions." ]
    @ exit_status_man
  in
  Cmd.v (Cmd.info "audit" ~doc ~man)
    Term.(const run $ policy_arg $ attr_arg $ subject_arg $ json_arg
          $ obs_args)

(* --- example -------------------------------------------------------- *)

let example_cmd =
  let run () =
    print_string Authz.Policy_dsl.example;
    0
  in
  let doc = "print the running example's policy file" in
  Cmd.v (Cmd.info "example" ~doc) Term.(const run $ const ())

let () =
  let doc = "authorization-aware planning for multi-provider queries" in
  let info = Cmd.info "mpqcli" ~version:"1.0.0" ~doc ~man:exit_status_man in
  let status =
    Cmd.eval'
      (Cmd.group info
         [ plan_cmd; optimize_cmd; run_cmd; serve_cmd; chaos_cmd; check_cmd;
           audit_cmd; tpch_cmd; scenarios_cmd; example_cmd ])
  in
  (* cmdliner reserves 124 for CLI parse errors; fold it into our
     documented "1 = usage/parse error" convention *)
  exit (if status = Cmd.Exit.cli_error then exit_input_error else status)
