(* mpqcli — authorization-aware multi-provider query planning from the
   command line.

     mpqcli plan       -p policy.mpq -q "select ..."   plan + profiles + Λ
     mpqcli optimize   -p policy.mpq -q "select ..."   full planning report
     mpqcli tpch       -n 5 -s UAPenc                   TPC-H query report
     mpqcli scenarios                                   Fig. 9/10 summary
     mpqcli example                                     built-in policy file

   The policy file format is documented in `mpqcli example` output. *)

open Cmdliner
open Relalg

let load_policy path =
  match path with
  | Some p -> Authz.Policy_dsl.load p
  | None -> Authz.Policy_dsl.parse Authz.Policy_dsl.example

let parse_query ?(raw = false) env q =
  let plan =
    Mpq_sql.Sql_plan.parse_and_plan ~catalog:env.Authz.Policy_dsl.schemas q
  in
  if raw then plan
  else
    (* classical optimization first (Sec. 1's premise): normalize, then
       order the joins by estimated cost *)
    Planner.Join_order.reorder
      ~base:(fun _ -> None)
      (Planner.Rewrite.normalize plan)

let policy_arg =
  let doc = "Policy file (schemas, subjects, authorizations). Defaults to \
             the paper's running example." in
  Arg.(value & opt (some file) None & info [ "p"; "policy" ] ~doc)

let query_arg =
  let doc = "SQL query (select-from-where-group by-having subset)." in
  Arg.(required & opt (some string) None & info [ "q"; "query" ] ~doc)

(* --- plan ----------------------------------------------------------- *)

let plan_cmd =
  let explain_arg =
    Arg.(value & opt (some string) None
         & info [ "explain" ]
             ~doc:"Explain why the named subject is (not) a candidate for \
                   each operation.")
  in
  let run policy_path query explain_subject =
    let env = load_policy policy_path in
    let plan = parse_query env query in
    let profiles = Authz.Profile.annotate plan in
    print_endline "--- plan with profiles (Def. 3.1) ---";
    print_string
      (Plan_printer.to_ascii
         ~annot:(fun n ->
           Option.map Authz.Profile.to_string
             (Hashtbl.find_opt profiles (Plan.id n)))
         plan);
    print_endline "\n--- subject views ---";
    List.iter
      (fun s ->
        Format.printf "  %-4s %a@." (Authz.Subject.name s)
          Authz.Authorization.pp_view
          (Authz.Authorization.view env.Authz.Policy_dsl.policy s))
      env.Authz.Policy_dsl.subjects;
    print_endline "\n--- assignment candidates (Def. 5.3) ---";
    let config = Authz.Opreq.resolve_conflicts Authz.Opreq.default plan in
    let lam =
      Authz.Candidates.compute ~policy:env.Authz.Policy_dsl.policy
        ~subjects:env.Authz.Policy_dsl.subjects ~config plan
    in
    Plan.iter
      (fun n ->
        if not (Authz.Candidates.is_source_side n) then
          Format.printf "  %-30s Λ = %a@."
            (Plan_printer.node_label n)
            Authz.Subject.pp_set
            (Authz.Candidates.candidates_of lam n))
      plan;
    (match explain_subject with
    | None -> ()
    | Some name ->
        Printf.printf "\n--- why is %s (not) a candidate? ---\n" name;
        Plan.iter
          (fun n ->
            if not (Authz.Candidates.is_source_side n) then
              List.iter
                (fun (s, verdict) ->
                  if Authz.Subject.name s = name then
                    match verdict with
                    | None ->
                        Format.printf "  %-30s candidate@."
                          (Plan_printer.node_label n)
                    | Some v ->
                        Format.printf "  %-30s excluded: %a@."
                          (Plan_printer.node_label n)
                          Authz.Authorized.pp_violation v)
                (Authz.Candidates.explain ~policy:env.Authz.Policy_dsl.policy
                   ~subjects:env.Authz.Policy_dsl.subjects ~config plan n))
          plan);
    0
  in
  let doc = "show a query plan, its profiles and candidate sets" in
  Cmd.v (Cmd.info "plan" ~doc)
    Term.(const run $ policy_arg $ query_arg $ explain_arg)

(* --- optimize ------------------------------------------------------- *)

let optimize_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit a JSON planning report.")
  in
  let run policy_path query json =
    let env = load_policy policy_path in
    let plan = parse_query env query in
    let user =
      List.find_opt
        (fun s -> s.Authz.Subject.role = Authz.Subject.User)
        env.Authz.Policy_dsl.subjects
    in
    (match
       Planner.Optimizer.plan ~policy:env.Authz.Policy_dsl.policy
         ~subjects:env.Authz.Policy_dsl.subjects ?deliver_to:user plan
     with
    | r ->
        if json then print_endline (Planner.Report.to_string r)
        else print_string (Planner.Optimizer.report r)
    | exception Planner.Optimizer.No_candidate msg ->
        Printf.printf "query rejected: %s\n" msg
    | exception Planner.Optimizer.User_not_authorized msg ->
        Printf.printf "query rejected: %s\n" msg);
    0
  in
  let doc = "authorization-aware planning: assignment, encryption, keys, \
             dispatch, cost" in
  Cmd.v (Cmd.info "optimize" ~doc)
    Term.(const run $ policy_arg $ query_arg $ json_arg)

(* --- tpch ----------------------------------------------------------- *)

let tpch_cmd =
  let number =
    Arg.(value & opt int 5 & info [ "n"; "number" ] ~doc:"TPC-H query (1-22).")
  in
  let scenario =
    Arg.(
      value
      & opt (enum [ ("UA", Tpch.Scenarios.UA); ("UAPenc", Tpch.Scenarios.UAPenc);
                    ("UAPmix", Tpch.Scenarios.UAPmix) ])
          Tpch.Scenarios.UAPenc
      & info [ "s"; "scenario" ] ~doc:"Authorization scenario.")
  in
  let run n scenario =
    let r = Tpch.Scenarios.optimize ~scenario (Tpch.Tpch_queries.query n) in
    print_string (Planner.Optimizer.report r);
    0
  in
  let doc = "plan a TPC-H query under an authorization scenario (Sec. 7)" in
  Cmd.v (Cmd.info "tpch" ~doc) Term.(const run $ number $ scenario)

(* --- scenarios ------------------------------------------------------ *)

let scenarios_cmd =
  let run () =
    Printf.printf "%-4s %10s %10s %10s\n" "q" "UA" "UAPenc" "UAPmix";
    let totals = Hashtbl.create 3 in
    List.iter
      (fun (q, _, build) ->
        let cost sc =
          Planner.Cost.total
            (Tpch.Scenarios.optimize ~scenario:sc (build ())).Planner.Optimizer.cost
        in
        let ua = cost Tpch.Scenarios.UA in
        let row =
          List.map
            (fun sc ->
              let c = cost sc /. ua in
              let prev = Option.value ~default:0.0 (Hashtbl.find_opt totals sc) in
              Hashtbl.replace totals sc (prev +. c);
              c)
            Tpch.Scenarios.all
        in
        match row with
        | [ a; b; c ] -> Printf.printf "%-4d %10.3f %10.3f %10.3f\n" q a b c
        | _ -> ())
      Tpch.Tpch_queries.all;
    let total sc = Hashtbl.find totals sc in
    Printf.printf "\nsavings vs UA: UAPenc %.1f%%  UAPmix %.1f%%\n"
      (100. *. (1. -. (total Tpch.Scenarios.UAPenc /. total Tpch.Scenarios.UA)))
      (100. *. (1. -. (total Tpch.Scenarios.UAPmix /. total Tpch.Scenarios.UA)));
    0
  in
  let doc = "normalized cost of all 22 TPC-H queries under UA/UAPenc/UAPmix" in
  Cmd.v (Cmd.info "scenarios" ~doc) Term.(const run $ const ())

(* --- run -------------------------------------------------------------- *)

let demo_tables env =
  (* built-in rows for the running-example schemas, keyed by relation *)
  let find name =
    List.find_opt
      (fun s -> s.Schema.name = name)
      env.Authz.Policy_dsl.schemas
  in
  match (find "Hosp", find "Ins") with
  | Some hosp, Some ins ->
      let s x = Value.Str x and n x = Value.Int x in
      let v = Value.date_of_string in
      [ ( "Hosp",
          Engine.Table.of_schema hosp
            [ [| s "alice"; v "1980-01-01"; s "stroke"; s "tpa" |];
              [| s "bob"; v "1975-05-12"; s "stroke"; s "surgery" |];
              [| s "carol"; v "1990-09-30"; s "flu"; s "rest" |];
              [| s "dave"; v "1968-03-22"; s "stroke"; s "tpa" |] ] );
        ( "Ins",
          Engine.Table.of_schema ins
            [ [| s "alice"; n 120 |]; [| s "bob"; n 300 |];
              [| s "carol"; n 80 |]; [| s "dave"; n 150 |] ] ) ]
  | _ -> []

let run_cmd =
  let tables_arg =
    let doc = "Load a base relation from CSV: $(i,REL)=$(i,FILE). Repeatable.                Without any, built-in demo rows for the example policy are                used." in
    Arg.(value & opt_all (pair ~sep:'=' string file) []
         & info [ "t"; "table" ] ~doc)
  in
  let trace_arg =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the dispatch/release trace.")
  in
  let run policy_path query table_specs trace =
    let env = load_policy policy_path in
    let plan = parse_query env query in
    let user =
      match
        List.find_opt
          (fun s -> s.Authz.Subject.role = Authz.Subject.User)
          env.Authz.Policy_dsl.subjects
      with
      | Some u -> u
      | None -> failwith "the policy declares no user"
    in
    let tables =
      if table_specs = [] then demo_tables env
      else
        List.map
          (fun (rel, path) ->
            match
              List.find_opt
                (fun s -> s.Schema.name = rel)
                env.Authz.Policy_dsl.schemas
            with
            | Some schema -> (rel, Engine.Csv.load schema path)
            | None -> failwith ("unknown relation " ^ rel))
          table_specs
    in
    match
      Planner.Optimizer.plan ~policy:env.Authz.Policy_dsl.policy
        ~subjects:env.Authz.Policy_dsl.subjects ~deliver_to:user plan
    with
    | exception Planner.Optimizer.No_candidate msg ->
        Printf.printf "query rejected: %s
" msg;
        1
    | r ->
        let outcome =
          Distsim.Runtime.execute ~policy:env.Authz.Policy_dsl.policy
            ~pki:(Distsim.Pki.create ())
            ~keyring:(Mpq_crypto.Keyring.create ())
            ~user ~tables ~extended:r.Planner.Optimizer.extended
            ~clusters:r.Planner.Optimizer.clusters ()
        in
        if trace then begin
          print_endline "--- trace ---";
          List.iter
            (fun e -> Format.printf "  %a@." Distsim.Runtime.pp_event e)
            outcome.Distsim.Runtime.trace
        end;
        print_string (Engine.Csv.to_string outcome.Distsim.Runtime.result);
        0
  in
  let doc = "execute a query end-to-end through the distributed simulator" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ policy_arg $ query_arg $ tables_arg $ trace_arg)

(* --- example -------------------------------------------------------- *)

let example_cmd =
  let run () =
    print_string Authz.Policy_dsl.example;
    0
  in
  let doc = "print the running example's policy file" in
  Cmd.v (Cmd.info "example" ~doc) Term.(const run $ const ())

let () =
  let doc = "authorization-aware planning for multi-provider queries" in
  let info = Cmd.info "mpqcli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ plan_cmd; optimize_cmd; run_cmd; tpch_cmd; scenarios_cmd;
            example_cmd ]))
