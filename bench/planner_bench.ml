(* planner_bench — wall-clock effect of the planner's evaluate memo and
   per-round view cache, measured over the TPC-H workload.

   For every (query, scenario) configuration the authorization-aware
   optimizer runs twice — [memoize:false] (every local-search move
   re-evaluated from scratch) and [memoize:true] (the default) — and the
   two results are checked to be identical: same total cost and same
   operation assignment, so the memo is a pure speed-up, never a plan
   change.  Timings are the minimum over [--repeats] runs (default 3).

     dune exec bench/planner_bench.exe            # full 22 x 3 suite
     dune exec bench/planner_bench.exe -- --quick # 4-query smoke subset
     dune exec bench/planner_bench.exe -- -o out.json --repeats 5
     dune exec bench/planner_bench.exe -- --jobs 4 # one query per domain

   With [--jobs N] the (query, scenario) configurations are planned on N
   domains. Per-configuration timings are then contended (domains share
   the machine) — use jobs 1 when absolute per-config numbers matter;
   the memoized-vs-not ratio is measured within one domain either way.

   The report is written as one JSON document (default
   [BENCH_planner.json]) with both aggregate and per-configuration
   before/after numbers, plus the memo-hit counters from [Obs]. *)

open Relalg

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

(* Minimum over [n] runs: the least noisy central tendency for short,
   allocation-bound workloads. The result of the first run is kept. *)
let best_of n f =
  let result, first = time_ms f in
  let best = ref first in
  for _ = 2 to n do
    let _, ms = time_ms f in
    if ms < !best then best := ms
  done;
  (result, !best)

(* Node ids are drawn from a global counter, so two plannings of the
   same query assign different ids to the same operators; the id *order*
   is construction order and thus stable. Compare assignments by rank. *)
let assignment_canonical (r : Planner.Optimizer.result) =
  List.map
    (fun (_, s) -> Authz.Subject.name s)
    (Authz.Imap.bindings
       r.Planner.Optimizer.extended.Authz.Extend.assignment)

let identical a b =
  Float.equal
    (Planner.Cost.total a.Planner.Optimizer.cost)
    (Planner.Cost.total b.Planner.Optimizer.cost)
  && assignment_canonical a = assignment_canonical b

let () =
  let quick = ref false in
  let out = ref "BENCH_planner.json" in
  let repeats = ref 3 in
  let jobs = ref 1 in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "-o" :: file :: rest ->
        out := file;
        parse rest
    | "--repeats" :: n :: rest ->
        repeats := int_of_string n;
        parse rest
    | "--jobs" :: n :: rest ->
        jobs := int_of_string n;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "planner_bench: unknown argument %s\n\
           usage: planner_bench [--quick] [--repeats N] [--jobs N] [-o FILE]\n"
          arg;
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* the verifier pass is measured elsewhere; keep this about the search *)
  Planner.Optimizer.self_check := false;
  let queries =
    if !quick then [ 1; 3; 5; 10 ]
    else List.map (fun (q, _, _) -> q) Tpch.Tpch_queries.all
  in
  let configs =
    List.concat_map
      (fun q -> List.map (fun sc -> (q, sc)) Tpch.Scenarios.all)
      queries
  in
  let work (q, sc) =
    let plan () = Tpch.Tpch_queries.query q in
    let run memoize = Tpch.Scenarios.optimize ~memoize ~scenario:sc (plan ()) in
    let plain, before_ms = best_of !repeats (fun () -> run false) in
    let memo, after_ms = best_of !repeats (fun () -> run true) in
    let same = identical plain memo in
    if not same then
      Printf.eprintf
        "planner_bench: q%d %s: memoized plan differs (cost %.3f vs %.3f)\n"
        q (Tpch.Scenarios.name sc)
        (Planner.Cost.total plain.Planner.Optimizer.cost)
        (Planner.Cost.total memo.Planner.Optimizer.cost);
    (q, sc, before_ms, after_ms,
     Planner.Cost.total memo.Planner.Optimizer.cost, same)
  in
  let rows =
    (* one configuration per pool task; reporting stays on this domain *)
    Par.with_pool ~name:"plan" !jobs @@ fun pool ->
    match pool with
    | Some p -> Par.run_all p (List.map (fun c () -> work c) configs)
    | None -> List.map work configs
  in
  List.iter
    (fun (q, sc, before_ms, after_ms, _, same) ->
      Printf.printf "q%-3d %-7s %8.2f ms -> %8.2f ms  (%4.2fx)%s\n%!" q
        (Tpch.Scenarios.name sc) before_ms after_ms
        (before_ms /. after_ms)
        (if same then "" else "  PLAN MISMATCH"))
    rows;
  let mismatches =
    ref (List.length (List.filter (fun (_, _, _, _, _, same) -> not same) rows))
  in
  (* one extra instrumented pass for the memo-hit counters *)
  Obs.reset ();
  Obs.set_enabled true;
  List.iter
    (fun (q, sc) ->
      ignore (Tpch.Scenarios.optimize ~scenario:sc (Tpch.Tpch_queries.query q)))
    configs;
  Obs.set_enabled false;
  let evaluate_calls = Obs.counter "planner.evaluate.calls" in
  let memo_hits = Obs.counter "planner.evaluate.memo_hits" in
  let view_hits = Obs.counter "planner.dp.view_cache_hits" in
  let total f = List.fold_left (fun acc row -> acc +. f row) 0.0 rows in
  let before_total = total (fun (_, _, b, _, _, _) -> b) in
  let after_total = total (fun (_, _, _, a, _, _) -> a) in
  let doc =
    Json.Obj
      [ ("suite", Json.String "planner");
        ("workload",
         Json.String (if !quick then "tpch-quick" else "tpch-22x3"));
        ("repeats", Json.Int !repeats);
        ("configs", Json.Int (List.length rows));
        ("unmemoized_ms", Json.Float before_total);
        ("memoized_ms", Json.Float after_total);
        ("speedup", Json.Float (before_total /. after_total));
        ("identical_plans", Json.Bool (!mismatches = 0));
        ("evaluate_calls", Json.Int evaluate_calls);
        ("evaluate_memo_hits", Json.Int memo_hits);
        ("dp_view_cache_hits", Json.Int view_hits);
        ("per_config",
         Json.List
           (List.map
              (fun (q, sc, before_ms, after_ms, cost, same) ->
                Json.Obj
                  [ ("query", Json.Int q);
                    ("scenario", Json.String (Tpch.Scenarios.name sc));
                    ("unmemoized_ms", Json.Float before_ms);
                    ("memoized_ms", Json.Float after_ms);
                    ("cost", Json.Float cost);
                    ("identical", Json.Bool same) ])
              rows)) ]
  in
  let oc = open_out !out in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "\ntotal %.2f ms -> %.2f ms (%.2fx); memo hits %d/%d; report: %s\n"
    before_total after_total
    (before_total /. after_total)
    memo_hits evaluate_calls !out;
  if !mismatches > 0 then exit 2
