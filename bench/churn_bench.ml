(* churn_bench — retained hit rate under policy churn: incremental
   dependency-based invalidation vs full fingerprint rotation.

   One mutation-heavy stream (generated queries with verbatim repeats,
   interleaved grant/revoke policy mutations — the generators the
   differential tests replay) is concretized once and then served three
   times from identical initial state:

     incremental — Serve.Service with the default dependency-based
                   policy invalidation (lib/analysis);
     rotation    — the same service with [~invalidation:Rotate], the
                   pre-analysis behaviour: every policy change strands
                   the whole cache;
     oracle      — a fresh cache-less service per query (replan + verify
                   + execute from scratch under the then-current policy).

   At every stream position the three answers are compared. Executed
   tables must agree as canonical row multisets (an incrementally
   retained entry may carry a differently shaped — but equally verified
   — plan than a fresh replan, and plan shape decides the arrival order
   of rows at a final grouping; content must be identical). Rejections
   must agree as verdicts; a retained denial may cite a different first
   cause than a fresh replan under a strictly smaller policy (both are
   true), so message drift is reported separately, not as divergence.
   Any real divergence makes the bench exit 2.

     dune exec bench/churn_bench.exe               # full stream
     dune exec bench/churn_bench.exe -- --quick    # CI smoke subset
     dune exec bench/churn_bench.exe -- --events 800 -o out.json

   The report is one JSON document (default [BENCH_churn.json]) with
   the two cache's hit/miss/migration counters, wall-clock, and the
   headline ratio of incremental to rotation warm hits. *)

open Relalg

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

(* canonical row-multiset equality (see header) *)
let canonical_equal a b =
  List.equal Attr.equal (Engine.Table.attrs a) (Engine.Table.attrs b)
  && List.sort compare (Engine.Table.rows a)
     = List.sort compare (Engine.Table.rows b)

(* the random-catalog fixtures the serve tests use *)
let tables () =
  let mk schema n row =
    (schema.Schema.name, Engine.Table.of_schema schema (List.init n row))
  in
  let strs = [| "ga"; "bu"; "zo"; "meu" |] in
  [ mk Gen.rel1 17 (fun i ->
        [| Value.Int (i mod 7); Value.Int (i * 3 mod 11);
           Value.Str strs.(i mod 4); Value.Int (i mod 5) |]);
    mk Gen.rel2 13 (fun i ->
        [| Value.Int (i mod 7); Value.Int (i mod 9); Value.Str strs.(i mod 4) |]);
    mk Gen.rel3 11 (fun i -> [| Value.Int (i mod 6); Value.Int (i mod 4) |]) ]

(* A generous base policy: every subject is explicitly granted full
   plaintext visibility of every relation (plain implies enc in this
   model). Churn then revokes and re-grants single (subject, attribute,
   level) facts out of a large universe, so most mutations are not
   load-bearing for most cached plans — the regime dependency-based
   invalidation is built for. (Gen.gen_policy's minimal random slices
   are the wrong workload here: under them the first few revocations
   strip the only authorized executors, the pool degenerates to
   denials, and both caches just thrash.) *)
let base_policy =
  let open Authz in
  let rule schema subject =
    let attrs = List.map Attr.name (Schema.attr_list schema) in
    Authorization.rule ~rel:schema.Schema.name ~plain:attrs (To subject)
  in
  let rules =
    List.concat_map
      (fun sch -> List.map (rule sch) Gen.subjects)
      Gen.schemas
  in
  Authorization.make ~schemas:Gen.schemas rules

let udf_impls =
  [ ( "f",
      fun vals ->
        let total =
          List.fold_left
            (fun acc v ->
              match Value.to_float v with Some f -> acc +. f | None -> acc)
            0.0 vals
        in
        Value.Int (int_of_float total mod 97) ) ]

let () =
  let quick = ref false in
  let out = ref "BENCH_churn.json" in
  let events = ref 500 in
  let pool_size = ref 12 in
  let repeat_rate = ref 0.75 in
  let mutation_rate = ref 0.45 in
  let seed = ref 0xC0FFEE in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "-o" :: file :: rest ->
        out := file;
        parse rest
    | "--events" :: n :: rest ->
        events := int_of_string n;
        parse rest
    | "--pool" :: n :: rest ->
        pool_size := int_of_string n;
        parse rest
    | "--repeat" :: f :: rest ->
        repeat_rate := float_of_string f;
        parse rest
    | "--mutation" :: f :: rest ->
        mutation_rate := float_of_string f;
        parse rest
    | "--seed" :: n :: rest ->
        seed := int_of_string n;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "churn_bench: unknown argument %s\n\
           usage: churn_bench [--quick] [--events N] [--pool N] \
           [--repeat F] [--mutation F] [--seed N] [-o FILE]\n"
          arg;
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !quick then events := 120;
  let rand = Random.State.make [| !seed |] in
  let plan_pool = Array.init !pool_size (fun _ -> Gen.gen_plan rand) in
  let policy0 = base_policy in
  let raw_events =
    Gen.gen_stream ~repeat_rate:!repeat_rate ~mutation_rate:!mutation_rate
      ~pool:plan_pool !events rand
  in
  (* concretize the mutations once, so every replay sees the same
     policies at the same positions *)
  let script =
    List.rev
      (snd
         (List.fold_left
            (fun (policy, acc) ev ->
              match ev with
              | Gen.Squery q -> (policy, `Query q :: acc)
              | Gen.Smutate ->
                  let policy' =
                    Gen.mutate_policy ~mode:`Mixed policy rand
                  in
                  (policy', `Set policy' :: acc))
            (policy0, []) raw_events))
  in
  let n_queries =
    List.length (List.filter (function `Query _ -> true | _ -> false) script)
  in
  let n_mutations = List.length script - n_queries in
  Printf.printf
    "churn: %d queries, %d policy mutations (pool %d, repeat %.2f)\n%!"
    n_queries n_mutations !pool_size !repeat_rate;
  let service invalidation =
    Serve.Service.create ~invalidation ~policy:policy0 ~subjects:Gen.subjects
      ~tables:(tables ()) ~udfs:udf_impls ~deliver_to:Gen.user ()
  in
  (* sequential replay: submissions one at a time, so every mutation
     point falls exactly between the same two queries in each replay *)
  let replay invalidation =
    let s = service invalidation in
    let responses =
      List.filter_map
        (function
          | `Query q -> Some (Serve.Service.submit s q)
          | `Set policy ->
              Serve.Service.set_policy s policy;
              None)
        script
    in
    (responses, Serve.Service.stats s)
  in
  let (incremental, inc_stats), inc_ms =
    time_ms (fun () -> replay Serve.Service.Incremental)
  in
  let (rotation, rot_stats), rot_ms =
    time_ms (fun () -> replay Serve.Service.Rotate)
  in
  (* oracle: a fresh cache-less service per query — full replan under
     the then-current policy *)
  let oracle, oracle_ms =
    time_ms (fun () ->
        List.rev
          (snd
             (List.fold_left
                (fun (policy, acc) ev ->
                  match ev with
                  | `Set policy' -> (policy', acc)
                  | `Query q ->
                      let s =
                        Serve.Service.create ~policy ~subjects:Gen.subjects
                          ~tables:(tables ()) ~udfs:udf_impls
                          ~deliver_to:Gen.user ()
                      in
                      (policy, (Serve.Service.submit s q).Serve.Service.outcome :: acc))
                (policy0, []) script)))
  in
  (* differential: all three replays agree at every stream position *)
  let divergences = ref 0 in
  let message_drift = ref 0 in
  let check i what a b =
    match (a, b) with
    | Serve.Service.Table x, Serve.Service.Table y ->
        if not (canonical_equal x y) then begin
          incr divergences;
          Printf.eprintf "DIVERGENCE at query %d (%s): result rows differ\n" i
            what
        end
    | Serve.Service.Rejected x, Serve.Service.Rejected y ->
        if not (String.equal x y) then incr message_drift
    | Serve.Service.Table _, Serve.Service.Rejected m ->
        incr divergences;
        Printf.eprintf "DIVERGENCE at query %d (%s): table vs rejection %s\n" i
          what m
    | Serve.Service.Rejected m, Serve.Service.Table _ ->
        incr divergences;
        Printf.eprintf "DIVERGENCE at query %d (%s): rejection %s vs table\n" i
          what m
    | Serve.Service.Expired _, _ | _, Serve.Service.Expired _ ->
        (* no deadlines anywhere in this bench *)
        incr divergences;
        Printf.eprintf "DIVERGENCE at query %d (%s): unexpected expiry\n" i what
  in
  List.iteri
    (fun i ((inc : Serve.Service.response), ((rot : Serve.Service.response), orc)) ->
      check i "incremental vs oracle" inc.Serve.Service.outcome orc;
      check i "rotation vs oracle" rot.Serve.Service.outcome orc)
    (List.combine incremental (List.combine rotation oracle));
  let ratio =
    float_of_int inc_stats.Serve.Service.hits
    /. float_of_int (max 1 rot_stats.Serve.Service.hits)
  in
  let meets_5x = ratio >= 5.0 in
  Printf.printf
    "incremental: %d hits / %d misses (%d retained, %d reverified, %d \
     invalidated) in %.0f ms\n"
    inc_stats.Serve.Service.hits inc_stats.Serve.Service.misses
    inc_stats.Serve.Service.retained inc_stats.Serve.Service.reverified
    inc_stats.Serve.Service.invalidated inc_ms;
  Printf.printf "rotation:    %d hits / %d misses in %.0f ms\n"
    rot_stats.Serve.Service.hits rot_stats.Serve.Service.misses rot_ms;
  Printf.printf
    "oracle:      %d full replans in %.0f ms\n" n_queries oracle_ms;
  Printf.printf
    "retained-hit ratio %.1fx (>=5x: %b), %d divergences, %d rejection \
     message drifts\n"
    ratio meets_5x !divergences !message_drift;
  let stats_obj (s : Serve.Service.stats) ms =
    Json.Obj
      [ ("hits", Json.Int s.Serve.Service.hits);
        ("misses", Json.Int s.Serve.Service.misses);
        ("rejections", Json.Int s.Serve.Service.rejections);
        ("invalidated", Json.Int s.Serve.Service.invalidated);
        ("reverified", Json.Int s.Serve.Service.reverified);
        ("retained", Json.Int s.Serve.Service.retained);
        ("plan_ms", Json.Float s.Serve.Service.plan_ms);
        ("wall_ms", Json.Float ms) ]
  in
  let doc =
    Json.Obj
      [ ("bench", Json.String "churn");
        ( "workload",
          Json.Obj
            [ ("events", Json.Int !events);
              ("queries", Json.Int n_queries);
              ("mutations", Json.Int n_mutations);
              ("pool", Json.Int !pool_size);
              ("repeat_rate", Json.Float !repeat_rate);
              ("mutation_rate", Json.Float !mutation_rate);
              ("seed", Json.Int !seed) ] );
        ("incremental", stats_obj inc_stats inc_ms);
        ("rotation", stats_obj rot_stats rot_ms);
        ("oracle_wall_ms", Json.Float oracle_ms);
        ("hit_ratio_vs_rotation", Json.Float ratio);
        ("meets_5x", Json.Bool meets_5x);
        ("divergences", Json.Int !divergences);
        ("rejected_message_drift", Json.Int !message_drift) ]
  in
  let oc = open_out !out in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "report: %s\n" !out;
  if !divergences > 0 then exit 2
