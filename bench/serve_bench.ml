(* serve_bench — wall-clock effect of the serving layer's verified plan
   cache, measured over the TPC-H workload.

   For every scenario the full query set is submitted twice through one
   {!Serve.Service}: a cold pass (every submission misses, plans and
   verifies) and a warm pass (every submission must hit). The warm pass
   rebuilds each query from scratch — fresh plan-node ids — so a hit
   certifies that the cache key is structural. Each warm response is
   checked against its cold counterpart: structurally identical plan,
   byte-identical result table. Any divergence (a warm miss, a plan
   mismatch, a result mismatch) makes the bench exit 2.

   A third phase replays a generated query stream (duplicate queries at
   a controlled repeat rate — the same generator the differential tests
   replay) in admission-bounded batches, optionally on a domain pool,
   and reports the hit rate and throughput.

     dune exec bench/serve_bench.exe              # full 22 x 3 suite
     dune exec bench/serve_bench.exe -- --quick   # 4-query smoke subset
     dune exec bench/serve_bench.exe -- --jobs 4 --stream 300 -o out.json

   The report is one JSON document (default [BENCH_serve.json]) with
   aggregate and per-(query, scenario) cold/warm numbers plus the
   per-scenario stream statistics. *)

open Relalg

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let byte_identical a b =
  List.equal Attr.equal (Engine.Table.attrs a) (Engine.Table.attrs b)
  && List.equal
       (fun (r1 : Value.t array) r2 -> r1 = r2)
       (Engine.Table.rows a) (Engine.Table.rows b)

let plan_of (r : Serve.Service.response) =
  Option.map
    (fun p -> p.Planner.Optimizer.extended.Authz.Extend.plan)
    r.Serve.Service.planned

let () =
  let quick = ref false in
  let out = ref "BENCH_serve.json" in
  let sf = ref 0.001 in
  let jobs = ref 1 in
  let stream_len = ref 200 in
  let batch = ref 16 in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "-o" :: file :: rest ->
        out := file;
        parse rest
    | "--sf" :: f :: rest ->
        sf := float_of_string f;
        parse rest
    | "--jobs" :: n :: rest ->
        jobs := int_of_string n;
        parse rest
    | "--stream" :: n :: rest ->
        stream_len := int_of_string n;
        parse rest
    | "--batch" :: n :: rest ->
        batch := int_of_string n;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "serve_bench: unknown argument %s\n\
           usage: serve_bench [--quick] [--sf F] [--jobs N] [--stream N] \
           [--batch N] [-o FILE]\n"
          arg;
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  let queries =
    if !quick then [ 1; 3; 5; 10 ]
    else List.map (fun (q, _, _) -> q) Tpch.Tpch_queries.all
  in
  let data = Tpch.Tpch_data.generate ~sf:!sf () in
  let tables =
    List.map
      (fun (s : Schema.t) ->
        (s.Schema.name, Engine.Table.of_schema s (List.assoc s.Schema.name data)))
      Tpch.Tpch_schema.all
  in
  let divergences = ref 0 in
  let diverge fmt =
    Printf.ksprintf
      (fun msg ->
        incr divergences;
        Printf.eprintf "serve_bench: DIVERGENCE: %s\n%!" msg)
      fmt
  in
  Par.with_pool ~name:"serve" !jobs @@ fun pool ->
  let results =
    List.map
      (fun sc ->
        let service =
          Serve.Service.create ?pool ~max_batch:!batch
            ~policy:(Tpch.Scenarios.policy sc)
            ~subjects:Tpch.Scenarios.subjects ~pricing:Tpch.Scenarios.pricing
            ~base:(Tpch.Tpch_schema.base_stats ~sf:!sf)
            ~deliver_to:Tpch.Scenarios.user ~udfs:Tpch.Tpch_queries.udf_impls
            ~tables ()
        in
        let scn = Tpch.Scenarios.name sc in
        (* cold pass: every query planned, verified, executed, cached *)
        let cold =
          List.map
            (fun q ->
              (q, Serve.Service.submit service (Tpch.Tpch_queries.query q)))
            queries
        in
        List.iter
          (fun (q, (r : Serve.Service.response)) ->
            if r.Serve.Service.status <> Serve.Service.Miss then
              diverge "q%d %s: cold submission did not miss" q scn)
          cold;
        (* warm pass: rebuilt queries, so only structure can match *)
        let warm =
          List.map
            (fun q ->
              (q, Serve.Service.submit service (Tpch.Tpch_queries.query q)))
            queries
        in
        List.iter2
          (fun (q, (c : Serve.Service.response))
               (_, (w : Serve.Service.response)) ->
            if w.Serve.Service.status <> Serve.Service.Hit then
              diverge "q%d %s: warm submission did not hit" q scn;
            (match (plan_of c, plan_of w) with
            | Some pc, Some pw when not (Plan.equal_shape pc pw) ->
                diverge "q%d %s: warm plan differs from cold plan" q scn
            | Some _, Some _ -> ()
            | _ -> diverge "q%d %s: query was rejected" q scn);
            match (c.Serve.Service.outcome, w.Serve.Service.outcome) with
            | Serve.Service.Table tc, Serve.Service.Table tw ->
                if not (byte_identical tc tw) then
                  diverge "q%d %s: warm result differs from cold result" q scn
            | _ -> diverge "q%d %s: non-table outcome" q scn)
          cold warm;
        let cold_ms (_, (r : Serve.Service.response)) = r.Serve.Service.plan_ms in
        let sum l f = List.fold_left (fun acc x -> acc +. f x) 0.0 l in
        let cold_plan_ms = sum cold cold_ms in
        let warm_plan_ms = sum warm cold_ms in
        (* stream phase: duplicate-heavy workload in bounded batches;
           every event rebuilds its query, as a client would *)
        let events =
          Gen.gen_stream ~repeat_rate:0.6 ~mutation_rate:0.0
            ~pool:(Array.of_list queries) !stream_len
            (Random.State.make [| 0x5e1; !stream_len |])
        in
        let stream_queries =
          List.filter_map
            (function
              | Gen.Squery q -> Some (Tpch.Tpch_queries.query q)
              | Gen.Smutate -> None)
            events
        in
        let before = Serve.Service.stats service in
        let _, stream_ms =
          time_ms (fun () ->
              ignore (Serve.Service.submit_batch service stream_queries))
        in
        let after = Serve.Service.stats service in
        let stream_hits = after.Serve.Service.hits - before.Serve.Service.hits in
        let stream_lookups =
          stream_hits
          + (after.Serve.Service.misses - before.Serve.Service.misses)
        in
        let per_query =
          List.map2
            (fun (q, (c : Serve.Service.response))
                 (_, (w : Serve.Service.response)) ->
              Json.Obj
                [ ("query", Json.Int q);
                  ("scenario", Json.String scn);
                  ("cold_plan_ms", Json.Float c.Serve.Service.plan_ms);
                  ("warm_plan_ms", Json.Float w.Serve.Service.plan_ms);
                  ("cold_exec_ms", Json.Float c.Serve.Service.exec_ms);
                  ("warm_exec_ms", Json.Float w.Serve.Service.exec_ms) ])
            cold warm
        in
        Printf.printf
          "%-7s cold plan %8.2f ms, warm plan %8.2f ms (%6.1fx); stream \
           %d queries %8.2f ms, %d/%d hits\n%!"
          scn cold_plan_ms warm_plan_ms
          (cold_plan_ms /. Float.max warm_plan_ms 1e-6)
          (List.length stream_queries)
          stream_ms stream_hits stream_lookups;
        ( scn, cold_plan_ms, warm_plan_ms, per_query,
          (List.length stream_queries, stream_ms, stream_hits, stream_lookups)
        ))
      Tpch.Scenarios.all
  in
  let total f = List.fold_left (fun acc r -> acc +. f r) 0.0 results in
  let cold_total = total (fun (_, c, _, _, _) -> c) in
  let warm_total = total (fun (_, _, w, _, _) -> w) in
  let stream_queries_total =
    List.fold_left (fun acc (_, _, _, _, (n, _, _, _)) -> acc + n) 0 results
  in
  let stream_hits_total =
    List.fold_left (fun acc (_, _, _, _, (_, _, h, _)) -> acc + h) 0 results
  in
  let stream_lookups_total =
    List.fold_left (fun acc (_, _, _, _, (_, _, _, l)) -> acc + l) 0 results
  in
  let stream_ms_total = total (fun (_, _, _, _, (_, ms, _, _)) -> ms) in
  let doc =
    Json.Obj
      [ ("suite", Json.String "serve");
        ("workload",
         Json.String (if !quick then "tpch-quick" else "tpch-22x3"));
        ("sf", Json.Float !sf);
        ("jobs", Json.Int !jobs);
        ("batch", Json.Int !batch);
        ("cold_plan_ms", Json.Float cold_total);
        ("warm_plan_ms", Json.Float warm_total);
        ("warm_speedup", Json.Float (cold_total /. Float.max warm_total 1e-6));
        ("divergences", Json.Int !divergences);
        ("stream",
         Json.Obj
           [ ("length", Json.Int !stream_len);
             ("repeat_rate", Json.Float 0.6);
             ("queries", Json.Int stream_queries_total);
             ("hits", Json.Int stream_hits_total);
             ("lookups", Json.Int stream_lookups_total);
             ("hit_rate",
              Json.Float
                (if stream_lookups_total = 0 then 0.0
                 else
                   float_of_int stream_hits_total
                   /. float_of_int stream_lookups_total));
             ("wall_ms", Json.Float stream_ms_total);
             ("throughput_qps",
              Json.Float
                (if stream_ms_total <= 0.0 then 0.0
                 else
                   1000.0
                   *. float_of_int stream_queries_total
                   /. stream_ms_total)) ]);
        ("per_scenario",
         Json.List
           (List.map
              (fun (scn, c, w, _, (n, ms, h, l)) ->
                Json.Obj
                  [ ("scenario", Json.String scn);
                    ("cold_plan_ms", Json.Float c);
                    ("warm_plan_ms", Json.Float w);
                    ("warm_speedup",
                     Json.Float (c /. Float.max w 1e-6));
                    ("stream_queries", Json.Int n);
                    ("stream_wall_ms", Json.Float ms);
                    ("stream_hits", Json.Int h);
                    ("stream_lookups", Json.Int l) ])
              results));
        ("per_query",
         Json.List (List.concat_map (fun (_, _, _, pq, _) -> pq) results)) ]
  in
  let oc = open_out !out in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "\ntotal plan: cold %.2f ms, warm %.2f ms (%.1fx); stream hit rate \
     %d/%d; report: %s\n"
    cold_total warm_total
    (cold_total /. Float.max warm_total 1e-6)
    stream_hits_total stream_lookups_total !out;
  if !divergences > 0 then exit 2
