(* exec_bench — sequential vs parallel executor wall-clock over the
   TPC-H workload.

   For every (query, scenario) configuration the query is planned by the
   authorization-aware optimizer, then the extended plan — Encrypt /
   Decrypt nodes included — is executed over generated TPC-H data twice:
   sequentially and on a [--jobs]-domain pool. Both runs must produce
   byte-identical tables (same attrs, same rows in the same order,
   ciphertext bytes included); any divergence fails the benchmark.
   Timings are the minimum over [--repeats] runs.

     dune exec bench/exec_bench.exe              # full 22 x 3 suite
     dune exec bench/exec_bench.exe -- --quick   # 4-query smoke subset
     dune exec bench/exec_bench.exe -- --jobs 8 --sf 0.002 -o out.json

   The report (default [BENCH_exec.json]) carries aggregate and
   per-configuration numbers plus [host_cores]
   (Domain.recommended_domain_count): on a single-core host the parallel
   run cannot beat the sequential one — domains just interleave — so
   read the speedup together with that field. *)

open Relalg

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let best_of n f =
  let result, first = time_ms f in
  let best = ref first in
  for _ = 2 to n do
    let _, ms = time_ms f in
    if ms < !best then best := ms
  done;
  (result, !best)

(* byte identity: header, row order and every value (ciphertext payloads
   included) must coincide — much stronger than [Table.equal_bag] *)
let byte_identical a b =
  List.equal Attr.equal (Engine.Table.attrs a) (Engine.Table.attrs b)
  && List.equal
       (fun (r1 : Value.t array) r2 -> r1 = r2)
       (Engine.Table.rows a) (Engine.Table.rows b)

let () =
  let quick = ref false in
  let out = ref "BENCH_exec.json" in
  let repeats = ref 3 in
  let jobs = ref 4 in
  let sf = ref 0.001 in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "-o" :: file :: rest ->
        out := file;
        parse rest
    | "--repeats" :: n :: rest ->
        repeats := int_of_string n;
        parse rest
    | "--jobs" :: n :: rest ->
        jobs := int_of_string n;
        parse rest
    | "--sf" :: f :: rest ->
        sf := float_of_string f;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "exec_bench: unknown argument %s\n\
           usage: exec_bench [--quick] [--jobs N] [--repeats N] [--sf F] \
           [-o FILE]\n"
          arg;
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  Planner.Optimizer.self_check := false;
  let data = Tpch.Tpch_data.generate ~sf:!sf () in
  let tables =
    List.map
      (fun (s : Schema.t) ->
        (s.Schema.name, Engine.Table.of_schema s (List.assoc s.Schema.name data)))
      Tpch.Tpch_schema.all
  in
  let queries =
    if !quick then [ 1; 3; 5; 10 ]
    else List.map (fun (q, _, _) -> q) Tpch.Tpch_queries.all
  in
  let configs =
    List.concat_map
      (fun q -> List.map (fun sc -> (q, sc)) Tpch.Scenarios.all)
      queries
  in
  let pool = Par.create ~name:"exec" !jobs in
  let mismatches = ref 0 in
  let rows =
    List.map
      (fun (q, sc) ->
        let r =
          Tpch.Scenarios.optimize ~sf:!sf ~fold_leaf_filters:false ~scenario:sc
            (Tpch.Tpch_queries.query q)
        in
        let plan = r.Planner.Optimizer.extended.Authz.Extend.plan in
        let ctx () =
          (* fresh keyring per run: both modes encrypt from the same
             derived streams, so ciphertexts can be compared bytewise *)
          let keyring = Mpq_crypto.Keyring.create ~seed:42L () in
          let crypto = Engine.Enc_exec.make keyring r.Planner.Optimizer.clusters in
          Engine.Exec.context ~udfs:Tpch.Tpch_queries.udf_impls ~crypto tables
        in
        let seq, seq_ms = best_of !repeats (fun () -> Engine.Exec.run (ctx ()) plan) in
        let par, par_ms =
          best_of !repeats (fun () -> Engine.Exec.run ~pool (ctx ()) plan)
        in
        let same = byte_identical seq par in
        if not same then begin
          incr mismatches;
          Printf.eprintf "exec_bench: q%d %s: parallel result differs\n" q
            (Tpch.Scenarios.name sc)
        end;
        Printf.printf "q%-3d %-7s %9.2f ms -> %9.2f ms  (%4.2fx)%s\n%!" q
          (Tpch.Scenarios.name sc) seq_ms par_ms (seq_ms /. par_ms)
          (if same then "" else "  RESULT MISMATCH");
        (q, sc, seq_ms, par_ms, Engine.Table.cardinality seq, same))
      configs
  in
  Par.shutdown pool;
  let total f = List.fold_left (fun acc row -> acc +. f row) 0.0 rows in
  let seq_total = total (fun (_, _, s, _, _, _) -> s) in
  let par_total = total (fun (_, _, _, p, _, _) -> p) in
  let doc =
    Json.Obj
      [ ("suite", Json.String "exec");
        ("workload",
         Json.String (if !quick then "tpch-quick" else "tpch-22x3"));
        ("sf", Json.Float !sf);
        ("jobs", Json.Int !jobs);
        ("host_cores", Json.Int (Domain.recommended_domain_count ()));
        ("repeats", Json.Int !repeats);
        ("configs", Json.Int (List.length rows));
        ("sequential_ms", Json.Float seq_total);
        ("parallel_ms", Json.Float par_total);
        ("speedup", Json.Float (seq_total /. par_total));
        ("byte_identical", Json.Bool (!mismatches = 0));
        ("per_config",
         Json.List
           (List.map
              (fun (q, sc, seq_ms, par_ms, card, same) ->
                Json.Obj
                  [ ("query", Json.Int q);
                    ("scenario", Json.String (Tpch.Scenarios.name sc));
                    ("sequential_ms", Json.Float seq_ms);
                    ("parallel_ms", Json.Float par_ms);
                    ("rows", Json.Int card);
                    ("identical", Json.Bool same) ])
              rows)) ]
  in
  let oc = open_out !out in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "\ntotal %.2f ms -> %.2f ms (%.2fx at %d jobs, %d cores); report: %s\n"
    seq_total par_total
    (seq_total /. par_total)
    !jobs
    (Domain.recommended_domain_count ())
    !out;
  if !mismatches > 0 then exit 2
