(* exec_bench — sequential vs parallel executor wall-clock over the
   TPC-H workload, with per-operator and per-scheme breakdowns.

   For every (query, scenario) configuration the query is planned by the
   authorization-aware optimizer, then the extended plan — Encrypt /
   Decrypt nodes included — is executed over generated TPC-H data twice:
   sequentially and on a [--jobs]-domain pool. Both runs must produce
   byte-identical tables (same attrs, same rows in the same order,
   ciphertext bytes included); any divergence fails the benchmark with
   exit code 2. Timings are the minimum over [--repeats] runs.

   A third, untimed instrumented sequential pass per configuration
   collects the Obs metrics the engine records — [exec.op_s.<operator>]
   (flat per-operator time, child recursion excluded) and
   [enc_exec.pool_s] / [enc_exec.enc_s.<scheme>] /
   [enc_exec.dec_s.<scheme>] (randomness-pool and per-crypto-scheme
   kernel time) — aggregated per scenario and overall into the report.

     dune exec bench/exec_bench.exe              # full 22 x 3 suite
     dune exec bench/exec_bench.exe -- --quick   # 4-query smoke subset
     dune exec bench/exec_bench.exe -- --jobs 8 --sf 0.002 -o out.json

   The report (default [BENCH_exec.json]) carries aggregate and
   per-configuration numbers plus [host_cores]
   (Domain.recommended_domain_count): on a single-core host the parallel
   run cannot beat the sequential one — domains just interleave — so
   read the parallel speedup together with that field. The
   [row_baseline] block compares the sequential encrypted-scenario
   totals against the last row-at-a-time engine's committed numbers
   (same sf, same suite, single core) — that ratio is a single-core
   kernel speedup, independent of [--jobs]. *)

open Relalg

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let best_of n f =
  let result, first = time_ms f in
  let best = ref first in
  for _ = 2 to n do
    let _, ms = time_ms f in
    if ms < !best then best := ms
  done;
  (result, !best)

(* byte identity: header, row order and every value (ciphertext payloads
   included) must coincide — much stronger than [Table.equal_bag] *)
let byte_identical a b =
  List.equal Attr.equal (Engine.Table.attrs a) (Engine.Table.attrs b)
  && List.equal
       (fun (r1 : Value.t array) r2 -> r1 = r2)
       (Engine.Table.rows a) (Engine.Table.rows b)

(* --- breakdown accumulation ------------------------------------------ *)

(* name -> accumulated seconds, insertion-agnostic, reported sorted *)
type acc = (string, float ref) Hashtbl.t

let acc_create () : acc = Hashtbl.create 16

let acc_add (t : acc) name s =
  match Hashtbl.find_opt t name with
  | Some r -> r := !r +. s
  | None -> Hashtbl.add t name (ref s)

let acc_sorted (t : acc) =
  List.sort compare (Hashtbl.fold (fun k r l -> (k, !r) :: l) t [])

let acc_json t = Json.Obj (List.map (fun (k, s) -> (k, Json.Float s)) (acc_sorted t))

(* pull the flat metrics out of [Obs.render_json] as (name, total_s) *)
let obs_metrics () =
  match Obs.render_json () with
  | Json.Obj fields -> (
      match List.assoc_opt "metrics" fields with
      | Some (Json.Obj metrics) ->
          List.filter_map
            (fun (name, v) ->
              match v with
              | Json.Obj mf -> (
                  match List.assoc_opt "total" mf with
                  | Some (Json.Float total) -> Some (name, total)
                  | Some (Json.Int total) -> Some (name, float_of_int total)
                  | _ -> None)
              | _ -> None)
            metrics
      | _ -> [])
  | _ -> []

let strip prefix name =
  let lp = String.length prefix in
  if String.length name > lp && String.sub name 0 lp = prefix then
    Some (String.sub name lp (String.length name - lp))
  else None

(* route a raw metric name into the two breakdown tables *)
let route ~ops ~schemes (name, total) =
  match strip "exec.op_s." name with
  | Some tag -> acc_add ops tag total
  | None -> (
      match strip "enc_exec.enc_s." name with
      | Some scheme -> acc_add schemes ("enc." ^ scheme) total
      | None -> (
          match strip "enc_exec.dec_s." name with
          | Some scheme -> acc_add schemes ("dec." ^ scheme) total
          | None ->
              if name = "enc_exec.pool_s" then acc_add schemes "pool" total))

(* --- row-at-a-time baseline ------------------------------------------ *)

(* Sequential encrypted-scenario totals of the last row-at-a-time engine
   (commit 10815d1's BENCH_exec.json: full 22x3 suite, sf 0.001,
   repeats 2, host_cores 1), summed over its per_config entries. The
   columnar engine's sequential totals divide into these to give the
   single-core kernel speedup the report carries. *)
let row_baseline_sf = 0.001
let row_baseline_uapenc_ms = 9042.6
let row_baseline_uapmix_ms = 11184.4

let () =
  let quick = ref false in
  let out = ref "BENCH_exec.json" in
  let repeats = ref 3 in
  let jobs = ref 4 in
  let sf = ref 0.001 in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "-o" :: file :: rest ->
        out := file;
        parse rest
    | "--repeats" :: n :: rest ->
        repeats := int_of_string n;
        parse rest
    | "--jobs" :: n :: rest ->
        jobs := int_of_string n;
        parse rest
    | "--sf" :: f :: rest ->
        sf := float_of_string f;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "exec_bench: unknown argument %s\n\
           usage: exec_bench [--quick] [--jobs N] [--repeats N] [--sf F] \
           [-o FILE]\n"
          arg;
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  Planner.Optimizer.self_check := false;
  let data = Tpch.Tpch_data.generate ~sf:!sf () in
  let tables =
    List.map
      (fun (s : Schema.t) ->
        (s.Schema.name, Engine.Table.of_schema s (List.assoc s.Schema.name data)))
      Tpch.Tpch_schema.all
  in
  let queries =
    if !quick then [ 1; 3; 5; 10 ]
    else List.map (fun (q, _, _) -> q) Tpch.Tpch_queries.all
  in
  let configs =
    List.concat_map
      (fun q -> List.map (fun sc -> (q, sc)) Tpch.Scenarios.all)
      queries
  in
  let pool = Par.create ~name:"exec" !jobs in
  let mismatches = ref 0 in
  (* overall and per-scenario breakdown accumulators *)
  let all_ops = acc_create () and all_schemes = acc_create () in
  let scen_tables =
    List.map
      (fun sc ->
        (Tpch.Scenarios.name sc, (acc_create (), acc_create (), ref 0.0, ref 0.0)))
      Tpch.Scenarios.all
  in
  let rows =
    List.map
      (fun (q, sc) ->
        let r =
          Tpch.Scenarios.optimize ~sf:!sf ~fold_leaf_filters:false ~scenario:sc
            (Tpch.Tpch_queries.query q)
        in
        let plan = r.Planner.Optimizer.extended.Authz.Extend.plan in
        let ctx () =
          (* fresh keyring per run: both modes encrypt from the same
             derived streams, so ciphertexts can be compared bytewise *)
          let keyring = Mpq_crypto.Keyring.create ~seed:42L () in
          let crypto = Engine.Enc_exec.make keyring r.Planner.Optimizer.clusters in
          Engine.Exec.context ~udfs:Tpch.Tpch_queries.udf_impls ~crypto tables
        in
        let seq, seq_ms = best_of !repeats (fun () -> Engine.Exec.run (ctx ()) plan) in
        let par, par_ms =
          best_of !repeats (fun () -> Engine.Exec.run ~pool (ctx ()) plan)
        in
        let same = byte_identical seq par in
        if not same then begin
          incr mismatches;
          Printf.eprintf "exec_bench: q%d %s: parallel result differs\n" q
            (Tpch.Scenarios.name sc)
        end;
        (* untimed instrumented pass: per-operator / per-scheme metrics *)
        Obs.set_enabled true;
        Obs.reset ();
        ignore (Engine.Exec.run (ctx ()) plan);
        let metrics = obs_metrics () in
        Obs.set_enabled false;
        let ops, schemes, scen_seq, scen_par =
          List.assoc (Tpch.Scenarios.name sc) scen_tables
        in
        List.iter (route ~ops ~schemes) metrics;
        List.iter (route ~ops:all_ops ~schemes:all_schemes) metrics;
        scen_seq := !scen_seq +. seq_ms;
        scen_par := !scen_par +. par_ms;
        Printf.printf "q%-3d %-7s %9.2f ms -> %9.2f ms  (%4.2fx)%s\n%!" q
          (Tpch.Scenarios.name sc) seq_ms par_ms (seq_ms /. par_ms)
          (if same then "" else "  RESULT MISMATCH");
        (q, sc, seq_ms, par_ms, Engine.Table.cardinality seq, same))
      configs
  in
  Par.shutdown pool;
  let total f = List.fold_left (fun acc row -> acc +. f row) 0.0 rows in
  let seq_total = total (fun (_, _, s, _, _, _) -> s) in
  let par_total = total (fun (_, _, _, p, _, _) -> p) in
  let scenario_seq name =
    let _, _, s, _ = List.assoc name scen_tables in
    !s
  in
  (* the row-baseline comparison only means something on the same
     workload the baseline was measured on *)
  let baseline_applicable = (not !quick) && !sf = row_baseline_sf in
  let row_baseline_json =
    if not baseline_applicable then Json.Null
    else
      let enc = scenario_seq "UAPenc" and mix = scenario_seq "UAPmix" in
      Json.Obj
        [ ("sf", Json.Float row_baseline_sf);
          ("row_uapenc_sequential_ms", Json.Float row_baseline_uapenc_ms);
          ("row_uapmix_sequential_ms", Json.Float row_baseline_uapmix_ms);
          ("columnar_uapenc_sequential_ms", Json.Float enc);
          ("columnar_uapmix_sequential_ms", Json.Float mix);
          ("speedup_uapenc", Json.Float (row_baseline_uapenc_ms /. enc));
          ("speedup_uapmix", Json.Float (row_baseline_uapmix_ms /. mix)) ]
  in
  let doc =
    Json.Obj
      [ ("suite", Json.String "exec");
        ("workload",
         Json.String (if !quick then "tpch-quick" else "tpch-22x3"));
        ("sf", Json.Float !sf);
        ("jobs", Json.Int !jobs);
        ("host_cores", Json.Int (Domain.recommended_domain_count ()));
        ("repeats", Json.Int !repeats);
        ("configs", Json.Int (List.length rows));
        ("sequential_ms", Json.Float seq_total);
        ("parallel_ms", Json.Float par_total);
        ("speedup", Json.Float (seq_total /. par_total));
        ("byte_identical", Json.Bool (!mismatches = 0));
        ("per_operator_s", acc_json all_ops);
        ("per_scheme_s", acc_json all_schemes);
        ("row_baseline", row_baseline_json);
        ("per_scenario",
         Json.List
           (List.map
              (fun (name, (ops, schemes, s, p)) ->
                Json.Obj
                  [ ("scenario", Json.String name);
                    ("sequential_ms", Json.Float !s);
                    ("parallel_ms", Json.Float !p);
                    ("per_operator_s", acc_json ops);
                    ("per_scheme_s", acc_json schemes) ])
              scen_tables));
        ("per_config",
         Json.List
           (List.map
              (fun (q, sc, seq_ms, par_ms, card, same) ->
                Json.Obj
                  [ ("query", Json.Int q);
                    ("scenario", Json.String (Tpch.Scenarios.name sc));
                    ("sequential_ms", Json.Float seq_ms);
                    ("parallel_ms", Json.Float par_ms);
                    ("rows", Json.Int card);
                    ("identical", Json.Bool same) ])
              rows)) ]
  in
  let oc = open_out !out in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "\ntotal %.2f ms -> %.2f ms (%.2fx at %d jobs, %d cores); report: %s\n"
    seq_total par_total
    (seq_total /. par_total)
    !jobs
    (Domain.recommended_domain_count ())
    !out;
  Printf.printf "\nper-scheme crypto kernel time (all configs, sequential):\n";
  List.iter
    (fun (k, s) -> Printf.printf "  %-10s %9.2f ms\n" k (s *. 1000.0))
    (acc_sorted all_schemes);
  Printf.printf "\nper-operator time (all configs, sequential, flat):\n";
  List.iter
    (fun (k, s) -> Printf.printf "  %-12s %9.2f ms\n" k (s *. 1000.0))
    (acc_sorted all_ops);
  if baseline_applicable then begin
    let enc = scenario_seq "UAPenc" and mix = scenario_seq "UAPmix" in
    Printf.printf
      "\nvs row-at-a-time baseline (single-core sequential totals):\n\
      \  UAPenc %9.2f ms -> %9.2f ms  (%4.2fx)\n\
      \  UAPmix %9.2f ms -> %9.2f ms  (%4.2fx)\n"
      row_baseline_uapenc_ms enc
      (row_baseline_uapenc_ms /. enc)
      row_baseline_uapmix_ms mix
      (row_baseline_uapmix_ms /. mix)
  end;
  if !mismatches > 0 then exit 2
