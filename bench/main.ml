(* Benchmark harness regenerating the paper's evaluation (Sec. 7):
   Figure 9  — normalized economic cost of each of the 22 TPC-H queries
               under the UA / UAPenc / UAPmix authorization scenarios;
   Figure 10 — cumulative normalized cost across the queries;
   summary   — the headline savings percentages (paper: UAPenc 54.2%,
               UAPmix 71.3% vs UA);
   ablation  — design-choice studies (udf delegation, provider price
               spread, DP vs naive user-only assignment, scheme costs);
   micro     — bechamel microbenchmarks of the planning primitives. *)

let sf = 1.0 (* cost-model scale factor: the paper's 1 GB configuration *)

type row = { q : int; name : string; costs : (Tpch.Scenarios.t * float) list }

let scenario_cost scenario plan =
  let r = Tpch.Scenarios.optimize ~sf ~scenario plan in
  Planner.Cost.total r.Planner.Optimizer.cost

let compute_rows () =
  List.map
    (fun (q, name, build) ->
      let costs =
        List.map
          (fun sc -> (sc, scenario_cost sc (build ())))
          Tpch.Scenarios.all
      in
      { q; name; costs })
    Tpch.Tpch_queries.all

let cost_of row sc = List.assoc sc row.costs

let bar width fraction =
  let n = int_of_float (fraction *. float_of_int width) in
  String.make (max 0 (min width n)) '#'

let fig9 rows =
  print_endline
    "=== Figure 9: normalized economic cost per query (UA = 1.00) ===";
  print_endline
    "  q  |     UA |  UAPenc | UAPmix  | 0        UAPenc  (#) / UAPmix (*)  1";
  List.iter
    (fun row ->
      let ua = cost_of row Tpch.Scenarios.UA in
      let enc = cost_of row Tpch.Scenarios.UAPenc /. ua in
      let mix = cost_of row Tpch.Scenarios.UAPmix /. ua in
      Printf.printf " %3d | 1.0000 | %7.4f | %7.4f | %-38s\n" row.q enc mix
        (bar 38 enc ^ "\n     |        |         |         | "
        ^ String.map (fun c -> if c = '#' then '*' else c) (bar 38 mix)))
    rows;
  print_newline ()

let fig10 rows =
  print_endline
    "=== Figure 10: cumulative normalized cost (per-query UA cost = 1) ===";
  print_endline "  q  |      UA |  UAPenc |  UAPmix";
  let cum = ref (0.0, 0.0, 0.0) in
  List.iter
    (fun row ->
      let ua = cost_of row Tpch.Scenarios.UA in
      let a, b, c = !cum in
      cum :=
        ( a +. 1.0,
          b +. (cost_of row Tpch.Scenarios.UAPenc /. ua),
          c +. (cost_of row Tpch.Scenarios.UAPmix /. ua) );
      let a, b, c = !cum in
      Printf.printf " %3d | %7.3f | %7.3f | %7.3f\n" row.q a b c)
    rows;
  print_newline ()

let summary rows =
  let total sc =
    List.fold_left
      (fun acc row -> acc +. (cost_of row sc /. cost_of row Tpch.Scenarios.UA))
      0.0 rows
  in
  let ua = total Tpch.Scenarios.UA in
  let enc = total Tpch.Scenarios.UAPenc in
  let mix = total Tpch.Scenarios.UAPmix in
  print_endline "=== Summary: savings vs UA (paper: 54.2% / 71.3%) ===";
  Printf.printf "  UAPenc saving: %5.1f%%\n" (100.0 *. (1.0 -. (enc /. ua)));
  Printf.printf "  UAPmix saving: %5.1f%%\n" (100.0 *. (1.0 -. (mix /. ua)));
  print_newline ()

(* --- ablations ------------------------------------------------------ *)

let ablation_udf () =
  print_endline "=== Ablation: delegating udf computation (Sec. 7) ===";
  print_endline
    "A computation-heavy analytics udf (100x relational cost) over the";
  print_endline
    "filtered lineitem: pinned to plaintext-authorized subjects unless";
  print_endline
    "declared evaluable over ciphertext (the paper's udf claim: delegating";
  print_endline "such computation to cheap providers dwarfs transfer costs).";
  let build () =
    let open Relalg in
    let lineitem =
      Plan.project
        (Attr.Set.of_names [ "l_extendedprice"; "l_quantity"; "l_shipdate" ])
        (Plan.base Tpch.Tpch_schema.lineitem)
    in
    let filtered =
      Plan.select
        (Predicate.conj
           [ Predicate.Cmp_const
               (Attr.make "l_shipdate", Predicate.Ge,
                Value.date_of_string "1995-01-01") ])
        lineitem
    in
    Plan.udf "ml_score"
      (Attr.Set.of_names [ "l_extendedprice"; "l_quantity" ])
      (Attr.make "l_extendedprice")
      filtered
  in
  let cost ~enc_capable sc =
    let config =
      if enc_capable then
        { Authz.Opreq.default with Authz.Opreq.enc_capable_udfs = [ "ml_score" ] }
      else Authz.Opreq.default
    in
    let plan, base =
      let plan', factors = Planner.Leaf_filters.fold (build ()) in
      ( plan',
        Planner.Leaf_filters.scale_stats
          (Tpch.Tpch_schema.base_stats ~sf) factors )
    in
    let r =
      Planner.Optimizer.plan
        ~policy:(Tpch.Scenarios.policy sc)
        ~subjects:Tpch.Scenarios.subjects ~config ~pricing:Tpch.Scenarios.pricing
        ~base ~deliver_to:Tpch.Scenarios.user plan
    in
    Planner.Cost.total r.Planner.Optimizer.cost
  in
  List.iter
    (fun sc ->
      let pinned = cost ~enc_capable:false sc in
      let delegable = cost ~enc_capable:true sc in
      Printf.printf
        "  %-7s  plaintext-only udf=$%.5f  enc-capable udf=$%.5f  saving=%.1f%%\n"
        (Tpch.Scenarios.name sc) pinned delegable
        (100.0 *. (1.0 -. (delegable /. pinned))))
    Tpch.Scenarios.all;
  print_newline ()

let ablation_spread () =
  print_endline
    "=== Ablation: provider price spread (savings need a market) ===";
  List.iter
    (fun spread ->
      let pricing =
        Planner.Pricing.make
          ~provider_multipliers:
            [ ("P1", 1.0); ("P2", 1.0 -. spread); ("P3", 1.0 +. spread) ]
          ()
      in
      let cost sc plan =
        let r =
          Planner.Optimizer.plan
            ~policy:(Tpch.Scenarios.policy sc)
            ~subjects:Tpch.Scenarios.subjects ~pricing
            ~base:(Tpch.Tpch_schema.base_stats ~sf)
            ~deliver_to:Tpch.Scenarios.user plan
        in
        Planner.Cost.total r.Planner.Optimizer.cost
      in
      let ratio =
        List.fold_left
          (fun acc (q, _, build) ->
            if q > 6 then acc (* six queries keep the sweep fast *)
            else
              acc
              +. (cost Tpch.Scenarios.UAPenc (build ())
                 /. cost Tpch.Scenarios.UA (build ())))
          0.0 Tpch.Tpch_queries.all
        /. 6.0
      in
      Printf.printf "  spread ±%2.0f%%: UAPenc/UA = %.3f\n" (spread *. 100.0)
        ratio)
    [ 0.0; 0.1; 0.2; 0.4 ];
  print_newline ()

let ablation_assignment () =
  print_endline "=== Ablation: DP assignment vs all-at-user baseline ===";
  List.iter
    (fun (q, _, build) ->
      if q <= 8 then begin
        let plan, base =
          let plan', factors = Planner.Leaf_filters.fold (build ()) in
          ( plan',
            Planner.Leaf_filters.scale_stats
              (Tpch.Tpch_schema.base_stats ~sf) factors )
        in
        let policy = Tpch.Scenarios.policy Tpch.Scenarios.UAPenc in
        let r =
          Planner.Optimizer.plan ~policy ~subjects:Tpch.Scenarios.subjects
            ~pricing:Tpch.Scenarios.pricing ~base
            ~deliver_to:Tpch.Scenarios.user plan
        in
        let dp = Planner.Cost.total r.Planner.Optimizer.cost in
        let user_assignment =
          Authz.Imap.map (fun _ -> Tpch.Scenarios.user)
            r.Planner.Optimizer.candidates
        in
        let ext =
          Authz.Extend.extend ~policy ~config:r.Planner.Optimizer.config
            ~assignment:user_assignment ~deliver_to:Tpch.Scenarios.user plan
        in
        let scheme_of =
          Authz.Plan_keys.actual_schemes ~original:plan ext
        in
        let cost_user =
          Planner.Cost.of_extended ~pricing:Tpch.Scenarios.pricing
            ~network:(Planner.Network.make ()) ~base ~scheme_of ext
        in
        Printf.printf "  Q%-2d  dp=$%.5f  user-only=$%.5f  gain=x%.2f\n" q dp
          (Planner.Cost.total cost_user)
          (Planner.Cost.total cost_user /. dp)
      end)
    Tpch.Tpch_queries.all;
  print_newline ()

let ablation_latency () =
  print_endline
    "=== Ablation: cost vs performance threshold (Sec. 7) ===";
  print_endline
    "Q3 under UAPenc with a shrinking latency bound: the optimizer trades";
  print_endline "money for speed once the bound bites.";
  let plan, base =
    let plan', factors = Planner.Leaf_filters.fold (Tpch.Tpch_queries.query 3) in
    ( plan',
      Planner.Leaf_filters.scale_stats (Tpch.Tpch_schema.base_stats ~sf) factors
    )
  in
  let solve max_latency =
    Planner.Optimizer.plan
      ~policy:(Tpch.Scenarios.policy Tpch.Scenarios.UAPenc)
      ~subjects:Tpch.Scenarios.subjects ~pricing:Tpch.Scenarios.pricing ~base
      ~deliver_to:Tpch.Scenarios.user ?max_latency plan
  in
  let free = solve None in
  let free_latency = free.Planner.Optimizer.cost.Planner.Cost.latency in
  Printf.printf "  unconstrained : $%.5f  latency %.1fs
"
    (Planner.Cost.total free.Planner.Optimizer.cost)
    free_latency;
  List.iter
    (fun f ->
      let r = solve (Some (free_latency *. f)) in
      Printf.printf "  bound %4.1fx   : $%.5f  latency %.1fs
" f
        (Planner.Cost.total r.Planner.Optimizer.cost)
        r.Planner.Optimizer.cost.Planner.Cost.latency)
    [ 1.0; 0.8; 0.5; 0.2 ];
  print_newline ()

let ablation_config () =
  print_endline
    "=== Ablation: which over-ciphertext computations matter ===";
  print_endline
    "UAPenc savings vs UA over six representative queries, with classes of";
  print_endline
    "encrypted computation disabled (everything disabled = conditions must";
  print_endline "run in plaintext, pinning work to authorized subjects):";
  let queries = [ 3; 4; 5; 10; 12; 13 ] in
  let savings config =
    let total sc =
      List.fold_left
        (fun acc q ->
          let plan, base =
            let plan', factors =
              Planner.Leaf_filters.fold (Tpch.Tpch_queries.query q)
            in
            ( plan',
              Planner.Leaf_filters.scale_stats
                (Tpch.Tpch_schema.base_stats ~sf) factors )
          in
          let r =
            Planner.Optimizer.plan ~policy:(Tpch.Scenarios.policy sc)
              ~subjects:Tpch.Scenarios.subjects ~config
              ~pricing:Tpch.Scenarios.pricing ~base
              ~deliver_to:Tpch.Scenarios.user plan
          in
          acc +. Planner.Cost.total r.Planner.Optimizer.cost)
        0.0 queries
    in
    100.0 *. (1.0 -. (total Tpch.Scenarios.UAPenc /. total Tpch.Scenarios.UA))
  in
  let open Authz.Opreq in
  List.iter
    (fun (label, config) ->
      Printf.printf "  %-28s %5.1f%%
" label (savings config))
    [ ("full (det+ope+phe)", default);
      ("no homomorphic addition", { default with addition_over_cipher = false });
      ("no order (OPE) either", { default with addition_over_cipher = false;
                                   order_over_cipher = false });
      ("nothing over ciphertext", strict) ];
  print_newline ()

let ablation_regulated () =
  print_endline
    "=== Ablation: regulated markets (Sec. 7's closing claim) ===";
  print_endline
    "Medical-style setting: only an expensive compliance-certified provider";
  print_endline
    "(2x price) may see plaintext. Granting cheap open-market providers";
  print_endline
    "encrypted visibility recovers most of the delegation savings:";
  let pricing =
    Planner.Pricing.make
      ~provider_multipliers:[ ("P1", 2.0); ("P2", 0.8); ("P3", 1.0) ]
      ()
  in
  let certified = Authz.Subject.provider "P1" in
  let policy ~open_market_enc =
    let user_rules =
      List.map
        (fun s ->
          Authz.Authorization.rule ~rel:s.Relalg.Schema.name
            ~plain:(List.map Relalg.Attr.name (Relalg.Schema.attr_list s))
            (To Tpch.Scenarios.user))
        Tpch.Tpch_schema.all
    in
    let certified_rules =
      List.map
        (fun s ->
          Authz.Authorization.rule ~rel:s.Relalg.Schema.name
            ~plain:(List.map Relalg.Attr.name (Relalg.Schema.attr_list s))
            (To certified))
        Tpch.Tpch_schema.all
    in
    let open_rules =
      if not open_market_enc then []
      else
        List.concat_map
          (fun s ->
            List.map
              (fun p ->
                Authz.Authorization.rule ~rel:s.Relalg.Schema.name
                  ~enc:(List.map Relalg.Attr.name (Relalg.Schema.attr_list s))
                  (To p))
              [ Authz.Subject.provider "P2"; Authz.Subject.provider "P3" ])
          Tpch.Tpch_schema.all
    in
    Authz.Authorization.make ~schemas:Tpch.Tpch_schema.all
      (user_rules @ certified_rules @ open_rules)
  in
  let total ~open_market_enc =
    List.fold_left
      (fun acc q ->
        let plan, base =
          let plan', factors =
            Planner.Leaf_filters.fold (Tpch.Tpch_queries.query q)
          in
          ( plan',
            Planner.Leaf_filters.scale_stats
              (Tpch.Tpch_schema.base_stats ~sf) factors )
        in
        let r =
          Planner.Optimizer.plan ~policy:(policy ~open_market_enc)
            ~subjects:Tpch.Scenarios.subjects ~pricing ~base
            ~deliver_to:Tpch.Scenarios.user plan
        in
        acc +. Planner.Cost.total r.Planner.Optimizer.cost)
      0.0 [ 3; 4; 5; 10; 12; 13 ]
  in
  let compliant_only = total ~open_market_enc:false in
  let with_enc = total ~open_market_enc:true in
  Printf.printf "  certified provider only : $%.5f
" compliant_only;
  Printf.printf "  + open market encrypted : $%.5f  (saving %.1f%%)
"
    with_enc
    (100.0 *. (1.0 -. (with_enc /. compliant_only)));
  print_newline ()

let keys_table () =
  print_endline
    "=== Key establishment per query (Def. 6.1), UAPenc ===";
  print_endline "  q  | clusters | schemes";
  List.iter
    (fun (q, _, build) ->
      let r = Tpch.Scenarios.optimize ~sf ~scenario:Tpch.Scenarios.UAPenc (build ()) in
      let clusters = r.Planner.Optimizer.clusters in
      let schemes =
        List.sort_uniq compare
          (List.map
             (fun c -> Mpq_crypto.Scheme.name c.Authz.Plan_keys.scheme)
             clusters)
      in
      Printf.printf " %3d | %8d | %s
" q (List.length clusters)
        (String.concat "," schemes))
    Tpch.Tpch_queries.all;
  print_newline ()

let calibration () =
  print_endline
    "=== Scheme cost calibration: measured engine throughput ===";
  print_endline
    "Encrypting 20k 8-byte integers per scheme (wall-clock), the basis of";
  print_endline "Scheme.cpu_cost_per_mb's ratios (Paillier >> OPE >> symmetric):";
  let keyring = Mpq_crypto.Keyring.create ~seed:17L () in
  let n = 20_000 in
  let values = List.init n (fun i -> Relalg.Value.Int (i mod 100_000)) in
  let time scheme =
    let ctx = Engine.Enc_exec.of_schemes keyring [ ("x", scheme) ] in
    let a = Relalg.Attr.make "x" in
    let t0 = Sys.time () in
    List.iter (fun v -> ignore (Engine.Enc_exec.encrypt_value ctx a v)) values;
    Sys.time () -. t0
  in
  let det = time Mpq_crypto.Scheme.Det in
  let rnd = time Mpq_crypto.Scheme.Rnd in
  let ope = time Mpq_crypto.Scheme.Ope in
  (* Paillier over a small sample, scaled up (it is three to four orders
     of magnitude slower) *)
  let phe10 =
    let ctx = Engine.Enc_exec.of_schemes keyring [ ("x", Mpq_crypto.Scheme.Phe) ] in
    let a = Relalg.Attr.make "x" in
    let t0 = Sys.time () in
    List.iteri
      (fun i v ->
        if i < n / 100 then ignore (Engine.Enc_exec.encrypt_value ctx a v))
      values;
    Sys.time () -. t0
  in
  let phe = phe10 *. 100.0 in
  Printf.printf "  det  %8.3fs   (1.0x)
" det;
  Printf.printf "  rnd  %8.3fs   (%.1fx det)
" rnd (rnd /. det);
  Printf.printf "  ope  %8.3fs   (%.1fx det)
" ope (ope /. det);
  Printf.printf "  phe  %8.3fs   (%.0fx det, extrapolated from %d values)
"
    phe (phe /. det) (n / 100);
  print_newline ()

let exec_overhead () =
  print_endline
    "=== Encrypted execution overhead (engine, sf=0.002, wall-clock) ===";
  print_endline
    "Plaintext execution vs the UAPenc extended plan over real ciphertext";
  print_endline "(CryptDB-style overhead measurement):";
  let sf_exec = 0.002 in
  let data = Tpch.Tpch_data.generate ~sf:sf_exec () in
  let tables =
    List.map
      (fun s ->
        ( s.Relalg.Schema.name,
          Engine.Table.of_schema s (List.assoc s.Relalg.Schema.name data) ))
      Tpch.Tpch_schema.all
  in
  List.iter
    (fun q ->
      let plan = Tpch.Tpch_queries.query q in
      let t0 = Sys.time () in
      let plain =
        Engine.Exec.run
          (Engine.Exec.context ~udfs:Tpch.Tpch_queries.udf_impls tables)
          plan
      in
      let t_plain = Sys.time () -. t0 in
      let r =
        Tpch.Scenarios.optimize ~sf:sf_exec ~fold_leaf_filters:false
          ~scenario:Tpch.Scenarios.UAPenc plan
      in
      let keyring = Mpq_crypto.Keyring.create ~seed:5L () in
      let crypto =
        Engine.Enc_exec.make keyring r.Planner.Optimizer.clusters
      in
      let t0 = Sys.time () in
      let enc =
        Engine.Exec.run
          (Engine.Exec.context ~udfs:Tpch.Tpch_queries.udf_impls ~crypto
             tables)
          r.Planner.Optimizer.extended.Authz.Extend.plan
      in
      let t_enc = Sys.time () -. t0 in
      Printf.printf
        "  Q%-2d  plain %6.3fs  encrypted %6.3fs  (x%.1f, %d rows%s)
" q
        t_plain t_enc
        (t_enc /. Float.max 1e-9 t_plain)
        (Engine.Table.cardinality enc)
        (if Engine.Table.equal_bag plain enc then ", results match"
         else ", MISMATCH"))
    [ 3; 6; 12; 13; 14 ];
  print_newline ()

(* --- microbenchmarks -------------------------------------------------- *)

let micro () =
  let open Bechamel in
  let plan3 = Tpch.Tpch_queries.query 3 in
  let policy = Tpch.Scenarios.policy Tpch.Scenarios.UAPenc in
  let config = Authz.Opreq.resolve_conflicts Authz.Opreq.default plan3 in
  let keyring = Mpq_crypto.Keyring.create () in
  let det = Mpq_crypto.Keyring.det_key keyring "k" in
  let ope = Mpq_crypto.Keyring.ope_key keyring "k" in
  let tests =
    Test.make_grouped ~name:"mpq"
      [ Test.make ~name:"profile:q3"
          (Staged.stage (fun () -> ignore (Authz.Profile.of_plan plan3)));
        Test.make ~name:"candidates:q3"
          (Staged.stage (fun () ->
               ignore
                 (Authz.Candidates.compute ~policy
                    ~subjects:Tpch.Scenarios.subjects ~config plan3)));
        Test.make ~name:"optimize:q3-UAPenc"
          (Staged.stage (fun () ->
               ignore
                 (Tpch.Scenarios.optimize ~sf ~scenario:Tpch.Scenarios.UAPenc
                    (Tpch.Tpch_queries.query 3))));
        Test.make ~name:"crypto:det-roundtrip"
          (Staged.stage (fun () ->
               ignore
                 (Mpq_crypto.Det.decrypt det
                    (Mpq_crypto.Det.encrypt det "hello world"))));
        Test.make ~name:"crypto:ope-encrypt"
          (Staged.stage (fun () -> ignore (Mpq_crypto.Ope.encrypt ope 123456)));
        (let lam =
           Authz.Candidates.compute ~policy ~subjects:Tpch.Scenarios.subjects
             ~config plan3
         in
         let assignment =
           Authz.Imap.map
             (fun cands -> Authz.Subject.Set.min_elt cands)
             lam
         in
         Test.make ~name:"extend:q3"
           (Staged.stage (fun () ->
                ignore
                  (Authz.Extend.extend ~policy ~config ~assignment plan3))));
        Test.make ~name:"joinorder:q5"
          (Staged.stage (fun () ->
               ignore
                 (Planner.Join_order.reorder
                    ~base:(Tpch.Tpch_schema.base_stats ~sf:1.0)
                    (Tpch.Tpch_queries.query 5))))
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  print_endline "=== Microbenchmarks (bechamel OLS, ns/run) ===";
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> Printf.printf "  %-28s %14.0f ns\n" name est
      | _ -> Printf.printf "  %-28s (no estimate)\n" name)
    rows;
  print_newline ()

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match mode with
  | "fig9" ->
      let rows = compute_rows () in
      fig9 rows
  | "fig10" ->
      let rows = compute_rows () in
      fig10 rows
  | "summary" ->
      let rows = compute_rows () in
      summary rows
  | "ablation" ->
      ablation_udf ();
      ablation_spread ();
      ablation_assignment ();
      ablation_latency ();
      ablation_config ();
      ablation_regulated ()
  | "keys" -> keys_table ()
  | "calibration" -> calibration ()
  | "exec" -> exec_overhead ()
  | "micro" -> micro ()
  | "all" | _ ->
      let rows = compute_rows () in
      fig9 rows;
      fig10 rows;
      summary rows;
      ablation_udf ();
      ablation_spread ();
      ablation_assignment ();
      ablation_latency ();
      ablation_config ();
      ablation_regulated ();
      keys_table ();
      exec_overhead ();
      calibration ();
      micro ()
