(* mqo_bench — what multi-query optimization buys, measured against the
   isolated baseline it must be indistinguishable from.

   Two workloads drive one sharing {!Serve.Service} (plan DAG, batch
   grouping, sub-plan result memoization, shared derivations) and an
   isolated oracle — an independent, fresh, [~sharing:false] service
   per query occurrence, planning and verifying its tree from scratch:

   - the TPC-H shapes, replayed as a duplicate-heavy stream in
     admission-bounded batches per scenario (cross-query and
     cross-batch sharing of whole plans and their subtrees);
   - random overlapping batches ([Gen.gen_batch]): a few shared cores
     under fresh single-operator tops, the within-batch sharing case.

   Every shared response is byte-compared against its isolated oracle
   response — ciphertext included. Any divergence makes the bench
   exit 2: the speedup numbers are meaningless unless sharing is
   invisible in the bytes.

     dune exec bench/mqo_bench.exe               # full suite
     dune exec bench/mqo_bench.exe -- --quick    # CI smoke subset
     dune exec bench/mqo_bench.exe -- --jobs 4 -o out.json

   The report is one JSON document (default [BENCH_mqo.json]) with
   shared vs isolated planning+verification and execution totals, the
   sub-plan cache hit rate, DAG sharing statistics, and the divergence
   count (always 0 on a successful exit).

   Jobs default to 1: per-response [plan_ms] is wall-clock measured
   inside each parallel planning task, so running the shared side's
   plan phase on N domains inflates every task with CPU contention the
   one-query-at-a-time isolated oracle never sees. At [--jobs 1] both
   sides time the same uncontended work; higher job counts are for
   exercising the parallel exec path, not for the speedup headline. *)

open Relalg

let byte_identical a b =
  List.equal Attr.equal (Engine.Table.attrs a) (Engine.Table.attrs b)
  && List.equal
       (fun (r1 : Value.t array) r2 -> r1 = r2)
       (Engine.Table.rows a) (Engine.Table.rows b)

let outcome_equal a b =
  match (a, b) with
  | Serve.Service.Table x, Serve.Service.Table y -> byte_identical x y
  | Serve.Service.Rejected x, Serve.Service.Rejected y -> x = y
  | _ -> false

(* the random-catalog fixtures the differential tests use *)
let gen_catalog_tables () =
  let mk schema n row =
    (schema.Schema.name, Engine.Table.of_schema schema (List.init n row))
  in
  let strs = [| "ga"; "bu"; "zo"; "meu" |] in
  [ mk Gen.rel1 17 (fun i ->
        [| Value.Int (i mod 7); Value.Int (i * 3 mod 11);
           Value.Str strs.(i mod 4); Value.Int (i mod 5) |]);
    mk Gen.rel2 13 (fun i ->
        [| Value.Int (i mod 7); Value.Int (i mod 9); Value.Str strs.(i mod 4) |]);
    mk Gen.rel3 11 (fun i -> [| Value.Int (i mod 6); Value.Int (i mod 4) |]) ]

let udf_impls =
  [ ( "f",
      fun vals ->
        let total =
          List.fold_left
            (fun acc v ->
              match Value.to_float v with Some f -> acc +. f | None -> acc)
            0.0 vals
        in
        Value.Int (int_of_float total mod 97) ) ]

type side = { mutable plan_ms : float; mutable exec_ms : float }

let add side (r : Serve.Service.response) =
  side.plan_ms <- side.plan_ms +. r.Serve.Service.plan_ms;
  side.exec_ms <- side.exec_ms +. r.Serve.Service.exec_ms

type sharing_totals = {
  mutable subplan_hits : int;
  mutable subplan_stores : int;
  mutable shared_execs : int;
  mutable derivations : int;
  mutable dag_nodes : int;
  mutable dag_occurrences : int;
  mutable dag_shared_nodes : int;
  mutable dag_shared_occurrences : int;
}

let absorb totals service =
  let s = Serve.Service.stats service in
  let d = Serve.Service.dag_stats service in
  totals.subplan_hits <- totals.subplan_hits + s.Serve.Service.subplan_hits;
  totals.subplan_stores <-
    totals.subplan_stores + s.Serve.Service.subplan_stores;
  totals.shared_execs <- totals.shared_execs + s.Serve.Service.shared_execs;
  totals.derivations <-
    totals.derivations + Serve.Service.derivations_shared service;
  totals.dag_nodes <- totals.dag_nodes + d.Planner.Dag.nodes;
  totals.dag_occurrences <- totals.dag_occurrences + d.Planner.Dag.occurrences;
  totals.dag_shared_nodes <-
    totals.dag_shared_nodes + d.Planner.Dag.shared_nodes;
  totals.dag_shared_occurrences <-
    totals.dag_shared_occurrences + d.Planner.Dag.shared_occurrences

let () =
  let quick = ref false in
  let out = ref "BENCH_mqo.json" in
  let sf = ref 0.001 in
  let jobs = ref 1 in
  let stream_len = ref 0 in
  let batch = ref 16 in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "-o" :: file :: rest ->
        out := file;
        parse rest
    | "--sf" :: f :: rest ->
        sf := float_of_string f;
        parse rest
    | "--jobs" :: n :: rest ->
        jobs := int_of_string n;
        parse rest
    | "--stream" :: n :: rest ->
        stream_len := int_of_string n;
        parse rest
    | "--batch" :: n :: rest ->
        batch := int_of_string n;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "mqo_bench: unknown argument %s\n\
           usage: mqo_bench [--quick] [--sf F] [--jobs N] [--stream N] \
           [--batch N] [-o FILE]\n"
          arg;
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  let stream_len = if !stream_len > 0 then !stream_len else if !quick then 24 else 132 in
  let queries =
    if !quick then [ 1; 3; 5; 10 ]
    else List.map (fun (q, _, _) -> q) Tpch.Tpch_queries.all
  in
  let scenarios =
    if !quick then [ List.hd Tpch.Scenarios.all ] else Tpch.Scenarios.all
  in
  let divergences = ref 0 in
  let diverge fmt =
    Printf.ksprintf
      (fun msg ->
        incr divergences;
        Printf.eprintf "mqo_bench: DIVERGENCE: %s\n%!" msg)
      fmt
  in
  let shared_side = { plan_ms = 0.0; exec_ms = 0.0 } in
  let isolated_side = { plan_ms = 0.0; exec_ms = 0.0 } in
  let totals =
    { subplan_hits = 0; subplan_stores = 0; shared_execs = 0; derivations = 0;
      dag_nodes = 0; dag_occurrences = 0; dag_shared_nodes = 0;
      dag_shared_occurrences = 0 }
  in
  let chunks n l =
    let rec go acc cur k = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | x :: rest ->
          if k = n then go (List.rev cur :: acc) [ x ] 1 rest
          else go acc (x :: cur) (k + 1) rest
    in
    go [] [] 0 l
  in
  Par.with_pool ~name:"mqo" !jobs @@ fun pool ->
  (* --- workload 1: TPC-H shapes as a duplicate-heavy stream --- *)
  let data = Tpch.Tpch_data.generate ~sf:!sf () in
  let tables =
    List.map
      (fun (s : Schema.t) ->
        (s.Schema.name, Engine.Table.of_schema s (List.assoc s.Schema.name data)))
      Tpch.Tpch_schema.all
  in
  let per_scenario =
    List.map
      (fun sc ->
        let scn = Tpch.Scenarios.name sc in
        let mk_service ?(sharing = true) () =
          Serve.Service.create ?pool ~sharing ~max_batch:!batch
            ~policy:(Tpch.Scenarios.policy sc)
            ~subjects:Tpch.Scenarios.subjects ~pricing:Tpch.Scenarios.pricing
            ~base:(Tpch.Tpch_schema.base_stats ~sf:!sf)
            ~deliver_to:Tpch.Scenarios.user ~udfs:Tpch.Tpch_queries.udf_impls
            ~tables ()
        in
        let shared = mk_service () in
        let events =
          Gen.gen_stream ~repeat_rate:0.7 ~mutation_rate:0.0
            ~pool:(Array.of_list queries) stream_len
            (Random.State.make [| 0x3c0; stream_len |])
        in
        let stream =
          List.filter_map
            (function Gen.Squery q -> Some q | Gen.Smutate -> None)
            events
        in
        let s_plan0 = shared_side.plan_ms and s_exec0 = shared_side.exec_ms in
        let i_plan0 = isolated_side.plan_ms in
        (* shared side: the stream in admission-bounded batches, every
           event rebuilding its query as a client would *)
        let responses =
          List.concat_map
            (fun round ->
              let rs =
                Serve.Service.submit_batch shared
                  (List.map Tpch.Tpch_queries.query round)
              in
              List.iter (add shared_side) rs;
              List.combine round rs)
            (chunks !batch stream)
        in
        (* isolated oracle: one fresh tree-planned service per event *)
        List.iter
          (fun (q, (r : Serve.Service.response)) ->
            let fresh = mk_service ~sharing:false () in
            let f = Serve.Service.submit fresh (Tpch.Tpch_queries.query q) in
            add isolated_side f;
            if not (outcome_equal f.Serve.Service.outcome r.Serve.Service.outcome)
            then diverge "q%d %s: shared bytes differ from isolated oracle" q scn)
          responses;
        absorb totals shared;
        let st = Serve.Service.stats shared in
        let shared_plan = shared_side.plan_ms -. s_plan0 in
        let isolated_plan = isolated_side.plan_ms -. i_plan0 in
        Printf.printf
          "%-7s %3d queries: plan+verify shared %8.2f ms, isolated %8.2f ms \
           (%5.1fx); sub-plan hit rate %.2f\n%!"
          scn (List.length stream) shared_plan isolated_plan
          (isolated_plan /. Float.max shared_plan 1e-6)
          (Serve.Service.subplan_hit_rate st);
        Json.Obj
          [ ("scenario", Json.String scn);
            ("stream_queries", Json.Int (List.length stream));
            ("shared_plan_ms", Json.Float shared_plan);
            ("isolated_plan_ms", Json.Float isolated_plan);
            ("plan_speedup",
             Json.Float (isolated_plan /. Float.max shared_plan 1e-6));
            ("shared_exec_ms", Json.Float (shared_side.exec_ms -. s_exec0));
            ("subplan_hit_rate",
             Json.Float (Serve.Service.subplan_hit_rate st)) ])
      scenarios
  in
  (* --- workload 2: random overlapping batches (within-batch cores) --- *)
  let rand = Random.State.make [| 0xA11; 9 |] in
  let policy = Gen.gen_policy rand in
  let rounds = if !quick then 4 else 12 in
  let per_round = if !quick then 6 else 8 in
  let shared_rand =
    Serve.Service.create ?pool ~policy ~subjects:Gen.subjects
      ~tables:(gen_catalog_tables ()) ~udfs:udf_impls ~deliver_to:Gen.user ()
  in
  let rb_shared0 = shared_side.plan_ms and rb_isolated0 = isolated_side.plan_ms in
  let rb_planned = ref 0 and rb_queries = ref 0 in
  for _ = 1 to rounds do
    let batch_qs = Gen.gen_batch ~overlap:0.8 per_round rand in
    let rs = Serve.Service.submit_batch shared_rand batch_qs in
    List.iter (add shared_side) rs;
    List.iter2
      (fun q (r : Serve.Service.response) ->
        incr rb_queries;
        (match r.Serve.Service.outcome with
        | Serve.Service.Table _ -> incr rb_planned
        | _ -> ());
        let fresh =
          Serve.Service.create ?pool ~sharing:false ~policy
            ~subjects:Gen.subjects ~tables:(gen_catalog_tables ())
            ~udfs:udf_impls ~deliver_to:Gen.user ()
        in
        let f = Serve.Service.submit fresh q in
        add isolated_side f;
        if not (outcome_equal f.Serve.Service.outcome r.Serve.Service.outcome)
        then diverge "random batch query: shared bytes differ from oracle")
      batch_qs rs
  done;
  absorb totals shared_rand;
  let rb_shared = shared_side.plan_ms -. rb_shared0 in
  let rb_isolated = isolated_side.plan_ms -. rb_isolated0 in
  Printf.printf
    "random  %3d queries (%d planned): plan+verify shared %8.2f ms, isolated \
     %8.2f ms (%5.1fx); sub-plan hit rate %.2f\n%!"
    !rb_queries !rb_planned rb_shared rb_isolated
    (rb_isolated /. Float.max rb_shared 1e-6)
    (Serve.Service.subplan_hit_rate (Serve.Service.stats shared_rand));
  (* --- report --- *)
  let plan_speedup =
    isolated_side.plan_ms /. Float.max shared_side.plan_ms 1e-6
  in
  let hit_rate =
    let h = totals.subplan_hits and s = totals.subplan_stores in
    if h + s = 0 then 0.0 else float_of_int h /. float_of_int (h + s)
  in
  let doc =
    Json.Obj
      [ ("suite", Json.String "mqo");
        ("workload",
         Json.String (if !quick then "tpch-quick+random" else "tpch-22x3+random"));
        ("sf", Json.Float !sf);
        ("jobs", Json.Int !jobs);
        ("batch", Json.Int !batch);
        ("stream_len", Json.Int stream_len);
        ("shared_plan_ms", Json.Float shared_side.plan_ms);
        ("isolated_plan_ms", Json.Float isolated_side.plan_ms);
        ("plan_speedup", Json.Float plan_speedup);
        ("shared_exec_ms", Json.Float shared_side.exec_ms);
        ("isolated_exec_ms", Json.Float isolated_side.exec_ms);
        ("exec_speedup",
         Json.Float (isolated_side.exec_ms /. Float.max shared_side.exec_ms 1e-6));
        ("subplan_hits", Json.Int totals.subplan_hits);
        ("subplan_stores", Json.Int totals.subplan_stores);
        ("subplan_hit_rate", Json.Float hit_rate);
        ("shared_execs", Json.Int totals.shared_execs);
        ("derivations_shared", Json.Int totals.derivations);
        ("dag",
         Json.Obj
           [ ("nodes", Json.Int totals.dag_nodes);
             ("occurrences", Json.Int totals.dag_occurrences);
             ("shared_nodes", Json.Int totals.dag_shared_nodes);
             ("shared_occurrences", Json.Int totals.dag_shared_occurrences) ]);
        ("divergences", Json.Int !divergences);
        ("per_scenario", Json.List per_scenario) ]
  in
  let oc = open_out !out in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "\ntotal plan+verify: shared %.2f ms, isolated %.2f ms (%.1fx); sub-plan \
     hit rate %.2f; %d divergences; report: %s\n"
    shared_side.plan_ms isolated_side.plan_ms plan_speedup hit_rate
    !divergences !out;
  if !divergences > 0 then exit 2
