(* load_bench — closed-loop multi-client load against the socket
   server, over real sockets.

   One in-process {!Serve.Server} (TCP loopback, kernel-picked port,
   event loop on its own domain) serves N client domains. Each client
   is a closed loop: it sends a burst of requests, waits for every
   response of the burst, repeats — so offered load tracks service
   capacity and the latency distribution is honest (no coordinated
   omission from an open-loop injector). Requests cycle a small pool
   of SQL queries against the paper's running-example policy, so the
   plan cache warms quickly and the measured path is the serving
   layer itself: admission, dispatch, formatting, socket IO.

   The sweep crosses client counts with backlog bounds. Small
   backlogs under bursty concurrent clients force admission control:
   the refused requests come back as structured shed lines and are
   reported as a rate, not an error. Every request must end in
   exactly one structured response — a request with no reply
   (unanswered) fails the bench with exit 2.

     dune exec bench/load_bench.exe               # full sweep
     dune exec bench/load_bench.exe -- --quick    # CI smoke subset
     dune exec bench/load_bench.exe -- --clients 1,4 --backlogs 2,64

   The report is one JSON document (default [BENCH_load.json]): per
   sweep point p50/p95/p99 latency (ms), throughput (qps), shed rate
   and the server's own counters, plus [host_cores] for context. *)

open Relalg

let queries =
  [| "select T, avg(P) from Hosp join Ins on S=C where D='stroke' group by \
      T having P>100";
     "select S, D from Hosp where T='tpa'";
     "select C, P from Ins where P>100";
     "select D, count(T) from Hosp group by D";
     "select T, P from Hosp join Ins on S=C where P>100";
     "select avg(P) from Ins" |]

let demo_tables (env : Authz.Policy_dsl.t) =
  let find name =
    List.find_opt (fun s -> s.Schema.name = name) env.Authz.Policy_dsl.schemas
  in
  match (find "Hosp", find "Ins") with
  | Some hosp, Some ins ->
      let s x = Value.Str x and n x = Value.Int x in
      let v = Value.date_of_string in
      [ ( "Hosp",
          Engine.Table.of_schema hosp
            [ [| s "alice"; v "1980-01-01"; s "stroke"; s "tpa" |];
              [| s "bob"; v "1975-05-12"; s "stroke"; s "surgery" |];
              [| s "carol"; v "1990-09-30"; s "flu"; s "rest" |];
              [| s "dave"; v "1968-03-22"; s "stroke"; s "tpa" |] ] );
        ( "Ins",
          Engine.Table.of_schema ins
            [ [| s "alice"; n 120 |]; [| s "bob"; n 300 |];
              [| s "carol"; n 80 |]; [| s "dave"; n 150 |] ] ) ]
  | _ -> failwith "running example policy lacks Hosp/Ins"

type tally = {
  mutable served : int;
  mutable shed : int;
  mutable expired : int;
  mutable rejected : int;
  mutable parse_errors : int;
  mutable other : int;
  mutable unanswered : int;
  mutable lats : float list;  (* ms, one per answered request *)
}

let new_tally () =
  { served = 0; shed = 0; expired = 0; rejected = 0; parse_errors = 0;
    other = 0; unanswered = 0; lats = [] }

let client_worker ?(tenant = Serve.Tenancy.default_id) ~addr ~requests ~burst
    ~offset () =
  let t = new_tally () in
  let c = Serve.Client.connect ~timeout_s:60.0 addr in
  let sent = Hashtbl.create 16 in
  let n_sent = ref 0 in
  (* a non-default tenant costs one directive line up front, which
     shifts the server's line numbering for every data request *)
  let line_base =
    if tenant = Serve.Tenancy.default_id then 0
    else begin
      Serve.Client.send c ("\\tenant use " ^ tenant);
      (match Serve.Client.recv c with
      | Some r when r.Serve.Client.tag = "tenant" -> ()
      | _ -> failwith ("client could not switch to tenant " ^ tenant));
      1
    end
  in
  (try
     while !n_sent < requests do
       let b = min burst (requests - !n_sent) in
       for _ = 1 to b do
         let q = queries.((offset + !n_sent) mod Array.length queries) in
         incr n_sent;
         Hashtbl.replace sent (line_base + !n_sent) (Unix.gettimeofday ());
         Serve.Client.send c q
       done;
       for _ = 1 to b do
         match Serve.Client.recv c with
         | None -> raise Exit
         | Some r ->
             let t1 = Unix.gettimeofday () in
             (match Hashtbl.find_opt sent r.Serve.Client.line with
             | Some t0 ->
                 t.lats <- ((t1 -. t0) *. 1000.0) :: t.lats;
                 Hashtbl.remove sent r.Serve.Client.line
             | None -> ());
             let tag = r.Serve.Client.tag in
             if tag = "hit" || tag = "miss" then t.served <- t.served + 1
             else if tag = "shed" then t.shed <- t.shed + 1
             else if tag = "deadline exceeded" then t.expired <- t.expired + 1
             else if tag = "rejected" then t.rejected <- t.rejected + 1
             else if String.starts_with ~prefix:"parse error" tag then
               t.parse_errors <- t.parse_errors + 1
             else t.other <- t.other + 1
       done
     done
   with Exit | Serve.Client.Timeout -> ());
  Serve.Client.shutdown_send c;
  Serve.Client.close c;
  t.unanswered <- Hashtbl.length sent;
  t

let percentile sorted q =
  match Array.length sorted with
  | 0 -> 0.0
  | n -> sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let () =
  let quick = ref false in
  let out = ref "BENCH_load.json" in
  let policy = ref "examples/policies/running_example.mpq" in
  let clients = ref [ 1; 2; 4; 8 ] in
  let backlogs = ref [ 2; 64 ] in
  let requests = ref 40 in
  let burst = ref 4 in
  let deadline_ms = ref None in
  let jobs = ref 1 in
  let shards = ref 4 in
  let ints s = List.map int_of_string (String.split_on_char ',' s) in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "-o" :: file :: rest ->
        out := file;
        parse rest
    | "--policy" :: p :: rest ->
        policy := p;
        parse rest
    | "--clients" :: l :: rest ->
        clients := ints l;
        parse rest
    | "--backlogs" :: l :: rest ->
        backlogs := ints l;
        parse rest
    | "--requests" :: n :: rest ->
        requests := int_of_string n;
        parse rest
    | "--burst" :: n :: rest ->
        burst := int_of_string n;
        parse rest
    | "--deadline-ms" :: n :: rest ->
        deadline_ms := Some (int_of_string n);
        parse rest
    | "--jobs" :: n :: rest ->
        jobs := int_of_string n;
        parse rest
    | "--shards" :: n :: rest ->
        shards := int_of_string n;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "load_bench: unknown argument %s\n\
           usage: load_bench [--quick] [--clients L] [--backlogs L] \
           [--requests N] [--burst N] [--deadline-ms T] [--jobs N] \
           [--shards N] [--policy FILE] [-o FILE]\n"
          arg;
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !quick then begin
    clients := [ 1; 4 ];
    backlogs := [ 2; 16 ];
    requests := 12
  end;
  let env = Authz.Policy_dsl.load !policy in
  let tables = demo_tables env in
  let failures = ref 0 in
  Par.with_pool ~name:"load" !jobs @@ fun pool ->
  let combo n_clients backlog =
    let service =
      Serve.Service.create ?pool ~policy:env.Authz.Policy_dsl.policy
        ~subjects:env.Authz.Policy_dsl.subjects ~tables ()
    in
    let config =
      { Serve.Server.default_config with
        Serve.Server.backlog; deadline_ms = !deadline_ms }
    in
    let server =
      Serve.Server.create ~config ~service (Serve.Server.Tcp 0)
    in
    let addr = Serve.Server.bound_addr server in
    let srv = Domain.spawn (fun () -> Serve.Server.run server) in
    let t0 = Unix.gettimeofday () in
    let workers =
      List.init n_clients (fun i ->
          Domain.spawn (fun () ->
              client_worker ~addr ~requests:!requests ~burst:!burst
                ~offset:(i * 3) ()))
    in
    let tallies = List.map Domain.join workers in
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    Serve.Server.stop server;
    Domain.join srv;
    let sum f = List.fold_left (fun acc t -> acc + f t) 0 tallies in
    let served = sum (fun t -> t.served)
    and shed = sum (fun t -> t.shed)
    and expired = sum (fun t -> t.expired)
    and rejected = sum (fun t -> t.rejected)
    and parse_errors = sum (fun t -> t.parse_errors)
    and other = sum (fun t -> t.other)
    and unanswered = sum (fun t -> t.unanswered) in
    let answered = served + shed + expired + rejected + parse_errors + other in
    let lats =
      Array.of_list (List.concat_map (fun t -> t.lats) tallies)
    in
    Array.sort compare lats;
    let total = n_clients * !requests in
    let qps = float_of_int answered /. (wall_ms /. 1000.0) in
    let shed_rate =
      if total = 0 then 0.0 else float_of_int shed /. float_of_int total
    in
    if unanswered > 0 then begin
      incr failures;
      Printf.eprintf
        "FAILURE: %d requests got no structured response (clients %d, \
         backlog %d)\n"
        unanswered n_clients backlog
    end;
    Printf.printf
      "clients %2d backlog %3d: %6.0f qps, p50 %6.2f ms, p95 %6.2f ms, p99 \
       %6.2f ms, shed %4.1f%%, %d/%d answered\n%!"
      n_clients backlog qps (percentile lats 0.50) (percentile lats 0.95)
      (percentile lats 0.99)
      (100.0 *. shed_rate)
      answered total;
    Json.Obj
      [ ("clients", Json.Int n_clients);
        ("backlog", Json.Int backlog);
        ("requests", Json.Int total);
        ("answered", Json.Int answered);
        ("unanswered", Json.Int unanswered);
        ("qps", Json.Float qps);
        ("p50_ms", Json.Float (percentile lats 0.50));
        ("p95_ms", Json.Float (percentile lats 0.95));
        ("p99_ms", Json.Float (percentile lats 0.99));
        ("shed_rate", Json.Float shed_rate);
        ("served", Json.Int served);
        ("shed", Json.Int shed);
        ("expired", Json.Int expired);
        ("rejected", Json.Int rejected);
        ("parse_errors", Json.Int parse_errors);
        ("wall_ms", Json.Float wall_ms);
        ("server", Serve.Server.stats_json (Serve.Server.stats server)) ]
  in
  let sweep =
    List.concat_map
      (fun c -> List.map (fun b -> combo c b) !backlogs)
      !clients
  in
  (* --- multi-tenant scenario ------------------------------------------ *)
  (* Tenant "blue" runs the same policy minus one permission (provider
     Y loses plaintext visibility of P on Ins), so the two tenants
     genuinely plan differently over the same schemas. Correctness
     gates first: every pool query submitted under each tenant of one
     sharded two-tenant service must be byte-identical to a
     single-tenant oracle service running that tenant's policy alone,
     a warm second pass must hit inside each tenant's own key space,
     and cross_tenant_hits must be 0 — here and after the socket load
     below. Any violation fails the bench with exit 2. *)
  let policy_a = env.Authz.Policy_dsl.policy in
  let policy_b =
    Authz.Authorization.make
      ~schemas:(Authz.Authorization.schemas policy_a)
      (List.map
         (fun (r : Authz.Authorization.rule) ->
           match r.Authz.Authorization.grantee with
           | Authz.Authorization.To s
             when r.Authz.Authorization.relation = "Ins"
                  && Authz.Subject.equal s (Authz.Subject.provider "Y") ->
               { r with
                 Authz.Authorization.plain =
                   Attr.Set.remove (Attr.make "P")
                     r.Authz.Authorization.plain }
           | _ -> r)
         (Authz.Authorization.rules policy_a))
  in
  let make_multi () =
    let s =
      Serve.Service.create ?pool ~shards:!shards ~policy:policy_a
        ~subjects:env.Authz.Policy_dsl.subjects ~tables ()
    in
    Serve.Service.add_tenant s ~id:"blue" ~policy:policy_b ();
    s
  in
  let outcome_equal a b =
    match (a, b) with
    | Serve.Service.Table x, Serve.Service.Table y ->
        List.equal Attr.equal (Engine.Table.attrs x) (Engine.Table.attrs y)
        && List.equal
             (fun (r1 : Value.t array) r2 -> r1 = r2)
             (Engine.Table.rows x) (Engine.Table.rows y)
    | Serve.Service.Rejected x, Serve.Service.Rejected y -> x = y
    | _ -> false
  in
  let divergences = ref 0 in
  let validation = make_multi () in
  let oracle policy =
    Serve.Service.create ~policy ~subjects:env.Authz.Policy_dsl.subjects
      ~tables ()
  in
  let oa = oracle policy_a and ob = oracle policy_b in
  Array.iter
    (fun q ->
      List.iter
        (fun (tenant, oracle_service) ->
          let m = Serve.Service.submit_sql ~tenant validation q in
          let o = Serve.Service.submit_sql oracle_service q in
          if
            not
              (outcome_equal m.Serve.Service.outcome o.Serve.Service.outcome)
          then begin
            incr divergences;
            Printf.eprintf
              "FAILURE: tenant %s diverges from its single-tenant oracle on \
               %s\n"
              tenant q
          end)
        [ (Serve.Tenancy.default_id, oa); ("blue", ob) ])
    queries;
  Array.iter
    (fun q ->
      List.iter
        (fun tenant ->
          let r = Serve.Service.submit_sql ~tenant validation q in
          if r.Serve.Service.status <> Serve.Service.Hit then begin
            incr divergences;
            Printf.eprintf "FAILURE: tenant %s missed on warm replay of %s\n"
              tenant q
          end)
        [ Serve.Tenancy.default_id; "blue" ])
    queries;
  let vstats = Serve.Service.stats validation in
  if vstats.Serve.Service.cross_tenant_hits <> 0 || !divergences > 0 then
    incr failures;
  (* socket load: half the clients switch to "blue" before their first
     request, the rest stay on the default tenant *)
  let mt_clients = 4 and mt_backlog = 64 in
  let mservice = make_multi () in
  let mconfig =
    { Serve.Server.default_config with
      Serve.Server.backlog = mt_backlog; deadline_ms = !deadline_ms }
  in
  let mserver =
    Serve.Server.create ~config:mconfig ~service:mservice (Serve.Server.Tcp 0)
  in
  let maddr = Serve.Server.bound_addr mserver in
  let msrv = Domain.spawn (fun () -> Serve.Server.run mserver) in
  let mt0 = Unix.gettimeofday () in
  let mworkers =
    List.init mt_clients (fun i ->
        let tenant =
          if i mod 2 = 1 then "blue" else Serve.Tenancy.default_id
        in
        Domain.spawn (fun () ->
            client_worker ~tenant ~addr:maddr ~requests:!requests
              ~burst:!burst ~offset:(i * 3) ()))
  in
  let mtallies = List.map Domain.join mworkers in
  let mwall_ms = (Unix.gettimeofday () -. mt0) *. 1000.0 in
  Serve.Server.stop mserver;
  Domain.join msrv;
  let msum f = List.fold_left (fun acc t -> acc + f t) 0 mtallies in
  let manswered =
    msum (fun t ->
        t.served + t.shed + t.expired + t.rejected + t.parse_errors + t.other)
  in
  let munanswered = msum (fun t -> t.unanswered) in
  let mlats = Array.of_list (List.concat_map (fun t -> t.lats) mtallies) in
  Array.sort compare mlats;
  let mstats = Serve.Service.stats mservice in
  if munanswered > 0 then begin
    incr failures;
    Printf.eprintf
      "FAILURE: %d multi-tenant requests got no structured response\n"
      munanswered
  end;
  if mstats.Serve.Service.cross_tenant_hits <> 0 then begin
    incr failures;
    Printf.eprintf "FAILURE: %d cross-tenant hits under socket load\n"
      mstats.Serve.Service.cross_tenant_hits
  end;
  Printf.printf
    "multi-tenant: %d clients over %d tenants, %d shards: %6.0f qps, p95 \
     %6.2f ms, %d cross-tenant hits, %d oracle divergences\n%!"
    mt_clients mstats.Serve.Service.tenants mstats.Serve.Service.shards
    (float_of_int manswered /. (mwall_ms /. 1000.0))
    (percentile mlats 0.95)
    mstats.Serve.Service.cross_tenant_hits !divergences;
  let multi_tenant_json =
    Json.Obj
      [ ("clients", Json.Int mt_clients);
        ("backlog", Json.Int mt_backlog);
        ("requests", Json.Int (mt_clients * !requests));
        ("answered", Json.Int manswered);
        ("unanswered", Json.Int munanswered);
        ("tenants", Json.Int mstats.Serve.Service.tenants);
        ("shards", Json.Int mstats.Serve.Service.shards);
        ( "cross_tenant_hits",
          Json.Int mstats.Serve.Service.cross_tenant_hits );
        ("oracle_divergences", Json.Int !divergences);
        ("qps", Json.Float (float_of_int manswered /. (mwall_ms /. 1000.0)));
        ("p50_ms", Json.Float (percentile mlats 0.50));
        ("p95_ms", Json.Float (percentile mlats 0.95));
        ("p99_ms", Json.Float (percentile mlats 0.99));
        ("wall_ms", Json.Float mwall_ms);
        ( "per_tenant",
          Json.Obj
            (List.map
               (fun (id, st) -> (id, Serve.Tenancy.stats_json st))
               (Serve.Service.tenant_stats mservice)) );
        ("server", Serve.Server.stats_json (Serve.Server.stats mserver)) ]
  in
  let doc =
    Json.Obj
      [ ("bench", Json.String "load");
        ("host_cores", Json.Int (Domain.recommended_domain_count ()));
        ("requests_per_client", Json.Int !requests);
        ("burst", Json.Int !burst);
        ( "deadline_ms",
          match !deadline_ms with
          | Some t -> Json.Int t
          | None -> Json.Null );
        ("quick", Json.Bool !quick);
        ("shards", Json.Int !shards);
        ("sweep", Json.List sweep);
        ("multi_tenant", multi_tenant_json) ]
  in
  let oc = open_out !out in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "report: %s\n" !out;
  if !failures > 0 then exit 2
