(* Policy laboratory: how candidate sets react to authorization changes.

   Uses the running example and explores what-if variations: granting Z
   plaintext D, revoking X's encrypted visibility of C and P, or turning
   the default 'any' rule off — showing, per operation, which subjects
   stay eligible and how the minimum evaluation cost moves. A small demo
   of using the library for policy debugging. *)

open Relalg
open Authz
open Running_example

let show_candidates title policy =
  Printf.printf "\n=== %s ===\n" title;
  let plan = build_plan () in
  let config = Opreq.resolve_conflicts Opreq.default plan in
  let lam = Candidates.compute ~policy ~subjects ~config plan in
  Plan.iter
    (fun n ->
      if not (Candidates.is_source_side n) then
        Printf.printf "  %-28s Λ = %s\n"
          (Plan_printer.node_label n)
          (Format.asprintf "%a" Subject.pp_set (Candidates.candidates_of lam n)))
    plan;
  match
    Planner.Optimizer.plan ~policy ~subjects ~deliver_to:u plan
  with
  | r ->
      Printf.printf "  optimizer: %s\n"
        (Format.asprintf "%a" Planner.Cost.pp r.Planner.Optimizer.cost)
  | exception Planner.Optimizer.No_candidate msg ->
      Printf.printf "  optimizer: query rejected (%s)\n" msg
  | exception Planner.Optimizer.User_not_authorized msg ->
      Printf.printf "  optimizer: query rejected (%s)\n" msg

let rules_without pred =
  List.filter pred (Authorization.rules policy)

let () =
  show_candidates "baseline (Fig. 1(b) authorizations)" policy;

  (* grant Z plaintext D: Z becomes eligible higher in the plan *)
  let upgraded =
    Authorization.make ~schemas:[ hosp; ins ]
      (List.map
         (fun (r : Authorization.rule) ->
           match r.Authorization.grantee with
           | Authorization.To s
             when Subject.equal s z && r.Authorization.relation = "Hosp" ->
               Authorization.rule ~rel:"Hosp" ~plain:[ "S"; "T"; "D" ] (To z)
           | _ -> r)
         (List.filter
            (fun (r : Authorization.rule) ->
              (* drop the implicit owner rules; make re-adds them *)
              match r.Authorization.grantee with
              | Authorization.To s ->
                  not
                    (Subject.equal s h && r.Authorization.relation = "Hosp"
                     && Attr.Set.cardinal r.Authorization.plain = 4)
                  && not
                       (Subject.equal s i && r.Authorization.relation = "Ins"
                        && Attr.Set.cardinal r.Authorization.plain = 2
                        && Attr.Set.mem (Attr.make "C") r.Authorization.plain
                        && Attr.Set.mem (Attr.make "P") r.Authorization.plain
                        && Subject.equal s i)
              | Authorization.Any -> true)
            (Authorization.rules policy)))
  in
  show_candidates "granting Z plaintext visibility of D" upgraded;

  (* revoke X entirely *)
  let without_x =
    Authorization.make ~schemas:[ hosp; ins ]
      (rules_without (fun (r : Authorization.rule) ->
           match r.Authorization.grantee with
           | Authorization.To s -> not (Subject.equal s x)
           | Authorization.Any -> true)
       |> List.filter (fun (r : Authorization.rule) ->
              (* strip implicit owner rules, re-added by make *)
              match r.Authorization.grantee with
              | Authorization.To s when Subject.equal s h ->
                  r.Authorization.relation <> "Hosp"
                  || Attr.Set.cardinal r.Authorization.plain <> 4
              | Authorization.To s when Subject.equal s i ->
                  r.Authorization.relation <> "Ins"
                  || Attr.Set.cardinal r.Authorization.plain <> 2
                  || not (Attr.Set.mem (Attr.make "P") r.Authorization.plain)
              | _ -> true))
  in
  show_candidates "revoking every authorization of X" without_x;

  (* a policy under which the query cannot run: nobody may see P and S/C
     together, not even the user *)
  let broken =
    Authorization.make ~schemas:[ hosp; ins ]
      [ Authorization.rule ~rel:"Hosp" ~plain:[ "S"; "D"; "T" ] (To u) ]
  in
  show_candidates "restrictive policy: user may not read Ins at all" broken
