(* The Sec. 9 extension: a source relation stored, partially encrypted,
   at a third-party host.

   The hospital outsources Hosp to storage provider W, keeping the
   sensitive columns S (patient SSN) and B (birth date) encrypted at
   rest. W serves ciphertext it cannot read, the authority holds the
   at-rest keys, and the usual pipeline — candidates, minimal extension,
   key establishment, distributed execution — works unchanged on top. *)

open Relalg
open Authz

let policy_text =
  {|# Hosp lives at provider W; S and B never touch W's disks in plaintext
relation Hosp owner H hosted W enc S,B (S string, B date, D string, T string)
relation Ins owner I (C string, P int)
user U
provider X
authorize Hosp to U plain S,D,T enc B
authorize Ins to U plain C,P
authorize Hosp to X plain D,T enc S,B
authorize Ins to X enc C,P
|}

let () =
  let env = Policy_dsl.parse policy_text in
  print_endline "--- policy (note the hosted relation) ---";
  print_string policy_text;

  print_endline "\n--- what each subject may see ---";
  List.iter
    (fun s ->
      Format.printf "  %-2s %a@." (Subject.name s)
        Authorization.pp_view
        (Authorization.view env.Policy_dsl.policy s))
    env.Policy_dsl.subjects;

  let query =
    "select T, avg(P) from Hosp join Ins on S = C where D = 'stroke' \
     group by T"
  in
  let plan =
    Planner.Rewrite.normalize
      (Mpq_sql.Sql_plan.parse_and_plan ~catalog:env.Policy_dsl.schemas query)
  in
  let user =
    List.find (fun s -> s.Subject.role = Subject.User) env.Policy_dsl.subjects
  in
  let r =
    Planner.Optimizer.plan ~policy:env.Policy_dsl.policy
      ~subjects:env.Policy_dsl.subjects ~deliver_to:user plan
  in
  print_endline "\n--- planning report ---";
  print_string (Planner.Optimizer.report r);
  print_endline
    "\nNote: the Hosp scan runs at W (the storage host), S arrives already\n\
     det-encrypted from rest, and H never appears in the data path at all.";

  (* execute: W serves at-rest ciphertext, the engine encrypts-on-scan *)
  let tables =
    let hosp = List.find (fun s -> s.Schema.name = "Hosp") env.Policy_dsl.schemas in
    let ins = List.find (fun s -> s.Schema.name = "Ins") env.Policy_dsl.schemas in
    let s x = Value.Str x and n x = Value.Int x in
    let v = Value.date_of_string in
    [ ( "Hosp",
        Engine.Table.of_schema hosp
          [ [| s "alice"; v "1980-01-01"; s "stroke"; s "tpa" |];
            [| s "bob"; v "1975-05-12"; s "stroke"; s "surgery" |];
            [| s "carol"; v "1990-09-30"; s "flu"; s "rest" |] ] );
      ( "Ins",
        Engine.Table.of_schema ins
          [ [| s "alice"; n 120 |]; [| s "bob"; n 300 |]; [| s "carol"; n 80 |] ]
      ) ]
  in
  let outcome =
    Distsim.Runtime.execute ~policy:env.Policy_dsl.policy
      ~pki:(Distsim.Pki.create ())
      ~keyring:(Mpq_crypto.Keyring.create ())
      ~user ~tables ~extended:r.Planner.Optimizer.extended
      ~clusters:r.Planner.Optimizer.clusters ()
  in
  print_endline "\n--- distributed trace ---";
  List.iter
    (fun e -> Format.printf "  %a@." Distsim.Runtime.pp_event e)
    outcome.Distsim.Runtime.trace;
  print_endline "\n--- result at U ---";
  print_string (Engine.Table.to_string (Distsim.Runtime.result outcome))
