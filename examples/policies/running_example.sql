select T, avg(P)
from Hosp join Ins on S=C
where D='stroke'
group by T
having P>100
