(* TPC-H under the paper's three authorization scenarios (Sec. 7).

   Plans Q5 (local supplier volume: a six-relation join crossing both
   authorities) under UA / UAPenc / UAPmix, prints who executes what and
   at what economic cost, and then actually runs the UAPenc extended plan
   over generated data at a small scale factor, decrypting the result for
   the user. *)

open Relalg

let () =
  let q = 5 in
  Printf.printf "TPC-H Q%d under the three authorization scenarios\n" q;
  let results =
    List.map
      (fun sc -> (sc, Tpch.Scenarios.optimize ~scenario:sc (Tpch.Tpch_queries.query q)))
      Tpch.Scenarios.all
  in
  List.iter
    (fun (sc, r) ->
      Printf.printf "\n=== %s: %s ===\n" (Tpch.Scenarios.name sc)
        (Format.asprintf "%a" Planner.Cost.pp r.Planner.Optimizer.cost);
      Printf.printf "  executors: %s\n"
        (String.concat ", "
           (List.sort_uniq compare
              (List.map
                 (fun (_, s) -> Authz.Subject.name s)
                 (Authz.Imap.bindings r.Planner.Optimizer.extended.Authz.Extend.assignment))));
      List.iter
        (fun (s, v) ->
          Printf.printf "    %-3s $%.5f\n" (Authz.Subject.name s) v)
        r.Planner.Optimizer.cost.Planner.Cost.per_subject)
    results;
  let ua = List.assoc Tpch.Scenarios.UA results in
  let enc = List.assoc Tpch.Scenarios.UAPenc results in
  let mix = List.assoc Tpch.Scenarios.UAPmix results in
  let t r = Planner.Cost.total r.Planner.Optimizer.cost in
  Printf.printf "\nnormalized: UA=1.000 UAPenc=%.3f UAPmix=%.3f\n"
    (t enc /. t ua) (t mix /. t ua);

  (* execute the UAPenc plan on generated data (small scale) *)
  print_endline "\n=== executing the UAPenc extended plan at sf=0.002 ===";
  let sf = 0.002 in
  let r = Tpch.Scenarios.optimize ~sf ~scenario:Tpch.Scenarios.UAPenc (Tpch.Tpch_queries.query q) in
  let data = Tpch.Tpch_data.generate ~sf () in
  let tables =
    List.map
      (fun s -> (s.Schema.name, Engine.Table.of_schema s (List.assoc s.Schema.name data)))
      Tpch.Tpch_schema.all
  in
  let keyring = Mpq_crypto.Keyring.create () in
  let crypto = Engine.Enc_exec.make keyring r.Planner.Optimizer.clusters in
  let ctx =
    Engine.Exec.context ~udfs:Tpch.Tpch_queries.udf_impls ~crypto tables
  in
  let result = Engine.Exec.run ctx r.Planner.Optimizer.extended.Authz.Extend.plan in
  print_string (Engine.Table.to_string result);
  Printf.printf "(%d rows)\n" (Engine.Table.cardinality result)
