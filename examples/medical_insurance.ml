(* The paper's running example, end to end (Figs. 1-8).

   A hospital and an insurance company collaborate on
     select T, avg(P) from Hosp join Ins on S=C
     where D='stroke' group by T having avg(P)>100
   under fine-grained visibility authorizations, with cloud providers
   X, Y, Z offering computation. This walkthrough prints profiles,
   overall views, candidate sets, two minimally extended plans
   (Fig. 7(a) and 7(b)), the derived keys, the dispatched sub-queries,
   and finally runs the whole thing through the distributed simulator
   with envelope sealing and release checks. *)

open Relalg
open Authz
open Running_example

let section title =
  Printf.printf "\n=== %s ===\n" title

let () =
  let plan = build_plan () in
  section "query plan with profiles (Fig. 3)";
  let profiles = Profile.annotate plan in
  print_string
    (Plan_printer.to_ascii
       ~annot:(fun n ->
         Option.map Profile.to_string (Hashtbl.find_opt profiles (Plan.id n)))
       plan);

  section "overall views (Fig. 4)";
  List.iter
    (fun s ->
      Printf.printf "  %-2s %s\n" (Subject.name s)
        (Format.asprintf "%a" Authorization.pp_view (Authorization.view policy s)))
    subjects;

  section "assignment candidates over minimum required views (Fig. 6)";
  let config = Opreq.resolve_conflicts Opreq.default plan in
  let lam = Candidates.compute ~policy ~subjects ~config plan in
  let minviews = Minview.annotate_min ~config plan in
  Plan.iter
    (fun n ->
      if not (Candidates.is_source_side n) then begin
        Printf.printf "  %-28s Λ = %s\n"
          (Plan_printer.node_label n)
          (Format.asprintf "%a" Subject.pp_set (Candidates.candidates_of lam n));
        (* the dotted operand boxes of Fig. 6 *)
        List.iter
          (fun c ->
            match Hashtbl.find_opt minviews (-Plan.id c) with
            | Some v ->
                Printf.printf "      operand min view: %s\n"
                  (Profile.to_string v)
            | None -> ())
          (Plan.children n)
      end)
    plan;

  let run_assignment title assignment =
    section title;
    let ext = Extend.extend ~policy ~config ~assignment plan in
    print_string (Extend.to_ascii ext);
    (match Extend.verify ~policy ext with
    | Ok () -> print_endline "  [assignment verified authorized]"
    | Error e -> Printf.printf "  [VERIFICATION FAILED: %s]\n" e);
    let clusters = Plan_keys.compute ~config ~original:plan ext in
    print_endline "  keys (Def. 6.1):";
    List.iter
      (fun c -> Format.printf "    %a@." Plan_keys.pp_cluster c)
      clusters;
    print_endline "  dispatch (Fig. 8):";
    List.iter
      (fun r -> Format.printf "    %a@." Dispatch.pp_request r)
      (Dispatch.requests ext clusters)
  in
  (* locate the operator nodes to express the two assignments of Fig. 7 *)
  let find_nodes () =
    let sel = ref None and join = ref None and grp = ref None and hav = ref None in
    Plan.iter
      (fun n ->
        match Plan.node n with
        | Plan.Select _ when Plan.height n > 4 -> hav := Some n
        | Plan.Select _ -> sel := Some n
        | Plan.Join _ -> join := Some n
        | Plan.Group_by _ -> grp := Some n
        | _ -> ())
      plan;
    (Option.get !sel, Option.get !join, Option.get !grp, Option.get !hav)
  in
  let n_sel, n_join, n_grp, n_hav = find_nodes () in
  let assign l =
    List.fold_left (fun m (n, s) -> Imap.add (Plan.id n) s m) Imap.empty l
  in
  run_assignment "minimally extended plan, σ→H ⋈→X γ→X σavg→Y (Fig. 7a)"
    (assign [ (n_sel, h); (n_join, x); (n_grp, x); (n_hav, y) ]);
  run_assignment "minimally extended plan, σ→H ⋈→Z γ→Z σavg→Y (Fig. 7b)"
    (assign [ (n_sel, h); (n_join, z); (n_grp, z); (n_hav, y) ]);

  section "distributed execution (7a) with envelopes and release checks";
  let assignment = assign [ (n_sel, h); (n_join, x); (n_grp, x); (n_hav, y) ] in
  let ext = Extend.extend ~policy ~config ~assignment ~deliver_to:u plan in
  let clusters = Plan_keys.compute ~config ~original:plan ext in
  let keyring = Mpq_crypto.Keyring.create () in
  let outcome =
    Distsim.Runtime.execute ~policy ~pki:(Distsim.Pki.create ()) ~keyring
      ~user:u ~tables:(tables ()) ~extended:ext ~clusters ()
  in
  List.iter
    (fun e -> Format.printf "  %a@." Distsim.Runtime.pp_event e)
    outcome.Distsim.Runtime.trace;
  section "result delivered to U";
  print_string (Engine.Table.to_string (Distsim.Runtime.result outcome))
