(* The paper's running example, shared by the example programs: hospital
   H with Hosp(S,B,D,T), insurer I with Ins(C,P), user U, providers
   X/Y/Z, the query of Sec. 1 and the authorizations of Fig. 1(b). *)

open Relalg
open Authz

let hosp =
  Schema.make ~name:"Hosp" ~owner:"H"
    [ ("S", Schema.Tstring); ("B", Schema.Tdate); ("D", Schema.Tstring);
      ("T", Schema.Tstring) ]

let ins =
  Schema.make ~name:"Ins" ~owner:"I"
    [ ("C", Schema.Tstring); ("P", Schema.Tint) ]

let u = Subject.user "U"
let h = Subject.authority "H"
let i = Subject.authority "I"
let x = Subject.provider "X"
let y = Subject.provider "Y"
let z = Subject.provider "Z"
let subjects = [ u; h; i; x; y; z ]

let policy =
  Authorization.make ~schemas:[ hosp; ins ]
    [ Authorization.rule ~rel:"Hosp" ~plain:[ "S"; "B"; "D"; "T" ] (To h);
      Authorization.rule ~rel:"Ins" ~plain:[ "C" ] ~enc:[ "P" ] (To h);
      Authorization.rule ~rel:"Hosp" ~plain:[ "B" ] ~enc:[ "S"; "D"; "T" ]
        (To i);
      Authorization.rule ~rel:"Ins" ~plain:[ "C"; "P" ] (To i);
      Authorization.rule ~rel:"Hosp" ~plain:[ "S"; "D"; "T" ] (To u);
      Authorization.rule ~rel:"Ins" ~plain:[ "C"; "P" ] (To u);
      Authorization.rule ~rel:"Hosp" ~plain:[ "D"; "T" ] ~enc:[ "S" ] (To x);
      Authorization.rule ~rel:"Ins" ~enc:[ "C"; "P" ] (To x);
      Authorization.rule ~rel:"Hosp" ~plain:[ "B"; "D"; "T" ] ~enc:[ "S" ]
        (To y);
      Authorization.rule ~rel:"Ins" ~plain:[ "P" ] ~enc:[ "C" ] (To y);
      Authorization.rule ~rel:"Hosp" ~plain:[ "S"; "T" ] ~enc:[ "D" ] (To z);
      Authorization.rule ~rel:"Ins" ~plain:[ "C" ] ~enc:[ "P" ] (To z);
      Authorization.rule ~rel:"Hosp" ~plain:[ "D"; "T" ] Any;
      Authorization.rule ~rel:"Ins" ~enc:[ "P" ] Any ]

(* select T, avg(P) from Hosp join Ins on S=C
   where D='stroke' group by T having avg(P)>100 *)
let build_plan () =
  let a = Attr.make in
  let proj = Plan.project (Attr.Set.of_names [ "S"; "D"; "T" ]) (Plan.base hosp) in
  let sel =
    Plan.select
      (Predicate.conj
         [ Predicate.Cmp_const (a "D", Predicate.Eq, Value.Str "stroke") ])
      proj
  in
  let join =
    Plan.join
      (Predicate.conj [ Predicate.Cmp_attr (a "S", Predicate.Eq, a "C") ])
      sel (Plan.base ins)
  in
  let grp =
    Plan.group_by (Attr.Set.of_names [ "T" ])
      [ Aggregate.make (Aggregate.Avg (a "P")) ]
      join
  in
  Plan.select
    (Predicate.conj [ Predicate.Cmp_const (a "P", Predicate.Gt, Value.Int 100) ])
    grp

let tables () =
  let v = Value.date_of_string in
  let s x = Value.Str x and n x = Value.Int x in
  [ ( "Hosp",
      Engine.Table.of_schema hosp
        [ [| s "alice"; v "1980-01-01"; s "stroke"; s "tpa" |];
          [| s "bob"; v "1975-05-12"; s "stroke"; s "surgery" |];
          [| s "carol"; v "1990-09-30"; s "flu"; s "rest" |];
          [| s "dave"; v "1968-03-22"; s "stroke"; s "tpa" |];
          [| s "erin"; v "1985-07-04"; s "asthma"; s "inhaler" |] ] );
    ( "Ins",
      Engine.Table.of_schema ins
        [ [| s "alice"; n 120 |]; [| s "bob"; n 300 |]; [| s "carol"; n 80 |];
          [| s "dave"; n 150 |]; [| s "frank"; n 90 |] ] ) ]
