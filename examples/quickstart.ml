(* Quickstart: from a SQL string to an authorized distributed plan.

   Build the paper's running example from SQL, let the optimizer compute
   candidates, pick an assignment, inject encryption, and execute the
   extended plan over ciphertext — all in a few lines of API. *)

open Relalg
open Authz

let () =
  (* 1. Two data authorities declare their relations. *)
  let hosp =
    Schema.make ~name:"hosp" ~owner:"H"
      [ ("s", Schema.Tstring); ("b", Schema.Tdate); ("d", Schema.Tstring);
        ("t", Schema.Tstring) ]
  and ins =
    Schema.make ~name:"ins" ~owner:"I"
      [ ("c", Schema.Tstring); ("p", Schema.Tint) ]
  in
  (* 2. ... and their authorizations ([plaintext, encrypted] -> subject). *)
  let u = Subject.user "U" and x = Subject.provider "X" in
  let policy =
    Authorization.make ~schemas:[ hosp; ins ]
      [ Authorization.rule ~rel:"hosp" ~plain:[ "s"; "d"; "t" ] (To u);
        Authorization.rule ~rel:"ins" ~plain:[ "c"; "p" ] (To u);
        Authorization.rule ~rel:"hosp" ~plain:[ "d"; "t" ] ~enc:[ "s" ] (To x);
        Authorization.rule ~rel:"ins" ~enc:[ "c"; "p" ] (To x) ]
  in
  (* 3. The user writes plain SQL. *)
  let query =
    "select t, avg(p) from hosp join ins on s = c \
     where d = 'stroke' group by t having p > 100"
  in
  let plan = Mpq_sql.Sql_plan.parse_and_plan ~catalog:[ hosp; ins ] query in
  print_endline "--- query plan ---";
  print_string (Plan_printer.to_ascii plan);
  (* 4. Authorization-aware planning: candidates, assignment, encryption. *)
  let result =
    Planner.Optimizer.plan ~policy
      ~subjects:[ u; Subject.authority "H"; Subject.authority "I"; x ]
      ~deliver_to:u plan
  in
  print_endline "\n--- planning report ---";
  print_string (Planner.Optimizer.report result);
  (* 5. Execute the extended plan over real data — conditions on encrypted
     attributes run via deterministic encryption, the average via
     Paillier, and the user decrypts the final result. *)
  let keyring = Mpq_crypto.Keyring.create () in
  let crypto =
    Engine.Enc_exec.make keyring result.Planner.Optimizer.clusters
  in
  let v = Value.date_of_string in
  let tables =
    [ ( "hosp",
        Engine.Table.of_schema hosp
          [ [| Value.Str "ann"; v "1980-01-01"; Value.Str "stroke"; Value.Str "tpa" |];
            [| Value.Str "bob"; v "1931-02-11"; Value.Str "stroke"; Value.Str "surgery" |];
            [| Value.Str "eve"; v "1972-07-09"; Value.Str "flu"; Value.Str "rest" |] ] );
      ( "ins",
        Engine.Table.of_schema ins
          [ [| Value.Str "ann"; Value.Int 150 |];
            [| Value.Str "bob"; Value.Int 400 |];
            [| Value.Str "eve"; Value.Int 80 |] ] ) ]
  in
  let ctx = Engine.Exec.context ~crypto tables in
  let table = Engine.Exec.run ctx result.Planner.Optimizer.extended.Extend.plan in
  print_endline "\n--- result (decrypted for the user) ---";
  print_string (Engine.Table.to_string table)
