(** Deterministic TPC-H data generator.

    A compact reimplementation of dbgen's essential distributions:
    sequential keys, uniform foreign keys, spec value domains (flags,
    priorities, ship modes, types, containers), order dates in
    [1992-01-01, 1998-08-02], and per-order lineitem fan-out of 1-7.
    Deterministic in the seed so every test and benchmark is
    reproducible. Use small scale factors (0.001-0.01) for in-memory
    execution; the cost model reads {!Tpch_schema.base_stats} instead and
    can be pointed at [sf = 1.0] (the paper's 1 GB configuration). *)

open Relalg

val generate : ?seed:int64 -> sf:float -> unit -> (string * Value.t array list) list
(** All 8 tables (name → rows, in schema column order). *)

val start_date : Value.t
(** 1992-01-01, the first order date. *)

val end_date : Value.t
(** 1998-08-02, the last order date. *)
