open Relalg
module Prng = Mpq_crypto.Prng

let start_date = Value.date_of_string "1992-01-01"
let end_date = Value.date_of_string "1998-08-02"

let day_of = function Value.Date d -> d | _ -> assert false

let region_names = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

let nation_names =
  [| "ALGERIA"; "ARGENTINA"; "BRAZIL"; "CANADA"; "EGYPT"; "ETHIOPIA";
     "FRANCE"; "GERMANY"; "INDIA"; "INDONESIA"; "IRAN"; "IRAQ"; "JAPAN";
     "JORDAN"; "KENYA"; "MOROCCO"; "MOZAMBIQUE"; "PERU"; "CHINA";
     "ROMANIA"; "SAUDI ARABIA"; "VIETNAM"; "RUSSIA"; "UNITED KINGDOM";
     "UNITED STATES" |]

(* region of each nation, per the TPC-H seed data *)
let nation_region =
  [| 0; 1; 1; 1; 4; 0; 3; 3; 2; 2; 4; 4; 2; 4; 0; 0; 0; 1; 2; 3; 4; 2; 3;
     3; 1 |]

let segments = [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]
let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]
let ship_modes = [| "REG AIR"; "AIR"; "RAIL"; "SHIP"; "TRUCK"; "MAIL"; "FOB" |]
let ship_instr = [| "DELIVER IN PERSON"; "COLLECT COD"; "NONE"; "TAKE BACK RETURN" |]

let type_syl1 = [| "STANDARD"; "SMALL"; "MEDIUM"; "LARGE"; "ECONOMY"; "PROMO" |]
let type_syl2 = [| "ANODIZED"; "BURNISHED"; "PLATED"; "POLISHED"; "BRUSHED" |]
let type_syl3 = [| "TIN"; "NICKEL"; "BRASS"; "STEEL"; "COPPER" |]

let containers1 = [| "SM"; "LG"; "MED"; "JUMBO"; "WRAP" |]
let containers2 = [| "CASE"; "BOX"; "BAG"; "JAR"; "PKG"; "PACK"; "CAN"; "DRUM" |]

let part_name_words =
  [| "almond"; "antique"; "aquamarine"; "azure"; "beige"; "bisque"; "black";
     "blanched"; "blue"; "blush"; "brown"; "burlywood"; "chartreuse";
     "chiffon"; "chocolate"; "coral"; "cornflower"; "cream"; "cyan";
     "dark"; "deep"; "dim"; "dodger"; "drab"; "firebrick"; "floral";
     "forest"; "frosted"; "gainsboro"; "ghost"; "goldenrod"; "green" |]

let comment_words =
  [| "carefully"; "quickly"; "furiously"; "slyly"; "blithely"; "deposits";
     "requests"; "packages"; "accounts"; "instructions"; "theodolites";
     "pinto"; "beans"; "foxes"; "ideas"; "dependencies"; "platelets" |]

let pick rng arr = arr.(Prng.int rng (Array.length arr))

let words rng n =
  String.concat " " (List.init n (fun _ -> pick rng comment_words))

let money rng lo hi =
  float_of_int (lo * 100 + Prng.int rng ((hi - lo) * 100)) /. 100.0

let counts sf =
  let scale base = max 1 (int_of_float (float_of_int base *. sf)) in
  ( scale 10_000 (* supplier *), scale 200_000 (* part *),
    scale 150_000 (* customer *), scale 1_500_000 (* orders *) )

let generate ?(seed = 20170817L) ~sf () =
  let rng = Prng.create seed in
  let n_supp, n_part, n_cust, n_ord = counts sf in
  let v_i i = Value.Int i
  and v_f f = Value.Float f
  and v_s s = Value.Str s in
  let regions =
    List.init 5 (fun k ->
        [| v_i k; v_s region_names.(k); v_s (words rng 5) |])
  in
  let nations =
    List.init 25 (fun k ->
        [| v_i k; v_s nation_names.(k); v_i nation_region.(k);
           v_s (words rng 6) |])
  in
  let suppliers =
    List.init n_supp (fun j ->
        let k = j + 1 in
        [| v_i k; v_s (Printf.sprintf "Supplier#%09d" k);
           v_s (words rng 2); v_i (Prng.int rng 25);
           v_s (Printf.sprintf "%02d-%03d-%03d-%04d" (10 + Prng.int rng 25)
                  (Prng.int rng 1000) (Prng.int rng 1000) (Prng.int rng 10000));
           v_f (money rng (-999) 9999); v_s (words rng 5) |])
  in
  let parts =
    List.init n_part (fun j ->
        let k = j + 1 in
        [| v_i k;
           v_s (pick rng part_name_words ^ " " ^ pick rng part_name_words);
           v_s (Printf.sprintf "Manufacturer#%d" (1 + Prng.int rng 5));
           v_s (Printf.sprintf "Brand#%d%d" (1 + Prng.int rng 5) (1 + Prng.int rng 5));
           v_s (pick rng type_syl1 ^ " " ^ pick rng type_syl2 ^ " " ^ pick rng type_syl3);
           v_i (1 + Prng.int rng 50);
           v_s (pick rng containers1 ^ " " ^ pick rng containers2);
           v_f (money rng 900 2000); v_s (words rng 2) |])
  in
  let partsupps =
    List.concat
      (List.init n_part (fun j ->
           let pk = j + 1 in
           List.init 4 (fun s ->
               [| v_i pk;
                  v_i (1 + ((pk + (s * ((n_supp / 4) + 1))) mod n_supp));
                  v_i (1 + Prng.int rng 9999); v_f (money rng 1 1000);
                  v_s (words rng 10) |])))
  in
  let customers =
    List.init n_cust (fun j ->
        let k = j + 1 in
        [| v_i k; v_s (Printf.sprintf "Customer#%09d" k);
           v_s (words rng 2); v_i (Prng.int rng 25);
           v_s (Printf.sprintf "%02d-%03d-%03d-%04d" (10 + Prng.int rng 25)
                  (Prng.int rng 1000) (Prng.int rng 1000) (Prng.int rng 10000));
           v_f (money rng (-999) 9999); v_s (pick rng segments);
           v_s (words rng 6) |])
  in
  let d0 = day_of start_date and d1 = day_of end_date in
  let orders = ref [] and lineitems = ref [] in
  for j = 0 to n_ord - 1 do
    let ok = j + 1 in
    let odate = d0 + Prng.int rng (d1 - d0 - 151) in
    let nlines = 1 + Prng.int rng 7 in
    let status = ref 'F' in
    let total = ref 0.0 in
    for line = 1 to nlines do
      let qty = float_of_int (1 + Prng.int rng 50) in
      (* spec: extendedprice = qty * partprice; keep it at exact cents so
         homomorphic (cent-scaled) and plaintext aggregation agree *)
      let price = money rng 90 1000 *. qty in
      let disc = float_of_int (Prng.int rng 11) /. 100.0 in
      let tax = float_of_int (Prng.int rng 9) /. 100.0 in
      let sdate = odate + 1 + Prng.int rng 121 in
      let cdate = odate + 30 + Prng.int rng 61 in
      let rdate = sdate + 1 + Prng.int rng 30 in
      let linestatus = if sdate > d1 - 200 then 'O' else 'F' in
      if linestatus = 'O' then status := 'O';
      let returnflag =
        if rdate <= d1 - 300 then (if Prng.bool rng then "R" else "A")
        else "N"
      in
      total := !total +. (price *. (1.0 +. tax) *. (1.0 -. disc));
      lineitems :=
        [| v_i ok; v_i (1 + Prng.int rng n_part); v_i (1 + Prng.int rng n_supp);
           v_i line; v_f qty; v_f price; v_f disc; v_f tax; v_s returnflag;
           v_s (String.make 1 linestatus); Value.Date sdate; Value.Date cdate;
           Value.Date rdate; v_s (pick rng ship_instr); v_s (pick rng ship_modes);
           v_s (words rng 3) |]
        :: !lineitems
    done;
    orders :=
      [| v_i ok; v_i (1 + Prng.int rng n_cust); v_s (String.make 1 !status);
         v_f !total; Value.Date odate; v_s (pick rng priorities);
         v_s (Printf.sprintf "Clerk#%09d" (1 + Prng.int rng 1000));
         v_i 0; v_s (words rng 4) |]
      :: !orders
  done;
  [ ("region", regions); ("nation", nations); ("supplier", suppliers);
    ("part", parts); ("partsupp", partsupps); ("customer", customers);
    ("orders", List.rev !orders); ("lineitem", List.rev !lineitems) ]
