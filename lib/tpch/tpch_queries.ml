open Relalg
module S = Tpch_schema

let a = Attr.make
let set = Attr.Set.of_names
let date = Value.date_of_string
let vi i = Value.Int i
let vf f = Value.Float f
let vs s = Value.Str s

let leaf schema cols = Plan.project (set cols) (Plan.base schema)

let eq x y = Predicate.Cmp_attr (a x, Predicate.Eq, a y)
let lt_attr x y = Predicate.Cmp_attr (a x, Predicate.Lt, a y)
let gt_attr x y = Predicate.Cmp_attr (a x, Predicate.Gt, a y)
let ceq x v = Predicate.Cmp_const (a x, Predicate.Eq, v)
let clt x v = Predicate.Cmp_const (a x, Predicate.Lt, v)
let cle x v = Predicate.Cmp_const (a x, Predicate.Le, v)
let cgt x v = Predicate.Cmp_const (a x, Predicate.Gt, v)
let cge x v = Predicate.Cmp_const (a x, Predicate.Ge, v)
let like x p = Predicate.Like (a x, p)
let inl x vs = Predicate.In_list (a x, vs)
let conj = Predicate.conj

let join cond l r = Plan.join (conj cond) l r
let sel cond child = Plan.select (conj cond) child
let group keys aggs child = Plan.group_by (set keys) aggs child
let sum x = Aggregate.make (Aggregate.Sum (a x))
let avg x = Aggregate.make (Aggregate.Avg (a x))
let cnt x = Aggregate.make (Aggregate.Count (a x))
let cnt_star = Aggregate.make Aggregate.Count_star
let min_ x = Aggregate.make (Aggregate.Min (a x))

let udf name inputs output child = Plan.udf name (set inputs) (a output) child
let order keys child = Plan.order_by (List.map (fun (n, d) -> (a n, d)) keys) child
let top n child = Plan.limit n child

(* The paper's algebra admits only single-attribute aggregates
   gamma_{A,f(a)}; TPC-H expression aggregates are abstracted to their
   primary attribute (see mli). [revenue_udf]/[year_udf] build the
   udf-based variants used by the ablation benchmarks. *)
let revenue_udf child =
  udf "expr:revenue" [ "l_extendedprice"; "l_discount" ] "l_extendedprice" child

let year_udf attr child = udf "expr:year" [ attr ] attr child

(* --- Q1: pricing summary report.
   Simplification: the expression aggregates (disc_price, charge) are
   abstracted to single-attribute aggregates, as the paper's algebra
   gamma_{A,f(a)} requires. *)
let q1 () =
  leaf S.lineitem
    [ "l_returnflag"; "l_linestatus"; "l_quantity"; "l_extendedprice";
      "l_discount"; "l_shipdate" ]
  |> sel [ cle "l_shipdate" (date "1998-09-02") ]
  |> group
       [ "l_returnflag"; "l_linestatus" ]
       [ sum "l_quantity"; sum "l_extendedprice"; avg "l_quantity";
         avg "l_discount"; cnt_star ]
  |> order [ ("l_returnflag", Plan.Asc); ("l_linestatus", Plan.Asc) ]

(* --- Q2: minimum-cost supplier.
   Decorrelated: the correlated min(ps_supplycost) subquery becomes the
   final group-by (no join-back, which would need a second partsupp). *)
let q2 () =
  let p =
    leaf S.part [ "p_partkey"; "p_size"; "p_type"; "p_mfgr" ]
    |> sel [ ceq "p_size" (vi 15); like "p_type" "%BRASS" ]
  in
  let ps = leaf S.partsupp [ "ps_partkey"; "ps_suppkey"; "ps_supplycost" ] in
  let s = leaf S.supplier [ "s_suppkey"; "s_nationkey"; "s_acctbal" ] in
  let n = leaf S.nation [ "n_nationkey"; "n_regionkey"; "n_name" ] in
  let r = leaf S.region [ "r_regionkey"; "r_name" ] |> sel [ ceq "r_name" (vs "EUROPE") ] in
  join [ eq "p_partkey" "ps_partkey" ] p ps
  |> fun pps ->
  join [ eq "ps_suppkey" "s_suppkey" ] pps s
  |> fun x ->
  join [ eq "s_nationkey" "n_nationkey" ] x n
  |> fun x ->
  join [ eq "n_regionkey" "r_regionkey" ] x r
  |> group [ "p_partkey"; "p_mfgr" ] [ min_ "ps_supplycost" ]
  |> order [ ("ps_supplycost", Plan.Asc); ("p_partkey", Plan.Asc) ]
  |> top 100

(* --- Q3: shipping priority. *)
let q3 () =
  let c =
    leaf S.customer [ "c_custkey"; "c_mktsegment" ]
    |> sel [ ceq "c_mktsegment" (vs "BUILDING") ]
  in
  let o =
    leaf S.orders [ "o_orderkey"; "o_custkey"; "o_orderdate"; "o_shippriority" ]
    |> sel [ clt "o_orderdate" (date "1995-03-15") ]
  in
  let l =
    leaf S.lineitem [ "l_orderkey"; "l_extendedprice"; "l_discount"; "l_shipdate" ]
    |> sel [ cgt "l_shipdate" (date "1995-03-15") ]
  in
  join [ eq "c_custkey" "o_custkey" ] c o
  |> fun co ->
  join [ eq "o_orderkey" "l_orderkey" ] co l
  |> group [ "l_orderkey"; "o_orderdate"; "o_shippriority" ] [ sum "l_extendedprice" ]
  |> order [ ("l_extendedprice", Plan.Desc); ("o_orderdate", Plan.Asc) ]
  |> top 10

(* --- Q4: order priority checking.
   The EXISTS becomes a plain join (may overcount duplicates). *)
let q4 () =
  let o =
    leaf S.orders [ "o_orderkey"; "o_orderdate"; "o_orderpriority" ]
    |> sel [ cge "o_orderdate" (date "1993-07-01");
             clt "o_orderdate" (date "1993-10-01") ]
  in
  let l =
    leaf S.lineitem [ "l_orderkey"; "l_commitdate"; "l_receiptdate" ]
    |> sel [ lt_attr "l_commitdate" "l_receiptdate" ]
  in
  join [ eq "o_orderkey" "l_orderkey" ] o l
  |> group [ "o_orderpriority" ] [ cnt_star ]

(* --- Q5: local supplier volume. *)
let q5 () =
  let c = leaf S.customer [ "c_custkey"; "c_nationkey" ] in
  let o =
    leaf S.orders [ "o_orderkey"; "o_custkey"; "o_orderdate" ]
    |> sel [ cge "o_orderdate" (date "1994-01-01");
             clt "o_orderdate" (date "1995-01-01") ]
  in
  let l = leaf S.lineitem [ "l_orderkey"; "l_suppkey"; "l_extendedprice"; "l_discount" ] in
  let s = leaf S.supplier [ "s_suppkey"; "s_nationkey" ] in
  let n = leaf S.nation [ "n_nationkey"; "n_regionkey"; "n_name" ] in
  let r =
    leaf S.region [ "r_regionkey"; "r_name" ] |> sel [ ceq "r_name" (vs "ASIA") ]
  in
  join [ eq "c_custkey" "o_custkey" ] c o
  |> fun co ->
  join [ eq "o_orderkey" "l_orderkey" ] co l
  |> fun col ->
  join [ eq "l_suppkey" "s_suppkey"; eq "c_nationkey" "s_nationkey" ] col s
  |> fun cols ->
  join [ eq "s_nationkey" "n_nationkey" ] cols n
  |> fun x ->
  join [ eq "n_regionkey" "r_regionkey" ] x r
  |> group [ "n_name" ] [ sum "l_extendedprice" ]

(* --- Q6: forecasting revenue change. *)
let q6 () =
  leaf S.lineitem [ "l_shipdate"; "l_discount"; "l_quantity"; "l_extendedprice" ]
  |> sel
       [ cge "l_shipdate" (date "1994-01-01");
         clt "l_shipdate" (date "1995-01-01");
         cge "l_discount" (vf 0.05); cle "l_discount" (vf 0.07);
         clt "l_quantity" (vf 24.0) ]
  |> group [] [ sum "l_extendedprice" ]

(* --- Q7: volume shipping.
   Simplification: one nation dimension (the n1/n2 self-join collapses to
   the supplier side; the customer side keeps the date filter). *)
let q7 () =
  let s = leaf S.supplier [ "s_suppkey"; "s_nationkey" ] in
  let l =
    leaf S.lineitem
      [ "l_orderkey"; "l_suppkey"; "l_extendedprice"; "l_discount"; "l_shipdate" ]
    |> sel [ cge "l_shipdate" (date "1995-01-01");
             cle "l_shipdate" (date "1996-12-31") ]
  in
  let o = leaf S.orders [ "o_orderkey"; "o_custkey" ] in
  let c = leaf S.customer [ "c_custkey" ] in
  let n =
    leaf S.nation [ "n_nationkey"; "n_name" ]
    |> sel [ inl "n_name" [ vs "FRANCE"; vs "GERMANY" ] ]
  in
  join [ eq "s_suppkey" "l_suppkey" ] s l
  |> fun sl ->
  join [ eq "l_orderkey" "o_orderkey" ] sl o
  |> fun slo ->
  join [ eq "o_custkey" "c_custkey" ] slo c
  |> fun x ->
  join [ eq "s_nationkey" "n_nationkey" ] x n
  |> group [ "n_name"; "l_shipdate" ] [ sum "l_extendedprice" ]

(* --- Q8: national market share (share numerator only). *)
let q8 () =
  let p =
    leaf S.part [ "p_partkey"; "p_type" ]
    |> sel [ ceq "p_type" (vs "ECONOMY ANODIZED STEEL") ]
  in
  let l =
    leaf S.lineitem
      [ "l_orderkey"; "l_partkey"; "l_suppkey"; "l_extendedprice"; "l_discount" ]
  in
  let o =
    leaf S.orders [ "o_orderkey"; "o_custkey"; "o_orderdate" ]
    |> sel [ cge "o_orderdate" (date "1995-01-01");
             cle "o_orderdate" (date "1996-12-31") ]
  in
  let c = leaf S.customer [ "c_custkey"; "c_nationkey" ] in
  let n = leaf S.nation [ "n_nationkey"; "n_regionkey" ] in
  let r =
    leaf S.region [ "r_regionkey"; "r_name" ]
    |> sel [ ceq "r_name" (vs "AMERICA") ]
  in
  let s = leaf S.supplier [ "s_suppkey" ] in
  join [ eq "p_partkey" "l_partkey" ] p l
  |> fun pl ->
  join [ eq "l_orderkey" "o_orderkey" ] pl o
  |> fun plo ->
  join [ eq "o_custkey" "c_custkey" ] plo c
  |> fun x ->
  join [ eq "c_nationkey" "n_nationkey" ] x n
  |> fun x ->
  join [ eq "n_regionkey" "r_regionkey" ] x r
  |> fun x ->
  join [ eq "l_suppkey" "s_suppkey" ] x s
  |> group [ "o_orderdate" ] [ sum "l_extendedprice" ]

(* --- Q9: product type profit measure. *)
let q9 () =
  let p =
    leaf S.part [ "p_partkey"; "p_name" ] |> sel [ like "p_name" "%green%" ]
  in
  let l =
    leaf S.lineitem
      [ "l_orderkey"; "l_partkey"; "l_suppkey"; "l_quantity";
        "l_extendedprice"; "l_discount" ]
  in
  let s = leaf S.supplier [ "s_suppkey"; "s_nationkey" ] in
  let ps = leaf S.partsupp [ "ps_partkey"; "ps_suppkey"; "ps_supplycost" ] in
  let o = leaf S.orders [ "o_orderkey"; "o_orderdate" ] in
  let n = leaf S.nation [ "n_nationkey"; "n_name" ] in
  join [ eq "p_partkey" "l_partkey" ] p l
  |> fun pl ->
  join [ eq "l_suppkey" "s_suppkey" ] pl s
  |> fun pls ->
  join [ eq "l_partkey" "ps_partkey"; eq "l_suppkey" "ps_suppkey" ] pls ps
  |> fun x ->
  join [ eq "l_orderkey" "o_orderkey" ] x o
  |> fun x ->
  join [ eq "s_nationkey" "n_nationkey" ] x n
  |> group [ "n_name"; "o_orderdate" ] [ sum "l_extendedprice" ]

(* --- Q10: returned item reporting. *)
let q10 () =
  let c = leaf S.customer [ "c_custkey"; "c_name"; "c_nationkey"; "c_acctbal" ] in
  let o =
    leaf S.orders [ "o_orderkey"; "o_custkey"; "o_orderdate" ]
    |> sel [ cge "o_orderdate" (date "1993-10-01");
             clt "o_orderdate" (date "1994-01-01") ]
  in
  let l =
    leaf S.lineitem [ "l_orderkey"; "l_returnflag"; "l_extendedprice"; "l_discount" ]
    |> sel [ ceq "l_returnflag" (vs "R") ]
  in
  let n = leaf S.nation [ "n_nationkey"; "n_name" ] in
  join [ eq "c_custkey" "o_custkey" ] c o
  |> fun co ->
  join [ eq "o_orderkey" "l_orderkey" ] co l
  |> fun col ->
  join [ eq "c_nationkey" "n_nationkey" ] col n
  |> group [ "c_custkey"; "c_name"; "n_name"; "c_acctbal" ] [ sum "l_extendedprice" ]
  |> order [ ("l_extendedprice", Plan.Desc) ]
  |> top 20

(* --- Q11: important stock identification (absolute having threshold). *)
let q11 () =
  let ps = leaf S.partsupp [ "ps_partkey"; "ps_suppkey"; "ps_supplycost"; "ps_availqty" ] in
  let s = leaf S.supplier [ "s_suppkey"; "s_nationkey" ] in
  let n =
    leaf S.nation [ "n_nationkey"; "n_name" ]
    |> sel [ ceq "n_name" (vs "GERMANY") ]
  in
  join [ eq "ps_suppkey" "s_suppkey" ] ps s
  |> fun pss ->
  join [ eq "s_nationkey" "n_nationkey" ] pss n
  |> group [ "ps_partkey" ] [ sum "ps_supplycost" ]
  |> sel [ cgt "ps_supplycost" (vf 1000.0) ]

(* --- Q12: shipping mode and order priority. *)
let q12 () =
  let o = leaf S.orders [ "o_orderkey"; "o_orderpriority" ] in
  let l =
    leaf S.lineitem
      [ "l_orderkey"; "l_shipmode"; "l_commitdate"; "l_receiptdate"; "l_shipdate" ]
    |> sel
         [ inl "l_shipmode" [ vs "MAIL"; vs "SHIP" ];
           lt_attr "l_commitdate" "l_receiptdate";
           lt_attr "l_shipdate" "l_commitdate";
           cge "l_receiptdate" (date "1994-01-01");
           clt "l_receiptdate" (date "1995-01-01") ]
  in
  join [ eq "o_orderkey" "l_orderkey" ] o l
  |> group [ "l_shipmode" ] [ cnt "o_orderpriority"; cnt_star ]

(* --- Q13: customer distribution (inner join; NOT LIKE filter dropped). *)
let q13 () =
  let c = leaf S.customer [ "c_custkey" ] in
  let o = leaf S.orders [ "o_orderkey"; "o_custkey" ] in
  join [ eq "c_custkey" "o_custkey" ] c o
  |> group [ "c_custkey" ] [ cnt "o_orderkey" ]
  |> group [ "o_orderkey" ] [ cnt_star ]

(* --- Q14: promotion effect (numerator branch). *)
let q14 () =
  let l =
    leaf S.lineitem [ "l_partkey"; "l_extendedprice"; "l_discount"; "l_shipdate" ]
    |> sel [ cge "l_shipdate" (date "1995-09-01");
             clt "l_shipdate" (date "1995-10-01") ]
  in
  let p =
    leaf S.part [ "p_partkey"; "p_type" ] |> sel [ like "p_type" "PROMO%" ]
  in
  join [ eq "l_partkey" "p_partkey" ] l p
  |> group [] [ sum "l_extendedprice" ]

(* --- Q15: top supplier (max subquery approximated by the revenue view
   joined back to supplier). *)
let q15 () =
  let l =
    leaf S.lineitem [ "l_suppkey"; "l_extendedprice"; "l_discount"; "l_shipdate" ]
    |> sel [ cge "l_shipdate" (date "1996-01-01");
             clt "l_shipdate" (date "1996-04-01") ]
  in
  let view = l |> group [ "l_suppkey" ] [ sum "l_extendedprice" ] in
  let s = leaf S.supplier [ "s_suppkey"; "s_name"; "s_phone" ] in
  join [ eq "s_suppkey" "l_suppkey" ] s view

(* --- Q16: parts/supplier relationship (NOT IN subquery dropped). *)
let q16 () =
  let ps = leaf S.partsupp [ "ps_partkey"; "ps_suppkey" ] in
  let p =
    leaf S.part [ "p_partkey"; "p_brand"; "p_type"; "p_size" ]
    |> sel
         [ Predicate.Cmp_const (a "p_brand", Predicate.Neq, vs "Brand#45");
           inl "p_size" [ vi 49; vi 14; vi 23; vi 45; vi 19; vi 3; vi 36; vi 9 ] ]
  in
  join [ eq "p_partkey" "ps_partkey" ] p ps
  |> group [ "p_brand"; "p_type"; "p_size" ] [ cnt "ps_suppkey" ]

(* --- Q17: small-quantity-order revenue (correlated avg threshold
   becomes a constant quantity bound). *)
let q17 () =
  let l = leaf S.lineitem [ "l_partkey"; "l_quantity"; "l_extendedprice" ] in
  let p =
    leaf S.part [ "p_partkey"; "p_brand"; "p_container" ]
    |> sel [ ceq "p_brand" (vs "Brand#23"); ceq "p_container" (vs "MED BOX") ]
  in
  join [ eq "l_partkey" "p_partkey" ] l p
  |> sel [ clt "l_quantity" (vf 5.0) ]
  |> group [] [ sum "l_extendedprice" ]

(* --- Q18: large volume customer. *)
let q18 () =
  let big =
    leaf S.lineitem [ "l_orderkey"; "l_quantity" ]
    |> group [ "l_orderkey" ] [ sum "l_quantity" ]
    |> sel [ cgt "l_quantity" (vf 300.0) ]
  in
  let o = leaf S.orders [ "o_orderkey"; "o_custkey"; "o_orderdate"; "o_totalprice" ] in
  let c = leaf S.customer [ "c_custkey"; "c_name" ] in
  join [ eq "o_orderkey" "l_orderkey" ] o big
  |> fun ob ->
  join [ eq "o_custkey" "c_custkey" ] ob c
  |> group [ "c_name"; "o_orderkey"; "o_orderdate"; "o_totalprice" ]
       [ sum "l_quantity" ]
  |> order [ ("o_totalprice", Plan.Desc); ("o_orderdate", Plan.Asc) ]
  |> top 100

(* --- Q19: discounted revenue — keeps a real disjunction over brands. *)
let q19 () =
  let l =
    leaf S.lineitem
      [ "l_partkey"; "l_quantity"; "l_extendedprice"; "l_discount";
        "l_shipmode"; "l_shipinstruct" ]
    |> Plan.select
         [ [ Predicate.In_list (a "l_shipmode", [ vs "AIR"; vs "REG AIR" ]) ];
           [ ceq "l_shipinstruct" (vs "DELIVER IN PERSON") ];
           [ cge "l_quantity" (vf 1.0) ]; [ cle "l_quantity" (vf 30.0) ] ]
  in
  let p =
    leaf S.part [ "p_partkey"; "p_brand"; "p_size" ]
    |> Plan.select
         [ [ ceq "p_brand" (vs "Brand#12"); ceq "p_brand" (vs "Brand#23");
             ceq "p_brand" (vs "Brand#34") ];
           [ cge "p_size" (vi 1); cle "p_size" (vi 15) ] ]
  in
  join [ eq "p_partkey" "l_partkey" ] p l
  |> group [] [ sum "l_extendedprice" ]

(* --- Q20: potential part promotion (lineitem availability subquery
   dropped). *)
let q20 () =
  let p =
    leaf S.part [ "p_partkey"; "p_name" ] |> sel [ like "p_name" "forest%" ]
  in
  let ps = leaf S.partsupp [ "ps_partkey"; "ps_suppkey"; "ps_availqty" ] in
  let s = leaf S.supplier [ "s_suppkey"; "s_name"; "s_nationkey" ] in
  let n =
    leaf S.nation [ "n_nationkey"; "n_name" ]
    |> sel [ ceq "n_name" (vs "CANADA") ]
  in
  join [ eq "p_partkey" "ps_partkey" ] p ps
  |> fun pps ->
  join [ eq "ps_suppkey" "s_suppkey" ] pps s
  |> fun x ->
  join [ eq "s_nationkey" "n_nationkey" ] x n
  |> group [ "s_name" ] [ cnt "ps_availqty" ]

(* --- Q21: suppliers who kept orders waiting (l2/l3 self-joins
   dropped). *)
let q21 () =
  let s = leaf S.supplier [ "s_suppkey"; "s_name"; "s_nationkey" ] in
  let l =
    leaf S.lineitem [ "l_orderkey"; "l_suppkey"; "l_commitdate"; "l_receiptdate" ]
    |> sel [ gt_attr "l_receiptdate" "l_commitdate" ]
  in
  let o =
    leaf S.orders [ "o_orderkey"; "o_orderstatus" ]
    |> sel [ ceq "o_orderstatus" (vs "F") ]
  in
  let n =
    leaf S.nation [ "n_nationkey"; "n_name" ]
    |> sel [ ceq "n_name" (vs "SAUDI ARABIA") ]
  in
  join [ eq "s_suppkey" "l_suppkey" ] s l
  |> fun sl ->
  join [ eq "l_orderkey" "o_orderkey" ] sl o
  |> fun slo ->
  join [ eq "s_nationkey" "n_nationkey" ] slo n
  |> group [ "s_name" ] [ cnt_star ]
  |> order [ ("s_name", Plan.Asc) ]
  |> top 100

(* --- Q22: global sales opportunity (anti-join on orders and the avg
   balance subquery dropped; country code via udf). *)
let q22 () =
  leaf S.customer [ "c_phone"; "c_acctbal" ]
  |> udf "expr:country_code" [ "c_phone" ] "c_phone"
  |> sel
       [ inl "c_phone" [ vs "13"; vs "31"; vs "23"; vs "29"; vs "30"; vs "18"; vs "17" ];
         cgt "c_acctbal" (vf 0.0) ]
  |> group [ "c_phone" ] [ cnt_star; sum "c_acctbal" ]

let all =
  [ (1, "pricing summary report", q1); (2, "minimum cost supplier", q2);
    (3, "shipping priority", q3); (4, "order priority checking", q4);
    (5, "local supplier volume", q5); (6, "forecasting revenue change", q6);
    (7, "volume shipping", q7); (8, "national market share", q8);
    (9, "product type profit", q9); (10, "returned item reporting", q10);
    (11, "important stock identification", q11);
    (12, "shipping modes and order priority", q12);
    (13, "customer distribution", q13); (14, "promotion effect", q14);
    (15, "top supplier", q15); (16, "parts/supplier relationship", q16);
    (17, "small-quantity-order revenue", q17);
    (18, "large volume customer", q18); (19, "discounted revenue", q19);
    (20, "potential part promotion", q20);
    (21, "suppliers who kept orders waiting", q21);
    (22, "global sales opportunity", q22) ]

let query n =
  match List.find_opt (fun (i, _, _) -> i = n) all with
  | Some (_, _, b) -> b ()
  | None -> invalid_arg (Printf.sprintf "Tpch_queries.query: Q%d" n)

(* year from epoch day (inverse of Value.date_of_string's civil encoding) *)
let year_of_day z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  if m <= 2 then y + 1 else y

let fnum = function
  | Value.Int i -> float_of_int i
  | Value.Float f -> f
  | Value.Null -> 0.0
  | v -> invalid_arg ("expr udf: non-numeric input " ^ Value.to_string v)

(* Inputs arrive in alphabetical attribute-name order. *)
let udf_impls =
  [ ( "expr:revenue",
      (* l_discount, l_extendedprice *)
      function
      | [ d; p ] -> Value.Float (fnum p *. (1.0 -. fnum d))
      | _ -> invalid_arg "expr:revenue arity" );
    ( "expr:disc_revenue",
      function
      | [ d; p ] -> Value.Float (fnum p *. fnum d)
      | _ -> invalid_arg "expr:disc_revenue arity" );
    ( "expr:charge",
      (* l_discount, l_extendedprice, l_tax *)
      function
      | [ d; p; t ] -> Value.Float (fnum p *. (1.0 -. fnum d) *. (1.0 +. fnum t))
      | _ -> invalid_arg "expr:charge arity" );
    ( "expr:profit",
      (* l_discount, l_extendedprice, l_quantity, ps_supplycost *)
      function
      | [ d; p; q; c ] ->
          Value.Float ((fnum p *. (1.0 -. fnum d)) -. (fnum c *. fnum q))
      | _ -> invalid_arg "expr:profit arity" );
    ( "expr:stock_value",
      (* ps_availqty, ps_supplycost *)
      function
      | [ q; c ] -> Value.Float (fnum q *. fnum c)
      | _ -> invalid_arg "expr:stock_value arity" );
    ( "expr:year",
      function
      | [ Value.Date d ] -> Value.Int (year_of_day d)
      | [ v ] -> v
      | _ -> invalid_arg "expr:year arity" );
    ( "expr:country_code",
      function
      | [ Value.Str phone ] ->
          Value.Str (if String.length phone >= 2 then String.sub phone 0 2 else phone)
      | [ v ] -> v
      | _ -> invalid_arg "expr:country_code arity" ) ]
