open Relalg

let authority1 = "A1"
let authority2 = "A2"

let region =
  Schema.make ~name:"region" ~owner:authority1
    [ ("r_regionkey", Schema.Tint); ("r_name", Schema.Tstring);
      ("r_comment", Schema.Tstring) ]

let nation =
  Schema.make ~name:"nation" ~owner:authority1
    [ ("n_nationkey", Schema.Tint); ("n_name", Schema.Tstring);
      ("n_regionkey", Schema.Tint); ("n_comment", Schema.Tstring) ]

let supplier =
  Schema.make ~name:"supplier" ~owner:authority2
    [ ("s_suppkey", Schema.Tint); ("s_name", Schema.Tstring);
      ("s_address", Schema.Tstring); ("s_nationkey", Schema.Tint);
      ("s_phone", Schema.Tstring); ("s_acctbal", Schema.Tfloat);
      ("s_comment", Schema.Tstring) ]

let part =
  Schema.make ~name:"part" ~owner:authority2
    [ ("p_partkey", Schema.Tint); ("p_name", Schema.Tstring);
      ("p_mfgr", Schema.Tstring); ("p_brand", Schema.Tstring);
      ("p_type", Schema.Tstring); ("p_size", Schema.Tint);
      ("p_container", Schema.Tstring); ("p_retailprice", Schema.Tfloat);
      ("p_comment", Schema.Tstring) ]

let partsupp =
  Schema.make ~name:"partsupp" ~owner:authority2
    [ ("ps_partkey", Schema.Tint); ("ps_suppkey", Schema.Tint);
      ("ps_availqty", Schema.Tint); ("ps_supplycost", Schema.Tfloat);
      ("ps_comment", Schema.Tstring) ]

let customer =
  Schema.make ~name:"customer" ~owner:authority1
    [ ("c_custkey", Schema.Tint); ("c_name", Schema.Tstring);
      ("c_address", Schema.Tstring); ("c_nationkey", Schema.Tint);
      ("c_phone", Schema.Tstring); ("c_acctbal", Schema.Tfloat);
      ("c_mktsegment", Schema.Tstring); ("c_comment", Schema.Tstring) ]

let orders =
  Schema.make ~name:"orders" ~owner:authority1
    [ ("o_orderkey", Schema.Tint); ("o_custkey", Schema.Tint);
      ("o_orderstatus", Schema.Tstring); ("o_totalprice", Schema.Tfloat);
      ("o_orderdate", Schema.Tdate); ("o_orderpriority", Schema.Tstring);
      ("o_clerk", Schema.Tstring); ("o_shippriority", Schema.Tint);
      ("o_comment", Schema.Tstring) ]

let lineitem =
  Schema.make ~name:"lineitem" ~owner:authority2
    [ ("l_orderkey", Schema.Tint); ("l_partkey", Schema.Tint);
      ("l_suppkey", Schema.Tint); ("l_linenumber", Schema.Tint);
      ("l_quantity", Schema.Tfloat); ("l_extendedprice", Schema.Tfloat);
      ("l_discount", Schema.Tfloat); ("l_tax", Schema.Tfloat);
      ("l_returnflag", Schema.Tstring); ("l_linestatus", Schema.Tstring);
      ("l_shipdate", Schema.Tdate); ("l_commitdate", Schema.Tdate);
      ("l_receiptdate", Schema.Tdate); ("l_shipinstruct", Schema.Tstring);
      ("l_shipmode", Schema.Tstring); ("l_comment", Schema.Tstring) ]

let all =
  [ region; nation; supplier; part; partsupp; customer; orders; lineitem ]

(* Average column widths in bytes (TPC-H spec averages; comments use the
   average of their variable range). *)
let widths =
  [ ("region", [ ("r_regionkey", 4.); ("r_name", 7.); ("r_comment", 66.) ]);
    ( "nation",
      [ ("n_nationkey", 4.); ("n_name", 8.); ("n_regionkey", 4.);
        ("n_comment", 86.) ] );
    ( "supplier",
      [ ("s_suppkey", 4.); ("s_name", 18.); ("s_address", 25.);
        ("s_nationkey", 4.); ("s_phone", 15.); ("s_acctbal", 8.);
        ("s_comment", 63.) ] );
    ( "part",
      [ ("p_partkey", 4.); ("p_name", 33.); ("p_mfgr", 25.);
        ("p_brand", 10.); ("p_type", 21.); ("p_size", 4.);
        ("p_container", 8.); ("p_retailprice", 8.); ("p_comment", 14.) ] );
    ( "partsupp",
      [ ("ps_partkey", 4.); ("ps_suppkey", 4.); ("ps_availqty", 4.);
        ("ps_supplycost", 8.); ("ps_comment", 124.) ] );
    ( "customer",
      [ ("c_custkey", 4.); ("c_name", 18.); ("c_address", 25.);
        ("c_nationkey", 4.); ("c_phone", 15.); ("c_acctbal", 8.);
        ("c_mktsegment", 10.); ("c_comment", 73.) ] );
    ( "orders",
      [ ("o_orderkey", 4.); ("o_custkey", 4.); ("o_orderstatus", 1.);
        ("o_totalprice", 8.); ("o_orderdate", 4.); ("o_orderpriority", 8.);
        ("o_clerk", 15.); ("o_shippriority", 4.); ("o_comment", 49.) ] );
    ( "lineitem",
      [ ("l_orderkey", 4.); ("l_partkey", 4.); ("l_suppkey", 4.);
        ("l_linenumber", 4.); ("l_quantity", 8.); ("l_extendedprice", 8.);
        ("l_discount", 8.); ("l_tax", 8.); ("l_returnflag", 1.);
        ("l_linestatus", 1.); ("l_shipdate", 4.); ("l_commitdate", 4.);
        ("l_receiptdate", 4.); ("l_shipinstruct", 12.); ("l_shipmode", 5.);
        ("l_comment", 27.) ] ) ]

let width_of table column =
  match List.assoc_opt table widths with
  | None -> 8.0
  | Some cols -> (
      match List.assoc_opt column cols with Some w -> w | None -> 8.0)

let base_cardinality ~sf = function
  | "region" -> 5.0
  | "nation" -> 25.0
  | "supplier" -> Float.max 1.0 (10_000.0 *. sf)
  | "part" -> Float.max 1.0 (200_000.0 *. sf)
  | "partsupp" -> Float.max 1.0 (800_000.0 *. sf)
  | "customer" -> Float.max 1.0 (150_000.0 *. sf)
  | "orders" -> Float.max 1.0 (1_500_000.0 *. sf)
  | "lineitem" -> Float.max 1.0 (6_000_000.0 *. sf)
  | t -> invalid_arg ("Tpch_schema.base_cardinality: " ^ t)

let base_stats ~sf name =
  match List.assoc_opt name widths with
  | None -> None
  | Some cols ->
      Some
        (Planner.Estimate.of_widths ~card:(base_cardinality ~sf name) cols)
