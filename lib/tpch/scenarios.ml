open Relalg

type t = UA | UAPenc | UAPmix

let all = [ UA; UAPenc; UAPmix ]
let name = function UA -> "UA" | UAPenc -> "UAPenc" | UAPmix -> "UAPmix"

let user = Authz.Subject.user "U"

let providers =
  [ Authz.Subject.provider "P1"; Authz.Subject.provider "P2";
    Authz.Subject.provider "P3" ]

let authorities =
  [ Authz.Subject.authority Tpch_schema.authority1;
    Authz.Subject.authority Tpch_schema.authority2 ]

let subjects = (user :: authorities) @ providers

(* Split a relation's attributes in two halves (deterministic: schema
   column order). *)
let halves schema =
  let names = List.map Attr.name (Schema.attr_list schema) in
  let n = List.length names in
  let rec split i acc = function
    | [] -> (List.rev acc, [])
    | rest when i >= (n + 1) / 2 -> (List.rev acc, rest)
    | x :: rest -> split (i + 1) (x :: acc) rest
  in
  split 0 [] names

let policy scenario =
  let user_rules =
    List.map
      (fun s ->
        Authz.Authorization.rule ~rel:s.Schema.name
          ~plain:(List.map Attr.name (Schema.attr_list s))
          (To user))
      Tpch_schema.all
  in
  let provider_rules =
    match scenario with
    | UA -> []
    | UAPenc ->
        List.concat_map
          (fun s ->
            List.map
              (fun p ->
                Authz.Authorization.rule ~rel:s.Schema.name
                  ~enc:(List.map Attr.name (Schema.attr_list s))
                  (To p))
              providers)
          Tpch_schema.all
    | UAPmix ->
        List.concat_map
          (fun s ->
            let plain, enc = halves s in
            List.map
              (fun p ->
                Authz.Authorization.rule ~rel:s.Schema.name ~plain ~enc (To p))
              providers)
          Tpch_schema.all
  in
  Authz.Authorization.make ~schemas:Tpch_schema.all
    (user_rules @ provider_rules)

let pricing =
  Planner.Pricing.make
    ~provider_multipliers:[ ("P1", 1.0); ("P2", 0.8); ("P3", 1.2) ]
    ()

let optimize ?(sf = 1.0) ?(fold_leaf_filters = true) ?memoize ~scenario plan =
  let plan, base =
    if fold_leaf_filters then
      let plan', factors = Planner.Leaf_filters.fold plan in
      (plan', Planner.Leaf_filters.scale_stats (Tpch_schema.base_stats ~sf) factors)
    else (plan, Tpch_schema.base_stats ~sf)
  in
  Planner.Optimizer.plan ?memoize ~policy:(policy scenario) ~subjects ~pricing
    ~base ~deliver_to:user plan
