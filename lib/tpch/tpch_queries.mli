(** The 22 TPC-H queries as relational-algebra plans.

    Plans follow the paper's conventions: projections pushed into the
    leaves, joins/selections/group-by as inner nodes, and arithmetic row
    expressions (e.g. revenue [l_extendedprice*(1-l_discount)]) modelled
    as udf nodes — named ["expr:..."] and charged at relational (not
    100×) CPU cost by the planner. TPC-H features outside the paper's
    algebra are decorrelated or simplified per standard practice
    (correlated subqueries become join/group-by combinations; self-joins,
    NOT LIKE and anti-joins are dropped); every deviation is noted next
    to the query builder and in EXPERIMENTS.md. Plan shapes and
    cross-authority data flows — what the cost evaluation of Figs. 9-10
    depends on — are preserved. *)

open Relalg

val all : (int * string * (unit -> Plan.t)) list
(** [(number, name, builder)] for Q1..Q22. Builders allocate fresh node
    ids on each call. *)

val query : int -> Plan.t
(** [query n] builds TPC-H Q[n]; raises [Invalid_argument] outside
    1..22. *)

val revenue_udf : Plan.t -> Plan.t
(** µ computing [l_extendedprice * (1 - l_discount)] into
    [l_extendedprice]. The standard queries abstract this expression away
    (the paper's γ admits one attribute); the udf ablation benchmarks put
    it back to study delegation of procedural computation (Sec. 7's udf
    discussion). *)

val year_udf : string -> Plan.t -> Plan.t
(** µ replacing a date attribute by its calendar year. *)

val udf_impls : (string * (Value.t list -> Value.t)) list
(** Implementations of every ["expr:*"] udf used by the plans, for the
    execution engine. Inputs arrive in alphabetical attribute order. *)

val year_of_day : int -> int
(** Calendar year of an epoch day (inverse of the date encoding). *)
