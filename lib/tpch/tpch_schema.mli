(** TPC-H schema (8 tables), split between two data authorities.

    The paper's evaluation distributes the TPC-H tables between two
    authorities; we give the order-side tables (customer, orders,
    nation, region) to authority [A1] and the item-side tables
    (lineitem, supplier, part, partsupp) to authority [A2], so that the
    large lineitem joins cross the authority boundary as in any
    federation worth the name. Column widths
    follow the TPC-H specification's average lengths and feed the cost
    model's size estimates. *)

open Relalg

val authority1 : string
val authority2 : string

val region : Schema.t
val nation : Schema.t
val supplier : Schema.t
val part : Schema.t
val partsupp : Schema.t
val customer : Schema.t
val orders : Schema.t
val lineitem : Schema.t

val all : Schema.t list

val width_of : string -> string -> float
(** [width_of table column]: average bytes (spec-derived). *)

val base_cardinality : sf:float -> string -> float
(** Row count of a table at a given scale factor ([sf = 1.0] is the 1 GB
    configuration used in the paper). *)

val base_stats : sf:float -> Planner.Estimate.base_stats
(** Statistics callback for the cost model at a given scale factor. *)
