(** Authorization scenarios of the paper's evaluation (Sec. 7).

    - [UA]: base relations visible only to the querying user (plus each
      authority's own relation) — all cross-authority work lands on the
      expensive user.
    - [UAPenc]: additionally, every cloud provider may access every
      attribute of every relation in encrypted form.
    - [UAPmix]: as [UAPenc], but half of each relation's attributes
      become plaintext-visible to providers.

    Subjects: user [U], authorities [A1]/[A2] (3× provider CPU price),
    and three providers [P1]/[P2]/[P3] with heterogeneous price
    multipliers (the open-market diversity the savings come from). *)

type t = UA | UAPenc | UAPmix

val all : t list
val name : t -> string

val user : Authz.Subject.t
val providers : Authz.Subject.t list
val subjects : Authz.Subject.t list

val policy : t -> Authz.Authorization.t
val pricing : Planner.Pricing.t

val optimize :
  ?sf:float ->
  ?fold_leaf_filters:bool ->
  ?memoize:bool ->
  scenario:t ->
  Relalg.Plan.t ->
  Planner.Optimizer.result
(** Run the authorization-aware optimizer on a query under a scenario,
    with TPC-H base statistics at scale [sf] (default 1.0, the paper's
    1 GB configuration) and results delivered to the user.

    [fold_leaf_filters] (default [true]) maps constant filters sitting
    on base relations into the leaf boxes, as the PostgreSQL plans the
    paper consumes do (see {!Planner.Leaf_filters}); pass [false] to
    keep them as explicit, delegable — but implicit-trace-leaving —
    selection nodes.

    [memoize] is forwarded to {!Planner.Optimizer.plan}: pass [false]
    to re-evaluate every local-search move from scratch (the planner
    benchmark uses this to measure the memo's effect). *)
