(** Fixed-size domain pool for data-parallel execution.

    A pool spawns its worker domains once and reuses them for every
    batch, so per-operator fan-out costs a queue push, not a domain
    spawn. Scheduling is help-first: the submitting domain drains the
    shared queue while it waits for its batch, which makes nested
    submissions (an operator fanning out from inside a subplan task)
    deadlock-free — whoever waits, works.

    Worker exceptions are captured with their backtraces and re-raised
    in the submitter at join time (first failing task in batch order).

    Observability: while {!Obs.enabled}, every task runs inside a
    private {!Obs.buffer} wrapped in a [par.d<k>] span naming the
    domain slot that executed it; buffers are merged into the
    submitter's collector state after the join, in task order, so
    counter totals are deterministic and the span tree shows which
    domain ran what. *)

type pool

val create : ?name:string -> int -> pool
(** [create jobs] builds a pool of [jobs] domains: [jobs - 1] spawned
    workers plus the submitting domain, which participates while
    waiting. [jobs <= 1] spawns nothing (every batch runs inline).
    [name] labels the pool in observability counters. *)

val size : pool -> int
(** The [jobs] the pool was created with (total domains, submitter
    included). *)

val shutdown : pool -> unit
(** Join the worker domains. Idempotent. Outstanding batches finish
    first (shutdown only closes the queue for new work). *)

val with_pool : ?name:string -> int -> (pool option -> 'a) -> 'a
(** [with_pool jobs f] passes [None] when [jobs <= 1], otherwise a
    fresh pool, and guarantees shutdown when [f] returns or raises. *)

val run_all : pool -> (unit -> 'a) list -> 'a list
(** Execute the thunks across the pool and return their results in
    input order. Re-raises the first (by input order) captured
    exception after the whole batch has settled. *)

val both : pool -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Run two independent computations concurrently — e.g. the two
    subtrees of a join. *)

val map_chunks :
  pool -> ?chunk:int -> f:(int -> 'a list -> 'b) -> 'a list -> 'b list
(** [map_chunks pool ~f xs] splits [xs] into contiguous chunks, applies
    [f start_index chunk] to each across the pool, and returns the
    chunk results in order. [start_index] is the offset of the chunk's
    first element in [xs], so position-keyed work (derived RNG streams,
    stable indices) is independent of the chunking. [chunk] overrides
    the default chunk size (max 64, or enough to give each domain a
    few chunks). *)

val map_list : pool -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel [List.map] built on {!map_chunks}. *)

val map_ranges :
  pool -> ?chunk:int -> f:(int -> int -> 'a) -> int -> 'a list
(** [map_ranges pool ~f n] covers [0 .. n - 1] with contiguous ranges,
    applies [f start len] to each across the pool, and returns the
    results in range order. The index-based twin of {!map_chunks} for
    array/column batches, with the same chunk-size policy. *)
