type pool = {
  jobs : int;
  name : string;
  mutex : Mutex.t;
  cond : Condition.t; (* signaled on submission, task completion, shutdown *)
  queue : (unit -> unit) Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t list;
}

(* Which pool slot this domain occupies: workers are 1..jobs-1, the
   submitting domain is 0. Only used to label observability spans. *)
let slot_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let worker pool slot () =
  Domain.DLS.set slot_key slot;
  Mutex.lock pool.mutex;
  let rec loop () =
    match Queue.take_opt pool.queue with
    | Some task ->
        Mutex.unlock pool.mutex;
        task ();
        Mutex.lock pool.mutex;
        loop ()
    | None ->
        if pool.live then begin
          Condition.wait pool.cond pool.mutex;
          loop ()
        end
  in
  loop ();
  Mutex.unlock pool.mutex

let create ?(name = "pool") jobs =
  let pool =
    { jobs;
      name;
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      live = true;
      workers = [] }
  in
  if jobs > 1 then
    pool.workers <-
      List.init (jobs - 1) (fun i -> Domain.spawn (worker pool (i + 1)));
  pool

let size pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.live <- false;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let with_pool ?name jobs f =
  if jobs <= 1 then f None
  else
    let pool = create ?name jobs in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f (Some pool))

let run_all pool thunks =
  match thunks with
  | [] -> []
  | [ f ] -> [ f () ]
  | _ when pool.jobs <= 1 -> List.map (fun f -> f ()) thunks
  | _ ->
      let thunks = Array.of_list thunks in
      let n = Array.length thunks in
      let observing = Obs.enabled () in
      let bufs =
        if observing then Array.init n (fun _ -> Obs.create_buffer ())
        else [||]
      in
      let results = Array.make n None in
      let remaining = ref n (* protected by pool.mutex *) in
      let wrap i =
        let f = thunks.(i) in
        let body () =
          if observing then
            Obs.in_buffer bufs.(i) (fun () ->
                Obs.with_span
                  (Printf.sprintf "par.d%d" (Domain.DLS.get slot_key))
                  (fun () ->
                    Obs.incr (pool.name ^ ".tasks");
                    f ()))
          else f ()
        in
        fun () ->
          let r =
            try Ok (body ())
            with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          Mutex.lock pool.mutex;
          results.(i) <- Some r;
          decr remaining;
          Condition.broadcast pool.cond;
          Mutex.unlock pool.mutex
      in
      if observing then Obs.incr (pool.name ^ ".batches");
      Mutex.lock pool.mutex;
      for i = 0 to n - 1 do
        Queue.push (wrap i) pool.queue
      done;
      Condition.broadcast pool.cond;
      (* help-first join: run queued tasks (ours or anyone's) while the
         batch is outstanding, sleeping only when the queue is empty *)
      let rec help () =
        if !remaining > 0 then
          match Queue.take_opt pool.queue with
          | Some task ->
              Mutex.unlock pool.mutex;
              task ();
              Mutex.lock pool.mutex;
              help ()
          | None ->
              Condition.wait pool.cond pool.mutex;
              help ()
      in
      help ();
      Mutex.unlock pool.mutex;
      if observing then Array.iter Obs.merge_buffer bufs;
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
             | None -> assert false)
           results)

let both pool f g =
  match
    run_all pool
      [ (fun () -> Either.Left (f ())); (fun () -> Either.Right (g ())) ]
  with
  | [ Either.Left a; Either.Right b ] -> (a, b)
  | _ -> assert false

(* contiguous chunks as [(start_index, chunk)] in order *)
let chunk_list size xs =
  let rec take k acc ys =
    if k = 0 then (List.rev acc, ys)
    else
      match ys with
      | [] -> (List.rev acc, [])
      | y :: rest -> take (k - 1) (y :: acc) rest
  in
  let rec go start acc ys =
    match ys with
    | [] -> List.rev acc
    | _ ->
        let c, rest = take size [] ys in
        go (start + List.length c) ((start, c) :: acc) rest
  in
  go 0 [] xs

let default_chunk pool n = max 64 ((n + (4 * pool.jobs) - 1) / (4 * pool.jobs))

let map_chunks pool ?chunk ~f xs =
  match xs with
  | [] -> []
  | _ ->
      let n = List.length xs in
      let size = match chunk with Some c -> max 1 c | None -> default_chunk pool n in
      if n <= size then [ f 0 xs ]
      else
        run_all pool
          (List.map (fun (start, c) () -> f start c) (chunk_list size xs))

let map_list pool ?chunk g xs =
  List.concat (map_chunks pool ?chunk ~f:(fun _ c -> List.map g c) xs)

let map_ranges pool ?chunk ~f n =
  if n <= 0 then []
  else
    let size = match chunk with Some c -> max 1 c | None -> default_chunk pool n in
    if n <= size then [ f 0 n ]
    else
      let rec ranges start =
        if start >= n then []
        else
          let len = min size (n - start) in
          (start, len) :: ranges (start + len)
      in
      run_all pool (List.map (fun (start, len) () -> f start len) (ranges 0))
