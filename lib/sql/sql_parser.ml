open Sql_ast
open Sql_lexer

exception Parse_error of string

type state = { mutable tokens : token list }

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let peek st = match st.tokens with [] -> Eof | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let next st =
  let t = peek st in
  advance st;
  t

let expect_symbol st s =
  match next st with
  | Symbol s' when s' = s -> ()
  | t -> fail "expected '%s', got %a" s pp_token t

let expect_kw st kw =
  match next st with
  | Ident s when s = kw -> ()
  | t -> fail "expected '%s', got %a" kw pp_token t

let accept_kw st kw =
  match peek st with
  | Ident s when s = kw ->
      advance st;
      true
  | _ -> false

let ident st =
  match next st with
  | Ident s -> s
  | t -> fail "expected identifier, got %a" pp_token t

let aggregate_functions = [ "sum"; "avg"; "min"; "max"; "count" ]

let constant st =
  match next st with
  | Int i -> Cint i
  | Float f -> Cfloat f
  | String s -> Cstring s
  | Ident "true" -> Cbool true
  | Ident "false" -> Cbool false
  | Ident "date" -> (
      match next st with
      | String s -> Cdate s
      | t -> fail "expected date literal, got %a" pp_token t)
  | t -> fail "expected constant, got %a" pp_token t

let comparison_of = function
  | "=" -> Some Eq
  | "<>" | "!=" -> Some Neq
  | "<" -> Some Lt
  | "<=" -> Some Le
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | _ -> None

let rec simple_condition st =
  let attr = ident st in
  match peek st with
  | Symbol s when comparison_of s <> None -> (
      advance st;
      let op = Option.get (comparison_of s) in
      match peek st with
      | Ident id
        when id <> "date" && id <> "true" && id <> "false" ->
          advance st;
          Cmp_attr (attr, op, id)
      | _ -> Cmp_const (attr, op, constant st))
  | Ident "in" ->
      advance st;
      expect_symbol st "(";
      let rec consts acc =
        let c = constant st in
        match next st with
        | Symbol "," -> consts (c :: acc)
        | Symbol ")" -> List.rev (c :: acc)
        | t -> fail "expected ',' or ')', got %a" pp_token t
      in
      In (attr, consts [])
  | Ident "like" -> (
      advance st;
      match next st with
      | String p -> Like (attr, p)
      | t -> fail "expected pattern, got %a" pp_token t)
  | Ident "between" ->
      advance st;
      let lo = constant st in
      expect_kw st "and";
      let hi = constant st in
      Between (attr, lo, hi)
  | t -> fail "expected condition operator after %s, got %a" attr pp_token t

and condition st =
  match peek st with
  | Symbol "(" ->
      advance st;
      let rec ors acc =
        let c = simple_condition st in
        if accept_kw st "or" then ors (c :: acc)
        else begin
          expect_symbol st ")";
          match acc with [] -> c | _ -> Or (List.rev (c :: acc))
        end
      in
      ors []
  | _ -> simple_condition st

let conditions st =
  let rec go acc =
    let c = condition st in
    if accept_kw st "and" then go (c :: acc) else List.rev (c :: acc)
  in
  go []

let select_item st =
  let name = ident st in
  if List.mem name aggregate_functions && peek st = Symbol "(" then begin
    advance st;
    let operand =
      match next st with
      | Symbol "*" -> None
      | Ident a -> Some a
      | t -> fail "expected column or '*', got %a" pp_token t
    in
    expect_symbol st ")";
    Agg (name, operand)
  end
  else Col name

let parse input =
  let st = { tokens = tokenize input } in
  expect_kw st "select";
  let distinct = accept_kw st "distinct" in
  let rec items acc =
    let item = select_item st in
    if peek st = Symbol "," then begin
      advance st;
      items (item :: acc)
    end
    else List.rev (item :: acc)
  in
  let select = items [] in
  expect_kw st "from";
  let rec from_rels rels ons =
    let rel = ident st in
    match peek st with
    | Symbol "," ->
        advance st;
        from_rels (rel :: rels) ons
    | Ident "join" ->
        advance st;
        let rel2 = ident st in
        expect_kw st "on";
        let conds = conditions st in
        from_more (rel2 :: rel :: rels) (ons @ conds)
    | _ -> (List.rev (rel :: rels), ons)
  and from_more rels ons =
    match peek st with
    | Symbol "," ->
        advance st;
        let rel = ident st in
        from_more (rel :: rels) ons
    | Ident "join" ->
        advance st;
        let rel = ident st in
        expect_kw st "on";
        let conds = conditions st in
        from_more (rel :: rels) (ons @ conds)
    | _ -> (List.rev rels, ons)
  in
  let from, join_on = from_rels [] [] in
  let where = if accept_kw st "where" then conditions st else [] in
  let group_by =
    if accept_kw st "group" then begin
      expect_kw st "by";
      let rec cols acc =
        let c = ident st in
        if peek st = Symbol "," then begin
          advance st;
          cols (c :: acc)
        end
        else List.rev (c :: acc)
      in
      cols []
    end
    else []
  in
  let having = if accept_kw st "having" then conditions st else [] in
  let order_by =
    if accept_kw st "order" then begin
      expect_kw st "by";
      let rec cols acc =
        let c = ident st in
        let desc =
          if accept_kw st "desc" then true
          else begin
            ignore (accept_kw st "asc");
            false
          end
        in
        if peek st = Symbol "," then begin
          advance st;
          cols ((c, desc) :: acc)
        end
        else List.rev ((c, desc) :: acc)
      in
      cols []
    end
    else []
  in
  let limit =
    if accept_kw st "limit" then
      match next st with
      | Int n -> Some n
      | t -> fail "expected limit count, got %a" pp_token t
    else None
  in
  (match next st with
  | Eof -> ()
  | t -> fail "trailing input: %a" pp_token t);
  { distinct; select; from; join_on; where; group_by; having; order_by;
    limit }
