(** Recursive-descent parser for the SQL subset.

    Supported shape (the paper's "select from where group by having"):
    {v
    SELECT item, ...            -- columns and aggregates
    FROM rel [JOIN rel ON a = b [AND ...]] [, rel ...]
    [WHERE cond AND ...]        -- =, <>, <, <=, >, >=, IN, LIKE,
                                -- BETWEEN, parenthesized OR groups
    [GROUP BY col, ...]
    [HAVING cond AND ...]
    v} *)

exception Parse_error of string

val parse : string -> Sql_ast.t
