(** Abstract syntax for the supported SQL subset.

    The paper frames queries as "select from where group by having" with
    joins between relations of different authorities (Sec. 1); this AST
    covers exactly that subset, plus IN/LIKE/BETWEEN sugar. *)

type constant =
  | Cint of int
  | Cfloat of float
  | Cstring of string
  | Cdate of string  (** ISO yyyy-mm-dd *)
  | Cbool of bool

type comparison = Eq | Neq | Lt | Le | Gt | Ge

type condition =
  | Cmp_const of string * comparison * constant
  | Cmp_attr of string * comparison * string
  | In of string * constant list
  | Like of string * string
  | Between of string * constant * constant
  | Or of condition list  (** disjunction of simple conditions *)

type select_item =
  | Col of string
  | Agg of string * string option  (** function name, operand ([None] = [*]) *)

type t = {
  distinct : bool;
  select : select_item list;
  from : string list;  (** relation names, joined left to right *)
  join_on : condition list;  (** explicit JOIN ... ON conditions *)
  where : condition list;  (** conjunction *)
  group_by : string list;
  having : condition list;
  order_by : (string * bool) list;  (** column, descending? *)
  limit : int option;
}

val pp : Format.formatter -> t -> unit
