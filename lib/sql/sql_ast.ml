type constant =
  | Cint of int
  | Cfloat of float
  | Cstring of string
  | Cdate of string
  | Cbool of bool

type comparison = Eq | Neq | Lt | Le | Gt | Ge

type condition =
  | Cmp_const of string * comparison * constant
  | Cmp_attr of string * comparison * string
  | In of string * constant list
  | Like of string * string
  | Between of string * constant * constant
  | Or of condition list

type select_item = Col of string | Agg of string * string option

type t = {
  distinct : bool;
  select : select_item list;
  from : string list;
  join_on : condition list;
  where : condition list;
  group_by : string list;
  having : condition list;
  order_by : (string * bool) list;
  limit : int option;
}

let pp_constant fmt = function
  | Cint i -> Format.pp_print_int fmt i
  | Cfloat f -> Format.fprintf fmt "%g" f
  | Cstring s -> Format.fprintf fmt "'%s'" s
  | Cdate d -> Format.fprintf fmt "date '%s'" d
  | Cbool b -> Format.pp_print_bool fmt b

let comparison_string = function
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec pp_condition fmt = function
  | Cmp_const (a, op, c) ->
      Format.fprintf fmt "%s %s %a" a (comparison_string op) pp_constant c
  | Cmp_attr (a, op, b) ->
      Format.fprintf fmt "%s %s %s" a (comparison_string op) b
  | In (a, cs) ->
      Format.fprintf fmt "%s in (%s)" a
        (String.concat ", " (List.map (Format.asprintf "%a" pp_constant) cs))
  | Like (a, p) -> Format.fprintf fmt "%s like '%s'" a p
  | Between (a, lo, hi) ->
      Format.fprintf fmt "%s between %a and %a" a pp_constant lo pp_constant hi
  | Or cs ->
      Format.fprintf fmt "(%s)"
        (String.concat " or "
           (List.map (Format.asprintf "%a" pp_condition) cs))

let pp_item fmt = function
  | Col c -> Format.pp_print_string fmt c
  | Agg (f, Some a) -> Format.fprintf fmt "%s(%s)" f a
  | Agg (f, None) -> Format.fprintf fmt "%s(*)" f

let pp fmt t =
  Format.fprintf fmt "select %s%s from %s"
    (if t.distinct then "distinct " else "")
    (String.concat ", " (List.map (Format.asprintf "%a" pp_item) t.select))
    (String.concat ", " t.from);
  if t.where <> [] then
    Format.fprintf fmt " where %s"
      (String.concat " and "
         (List.map (Format.asprintf "%a" pp_condition) t.where));
  if t.group_by <> [] then
    Format.fprintf fmt " group by %s" (String.concat ", " t.group_by);
  if t.having <> [] then
    Format.fprintf fmt " having %s"
      (String.concat " and "
         (List.map (Format.asprintf "%a" pp_condition) t.having));
  if t.order_by <> [] then
    Format.fprintf fmt " order by %s"
      (String.concat ", "
         (List.map (fun (c, d) -> if d then c ^ " desc" else c) t.order_by));
  (match t.limit with
  | Some n -> Format.fprintf fmt " limit %d" n
  | None -> ())
