open Relalg
open Sql_ast

exception Plan_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Plan_error s)) fmt

let value_of = function
  | Cint i -> Value.Int i
  | Cfloat f -> Value.Float f
  | Cstring s -> Value.Str s
  | Cdate d -> Value.date_of_string d
  | Cbool b -> Value.Bool b

let op_of = function
  | Eq -> Predicate.Eq
  | Neq -> Predicate.Neq
  | Lt -> Predicate.Lt
  | Le -> Predicate.Le
  | Gt -> Predicate.Gt
  | Ge -> Predicate.Ge

(* A condition becomes one or more CNF clauses. *)
let rec clauses_of_condition cond : Predicate.t =
  match cond with
  | Cmp_const (a, op, c) ->
      [ [ Predicate.Cmp_const (Attr.make a, op_of op, value_of c) ] ]
  | Cmp_attr (a, op, b) ->
      [ [ Predicate.Cmp_attr (Attr.make a, op_of op, Attr.make b) ] ]
  | In (a, cs) -> [ [ Predicate.In_list (Attr.make a, List.map value_of cs) ] ]
  | Like (a, p) -> [ [ Predicate.Like (Attr.make a, p) ] ]
  | Between (a, lo, hi) ->
      [ [ Predicate.Cmp_const (Attr.make a, Predicate.Ge, value_of lo) ];
        [ Predicate.Cmp_const (Attr.make a, Predicate.Le, value_of hi) ] ]
  | Or cs ->
      let atoms =
        List.concat_map
          (fun c ->
            match clauses_of_condition c with
            | [ clause ] -> clause
            | _ -> fail "BETWEEN is not supported inside OR")
          cs
      in
      [ atoms ]

let rec condition_attrs = function
  | Cmp_const (a, _, _) | In (a, _) | Like (a, _) | Between (a, _, _) -> [ a ]
  | Cmp_attr (a, _, b) -> [ a; b ]
  | Or cs -> List.concat_map condition_attrs cs

let agg_of item =
  match item with
  | Agg ("count", None) -> Aggregate.make Aggregate.Count_star
  | Agg (f, Some a) ->
      let a = Attr.make a in
      let func =
        match f with
        | "count" -> Aggregate.Count a
        | "sum" -> Aggregate.Sum a
        | "avg" -> Aggregate.Avg a
        | "min" -> Aggregate.Min a
        | "max" -> Aggregate.Max a
        | _ -> fail "unknown aggregate %s" f
      in
      Aggregate.make func
  | Agg (f, None) -> fail "%s(*) is not supported" f
  | Col _ -> fail "not an aggregate"

(* SQL identifiers are case-insensitive; canonicalize names against the
   catalog before planning. *)
let canonicalize ~catalog (q : Sql_ast.t) =
  let lc = String.lowercase_ascii in
  let rel name =
    match
      List.find_opt (fun s -> lc s.Schema.name = lc name) catalog
    with
    | Some s -> s.Schema.name
    | None -> fail "unknown relation %s" name
  in
  let from = List.map rel q.from in
  let schemas =
    List.map (fun r -> List.find (fun s -> s.Schema.name = r) catalog) from
  in
  let attr name =
    let matches =
      List.concat_map
        (fun s ->
          List.filter
            (fun a -> lc (Attr.name a) = lc name)
            (Schema.attr_list s))
        schemas
    in
    match List.sort_uniq Attr.compare matches with
    | [ a ] -> Attr.name a
    | [] -> fail "unknown column %s" name
    | _ -> fail "ambiguous column %s" name
  in
  let rec cond = function
    | Cmp_const (a, op, c) -> Cmp_const (attr a, op, c)
    | Cmp_attr (a, op, b) -> Cmp_attr (attr a, op, attr b)
    | In (a, cs) -> In (attr a, cs)
    | Like (a, p) -> Like (attr a, p)
    | Between (a, lo, hi) -> Between (attr a, lo, hi)
    | Or cs -> Or (List.map cond cs)
  in
  let item = function
    | Col c -> Col (attr c)
    | Agg (f, Some a) -> Agg (f, Some (attr a))
    | Agg (f, None) -> Agg (f, None)
  in
  { distinct = q.distinct;
    select = List.map item q.select;
    from;
    join_on = List.map cond q.join_on;
    where = List.map cond q.where;
    group_by = List.map attr q.group_by;
    having = List.map cond q.having;
    order_by = List.map (fun (c, d) -> (attr c, d)) q.order_by;
    limit = q.limit }

let to_plan ~catalog (q : Sql_ast.t) =
  if q.select = [] then fail "empty select list";
  let q = canonicalize ~catalog q in
  let schema_of rel =
    match List.find_opt (fun s -> s.Schema.name = rel) catalog with
    | Some s -> s
    | None -> fail "unknown relation %s" rel
  in
  let schemas = List.map schema_of q.from in
  let owner_of a =
    match
      List.filter (fun s -> Schema.mem s (Attr.make a)) schemas
    with
    | [ s ] -> s.Schema.name
    | [] -> fail "unknown column %s" a
    | _ -> fail "ambiguous column %s" a
  in
  (* columns each relation must expose *)
  let needed = Hashtbl.create 8 in
  let need a =
    let rel = owner_of a in
    let prev =
      Option.value ~default:Attr.Set.empty (Hashtbl.find_opt needed rel)
    in
    Hashtbl.replace needed rel (Attr.Set.add (Attr.make a) prev)
  in
  List.iter
    (function
      | Col a -> need a
      | Agg (_, Some a) -> need a
      | Agg (_, None) -> ())
    q.select;
  List.iter need q.group_by;
  List.iter (fun c -> List.iter need (condition_attrs c)) (q.join_on @ q.where);
  (* leaves with pushed-down projections and per-relation selections *)
  let is_single_rel rel cond =
    List.for_all (fun a -> owner_of a = rel) (condition_attrs cond)
    && (match cond with Cmp_attr _ -> false | _ -> true)
  in
  let leaf rel =
    let s = schema_of rel in
    let cols =
      match Hashtbl.find_opt needed rel with
      | Some set when not (Attr.Set.is_empty set) -> set
      | _ -> Attr.Set.singleton (List.hd (Schema.attr_list s))
    in
    let base = Plan.project cols (Plan.base s) in
    let local = List.filter (is_single_rel rel) q.where in
    match local with
    | [] -> base
    | _ -> Plan.select (List.concat_map clauses_of_condition local) base
  in
  (* join tree over the FROM order *)
  let cross_conds =
    List.filter
      (fun c ->
        match c with
        | Cmp_attr (a, _, b) -> owner_of a <> owner_of b
        | _ -> not (List.exists (fun rel -> is_single_rel rel c) q.from))
      (q.join_on @ q.where)
  in
  let joined, leftover =
    match q.from with
    | [] -> fail "empty FROM"
    | first :: rest ->
        List.fold_left
          (fun (acc, remaining) rel ->
            let right = leaf rel in
            let connects, rest_conds =
              List.partition
                (fun c ->
                  match c with
                  | Cmp_attr (a, _, b) ->
                      let sa = Attr.Set.mem (Attr.make a) (Plan.schema acc)
                      and sb =
                        Attr.Set.mem (Attr.make b) (Plan.schema right)
                      in
                      let sa' =
                        Attr.Set.mem (Attr.make b) (Plan.schema acc)
                      and sb' =
                        Attr.Set.mem (Attr.make a) (Plan.schema right)
                      in
                      (sa && sb) || (sa' && sb')
                  | _ -> false)
                remaining
            in
            let node =
              match connects with
              | [] -> Plan.product acc right
              | _ ->
                  Plan.join
                    (List.concat_map clauses_of_condition connects)
                    acc right
            in
            (node, rest_conds))
          (leaf first, cross_conds) rest
  in
  let joined =
    match leftover with
    | [] -> joined
    | _ -> Plan.select (List.concat_map clauses_of_condition leftover) joined
  in
  (* aggregation *)
  let agg_items = List.filter (function Agg _ -> true | Col _ -> false) q.select in
  let col_items =
    List.filter_map (function Col c -> Some c | Agg _ -> None) q.select
  in
  let result =
    if agg_items = [] && q.group_by = [] then
      let cols = Attr.Set.of_names col_items in
      if q.distinct then
        (* DISTINCT = duplicate elimination: a group-by with no
           aggregates over the selected columns *)
        Plan.group_by cols [] joined
      else if Attr.Set.equal cols (Plan.schema joined) then joined
      else Plan.project cols joined
    else begin
      List.iter
        (fun c ->
          if not (List.mem c q.group_by) then
            fail "column %s must appear in GROUP BY" c)
        col_items;
      let keys = Attr.Set.of_names q.group_by in
      Plan.group_by keys (List.map agg_of agg_items) joined
    end
  in
  let result =
    match q.having with
    | [] -> result
    | conds -> Plan.select (List.concat_map clauses_of_condition conds) result
  in
  let result =
    match q.order_by with
    | [] -> result
    | keys ->
        Plan.order_by
          (List.map
             (fun (c, desc) ->
               (Attr.make c, if desc then Plan.Desc else Plan.Asc))
             keys)
          result
  in
  match q.limit with None -> result | Some n -> Plan.limit n result

let parse_and_plan ~catalog input = to_plan ~catalog (Sql_parser.parse input)
