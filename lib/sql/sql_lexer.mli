(** Tokenizer for the SQL subset. *)

type token =
  | Ident of string  (** identifiers, lowercased *)
  | Int of int
  | Float of float
  | String of string  (** single-quoted; [''] escapes a quote *)
  | Symbol of string  (** punctuation and operators *)
  | Eof

exception Lex_error of string * int  (** message, position *)

val tokenize : string -> token list
(** Keywords come back as [Ident] (lowercased); the parser decides. *)

val pp_token : Format.formatter -> token -> unit
