(** SQL → query plan translation.

    Produces plans with the paper's conventions: projections pushed into
    the leaves, per-relation selections directly above them, a join tree
    folded left-to-right over the FROM list (equi-conditions drawn from
    ON and WHERE; a cartesian product when none connects), then group-by
    and having. Aggregate outputs keep their operand's name, so HAVING
    refers to e.g. [avg(p) > 100] as [p > 100] on the grouped relation. *)

open Relalg

exception Plan_error of string

val to_plan : catalog:Schema.t list -> Sql_ast.t -> Plan.t
(** Raises {!Plan_error} on unknown relations/columns, ambiguous column
    ownership, or aggregates mixed incorrectly with plain columns. *)

val parse_and_plan : catalog:Schema.t list -> string -> Plan.t
(** Compose {!Sql_parser.parse} and {!to_plan}. *)
