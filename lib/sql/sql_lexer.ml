type token =
  | Ident of string
  | Int of int
  | Float of float
  | String of string
  | Symbol of string
  | Eof

exception Lex_error of string * int

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let rec go i acc =
    if i >= n then List.rev (Eof :: acc)
    else
      let c = input.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1) acc
      else if is_digit c then begin
        let j = ref i in
        while !j < n && is_digit input.[!j] do incr j done;
        if !j < n && input.[!j] = '.' then begin
          incr j;
          while !j < n && is_digit input.[!j] do incr j done;
          let s = String.sub input i (!j - i) in
          go !j (Float (float_of_string s) :: acc)
        end
        else
          let s = String.sub input i (!j - i) in
          go !j (Int (int_of_string s) :: acc)
      end
      else if is_ident_char c then begin
        let j = ref i in
        while !j < n && is_ident_char input.[!j] do incr j done;
        let s = String.lowercase_ascii (String.sub input i (!j - i)) in
        go !j (Ident s :: acc)
      end
      else if c = '\'' then begin
        let buf = Buffer.create 16 in
        let j = ref (i + 1) in
        let closed = ref false in
        while (not !closed) && !j < n do
          if input.[!j] = '\'' then
            if !j + 1 < n && input.[!j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              j := !j + 2
            end
            else begin
              closed := true;
              incr j
            end
          else begin
            Buffer.add_char buf input.[!j];
            incr j
          end
        done;
        if not !closed then raise (Lex_error ("unterminated string", i));
        go !j (String (Buffer.contents buf) :: acc)
      end
      else
        let two = if i + 1 < n then String.sub input i 2 else "" in
        match two with
        | "<>" | "<=" | ">=" | "!=" -> go (i + 2) (Symbol two :: acc)
        | _ -> (
            match c with
            | '(' | ')' | ',' | '=' | '<' | '>' | '*' | '.' ->
                go (i + 1) (Symbol (String.make 1 c) :: acc)
            | _ -> raise (Lex_error (Printf.sprintf "unexpected '%c'" c, i)))
  in
  go 0 []

let pp_token fmt = function
  | Ident s -> Format.fprintf fmt "%s" s
  | Int i -> Format.fprintf fmt "%d" i
  | Float f -> Format.fprintf fmt "%g" f
  | String s -> Format.fprintf fmt "'%s'" s
  | Symbol s -> Format.fprintf fmt "%s" s
  | Eof -> Format.fprintf fmt "<eof>"
