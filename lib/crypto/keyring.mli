(** Key management.

    Def. 6.1 derives one key per cluster of attributes that must share a
    key (attributes appearing together in a root equivalence set). A
    keyring holds a master secret from which each cluster's 16-byte
    secret is derived by PRF; whoever receives a cluster secret can build
    the scheme keys (det / rnd / ope) for that cluster. The Paillier pair
    is per-keyring: the public key is freely shareable, the secret key is
    handed only to subjects that must decrypt aggregates. *)

type t

val create : ?seed:int64 -> unit -> t
(** Deterministic when [seed] is supplied (tests, reproducibility). *)

val cluster_secret : t -> string -> string
(** [cluster_secret t key_id] is the 16-byte secret for the cluster. *)

val det_key : t -> string -> Det.key
val rnd_key : t -> string -> Rnd.key
val ope_key : t -> string -> Ope.key

val det_key_of_secret : string -> Det.key
val rnd_key_of_secret : string -> Rnd.key
val ope_key_of_secret : string -> Ope.key

val paillier : t -> Paillier.public * Paillier.secret
(** Generated lazily and cached. *)

val rng : t -> Prng.t
(** The keyring's nonce generator (for randomized encryption). *)

val derived_rng : t -> string -> Prng.t
(** [derived_rng t label] is a fresh generator seeded by PRF from the
    keyring's master secret and [label]. Unlike {!rng} (a single shared
    stream advanced by every draw), the derived generator depends only
    on [(t, label)], so draws keyed by position — e.g. plan-node id and
    row index — are reproducible under any execution order. *)
