type key = { mac : Prf.t; enc : Speck.key }

let key_of_string master =
  if String.length master <> 16 then
    invalid_arg "Rnd.key_of_string: need 16 bytes";
  let prf = Prf.create master in
  { mac = Prf.create (Prf.expand prf "rnd-mac" 16);
    enc = Speck.expand_key (Prf.expand prf "rnd-enc" 16) }

let int64_of_bytes s =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[i]))
  done;
  !v

let bytes_of_int64 v =
  String.init 8 (fun i ->
      Char.chr
        (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 255L)))

let keystream enc iv len =
  let buf = Buffer.create len in
  let i = ref 0 in
  while Buffer.length buf < len do
    let block = Speck.encrypt_block enc (Int64.add iv (Int64.of_int !i)) in
    for b = 0 to 7 do
      if Buffer.length buf < len then
        Buffer.add_char buf
          (Char.chr
             (Int64.to_int
                (Int64.logand (Int64.shift_right_logical block (8 * b)) 255L)))
    done;
    incr i
  done;
  Buffer.contents buf

let xor_strings a b =
  String.init (String.length a) (fun i ->
      Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let encrypt_iv k iv plaintext =
  let iv_bytes = bytes_of_int64 iv in
  let body = xor_strings plaintext (keystream k.enc iv (String.length plaintext)) in
  let tag = Prf.mac_bytes k.mac (iv_bytes ^ body) in
  iv_bytes ^ body ^ tag

let encrypt k rng plaintext = encrypt_iv k (Prng.next64 rng) plaintext

let decrypt k ciphertext =
  if String.length ciphertext < 16 then
    invalid_arg "Rnd.decrypt: ciphertext too short";
  let n = String.length ciphertext in
  let iv_bytes = String.sub ciphertext 0 8 in
  let body = String.sub ciphertext 8 (n - 16) in
  let tag = String.sub ciphertext (n - 8) 8 in
  if not (String.equal (Prf.mac_bytes k.mac (iv_bytes ^ body)) tag) then
    failwith "Rnd.decrypt: authentication failure";
  xor_strings body (keystream k.enc (int64_of_bytes iv_bytes) (String.length body))
