(** Encryption-scheme capability lattice.

    The authorization model deliberately ignores scheme choice (Sec. 2);
    the optimizer picks, per attribute, "the scheme providing highest
    protection, while supporting the operations to be executed on the
    attribute's encrypted values" (Sec. 6). This module captures the four
    schemes of the paper's tool, the computations each supports, the
    protection order among them, and their cost/expansion metadata used
    by the economic model. *)

type t =
  | Rnd  (** randomized symmetric — no computation, highest protection *)
  | Phe  (** Paillier — additive homomorphism *)
  | Det  (** deterministic symmetric — equality, equi-join, grouping *)
  | Ope  (** order-preserving — range conditions, min/max, sorting *)

(** Computation an operator wants to run over ciphertext. *)
type capability =
  | Cap_equality
  | Cap_order
  | Cap_addition

val name : t -> string
val of_name : string -> t option

val supports : t -> capability -> bool

val protection_rank : t -> int
(** Higher is stronger: Rnd = 3, Phe = 2, Det = 1, Ope = 0. *)

val strongest_supporting : capability list -> t option
(** The paper's selection rule: strongest scheme supporting every listed
    capability; [Some Rnd] for the empty list; [None] when the
    combination is unsatisfiable (e.g. order + addition). *)

val expansion : t -> float
(** Multiplicative ciphertext-size blowup vs. plaintext. *)

val cpu_cost_per_mb : t -> float
(** Relative CPU cost (provider cost units per MB processed) to
    encrypt/decrypt, calibrated on common benchmarks: symmetric schemes
    are near-free, OPE noticeably slower, Paillier orders of magnitude
    slower. *)

val all : t list
val pp : Format.formatter -> t -> unit
