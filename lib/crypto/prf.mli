(** Pseudo-random function built on Speck64/128.

    A prefix-free CBC-MAC over 8-byte blocks. Provides keyed hashing for
    key derivation, deterministic-encryption synthetic IVs, and the OPE
    scheme's pivot sampling. *)

type t

val create : string -> t
(** [create key] with a 16-byte key. *)

val mac : t -> string -> int64
(** 64-bit tag of an arbitrary-length message. *)

val mac_bytes : t -> string -> string
(** 8-byte tag. *)

val expand : t -> string -> int -> string
(** [expand t label n] derives [n] pseudo-random bytes bound to [label]
    (counter mode over the MAC). Used for subkey derivation. *)

val int_below : t -> string -> int -> int
(** [int_below t label bound] is a deterministic pseudo-random value in
    [[0, bound)] bound to [label]; [bound > 0]. *)
