type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let copy t = { state = t.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's int without sign overflow *)
  let x = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  x mod bound

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bound *. (x /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next64 t) 1L = 1L

let bytes t n =
  String.init n (fun _ -> Char.chr (Int64.to_int (Int64.logand (next64 t) 255L)))

let split t = create (next64 t)

(* Pure: the child at index [i] is a function of the parent's current
   state only — the parent is not advanced, and children at distinct
   indices are decorrelated by the SplitMix64 finalizer. Chunked
   parallel consumers use this to give every item a private stream
   whose output is independent of how the items were scheduled. *)
let derive t i =
  create (mix (Int64.add t.state (Int64.mul golden (Int64.of_int (i + 1)))))
