type t = {
  prf : Prf.t;
  rng : Prng.t;
  paillier_rng : Prng.t;
  lock : Mutex.t; (* guards the lazy keygen below across domains *)
  mutable paillier_pair : (Paillier.public * Paillier.secret) option;
}

let create ?(seed = 0x5EED_CAFE_F00DL) () =
  let root = Prng.create seed in
  let master = Prng.bytes root 16 in
  { prf = Prf.create master;
    rng = Prng.split root;
    paillier_rng = Prng.split root;
    lock = Mutex.create ();
    paillier_pair = None }

let cluster_secret t key_id = Prf.expand t.prf ("cluster:" ^ key_id) 16

let det_key_of_secret = Det.key_of_string
let rnd_key_of_secret = Rnd.key_of_string
let ope_key_of_secret = Ope.key_of_string

let det_key t key_id = det_key_of_secret (cluster_secret t key_id)
let rnd_key t key_id = rnd_key_of_secret (cluster_secret t key_id)
let ope_key t key_id = ope_key_of_secret (cluster_secret t key_id)

(* Double-checked under the lock: keygen is expensive (prime search) and
   must run exactly once — concurrent callers would both advance
   [paillier_rng] and could install different pairs. The pair is still
   deterministic in the seed: [paillier_rng] is a dedicated stream only
   this keygen consumes, whenever it happens to run. *)
let paillier t =
  match t.paillier_pair with
  | Some pair -> pair
  | None ->
      Mutex.lock t.lock;
      let pair =
        match t.paillier_pair with
        | Some pair -> pair
        | None ->
            let pair = Paillier.keygen t.paillier_rng in
            t.paillier_pair <- Some pair;
            pair
      in
      Mutex.unlock t.lock;
      pair

let rng t = t.rng

let derived_rng t label =
  let bytes = Prf.expand t.prf ("rng:" ^ label) 8 in
  let seed = ref 0L in
  String.iter
    (fun c -> seed := Int64.(logor (shift_left !seed 8) (of_int (Char.code c))))
    bytes;
  Prng.create !seed
