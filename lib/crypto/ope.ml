type key = Prf.t

let plain_bits = 40
let cipher_bits = 55
let plain_size = 1 lsl plain_bits (* 2^40 *)
let cipher_size = 1 lsl cipher_bits
let offset = plain_size / 2 (* signed -> unsigned shift *)

let key_of_string master =
  if String.length master <> 16 then
    invalid_arg "Ope.key_of_string: need 16 bytes";
  Prf.create (Prf.create master |> fun p -> Prf.expand p "ope" 16)

(* Recursive binary partition. Plain range [plo, phi] (inclusive) maps into
   cipher range [clo, chi]; invariant: chi - clo >= phi - plo. The pivot
   splits the plain range in half; the cipher split point is PRF-derived
   within the slack so that both halves keep enough room. *)
let rec enc_range key plo phi clo chi x =
  if plo = phi then
    (* Whole cipher slice belongs to this plaintext: pick a deterministic
       point inside it. *)
    clo + Prf.int_below key (Printf.sprintf "leaf:%d" plo) (chi - clo + 1)
  else
    let pm = plo + ((phi - plo) / 2) in
    let nl = pm - plo + 1 and nr = phi - pm in
    let slack = chi - clo + 1 - (nl + nr) in
    let sl =
      Prf.int_below key (Printf.sprintf "node:%d:%d:%d:%d" plo phi clo chi)
        (slack + 1)
    in
    let cm = clo + nl + sl - 1 in
    if x <= pm then enc_range key plo pm clo cm x
    else enc_range key (pm + 1) phi (cm + 1) chi x

let rec dec_range key plo phi clo chi c =
  if plo = phi then plo
  else
    let pm = plo + ((phi - plo) / 2) in
    let nl = pm - plo + 1 and nr = phi - pm in
    let slack = chi - clo + 1 - (nl + nr) in
    let sl =
      Prf.int_below key (Printf.sprintf "node:%d:%d:%d:%d" plo phi clo chi)
        (slack + 1)
    in
    let cm = clo + nl + sl - 1 in
    if c <= cm then dec_range key plo pm clo cm c
    else dec_range key (pm + 1) phi (cm + 1) chi c

let encrypt key x =
  let v = x + offset in
  if v < 0 || v >= plain_size then
    invalid_arg (Printf.sprintf "Ope.encrypt: %d out of domain" x);
  enc_range key 0 (plain_size - 1) 0 (cipher_size - 1) v

let decrypt key c =
  if c < 0 || c >= cipher_size then
    invalid_arg (Printf.sprintf "Ope.decrypt: %d out of range" c);
  dec_range key 0 (plain_size - 1) 0 (cipher_size - 1) c - offset

(* --- memoized batch coder ------------------------------------------- *)

(* The PRF-derived split of a node depends only on (plo, phi, clo, chi),
   and the (clo, chi) of a node is itself determined by the descent path
   from the fixed root — so (plo, phi) identifies a node outright. A
   coder caches each visited node's cipher split point (internal nodes)
   or leaf cipher value, so a column of values shares the PRF work of
   their common path prefixes: the ~40 PRF calls per value collapse to
   a handful of hashtable hits after the tree warms up. Coders are
   single-domain (a plain Hashtbl); batch kernels create one per task. *)
type coder = { ckey : key; memo : (int * int, int) Hashtbl.t }

let coder ckey = { ckey; memo = Hashtbl.create 256 }

(* split point cm of internal node (plo, phi, clo, chi); memoized *)
let split_point t plo phi clo chi =
  match Hashtbl.find_opt t.memo (plo, phi) with
  | Some cm -> cm
  | None ->
      let pm = plo + ((phi - plo) / 2) in
      let nl = pm - plo + 1 and nr = phi - pm in
      let slack = chi - clo + 1 - (nl + nr) in
      let sl =
        Prf.int_below t.ckey
          (Printf.sprintf "node:%d:%d:%d:%d" plo phi clo chi)
          (slack + 1)
      in
      let cm = clo + nl + sl - 1 in
      Hashtbl.add t.memo (plo, phi) cm;
      cm

let leaf_point t plo clo chi =
  match Hashtbl.find_opt t.memo (plo, plo) with
  | Some c -> c
  | None ->
      let c =
        clo + Prf.int_below t.ckey (Printf.sprintf "leaf:%d" plo) (chi - clo + 1)
      in
      Hashtbl.add t.memo (plo, plo) c;
      c

let rec enc_memo t plo phi clo chi x =
  if plo = phi then leaf_point t plo clo chi
  else
    let pm = plo + ((phi - plo) / 2) in
    let cm = split_point t plo phi clo chi in
    if x <= pm then enc_memo t plo pm clo cm x
    else enc_memo t (pm + 1) phi (cm + 1) chi x

let rec dec_memo t plo phi clo chi c =
  if plo = phi then plo
  else
    let pm = plo + ((phi - plo) / 2) in
    let cm = split_point t plo phi clo chi in
    if c <= cm then dec_memo t plo pm clo cm c
    else dec_memo t (pm + 1) phi (cm + 1) chi c

let encode t x =
  let v = x + offset in
  if v < 0 || v >= plain_size then
    invalid_arg (Printf.sprintf "Ope.encrypt: %d out of domain" x);
  enc_memo t 0 (plain_size - 1) 0 (cipher_size - 1) v

let decode t c =
  if c < 0 || c >= cipher_size then
    invalid_arg (Printf.sprintf "Ope.decrypt: %d out of range" c);
  dec_memo t 0 (plain_size - 1) 0 (cipher_size - 1) c - offset

let cipher_bytes = (cipher_bits + 7) / 8

let bytes_of_cipher c =
  String.init cipher_bytes (fun i ->
      Char.chr ((c lsr (8 * (cipher_bytes - 1 - i))) land 255))

let encrypt_bytes key x = bytes_of_cipher (encrypt key x)

let cipher_of_bytes s =
  if String.length s <> cipher_bytes then
    invalid_arg "Ope.decrypt_bytes: bad width";
  let c = ref 0 in
  String.iter (fun ch -> c := (!c lsl 8) lor Char.code ch) s;
  !c

let decrypt_bytes key s = decrypt key (cipher_of_bytes s)
let encode_bytes t x = bytes_of_cipher (encode t x)
let decode_bytes t s = decode t (cipher_of_bytes s)
