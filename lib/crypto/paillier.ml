type public = { n : Bignum.t; n2 : Bignum.t; mont : Bignum.Mont.ctx }
type secret = { lambda : Bignum.t; mu : Bignum.t }

let keygen ?(bits = 256) rng =
  let half = bits / 2 in
  let rec distinct_primes () =
    let p = Bignum.random_prime rng half in
    let q = Bignum.random_prime rng (bits - half) in
    if Bignum.equal p q then distinct_primes () else (p, q)
  in
  let p, q = distinct_primes () in
  let n = Bignum.mul p q in
  let n2 = Bignum.mul n n in
  let lambda = Bignum.lcm (Bignum.pred p) (Bignum.pred q) in
  (* g = n + 1, so g^lambda mod n^2 = 1 + lambda*n, and
     L(g^lambda) = lambda; mu = lambda^{-1} mod n. *)
  let mu =
    match Bignum.invmod lambda n with
    | Some m -> m
    | None -> failwith "Paillier.keygen: lambda not invertible"
  in
  (* n is a product of odd primes, so n^2 is odd and Montgomery-friendly *)
  ({ n; n2; mont = Bignum.Mont.create n2 }, { lambda; mu })

let encode pk m =
  (* signed encoding into [0, n) *)
  if Bignum.sign m >= 0 then Bignum.rem m pk.n
  else Bignum.rem (Bignum.add pk.n m) pk.n

(* Blinding is the expensive half of encryption (r^n mod n^2, one full
   exponentiation); it depends only on the key and the randomness, never
   on the plaintext. [blinding] lets batched kernels precompute a pool of
   factors off the hot path, drawing from position-derived generators so
   the pool is byte-identical to on-the-fly sequential draws. *)
let draw_unit pk rng =
  let rec go () =
    let r = Bignum.random_below rng pk.n in
    if Bignum.is_zero r || not (Bignum.equal (Bignum.gcd r pk.n) Bignum.one)
    then go ()
    else r
  in
  go ()

let blinding_of_unit pk r = Bignum.Mont.pow pk.mont r pk.n
let blinding pk rng = blinding_of_unit pk (draw_unit pk rng)

let encrypt_blinded pk rn m =
  let m = encode pk m in
  (* g^m = (1 + n)^m = 1 + m*n  (mod n^2) *)
  let gm = Bignum.rem (Bignum.succ (Bignum.mul m pk.n)) pk.n2 in
  Bignum.Mont.mul pk.mont gm rn

let encrypt pk rng m = encrypt_blinded pk (blinding pk rng) m

let lfun pk x = Bignum.div (Bignum.pred x) pk.n

let decrypt pk sk c =
  let u = Bignum.Mont.pow pk.mont c sk.lambda in
  Bignum.rem (Bignum.mul (lfun pk u) sk.mu) pk.n

let decrypt_signed pk sk c =
  let m = decrypt pk sk c in
  let half = Bignum.shift_right pk.n 1 in
  if Bignum.compare m half > 0 then Bignum.sub m pk.n else m

let add pk c1 c2 = Bignum.Mont.mul pk.mont c1 c2
let mul_scalar pk c k = Bignum.Mont.pow pk.mont c (encode pk k)

let cipher_to_string = Bignum.to_string
let cipher_of_string = Bignum.of_string
