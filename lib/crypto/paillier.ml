type public = { n : Bignum.t; n2 : Bignum.t }
type secret = { lambda : Bignum.t; mu : Bignum.t }

let keygen ?(bits = 256) rng =
  let half = bits / 2 in
  let rec distinct_primes () =
    let p = Bignum.random_prime rng half in
    let q = Bignum.random_prime rng (bits - half) in
    if Bignum.equal p q then distinct_primes () else (p, q)
  in
  let p, q = distinct_primes () in
  let n = Bignum.mul p q in
  let n2 = Bignum.mul n n in
  let lambda = Bignum.lcm (Bignum.pred p) (Bignum.pred q) in
  (* g = n + 1, so g^lambda mod n^2 = 1 + lambda*n, and
     L(g^lambda) = lambda; mu = lambda^{-1} mod n. *)
  let mu =
    match Bignum.invmod lambda n with
    | Some m -> m
    | None -> failwith "Paillier.keygen: lambda not invertible"
  in
  ({ n; n2 }, { lambda; mu })

let encode pk m =
  (* signed encoding into [0, n) *)
  if Bignum.sign m >= 0 then Bignum.rem m pk.n
  else Bignum.rem (Bignum.add pk.n m) pk.n

let encrypt pk rng m =
  let m = encode pk m in
  let rec random_unit () =
    let r = Bignum.random_below rng pk.n in
    if Bignum.is_zero r || not (Bignum.equal (Bignum.gcd r pk.n) Bignum.one)
    then random_unit ()
    else r
  in
  let r = random_unit () in
  (* g^m = (1 + n)^m = 1 + m*n  (mod n^2) *)
  let gm = Bignum.rem (Bignum.succ (Bignum.mul m pk.n)) pk.n2 in
  let rn = Bignum.mod_pow ~base:r ~exp:pk.n ~modulus:pk.n2 in
  Bignum.rem (Bignum.mul gm rn) pk.n2

let lfun pk x = Bignum.div (Bignum.pred x) pk.n

let decrypt pk sk c =
  let u = Bignum.mod_pow ~base:c ~exp:sk.lambda ~modulus:pk.n2 in
  Bignum.rem (Bignum.mul (lfun pk u) sk.mu) pk.n

let decrypt_signed pk sk c =
  let m = decrypt pk sk c in
  let half = Bignum.shift_right pk.n 1 in
  if Bignum.compare m half > 0 then Bignum.sub m pk.n else m

let add pk c1 c2 = Bignum.rem (Bignum.mul c1 c2) pk.n2
let mul_scalar pk c k = Bignum.mod_pow ~base:c ~exp:(encode pk k) ~modulus:pk.n2

let cipher_to_string = Bignum.to_string
let cipher_of_string = Bignum.of_string
