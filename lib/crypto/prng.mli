(** Deterministic pseudo-random number generation (SplitMix64).

    Used for key generation, randomized-encryption nonces and the TPC-H
    data generator. Deterministic seeding keeps every experiment in the
    repository reproducible. Not a CSPRNG; see DESIGN.md on the security
    posture of the crypto substrate. *)

type t

val create : int64 -> t
(** [create seed] builds an independent generator. *)

val copy : t -> t

val next64 : t -> int64
(** Next 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)]; [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [[0, bound)]. *)

val bool : t -> bool

val bytes : t -> int -> string
(** [bytes t n] is an [n]-byte random string. *)

val split : t -> t
(** Derive an independent child generator (splittable PRNG). *)

val derive : t -> int -> t
(** [derive t i] is the child generator at index [i]. Pure: [t] is not
    advanced, and the child depends only on [t]'s current state and
    [i] — the same [(t, i)] always yields the same stream, regardless
    of any interleaving with other [derive] calls. This is what makes
    randomized encryption reproducible under parallel execution. *)
