type key = { mac : Prf.t; enc : Speck.key }

let key_of_string master =
  if String.length master <> 16 then
    invalid_arg "Det.key_of_string: need 16 bytes";
  let prf = Prf.create master in
  { mac = Prf.create (Prf.expand prf "det-mac" 16);
    enc = Speck.expand_key (Prf.expand prf "det-enc" 16) }

let int64_of_bytes s =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[i]))
  done;
  !v

let keystream enc iv len =
  let buf = Buffer.create len in
  let i = ref 0 in
  while Buffer.length buf < len do
    let block = Speck.encrypt_block enc (Int64.add iv (Int64.of_int !i)) in
    for b = 0 to 7 do
      if Buffer.length buf < len then
        Buffer.add_char buf
          (Char.chr
             (Int64.to_int
                (Int64.logand (Int64.shift_right_logical block (8 * b)) 255L)))
    done;
    incr i
  done;
  Buffer.contents buf

let xor_strings a b =
  String.init (String.length a) (fun i ->
      Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let encrypt k plaintext =
  let iv_bytes = Prf.mac_bytes k.mac plaintext in
  let iv = int64_of_bytes iv_bytes in
  let ks = keystream k.enc iv (String.length plaintext) in
  iv_bytes ^ xor_strings plaintext ks

let decrypt k ciphertext =
  if String.length ciphertext < 8 then
    invalid_arg "Det.decrypt: ciphertext too short";
  let iv_bytes = String.sub ciphertext 0 8 in
  let body = String.sub ciphertext 8 (String.length ciphertext - 8) in
  let iv = int64_of_bytes iv_bytes in
  let ks = keystream k.enc iv (String.length body) in
  let plaintext = xor_strings body ks in
  if not (String.equal (Prf.mac_bytes k.mac plaintext) iv_bytes) then
    failwith "Det.decrypt: authentication failure";
  plaintext
