(** Order-preserving encryption.

    A stateless binary-partition OPE: the plaintext domain is recursively
    halved and each half is assigned a PRF-chosen, order-respecting slice
    of the ciphertext domain. Strictly monotone, deterministic, and
    invertible with the key — enough to evaluate range conditions over
    ciphertext (the paper cites Boldyreva-style OPE / CryptDB).

    Plaintexts are signed integers in [[-2{^39}, 2{^39})]; ciphertexts are
    non-negative ints below [2{^55}], so byte-encoded big-endian
    ciphertexts compare like the underlying values. *)

type key

val key_of_string : string -> key
(** 16-byte master key. *)

val plain_bits : int
(** Bits of the plaintext domain (signed values use one bit fewer). *)

val cipher_bits : int

val encrypt : key -> int -> int
(** Raises [Invalid_argument] if out of domain. *)

val decrypt : key -> int -> int

val encrypt_bytes : key -> int -> string
(** Fixed-width big-endian encoding of [encrypt]; lexicographic byte
    comparison agrees with numeric order. *)

val decrypt_bytes : key -> string -> int

(** {2 Memoized batch coder}

    Encrypting a column repeats the PRF work of the partition tree's
    upper levels for every value. A [coder] caches the PRF-derived split
    points it visits, so values sharing path prefixes (any clustered or
    repeated column) pay the PRF only once per distinct tree node.
    Output is byte-identical to {!encrypt}/{!decrypt}. A coder is not
    domain-safe: batch kernels create one per task. *)

type coder

val coder : key -> coder

val encode : coder -> int -> int
(** Same function as [encrypt key], memoized. *)

val decode : coder -> int -> int
val encode_bytes : coder -> int -> string
val decode_bytes : coder -> string -> int
