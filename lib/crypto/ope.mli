(** Order-preserving encryption.

    A stateless binary-partition OPE: the plaintext domain is recursively
    halved and each half is assigned a PRF-chosen, order-respecting slice
    of the ciphertext domain. Strictly monotone, deterministic, and
    invertible with the key — enough to evaluate range conditions over
    ciphertext (the paper cites Boldyreva-style OPE / CryptDB).

    Plaintexts are signed integers in [[-2{^39}, 2{^39})]; ciphertexts are
    non-negative ints below [2{^55}], so byte-encoded big-endian
    ciphertexts compare like the underlying values. *)

type key

val key_of_string : string -> key
(** 16-byte master key. *)

val plain_bits : int
(** Bits of the plaintext domain (signed values use one bit fewer). *)

val cipher_bits : int

val encrypt : key -> int -> int
(** Raises [Invalid_argument] if out of domain. *)

val decrypt : key -> int -> int

val encrypt_bytes : key -> int -> string
(** Fixed-width big-endian encoding of [encrypt]; lexicographic byte
    comparison agrees with numeric order. *)

val decrypt_bytes : key -> string -> int
