type t = Speck.key

let create key = Speck.expand_key key

let block_of_string s off =
  (* little-endian 8-byte load, zero-padded *)
  let v = ref 0L in
  for i = 7 downto 0 do
    let byte =
      if off + i < String.length s then Char.code s.[off + i] else 0
    in
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int byte)
  done;
  !v

let mac t msg =
  (* Prefix-free: first block encodes the message length. *)
  let len = String.length msg in
  let state = ref (Speck.encrypt_block t (Int64.of_int len)) in
  let nblocks = (len + 7) / 8 in
  for b = 0 to nblocks - 1 do
    let blk = block_of_string msg (b * 8) in
    state := Speck.encrypt_block t (Int64.logxor !state blk)
  done;
  !state

let bytes_of_int64 v =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 255L)))

let mac_bytes t msg = bytes_of_int64 (mac t msg)

let expand t label n =
  let buf = Buffer.create n in
  let i = ref 0 in
  while Buffer.length buf < n do
    Buffer.add_string buf (mac_bytes t (label ^ "\x00" ^ string_of_int !i));
    incr i
  done;
  String.sub (Buffer.contents buf) 0 n

let int_below t label bound =
  if bound <= 0 then invalid_arg "Prf.int_below: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (mac t label) 2) in
  v mod bound
