(** Speck64/128 block cipher.

    64-bit blocks, 128-bit keys, 27 rounds — the reference add-rotate-xor
    design by Beaulieu et al. Used as the workhorse primitive behind the
    PRF and the symmetric encryption modes. *)

type key

val expand_key : string -> key
(** [expand_key k] derives the round keys from a 16-byte key string.
    Raises [Invalid_argument] if [k] is not 16 bytes. *)

val encrypt_block : key -> int64 -> int64
val decrypt_block : key -> int64 -> int64

val rounds : int
