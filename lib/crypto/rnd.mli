(** Randomized authenticated encryption (CTR + MAC).

    Semantically secure: two encryptions of the same plaintext differ.
    Supports no computation over ciphertext — the paper's choice for
    attributes on which no operation must run (Sec. 6: "the scheme
    providing highest protection, while supporting the operations"). *)

type key

val key_of_string : string -> key
(** 16-byte master key. *)

val encrypt : key -> Prng.t -> string -> string
(** [encrypt k rng plaintext] draws a fresh IV from [rng]. Layout:
    [iv (8) || body || tag (8)]. *)

val encrypt_iv : key -> int64 -> string -> string
(** [encrypt_iv k iv plaintext] encrypts under a caller-supplied IV:
    [encrypt k rng p = encrypt_iv k (Prng.next64 rng) p]. Batched
    kernels pre-draw the IVs in a deterministic pool pass and hand them
    to per-column loops; reusing an IV for two plaintexts under one key
    voids secrecy, so pools must be position-derived and single-use. *)

val decrypt : key -> string -> string
(** Raises [Failure] on authentication failure. *)
