(** Randomized authenticated encryption (CTR + MAC).

    Semantically secure: two encryptions of the same plaintext differ.
    Supports no computation over ciphertext — the paper's choice for
    attributes on which no operation must run (Sec. 6: "the scheme
    providing highest protection, while supporting the operations"). *)

type key

val key_of_string : string -> key
(** 16-byte master key. *)

val encrypt : key -> Prng.t -> string -> string
(** [encrypt k rng plaintext] draws a fresh IV from [rng]. Layout:
    [iv (8) || body || tag (8)]. *)

val decrypt : key -> string -> string
(** Raises [Failure] on authentication failure. *)
