type t = Rnd | Phe | Det | Ope
type capability = Cap_equality | Cap_order | Cap_addition

let name = function Rnd -> "rnd" | Phe -> "phe" | Det -> "det" | Ope -> "ope"

let of_name = function
  | "rnd" -> Some Rnd
  | "phe" -> Some Phe
  | "det" -> Some Det
  | "ope" -> Some Ope
  | _ -> None

let supports scheme cap =
  match (scheme, cap) with
  | Rnd, _ -> false
  | Phe, Cap_addition -> true
  | Phe, (Cap_equality | Cap_order) -> false
  | Det, Cap_equality -> true
  | Det, (Cap_order | Cap_addition) -> false
  | Ope, (Cap_equality | Cap_order) -> true
  | Ope, Cap_addition -> false

let protection_rank = function Rnd -> 3 | Phe -> 2 | Det -> 1 | Ope -> 0
let all = [ Rnd; Phe; Det; Ope ]

let strongest_supporting caps =
  let candidates =
    List.filter (fun s -> List.for_all (supports s) caps) all
  in
  match
    List.sort (fun a b -> compare (protection_rank b) (protection_rank a))
      candidates
  with
  | best :: _ -> Some best
  | [] -> None

(* Expansion factors: symmetric adds an 8-byte IV (and tag for rnd) on
   small fields (~2x on typical scalars); OPE maps 5-byte plaintexts to
   7-byte ciphertexts; Paillier blows a scalar up to 2*|n| bits. *)
let expansion = function
  | Det -> 2.0
  | Rnd -> 2.5
  | Ope -> 1.4
  | Phe -> 16.0

(* Relative CPU cost per MB processed, AES-like symmetric as baseline. *)
let cpu_cost_per_mb = function
  | Det -> 0.002
  | Rnd -> 0.002
  | Ope -> 0.02
  | Phe -> 2.0

let pp fmt t = Format.pp_print_string fmt (name t)
