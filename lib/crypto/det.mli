(** Deterministic authenticated encryption (SIV construction).

    The synthetic IV is a PRF of the plaintext, so equal plaintexts under
    the same key yield equal ciphertexts — exactly the property the paper
    exploits to evaluate equality conditions and equi-joins over encrypted
    values (Sec. 5). Decryption verifies the IV, detecting tampering. *)

type key

val key_of_string : string -> key
(** 16-byte master key; sub-keys for MAC and CTR are derived internally. *)

val encrypt : key -> string -> string
(** [encrypt k plaintext] is [iv (8 bytes) || ctr-encrypted plaintext]. *)

val decrypt : key -> string -> string
(** Inverse of {!encrypt}. Raises [Invalid_argument] on truncated input
    and [Failure] on authentication failure. *)
