(** Paillier additively homomorphic cryptosystem.

    Supports [add] on ciphertexts (product mod n²) and multiplication by a
    plaintext scalar — what the paper needs to compute [sum]/[avg]
    aggregates over encrypted values at an untrusted provider. Built on
    the in-repo {!Bignum}. Key sizes here are simulation-grade. *)

type public = { n : Bignum.t; n2 : Bignum.t }
type secret

val keygen : ?bits:int -> Prng.t -> public * secret
(** [keygen ~bits rng] generates a modulus of [bits] bits (default 256). *)

val encrypt : public -> Prng.t -> Bignum.t -> Bignum.t
(** [encrypt pk rng m] for [0 <= m < n]. Negative plaintexts are mapped
    to [n + m] (two's-complement-style encoding, see {!decrypt_signed}). *)

val decrypt : public -> secret -> Bignum.t -> Bignum.t
(** Plain decryption in [[0, n)]. *)

val decrypt_signed : public -> secret -> Bignum.t -> Bignum.t
(** Decryption mapping residues above [n/2] to negative values. *)

val add : public -> Bignum.t -> Bignum.t -> Bignum.t
(** Homomorphic addition: [dec (add pk c1 c2) = m1 + m2]. *)

val mul_scalar : public -> Bignum.t -> Bignum.t -> Bignum.t
(** [mul_scalar pk c k]: [dec = m * k]. *)

val cipher_to_string : Bignum.t -> string
val cipher_of_string : string -> Bignum.t
