(** Paillier additively homomorphic cryptosystem.

    Supports [add] on ciphertexts (product mod n²) and multiplication by a
    plaintext scalar — what the paper needs to compute [sum]/[avg]
    aggregates over encrypted values at an untrusted provider. Built on
    the in-repo {!Bignum}. Key sizes here are simulation-grade. *)

type public = { n : Bignum.t; n2 : Bignum.t; mont : Bignum.Mont.ctx }
(** The public key carries a Montgomery context for n² so every
    ciphertext operation (encrypt, add, scalar multiply, decrypt) runs
    division-free; it is built once at {!keygen}. *)

type secret

val keygen : ?bits:int -> Prng.t -> public * secret
(** [keygen ~bits rng] generates a modulus of [bits] bits (default 256). *)

val encrypt : public -> Prng.t -> Bignum.t -> Bignum.t
(** [encrypt pk rng m] for [0 <= m < n]. Negative plaintexts are mapped
    to [n + m] (two's-complement-style encoding, see {!decrypt_signed}). *)

val blinding : public -> Prng.t -> Bignum.t
(** The blinding factor r^n mod n² for a fresh random unit r — the
    expensive, plaintext-independent half of {!encrypt}. Batched kernels
    precompute pools of these off the hot path, one per (row, column)
    position, from position-derived generators. *)

val draw_unit : public -> Prng.t -> Bignum.t
(** Just the random unit r (the part of {!blinding} that consumes
    randomness) — a pool pass records these in deterministic draw order,
    then {!blinding_of_unit} pays the exponentiation per column. *)

val blinding_of_unit : public -> Bignum.t -> Bignum.t
(** [blinding pk rng = blinding_of_unit pk (draw_unit pk rng)]. *)

val encrypt_blinded : public -> Bignum.t -> Bignum.t -> Bignum.t
(** [encrypt_blinded pk rn m] finishes an encryption with a precomputed
    blinding factor: [encrypt pk rng m = encrypt_blinded pk (blinding pk
    rng) m], byte for byte. *)

val decrypt : public -> secret -> Bignum.t -> Bignum.t
(** Plain decryption in [[0, n)]. *)

val decrypt_signed : public -> secret -> Bignum.t -> Bignum.t
(** Decryption mapping residues above [n/2] to negative values. *)

val add : public -> Bignum.t -> Bignum.t -> Bignum.t
(** Homomorphic addition: [dec (add pk c1 c2) = m1 + m2]. *)

val mul_scalar : public -> Bignum.t -> Bignum.t -> Bignum.t
(** [mul_scalar pk c k]: [dec = m * k]. *)

val cipher_to_string : Bignum.t -> string
val cipher_of_string : string -> Bignum.t
