(* Sign-magnitude bignum. Magnitude is a little-endian array of base-2^30
   limbs with no trailing zero limb; zero is the empty array with sign 0. *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let hi = top (n - 1) in
  if hi < 0 then zero
  else if hi = n - 1 then { sign; mag }
  else { sign; mag = Array.sub mag 0 (hi + 1) }

let of_int i =
  if i = 0 then zero
  else
    let sign = if i < 0 then -1 else 1 in
    let i = abs i in
    let rec limbs acc i = if i = 0 then List.rev acc else limbs ((i land base_mask) :: acc) (i lsr base_bits) in
    { sign; mag = Array.of_list (limbs [] i) }

let one = of_int 1
let two = of_int 2

let to_int_opt t =
  (* An OCaml int holds 62 magnitude bits: up to 3 limbs if the top one is
     small enough. *)
  let n = Array.length t.mag in
  if n = 0 then Some 0
  else if n > 3 then None
  else
    let v =
      Array.fold_right (fun limb acc -> (acc * base) + limb) t.mag 0
    in
    if v < 0 then None (* overflowed *)
    else if n = 3 && t.mag.(2) >= 1 lsl (62 - (2 * base_bits)) then None
    else Some (t.sign * v)

let sign t = t.sign
let is_zero t = t.sign = 0
let is_even t = t.sign = 0 || t.mag.(0) land 1 = 0

(* magnitude comparison *)
let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0
let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let x = if i < la then a.(i) else 0 in
    let y = if i < lb then b.(i) else 0 in
    let s = x + y + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r

(* requires |a| >= |b| *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let y = if i < lb then b.(i) else 0 in
    let d = a.(i) - y - !borrow in
    if d < 0 then (
      r.(i) <- d + base;
      borrow := 1)
    else (
      r.(i) <- d;
      borrow := 0)
  done;
  r

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else
    let c = cmp_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then normalize a.sign (sub_mag a.mag b.mag)
    else normalize b.sign (sub_mag b.mag a.mag)

let sub a b = add a (neg b)
let succ t = add t one
let pred t = sub t one

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let carry = ref 0 in
    let ai = a.(i) in
    if ai <> 0 then begin
      for j = 0 to lb - 1 do
        let t = (ai * b.(j)) + r.(i + j) + !carry in
        r.(i + j) <- t land base_mask;
        carry := t lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let t = r.(!k) + !carry in
        r.(!k) <- t land base_mask;
        carry := t lsr base_bits;
        incr k
      done
    end
  done;
  r

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else normalize (a.sign * b.sign) (mul_mag a.mag b.mag)

let bit_length t =
  let n = Array.length t.mag in
  if n = 0 then 0
  else
    let top = t.mag.(n - 1) in
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    ((n - 1) * base_bits) + bits top 0

let testbit t i =
  let limb = i / base_bits and off = i mod base_bits in
  limb < Array.length t.mag && (t.mag.(limb) lsr off) land 1 = 1

let shift_left t k =
  if t.sign = 0 || k = 0 then t
  else
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let n = Array.length t.mag in
    let r = Array.make (n + limb_shift + 1) 0 in
    for i = 0 to n - 1 do
      let v = t.mag.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land base_mask);
      if bit_shift > 0 then
        r.(i + limb_shift + 1) <- r.(i + limb_shift + 1) lor (v lsr base_bits)
    done;
    normalize t.sign r

let shift_right t k =
  if t.sign = 0 || k = 0 then t
  else
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let n = Array.length t.mag in
    if limb_shift >= n then zero
    else
      let m = n - limb_shift in
      let r = Array.make m 0 in
      for i = 0 to m - 1 do
        let lo = t.mag.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift > 0 && i + limb_shift + 1 < n then
            (t.mag.(i + limb_shift + 1) lsl (base_bits - bit_shift))
            land base_mask
          else 0
        in
        r.(i) <- lo lor hi
      done;
      normalize t.sign r

(* Knuth-style schoolbook long division on limbs, operating on magnitudes.
   Simpler binary variant: shift-subtract over bits, O(bits) iterations with
   O(limbs) work each — adequate for <=1024-bit operands used here. *)
let divmod_mag a b =
  let c = cmp_mag a b in
  if c < 0 then ([||], a)
  else
    let bits_a = ((Array.length a - 1) * base_bits) + 30 in
    let bl_b =
      let n = Array.length b in
      let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
      ((n - 1) * base_bits) + bits b.(n - 1) 0
    in
    let shift = ref (bits_a - bl_b) in
    let bpos = { sign = 1; mag = b } in
    let cur = ref (shift_left bpos !shift) in
    let rem = ref { sign = 1; mag = a } in
    let q = Array.make (Array.length a) 0 in
    while !shift >= 0 do
      if cmp_mag !rem.mag !cur.mag >= 0 then begin
        rem := normalize 1 (sub_mag !rem.mag !cur.mag);
        if !rem.sign = 0 then rem := zero;
        let limb = !shift / base_bits and off = !shift mod base_bits in
        q.(limb) <- q.(limb) lor (1 lsl off)
      end;
      cur := shift_right !cur 1;
      decr shift
    done;
    (q, !rem.mag)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else
    let qm, rm = divmod_mag a.mag b.mag in
    let q0 = normalize (a.sign * b.sign) qm in
    let r0 = normalize a.sign rm in
    (* Adjust to Euclidean remainder: 0 <= r < |b|. *)
    if r0.sign >= 0 then (q0, r0)
    else if b.sign > 0 then (pred q0, add r0 b)
    else (succ q0, sub r0 b)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow b e =
  if e < 0 then invalid_arg "Bignum.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
    else go acc (mul b b) (e lsr 1)
  in
  go one b e

let mod_pow ~base:b ~exp ~modulus =
  if exp.sign < 0 then invalid_arg "Bignum.mod_pow: negative exponent";
  if modulus.sign <= 0 then invalid_arg "Bignum.mod_pow: modulus <= 0";
  let b = rem b modulus in
  let nbits = bit_length exp in
  let result = ref one and acc = ref b in
  for i = 0 to nbits - 1 do
    if testbit exp i then result := rem (mul !result !acc) modulus;
    if i < nbits - 1 then acc := rem (mul !acc !acc) modulus
  done;
  !result

(* --- Montgomery arithmetic ------------------------------------------ *)

(* Fixed-modulus contexts amortize the reduction work that [mod_pow]'s
   shift-subtract [rem] pays on every multiplication. A context holds the
   modulus limbs, the Montgomery constant -m^{-1} mod 2^30 and R^2 mod m
   (R = 2^(30k)); REDC then replaces each division with a second
   schoolbook pass, turning a ~512-bit modular multiply from O(bits *
   limbs) into O(limbs^2). Batched column kernels (Paillier blinding
   pools, windowed exponentiation) build one context per key and reuse
   it across the column. *)
module Mont = struct
  type ctx = {
    m : t;
    mm : int array; (* modulus limbs *)
    k : int; (* limb count *)
    m0inv : int; (* -m^{-1} mod 2^30 *)
    r2 : int array; (* R^2 mod m, padded to k limbs *)
    one : int array; (* R mod m = mont(1), padded to k limbs *)
  }

  let pad k mag =
    let r = Array.make k 0 in
    Array.blit mag 0 r 0 (Array.length mag);
    r

  let create m =
    if m.sign <= 0 then invalid_arg "Bignum.Mont.create: modulus <= 0";
    if is_even m then invalid_arg "Bignum.Mont.create: modulus must be odd";
    let k = Array.length m.mag in
    (* limb inverse by Newton iteration: x -> x * (2 - m0 * x), doubling
       correct low bits each round; 5 rounds cover 30 bits *)
    let m0 = m.mag.(0) in
    let inv = ref 1 in
    for _ = 1 to 5 do
      inv := !inv * (2 - (m0 * !inv)) land base_mask
    done;
    let m0inv = - !inv land base_mask in
    let r = shift_left one (base_bits * k) in
    let r2 = rem (mul r r) m in
    let one_m = rem r m in
    { m; mm = m.mag; k; m0inv; r2 = pad k r2.mag; one = pad k one_m.mag }

  (* t <- t * m' (length k each) followed by REDC, result length k.
     Operands are non-negative magnitudes in Montgomery form. *)
  let mont_mul ctx a b =
    let k = ctx.k in
    let t = Array.make ((2 * k) + 1) 0 in
    for i = 0 to k - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to k - 1 do
          let x = (ai * b.(j)) + t.(i + j) + !carry in
          t.(i + j) <- x land base_mask;
          carry := x lsr base_bits
        done;
        let p = ref (i + k) in
        while !carry <> 0 do
          let x = t.(!p) + !carry in
          t.(!p) <- x land base_mask;
          carry := x lsr base_bits;
          incr p
        done
      end
    done;
    (* REDC: clear the low k limbs by adding multiples of m *)
    for i = 0 to k - 1 do
      let u = t.(i) * ctx.m0inv land base_mask in
      if u <> 0 then begin
        let carry = ref 0 in
        for j = 0 to k - 1 do
          let x = (u * ctx.mm.(j)) + t.(i + j) + !carry in
          t.(i + j) <- x land base_mask;
          carry := x lsr base_bits
        done;
        let p = ref (i + k) in
        while !carry <> 0 do
          let x = t.(!p) + !carry in
          t.(!p) <- x land base_mask;
          carry := x lsr base_bits;
          incr p
        done
      end
    done;
    let res = Array.sub t k (k + 1) in
    (* conditional subtraction: res may reach [m, 2m) *)
    let ge =
      if res.(k) <> 0 then true
      else
        let rec cmp i =
          if i < 0 then true
          else if res.(i) <> ctx.mm.(i) then res.(i) > ctx.mm.(i)
          else cmp (i - 1)
        in
        cmp (k - 1)
    in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to k - 1 do
        let d = res.(i) - ctx.mm.(i) - !borrow in
        if d < 0 then begin
          res.(i) <- d + base;
          borrow := 1
        end
        else begin
          res.(i) <- d;
          borrow := 0
        end
      done
    end;
    Array.sub res 0 k

  let of_limbs ctx limbs = normalize 1 (Array.copy limbs) |> fun v -> rem v ctx.m

  let to_mont ctx v =
    let v = rem v ctx.m in
    mont_mul ctx (pad ctx.k v.mag) ctx.r2

  let from_mont ctx limbs =
    let one_limb = Array.make ctx.k 0 in
    one_limb.(0) <- 1;
    of_limbs ctx (mont_mul ctx limbs one_limb)

  (* a * b mod m through one conversion: REDC(mont(a) * b) = a*b mod m *)
  let mul ctx a b =
    let am = to_mont ctx a in
    let b = rem b ctx.m in
    of_limbs ctx (mont_mul ctx am (pad ctx.k b.mag))

  (* 4-bit fixed-window left-to-right exponentiation *)
  let pow ctx base exp =
    if exp.sign < 0 then invalid_arg "Bignum.Mont.pow: negative exponent";
    if is_zero exp then rem one ctx.m
    else begin
      let bm = to_mont ctx base in
      let table = Array.make 16 ctx.one in
      table.(1) <- bm;
      for i = 2 to 15 do
        table.(i) <- mont_mul ctx table.(i - 1) bm
      done;
      let nbits = bit_length exp in
      let nwin = (nbits + 3) / 4 in
      let acc = ref ctx.one in
      for w = nwin - 1 downto 0 do
        if w < nwin - 1 then begin
          acc := mont_mul ctx !acc !acc;
          acc := mont_mul ctx !acc !acc;
          acc := mont_mul ctx !acc !acc;
          acc := mont_mul ctx !acc !acc
        end;
        let d =
          (if testbit exp ((4 * w) + 3) then 8 else 0)
          + (if testbit exp ((4 * w) + 2) then 4 else 0)
          + (if testbit exp ((4 * w) + 1) then 2 else 0)
          + if testbit exp (4 * w) then 1 else 0
        in
        if d <> 0 then acc := mont_mul ctx !acc table.(d)
      done;
      from_mont ctx !acc
    end
end

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let lcm a b =
  if is_zero a || is_zero b then zero else div (abs (mul a b)) (gcd a b)

let invmod a n =
  (* extended Euclid on (a mod n, n) *)
  let a = rem a n in
  let rec go old_r r old_s s =
    if is_zero r then (old_r, old_s)
    else
      let q = div old_r r in
      go r (sub old_r (mul q r)) s (sub old_s (mul q s))
  in
  let g, x = go a n one zero in
  if equal g one then Some (rem x n) else None

let of_string s =
  let neg_sign = String.length s > 0 && s.[0] = '-' in
  let start = if neg_sign || (String.length s > 0 && s.[0] = '+') then 1 else 0 in
  if String.length s <= start then invalid_arg "Bignum.of_string: empty";
  let acc = ref zero in
  let ten = of_int 10 in
  String.iteri
    (fun i c ->
      if i >= start then
        if c >= '0' && c <= '9' then
          acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
        else if c <> '_' then invalid_arg ("Bignum.of_string: " ^ s))
    s;
  if neg_sign then neg !acc else !acc

let to_string t =
  if t.sign = 0 then "0"
  else
    let buf = Buffer.create 32 in
    (* Repeated division by 10^9 to amortize. *)
    let chunk = of_int 1_000_000_000 in
    let rec go v acc =
      if is_zero v then acc
      else
        let q, r = divmod v chunk in
        let r = match to_int_opt r with Some i -> i | None -> assert false in
        go q (r :: acc)
    in
    let chunks = go (abs t) [] in
    if t.sign < 0 then Buffer.add_char buf '-';
    (match chunks with
    | [] -> Buffer.add_char buf '0'
    | first :: rest ->
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)

let random_bits rng bits =
  if bits <= 0 then zero
  else
    let nlimbs = (bits + base_bits - 1) / base_bits in
    let mag = Array.init nlimbs (fun _ -> Prng.int rng base) in
    let top_bits = bits - ((nlimbs - 1) * base_bits) in
    mag.(nlimbs - 1) <- mag.(nlimbs - 1) land ((1 lsl top_bits) - 1);
    normalize 1 mag

let random_below rng bound =
  if bound.sign <= 0 then invalid_arg "Bignum.random_below: bound <= 0";
  let bits = bit_length bound in
  let rec try_once n =
    if n > 1000 then rem (random_bits rng bits) bound
    else
      let v = random_bits rng bits in
      if compare v bound < 0 then v else try_once (n + 1)
  in
  try_once 0

let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67;
    71; 73; 79; 83; 89; 97; 101; 103; 107; 109; 113 ]

let is_probable_prime ?(rounds = 24) rng n =
  if n.sign <= 0 then false
  else
    match to_int_opt n with
    | Some v when v < 2 -> false
    | Some v when List.mem v small_primes -> true
    | _ ->
        if List.exists (fun p -> is_zero (rem n (of_int p))) small_primes then
          false
        else begin
          (* n-1 = d * 2^s with d odd *)
          let n1 = pred n in
          let rec split d s = if is_even d then split (shift_right d 1) (s + 1) else (d, s) in
          let d, s = split n1 0 in
          let witness a =
            let x = ref (mod_pow ~base:a ~exp:d ~modulus:n) in
            if equal !x one || equal !x n1 then false
            else begin
              let composite = ref true in
              (try
                 for _ = 1 to s - 1 do
                   x := rem (mul !x !x) n;
                   if equal !x n1 then begin
                     composite := false;
                     raise Exit
                   end
                 done
               with Exit -> ());
              !composite
            end
          in
          let rec rounds_loop i =
            if i >= rounds then true
            else
              let a = add two (random_below rng (sub n (of_int 4))) in
              if witness a then false else rounds_loop (i + 1)
          in
          rounds_loop 0
        end

let random_prime rng bits =
  if bits < 2 then invalid_arg "Bignum.random_prime: bits < 2";
  let rec go () =
    let cand = random_bits rng bits in
    (* force top and bottom bits: exact bit width, odd *)
    let cand = add cand (shift_left one (bits - 1)) in
    let cand = if is_even cand then succ cand else cand in
    let cand =
      if bit_length cand > bits then sub cand (shift_left one bits) else cand
    in
    let cand = if cand.sign <= 0 then succ (shift_left one (bits - 1)) else cand in
    if bit_length cand = bits && is_probable_prime rng cand then cand else go ()
  in
  go ()

let of_bytes_be s =
  let acc = ref zero in
  String.iter (fun c -> acc := add (shift_left !acc 8) (of_int (Char.code c))) s;
  !acc

let to_bytes_be t =
  if t.sign < 0 then invalid_arg "Bignum.to_bytes_be: negative";
  if t.sign = 0 then ""
  else
    let nbytes = (bit_length t + 7) / 8 in
    let b = Bytes.create nbytes in
    let v = ref t in
    let byte_mask = of_int 255 in
    for i = nbytes - 1 downto 0 do
      let byte = match to_int_opt (rem !v (of_int 256)) with
        | Some x -> x
        | None -> assert false
      in
      ignore byte_mask;
      Bytes.set b i (Char.chr byte);
      v := shift_right !v 8
    done;
    Bytes.to_string b
