(* Speck64/128: 32-bit words, rotation constants alpha=8, beta=3,
   27 rounds, 4-word key. Words are OCaml ints masked to 32 bits. *)

let rounds = 27
let mask = 0xFFFFFFFF

type key = int array (* round keys, length [rounds] *)

let ror x n = ((x lsr n) lor (x lsl (32 - n))) land mask
let rol x n = ((x lsl n) lor (x lsr (32 - n))) land mask

let word_of_string s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let expand_key k =
  if String.length k <> 16 then invalid_arg "Speck.expand_key: need 16 bytes";
  let k0 = word_of_string k 0 in
  let l = Array.make (rounds + 3) 0 in
  l.(0) <- word_of_string k 4;
  l.(1) <- word_of_string k 8;
  l.(2) <- word_of_string k 12;
  let ks = Array.make rounds 0 in
  ks.(0) <- k0;
  for i = 0 to rounds - 2 do
    l.(i + 3) <- ((ks.(i) + ror l.(i) 8) land mask) lxor i;
    ks.(i + 1) <- rol ks.(i) 3 lxor l.(i + 3)
  done;
  ks

let split64 v =
  let x = Int64.to_int (Int64.logand (Int64.shift_right_logical v 32) 0xFFFFFFFFL) in
  let y = Int64.to_int (Int64.logand v 0xFFFFFFFFL) in
  (x, y)

let join64 x y =
  Int64.logor
    (Int64.shift_left (Int64.of_int (x land mask)) 32)
    (Int64.of_int (y land mask))

let encrypt_block ks block =
  let x = ref 0 and y = ref 0 in
  let bx, by = split64 block in
  x := bx;
  y := by;
  for i = 0 to rounds - 1 do
    x := ((ror !x 8 + !y) land mask) lxor ks.(i);
    y := rol !y 3 lxor !x
  done;
  join64 !x !y

let decrypt_block ks block =
  let bx, by = split64 block in
  let x = ref bx and y = ref by in
  for i = rounds - 1 downto 0 do
    y := ror (!y lxor !x) 3;
    (* modular subtraction on 32-bit words (negative ints mask correctly) *)
    x := ((!x lxor ks.(i)) - !y) land mask;
    x := rol !x 8
  done;
  join64 !x !y
