(** Arbitrary-precision integers.

    A from-scratch sign-magnitude bignum (base 2{^30} limbs) sufficient
    for the Paillier cryptosystem: modular exponentiation over ~512-bit
    moduli, Miller-Rabin primality, modular inverse. Implemented in-repo
    because the sealed build environment ships no [zarith]. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
val to_int_opt : t -> int option
(** [None] when the value does not fit in an OCaml [int]. *)

val of_string : string -> t
(** Decimal, with optional leading [-]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val is_even : t -> bool

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= r < |b|]
    (Euclidean remainder). Raises [Division_by_zero] when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t
(** Euclidean remainder, always non-negative. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
val bit_length : t -> int
val testbit : t -> int -> bool

val pow : t -> int -> t
val mod_pow : base:t -> exp:t -> modulus:t -> t
(** [mod_pow ~base ~exp ~modulus] with [exp >= 0], [modulus > 0]. *)

(** Montgomery arithmetic over a fixed odd modulus. Building a context
    costs one division; every subsequent modular multiplication or
    windowed exponentiation avoids division entirely — the batched
    Paillier kernels build one context per key and reuse it across a
    whole column. Results are bit-identical to {!mod_pow}/{!rem}. *)
module Mont : sig
  type ctx

  val create : t -> ctx
  (** Raises [Invalid_argument] unless the modulus is odd and positive. *)

  val mul : ctx -> t -> t -> t
  (** [mul ctx a b = a * b mod m]. *)

  val pow : ctx -> t -> t -> t
  (** [pow ctx base exp = base ^ exp mod m] by 4-bit windowed
      square-and-multiply over Montgomery representatives; [exp >= 0]. *)
end

val gcd : t -> t -> t
val lcm : t -> t -> t

val invmod : t -> t -> t option
(** [invmod a n] is [Some x] with [a*x ≡ 1 (mod n)] when
    [gcd a n = 1]. *)

val random_bits : Prng.t -> int -> t
(** Uniform value with at most [bits] bits. *)

val random_below : Prng.t -> t -> t
(** Uniform in [[0, bound)]; [bound > 0]. *)

val is_probable_prime : ?rounds:int -> Prng.t -> t -> bool
(** Miller-Rabin with [rounds] random bases (default 24). *)

val random_prime : Prng.t -> int -> t
(** Random probable prime of exactly [bits] bits ([bits >= 2]). *)

val of_bytes_be : string -> t
(** Big-endian unsigned decoding. *)

val to_bytes_be : t -> string
(** Big-endian unsigned encoding of a non-negative value, no leading
    zero bytes (empty string for zero). *)
