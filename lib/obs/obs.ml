type span = {
  name : string;
  mutable calls : int;
  mutable elapsed : float; (* seconds, summed over occurrences *)
  mutable children : span list; (* reverse insertion order *)
}

let fresh_root () = { name = "root"; calls = 0; elapsed = 0.0; children = [] }

(* All collector state lives in a [state] record. The process has one
   global instance rendered by the reports; parallel workers write into
   private [buffer] instances (installed per-domain through DLS) that the
   coordinating domain merges after the join, so no two domains ever
   mutate the same tables. *)
type state = {
  mutable root : span;
  mutable stack : span list; (* innermost open span first; empty = at root *)
  counter_tbl : (string, int) Hashtbl.t;
  metric_tbl : (string, float * int) Hashtbl.t;
}

type buffer = state

let make_state () =
  { root = fresh_root ();
    stack = [];
    counter_tbl = Hashtbl.create 32;
    metric_tbl = Hashtbl.create 32 }

let enabled_flag = ref false
let global = make_state ()

let dls_buffer : state option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current () =
  match Domain.DLS.get dls_buffer with Some st -> st | None -> global

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let reset () =
  global.root <- fresh_root ();
  global.stack <- [];
  Hashtbl.reset global.counter_tbl;
  Hashtbl.reset global.metric_tbl

let now = Unix.gettimeofday

let find_or_add_child parent name =
  match List.find_opt (fun c -> String.equal c.name name) parent.children with
  | Some c -> c
  | None ->
      let c = { name; calls = 0; elapsed = 0.0; children = [] } in
      parent.children <- c :: parent.children;
      c

let with_span name f =
  if not !enabled_flag then f ()
  else begin
    let st = current () in
    let parent = match st.stack with s :: _ -> s | [] -> st.root in
    let sp = find_or_add_child parent name in
    sp.calls <- sp.calls + 1;
    st.stack <- sp :: st.stack;
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        sp.elapsed <- sp.elapsed +. (now () -. t0);
        (* pop our frame; be robust to a corrupted stack *)
        match st.stack with s :: rest when s == sp -> st.stack <- rest | _ -> ())
      f
  end

let incr ?(by = 1) name =
  if !enabled_flag then
    let st = current () in
    Hashtbl.replace st.counter_tbl name
      (by + Option.value ~default:0 (Hashtbl.find_opt st.counter_tbl name))

let record name v =
  if !enabled_flag then
    let st = current () in
    let total, count =
      Option.value ~default:(0.0, 0) (Hashtbl.find_opt st.metric_tbl name)
    in
    Hashtbl.replace st.metric_tbl name (total +. v, count + 1)

let time name f =
  if not !enabled_flag then f ()
  else begin
    let t0 = now () in
    Fun.protect ~finally:(fun () -> record name (now () -. t0)) f
  end

let counter name =
  Option.value ~default:0 (Hashtbl.find_opt global.counter_tbl name)

let counters ?(prefix = "") () =
  Hashtbl.fold
    (fun k v acc -> if String.starts_with ~prefix k then (k, v) :: acc else acc)
    global.counter_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- buffers (parallel workers) -------------------------------------- *)

let create_buffer () = make_state ()

let in_buffer buf f =
  let saved = Domain.DLS.get dls_buffer in
  Domain.DLS.set dls_buffer (Some buf);
  Fun.protect ~finally:(fun () -> Domain.DLS.set dls_buffer saved) f

let merge_buffer buf =
  if !enabled_flag then begin
    let st = current () in
    let target = match st.stack with s :: _ -> s | [] -> st.root in
    let rec graft parent sp =
      let dst = find_or_add_child parent sp.name in
      dst.calls <- dst.calls + sp.calls;
      dst.elapsed <- dst.elapsed +. sp.elapsed;
      List.iter (graft dst) (List.rev sp.children)
    in
    List.iter (graft target) (List.rev buf.root.children);
    Hashtbl.iter
      (fun k v ->
        Hashtbl.replace st.counter_tbl k
          (v + Option.value ~default:0 (Hashtbl.find_opt st.counter_tbl k)))
      buf.counter_tbl;
    Hashtbl.iter
      (fun k (total, count) ->
        let t0, c0 =
          Option.value ~default:(0.0, 0) (Hashtbl.find_opt st.metric_tbl k)
        in
        Hashtbl.replace st.metric_tbl k (t0 +. total, c0 + count))
      buf.metric_tbl
  end

(* --- reports ---------------------------------------------------------- *)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let render_text ?(spans = true) ?(counters = true) () =
  let buf = Buffer.create 512 in
  if spans then begin
    Buffer.add_string buf "--- spans ---\n";
    if global.root.children = [] then Buffer.add_string buf "  (none)\n"
    else
      let rec go depth parent_elapsed sp =
        let share =
          if parent_elapsed > 0.0 then
            Printf.sprintf " %5.1f%%" (100.0 *. sp.elapsed /. parent_elapsed)
          else ""
        in
        Buffer.add_string buf
          (Printf.sprintf "  %s%-*s %9.3f ms  x%-6d%s\n"
             (String.make (2 * depth) ' ')
             (max 1 (32 - (2 * depth)))
             sp.name (1000.0 *. sp.elapsed) sp.calls share);
        List.iter (go (depth + 1) sp.elapsed) (List.rev sp.children)
      in
      List.iter (go 0 0.0) (List.rev global.root.children)
  end;
  if counters then begin
    if sorted_bindings global.counter_tbl <> [] then begin
      Buffer.add_string buf "--- counters ---\n";
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-40s %d\n" k v))
        (sorted_bindings global.counter_tbl)
    end;
    if sorted_bindings global.metric_tbl <> [] then begin
      Buffer.add_string buf "--- metrics ---\n";
      List.iter
        (fun (k, (total, count)) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-40s %g (n=%d)\n" k total count))
        (sorted_bindings global.metric_tbl)
    end
  end;
  Buffer.contents buf

let render_json () =
  let open Relalg in
  let rec span_json sp =
    Json.Obj
      ([ ("name", Json.String sp.name);
         ("calls", Json.Int sp.calls);
         ("total_ms", Json.Float (1000.0 *. sp.elapsed)) ]
      @
      match sp.children with
      | [] -> []
      | cs -> [ ("children", Json.List (List.rev_map span_json cs)) ])
  in
  Json.Obj
    [ ("spans", Json.List (List.rev_map span_json global.root.children));
      ( "counters",
        Json.Obj
          (List.map
             (fun (k, v) -> (k, Json.Int v))
             (sorted_bindings global.counter_tbl)) );
      ( "metrics",
        Json.Obj
          (List.map
             (fun (k, (total, count)) ->
               ( k,
                 Json.Obj
                   [ ("total", Json.Float total); ("count", Json.Int count) ]
               ))
             (sorted_bindings global.metric_tbl)) ) ]
