type span = {
  name : string;
  mutable calls : int;
  mutable elapsed : float; (* seconds, summed over occurrences *)
  mutable children : span list; (* reverse insertion order *)
}

let fresh_root () = { name = "root"; calls = 0; elapsed = 0.0; children = [] }

let enabled_flag = ref false
let root = ref (fresh_root ())
let stack = ref [] (* innermost open span first; empty = at root *)
let counter_tbl : (string, int) Hashtbl.t = Hashtbl.create 32
let metric_tbl : (string, float * int) Hashtbl.t = Hashtbl.create 32

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let reset () =
  root := fresh_root ();
  stack := [];
  Hashtbl.reset counter_tbl;
  Hashtbl.reset metric_tbl

let now = Unix.gettimeofday

let find_or_add_child parent name =
  match List.find_opt (fun c -> String.equal c.name name) parent.children with
  | Some c -> c
  | None ->
      let c = { name; calls = 0; elapsed = 0.0; children = [] } in
      parent.children <- c :: parent.children;
      c

let with_span name f =
  if not !enabled_flag then f ()
  else begin
    let parent = match !stack with s :: _ -> s | [] -> !root in
    let sp = find_or_add_child parent name in
    sp.calls <- sp.calls + 1;
    stack := sp :: !stack;
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        sp.elapsed <- sp.elapsed +. (now () -. t0);
        (* pop our frame; be robust to a corrupted stack *)
        match !stack with s :: rest when s == sp -> stack := rest | _ -> ())
      f
  end

let incr ?(by = 1) name =
  if !enabled_flag then
    Hashtbl.replace counter_tbl name
      (by + Option.value ~default:0 (Hashtbl.find_opt counter_tbl name))

let record name v =
  if !enabled_flag then
    let total, count =
      Option.value ~default:(0.0, 0) (Hashtbl.find_opt metric_tbl name)
    in
    Hashtbl.replace metric_tbl name (total +. v, count + 1)

let time name f =
  if not !enabled_flag then f ()
  else begin
    let t0 = now () in
    Fun.protect ~finally:(fun () -> record name (now () -. t0)) f
  end

let counter name = Option.value ~default:0 (Hashtbl.find_opt counter_tbl name)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let render_text ?(spans = true) ?(counters = true) () =
  let buf = Buffer.create 512 in
  if spans then begin
    Buffer.add_string buf "--- spans ---\n";
    if !root.children = [] then Buffer.add_string buf "  (none)\n"
    else
      let rec go depth parent_elapsed sp =
        let share =
          if parent_elapsed > 0.0 then
            Printf.sprintf " %5.1f%%" (100.0 *. sp.elapsed /. parent_elapsed)
          else ""
        in
        Buffer.add_string buf
          (Printf.sprintf "  %s%-*s %9.3f ms  x%-6d%s\n"
             (String.make (2 * depth) ' ')
             (max 1 (32 - (2 * depth)))
             sp.name (1000.0 *. sp.elapsed) sp.calls share);
        List.iter (go (depth + 1) sp.elapsed) (List.rev sp.children)
      in
      List.iter (go 0 0.0) (List.rev !root.children)
  end;
  if counters then begin
    if sorted_bindings counter_tbl <> [] then begin
      Buffer.add_string buf "--- counters ---\n";
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-40s %d\n" k v))
        (sorted_bindings counter_tbl)
    end;
    if sorted_bindings metric_tbl <> [] then begin
      Buffer.add_string buf "--- metrics ---\n";
      List.iter
        (fun (k, (total, count)) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-40s %g (n=%d)\n" k total count))
        (sorted_bindings metric_tbl)
    end
  end;
  Buffer.contents buf

let render_json () =
  let open Relalg in
  let rec span_json sp =
    Json.Obj
      ([ ("name", Json.String sp.name);
         ("calls", Json.Int sp.calls);
         ("total_ms", Json.Float (1000.0 *. sp.elapsed)) ]
      @
      match sp.children with
      | [] -> []
      | cs -> [ ("children", Json.List (List.rev_map span_json cs)) ])
  in
  Json.Obj
    [ ("spans", Json.List (List.rev_map span_json !root.children));
      ( "counters",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Int v)) (sorted_bindings counter_tbl))
      );
      ( "metrics",
        Json.Obj
          (List.map
             (fun (k, (total, count)) ->
               ( k,
                 Json.Obj
                   [ ("total", Json.Float total); ("count", Json.Int count) ]
               ))
             (sorted_bindings metric_tbl)) ) ]
