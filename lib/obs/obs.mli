(** Lightweight observability: tracing spans, counters and timers.

    The planner, engine, verifier and distributed simulator report where
    time goes through this module. Everything is a no-op while disabled
    (the default), so instrumented hot paths pay only a single [bool]
    load; [mpqcli --stats] and the bench harness enable it.

    Spans form a tree following dynamic nesting. Sibling spans with the
    same name are merged — a span aggregates every occurrence under its
    parent (call count + total wall-clock), so repeated phases (DP
    rounds, sweep evaluations, per-operator execution) stay bounded in
    the report regardless of how often they run. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Enabling starts from a clean slate iff the state was previously
    empty; call {!reset} for an explicit wipe. *)

val reset : unit -> unit
(** Drop all recorded spans, counters and timers (the enabled flag is
    kept). *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span named [name], nested under
    the currently open span. Wall-clock (Unix.gettimeofday) is
    accumulated even when [f] raises. When disabled, [f] is called
    directly. *)

val incr : ?by:int -> string -> unit
(** Bump a named counter (default [by] 1). *)

val record : string -> float -> unit
(** Accumulate a named float metric (sum + sample count), e.g. bytes
    moved or seconds spent in a phase not shaped like a span. *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f] and {!record}s its duration in seconds. *)

val counter : string -> int
(** Current value of a counter (0 when absent) — mostly for tests. *)

val counters : ?prefix:string -> unit -> (string * int) list
(** Snapshot of all counters, sorted by name, optionally restricted to
    those whose name starts with [prefix] (e.g. ["server."]). *)

(** {2 Domain-local buffers}

    Collector state is not safe for concurrent mutation, so parallel
    workers never write the global tables directly: the domain pool
    ({!Par}) gives every task a private [buffer], installs it for the
    task's duration, and the coordinating domain merges the buffers —
    in deterministic task order — after the join. Counters and metrics
    add up; buffered span trees are grafted under the span open at
    merge time, so per-domain attribution survives in the report. *)

type buffer

val create_buffer : unit -> buffer

val in_buffer : buffer -> (unit -> 'a) -> 'a
(** [in_buffer b f] redirects every span/counter/metric recorded by [f]
    on the calling domain into [b] (nestable; restored on return). *)

val merge_buffer : buffer -> unit
(** Fold a buffer's spans, counters and metrics into the caller's
    current collector state (the global one, or an enclosing buffer).
    No-op while disabled. *)

val render_text : ?spans:bool -> ?counters:bool -> unit -> string
(** Human-readable report: span tree (total ms, call counts, share of
    parent) followed by counters and metrics, both sorted by name.
    Either section can be suppressed. *)

val render_json : unit -> Relalg.Json.t
(** The same report as a JSON object:
    [{"spans": [{"name", "calls", "total_ms", "children": [...]}, ...],
      "counters": {...}, "metrics": {"name": {"total", "count"}, ...}}] *)
