(** Authorization facts — the atoms of the dependency analysis.

    A fact [(subject, attribute, level)] states that the subject's
    overall view ({!Authz.Authorization.view}) grants the attribute at
    that level: [Plain] means the attribute is in the subject's
    plaintext set [P], [Enc] that it is in the encrypted-visibility set
    [E]. Facts are deliberately view-level rather than rule-level:
    every consumer of the policy inside the verifier and the planner's
    user-input gate reads subject {e views} (per-relation rules are
    unioned first, and {!Authz.Authorization.make} injects implicit
    owner and outsourced-host rules), so two policies with identical
    views are indistinguishable to a cached plan even when their rule
    lists differ. *)

open Relalg
open Authz

type level = Plain | Enc

val compare_level : level -> level -> int
val level_name : level -> string

type t = { subject : Subject.t; attr : Attr.t; level : level }

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Set : sig
  include Stdlib.Set.S with type elt = t

  val to_string : t -> string
end

val of_view : Subject.t -> Authorization.view -> Set.t
(** Every fact a view grants: [(s, a, Plain)] for [a ∈ view.plain],
    [(s, a, Enc)] for [a ∈ view.enc]. *)

val of_profile : Subject.t -> Profile.t -> Set.t
(** The facts Def. 4.1 consults when checking [s] against a relation
    profile ({!Verify.Check_authz.check_view}):
    plaintext content ([vp ∪ ip]) reads the [Plain] facts; encrypted
    content ([ve ∪ ie]) reads both levels (membership in [P ∪ E]); and
    every attribute of every equivalence class reads both levels
    (uniform-visibility needs the class inside [P] or inside [E]).
    Mutating any fact outside this set cannot change the check's
    verdict on this (subject, profile) pair. *)
