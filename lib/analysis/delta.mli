(** Structural policy deltas.

    [diff] compares two policies as the set of {!Fact}s they grant to a
    population of subjects, rather than by fingerprint: two policies
    with different rule lists but identical subject views produce an
    empty delta, and a one-attribute revocation produces exactly the
    facts that changed.

    The delta is exact {e restricted to the population}: the views of
    the subjects passed in [subjects], of every subject named by an
    explicit rule of either policy, and of every implicit schema
    subject (relation owners and outsourcing hosts, which
    {!Authz.Authorization.make} equips with implicit rules). A change
    to an [any] rule can alter the view of a subject outside that
    population — callers must therefore list every subject whose view
    they rely on (the serve layer passes its configured planning
    subjects plus every subject occurring in a cached dependency set).

    [`Incompatible] is returned when the base schemas differ
    structurally (name, owner, columns with types, or storage): plans
    built against a different schema are not comparable fact-by-fact,
    so callers should fall back to full invalidation. *)

open Authz

type t = { added : Fact.Set.t; removed : Fact.Set.t }

val is_empty : t -> bool

val grant_only : t -> bool
(** No removed facts. Grants are monotone for the verifier's
    authorization checks, so grant-only deltas can never turn a
    passing plan failing — see {!Deps}. *)

val diff :
  ?subjects:Subject.t list ->
  old_policy:Authorization.t ->
  new_policy:Authorization.t ->
  unit ->
  [ `Incompatible | `Delta of t ]

val to_string : t -> string
