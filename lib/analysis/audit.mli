(** Whole-policy audit: who could ever see what, and how.

    For every subject in the policy's population (explicitly named
    subjects, implicit schema subjects, plus any extra [subjects]), the
    audit answers "which attributes could this subject ever observe, at
    which level, via which path?" using the verifier's own Def. 4.1
    check ({!Verify.Check_authz.check_view}) rather than a parallel
    reimplementation:

    - {b relation paths}: what the subject's per-relation view
      ({!Authz.Authorization.relation_view}) grants directly;
    - {b join paths}: for every type-compatible attribute pair
      [(ra.a, rb.b)] across distinct relations, whether the subject
      could lawfully execute the comparison [a = b] — i.e. whether
      Def. 4.1 accepts the joined profile — thereby observing [a]
      plaintext ([{a,b} ⊆ P]) or encrypted ([{a,b}] uniformly within
      [P] or within [E]).

    Findings are deduplicated and sorted (attribute, subject, path,
    level), so [render] output is stable across runs and suitable for
    golden tests and CI greps. *)

open Relalg
open Authz

type via =
  | Relation of string
  | Join of { rel : string; attr : Attr.t; other_rel : string; other : Attr.t }
      (** [attr] observed while executing the join [rel.attr = other_rel.other] *)

type finding = {
  subject : Subject.t;
  attr : Attr.t;
  level : Fact.level;
  via : via;
}

val run :
  policy:Authorization.t ->
  ?subjects:Subject.t list ->
  ?attr:string ->
  ?subject:string ->
  unit ->
  finding list
(** [attr] / [subject] filter the report by attribute or subject name. *)

val render : finding list -> string
(** One line per finding:
    [S: U plain via relation Hosp] /
    [S: X enc via join Hosp.S = Ins.C]. *)

val to_json : finding list -> Json.t
