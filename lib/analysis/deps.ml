open Relalg
open Authz

(* Mirror of the verifier's policy reads (see deps.mli). Each block
   below names the check it shadows; keeping the two in sync is what
   the soundness property in test/test_analysis.ml enforces. *)
(* Shared core: collect the facts for the extended-plan nodes selected
   by [keep] (applied to each node's preorder position). [of_extended]
   keeps everything; [of_subplan] keeps one subtree's position range,
   giving the sub-plan result cache a dependency set that covers
   exactly the checks whose certification the reused bytes embody. *)
let collect ?deliver_to ?original ?derive_memo ~(extended : Extend.t)
    ~clusters ~keep () =
  let acc = ref Fact.Set.empty in
  let add s = acc := Fact.Set.union s !acc in
  let positions = Plan.preorder_positions extended.Extend.plan in
  let kept n =
    match Hashtbl.find_opt positions (Plan.id n) with
    | Some p -> keep p
    | None -> true (* unreachable on trees; stay conservative *)
  in
  (* V2/V3 — Check_authz and the Check_minimal probes: executor [s]
     against operand and result profiles, re-derived like the verifier
     derives them. Minimality probes check the same executors against
     profiles over the same attribute carrier (a dropped encryption
     only moves attributes between plain and encrypted form), so the
     facts of_profile lists for the lenient derivation cover them. *)
  let derived, _diags =
    Verify.Derive.lenient ?memo:derive_memo extended.Extend.plan
  in
  List.iter
    (fun n ->
      match Imap.find_opt (Plan.id n) extended.Extend.assignment with
      | None -> ()
      | Some subject when kept n ->
          let against m =
            match Hashtbl.find_opt derived (Plan.id m) with
            | Some p -> add (Fact.of_profile subject p)
            | None -> ()
          in
          List.iter against (Plan.children n);
          against n
      | Some _ -> ())
    (Plan.nodes extended.Extend.plan);
  (* V4 — Check_keys.distribution (MPQ030): every holder with duty over
     a cluster must keep plaintext authorization over what it handles.
     For a subtree, restrict to the attributes whose encryption or
     decryption operations live inside it: their handlers' duties are
     what the reused ciphertext bytes rely on. (A handler elsewhere in
     the plan over the same attribute is included too — over-inclusion
     is conservative.) *)
  let crypto_attrs =
    List.fold_left
      (fun s n ->
        if not (kept n) then s
        else
          match Plan.node n with
          | Plan.Encrypt (a, _) | Plan.Decrypt (a, _) -> Attr.Set.union a s
          | Plan.Base sch -> Attr.Set.union (Schema.stored_encrypted sch) s
          | _ -> s)
      Attr.Set.empty
      (Plan.nodes extended.Extend.plan)
  in
  List.iter
    (fun (c : Plan_keys.cluster) ->
      Subject.Map.iter
        (fun subject handled ->
          Attr.Set.iter
            (fun attr ->
              if Attr.Set.mem attr crypto_attrs then
                acc :=
                  Fact.Set.add { Fact.subject; attr; level = Fact.Plain } !acc)
            handled)
        (Verify.Check_keys.duty_map extended c.Plan_keys.attrs))
    clusters;
  (* The optimizer's recipient gate: deliver_to must be authorized for
     every maximal source-side node of the original (crypto-stripped)
     plan. Replayed with the same recursion the optimizer uses. For a
     subtree, only gates whose base relations all feed the subtree are
     included (membership judged by relation name — the gate guards
     input data, not plan positions). *)
  let kept_bases =
    List.fold_left
      (fun s n ->
        if kept n then
          match Plan.node n with
          | Plan.Base sch -> sch.Schema.name :: s
          | _ -> s
        else s)
      []
      (Plan.nodes extended.Extend.plan)
  in
  (match deliver_to with
  | None -> ()
  | Some user ->
      let rec inputs n =
        if Candidates.is_source_side n then begin
          if
            List.for_all
              (fun (sch : Schema.t) -> List.mem sch.Schema.name kept_bases)
              (Plan.base_relations n)
          then add (Fact.of_profile user (Profile.of_plan n))
        end
        else List.iter inputs (Plan.children n)
      in
      inputs
        (match original with
        | Some q -> q
        | None -> Plan.strip_crypto extended.Extend.plan));
  !acc

let of_extended ?deliver_to ?original ?derive_memo ~extended ~clusters () =
  Obs.with_span "analysis.deps" @@ fun () ->
  collect ?deliver_to ?original ?derive_memo ~extended ~clusters
    ~keep:(fun _ -> true)
    ()

let of_subplan ?deliver_to ?original ?derive_memo ~extended ~clusters
    ~range:(lo, len) () =
  Obs.with_span "analysis.subdeps" @@ fun () ->
  collect ?deliver_to ?original ?derive_memo ~extended ~clusters
    ~keep:(fun p -> lo <= p && p < lo + len)
    ()

(* The population a policy delta must be computed over includes every
   subject a dependency set mentions: an [any] rule change can alter
   the view of a subject the caller's configured population does not
   list, and a cached verdict relying on that subject's facts would
   then migrate unsoundly. The serve layer folds this over every cached
   entry of the tenant whose policy is changing — other tenants'
   entries are out of scope by construction, which is what makes
   invalidation per-tenant. *)
let subjects_of facts =
  Fact.Set.fold
    (fun f acc -> Subject.Set.add f.Fact.subject acc)
    facts Subject.Set.empty
