open Relalg
open Authz

(* Mirror of the verifier's policy reads (see deps.mli). Each block
   below names the check it shadows; keeping the two in sync is what
   the soundness property in test/test_analysis.ml enforces. *)
let of_extended ?deliver_to ?original ~(extended : Extend.t) ~clusters () =
  Obs.with_span "analysis.deps" @@ fun () ->
  let acc = ref Fact.Set.empty in
  let add s = acc := Fact.Set.union s !acc in
  (* V2/V3 — Check_authz and the Check_minimal probes: executor [s]
     against operand and result profiles, re-derived like the verifier
     derives them. Minimality probes check the same executors against
     profiles over the same attribute carrier (a dropped encryption
     only moves attributes between plain and encrypted form), so the
     facts of_profile lists for the lenient derivation cover them. *)
  let derived, _diags = Verify.Derive.lenient extended.Extend.plan in
  List.iter
    (fun n ->
      match Imap.find_opt (Plan.id n) extended.Extend.assignment with
      | None -> ()
      | Some subject ->
          let against m =
            match Hashtbl.find_opt derived (Plan.id m) with
            | Some p -> add (Fact.of_profile subject p)
            | None -> ()
          in
          List.iter against (Plan.children n);
          against n)
    (Plan.nodes extended.Extend.plan);
  (* V4 — Check_keys.distribution (MPQ030): every holder with duty over
     a cluster must keep plaintext authorization over what it handles. *)
  List.iter
    (fun (c : Plan_keys.cluster) ->
      Subject.Map.iter
        (fun subject handled ->
          Attr.Set.iter
            (fun attr ->
              acc :=
                Fact.Set.add
                  { Fact.subject; attr; level = Fact.Plain }
                  !acc)
            handled)
        (Verify.Check_keys.duty_map extended c.Plan_keys.attrs))
    clusters;
  (* The optimizer's recipient gate: deliver_to must be authorized for
     every maximal source-side node of the original (crypto-stripped)
     plan. Replayed with the same recursion the optimizer uses. *)
  (match deliver_to with
  | None -> ()
  | Some user ->
      let rec inputs n =
        if Candidates.is_source_side n then
          add (Fact.of_profile user (Profile.of_plan n))
        else List.iter inputs (Plan.children n)
      in
      inputs
        (match original with
        | Some q -> q
        | None -> Plan.strip_crypto extended.Extend.plan));
  !acc
