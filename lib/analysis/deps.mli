(** Per-plan authorization dependency sets.

    [of_extended] re-derives, for a finished (extended, clusters) plan,
    the exact set of {!Fact}s the static verifier's policy-consulting
    checks and the planner's user-input gate read when certifying it —
    by replaying the same derivations, not by conservatively returning
    every fact of every subject:

    - {b assignees} (Def. 4.1/4.2, [MPQ010–012] and the [MPQ020]
      minimality probes): for every node with executor [s], the facts
      {!Fact.of_profile} lists for [s] against each operand profile and
      the node's result profile, with profiles re-derived from the plan
      exactly as {!Verify.Derive} does;
    - {b key distribution} (Def. 6.1, [MPQ030]): for every cluster and
      every subject with encryption/decryption duty over it
      ({!Verify.Check_keys.duty_map}), the [Plain] facts over the
      attributes it handles;
    - {b user inputs} (Sec. 6's recipient gate in the optimizer): when
      [deliver_to] is given, the facts of that subject against the
      profile of every maximal source-side node of the original plan —
      [original] when the caller still has the query the gate actually
      ran on (the serve layer does), else the extended plan with its
      crypto operations stripped.

    The profile-propagation, scheme-sufficiency and dispatch checks
    never consult the policy, so they contribute no facts.

    {b Soundness claim} (checked by the qcheck property in
    [test/test_analysis.ml]): a policy change whose view-level delta
    ({!Delta.diff}) is disjoint from a plan's dependency set leaves
    every verifier verdict on that plan unchanged. A delta that only
    {e adds} facts can never turn a passing check failing (grants are
    monotone for Def. 4.1), so entries overlapping the delta on added
    facts alone are safely revalidated by one verifier pass without
    replanning; removed facts in the set force invalidation. *)

open Authz

val of_extended :
  ?deliver_to:Subject.t ->
  ?original:Relalg.Plan.t ->
  ?derive_memo:Verify.Derive.memo ->
  extended:Extend.t ->
  clusters:Plan_keys.cluster list ->
  unit ->
  Fact.Set.t
(** [derive_memo] shares the lenient profile re-derivation across
    calls by structural fingerprint (identical result either way);
    the serve layer threads one memo through every dependency
    computation of a service so a subtree shared by many cached plans
    is derived once. *)

val of_subplan :
  ?deliver_to:Subject.t ->
  ?original:Relalg.Plan.t ->
  ?derive_memo:Verify.Derive.memo ->
  extended:Extend.t ->
  clusters:Plan_keys.cluster list ->
  range:int * int ->
  unit ->
  Fact.Set.t
(** Dependency set of one subtree of [extended.plan], identified by
    its preorder position range [range = (pos, size)] — the facts whose
    revocation must invalidate a {e cached sub-plan result} whose bytes
    embody that subtree's execution:

    - assignee facts restricted to nodes inside the range;
    - key-distribution facts restricted to the attributes whose
      encryption/decryption operations (or encrypted-at-rest base
      scans) live inside the range;
    - recipient-gate facts for the source-side inputs whose base
      relations all feed the subtree.

    [of_subplan ~range:(0, size plan)] equals {!of_extended}. Each
    restriction only removes facts provably tied to plan parts outside
    the subtree, so a delta disjoint from this set cannot change any
    verifier verdict {e about the subtree} — the invalidation protocol
    the sub-plan cache replays is the one the soundness property in
    [test/test_analysis.ml] checks for whole plans. *)

val subjects_of : Fact.Set.t -> Subject.Set.t
(** The subjects a dependency set mentions — the extra population a
    {!Delta.diff} must cover so that a delta judged disjoint from the
    set is disjoint for {e every} subject the cached verdict consulted
    (an [any]-rule change can touch subjects outside the caller's
    configured population). The serve layer folds this over the cached
    entries of exactly the tenant whose policy is being swapped. *)
