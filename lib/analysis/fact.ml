open Relalg
open Authz

type level = Plain | Enc

type t = { subject : Subject.t; attr : Attr.t; level : level }

let compare_level a b =
  match (a, b) with
  | Plain, Plain | Enc, Enc -> 0
  | Plain, Enc -> -1
  | Enc, Plain -> 1

let compare a b =
  match Subject.compare a.subject b.subject with
  | 0 -> (
      match Attr.compare a.attr b.attr with
      | 0 -> compare_level a.level b.level
      | c -> c)
  | c -> c

let equal a b = compare a b = 0

let level_name = function Plain -> "plain" | Enc -> "enc"

let to_string f =
  Printf.sprintf "(%s, %s, %s)" (Subject.name f.subject) (Attr.name f.attr)
    (level_name f.level)

let pp fmt f = Format.pp_print_string fmt (to_string f)

module Set = struct
  include Stdlib.Set.Make (struct
    type nonrec t = t

    let compare = compare
  end)

  let to_string s =
    String.concat " " (List.map to_string (elements s))
end

let of_view subject (view : Authorization.view) =
  let add level attrs acc =
    Attr.Set.fold (fun attr acc -> Set.add { subject; attr; level } acc)
      attrs acc
  in
  add Plain view.Authorization.plain
    (add Enc view.Authorization.enc Set.empty)

let of_profile subject (p : Profile.t) =
  let add level attrs acc =
    Attr.Set.fold (fun attr acc -> Set.add { subject; attr; level } acc)
      attrs acc
  in
  let both attrs acc = add Plain attrs (add Enc attrs acc) in
  let plaintext = Attr.Set.union p.Profile.vp p.Profile.ip in
  let anything = Attr.Set.union p.Profile.ve p.Profile.ie in
  let acc = add Plain plaintext Set.empty in
  let acc = both anything acc in
  List.fold_left (fun acc cls -> both cls acc) acc
    (Partition.sets p.Profile.eq)
