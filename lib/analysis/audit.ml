open Relalg
open Authz

type via =
  | Relation of string
  | Join of { rel : string; attr : Attr.t; other_rel : string; other : Attr.t }

type finding = {
  subject : Subject.t;
  attr : Attr.t;
  level : Fact.level;
  via : via;
}

let via_key = function
  | Relation r -> (0, r, "", "")
  | Join j ->
      (1, j.rel, Attr.name j.attr ^ "." ^ j.other_rel, Attr.name j.other)

let compare_finding a b =
  match String.compare (Attr.name a.attr) (Attr.name b.attr) with
  | 0 -> (
      match Subject.compare a.subject b.subject with
      | 0 -> (
          match compare (via_key a.via) (via_key b.via) with
          | 0 -> Fact.compare_level a.level b.level
          | c -> c)
      | c -> c)
  | c -> c

let population extra policy =
  let of_schemas acc =
    List.fold_left
      (fun acc s ->
        let acc = Subject.Set.add (Subject.authority s.Schema.owner) acc in
        match s.Schema.storage with
        | Schema.At_authority -> acc
        | Schema.Outsourced { host; _ } ->
            Subject.Set.add (Subject.provider host) acc)
      acc (Authorization.schemas policy)
  in
  List.fold_left
    (fun acc s -> Subject.Set.add s acc)
    (of_schemas (Authorization.explicit_subjects policy))
    extra

(* Whether [view] lets a subject execute the comparison [a = b] and so
   observe both sides at [level] — Def. 4.1 on the joined profile,
   delegated to the verifier's own check. *)
let join_visible view level a b =
  let names = [ Attr.name a; Attr.name b ] in
  let profile =
    match level with
    | Fact.Plain -> Profile.make ~vp:names ~eq:[ names ] ()
    | Fact.Enc -> Profile.make ~ve:names ~eq:[ names ] ()
  in
  Verify.Check_authz.check_view view profile = None

let run ~policy ?(subjects = []) ?attr ?subject () =
  Obs.with_span "analysis.audit" @@ fun () ->
  let schemas = Authorization.schemas policy in
  let acc = ref [] in
  let emit f = acc := f :: !acc in
  Subject.Set.iter
    (fun s ->
      (* Relation paths: what each per-relation rule grants directly. *)
      List.iter
        (fun (sch : Schema.t) ->
          let rv = Authorization.relation_view policy sch.Schema.name s in
          let via = Relation sch.Schema.name in
          Attr.Set.iter
            (fun a ->
              emit { subject = s; attr = a; level = Fact.Plain; via })
            rv.Authorization.plain;
          Attr.Set.iter
            (fun a -> emit { subject = s; attr = a; level = Fact.Enc; via })
            rv.Authorization.enc)
        schemas;
      (* Join paths: type-compatible cross-relation comparisons the
         subject could execute, per its overall view. *)
      let view = Authorization.view policy s in
      List.iter
        (fun (ra : Schema.t) ->
          List.iter
            (fun (rb : Schema.t) ->
              if not (String.equal ra.Schema.name rb.Schema.name) then
                List.iter
                  (fun (a, ta) ->
                    List.iter
                      (fun (b, tb) ->
                        if ta = tb then
                          List.iter
                            (fun level ->
                              if join_visible view level a b then
                                emit
                                  { subject = s;
                                    attr = a;
                                    level;
                                    via =
                                      Join
                                        { rel = ra.Schema.name;
                                          attr = a;
                                          other_rel = rb.Schema.name;
                                          other = b
                                        }
                                  })
                            [ Fact.Plain; Fact.Enc ])
                      rb.Schema.columns)
                  ra.Schema.columns)
            schemas)
        schemas)
    (population subjects policy);
  let keep f =
    (match attr with
    | Some a -> String.equal a (Attr.name f.attr)
    | None -> true)
    &&
    match subject with
    | Some s -> String.equal s (Subject.name f.subject)
    | None -> true
  in
  List.sort_uniq compare_finding (List.filter keep !acc)

let via_string = function
  | Relation r -> Printf.sprintf "via relation %s" r
  | Join j ->
      Printf.sprintf "via join %s.%s = %s.%s" j.rel (Attr.name j.attr)
        j.other_rel (Attr.name j.other)

let finding_line f =
  Printf.sprintf "%s: %s %s %s" (Attr.name f.attr) (Subject.name f.subject)
    (Fact.level_name f.level) (via_string f.via)

let render findings =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf (finding_line f);
      Buffer.add_char buf '\n')
    findings;
  Buffer.add_string buf
    (Printf.sprintf "%d finding%s\n" (List.length findings)
       (if List.length findings = 1 then "" else "s"));
  Buffer.contents buf

let to_json findings =
  let one f =
    let via =
      match f.via with
      | Relation r ->
          Json.Obj [ ("kind", Json.String "relation"); ("relation", Json.String r) ]
      | Join j ->
          Json.Obj
            [ ("kind", Json.String "join");
              ("relation", Json.String j.rel);
              ("attr", Json.String (Attr.name j.attr));
              ("other_relation", Json.String j.other_rel);
              ("other_attr", Json.String (Attr.name j.other)) ]
    in
    Json.Obj
      [ ("attr", Json.String (Attr.name f.attr));
        ("subject", Json.String (Subject.name f.subject));
        ("role",
         Json.String
           (match f.subject.Subject.role with
           | Subject.User -> "user"
           | Subject.Authority -> "authority"
           | Subject.Provider -> "provider"));
        ("level", Json.String (Fact.level_name f.level));
        ("via", via) ]
  in
  Json.Obj
    [ ("findings", Json.List (List.map one findings));
      ("count", Json.Int (List.length findings)) ]
