open Relalg
open Authz

type t = { added : Fact.Set.t; removed : Fact.Set.t }

let is_empty d = Fact.Set.is_empty d.added && Fact.Set.is_empty d.removed
let grant_only d = Fact.Set.is_empty d.removed

let to_string d =
  Printf.sprintf "+{%s} -{%s}" (Fact.Set.to_string d.added)
    (Fact.Set.to_string d.removed)

(* Structural schema equality, field by field (attribute comparison
   goes through Attr.compare, never polymorphic compare). *)
let column_equal (a, ta) (b, tb) = Attr.compare a b = 0 && ta = tb

let storage_equal a b =
  match (a, b) with
  | Schema.At_authority, Schema.At_authority -> true
  | ( Schema.Outsourced { host = h1; encrypted = e1 },
      Schema.Outsourced { host = h2; encrypted = e2 } ) ->
      String.equal h1 h2 && Attr.Set.equal e1 e2
  | Schema.At_authority, Schema.Outsourced _
  | Schema.Outsourced _, Schema.At_authority ->
      false

let schema_equal (a : Schema.t) (b : Schema.t) =
  String.equal a.Schema.name b.Schema.name
  && String.equal a.Schema.owner b.Schema.owner
  && List.length a.Schema.columns = List.length b.Schema.columns
  && List.for_all2 column_equal a.Schema.columns b.Schema.columns
  && storage_equal a.Schema.storage b.Schema.storage

let schemas_equal a b =
  let sort = List.sort (fun x y -> String.compare x.Schema.name y.Schema.name) in
  let a = sort a and b = sort b in
  List.length a = List.length b && List.for_all2 schema_equal a b

(* Subjects whose views the delta covers: the caller's, everyone named
   explicitly by either policy, and the implicit schema subjects. *)
let population subjects old_policy new_policy =
  let of_schemas p acc =
    List.fold_left
      (fun acc s ->
        let acc = Subject.Set.add (Subject.authority s.Schema.owner) acc in
        match s.Schema.storage with
        | Schema.At_authority -> acc
        | Schema.Outsourced { host; _ } ->
            Subject.Set.add (Subject.provider host) acc)
      acc (Authorization.schemas p)
  in
  let explicit =
    Subject.Set.union
      (Authorization.explicit_subjects old_policy)
      (Authorization.explicit_subjects new_policy)
  in
  List.fold_left
    (fun acc s -> Subject.Set.add s acc)
    (of_schemas new_policy (of_schemas old_policy explicit))
    subjects

let diff ?(subjects = []) ~old_policy ~new_policy () =
  if
    not
      (schemas_equal
         (Authorization.schemas old_policy)
         (Authorization.schemas new_policy))
  then `Incompatible
  else
    let pop = population subjects old_policy new_policy in
    let added, removed =
      Subject.Set.fold
        (fun s (added, removed) ->
          let before = Fact.of_view s (Authorization.view old_policy s) in
          let after = Fact.of_view s (Authorization.view new_policy s) in
          ( Fact.Set.union (Fact.Set.diff after before) added,
            Fact.Set.union (Fact.Set.diff before after) removed ))
        pop (Fact.Set.empty, Fact.Set.empty)
    in
    `Delta { added; removed }
