open Relalg

type t = {
  vp : Attr.Set.t;
  ve : Attr.Set.t;
  ip : Attr.Set.t;
  ie : Attr.Set.t;
  eq : Partition.t;
}

exception Not_executable of string

let fail fmt = Format.kasprintf (fun s -> raise (Not_executable s)) fmt

let of_base s =
  (* outsourced relations arrive with their at-rest-encrypted columns
     visible encrypted (Sec. 9 extension); authority-stored relations are
     fully plaintext *)
  let enc = Schema.stored_encrypted s in
  { vp = Attr.Set.diff (Schema.attrs s) enc;
    ve = enc;
    ip = Attr.Set.empty;
    ie = Attr.Set.empty;
    eq = Partition.empty }

let make ?(vp = []) ?(ve = []) ?(ip = []) ?(ie = []) ?(eq = []) () =
  { vp = Attr.Set.of_names vp;
    ve = Attr.Set.of_names ve;
    ip = Attr.Set.of_names ip;
    ie = Attr.Set.of_names ie;
    eq =
      List.fold_left
        (fun p names -> Partition.union_set p (Attr.Set.of_names names))
        Partition.empty eq }

let visible t = Attr.Set.union t.vp t.ve
let all_attrs t =
  List.fold_left Attr.Set.union
    (Attr.Set.union (Attr.Set.union t.vp t.ve) (Attr.Set.union t.ip t.ie))
    (Partition.sets t.eq)

let check_visible ~op t a =
  if not (Attr.Set.mem a (visible t)) then
    fail "%s: attribute %s is not visible in the operand" op (Attr.name a)

(* Uniform visibility precondition for evaluating 'a_i op a_j': both
   plaintext or both encrypted (Sec. 3.2). *)
let check_uniform ~op t a b =
  check_visible ~op t a;
  check_visible ~op t b;
  let both_plain = Attr.Set.mem a t.vp && Attr.Set.mem b t.vp in
  let both_enc = Attr.Set.mem a t.ve && Attr.Set.mem b t.ve in
  if not (both_plain || both_enc) then
    fail "%s: %s and %s are not uniformly visible (plaintext vs encrypted)"
      op (Attr.name a) (Attr.name b)

let project attrs t =
  { t with vp = Attr.Set.inter t.vp attrs; ve = Attr.Set.inter t.ve attrs }

(* One atom's contribution to a profile (used by both select and join). *)
let apply_atom ~op t atom =
  match atom with
  | Predicate.Cmp_const (a, _, _) | Predicate.In_list (a, _)
  | Predicate.Like (a, _) ->
      check_visible ~op t a;
      { t with
        ip = Attr.Set.union t.ip (Attr.Set.inter t.vp (Attr.Set.singleton a));
        ie = Attr.Set.union t.ie (Attr.Set.inter t.ve (Attr.Set.singleton a))
      }
  | Predicate.Cmp_attr (a, _, b) ->
      check_uniform ~op t a b;
      { t with eq = Partition.union_pair t.eq a b }

let select pred t =
  List.fold_left (apply_atom ~op:"select") t (Predicate.atoms pred)

let product l r =
  { vp = Attr.Set.union l.vp r.vp;
    ve = Attr.Set.union l.ve r.ve;
    ip = Attr.Set.union l.ip r.ip;
    ie = Attr.Set.union l.ie r.ie;
    eq = Partition.merge l.eq r.eq }

let join pred l r =
  List.fold_left (apply_atom ~op:"join") (product l r) (Predicate.atoms pred)

let group_by keys aggs t =
  let operands =
    List.fold_left
      (fun acc (agg : Aggregate.t) ->
        match Aggregate.operand agg with
        | Some a ->
            check_visible ~op:"group_by" t a;
            Attr.Set.add a acc
        | None -> acc)
      Attr.Set.empty aggs
  in
  Attr.Set.iter (fun a -> check_visible ~op:"group_by" t a) keys;
  let kept = Attr.Set.union keys operands in
  { vp = Attr.Set.inter t.vp kept;
    ve = Attr.Set.inter t.ve kept;
    ip = Attr.Set.union t.ip (Attr.Set.inter t.vp keys);
    ie = Attr.Set.union t.ie (Attr.Set.inter t.ve keys);
    eq = t.eq }

let udf inputs output t =
  Attr.Set.iter (fun a -> check_visible ~op:"udf" t a) inputs;
  let all_plain = Attr.Set.subset inputs t.vp in
  let all_enc = Attr.Set.subset inputs t.ve in
  if not (all_plain || all_enc) then
    fail "udf: inputs %s not uniformly visible" (Attr.Set.to_string inputs);
  let dropped = Attr.Set.remove output inputs in
  { t with
    vp = Attr.Set.diff t.vp dropped;
    ve = Attr.Set.diff t.ve dropped;
    eq = Partition.union_set t.eq inputs }

(* Ordering by A leaks value relations on A: treated like grouping
   (keys go implicit, in the form they are visible). Our extension of
   Fig. 2 for the Sort nodes of PostgreSQL plans. *)
let order_by keys t =
  let key_set = Attr.Set.of_list (List.map fst keys) in
  Attr.Set.iter (fun a -> check_visible ~op:"order_by" t a) key_set;
  { t with
    ip = Attr.Set.union t.ip (Attr.Set.inter t.vp key_set);
    ie = Attr.Set.union t.ie (Attr.Set.inter t.ve key_set) }

let encrypt attrs t =
  if not (Attr.Set.subset attrs t.vp) then
    fail "encrypt: attributes %s are not visible plaintext"
      (Attr.Set.to_string (Attr.Set.diff attrs t.vp));
  { t with vp = Attr.Set.diff t.vp attrs; ve = Attr.Set.union t.ve attrs }

let decrypt attrs t =
  if not (Attr.Set.subset attrs t.ve) then
    fail "decrypt: attributes %s are not visible encrypted"
      (Attr.Set.to_string (Attr.Set.diff attrs t.ve));
  { t with ve = Attr.Set.diff t.ve attrs; vp = Attr.Set.union t.vp attrs }

let of_node node children =
  match (node, children) with
  | Plan.Base s, [] -> of_base s
  | Plan.Project (attrs, _), [ c ] -> project attrs c
  | Plan.Select (pred, _), [ c ] -> select pred c
  | Plan.Product _, [ l; r ] -> product l r
  | Plan.Join (pred, _, _), [ l; r ] -> join pred l r
  | Plan.Group_by (keys, aggs, _), [ c ] -> group_by keys aggs c
  | Plan.Udf (_, inputs, output, _), [ c ] -> udf inputs output c
  | Plan.Order_by (keys, _), [ c ] -> order_by keys c
  | Plan.Limit (_, _), [ c ] -> c
  | Plan.Encrypt (attrs, _), [ c ] -> encrypt attrs c
  | Plan.Decrypt (attrs, _), [ c ] -> decrypt attrs c
  | _ -> invalid_arg "Profile.of_node: operator/children arity mismatch"

let rec of_plan plan =
  Plan.node plan
  |> fun node -> of_node node (List.map of_plan (Plan.children plan))

(* Logical (visibility-blind) analysis: every base relation is treated as
   plaintext regardless of its storage, so the structural content of the
   profile — implicit attributes, equivalence classes — is computable for
   plans whose physical visibility would not be executable as-is (e.g. a
   join of an outsourced, at-rest-encrypted column with a plaintext
   one before the optimizer has balanced the pair). *)
let of_node_logical node children =
  match node with
  | Plan.Base s ->
      { vp = Schema.attrs s;
        ve = Attr.Set.empty;
        ip = Attr.Set.empty;
        ie = Attr.Set.empty;
        eq = Partition.empty }
  | _ -> of_node node children

let rec of_plan_logical plan =
  of_node_logical (Plan.node plan)
    (List.map of_plan_logical (Plan.children plan))

let annotate_with of_node_fn plan =
  let table = Hashtbl.create 32 in
  let rec go plan =
    let children = List.map go (Plan.children plan) in
    let profile = of_node_fn (Plan.node plan) children in
    Hashtbl.replace table (Plan.id plan) profile;
    profile
  in
  ignore (go plan);
  table

let annotate plan = annotate_with of_node plan
let annotate_logical plan = annotate_with of_node_logical plan

let equal a b =
  Attr.Set.equal a.vp b.vp && Attr.Set.equal a.ve b.ve
  && Attr.Set.equal a.ip b.ip && Attr.Set.equal a.ie b.ie
  && Partition.equal a.eq b.eq

let to_string t =
  let part label plain enc =
    if Attr.Set.is_empty plain && Attr.Set.is_empty enc then None
    else
      Some
        (Printf.sprintf "%s:%s%s" label
           (Attr.Set.to_string plain)
           (if Attr.Set.is_empty enc then ""
            else Printf.sprintf "[%s]" (Attr.Set.to_string enc)))
  in
  let eq =
    if Partition.is_empty t.eq then None
    else Some (Printf.sprintf "≃:%s" (Partition.to_string t.eq))
  in
  String.concat " "
    (List.filter_map Fun.id [ part "v" t.vp t.ve; part "i" t.ip t.ie; eq ])

let pp fmt t = Format.pp_print_string fmt (to_string t)
