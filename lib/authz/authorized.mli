(** Authorization checks on relations and assignments (Defs. 4.1, 4.2). *)

open Relalg

(** Why a subject fails to be authorized for a relation. *)
type violation =
  | Plaintext_violation of Attr.Set.t
      (** condition 1: plaintext (visible or implicit) attributes outside
          the subject's [P] *)
  | Encrypted_violation of Attr.Set.t
      (** condition 2: encrypted attributes outside [P ∪ E] *)
  | Uniformity_violation of Attr.Set.t
      (** condition 3: an equivalence class neither fully in [P] nor
          fully in [E] *)

val check : Authorization.view -> Profile.t -> (unit, violation) result
(** Def. 4.1: is a subject with the given overall view authorized for a
    relation with the given profile? Returns the first violated
    condition. *)

val is_authorized : Authorization.view -> Profile.t -> bool

val is_authorized_assignee :
  Authorization.view -> operands:Profile.t list -> result:Profile.t -> bool
(** Def. 4.2: authorized for every operand and for the produced
    relation. *)

val pp_violation : Format.formatter -> violation -> unit
