open Relalg

(* Classes are kept disjoint, each with >= 2 members, sorted canonically
   for deterministic printing/equality. Plans touch tens of attributes, so
   a list of sets beats a union-find in clarity at no real cost. *)
type t = Attr.Set.t list

let empty = []
let is_empty t = t = []

let canonical sets =
  List.sort
    (fun a b -> Attr.Set.compare a b)
    (List.filter (fun s -> Attr.Set.cardinal s >= 2) sets)

let union_set t a =
  if Attr.Set.cardinal a < 2 then t
  else
    let intersecting, rest =
      List.partition (fun s -> not (Attr.Set.is_empty (Attr.Set.inter s a))) t
    in
    let merged = List.fold_left Attr.Set.union a intersecting in
    canonical (merged :: rest)

let union_pair t a b = union_set t (Attr.Set.of_list [ a; b ])
let merge t u = List.fold_left union_set t u
let sets t = t

let find t a =
  match List.find_opt (fun s -> Attr.Set.mem a s) t with
  | Some s -> s
  | None -> Attr.Set.singleton a

let same_class t a b = Attr.Set.mem b (find t a)
let attrs t = List.fold_left Attr.Set.union Attr.Set.empty t

let equal t u =
  List.length t = List.length u && List.for_all2 Attr.Set.equal t u

let refines t u =
  List.for_all
    (fun s ->
      List.exists (fun s' -> Attr.Set.subset s s') u
      || Attr.Set.cardinal s <= 1)
    t

let to_string t =
  String.concat " " (List.map Attr.Set.to_string t)

let pp fmt t = Format.pp_print_string fmt (to_string t)
