(** Minimally extended authorized query plans (Def. 5.4, Fig. 7).

    Given a plan and an assignment of operations to candidates, inject
    on-the-fly decryption (before an operation, for attributes it must
    read in plaintext) and encryption (after an operation, for attributes
    its parent's assignee may only see encrypted, or that the parent
    turns implicit while some later assignee lacks plaintext visibility).
    Thm. 5.3: the result makes the assignment authorized and encrypts a
    minimal attribute set.

    Encryption/decryption operations are assigned to the subject of the
    node they complement; encryption over a source-side node is performed
    by the data authority itself (cf. Fig. 8, where H encrypts S). *)

open Relalg

type t = {
  plan : Plan.t;  (** the extended plan, with [Encrypt]/[Decrypt] nodes *)
  assignment : Subject.t Imap.t;
      (** executor of every node of the extended plan (leaves and
          source-side nodes map to the owning authority) *)
  profiles : (int, Profile.t) Hashtbl.t;
      (** output profile of every extended-plan node *)
}

val extend :
  policy:Authorization.t ->
  config:Opreq.config ->
  assignment:Subject.t Imap.t ->
  ?deliver_to:Subject.t ->
  Plan.t ->
  t
(** [extend ~policy ~config ~assignment plan] builds the minimally
    extended plan for [assignment] (keyed by original node ids, covering
    every assignable node — see {!Candidates.is_source_side}).

    [deliver_to] appends a final decryption of the root's encrypted
    visible attributes, executed by the given subject (normally the
    querying user, who must be authorized for the plaintext result). *)

val verify : policy:Authorization.t -> t -> (unit, string) result
(** Def. 4.2 re-checked on the extended plan: every node's executor is
    authorized for its operands and its result (Thm. 5.3(i)). *)

val encrypted_attrs : t -> Attr.Set.t
(** Attributes involved in encryption operations ([Ak] of Def. 6.1);
    used by {!Plan_keys} and by the minimality tests of Thm. 5.3(ii). *)

val to_ascii : t -> string
(** Rendering with per-node executor and profile annotations. *)
