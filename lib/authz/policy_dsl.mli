(** Textual format for schemas, subjects and authorizations.

    A small line-oriented DSL so policies can live in files and feed the
    CLI. Lines ([#] starts a comment):

    {v
    relation Hosp owner H (S string, B date, D string, T string)
    relation Rx owner H hosted W enc a,b (a int, b int, c string)
    relation Ins owner I (C string, P int)
    user U
    authority H
    provider X
    authorize Hosp to H plain S,B,D,T
    authorize Hosp to X plain D,T enc S
    authorize Ins to any enc P
    v}

    Column types: [int], [float], [string], [date], [bool]. Authorities
    named as relation owners are declared implicitly, as are the storage
    views of [hosted] (outsourced) relations; [hosted ... enc] lists the
    columns kept encrypted at the host (Sec. 9 extension). *)

open Relalg

type t = {
  schemas : Schema.t list;
  subjects : Subject.t list;
  policy : Authorization.t;
}

exception Syntax_error of int * string  (** line number, message *)

val parse : string -> t
val load : string -> t
(** [load path] parses a file. *)

val example : string
(** The running example's policy, in DSL form. *)
