(** Disjoint sets of equivalent attributes (the [R≃] profile component).

    Def. 3.1 represents the closure of the equivalence relation induced
    by comparisons in a relation's computation as a family of disjoint
    attribute sets. [union_set p A] implements the paper's [R≃ ∪ A]
    notation: insert [A], merging every existing set intersecting it. *)

open Relalg

type t

val empty : t

val is_empty : t -> bool

val union_set : t -> Attr.Set.t -> t
(** [union_set p a] adds the equivalence class [a], merging intersecting
    classes. Singleton or empty [a] leaves [p] unchanged (an attribute is
    trivially equivalent to itself). *)

val union_pair : t -> Attr.t -> Attr.t -> t

val merge : t -> t -> t
(** [merge p q] is the paper's [R≃_l ∪ R≃_r]: insert all classes of [q]
    into [p]. *)

val sets : t -> Attr.Set.t list
(** The equivalence classes, each with at least two members, in a
    canonical order. *)

val find : t -> Attr.t -> Attr.Set.t
(** The class of an attribute; a singleton when unconstrained. *)

val same_class : t -> Attr.t -> Attr.t -> bool

val attrs : t -> Attr.Set.t
(** Union of all classes. *)

val equal : t -> t -> bool

val refines : t -> t -> bool
(** [refines p q]: every class of [p] is contained in some class of [q]
    (Thm. 3.1(ii): classes only grow going up the plan). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
