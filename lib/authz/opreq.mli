(** Operation requirements: which attributes an operator needs in
    plaintext (the per-node set [Ap] of Sec. 5).

    "For operations that are not supported by cryptographic techniques
    (not existing or not available to the application), we assume the
    optimizer to specify the need for maintaining data in plaintext."
    The configuration says which computation classes the deployment can
    run over ciphertext (equality via deterministic encryption, order via
    OPE, addition via Paillier); whatever falls outside lands in [Ap].
    [forced_plaintext] carries per-node overrides — both user-specified
    ones and those added by scheme-conflict resolution. *)

open Relalg

type config = {
  equality_over_cipher : bool;
  order_over_cipher : bool;
  addition_over_cipher : bool;
  enc_capable_udfs : string list;
      (** udf names evaluable over encrypted inputs *)
  forced_plaintext : Attr.Set.t Imap.t;  (** extra [Ap] per node id *)
}

val default : config
(** Everything the paper's tool supports: equality (det), order (OPE),
    addition (Paillier); udfs need plaintext. *)

val strict : config
(** No computation over ciphertext at all (every operator needs its
    operands in plaintext) — useful as a baseline. *)

val force_plaintext : config -> int -> Attr.Set.t -> config
(** Add a per-node plaintext requirement. *)

val plaintext_attrs : config -> Plan.t -> Attr.Set.t
(** [Ap] for the given node: attributes of its operands it must read in
    plaintext. Empty for leaves, projections, products, crypto ops. *)

val capability_demands : Plan.t -> (Attr.t * Mpq_crypto.Scheme.capability) list
(** Computation classes each attribute is subjected to at this node
    (independent of the config): used for scheme selection and conflict
    resolution. *)

val resolve_conflicts : config -> Plan.t -> config
(** Iteratively extend [forced_plaintext] until, for every attribute, the
    set of capabilities demanded at nodes where it would be processed
    encrypted is satisfiable by a single scheme (a ciphertext cannot be
    simultaneously, say, additively homomorphic and order-preserving).
    On conflict the node closest to the root loses and gets the
    attribute in plaintext — late decryption never poisons profiles below
    it, while early plaintext would leave an implicit plaintext trace on
    everything above (Sec. 5's max-visibility pitfall). *)

val scheme_of_attr :
  config -> Plan.t -> Attr.t -> Mpq_crypto.Scheme.t
(** The paper's rule (Sec. 6): strongest scheme supporting every
    operation executed over the attribute's ciphertext ([Rnd] when no
    such operation exists). Call after {!resolve_conflicts}. *)
