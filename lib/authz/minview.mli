(** Minimum required views (Def. 5.2).

    The minimum required view over an operand for the execution of an
    operation is the operand with every visible attribute encrypted,
    except those the operation must read in plaintext ([Ap]):
    [decrypt(Ap, encrypt(R_vp \ Ap, R))]. Candidates are exactly the
    subjects authorized for these views (Def. 5.3, Thm. 5.2). *)

open Relalg

val of_profile : ap:Attr.Set.t -> Profile.t -> Profile.t
(** Profile of the minimum required view over an operand with the given
    profile. Plaintext attributes outside [ap] get encrypted; encrypted
    attributes inside [ap] get decrypted. *)

val annotate_min : config:Opreq.config -> Plan.t -> (int, Profile.t) Hashtbl.t
(** Node id → profile of the node's output {e assuming every operand is
    its minimum required view} (the profiles shown attached to nodes in
    Fig. 6). The table also contains, under the negated id [-(child id)],
    the min-view profile of each operand (the dotted boxes of Fig. 6). *)
