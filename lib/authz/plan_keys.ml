open Relalg
module Scheme = Mpq_crypto.Scheme

type cluster = {
  id : string;
  attrs : Attr.Set.t;
  scheme : Scheme.t;
  holders : Subject.Set.t;
}

let crypto_attrs plan =
  Plan.fold
    (fun acc n ->
      match Plan.node n with
      | Plan.Encrypt (attrs, _) | Plan.Decrypt (attrs, _) ->
          Attr.Set.union acc attrs
      | Plan.Base s ->
          (* outsourced relations are encrypted at rest: their keys are
             part of the query's key establishment too *)
          Attr.Set.union acc (Schema.stored_encrypted s)
      | _ -> acc)
    Attr.Set.empty plan

(* Capability demands evaluated on the extended plan: an operator demands
   a capability over an attribute only when the attribute is visible
   encrypted in its operand there. *)
let actual_demands (ext : Extend.t) =
  let profile_of n = Hashtbl.find ext.Extend.profiles (Plan.id n) in
  List.concat_map
    (fun n ->
      let operand_ve =
        List.fold_left
          (fun acc c -> Attr.Set.union acc (profile_of c).Profile.ve)
          Attr.Set.empty (Plan.children n)
      in
      List.filter_map
        (fun (a, cap) ->
          if Attr.Set.mem a operand_ve then Some (a, cap) else None)
        (Opreq.capability_demands n))
    (Plan.nodes ext.Extend.plan)

let actual_schemes ~original (ext : Extend.t) =
  let root_eq = (Profile.of_plan_logical original).Profile.eq in
  let demands = actual_demands ext in
  fun a ->
    let cls = Partition.find root_eq a in
    let caps =
      List.filter_map
        (fun (b, cap) -> if Attr.Set.mem b cls then Some cap else None)
        demands
      |> List.sort_uniq Stdlib.compare
    in
    match Scheme.strongest_supporting caps with
    | Some s -> s
    | None ->
        (* cannot happen after Opreq.resolve_conflicts: conservative
           demands are a superset of actual ones *)
        invalid_arg
          (Printf.sprintf "Plan_keys.actual_schemes %s: capability conflict"
             (Attr.name a))

let compute ~config ~original (ext : Extend.t) =
  ignore config;
  let ak = crypto_attrs ext.Extend.plan in
  let root_eq =
    (Hashtbl.find ext.Extend.profiles (Plan.id ext.Extend.plan)).Profile.eq
  in
  (* Def. 6.1: cluster Ak by the root's equivalence sets; leftovers are
     singletons. *)
  let from_classes =
    List.filter_map
      (fun cls ->
        let inter = Attr.Set.inter ak cls in
        if Attr.Set.is_empty inter then None else Some inter)
      (Partition.sets root_eq)
  in
  let clustered =
    List.fold_left Attr.Set.union Attr.Set.empty from_classes
  in
  let singletons =
    Attr.Set.fold
      (fun a acc -> Attr.Set.singleton a :: acc)
      (Attr.Set.diff ak clustered) []
  in
  let holders_of attrs =
    Plan.fold
      (fun acc n ->
        match Plan.node n with
        | Plan.Encrypt (s, _) | Plan.Decrypt (s, _)
          when not (Attr.Set.is_empty (Attr.Set.inter s attrs)) -> (
            match Imap.find_opt (Plan.id n) ext.Extend.assignment with
            | Some subject -> Subject.Set.add subject acc
            | None -> acc)
        | Plan.Base sch
          when not
                 (Attr.Set.is_empty
                    (Attr.Set.inter (Schema.stored_encrypted sch) attrs)) ->
            (* the authority provisioned the at-rest encryption *)
            Subject.Set.add (Subject.authority sch.Schema.owner) acc
        | _ -> acc)
      Subject.Set.empty ext.Extend.plan
  in
  let scheme_of = actual_schemes ~original ext in
  List.map
    (fun attrs ->
      (* all attrs of a cluster share capability demands (they are
         compared together), so any representative works *)
      { id = Attr.Set.to_string attrs;
        attrs;
        scheme = scheme_of (Attr.Set.min_elt attrs);
        holders = holders_of attrs })
    (from_classes @ List.rev singletons)
  |> List.sort (fun a b -> String.compare a.id b.id)

let cluster_of_attr clusters a =
  List.find_opt (fun c -> Attr.Set.mem a c.attrs) clusters

let keys_for clusters s =
  List.filter (fun c -> Subject.Set.mem s c.holders) clusters

let pp_cluster fmt c =
  Format.fprintf fmt "k%s (%a) -> {%s}" c.id Scheme.pp c.scheme
    (String.concat ","
       (List.map Subject.name (Subject.Set.elements c.holders)))
