open Relalg

type grantee = To of Subject.t | Any

type rule = {
  relation : string;
  grantee : grantee;
  plain : Attr.Set.t;
  enc : Attr.Set.t;
}

type view = { plain : Attr.Set.t; enc : Attr.Set.t }
type t = { schemas : Schema.t list; rules : rule list }

let rule ~rel ?(plain = []) ?(enc = []) grantee =
  let plain = Attr.Set.of_names plain and enc = Attr.Set.of_names enc in
  if not (Attr.Set.is_empty (Attr.Set.inter plain enc)) then
    invalid_arg
      (Printf.sprintf "Authorization.rule %s: P and E intersect on %s" rel
         (Attr.Set.to_string (Attr.Set.inter plain enc)));
  { relation = rel; grantee; plain; enc }

let grantee_equal a b =
  match (a, b) with
  | Any, Any -> true
  | To s, To s' -> Subject.equal s s'
  | _ -> false

let validate schemas rules =
  List.iter
    (fun r ->
      match List.find_opt (fun s -> s.Schema.name = r.relation) schemas with
      | None ->
          invalid_arg
            (Printf.sprintf "Authorization.make: unknown relation %s"
               r.relation)
      | Some s ->
          let unknown =
            Attr.Set.diff (Attr.Set.union r.plain r.enc) (Schema.attrs s)
          in
          if not (Attr.Set.is_empty unknown) then
            invalid_arg
              (Printf.sprintf
                 "Authorization.make: rule on %s mentions foreign attributes %s"
                 r.relation
                 (Attr.Set.to_string unknown)))
    rules;
  let rec check_dup = function
    | [] -> ()
    | r :: rest ->
        if
          List.exists
            (fun r' ->
              r'.relation = r.relation && grantee_equal r'.grantee r.grantee)
            rest
        then
          invalid_arg
            (Printf.sprintf
               "Authorization.make: duplicate rule for relation %s" r.relation)
        else check_dup rest
  in
  check_dup rules

let make ~schemas rules =
  validate schemas rules;
  (* Implicit: each authority sees its own relation in plaintext, and an
     outsourcing host sees what it physically stores (plaintext columns
     plaintext, at-rest-encrypted columns encrypted). *)
  let unless_explicit s grantee rule =
    if
      List.exists
        (fun r -> r.relation = s.Schema.name && grantee_equal r.grantee grantee)
        rules
    then None
    else Some rule
  in
  let implicit =
    List.concat_map
      (fun s ->
        let owner = Subject.authority s.Schema.owner in
        let owner_rule =
          unless_explicit s (To owner)
            { relation = s.Schema.name;
              grantee = To owner;
              plain = Schema.attrs s;
              enc = Attr.Set.empty }
        in
        let host_rule =
          match s.Schema.storage with
          | Schema.At_authority -> None
          | Schema.Outsourced { host; encrypted } ->
              let host = Subject.provider host in
              unless_explicit s (To host)
                { relation = s.Schema.name;
                  grantee = To host;
                  plain = Attr.Set.diff (Schema.attrs s) encrypted;
                  enc = encrypted }
        in
        List.filter_map Fun.id [ owner_rule; host_rule ])
      schemas
  in
  { schemas; rules = rules @ implicit }

let schemas t = t.schemas
let rules t = t.rules

let empty_view = { plain = Attr.Set.empty; enc = Attr.Set.empty }

let relation_view t rel s =
  let for_grantee g =
    List.find_opt
      (fun r -> r.relation = rel && grantee_equal r.grantee g)
      t.rules
  in
  match for_grantee (To s) with
  | Some r -> { plain = r.plain; enc = r.enc }
  | None -> (
      match for_grantee Any with
      | Some r -> { plain = r.plain; enc = r.enc }
      | None -> empty_view)

let view t s =
  List.fold_left
    (fun acc sch ->
      let v = relation_view t sch.Schema.name s in
      { plain = Attr.Set.union acc.plain v.plain;
        enc = Attr.Set.union acc.enc v.enc })
    empty_view t.schemas

let explicit_subjects t =
  List.fold_left
    (fun acc r ->
      match r.grantee with To s -> Subject.Set.add s acc | Any -> acc)
    Subject.Set.empty t.rules

let pp_rule fmt (r : rule) =
  Format.fprintf fmt "[%s,%s]->%s on %s"
    (Attr.Set.to_string r.plain)
    (Attr.Set.to_string r.enc)
    (match r.grantee with To s -> Subject.name s | Any -> "any")
    r.relation

let pp_view fmt v =
  Format.fprintf fmt "P=%s E=%s"
    (Attr.Set.to_string v.plain)
    (Attr.Set.to_string v.enc)

let pp fmt t =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_newline fmt ())
    pp_rule fmt t.rules
