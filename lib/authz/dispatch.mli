(** Sub-query dispatch (Sec. 6, Fig. 8).

    The extended plan is partitioned into maximal single-executor
    fragments. Each fragment becomes a request carrying: the algebra
    expression to evaluate (with [⟦req_...⟧] references to the fragments
    it pulls data from), and the identifiers of the key clusters the
    executor needs for its encryption/decryption operations. Sealing
    requests into signed/encrypted envelopes is the transport's job
    (see [distsim]). *)


type request = {
  name : string;  (** e.g. ["req_X"]; disambiguated when a subject
                      executes several disconnected fragments *)
  subject : Subject.t;
  root_id : int;  (** extended-plan node id of the fragment's root *)
  expression : string;  (** algebra text of the fragment *)
  key_clusters : string list;  (** cluster ids whose keys to include *)
  calls : string list;  (** names of the requests it pulls from *)
}

val requests : Extend.t -> Plan_keys.cluster list -> request list
(** Fragments in dependency order (callees before callers); the last
    request is the top fragment, to be invoked by the user. *)

val fragment_roots : Extend.t -> (int * Subject.t) list
(** Roots of the single-executor fragments with their executors. *)

val pp_request : Format.formatter -> request -> unit
