(** Subjects: users, data authorities, and cloud providers (Sec. 2).

    The paper expects users to hold plaintext-only authorizations (they
    must read query answers), data authorities to hold plaintext
    authorizations on their own relations, and providers to typically
    hold encrypted visibility. Roles carry no semantics in the model
    itself but drive the cost model (Sec. 7: user = 10x, authority = 3x a
    provider's CPU price). *)

type role = User | Authority | Provider

type t = { role : role; name : string }

val user : string -> t
val authority : string -> t
val provider : string -> t

val name : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Set : Stdlib.Set.S with type elt = t
module Map : Stdlib.Map.S with type key = t

val pp_set : Format.formatter -> Set.t -> unit
