(** Query-plan keys (Def. 6.1).

    Attributes involved in encryption operations are clustered by the
    equivalence sets of the root's profile — compared attributes must
    share a key or the comparison (e.g. a deterministic-encryption
    equi-join) could not run — and one key is established per cluster.
    A cluster's key goes only to the subjects performing encryption or
    decryption operations over its attributes, which are authorized for
    the plaintext by construction. *)

open Relalg

type cluster = {
  id : string;  (** canonical name, e.g. ["SC"]; also the key identifier *)
  attrs : Attr.Set.t;
  scheme : Mpq_crypto.Scheme.t;
      (** strongest scheme supporting the operations run over the
          cluster's ciphertexts (Sec. 6) *)
  holders : Subject.Set.t;
      (** subjects that receive the key: assignees of encryption or
          decryption operations touching the cluster *)
}

val actual_schemes : original:Plan.t -> Extend.t -> Attr.t -> Mpq_crypto.Scheme.t
(** The paper's scheme-selection rule applied to the {e final} extended
    plan: an operation contributes a capability demand for an attribute
    only when it actually reads that attribute encrypted there; each key
    cluster (equivalence classes of the root profile) gets the strongest
    scheme supporting its demands, and [Rnd] when nothing computes on its
    ciphertexts. *)

val compute :
  config:Opreq.config -> original:Plan.t -> Extend.t -> cluster list
(** Clusters for a minimally extended plan, with {!actual_schemes}.
    [original] is the plan the extension was built from. *)

val cluster_of_attr : cluster list -> Attr.t -> cluster option

val keys_for : cluster list -> Subject.t -> cluster list
(** Clusters whose key the subject must receive. *)

val pp_cluster : Format.formatter -> cluster -> unit
