(** Assignment candidates (Def. 5.3, Fig. 6).

    A subject is a candidate for a node iff it is an authorized assignee
    over the node's minimum required views — i.e. it could execute the
    node if encryption were injected (Thm. 5.2 proves candidacy is both
    sound and complete in that sense). Computed with a post-order visit
    as in Sec. 6, step 1. *)

open Relalg

type t = Subject.Set.t Imap.t
(** Node id → candidate set, for every assignable node. *)

val is_source_side : Plan.t -> bool
(** Leaves stay with their data authority: a node is source-side when it
    is a base relation or a projection/encryption chain directly over
    one (the paper draws pushed-down projections inside leaf boxes).
    Source-side nodes get no candidate set. *)

val owner_of_source : Plan.t -> Subject.t
(** The authority owning the base relation under a source-side node. *)

val compute :
  policy:Authorization.t ->
  subjects:Subject.t list ->
  config:Opreq.config ->
  Plan.t ->
  t
(** Candidate sets for every assignable (non-source-side) node. *)

val candidates_of : t -> Plan.t -> Subject.Set.t
(** Lookup; empty set when the node is not assignable. *)

val explain :
  policy:Authorization.t ->
  subjects:Subject.t list ->
  config:Opreq.config ->
  Plan.t ->
  Plan.t ->
  (Subject.t * Authorized.violation option) list
(** [explain ~policy ~subjects ~config plan node]: for each subject, why
    it is not a candidate for [node] ([None] = it is one). The violation
    reported is the first failing condition of Def. 4.1 against the
    node's minimum-required-view operands or result. *)

val valid_assignment : t -> Subject.t Imap.t -> bool
(** Does the assignment pick every node's subject from its candidates
    and cover all assignable nodes? *)
