open Relalg

let of_profile ~ap (p : Profile.t) =
  let to_encrypt = Attr.Set.diff p.Profile.vp ap in
  let after_enc = Profile.encrypt to_encrypt p in
  let to_decrypt = Attr.Set.inter ap after_enc.Profile.ve in
  Profile.decrypt to_decrypt after_enc

let annotate_min ~config plan =
  let table = Hashtbl.create 32 in
  let rec go node =
    let children = Plan.children node in
    let child_profiles = List.map go children in
    let ap = Opreq.plaintext_attrs config node in
    let operand_views =
      List.map2
        (fun child p ->
          let visible_ap = Attr.Set.inter ap (Profile.visible p) in
          let v = of_profile ~ap:visible_ap p in
          Hashtbl.replace table (-Plan.id child) v;
          v)
        children child_profiles
    in
    let result = Profile.of_node (Plan.node node) operand_views in
    Hashtbl.replace table (Plan.id node) result;
    result
  in
  ignore (go plan);
  table
