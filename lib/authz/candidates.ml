open Relalg

type t = Subject.Set.t Imap.t

let rec is_source_side plan =
  match Plan.node plan with
  | Plan.Base _ -> true
  | Plan.Project (_, c) | Plan.Encrypt (_, c) -> is_source_side c
  | _ -> false

let rec owner_of_source plan =
  match Plan.node plan with
  | Plan.Base s -> (
      match s.Schema.storage with
      | Schema.At_authority -> Subject.authority s.Schema.owner
      | Schema.Outsourced { host; _ } -> Subject.provider host)
  | Plan.Project (_, c) | Plan.Encrypt (_, c) -> owner_of_source c
  | _ -> invalid_arg "Candidates.owner_of_source: not a source-side node"

let compute ~policy ~subjects ~config plan =
  let table = Minview.annotate_min ~config plan in
  let views =
    List.map (fun s -> (s, Authorization.view policy s)) subjects
  in
  let profile_of id =
    match Hashtbl.find_opt table id with
    | Some p -> p
    | None -> invalid_arg "Candidates.compute: missing profile"
  in
  List.fold_left
    (fun acc node ->
      if is_source_side node then acc
      else
        let operands =
          List.map (fun c -> profile_of (-Plan.id c)) (Plan.children node)
        in
        let result = profile_of (Plan.id node) in
        let cands =
          List.filter_map
            (fun (s, view) ->
              if Authorized.is_authorized_assignee view ~operands ~result
              then Some s
              else None)
            views
        in
        Imap.add (Plan.id node) (Subject.Set.of_list cands) acc)
    Imap.empty (Plan.nodes plan)

let candidates_of t node =
  match Imap.find_opt (Plan.id node) t with
  | Some s -> s
  | None -> Subject.Set.empty

let explain ~policy ~subjects ~config plan node =
  let table = Minview.annotate_min ~config plan in
  let operands =
    List.map (fun c -> Hashtbl.find table (-Plan.id c)) (Plan.children node)
  in
  let result = Hashtbl.find table (Plan.id node) in
  List.map
    (fun s ->
      let view = Authorization.view policy s in
      let verdict =
        List.fold_left
          (fun acc p ->
            match acc with
            | Some _ -> acc
            | None -> (
                match Authorized.check view p with
                | Ok () -> None
                | Error v -> Some v))
          None (operands @ [ result ])
      in
      (s, verdict))
    subjects

let valid_assignment t assignment =
  Imap.for_all
    (fun id cands ->
      match Imap.find_opt id assignment with
      | Some s -> Subject.Set.mem s cands
      | None -> false)
    t
