type role = User | Authority | Provider
type t = { role : role; name : string }

let user name = { role = User; name }
let authority name = { role = Authority; name }
let provider name = { role = Provider; name }

let name t = t.name

let role_rank = function User -> 0 | Authority -> 1 | Provider -> 2

let compare a b =
  match Stdlib.compare (role_rank a.role) (role_rank b.role) with
  | 0 -> String.compare a.name b.name
  | c -> c

let equal a b = compare a b = 0
let pp fmt t = Format.pp_print_string fmt t.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Stdlib.Set.Make (Ord)
module Map = Stdlib.Map.Make (Ord)

let pp_set fmt s =
  Format.pp_print_string fmt
    (String.concat "" (List.map name (Set.elements s)))
