open Relalg

type t = {
  schemas : Schema.t list;
  subjects : Subject.t list;
  policy : Authorization.t;
}

exception Syntax_error of int * string

let fail line fmt =
  Format.kasprintf (fun s -> raise (Syntax_error (line, s))) fmt

let column_type line = function
  | "int" -> Schema.Tint
  | "float" -> Schema.Tfloat
  | "string" -> Schema.Tstring
  | "date" -> Schema.Tdate
  | "bool" -> Schema.Tbool
  | ty -> fail line "unknown column type %s" ty

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let split_commas s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun w -> w <> "")

(* "relation NAME owner O (col ty, col ty, ...)" *)
let parse_relation lineno rest =
  match String.index_opt rest '(' with
  | None -> fail lineno "relation declaration needs a column list"
  | Some i ->
      let head = split_words (String.sub rest 0 i) in
      let tail = String.sub rest i (String.length rest - i) in
      let name, owner, storage =
        match head with
        | [ name; "owner"; owner ] -> (name, owner, Schema.At_authority)
        | [ name; "owner"; owner; "hosted"; host ] ->
            (name, owner, Schema.outsourced ~host ~encrypted:[])
        | [ name; "owner"; owner; "hosted"; host; "enc"; cols ] ->
            (name, owner,
             Schema.outsourced ~host ~encrypted:(split_commas cols))
        | _ ->
            fail lineno
              "expected: relation NAME owner O [hosted S [enc a,b]] (...)"
      in
      if tail.[String.length tail - 1] <> ')' then
        fail lineno "unterminated column list";
      let body = String.sub tail 1 (String.length tail - 2) in
      let columns =
        List.map
          (fun col ->
            match split_words col with
            | [ cname; ty ] -> (cname, column_type lineno ty)
            | _ -> fail lineno "expected 'column type' in %s" col)
          (split_commas body)
      in
      Schema.make ~name ~owner ~storage columns

(* "authorize REL to SUBJ [plain a,b] [enc c,d]" *)
let parse_authorize lineno rest subjects =
  let words = split_words rest in
  let rel, grantee, attrs_rest =
    match words with
    | rel :: "to" :: grantee :: rest -> (rel, grantee, rest)
    | _ -> fail lineno "expected: authorize REL to SUBJECT ..."
  in
  let rec sections plain enc = function
    | [] -> (plain, enc)
    | "plain" :: v :: rest -> sections (split_commas v) enc rest
    | "enc" :: v :: rest -> sections plain (split_commas v) rest
    | w :: _ -> fail lineno "unexpected token %s" w
  in
  let plain, enc = sections [] [] attrs_rest in
  let grantee =
    if grantee = "any" then Authorization.Any
    else
      match
        List.find_opt (fun s -> Subject.name s = grantee) subjects
      with
      | Some s -> Authorization.To s
      | None -> fail lineno "unknown subject %s (declare it first)" grantee
  in
  Authorization.rule ~rel ~plain ~enc grantee

let parse input =
  let lines = String.split_on_char '\n' input in
  let schemas = ref [] and subjects = ref [] and rules = ref [] in
  let add_subject s =
    if not (List.exists (Subject.equal s) !subjects) then
      subjects := s :: !subjects
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      let line = String.trim line in
      if line <> "" then
        match split_words line with
        | "relation" :: _ ->
            let rest = String.sub line 9 (String.length line - 9) in
            let s = parse_relation lineno (String.trim rest) in
            schemas := s :: !schemas;
            add_subject (Subject.authority s.Schema.owner);
            (match s.Schema.storage with
            | Schema.At_authority -> ()
            | Schema.Outsourced { host; _ } ->
                add_subject (Subject.provider host))
        | [ "user"; name ] -> add_subject (Subject.user name)
        | [ "authority"; name ] -> add_subject (Subject.authority name)
        | [ "provider"; name ] -> add_subject (Subject.provider name)
        | "authorize" :: _ ->
            let rest = String.sub line 10 (String.length line - 10) in
            rules := (lineno, String.trim rest) :: !rules
        | w :: _ -> fail lineno "unknown directive %s" w
        | [] -> ())
    lines;
  let subjects = List.rev !subjects in
  let rules =
    List.rev_map
      (fun (lineno, rest) -> parse_authorize lineno rest subjects)
      !rules
  in
  let schemas = List.rev !schemas in
  { schemas; subjects; policy = Authorization.make ~schemas rules }

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse s

let example =
  {|# The paper's running example (Fig. 1(b))
relation Hosp owner H (S string, B date, D string, T string)
relation Ins owner I (C string, P int)
user U
provider X
provider Y
provider Z
authorize Hosp to H plain S,B,D,T
authorize Ins to H plain C enc P
authorize Hosp to I plain B enc S,D,T
authorize Ins to I plain C,P
authorize Hosp to U plain S,D,T
authorize Ins to U plain C,P
authorize Hosp to X plain D,T enc S
authorize Ins to X enc C,P
authorize Hosp to Y plain B,D,T enc S
authorize Ins to Y plain P enc C
authorize Hosp to Z plain S,T enc D
authorize Ins to Z plain C enc P
authorize Hosp to any plain D,T
authorize Ins to any enc P
|}
