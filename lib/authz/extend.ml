open Relalg

type t = {
  plan : Plan.t;
  assignment : Subject.t Imap.t;
  profiles : (int, Profile.t) Hashtbl.t;
}

let implicit_attrs (p : Profile.t) = Attr.Set.union p.Profile.ip p.Profile.ie

(* Rebuild an operator node over freshly built children. *)
let rebuild node children =
  match (node, children) with
  | Plan.Base s, [] -> Plan.base s
  | Plan.Project (a, _), [ c ] -> Plan.project a c
  | Plan.Select (p, _), [ c ] -> Plan.select p c
  | Plan.Product _, [ l; r ] -> Plan.product l r
  | Plan.Join (p, _, _), [ l; r ] -> Plan.join p l r
  | Plan.Group_by (k, ag, _), [ c ] -> Plan.group_by k ag c
  | Plan.Udf (n, i, o, _), [ c ] -> Plan.udf n i o c
  | Plan.Order_by (k, _), [ c ] -> Plan.order_by k c
  | Plan.Limit (n, _), [ c ] -> Plan.limit n c
  | Plan.Encrypt (a, _), [ c ] -> Plan.encrypt a c
  | Plan.Decrypt (a, _), [ c ] -> Plan.decrypt a c
  | _ -> invalid_arg "Extend.rebuild: arity mismatch"

let extend ~policy ~config ~assignment ?deliver_to plan =
  let orig_profiles = Profile.annotate_logical plan in
  let profiles = Hashtbl.create 64 in
  let executors = ref Imap.empty in
  let view_cache = Hashtbl.create 8 in
  let view_of s =
    match Hashtbl.find_opt view_cache (Subject.name s) with
    | Some v -> v
    | None ->
        let v = Authorization.view policy s in
        Hashtbl.add view_cache (Subject.name s) v;
        v
  in
  let executor n =
    match Imap.find_opt (Plan.id n) assignment with
    | Some s -> s
    | None ->
        if Candidates.is_source_side n then Candidates.owner_of_source n
        else
          invalid_arg
            (Printf.sprintf "Extend.extend: node %d (%s) has no assignee"
               (Plan.id n) (Plan.operator_name n))
  in
  let record node profile subject =
    Hashtbl.replace profiles (Plan.id node) profile;
    executors := Imap.add (Plan.id node) subject !executors
  in
  (* Attribute groups a node compares, which must be uniformly visible in
     its (possibly pre-encrypted) operands: predicate pairs and udf input
     sets. *)
  let uniformity_groups n =
    match Plan.node n with
    | Plan.Select (pred, _) | Plan.Join (pred, _, _) ->
        List.map
          (fun (x, y) -> Attr.Set.of_list [ x; y ])
          (Predicate.attr_pairs pred)
    | Plan.Udf (_, inputs, _, _) -> [ inputs ]
    | _ -> []
  in
  let rec build n ancestors =
    let ap = Opreq.plaintext_attrs config n in
    let subject = executor n in
    let built =
      List.map (fun c -> build c ((n, subject) :: ancestors)) (Plan.children n)
    in
    (* (i) decrypt operand attributes the operation needs in plaintext.
       Aggregate operands the assignee may read in plaintext are also
       decrypted: cheap symmetric decryption beats homomorphic
       re-encryption, aggregation operands leave no implicit trace, and
       the assignee is authorized (scheme economics the paper delegates
       to the optimizer, Sec. 6). *)
    let agg_plain =
      match Plan.node n with
      | Plan.Group_by (keys, aggs, _) ->
          let operands =
            List.fold_left
              (fun acc (agg : Aggregate.t) ->
                match Aggregate.operand agg with
                | Some a -> Attr.Set.add a acc
                | None -> acc)
              Attr.Set.empty aggs
          in
          Attr.Set.inter
            (Attr.Set.diff operands keys)
            (view_of subject).Authorization.plain
      | _ -> Attr.Set.empty
    in
    let ap = Attr.Set.union ap agg_plain in
    let after_ap =
      List.map
        (fun (_, pc) -> Attr.Set.inter ap pc.Profile.ve)
        built
    in
    (* Restore uniform visibility for compared groups that a descendant's
       protective encryption split (one side of 'a op b' encrypted by
       Def. 5.4's terms, the other still plaintext). Two repairs exist:
       decrypting the encrypted side — minimal, but it reopens the very
       trace the encryption protected when some later executor lacks
       plaintext visibility — or encrypting the plaintext side under the
       shared cluster key. We decrypt when the node's executor holds
       plaintext rights and no executor from here up needs the attribute
       hidden; otherwise we encrypt the plaintext side (executed by the
       operand's producer, which sees it plaintext). Overlapping groups
       ('a < b', 'b < c') are resolved to a fixpoint with encryption
       dominant. *)
    let vp_all, ve_all =
      List.fold_left2
        (fun (vp, ve) (_, pc) d ->
          ( Attr.Set.union vp (Attr.Set.union pc.Profile.vp d),
            Attr.Set.union ve (Attr.Set.diff pc.Profile.ve d) ))
        (Attr.Set.empty, Attr.Set.empty)
        built after_ap
    in
    let protected_enc =
      List.fold_left
        (fun acc (_, s) -> Attr.Set.union acc (view_of s).Authorization.enc)
        (view_of subject).Authorization.enc ancestors
    in
    let fix_dec, fix_enc =
      let groups = uniformity_groups n in
      let own_plain = (view_of subject).Authorization.plain in
      let rec go to_dec to_enc =
        let ve_cur =
          Attr.Set.union
            (Attr.Set.diff ve_all (Attr.Set.diff to_dec to_enc))
          to_enc
        in
        let vp_cur =
          Attr.Set.diff (Attr.Set.union vp_all to_dec) to_enc
        in
        let to_dec', to_enc' =
          List.fold_left
            (fun (td, te) group ->
              let enc = Attr.Set.inter group ve_cur in
              let plain = Attr.Set.inter group vp_cur in
              if Attr.Set.is_empty enc || Attr.Set.is_empty plain then
                (td, te)
              else if
                Attr.Set.is_empty (Attr.Set.inter enc protected_enc)
                && Attr.Set.subset enc own_plain
                && Attr.Set.is_empty (Attr.Set.inter enc to_enc)
              then (Attr.Set.union td enc, te)
              else (td, Attr.Set.union te plain))
            (to_dec, to_enc) groups
        in
        if Attr.Set.equal to_dec to_dec' && Attr.Set.equal to_enc to_enc'
        then (Attr.Set.diff to_dec to_enc, to_enc)
        else go to_dec' to_enc'
      in
      go Attr.Set.empty Attr.Set.empty
    in
    let operands =
      List.map2
        (fun (ec, pc) d_ap ->
          let d = Attr.Set.union d_ap (Attr.Set.inter fix_dec pc.Profile.ve) in
          let ec, pc =
            if Attr.Set.is_empty d then (ec, pc)
            else begin
              let nd = Plan.decrypt d ec in
              let pd = Profile.decrypt d pc in
              record nd pd subject;
              (nd, pd)
            end
          in
          let e_fix = Attr.Set.inter fix_enc pc.Profile.vp in
          if Attr.Set.is_empty e_fix then (ec, pc)
          else begin
            let producer =
              match Imap.find_opt (Plan.id ec) !executors with
              | Some s -> s
              | None -> subject
            in
            let ne = Plan.encrypt e_fix ec in
            let pe = Profile.encrypt e_fix pc in
            record ne pe producer;
            (ne, pe)
          end)
        built after_ap
    in
    let n' = rebuild (Plan.node n) (List.map fst operands) in
    let p' = Profile.of_node (Plan.node n') (List.map snd operands) in
    record n' p' subject;
    (* (ii) encrypt attributes the parent's assignee may not see plaintext,
       plus those turned implicit by the parent while some later assignee
       lacks plaintext visibility *)
    match ancestors with
    | [] -> (n', p')
    | (parent, parent_subject) :: _ ->
        let e_parent = (view_of parent_subject).Authorization.enc in
        let parent_implicit =
          implicit_attrs (Hashtbl.find orig_profiles (Plan.id parent))
        in
        let ancestors_enc =
          List.fold_left
            (fun acc (_, s) ->
              Attr.Set.union acc (view_of s).Authorization.enc)
            Attr.Set.empty ancestors
        in
        let a_term =
          Attr.Set.inter
            (Attr.Set.inter parent_implicit p'.Profile.vp)
            ancestors_enc
        in
        let enc_set =
          Attr.Set.union (Attr.Set.inter e_parent p'.Profile.vp) a_term
        in
        if Attr.Set.is_empty enc_set then (n', p')
        else begin
          let ne = Plan.encrypt enc_set n' in
          let pe = Profile.encrypt enc_set p' in
          record ne pe subject;
          (ne, pe)
        end
  in
  let root, root_profile = build plan [] in
  let root, _ =
    match deliver_to with
    | Some user ->
        let readable =
          Attr.Set.inter root_profile.Profile.ve
            (Authorization.view policy user).Authorization.plain
        in
        if Attr.Set.is_empty readable then (root, root_profile)
        else begin
          let nd = Plan.decrypt readable root in
          let pd = Profile.decrypt readable root_profile in
          record nd pd user;
          (nd, pd)
        end
    | _ -> (root, root_profile)
  in
  { plan = root; assignment = !executors; profiles }

let verify ~policy t =
  let check_node acc node =
    match acc with
    | Error _ -> acc
    | Ok () -> (
        match Imap.find_opt (Plan.id node) t.assignment with
        | None ->
            Error
              (Printf.sprintf "node %d (%s) has no executor" (Plan.id node)
                 (Plan.operator_name node))
        | Some s ->
            let view = Authorization.view policy s in
            let operands =
              List.map
                (fun c -> Hashtbl.find t.profiles (Plan.id c))
                (Plan.children node)
            in
            let result = Hashtbl.find t.profiles (Plan.id node) in
            if Authorized.is_authorized_assignee view ~operands ~result then
              Ok ()
            else
              Error
                (Printf.sprintf "%s is not an authorized assignee of node %d (%s)"
                   (Subject.name s) (Plan.id node) (Plan.operator_name node)))
  in
  Plan.fold check_node (Ok ()) t.plan

let encrypted_attrs t =
  Plan.fold
    (fun acc n ->
      match Plan.node n with
      | Plan.Encrypt (attrs, _) -> Attr.Set.union acc attrs
      | _ -> acc)
    Attr.Set.empty t.plan

let to_ascii t =
  Plan_printer.to_ascii
    ~annot:(fun n ->
      let subject =
        match Imap.find_opt (Plan.id n) t.assignment with
        | Some s -> Subject.name s
        | None -> "?"
      in
      let profile =
        match Hashtbl.find_opt t.profiles (Plan.id n) with
        | Some p -> Profile.to_string p
        | None -> ""
      in
      Some (Printf.sprintf "@%s  %s" subject profile))
    t.plan
