(** Maps keyed by plan-node ids. *)
include Map.Make (Int)
