open Relalg

type violation =
  | Plaintext_violation of Attr.Set.t
  | Encrypted_violation of Attr.Set.t
  | Uniformity_violation of Attr.Set.t

let check (view : Authorization.view) (p : Profile.t) =
  let plain_needed = Attr.Set.union p.Profile.vp p.Profile.ip in
  let plain_missing = Attr.Set.diff plain_needed view.Authorization.plain in
  if not (Attr.Set.is_empty plain_missing) then
    Error (Plaintext_violation plain_missing)
  else
    let enc_needed = Attr.Set.union p.Profile.ve p.Profile.ie in
    let granted =
      Attr.Set.union view.Authorization.plain view.Authorization.enc
    in
    let enc_missing = Attr.Set.diff enc_needed granted in
    if not (Attr.Set.is_empty enc_missing) then
      Error (Encrypted_violation enc_missing)
    else
      let bad_class =
        List.find_opt
          (fun cls ->
            not
              (Attr.Set.subset cls view.Authorization.plain
              || Attr.Set.subset cls view.Authorization.enc))
          (Partition.sets p.Profile.eq)
      in
      match bad_class with
      | Some cls -> Error (Uniformity_violation cls)
      | None -> Ok ()

let is_authorized view p = Result.is_ok (check view p)

let is_authorized_assignee view ~operands ~result =
  List.for_all (is_authorized view) operands && is_authorized view result

let pp_violation fmt = function
  | Plaintext_violation s ->
      Format.fprintf fmt "no plaintext visibility of %s" (Attr.Set.to_string s)
  | Encrypted_violation s ->
      Format.fprintf fmt "no visibility of %s" (Attr.Set.to_string s)
  | Uniformity_violation s ->
      Format.fprintf fmt "non-uniform visibility over %s"
        (Attr.Set.to_string s)
