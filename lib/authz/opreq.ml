open Relalg
module Scheme = Mpq_crypto.Scheme

type config = {
  equality_over_cipher : bool;
  order_over_cipher : bool;
  addition_over_cipher : bool;
  enc_capable_udfs : string list;
  forced_plaintext : Attr.Set.t Imap.t;
}

let default =
  { equality_over_cipher = true;
    order_over_cipher = true;
    addition_over_cipher = true;
    enc_capable_udfs = [];
    forced_plaintext = Imap.empty }

let strict =
  { default with
    equality_over_cipher = false;
    order_over_cipher = false;
    addition_over_cipher = false }

let force_plaintext config id attrs =
  let merged =
    match Imap.find_opt id config.forced_plaintext with
    | Some prev -> Attr.Set.union prev attrs
    | None -> attrs
  in
  { config with forced_plaintext = Imap.add id merged config.forced_plaintext }

let allows config = function
  | Scheme.Cap_equality -> config.equality_over_cipher
  | Scheme.Cap_order -> config.order_over_cipher
  | Scheme.Cap_addition -> config.addition_over_cipher

let cap_of_op = function
  | Predicate.Eq | Predicate.Neq -> Scheme.Cap_equality
  | Predicate.Lt | Predicate.Le | Predicate.Gt | Predicate.Ge ->
      Scheme.Cap_order

let atom_demands = function
  | Predicate.Cmp_const (a, op, _) -> [ (a, cap_of_op op) ]
  | Predicate.Cmp_attr (a, op, b) ->
      let cap = cap_of_op op in
      [ (a, cap); (b, cap) ]
  | Predicate.In_list (a, _) -> [ (a, Scheme.Cap_equality) ]
  | Predicate.Like _ -> [] (* needs plaintext, not a scheme capability *)

let agg_demands (agg : Aggregate.t) =
  match agg.func with
  | Aggregate.Sum a | Aggregate.Avg a -> [ (a, Scheme.Cap_addition) ]
  | Aggregate.Min a | Aggregate.Max a -> [ (a, Scheme.Cap_order) ]
  | Aggregate.Count _ | Aggregate.Count_star -> []

let capability_demands plan =
  match Plan.node plan with
  | Plan.Select (pred, _) | Plan.Join (pred, _, _) ->
      List.concat_map atom_demands (Predicate.atoms pred)
  | Plan.Group_by (keys, aggs, _) ->
      Attr.Set.fold (fun a acc -> (a, Scheme.Cap_equality) :: acc) keys []
      @ List.concat_map agg_demands aggs
  | Plan.Order_by (keys, _) ->
      List.map (fun (a, _) -> (a, Scheme.Cap_order)) keys
  | Plan.Base _ | Plan.Project _ | Plan.Product _ | Plan.Udf _
  | Plan.Limit _ | Plan.Encrypt _ | Plan.Decrypt _ ->
      []

let plaintext_attrs config plan =
  let forced =
    match Imap.find_opt (Plan.id plan) config.forced_plaintext with
    | Some s -> s
    | None -> Attr.Set.empty
  in
  let demanded =
    List.filter_map
      (fun (a, cap) -> if allows config cap then None else Some a)
      (capability_demands plan)
  in
  let like_attrs =
    match Plan.node plan with
    | Plan.Select (pred, _) | Plan.Join (pred, _, _) ->
        List.filter_map
          (function Predicate.Like (a, _) -> Some a | _ -> None)
          (Predicate.atoms pred)
    | _ -> []
  in
  let udf_attrs =
    match Plan.node plan with
    | Plan.Udf (name, inputs, _, _)
      when not (List.mem name config.enc_capable_udfs) ->
        Attr.Set.elements inputs
    | _ -> []
  in
  Attr.Set.union forced
    (Attr.Set.of_list (demanded @ like_attrs @ udf_attrs))

(* Capability sets per attribute over the whole plan, counting only
   demands the config would execute over ciphertext (attr not in the
   node's Ap). Returns per-attribute lists plus the demanding nodes. *)
let cipher_demands config plan =
  List.concat_map
    (fun n ->
      let ap = plaintext_attrs config n in
      List.filter_map
        (fun (a, cap) ->
          if Attr.Set.mem a ap then None else Some (a, cap, Plan.id n))
        (capability_demands n))
    (Plan.nodes plan)

(* Equivalence classes of the root profile cluster attributes that must
   share a key, hence a scheme. *)
let eq_class_of plan =
  let root_eq = (Profile.of_plan_logical plan).Profile.eq in
  fun a -> Partition.find root_eq a

let resolve_conflicts config plan =
  let post_index =
    List.mapi (fun i n -> (Plan.id n, i)) (Plan.nodes plan)
  in
  let class_of = eq_class_of plan in
  let rec loop config guard =
    if guard > 1000 then
      invalid_arg "Opreq.resolve_conflicts: did not converge";
    let demands = cipher_demands config plan in
    (* group demands by equivalence class representative *)
    let conflict =
      List.find_opt
        (fun (a, _, _) ->
          let cls = class_of a in
          let caps =
            List.filter_map
              (fun (b, cap, _) ->
                if Attr.Set.mem b cls then Some cap else None)
              demands
            |> List.sort_uniq Stdlib.compare
          in
          Scheme.strongest_supporting caps = None)
        demands
    in
    match conflict with
    | None -> config
    | Some (a, _, _) ->
        let cls = class_of a in
        (* all nodes demanding a capability on this class, latest first *)
        let demanding =
          List.filter (fun (b, _, _) -> Attr.Set.mem b cls) demands
          |> List.map (fun (b, _, id) -> (b, id, List.assoc id post_index))
          |> List.sort (fun (_, _, i) (_, _, j) -> compare j i)
        in
        (match demanding with
        | (b, id, _) :: _ ->
            loop (force_plaintext config id (Attr.Set.singleton b)) (guard + 1)
        | [] -> config)
  in
  loop config 0

let scheme_of_attr config plan a =
  let class_of = eq_class_of plan in
  let cls = class_of a in
  let caps =
    List.filter_map
      (fun (b, cap, _) -> if Attr.Set.mem b cls then Some cap else None)
      (cipher_demands config plan)
    |> List.sort_uniq Stdlib.compare
  in
  match Scheme.strongest_supporting caps with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf
           "Opreq.scheme_of_attr %s: unresolved capability conflict (run \
            resolve_conflicts first)"
           (Attr.name a))
