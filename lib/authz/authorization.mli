(** Authorizations and policies (Def. 2.1, Fig. 4).

    Each data authority independently grants, per relation, plaintext
    visibility over a set [P] of attributes and encrypted visibility over
    a disjoint set [E], to a subject or to [any] (the default applying to
    subjects without an explicit rule). The policy is closed: what is not
    granted is not visible. *)

open Relalg

type grantee = To of Subject.t | Any

type rule = {
  relation : string;
  grantee : grantee;
  plain : Attr.Set.t;
  enc : Attr.Set.t;
}

val rule :
  rel:string -> ?plain:string list -> ?enc:string list -> grantee -> rule
(** Convenience constructor; raises [Invalid_argument] when [plain] and
    [enc] intersect. *)

(** A subject's overall view: the [P_S] / [E_S] shorthand of Sec. 4.
    [enc] lists attributes with encrypted-only visibility ([P] and [E]
    stay disjoint); plaintext visibility implies the right to see the
    encrypted form too (Def. 4.1, condition 2). *)
type view = { plain : Attr.Set.t; enc : Attr.Set.t }

type t
(** A policy: base schemas plus rules. *)

val make : schemas:Schema.t list -> rule list -> t
(** Validates the policy. Raises [Invalid_argument] when a rule targets
    an unknown relation or attribute, when [P] and [E] overlap, or when a
    (relation, grantee) pair carries more than one rule (the paper allows
    at most one authorization per subject per relation). The owner of
    each relation implicitly holds full plaintext visibility on it unless
    it carries an explicit rule. *)

val schemas : t -> Schema.t list
val rules : t -> rule list

val relation_view : t -> string -> Subject.t -> view
(** [relation_view t rel s]: what [s] may see of relation [rel] — the
    subject's explicit rule if any, else the relation's [any] rule, else
    nothing. *)

val view : t -> Subject.t -> view
(** Overall view across all relations (Fig. 4's "authorized attributes"),
    unioning per-relation views. *)

val explicit_subjects : t -> Subject.Set.t
(** Subjects named by some rule (excluding [Any]). *)

val pp_rule : Format.formatter -> rule -> unit
val pp_view : Format.formatter -> view -> unit
val pp : Format.formatter -> t -> unit
