open Relalg

type request = {
  name : string;
  subject : Subject.t;
  root_id : int;
  expression : string;
  key_clusters : string list;
  calls : string list;
}

let executor_of (ext : Extend.t) n =
  match Imap.find_opt (Plan.id n) ext.Extend.assignment with
  | Some s -> s
  | None -> invalid_arg "Dispatch: node without executor"

(* A node roots a fragment when its executor differs from its parent's
   (the plan root always does). *)
let fragment_roots (ext : Extend.t) =
  let roots = ref [ (Plan.id ext.Extend.plan, executor_of ext ext.Extend.plan) ] in
  Plan.iter
    (fun n ->
      let s = executor_of ext n in
      List.iter
        (fun c ->
          let cs = executor_of ext c in
          if not (Subject.equal s cs) then
            roots := (Plan.id c, cs) :: !roots)
        (Plan.children n))
    ext.Extend.plan;
  List.rev !roots

let requests (ext : Extend.t) clusters =
  let roots = fragment_roots ext in
  let is_root n = List.mem_assoc (Plan.id n) roots in
  (* Disambiguate names when one subject owns several fragments. *)
  let name_of =
    let counts = Hashtbl.create 8 in
    List.iter
      (fun (_, s) ->
        let k = Subject.name s in
        Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
      roots;
    let seen = Hashtbl.create 8 in
    let table = Hashtbl.create 8 in
    List.iter
      (fun (id, s) ->
        let k = Subject.name s in
        let name =
          if Hashtbl.find counts k = 1 then "req_" ^ k
          else begin
            let i = 1 + Option.value ~default:0 (Hashtbl.find_opt seen k) in
            Hashtbl.replace seen k i;
            Printf.sprintf "req_%s_%d" k i
          end
        in
        Hashtbl.replace table id name)
      roots;
    fun id -> Hashtbl.find table id
  in
  (* Render a fragment: descend until hitting a foreign fragment root. *)
  let rec render n ~top calls =
    if (not top) && is_root n then begin
      calls := name_of (Plan.id n) :: !calls;
      Printf.sprintf "⟦%s⟧" (name_of (Plan.id n))
    end
    else
      let sub c = render c ~top:false calls in
      match Plan.node n with
      | Plan.Base s -> s.Schema.name
      | Plan.Project (a, c) ->
          Printf.sprintf "π[%s](%s)" (Attr.Set.to_string a) (sub c)
      | Plan.Select (p, c) ->
          Printf.sprintf "σ[%s](%s)" (Predicate.to_string p) (sub c)
      | Plan.Product (l, r) -> Printf.sprintf "(%s × %s)" (sub l) (sub r)
      | Plan.Join (p, l, r) ->
          Printf.sprintf "(%s ⋈[%s] %s)" (sub l) (Predicate.to_string p)
            (sub r)
      | Plan.Group_by (k, ag, c) ->
          Printf.sprintf "γ[%s%s](%s)" (Attr.Set.to_string k)
            (String.concat ""
               (List.map (Format.asprintf ";%a" Aggregate.pp) ag))
            (sub c)
      | Plan.Udf (name, i, o, c) ->
          Printf.sprintf "µ[%s:%s→%s](%s)" name (Attr.Set.to_string i)
            (Attr.name o) (sub c)
      | Plan.Order_by (keys, c) ->
          Printf.sprintf "τ[%s](%s)"
            (String.concat ","
               (List.map
                  (fun (a, d) ->
                    Attr.name a
                    ^ match d with Plan.Asc -> "" | Plan.Desc -> " desc")
                  keys))
            (sub c)
      | Plan.Limit (n, c) -> Printf.sprintf "limit[%d](%s)" n (sub c)
      | Plan.Encrypt (a, c) ->
          Printf.sprintf "encrypt[%s](%s)" (Attr.Set.to_string a) (sub c)
      | Plan.Decrypt (a, c) ->
          Printf.sprintf "decrypt[%s](%s)" (Attr.Set.to_string a) (sub c)
  in
  (* Key clusters a fragment's executor needs: clusters held by the
     subject whose enc/dec nodes lie inside this fragment. *)
  let rec fragment_nodes n ~top acc =
    if (not top) && is_root n then acc
    else
      List.fold_left
        (fun acc c -> fragment_nodes c ~top:false acc)
        (n :: acc) (Plan.children n)
  in
  let find_node id =
    match Plan.find ext.Extend.plan id with
    | Some n -> n
    | None -> assert false
  in
  let mk (id, subject) =
    let node = find_node id in
    let calls = ref [] in
    let expression = render node ~top:true calls in
    let nodes = fragment_nodes node ~top:true [] in
    let key_clusters =
      List.filter_map
        (fun (c : Plan_keys.cluster) ->
          let touches n =
            match Plan.node n with
            | Plan.Encrypt (a, _) | Plan.Decrypt (a, _) ->
                not (Attr.Set.is_empty (Attr.Set.inter a c.Plan_keys.attrs))
            | _ -> false
          in
          if
            Subject.Set.mem subject c.Plan_keys.holders
            && List.exists touches nodes
          then Some c.Plan_keys.id
          else None)
        clusters
    in
    { name = name_of id;
      subject;
      root_id = id;
      expression;
      key_clusters;
      calls = List.rev !calls }
  in
  (* Dependency order: post-order of fragment roots. *)
  let order =
    List.filter_map
      (fun n ->
        if is_root n then Some (Plan.id n, List.assoc (Plan.id n) roots)
        else None)
      (Plan.nodes ext.Extend.plan)
  in
  List.map mk order

let pp_request fmt r =
  Format.fprintf fmt "%s @%s: %s%s" r.name (Subject.name r.subject)
    r.expression
    (match r.key_clusters with
    | [] -> ""
    | ks -> Printf.sprintf "  keys:{%s}" (String.concat "," ks))
