(** Relation profiles (Def. 3.1) and their propagation rules (Fig. 2).

    The profile of a relation captures its informative content: visible
    attributes (in the schema) and implicit attributes (leaked by
    selections/groupings), each in plaintext or encrypted form, plus the
    closure of the equivalence relation induced by attribute comparisons.

    Profiles only track attributes of the base relations (the vocabulary
    of authorizations). The output of count-star — pure cardinality
    metadata with no operand attribute — is not tracked; aggregate and
    udf outputs keep an operand's name (paper's renaming convention) and
    are tracked under it. *)

open Relalg

type t = {
  vp : Attr.Set.t;  (** visible plaintext *)
  ve : Attr.Set.t;  (** visible encrypted *)
  ip : Attr.Set.t;  (** implicit plaintext *)
  ie : Attr.Set.t;  (** implicit encrypted *)
  eq : Partition.t;  (** equivalence classes (R≃) *)
}

exception Not_executable of string
(** Raised when an operator's precondition on its operand profiles fails:
    comparing attributes with non-uniform visibility, operating on a
    non-visible attribute, encrypting a non-plaintext attribute, etc. *)

val of_base : Schema.t -> t
(** All attributes visible plaintext, everything else empty (base
    relations carry no implicit content). *)

val make :
  ?vp:string list ->
  ?ve:string list ->
  ?ip:string list ->
  ?ie:string list ->
  ?eq:string list list ->
  unit ->
  t
(** Test/demo helper building a profile from attribute-name lists. *)

(** {1 Fig. 2 rules} — one function per operator, mapping operand
    profile(s) to the result profile. *)

val project : Attr.Set.t -> t -> t
val select : Predicate.t -> t -> t
val product : t -> t -> t
val join : Predicate.t -> t -> t -> t
val group_by : Attr.Set.t -> Aggregate.t list -> t -> t
val udf : Attr.Set.t -> Attr.t -> t -> t

(** Our Fig. 2 extension for PostgreSQL Sort nodes: the sort keys leak
    value relations and join the implicit attributes, in the form they
    are visible; [Limit] nodes are profile-neutral. *)
val order_by : (Attr.t * Plan.sort_dir) list -> t -> t
val encrypt : Attr.Set.t -> t -> t
val decrypt : Attr.Set.t -> t -> t

val of_node : Plan.node -> t list -> t
(** Dispatch on the operator, children profiles given in order. *)

val of_plan : Plan.t -> t
(** Profile of the plan's root relation. *)

val of_plan_logical : Plan.t -> t
(** Like {!of_plan}, but treating every base relation as plaintext
    regardless of storage — the visibility-blind structural analysis
    (implicit attributes, equivalence classes) used by scheme selection
    and key derivation, computable even when the raw plan's physical
    visibility is not yet executable. *)

val annotate : Plan.t -> (int, t) Hashtbl.t
(** Profiles of every node's output relation, keyed by node id. *)

val annotate_logical : Plan.t -> (int, t) Hashtbl.t

(** {1 Observation} *)

val visible : t -> Attr.Set.t
(** [vp ∪ ve]. *)

val all_attrs : t -> Attr.Set.t
(** Attributes appearing anywhere in the profile, including equivalence
    classes (Thm. 3.1's carrier set). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
(** Paper-style rendering: [v: SDT [CP] i: D ≃: SC] with encrypted
    attributes bracketed. *)
