module C = Mpq_crypto
module Core = Mpq_faults.Fault_core

type fault =
  | Crash_at of int
  | Transient of float
  | Corrupt of float
  | Slow of { delay_ms : int; prob : float }

type spec = (string * fault) list

exception Bad_spec = Core.Bad_spec

let bad = Core.bad

let parse_fault ~entry body =
  match String.index_opt body '@' with
  | _ when String.length body = 0 -> bad "empty fault in %S" entry
  | Some _ when String.length body > 6 && String.sub body 0 6 = "crash@" ->
      Crash_at
        (Core.parse_nonneg_int "crash@K"
           (String.sub body 6 (String.length body - 6)))
  | _ -> (
      match String.index_opt body '=' with
      | None -> bad "fault %S is not crash@K, transient=P, corrupt=P or slow=MS[@P]" body
      | Some i -> (
          let kind = String.sub body 0 i in
          let arg = String.sub body (i + 1) (String.length body - i - 1) in
          match kind with
          | "transient" -> Transient (Core.parse_prob "transient" arg)
          | "corrupt" -> Corrupt (Core.parse_prob "corrupt" arg)
          | "slow" ->
              let ms, prob =
                match String.index_opt arg '@' with
                | None -> (arg, "1.0")
                | Some j ->
                    ( String.sub arg 0 j,
                      String.sub arg (j + 1) (String.length arg - j - 1) )
              in
              Slow
                { delay_ms = Core.parse_nonneg_int "slow=MS" ms;
                  prob = Core.parse_prob "slow" prob }
          | k -> bad "unknown fault kind %S in %S" k entry))

let parse s = Core.parse_keyed ~what:"SUBJECT:FAULT" parse_fault s

let render_fault = function
  | Crash_at k -> Printf.sprintf "crash@%d" k
  | Transient p -> Printf.sprintf "transient=%g" p
  | Corrupt p -> Printf.sprintf "corrupt=%g" p
  | Slow { delay_ms; prob } ->
      if prob >= 1.0 then Printf.sprintf "slow=%d" delay_ms
      else Printf.sprintf "slow=%d@%g" delay_ms prob

let render spec =
  String.concat ","
    (List.map (fun (s, f) -> Printf.sprintf "%s:%s" s (render_fault f)) spec)

type t = {
  spec : spec;
  rng : C.Prng.t;
  base_latency_ms : int;
  mutable clock_ms : int;
  mutable steps : int;
}

let make ?(seed = 1) ?(base_latency_ms = 5) spec =
  { spec;
    rng = C.Prng.create (Int64.of_int seed);
    base_latency_ms;
    clock_ms = 0;
    steps = 0 }

let none () = make []
let clock_ms t = t.clock_ms
let advance t ms = t.clock_ms <- t.clock_ms + max 0 ms
let step t = t.steps
let jitter t bound = if bound <= 0 then 0 else C.Prng.int t.rng bound

type verdict =
  | Delivered
  | Dropped of string
  | Corrupted of string
  | No_response of string

type disposition = {
  verdict : verdict;
  latency_ms : int;
  slow_by : string option;
}

let faults_of t s =
  List.filter_map (fun (n, f) -> if n = s then Some f else None) t.spec

let crashed t s =
  List.exists (function Crash_at k -> t.steps >= k | _ -> false) (faults_of t s)

let interact t participants =
  t.steps <- t.steps + 1;
  match List.find_opt (crashed t) participants with
  | Some s -> { verdict = No_response s; latency_ms = 0; slow_by = None }
  | None ->
      let latency = ref t.base_latency_ms in
      let slow_by = ref None in
      let dropped = ref None and corrupted = ref None in
      (* draw every probabilistic fault of every participant, in spec
         order, whether or not an earlier one already fired: the draw
         sequence then depends only on (spec, call sequence), keeping
         runs reproducible. *)
      List.iter
        (fun s ->
          List.iter
            (fun f ->
              match f with
              | Crash_at _ -> ()
              | Transient p ->
                  if Core.draw t.rng p && !dropped = None then dropped := Some s
              | Corrupt p ->
                  if Core.draw t.rng p && !corrupted = None then
                    corrupted := Some s
              | Slow { delay_ms; prob } ->
                  if Core.draw t.rng prob then begin
                    latency := !latency + delay_ms;
                    slow_by := Some s
                  end)
            (faults_of t s))
        participants;
      let verdict =
        match (!dropped, !corrupted) with
        | Some s, _ -> Dropped s
        | None, Some s -> Corrupted s
        | None, None -> Delivered
      in
      { verdict; latency_ms = !latency; slow_by = !slow_by }
