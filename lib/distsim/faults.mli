(** Deterministic fault injection for the distributed simulator.

    A fault plan assigns failure behaviours to subjects — crash from a
    given interaction step on, transient message loss, payload
    corruption, slow responses — and owns a simulated clock (ms) plus a
    monotone step counter. All randomness is drawn from a seeded
    {!Mpq_crypto.Prng}, so the same seed and spec reproduce the exact
    same sequence of faults, which [Runtime] turns into a byte-identical
    trace. The runtime consults the plan once per network interaction
    ({!interact}); everything local to a subject (release checks, key
    checks, fragment evaluation) is fault-free by construction — the
    model degrades availability, never integrity of the authorization
    checks. *)

type fault =
  | Crash_at of int
      (** Subject permanently down from interaction step [k] on
          ([0] = down from the start); it never answers again. *)
  | Transient of float  (** Drop a message involving the subject with
                            this probability. *)
  | Corrupt of float  (** Corrupt the payload in transit with this
                          probability; detection (MAC / checksum) is
                          the receiver's job. *)
  | Slow of { delay_ms : int; prob : float }
      (** Add [delay_ms] simulated latency with probability [prob];
          the runtime compares total latency to its per-request
          timeout. *)

type spec = (string * fault) list
(** Per-subject fault assignments; a subject may appear several
    times. *)

exception Bad_spec of string

val parse : string -> spec
(** Parse a command-line fault spec. Entries are separated by [,] or
    [;]; each entry is [SUBJECT:FAULT] with [FAULT] one of
    [crash@K], [transient=P], [corrupt=P], [slow=MS] or [slow=MS@P].
    Example: ["X:crash@4,Y:transient=0.2,Z:slow=1500@0.5"]. Raises
    {!Bad_spec} on malformed input. *)

val render : spec -> string
(** Inverse of {!parse} (canonical form). *)

type t
(** An instantiated fault plan: spec + PRNG + simulated clock. One
    plan drives one execution (including its retries and failover
    re-plans); make a fresh plan per run. *)

val make : ?seed:int -> ?base_latency_ms:int -> spec -> t
(** [base_latency_ms] (default 5) is the fault-free latency of one
    interaction on the simulated clock. *)

val none : unit -> t
(** The empty plan: every interaction is delivered at base latency. *)

val clock_ms : t -> int
(** Simulated time elapsed so far. *)

val advance : t -> int -> unit
(** Advance the simulated clock (used by the runtime for waits on
    timeouts and retry backoff). *)

val step : t -> int
(** Interactions consulted so far ({!interact} increments it). *)

val jitter : t -> int -> int
(** [jitter t bound] draws a deterministic uniform int in
    [\[0, bound)] ([0] when [bound <= 0]) — retry-backoff jitter. *)

type verdict =
  | Delivered
  | Dropped of string  (** transient loss, blamed subject *)
  | Corrupted of string  (** payload corrupted in transit *)
  | No_response of string  (** subject has crashed *)

type disposition = {
  verdict : verdict;
  latency_ms : int;  (** base latency + triggered slow delays *)
  slow_by : string option;  (** subject whose slow fault fired, if any *)
}

val interact : t -> string list -> disposition
(** [interact t participants] advances the step counter and rolls the
    fate of one message exchange among [participants] (named
    subjects): a crashed participant yields [No_response] without
    consuming randomness; otherwise every probabilistic fault of every
    participant is drawn in spec order (so the draw sequence — hence
    determinism — depends only on the spec and the call sequence). *)
