(** Simulated public-key infrastructure.

    The paper's dispatch wraps each sub-query as
    [[[q_S, keys]_priU]_pubS]: signed with the user's private key,
    encrypted for the recipient (Sec. 6, Fig. 8). The sealed container
    offers no asymmetric-crypto package, so we simulate the envelope
    semantics with symmetric primitives: per ordered pair of subjects a
    shared box key (as a Diffie-Hellman-style pairwise secret would
    give), signature = MAC under the sender's signing secret, verifiable
    through the registry (standing in for certificate verification). The
    trust semantics — only the recipient opens, the sender is
    authenticated — are preserved; the bit-level security is
    simulation-grade (DESIGN.md). *)

type t
(** The registry, playing the role of the CA / key directory. *)

val create : ?seed:int64 -> unit -> t

type sealed = {
  sender : string;
  recipient : string;
  ciphertext : string;
  signature : string;
}

val seal : t -> sender:string -> recipient:string -> string -> sealed
(** Sign with the sender's key, encrypt for the recipient. *)

exception Bad_envelope of string

val open_ : t -> recipient:string -> sealed -> string
(** Decrypt and verify; raises {!Bad_envelope} on wrong recipient,
    decryption failure, or signature mismatch. *)
