open Relalg

type event =
  | Request_sent of { name : string; to_ : Authz.Subject.t; keys : string list }
  | Request_opened of { name : string; by : Authz.Subject.t }
  | Data_transfer of {
      from_ : Authz.Subject.t;
      to_ : Authz.Subject.t;
      node_id : int;
      rows : int;
      bytes : int;
    }
  | Release_check of {
      by : Authz.Subject.t;
      for_ : Authz.Subject.t;
      node_id : int;
      ok : bool;
    }
  | Key_check of { by : Authz.Subject.t; cluster : string; ok : bool }

exception Distributed_violation of string

type outcome = { result : Engine.Table.t; trace : event list }

let execute ~policy ~pki ~keyring ~user ~tables ?(udfs = [])
    ?(config = Authz.Opreq.default) ?(self_check = true) ~extended ~clusters
    () =
  let trace = ref [] in
  let emit e = trace := e :: !trace in
  let requests = Authz.Dispatch.requests extended clusters in
  (* 0. pre-dispatch gate: nothing leaves the user's machine before the
     static verifier has re-derived every invariant over the plan, the
     clusters and the requests about to be sealed. *)
  if self_check then begin
    let diags =
      Obs.with_span "distsim.verify" (fun () ->
          Verify.Verifier.run
            { Verify.Verifier.policy; config; extended; clusters; requests })
    in
    if Verify.Diag.has_errors diags then
      raise
        (Distributed_violation
           ("pre-dispatch verification failed:\n"
           ^ Verify.Diag.render (Verify.Diag.errors diags)))
  end;
  (* 1. dispatch: the user seals a request per fragment; the executor
     opens and verifies it (the envelope discipline of Fig. 8). *)
  Obs.incr ~by:(List.length requests) "distsim.requests";
  Obs.with_span "distsim.dispatch" (fun () ->
  List.iter
    (fun (r : Authz.Dispatch.request) ->
      let payload =
        Printf.sprintf "%s|%s|%s" r.Authz.Dispatch.name
          r.Authz.Dispatch.expression
          (String.concat "," r.Authz.Dispatch.key_clusters)
      in
      let sealed =
        Pki.seal pki ~sender:(Authz.Subject.name user)
          ~recipient:(Authz.Subject.name r.Authz.Dispatch.subject)
          payload
      in
      emit
        (Request_sent
           { name = r.Authz.Dispatch.name;
             to_ = r.Authz.Dispatch.subject;
             keys = r.Authz.Dispatch.key_clusters });
      let opened =
        Pki.open_ pki
          ~recipient:(Authz.Subject.name r.Authz.Dispatch.subject)
          sealed
      in
      if not (String.equal opened payload) then
        raise (Distributed_violation "request payload corrupted in transit");
      emit
        (Request_opened
           { name = r.Authz.Dispatch.name; by = r.Authz.Dispatch.subject }))
    requests);
  (* 2. key distribution check: each executor holds exactly the clusters
     whose enc/dec operations it performs. *)
  let executor n =
    Authz.Imap.find (Plan.id n) extended.Authz.Extend.assignment
  in
  Obs.with_span "distsim.key_checks" (fun () ->
  Plan.iter
    (fun n ->
      match Plan.node n with
      | Plan.Encrypt (attrs, _) | Plan.Decrypt (attrs, _) ->
          let s = executor n in
          Attr.Set.iter
            (fun a ->
              match Authz.Plan_keys.cluster_of_attr clusters a with
              | Some c ->
                  let ok =
                    Authz.Subject.Set.mem s c.Authz.Plan_keys.holders
                  in
                  emit (Key_check { by = s; cluster = c.Authz.Plan_keys.id; ok });
                  if not ok then
                    raise
                      (Distributed_violation
                         (Printf.sprintf "%s lacks key k%s for node %d"
                            (Authz.Subject.name s) c.Authz.Plan_keys.id
                            (Plan.id n)))
              | None ->
                  raise
                    (Distributed_violation
                       (Printf.sprintf
                          "attribute %s of node %d has no key cluster"
                          (Attr.name a) (Plan.id n))))
            attrs
      | _ -> ())
    extended.Authz.Extend.plan);
  (* 3. evaluation with per-boundary release checks (each sender re-checks
     Def. 4.1 for the receiver before handing data over). *)
  let crypto = Engine.Enc_exec.make keyring clusters in
  let ctx = Engine.Exec.context ~udfs ~crypto tables in
  let parent_of =
    let tbl = Hashtbl.create 64 in
    Plan.iter
      (fun n ->
        List.iter (fun c -> Hashtbl.replace tbl (Plan.id c) n) (Plan.children n))
      extended.Authz.Extend.plan;
    fun n -> Hashtbl.find_opt tbl (Plan.id n)
  in
  let hook node table =
    match parent_of node with
    | None -> ()
    | Some parent ->
        let s_from = executor node and s_to = executor parent in
        if not (Authz.Subject.equal s_from s_to) then begin
          let profile =
            Hashtbl.find extended.Authz.Extend.profiles (Plan.id node)
          in
          let ok =
            Authz.Authorized.is_authorized
              (Authz.Authorization.view policy s_to)
              profile
          in
          Obs.incr "distsim.release_checks";
          emit
            (Release_check
               { by = s_from; for_ = s_to; node_id = Plan.id node; ok });
          if not ok then
            raise
              (Distributed_violation
                 (Printf.sprintf "%s refuses to release node %d to %s"
                    (Authz.Subject.name s_from) (Plan.id node)
                    (Authz.Subject.name s_to)));
          let bytes = Engine.Table.byte_size table in
          Obs.incr "distsim.transfers";
          Obs.record "distsim.transfer_bytes" (float_of_int bytes);
          emit
            (Data_transfer
               { from_ = s_from;
                 to_ = s_to;
                 node_id = Plan.id node;
                 rows = Engine.Table.cardinality table;
                 bytes })
        end
  in
  let result =
    Obs.with_span "distsim.exec" (fun () ->
        Engine.Exec.run_with_hook ctx ~hook extended.Authz.Extend.plan)
  in
  { result; trace = List.rev !trace }

let pp_event fmt = function
  | Request_sent { name; to_; keys } ->
      Format.fprintf fmt "request %s -> %s%s" name (Authz.Subject.name to_)
        (match keys with
        | [] -> ""
        | ks -> " [keys " ^ String.concat "," ks ^ "]")
  | Request_opened { name; by } ->
      Format.fprintf fmt "request %s opened by %s" name (Authz.Subject.name by)
  | Data_transfer { from_; to_; node_id; rows; bytes } ->
      Format.fprintf fmt "data n%d: %s -> %s (%d rows, %d bytes)" node_id
        (Authz.Subject.name from_) (Authz.Subject.name to_) rows bytes
  | Release_check { by; for_; node_id; ok } ->
      Format.fprintf fmt "release check n%d by %s for %s: %s" node_id
        (Authz.Subject.name by) (Authz.Subject.name for_)
        (if ok then "authorized" else "DENIED")
  | Key_check { by; cluster; ok } ->
      Format.fprintf fmt "key check k%s at %s: %s" cluster
        (Authz.Subject.name by)
        (if ok then "held" else "MISSING")
