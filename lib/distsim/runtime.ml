open Relalg

type event =
  | Request_sent of { name : string; to_ : Authz.Subject.t; keys : string list }
  | Request_opened of { name : string; by : Authz.Subject.t }
  | Data_transfer of {
      from_ : Authz.Subject.t;
      to_ : Authz.Subject.t;
      node_id : int;
      rows : int;
      bytes : int;
    }
  | Release_check of {
      by : Authz.Subject.t;
      for_ : Authz.Subject.t;
      node_id : int;
      ok : bool;
    }
  | Key_check of { by : Authz.Subject.t; cluster : string; ok : bool }
  | Fault_injected of {
      what : string;
      subject : string;
      kind : string;
      step : int;
    }
  | Retry of { what : string; attempt : int; backoff_ms : int }
  | Timeout of { what : string; subject : string; waited_ms : int }
  | Failover_replanned of {
      dead : Authz.Subject.t;
      excluded : Authz.Subject.t list;
    }
  | Degraded_abort of { reason : string }

exception Distributed_violation of string

type retry_policy = {
  max_retries : int;
  base_backoff_ms : int;
  timeout_ms : int;
}

let default_retry = { max_retries = 3; base_backoff_ms = 50; timeout_ms = 1000 }

type degradation = { reason : string; dead : Authz.Subject.t list }
type status = Completed of Engine.Table.t | Degraded of degradation

type outcome = {
  status : status;
  trace : event list;
  clock_ms : int;
  replans : int;
}

let result o =
  match o.status with
  | Completed t -> t
  | Degraded d -> raise (Distributed_violation ("degraded run: " ^ d.reason))

type replanner =
  exclude:Authz.Subject.Set.t ->
  (Authz.Extend.t * Authz.Plan_keys.cluster list) option

let optimizer_replanner ~policy ~subjects ?config ?deliver_to plan ~exclude =
  let remaining =
    List.filter (fun s -> not (Authz.Subject.Set.mem s exclude)) subjects
  in
  match
    Planner.Optimizer.plan ~policy ~subjects:remaining ?config ?deliver_to plan
  with
  | r -> Some (r.Planner.Optimizer.extended, r.Planner.Optimizer.clusters)
  | exception
      ( Planner.Optimizer.No_candidate _
      | Planner.Optimizer.User_not_authorized _ ) ->
      None

(* Internal control flow: a subject exhausted its retries. Never escapes
   [execute]. *)
exception Dead_subject of Authz.Subject.t * string

(* Flip one bit in the middle of a ciphertext: injected in-transit
   corruption, to be caught by the envelope MAC. *)
let tamper s =
  if String.length s = 0 then s
  else
    String.mapi
      (fun i c ->
        if i = String.length s / 2 then Char.chr (Char.code c lxor 1) else c)
      s

let execute ~policy ~pki ~keyring ~user ~tables ?(udfs = [])
    ?(config = Authz.Opreq.default) ?(self_check = true) ?faults
    ?(retry = default_retry) ?replan ?pool ~extended ~clusters () =
  let faults = match faults with Some f -> f | None -> Faults.none () in
  let trace = ref [] in
  let emit e = trace := e :: !trace in
  let dead = ref Authz.Subject.Set.empty in
  let outcome status =
    { status;
      trace = List.rev !trace;
      clock_ms = Faults.clock_ms faults;
      replans = 0 }
  in
  (* --- one full pass over a given extension --------------------------- *)
  let run_once (extended : Authz.Extend.t) clusters =
    let requests = Authz.Dispatch.requests extended clusters in
    (* 0. pre-dispatch gate: nothing leaves the user's machine before the
       static verifier has re-derived every invariant over the plan, the
       clusters and the requests about to be sealed. Runs again on every
       failover re-planned extension. *)
    if self_check then begin
      let diags =
        Obs.with_span "distsim.verify" (fun () ->
            Verify.Verifier.run
              { Verify.Verifier.policy; config; extended; clusters; requests })
      in
      if Verify.Diag.has_errors diags then
        raise
          (Distributed_violation
             ("pre-dispatch verification failed:\n"
             ^ Verify.Diag.render (Verify.Diag.errors diags)))
    end;
    (* resolve a blamed subject name back to the subject *)
    let subject_named =
      let tbl = Hashtbl.create 16 in
      Hashtbl.replace tbl (Authz.Subject.name user) user;
      Authz.Imap.iter
        (fun _ s -> Hashtbl.replace tbl (Authz.Subject.name s) s)
        extended.Authz.Extend.assignment;
      fun name ->
        match Hashtbl.find_opt tbl name with
        | Some s -> s
        | None -> Authz.Subject.provider name
    in
    (* supervised interaction: bounded retries, exponential backoff with
       deterministic jitter, per-attempt timeout. Transport faults are
       retryable; [op] raising anything other than [Pki.Bad_envelope]
       (in particular [Distributed_violation]) aborts immediately. *)
    let attempt ~what ~participants (op : corrupted:bool -> unit) =
      let last_participant =
        List.nth participants (List.length participants - 1)
      in
      let rec go attempt_no =
        let fate =
          (* one attempt: roll the fault plan, then run the operation;
             [Pki.Bad_envelope] is the detectable-transport-damage
             signal; any other exception (notably
             [Distributed_violation]) aborts without retry *)
          Obs.with_span "distsim.attempt" @@ fun () ->
          let d = Faults.interact faults participants in
          match d.Faults.verdict with
          | Faults.No_response by -> `Timeout by
          | Faults.Dropped by ->
              Faults.advance faults d.Faults.latency_ms;
              `Fault ("transient", by)
          | Faults.Corrupted by ->
              Faults.advance faults d.Faults.latency_ms;
              (* deliver the corrupted payload: detection (envelope MAC /
                 transfer checksum) is part of what we simulate *)
              (match op ~corrupted:true with
              | () -> ()
              | exception Pki.Bad_envelope _ -> ());
              `Fault ("corrupt", by)
          | Faults.Delivered when d.Faults.latency_ms > retry.timeout_ms ->
              `Timeout (Option.value d.Faults.slow_by ~default:last_participant)
          | Faults.Delivered -> (
              Faults.advance faults d.Faults.latency_ms;
              match op ~corrupted:false with
              | () -> `Ok
              | exception Pki.Bad_envelope _ ->
                  `Fault ("envelope", last_participant))
        in
        let retry_or_die by =
          if attempt_no > retry.max_retries then
            raise (Dead_subject (subject_named by, what))
          else begin
            let backoff =
              (retry.base_backoff_ms * (1 lsl (attempt_no - 1)))
              + Faults.jitter faults retry.base_backoff_ms
            in
            Faults.advance faults backoff;
            Obs.incr "distsim.retries";
            emit (Retry { what; attempt = attempt_no; backoff_ms = backoff });
            go (attempt_no + 1)
          end
        in
        match fate with
        | `Ok -> ()
        | `Timeout by ->
            Faults.advance faults retry.timeout_ms;
            Obs.incr "distsim.timeouts";
            emit (Timeout { what; subject = by; waited_ms = retry.timeout_ms });
            retry_or_die by
        | `Fault (kind, by) ->
            emit
              (Fault_injected
                 { what; subject = by; kind; step = Faults.step faults });
            Obs.incr "distsim.faults_injected";
            retry_or_die by
      in
      go 1
    in
    (* 1. dispatch: the user seals a request per fragment; the executor
       opens and verifies it (the envelope discipline of Fig. 8). *)
    Obs.incr ~by:(List.length requests) "distsim.requests";
    Obs.with_span "distsim.dispatch" (fun () ->
        List.iter
          (fun (r : Authz.Dispatch.request) ->
            let payload =
              Printf.sprintf "%s|%s|%s" r.Authz.Dispatch.name
                r.Authz.Dispatch.expression
                (String.concat "," r.Authz.Dispatch.key_clusters)
            in
            let recipient = Authz.Subject.name r.Authz.Dispatch.subject in
            attempt
              ~what:("dispatch " ^ r.Authz.Dispatch.name)
              ~participants:[ Authz.Subject.name user; recipient ]
              (fun ~corrupted ->
                let sealed =
                  Pki.seal pki ~sender:(Authz.Subject.name user) ~recipient
                    payload
                in
                let sealed =
                  if corrupted then
                    { sealed with
                      Pki.ciphertext = tamper sealed.Pki.ciphertext }
                  else sealed
                in
                emit
                  (Request_sent
                     { name = r.Authz.Dispatch.name;
                       to_ = r.Authz.Dispatch.subject;
                       keys = r.Authz.Dispatch.key_clusters });
                let opened = Pki.open_ pki ~recipient sealed in
                if not (String.equal opened payload) then
                  raise (Pki.Bad_envelope "request payload corrupted in transit");
                emit
                  (Request_opened
                     { name = r.Authz.Dispatch.name;
                       by = r.Authz.Dispatch.subject })))
          requests);
    (* 2. key distribution check: each executor holds exactly the clusters
       whose enc/dec operations it performs. A failed key check is an
       authorization violation — fatal, never retried. *)
    let executor n =
      Authz.Imap.find (Plan.id n) extended.Authz.Extend.assignment
    in
    Obs.with_span "distsim.key_checks" (fun () ->
        Plan.iter
          (fun n ->
            match Plan.node n with
            | Plan.Encrypt (attrs, _) | Plan.Decrypt (attrs, _) ->
                let s = executor n in
                Attr.Set.iter
                  (fun a ->
                    match Authz.Plan_keys.cluster_of_attr clusters a with
                    | Some c ->
                        let ok =
                          Authz.Subject.Set.mem s c.Authz.Plan_keys.holders
                        in
                        emit
                          (Key_check
                             { by = s; cluster = c.Authz.Plan_keys.id; ok });
                        if not ok then
                          raise
                            (Distributed_violation
                               (Printf.sprintf "%s lacks key k%s for node %d"
                                  (Authz.Subject.name s) c.Authz.Plan_keys.id
                                  (Plan.id n)))
                    | None ->
                        raise
                          (Distributed_violation
                             (Printf.sprintf
                                "attribute %s of node %d has no key cluster"
                                (Attr.name a) (Plan.id n))))
                  attrs
            | _ -> ())
          extended.Authz.Extend.plan);
    (* 3. evaluation with per-boundary release checks (each sender re-checks
       Def. 4.1 for the receiver before handing data over). The check is
       local and fatal when denied; only the transfer itself is retried. *)
    let crypto = Engine.Enc_exec.make keyring clusters in
    let ctx = Engine.Exec.context ~udfs ~crypto tables in
    let parent_of =
      let tbl = Hashtbl.create 64 in
      Plan.iter
        (fun n ->
          List.iter
            (fun c -> Hashtbl.replace tbl (Plan.id c) n)
            (Plan.children n))
        extended.Authz.Extend.plan;
      fun n -> Hashtbl.find_opt tbl (Plan.id n)
    in
    let hook node table =
      match parent_of node with
      | None -> ()
      | Some parent ->
          let s_from = executor node and s_to = executor parent in
          if not (Authz.Subject.equal s_from s_to) then begin
            let profile =
              match
                Hashtbl.find_opt extended.Authz.Extend.profiles (Plan.id node)
              with
              | Some p -> p
              | None ->
                  raise
                    (Distributed_violation
                       (Printf.sprintf
                          "no profile recorded for node %d: %s cannot run \
                           the release check for %s"
                          (Plan.id node)
                          (Authz.Subject.name s_from)
                          (Authz.Subject.name s_to)))
            in
            let ok =
              Authz.Authorized.is_authorized
                (Authz.Authorization.view policy s_to)
                profile
            in
            Obs.incr "distsim.release_checks";
            emit
              (Release_check
                 { by = s_from; for_ = s_to; node_id = Plan.id node; ok });
            if not ok then
              raise
                (Distributed_violation
                   (Printf.sprintf "%s refuses to release node %d to %s"
                      (Authz.Subject.name s_from) (Plan.id node)
                      (Authz.Subject.name s_to)));
            let what =
              Printf.sprintf "transfer n%d %s->%s" (Plan.id node)
                (Authz.Subject.name s_from) (Authz.Subject.name s_to)
            in
            attempt ~what
              ~participants:
                [ Authz.Subject.name s_from; Authz.Subject.name s_to ]
              (fun ~corrupted ->
                (* a corrupted transfer is detected by the receiver's
                   checksum and discarded; nothing is delivered *)
                if not corrupted then begin
                  let bytes = Engine.Table.byte_size table in
                  Obs.incr "distsim.transfers";
                  Obs.record "distsim.transfer_bytes" (float_of_int bytes);
                  emit
                    (Data_transfer
                       { from_ = s_from;
                         to_ = s_to;
                         node_id = Plan.id node;
                         rows = Engine.Table.cardinality table;
                         bytes })
                end)
          end
    in
    Obs.with_span "distsim.exec" (fun () ->
        Engine.Exec.run_with_hook ?pool ctx ~hook extended.Authz.Extend.plan)
  in
  (* --- supervision: failover re-planning around run_once --------------- *)
  let rec supervise extended clusters replans =
    match run_once extended clusters with
    | table -> { (outcome (Completed table)) with replans }
    | exception Dead_subject (s, what) ->
        let degrade reason =
          emit (Degraded_abort { reason });
          Obs.incr "distsim.degraded";
          { (outcome
               (Degraded { reason; dead = Authz.Subject.Set.elements !dead }))
            with replans }
        in
        if Authz.Subject.Set.mem s !dead then
          (* the replanned assignment interacted with a subject we already
             declared dead (it may own base data no one else holds) *)
          degrade
            (Printf.sprintf "%s unresponsive again after re-planning (%s)"
               (Authz.Subject.name s) what)
        else begin
          dead := Authz.Subject.Set.add s !dead;
          match replan with
          | None ->
              degrade
                (Printf.sprintf
                   "%s unresponsive after %d retries (%s); no re-planner \
                    configured"
                   (Authz.Subject.name s) retry.max_retries what)
          | Some rp -> (
              Obs.incr "distsim.failovers";
              match
                Obs.with_span "distsim.replan" (fun () -> rp ~exclude:!dead)
              with
              | None ->
                  degrade
                    (Printf.sprintf
                       "%s unresponsive (%s); no authorized alternative \
                        assignment exists"
                       (Authz.Subject.name s) what)
              | Some (extended', clusters') ->
                  if
                    Authz.Imap.exists
                      (fun _ sub -> Authz.Subject.Set.mem sub !dead)
                      extended'.Authz.Extend.assignment
                  then
                    degrade
                      (Printf.sprintf
                         "re-planned assignment still requires dead \
                          subject(s) %s"
                         (String.concat ", "
                            (List.map Authz.Subject.name
                               (Authz.Subject.Set.elements !dead))))
                  else begin
                    emit
                      (Failover_replanned
                         { dead = s;
                           excluded = Authz.Subject.Set.elements !dead });
                    supervise extended' clusters' (replans + 1)
                  end)
        end
  in
  supervise extended clusters 0

let pp_event fmt = function
  | Request_sent { name; to_; keys } ->
      Format.fprintf fmt "request %s -> %s%s" name (Authz.Subject.name to_)
        (match keys with
        | [] -> ""
        | ks -> " [keys " ^ String.concat "," ks ^ "]")
  | Request_opened { name; by } ->
      Format.fprintf fmt "request %s opened by %s" name (Authz.Subject.name by)
  | Data_transfer { from_; to_; node_id; rows; bytes } ->
      Format.fprintf fmt "data n%d: %s -> %s (%d rows, %d bytes)" node_id
        (Authz.Subject.name from_) (Authz.Subject.name to_) rows bytes
  | Release_check { by; for_; node_id; ok } ->
      Format.fprintf fmt "release check n%d by %s for %s: %s" node_id
        (Authz.Subject.name by) (Authz.Subject.name for_)
        (if ok then "authorized" else "DENIED")
  | Key_check { by; cluster; ok } ->
      Format.fprintf fmt "key check k%s at %s: %s" cluster
        (Authz.Subject.name by)
        (if ok then "held" else "MISSING")
  | Fault_injected { what; subject; kind; step } ->
      Format.fprintf fmt "fault[%s] on %s at %s (step %d)" kind what subject
        step
  | Retry { what; attempt; backoff_ms } ->
      Format.fprintf fmt "retry %s: attempt %d failed, backing off %d ms" what
        attempt backoff_ms
  | Timeout { what; subject; waited_ms } ->
      Format.fprintf fmt "timeout on %s: no answer from %s within %d ms" what
        subject waited_ms
  | Failover_replanned { dead; excluded } ->
      Format.fprintf fmt "failover: %s declared dead, re-planned without {%s}"
        (Authz.Subject.name dead)
        (String.concat "," (List.map Authz.Subject.name excluded))
  | Degraded_abort { reason } -> Format.fprintf fmt "DEGRADED: %s" reason
