module C = Mpq_crypto

type t = { prf : C.Prf.t; rng : C.Prng.t }

let create ?(seed = 0xD15EA5EL) () =
  let rng = C.Prng.create seed in
  { prf = C.Prf.create (C.Prng.bytes rng 16); rng = C.Prng.split rng }

type sealed = {
  sender : string;
  recipient : string;
  ciphertext : string;
  signature : string;
}

exception Bad_envelope of string

let box_key t a b = C.Rnd.key_of_string (C.Prf.expand t.prf ("box:" ^ a ^ ":" ^ b) 16)
let sign_key t who = C.Prf.create (C.Prf.expand t.prf ("sig:" ^ who) 16)

let seal t ~sender ~recipient payload =
  let signature = C.Prf.mac_bytes (sign_key t sender) payload in
  let ciphertext = C.Rnd.encrypt (box_key t sender recipient) t.rng payload in
  { sender; recipient; ciphertext; signature }

let open_ t ~recipient sealed =
  if sealed.recipient <> recipient then
    raise (Bad_envelope "envelope addressed to a different subject");
  let payload =
    try C.Rnd.decrypt (box_key t sealed.sender recipient) sealed.ciphertext
    with Failure _ -> raise (Bad_envelope "decryption failure")
  in
  if
    not
      (String.equal
         (C.Prf.mac_bytes (sign_key t sealed.sender) payload)
         sealed.signature)
  then raise (Bad_envelope "signature verification failure");
  payload
