(** Distributed execution simulation.

    Drives a planned query the way the paper's deployment would: the user
    seals one request per fragment (Fig. 8) and sends it to the
    fragment's executor together with exactly the cluster keys that
    executor holds (Def. 6.1); executors evaluate their fragment, pulling
    operand relations from their callees; every data authority checks
    authorizations before releasing data across a subject boundary
    (Sec. 6), and each executor verifies it received the keys its
    encryption/decryption operations need. The whole exchange is traced
    for inspection and testing. *)


type event =
  | Request_sent of { name : string; to_ : Authz.Subject.t; keys : string list }
  | Request_opened of { name : string; by : Authz.Subject.t }
  | Data_transfer of {
      from_ : Authz.Subject.t;
      to_ : Authz.Subject.t;
      node_id : int;
      rows : int;
      bytes : int;
    }
  | Release_check of {
      by : Authz.Subject.t;
      for_ : Authz.Subject.t;
      node_id : int;
      ok : bool;
    }
  | Key_check of { by : Authz.Subject.t; cluster : string; ok : bool }

exception Distributed_violation of string

type outcome = { result : Engine.Table.t; trace : event list }

val execute :
  policy:Authz.Authorization.t ->
  pki:Pki.t ->
  keyring:Mpq_crypto.Keyring.t ->
  user:Authz.Subject.t ->
  tables:(string * Engine.Table.t) list ->
  ?udfs:(string * Engine.Exec.udf) list ->
  ?config:Authz.Opreq.config ->
  ?self_check:bool ->
  extended:Authz.Extend.t ->
  clusters:Authz.Plan_keys.cluster list ->
  unit ->
  outcome
(** Raises {!Distributed_violation} when a release check fails or an
    executor misses a key its fragment needs.

    Unless [self_check] is [false], the static verifier
    ([Verify.Verifier]) is run over the plan, clusters and requests
    before any request is sealed; an [Error]-severity finding raises
    {!Distributed_violation} with the rendered diagnostics. [config]
    (default [Authz.Opreq.default]) is the operation-requirement
    configuration the plan was built under — the verifier needs it to
    know which computations may legitimately run over ciphertext. *)

val pp_event : Format.formatter -> event -> unit
