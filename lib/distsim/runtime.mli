(** Distributed execution simulation with a supervised, fault-tolerant
    step machine.

    Drives a planned query the way the paper's deployment would: the user
    seals one request per fragment (Fig. 8) and sends it to the
    fragment's executor together with exactly the cluster keys that
    executor holds (Def. 6.1); executors evaluate their fragment, pulling
    operand relations from their callees; every data authority checks
    authorizations before releasing data across a subject boundary
    (Sec. 6), and each executor verifies it received the keys its
    encryption/decryption operations need. The whole exchange is traced
    for inspection and testing.

    Every network interaction (request dispatch, cross-boundary data
    transfer) runs under a retry policy against a {!Faults} plan:
    transient losses, corrupted payloads and timeouts are retried with
    exponential backoff and deterministic jitter; a subject that
    exhausts its retries is declared dead and, when a [replan] callback
    is provided, the query fails over to a fresh
    {!Planner.Optimizer.plan} that excludes every dead subject — gated
    by the same pre-dispatch static verification as the original plan.
    Authorization failures (release checks, key checks, pre-dispatch
    verification) are {e never} retried: they raise
    {!Distributed_violation} immediately. When no authorized
    alternative exists the run ends in a structured {!Degraded}
    status carrying the partial trace, not an exception. *)

type event =
  | Request_sent of { name : string; to_ : Authz.Subject.t; keys : string list }
  | Request_opened of { name : string; by : Authz.Subject.t }
  | Data_transfer of {
      from_ : Authz.Subject.t;
      to_ : Authz.Subject.t;
      node_id : int;
      rows : int;
      bytes : int;
    }
  | Release_check of {
      by : Authz.Subject.t;
      for_ : Authz.Subject.t;
      node_id : int;
      ok : bool;
    }
  | Key_check of { by : Authz.Subject.t; cluster : string; ok : bool }
  | Fault_injected of {
      what : string;  (** operation label, e.g. ["dispatch req_X"] *)
      subject : string;  (** blamed subject *)
      kind : string;  (** ["transient"], ["corrupt"], ["envelope"] *)
      step : int;  (** fault-plan step counter at injection *)
    }
  | Retry of { what : string; attempt : int; backoff_ms : int }
  | Timeout of { what : string; subject : string; waited_ms : int }
  | Failover_replanned of {
      dead : Authz.Subject.t;  (** subject just declared dead *)
      excluded : Authz.Subject.t list;  (** all dead subjects so far *)
    }
  | Degraded_abort of { reason : string }

exception Distributed_violation of string

type retry_policy = {
  max_retries : int;  (** retries after the first attempt *)
  base_backoff_ms : int;
      (** backoff before retry [n] is [base * 2^(n-1) + jitter],
          jitter uniform in [\[0, base)] from the fault plan's PRNG *)
  timeout_ms : int;  (** per-attempt simulated-clock timeout *)
}

val default_retry : retry_policy
(** 3 retries, 50 ms base backoff, 1000 ms timeout. *)

type degradation = { reason : string; dead : Authz.Subject.t list }

type status =
  | Completed of Engine.Table.t
  | Degraded of degradation
      (** The fault plan defeated every authorized alternative; the
          partial trace survives in the outcome. Never produced by an
          authorization failure — those raise
          {!Distributed_violation}. *)

type outcome = {
  status : status;
  trace : event list;
  clock_ms : int;  (** simulated time consumed, including backoffs *)
  replans : int;  (** failover re-plannings performed *)
}

val result : outcome -> Engine.Table.t
(** The completed result table; raises {!Distributed_violation} with
    the degradation reason on a [Degraded] outcome. *)

type replanner =
  exclude:Authz.Subject.Set.t ->
  (Authz.Extend.t * Authz.Plan_keys.cluster list) option
(** Produce a fresh extended plan avoiding every subject in [exclude],
    or [None] when no authorized alternative exists. *)

val optimizer_replanner :
  policy:Authz.Authorization.t ->
  subjects:Authz.Subject.t list ->
  ?config:Authz.Opreq.config ->
  ?deliver_to:Authz.Subject.t ->
  Relalg.Plan.t ->
  replanner
(** The standard replanner: re-run {!Planner.Optimizer.plan} over the
    original plan with the dead subjects removed from [subjects];
    [No_candidate] / [User_not_authorized] map to [None]. *)

val execute :
  policy:Authz.Authorization.t ->
  pki:Pki.t ->
  keyring:Mpq_crypto.Keyring.t ->
  user:Authz.Subject.t ->
  tables:(string * Engine.Table.t) list ->
  ?udfs:(string * Engine.Exec.udf) list ->
  ?config:Authz.Opreq.config ->
  ?self_check:bool ->
  ?faults:Faults.t ->
  ?retry:retry_policy ->
  ?replan:replanner ->
  ?pool:Par.pool ->
  extended:Authz.Extend.t ->
  clusters:Authz.Plan_keys.cluster list ->
  unit ->
  outcome
(** [pool] fans plan evaluation out across domains (independent sibling
    subplans run concurrently, operators chunk their rows — see
    {!Engine.Exec}); release checks, transfers and fault injection replay
    post-order on the calling domain, so the trace, the simulated clock
    and the injected-fault schedule are identical under any job count.

    Raises {!Distributed_violation} when a release check fails, an
    executor misses a key its fragment needs, or the pre-dispatch
    verification gate reports an error — immediately, without retry:
    an authorization denial must never be retried into success.

    Unless [self_check] is [false], the static verifier
    ([Verify.Verifier]) is run over the plan, clusters and requests
    before any request is sealed — and again over every failover
    re-planned extension; an [Error]-severity finding raises
    {!Distributed_violation} with the rendered diagnostics. [config]
    (default [Authz.Opreq.default]) is the operation-requirement
    configuration the plan was built under.

    [faults] (default {!Faults.none}) injects failures; [retry]
    (default {!default_retry}) bounds recovery; [replan] (default:
    none — a dead subject degrades the run) enables authorized
    failover. *)

val pp_event : Format.formatter -> event -> unit
