open Relalg
open Authz

let check ~(extended : Extend.t) ~derived ~paths =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  List.iter
    (fun n ->
      let id = Plan.id n in
      let path = Hashtbl.find_opt paths id in
      match
        (Hashtbl.find_opt extended.Extend.profiles id, Hashtbl.find_opt derived id)
      with
      | None, _ ->
          emit
            (Diag.makef ~node_id:id ?path ~code:"MPQ003" ~severity:Diag.Error
               ~suggestion:"re-run Extend.extend to annotate the plan"
               "%s carries no stored profile" (Plan.operator_name n))
      | Some stored, Some fresh when not (Profile.equal stored fresh) ->
          emit
            (Diag.makef ~node_id:id ?path ~code:"MPQ001" ~severity:Diag.Error
               "stored profile (%s) differs from the re-derived one (%s)"
               (Profile.to_string stored) (Profile.to_string fresh))
      | Some _, Some _ -> ()
      | Some _, None ->
          (* the derivation table covers every node of the plan it was
             built from; a hole means the stored plan and the verified
             plan diverged *)
          emit
            (Diag.makef ~node_id:id ?path ~code:"MPQ003" ~severity:Diag.Error
               "%s is unknown to the profile re-derivation"
               (Plan.operator_name n)))
    (Plan.nodes extended.Extend.plan);
  List.rev !diags
