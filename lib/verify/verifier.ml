open Relalg
open Authz

type input = {
  policy : Authorization.t;
  config : Opreq.config;
  extended : Extend.t;
  clusters : Plan_keys.cluster list;
  requests : Dispatch.request list;
}

type check = Profiles | Assignees | Minimality | Keys | Schemes | Dispatch

let all_checks = [ Profiles; Assignees; Minimality; Keys; Schemes; Dispatch ]

let make_input ~policy ~config ~original extended =
  let clusters = Plan_keys.compute ~config ~original extended in
  let requests = Dispatch.requests extended clusters in
  { policy; config; extended; clusters; requests }

let check_name = function
  | Profiles -> "profiles"
  | Assignees -> "assignees"
  | Minimality -> "minimality"
  | Keys -> "keys"
  | Schemes -> "schemes"
  | Dispatch -> "dispatch"

let run ?(checks = all_checks) input =
  Obs.with_span "verify.run" @@ fun () ->
  let { policy; config; extended; clusters; requests } = input in
  (* Diagnostics must be byte-stable across rebuilds of the same plan
     (the serving layer caches and replays them verbatim), but raw node
     ids come from a global allocation counter. Anchor every finding —
     node_id, path segments, ids embedded in message text — to the
     node's canonical preorder position instead
     ({!Relalg.Plan.preorder_positions}, the same numbering the
     executor's ciphertext randomness uses). *)
  let positions = Plan.preorder_positions extended.Extend.plan in
  let canon id = try Hashtbl.find positions id with Not_found -> id in
  let paths = Diag.path_table ~ids:canon extended.Extend.plan in
  let derived, derive_diags =
    Obs.with_span "verify.derive" (fun () ->
        Derive.lenient ~paths extended.Extend.plan)
  in
  let one check =
    Obs.with_span ("verify." ^ check_name check) @@ fun () ->
    match check with
    | Profiles ->
        derive_diags @ Check_profiles.check ~extended ~derived ~paths
    | Assignees -> Check_authz.check ~policy ~extended ~derived ~paths
    | Minimality -> Check_minimal.check ~policy ~extended ~paths
    | Keys -> Check_keys.distribution ~policy ~extended ~clusters ~paths
    | Schemes ->
        Check_keys.schemes ~config ~extended ~clusters ~derived ~paths
    | Dispatch ->
        Check_dispatch.check ~canon ~extended ~clusters ~requests ~paths ()
  in
  let canonicalize (d : Diag.t) =
    { d with Diag.node_id = Option.map canon d.Diag.node_id }
  in
  let diags =
    Diag.sort (List.map canonicalize (List.concat_map one checks))
  in
  Obs.incr ~by:(List.length diags) "verify.diagnostics";
  diags

let ok diags = not (Diag.has_errors diags)
let report = Diag.render
let report_json = Diag.report_json
