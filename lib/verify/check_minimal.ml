open Relalg
open Authz

(* Every executor authorized for operands and result under the profile
   table [derived]? Nodes without executors are V2's business — treat
   them as authorized here so one finding is not reported twice. *)
let still_authorized ~policy ~(extended : Extend.t) derived =
  let ok_node n =
    match Imap.find_opt (Plan.id n) extended.Extend.assignment with
    | None -> true
    | Some subject ->
        let view = Authorization.view policy subject in
        let ok_rel m =
          match Hashtbl.find_opt derived (Plan.id m) with
          | None -> true
          | Some p -> Check_authz.check_view view p = None
        in
        List.for_all ok_rel (Plan.children n) && ok_rel n
  in
  List.for_all ok_node (Plan.nodes extended.Extend.plan)

let check ~policy ~(extended : Extend.t) ~paths =
  let diags = ref [] in
  List.iter
    (fun n ->
      match Plan.node n with
      | Plan.Encrypt (attrs, _) ->
          let id = Plan.id n in
          Attr.Set.iter
            (fun a ->
              let removable =
                match Derive.strict ~drop:(id, a) extended.Extend.plan with
                | derived -> still_authorized ~policy ~extended derived
                | exception Derive.Not_derivable _ -> false
              in
              if removable then
                diags :=
                  Diag.makef ~node_id:id
                    ?path:(Hashtbl.find_opt paths id)
                    ~code:"MPQ020" ~severity:Diag.Warning
                    ~suggestion:
                      "drop the attribute from this encryption; every \
                       assignee stays authorized without it"
                    "encrypting %s here is unnecessary (Thm. 5.3 minimality)"
                    (Attr.name a)
                  :: !diags)
            attrs
      | _ -> ())
    (Plan.nodes extended.Extend.plan);
  List.rev !diags
