(** V3 — minimality of injected encryption (Thm. 5.3(ii)).

    For each attribute of each [Encrypt] node, simulate its removal
    (the attribute stays plaintext from that node on; later decryptions
    of it become no-ops) and re-derive all profiles. If the plan still
    satisfies every operator precondition and every executor remains
    authorized under Def. 4.1, that encryption was unnecessary —
    [MPQ020] (Warning: the plan is safe, just over-protective, which
    Thm. 5.3 says the extension procedure never produces). *)

open Authz

val check :
  policy:Authorization.t ->
  extended:Extend.t ->
  paths:(int, string) Hashtbl.t ->
  Diag.t list
