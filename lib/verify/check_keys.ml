open Relalg
open Authz
module Scheme = Mpq_crypto.Scheme

let find_cluster clusters a =
  List.find_opt
    (fun (c : Plan_keys.cluster) -> Attr.Set.mem a c.Plan_keys.attrs)
    clusters

(* Per-subject encryption/decryption duty over [attrs]: which of them
   the subject encrypts or decrypts somewhere in the plan, counting the
   at-rest encryption a base relation's authority provisioned. Keys are
   shared cluster-wide (compared attributes cannot use different keys),
   but each holder's plaintext-authorization obligation covers only the
   attributes it actually handles. *)
let duty_map (extended : Extend.t) attrs =
  let add subject s acc =
    let prev =
      Option.value ~default:Attr.Set.empty (Subject.Map.find_opt subject acc)
    in
    Subject.Map.add subject (Attr.Set.union prev s) acc
  in
  List.fold_left
    (fun acc n ->
      match Plan.node n with
      | Plan.Encrypt (s, _) | Plan.Decrypt (s, _) -> (
          let touched = Attr.Set.inter s attrs in
          if Attr.Set.is_empty touched then acc
          else
            match Imap.find_opt (Plan.id n) extended.Extend.assignment with
            | Some subject -> add subject touched acc
            | None -> acc)
      | Plan.Base sch ->
          let touched =
            Attr.Set.inter (Schema.stored_encrypted sch) attrs
          in
          if Attr.Set.is_empty touched then acc
          else add (Subject.authority sch.Schema.owner) touched acc
      | _ -> acc)
    Subject.Map.empty
    (Plan.nodes extended.Extend.plan)

let distribution ~policy ~(extended : Extend.t) ~clusters ~paths =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (* Def. 6.1: holders see the plaintext they handle; keys go only where
     an encryption or decryption needs them. *)
  List.iter
    (fun (c : Plan_keys.cluster) ->
      let duties = duty_map extended c.Plan_keys.attrs in
      Subject.Set.iter
        (fun holder ->
          match Subject.Map.find_opt holder duties with
          | None ->
              emit
                (Diag.makef ~code:"MPQ032" ~severity:Diag.Warning
                   ~suggestion:"restrict the key to encryption/decryption \
                                executors"
                   "key k%s is over-distributed: %s performs no \
                    encryption/decryption over %s"
                   c.Plan_keys.id (Subject.name holder)
                   (Attr.Set.to_string c.Plan_keys.attrs))
          | Some handled ->
              let view = Authorization.view policy holder in
              if not (Attr.Set.subset handled view.Authorization.plain) then
                emit
                  (Diag.makef ~code:"MPQ030" ~severity:Diag.Error
                     "%s holds key k%s but lacks plaintext authorization \
                      over %s, which it encrypts or decrypts"
                     (Subject.name holder) c.Plan_keys.id
                     (Attr.Set.to_string
                        (Attr.Set.diff handled view.Authorization.plain))))
        c.Plan_keys.holders;
      Subject.Map.iter
        (fun duty handled ->
          if not (Subject.Set.mem duty c.Plan_keys.holders) then
            emit
              (Diag.makef ~code:"MPQ031" ~severity:Diag.Error
                 "%s encrypts or decrypts %s but does not hold key k%s"
                 (Subject.name duty)
                 (Attr.Set.to_string handled)
                 c.Plan_keys.id))
        duties)
    clusters;
  (* Every attribute that is ever in encrypted form on the wire must
     have a key cluster. *)
  List.iter
    (fun n ->
      let cryptoset =
        match Plan.node n with
        | Plan.Encrypt (s, _) | Plan.Decrypt (s, _) -> s
        | Plan.Base sch -> Schema.stored_encrypted sch
        | _ -> Attr.Set.empty
      in
      Attr.Set.iter
        (fun a ->
          if find_cluster clusters a = None then
            emit
              (Diag.makef ~node_id:(Plan.id n)
                 ?path:(Hashtbl.find_opt paths (Plan.id n))
                 ~code:"MPQ033" ~severity:Diag.Error
                 "%s handles %s encrypted, but no key cluster covers it"
                 (Plan.operator_name n) (Attr.name a)))
        cryptoset)
    (Plan.nodes extended.Extend.plan);
  List.rev !diags

(* The verifier's own scan of what runs over ciphertext where: an
   operation demands a capability over an attribute exactly when it
   reads that attribute encrypted in its operand. *)
type demand = { attr : Attr.t; cap : Scheme.capability option; what : string }
(* [cap = None]: the computation has no supporting scheme at all
   (LIKE patterns, udfs not declared cipher-capable). *)

let cap_of_op = function
  | Predicate.Eq | Predicate.Neq -> Scheme.Cap_equality
  | Predicate.Lt | Predicate.Le | Predicate.Gt | Predicate.Ge ->
      Scheme.Cap_order

let node_demands ~config n =
  match Plan.node n with
  | Plan.Select (pred, _) | Plan.Join (pred, _, _) ->
      List.concat_map
        (fun atom ->
          match atom with
          | Predicate.Cmp_const (a, op, _) ->
              [ { attr = a; cap = Some (cap_of_op op); what = "comparison" } ]
          | Predicate.Cmp_attr (a, op, b) ->
              let cap = Some (cap_of_op op) in
              [ { attr = a; cap; what = "comparison" };
                { attr = b; cap; what = "comparison" } ]
          | Predicate.In_list (a, _) ->
              [ { attr = a; cap = Some Scheme.Cap_equality; what = "IN list" } ]
          | Predicate.Like (a, _) ->
              [ { attr = a; cap = None; what = "LIKE pattern" } ])
        (Predicate.atoms pred)
  | Plan.Group_by (keys, aggs, _) ->
      Attr.Set.fold
        (fun a acc ->
          { attr = a; cap = Some Scheme.Cap_equality; what = "grouping" }
          :: acc)
        keys []
      @ List.concat_map
          (fun (agg : Aggregate.t) ->
            match agg.Aggregate.func with
            | Aggregate.Sum a | Aggregate.Avg a ->
                [ { attr = a; cap = Some Scheme.Cap_addition;
                    what = "additive aggregate" } ]
            | Aggregate.Min a | Aggregate.Max a ->
                [ { attr = a; cap = Some Scheme.Cap_order;
                    what = "min/max aggregate" } ]
            | Aggregate.Count _ | Aggregate.Count_star -> [])
          aggs
  | Plan.Order_by (keys, _) ->
      List.map
        (fun (a, _) ->
          { attr = a; cap = Some Scheme.Cap_order; what = "sorting" })
        keys
  | Plan.Udf (name, inputs, _, _)
    when not (List.mem name config.Opreq.enc_capable_udfs) ->
      Attr.Set.fold
        (fun a acc -> { attr = a; cap = None; what = "udf " ^ name } :: acc)
        inputs []
  | _ -> []

let schemes ~config ~(extended : Extend.t) ~clusters ~derived ~paths =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  List.iter
    (fun n ->
      let operand_enc =
        List.fold_left
          (fun acc c ->
            match Hashtbl.find_opt derived (Plan.id c) with
            | Some p -> Attr.Set.union acc p.Profile.ve
            | None -> acc)
          Attr.Set.empty (Plan.children n)
      in
      List.iter
        (fun d ->
          if Attr.Set.mem d.attr operand_enc then
            let id = Plan.id n in
            let path = Hashtbl.find_opt paths id in
            match d.cap with
            | None ->
                emit
                  (Diag.makef ~node_id:id ?path ~code:"MPQ040"
                     ~severity:Diag.Error
                     ~suggestion:"decrypt the attribute first, or force it \
                                  plaintext in the operation requirements"
                     "%s over encrypted %s: no scheme supports it"
                     d.what (Attr.name d.attr))
            | Some cap -> (
                match find_cluster clusters d.attr with
                | None ->
                    ()
                    (* no cluster at all: already MPQ033 territory *)
                | Some c ->
                    if not (Scheme.supports c.Plan_keys.scheme cap) then
                      emit
                        (Diag.makef ~node_id:id ?path ~code:"MPQ040"
                           ~severity:Diag.Error
                           "%s over %s encrypted with %s, which does not \
                            support it"
                           d.what (Attr.name d.attr)
                           (Scheme.name c.Plan_keys.scheme))))
        (node_demands ~config n))
    (Plan.nodes extended.Extend.plan);
  List.rev !diags
