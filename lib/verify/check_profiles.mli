(** V1 — profile propagation (Def. 3.1, Fig. 2).

    Compares the profile stored on every extended-plan node against the
    verifier's independent re-derivation ({!Derive}): [MPQ001] on
    mismatch, [MPQ003] when a node carries no stored profile. The
    re-derivation's own precondition findings ([MPQ002]) are produced by
    {!Derive.lenient} and surfaced by the caller. *)

open Authz

val check :
  extended:Extend.t ->
  derived:(int, Profile.t) Hashtbl.t ->
  paths:(int, string) Hashtbl.t ->
  Diag.t list
