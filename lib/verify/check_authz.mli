(** V2 — authorized assignees (Defs. 4.1/4.2, Thm. 5.1).

    Re-checks, with the verifier's own reading of Def. 4.1, that every
    extended-plan node has an executor ([MPQ010]) authorized for each
    operand relation ([MPQ011]) and for the relation the node produces
    ([MPQ012]). Profiles come from the independent re-derivation, so a
    propagation bug cannot mask an authorization one. *)

open Relalg
open Authz

type violation =
  | Needs_plain of Attr.Set.t
      (** visible/implicit plaintext outside the subject's [P] *)
  | Needs_visibility of Attr.Set.t
      (** encrypted content outside [P ∪ E] *)
  | Split_class of Attr.Set.t
      (** an equivalence class not uniformly within [P] or within [E] *)

val check_view : Authorization.view -> Profile.t -> violation option
(** Def. 4.1 for one relation profile against a subject's view; [None]
    when authorized. *)

val describe_violation : violation -> string

val check :
  policy:Authorization.t ->
  extended:Extend.t ->
  derived:(int, Profile.t) Hashtbl.t ->
  paths:(int, string) Hashtbl.t ->
  Diag.t list
