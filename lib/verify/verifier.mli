(** Static plan verifier: re-derives every invariant of the
    multi-provider authorization model from first principles over a
    finished plan (extension + key clusters + dispatch requests) and
    reports structured {!Diag} findings.

    The verifier is pure and deterministic, and deliberately shares no
    derivation code with [Extend], the assignment search, or
    [Plan_keys]: each invariant is recomputed from the paper's
    definitions ({!Derive}, {!Check_profiles}, {!Check_authz},
    {!Check_minimal}, {!Check_keys}, {!Check_dispatch}), so a bug in the
    production pipeline cannot vouch for itself. *)

open Relalg
open Authz

type input = {
  policy : Authorization.t;
  config : Opreq.config;
  extended : Extend.t;
  clusters : Plan_keys.cluster list;
  requests : Dispatch.request list;
}

type check =
  | Profiles  (** V1 — Fig. 2 propagation re-derived (MPQ001–003) *)
  | Assignees  (** V2 — Def. 4.2 authorization (MPQ010–012) *)
  | Minimality  (** V3 — Thm. 5.3 minimal encryption (MPQ020) *)
  | Keys  (** V4 — Def. 6.1 key distribution (MPQ030–033) *)
  | Schemes  (** V5 — Sec. 6 scheme sufficiency (MPQ040) *)
  | Dispatch  (** V6 — Fig. 8 request well-formedness (MPQ050–055) *)

val all_checks : check list

val make_input :
  policy:Authorization.t ->
  config:Opreq.config ->
  original:Plan.t ->
  Extend.t ->
  input
(** Convenience: derive clusters and requests from the extended plan
    with the production pipeline, then verify those artifacts. *)

val run : ?checks:check list -> input -> Diag.t list
(** All findings of the selected checks (default: {!all_checks}),
    sorted. Derivation happens once and is shared. *)

val ok : Diag.t list -> bool
(** No [Error]-severity finding ([Warning]s allowed). *)

val report : Diag.t list -> string
(** {!Diag.render}. *)

val report_json : Diag.t list -> Json.t
