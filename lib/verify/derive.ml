open Relalg
open Authz

exception Not_derivable of int * string

let union = Attr.Set.union
let inter = Attr.Set.inter
let diff = Attr.Set.diff

type vis = Vplain | Venc | Vnone

let vis_of (p : Profile.t) a =
  if Attr.Set.mem a p.Profile.vp then Vplain
  else if Attr.Set.mem a p.Profile.ve then Venc
  else Vnone

(* One Fig. 2 atom: constant comparisons turn their attribute implicit in
   the form it is visible; attribute comparisons require uniform
   visibility and extend the equivalence closure. *)
let apply_atom ~(bad : string -> unit) (p : Profile.t) atom =
  let badf fmt = Format.kasprintf bad fmt in
  match atom with
  | Predicate.Cmp_const (a, _, _)
  | Predicate.In_list (a, _)
  | Predicate.Like (a, _) -> (
      match vis_of p a with
      | Vplain -> { p with Profile.ip = Attr.Set.add a p.Profile.ip }
      | Venc -> { p with Profile.ie = Attr.Set.add a p.Profile.ie }
      | Vnone ->
          badf "condition over %s, which is not visible in the operand"
            (Attr.name a);
          p)
  | Predicate.Cmp_attr (a, _, b) ->
      (match (vis_of p a, vis_of p b) with
      | Vplain, Vplain | Venc, Venc -> ()
      | Vnone, _ | _, Vnone ->
          badf "comparison %s/%s over a non-visible attribute" (Attr.name a)
            (Attr.name b)
      | _ ->
          badf "%s and %s are compared with non-uniform visibility"
            (Attr.name a) (Attr.name b));
      { p with Profile.eq = Partition.union_pair p.Profile.eq a b }

let product_of (l : Profile.t) (r : Profile.t) =
  { Profile.vp = union l.Profile.vp r.Profile.vp;
    ve = union l.Profile.ve r.Profile.ve;
    ip = union l.Profile.ip r.Profile.ip;
    ie = union l.Profile.ie r.Profile.ie;
    eq = Partition.merge l.Profile.eq r.Profile.eq }

(* Cross-plan derivation sharing. Keyed by structural fingerprint, a
   memo stores the full preorder profile vector of a subtree whose
   derivation raised no diagnostic; a later derivation of a
   structurally identical subtree — in another query of a serve batch,
   or the same shared DAG node reached again — replays the vector into
   its node-id table instead of re-running the Fig. 2 set computations.
   Only clean subtrees are stored: a diagnostic carries the node id of
   one specific plan and cannot be replayed onto another. *)
type memo = {
  fp : Plan.t -> string;
  profiles : (string, Profile.t array) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let memo ~fp () = { fp; profiles = Hashtbl.create 256; hits = 0; misses = 0 }
let memo_hits m = m.hits
let memo_clear m = Hashtbl.reset m.profiles

(* Preorder walk pairing each node of [plan] with an index into a
   profile vector — the same occurrence arithmetic Exec uses
   (Plan.child_positions), so vectors replay correctly even onto
   hash-consed DAG nodes reached from several parents. *)
let preorder_iter f plan =
  let rec go i n =
    f i n;
    List.iter (fun (c, j) -> go j c) (Plan.child_positions n i)
  in
  go 0 plan

(* Violating a precondition calls [bad]; either way only attributes in
   the expected state actually move, so continuing after a report stays
   well-defined. [drop] simulates removing one attribute from one Encrypt
   node (minimality probe): the attribute stays plaintext there and later
   decryptions of it become no-ops. [memo] is consulted/extended per
   subtree; sound only without [drop] (the lenient path). *)
let run ~(bad : int -> string -> unit) ?drop ?memo plan =
  let tbl = Hashtbl.create 64 in
  let dirty = ref 0 in
  let bad id m =
    incr dirty;
    bad id m
  in
  let dropped id =
    match drop with
    | Some (i, a) when i = id -> Attr.Set.singleton a
    | _ -> Attr.Set.empty
  in
  let check_visible ~op id p attrs =
    Attr.Set.iter
      (fun a ->
        if vis_of p a = Vnone then
          bad id
            (Printf.sprintf "%s reads %s, which is not visible in the operand"
               op (Attr.name a)))
      attrs
  in
  let rec go n =
    match memo with
    | None -> compute n
    | Some m -> (
        let key = m.fp n in
        match Hashtbl.find_opt m.profiles key with
        | Some arr ->
            m.hits <- m.hits + 1;
            preorder_iter
              (fun i node -> Hashtbl.replace tbl (Plan.id node) arr.(i))
              n;
            arr.(0)
        | None ->
            m.misses <- m.misses + 1;
            let before = !dirty in
            let p = compute n in
            (* store clean subtrees only: a diagnostic names one
               plan's node id and cannot replay onto another plan *)
            if !dirty = before then begin
              let arr = Array.make (Plan.size n) p in
              preorder_iter
                (fun i node -> arr.(i) <- Hashtbl.find tbl (Plan.id node))
                n;
              Hashtbl.replace m.profiles key arr
            end;
            p)
  and compute n =
    let children = List.map go (Plan.children n) in
    let id = Plan.id n in
    let badf fmt = Format.kasprintf (bad id) fmt in
    let p : Profile.t =
      match (Plan.node n, children) with
      | Plan.Base s, [] ->
          let at_rest = Schema.stored_encrypted s in
          { Profile.vp = diff (Schema.attrs s) at_rest;
            ve = at_rest;
            ip = Attr.Set.empty;
            ie = Attr.Set.empty;
            eq = Partition.empty }
      | Plan.Project (attrs, _), [ c ] ->
          { c with
            Profile.vp = inter c.Profile.vp attrs;
            ve = inter c.Profile.ve attrs }
      | Plan.Select (pred, _), [ c ] ->
          List.fold_left (apply_atom ~bad:(bad id)) c (Predicate.atoms pred)
      | Plan.Product _, [ l; r ] -> product_of l r
      | Plan.Join (pred, _, _), [ l; r ] ->
          List.fold_left
            (apply_atom ~bad:(bad id))
            (product_of l r)
            (Predicate.atoms pred)
      | Plan.Group_by (keys, aggs, _), [ c ] ->
          let operands =
            List.fold_left
              (fun acc (agg : Aggregate.t) ->
                match Aggregate.operand agg with
                | Some a -> Attr.Set.add a acc
                | None -> acc)
              Attr.Set.empty aggs
          in
          let kept = union keys operands in
          check_visible ~op:"group-by" id c kept;
          { c with
            Profile.vp = inter c.Profile.vp kept;
            ve = inter c.Profile.ve kept;
            ip = union c.Profile.ip (inter c.Profile.vp keys);
            ie = union c.Profile.ie (inter c.Profile.ve keys) }
      | Plan.Udf (_, inputs, output, _), [ c ] ->
          check_visible ~op:"udf" id c inputs;
          if
            not
              (Attr.Set.subset inputs c.Profile.vp
              || Attr.Set.subset inputs c.Profile.ve)
          then
            badf "udf inputs %s are not uniformly visible"
              (Attr.Set.to_string inputs);
          let gone = Attr.Set.remove output inputs in
          { c with
            Profile.vp = diff c.Profile.vp gone;
            ve = diff c.Profile.ve gone;
            eq = Partition.union_set c.Profile.eq inputs }
      | Plan.Order_by (keys, _), [ c ] ->
          let ks = Attr.Set.of_list (List.map fst keys) in
          check_visible ~op:"order-by" id c ks;
          { c with
            Profile.ip = union c.Profile.ip (inter c.Profile.vp ks);
            ie = union c.Profile.ie (inter c.Profile.ve ks) }
      | Plan.Limit _, [ c ] -> c
      | Plan.Encrypt (attrs, _), [ c ] ->
          let attrs = diff attrs (dropped id) in
          if not (Attr.Set.subset attrs c.Profile.vp) then
            badf "encrypt of %s, which is not visible plaintext"
              (Attr.Set.to_string (diff attrs c.Profile.vp));
          let moved = inter attrs (union c.Profile.vp c.Profile.ve) in
          { c with
            Profile.vp = diff c.Profile.vp attrs;
            ve = union c.Profile.ve moved }
      | Plan.Decrypt (attrs, _), [ c ] ->
          let must =
            match drop with
            | Some (_, a) -> Attr.Set.remove a attrs
            | None -> attrs
          in
          if not (Attr.Set.subset must c.Profile.ve) then
            badf "decrypt of %s, which is not visible encrypted"
              (Attr.Set.to_string (diff must c.Profile.ve));
          let moved = inter attrs c.Profile.ve in
          { c with
            Profile.vp = union c.Profile.vp moved;
            ve = diff c.Profile.ve moved }
      | _ ->
          badf "operator/operand arity mismatch";
          { Profile.vp = Attr.Set.empty;
            ve = Attr.Set.empty;
            ip = Attr.Set.empty;
            ie = Attr.Set.empty;
            eq = Partition.empty }
    in
    Hashtbl.replace tbl id p;
    p
  in
  ignore (go plan);
  tbl

let strict ?drop plan =
  let bad id m = raise (Not_derivable (id, m)) in
  run ~bad ?drop plan

let lenient ?paths ?memo plan =
  let diags = ref [] in
  let bad id m =
    let path = Option.bind paths (fun t -> Hashtbl.find_opt t id) in
    diags :=
      Diag.make ~node_id:id ?path ~code:"MPQ002" ~severity:Diag.Error m
      :: !diags
  in
  let tbl = run ~bad ?memo plan in
  (tbl, List.rev !diags)
