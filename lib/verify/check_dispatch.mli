(** V6 — sub-query dispatch well-formedness (Sec. 6, Fig. 8).

    Recomputes the single-executor fragments of the extended plan with
    its own walk and checks the request list against them: fragments and
    requests correspond one-to-one ([MPQ055]) with matching subjects
    ([MPQ053]); every [⟦req_...⟧] reference in an expression — and every
    declared call — resolves to a request ([MPQ050]); the call graph is
    acyclic ([MPQ051]) and listed in dependency order, callees before
    callers ([MPQ052]); each request ships exactly the key clusters its
    fragment's encryption/decryption operations touch ([MPQ054]). *)

open Authz

val references : string -> string list
(** The [⟦name⟧] references embedded in an algebra expression, in
    order of appearance. *)

val check :
  ?canon:(int -> int) ->
  extended:Extend.t ->
  clusters:Plan_keys.cluster list ->
  requests:Dispatch.request list ->
  paths:(int, string) Hashtbl.t ->
  unit ->
  Diag.t list
(** [canon] (default: identity) renders the node ids MPQ055 messages
    embed; the verifier passes the canonical preorder numbering so
    message text is stable across rebuilds of the same plan. *)
