(** Structured diagnostics for the static plan verifier.

    Every invariant violation the verifier can report carries a stable
    code ([MPQ001]–[MPQ055]), a severity, the offending extended-plan
    node (id and root-to-node path) when one exists, a human-readable
    message, and an optional suggested fix. Diagnostics render both as
    text (one finding per block) and as JSON for external tooling. *)

open Relalg

type severity = Error | Warning

type t = {
  code : string;  (** stable identifier, e.g. ["MPQ011"] *)
  severity : severity;
  node_id : int option;  (** extended-plan node the finding anchors to *)
  path : string option;  (** root-to-node operator path, e.g. ["join#7/encrypt#12"] *)
  message : string;
  suggestion : string option;  (** optional remediation hint *)
}

val make :
  ?node_id:int ->
  ?path:string ->
  ?suggestion:string ->
  code:string ->
  severity:severity ->
  string ->
  t

val makef :
  ?node_id:int ->
  ?path:string ->
  ?suggestion:string ->
  code:string ->
  severity:severity ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [makef ... fmt ...] is {!make} over a format string. *)

val catalog : (string * severity * string) list
(** Every code the verifier can emit: (code, default severity, invariant
    checked — with the paper reference). The source of the documentation
    table in README.md. *)

val describe : string -> string option
(** Invariant summary for a code, if known. *)

(** {1 Triage} *)

val errors : t list -> t list
val warnings : t list -> t list
val has_errors : t list -> bool

val compare : t -> t -> int
(** Order by code, then node id, then message (stable rendering). *)

val sort : t list -> t list

(** {1 Rendering} *)

val pp : Format.formatter -> t -> unit

val render : t list -> string
(** Text report: one block per finding plus a summary line
    ("N errors, M warnings" or "clean"). *)

val to_json : t -> Json.t
val report_json : t list -> Json.t
(** [{ "ok": bool, "errors": n, "warnings": m, "diagnostics": [...] }] *)

val path_table : ?ids:(int -> int) -> Plan.t -> (int, string) Hashtbl.t
(** Root-to-node paths ("operator#id" segments joined by [/]) for every
    node of a plan — the [path] component of node-anchored diagnostics.
    The table stays keyed by allocation id; [ids] (default: identity)
    renders each segment's displayed number, so the verifier passes the
    canonical preorder numbering ({!Relalg.Plan.preorder_positions}) to
    keep rendered paths stable across rebuilds of the same plan. *)
