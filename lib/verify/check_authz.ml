open Relalg
open Authz

type violation =
  | Needs_plain of Attr.Set.t
  | Needs_visibility of Attr.Set.t
  | Split_class of Attr.Set.t

(* Def. 4.1, re-read from the paper rather than calling [Authorized]:
   (1) everything the subject sees or infers in plaintext lies in P;
   (2) everything it sees or infers at all lies in P ∪ E;
   (3) no equivalence class straddles the P/E boundary (uniform
   visibility, or the subject could correlate plaintext with
   ciphertext). *)
let check_view (view : Authorization.view) (p : Profile.t) =
  let plain = view.Authorization.plain and enc = view.Authorization.enc in
  let plaintext = Attr.Set.union p.Profile.vp p.Profile.ip in
  let anything = Attr.Set.union p.Profile.ve p.Profile.ie in
  if not (Attr.Set.subset plaintext plain) then
    Some (Needs_plain (Attr.Set.diff plaintext plain))
  else if not (Attr.Set.subset anything (Attr.Set.union plain enc)) then
    Some (Needs_visibility (Attr.Set.diff anything (Attr.Set.union plain enc)))
  else
    List.find_map
      (fun cls ->
        if Attr.Set.subset cls plain || Attr.Set.subset cls enc then None
        else Some (Split_class cls))
      (Partition.sets p.Profile.eq)

let describe_violation = function
  | Needs_plain s ->
      Printf.sprintf "requires plaintext visibility of %s"
        (Attr.Set.to_string s)
  | Needs_visibility s ->
      Printf.sprintf "requires visibility of %s" (Attr.Set.to_string s)
  | Split_class s ->
      Printf.sprintf "sees equivalence class %s with non-uniform visibility"
        (Attr.Set.to_string s)

let check ~policy ~(extended : Extend.t) ~derived ~paths =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let views = Hashtbl.create 8 in
  let view_of s =
    match Hashtbl.find_opt views s with
    | Some v -> v
    | None ->
        let v = Authorization.view policy s in
        Hashtbl.replace views s v;
        v
  in
  List.iter
    (fun n ->
      let id = Plan.id n in
      let path = Hashtbl.find_opt paths id in
      match Imap.find_opt id extended.Extend.assignment with
      | None ->
          emit
            (Diag.makef ~node_id:id ?path ~code:"MPQ010" ~severity:Diag.Error
               "%s has no executor" (Plan.operator_name n))
      | Some subject ->
          let view = view_of subject in
          let against code rel p =
            match check_view view p with
            | None -> ()
            | Some v ->
                emit
                  (Diag.makef ~node_id:id ?path ~code ~severity:Diag.Error
                     "%s, executed by %s, %s over its %s relation"
                     (Plan.operator_name n) (Subject.name subject)
                     (describe_violation v) rel)
          in
          List.iter
            (fun c ->
              match Hashtbl.find_opt derived (Plan.id c) with
              | Some p -> against "MPQ011" "operand" p
              | None -> () (* reported as MPQ003 by the profile check *))
            (Plan.children n);
          (match Hashtbl.find_opt derived id with
          | Some p -> against "MPQ012" "result" p
          | None -> ()))
    (Plan.nodes extended.Extend.plan);
  List.rev !diags
