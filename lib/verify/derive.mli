(** Independent re-derivation of relation profiles (Def. 3.1, Fig. 2).

    This is the verifier's own implementation of the profile propagation
    rules, written from the paper and deliberately sharing no derivation
    code with [Authz.Profile.of_node] (or with [Extend]): a bug in the
    production propagation cannot hide from the checker by also living in
    it. Profiles are re-built bottom-up by direct record construction;
    only the plain data structures ([Profile.t], [Partition.t]) are
    shared. *)

open Relalg
open Authz

exception Not_derivable of int * string
(** Raised by {!strict} when an operator's precondition fails: node id
    and reason. *)

val strict : ?drop:int * Attr.t -> Plan.t -> (int, Profile.t) Hashtbl.t
(** Re-derive the profile of every node. [drop (id, a)] simulates the
    removal of attribute [a] from the [Encrypt] node [id] — used by the
    minimality checker: downstream decryptions of [a] become no-ops, and
    every other precondition stays strict. Raises {!Not_derivable}. *)

type memo
(** Cross-plan derivation sharing: a table of preorder profile vectors
    keyed by structural fingerprint. Two structurally identical
    subtrees — across the queries of a serve batch, or a hash-consed
    DAG node reached from several parents — derive identical profiles,
    so the second derivation replays the stored vector instead of
    re-running the Fig. 2 set computations. Only subtrees whose
    derivation raised no diagnostic are stored (a diagnostic names one
    plan's node id and does not transfer). Not synchronized: share a
    memo only among derivations run on one domain at a time. *)

val memo : fp:(Plan.t -> string) -> unit -> memo
(** [fp] must be a {e collision-free} structural fingerprint
    ({!Planner.Fingerprint.of_plan} or an equivalent memoized form):
    profile replay trusts it completely. *)

val memo_hits : memo -> int
(** Subtree derivations answered from the memo (tests/bench). *)

val memo_clear : memo -> unit

val lenient :
  ?paths:(int, string) Hashtbl.t ->
  ?memo:memo ->
  Plan.t ->
  (int, Profile.t) Hashtbl.t * Diag.t list
(** Like {!strict} without [drop], but precondition violations are
    reported as [MPQ002] diagnostics and propagation continues on a
    best-effort profile (non-visible operands are skipped, crypto
    operations move only the attributes actually in the expected
    state). With [?memo], clean subtree derivations are shared across
    calls (byte-identical profiles either way). *)
