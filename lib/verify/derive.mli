(** Independent re-derivation of relation profiles (Def. 3.1, Fig. 2).

    This is the verifier's own implementation of the profile propagation
    rules, written from the paper and deliberately sharing no derivation
    code with [Authz.Profile.of_node] (or with [Extend]): a bug in the
    production propagation cannot hide from the checker by also living in
    it. Profiles are re-built bottom-up by direct record construction;
    only the plain data structures ([Profile.t], [Partition.t]) are
    shared. *)

open Relalg
open Authz

exception Not_derivable of int * string
(** Raised by {!strict} when an operator's precondition fails: node id
    and reason. *)

val strict : ?drop:int * Attr.t -> Plan.t -> (int, Profile.t) Hashtbl.t
(** Re-derive the profile of every node. [drop (id, a)] simulates the
    removal of attribute [a] from the [Encrypt] node [id] — used by the
    minimality checker: downstream decryptions of [a] become no-ops, and
    every other precondition stays strict. Raises {!Not_derivable}. *)

val lenient :
  ?paths:(int, string) Hashtbl.t ->
  Plan.t ->
  (int, Profile.t) Hashtbl.t * Diag.t list
(** Like {!strict} without [drop], but precondition violations are
    reported as [MPQ002] diagnostics and propagation continues on a
    best-effort profile (non-visible operands are skipped, crypto
    operations move only the attributes actually in the expected
    state). *)
