open Relalg
open Authz

let lbracket = "\xe2\x9f\xa6" (* ⟦ *)
let rbracket = "\xe2\x9f\xa7" (* ⟧ *)

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go from

let references expr =
  let rec go from acc =
    match find_sub expr lbracket from with
    | None -> List.rev acc
    | Some i -> (
        let start = i + String.length lbracket in
        match find_sub expr rbracket start with
        | None -> List.rev acc
        | Some j ->
            go (j + String.length rbracket)
              (String.sub expr start (j - start) :: acc))
  in
  go 0 []

(* The verifier's own fragment computation: the root and every node
   whose executor differs from its parent's start a fragment; a fragment
   is its root's subtree up to (excluding) foreign fragment roots. *)
let fragment_roots (extended : Extend.t) =
  let executor n = Imap.find_opt (Plan.id n) extended.Extend.assignment in
  let roots = ref [] in
  let rec go parent_exec n =
    let e = executor n in
    (match (e, parent_exec) with
    | Some s, Some p when Subject.equal s p -> ()
    | Some s, _ -> roots := (Plan.id n, s) :: !roots
    | None, _ -> () (* MPQ010 territory *));
    List.iter (go e) (Plan.children n)
  in
  go None extended.Extend.plan;
  List.rev !roots

let fragment_nodes (extended : Extend.t) root_set root_id =
  match Plan.find extended.Extend.plan root_id with
  | None -> []
  | Some root ->
      let rec collect ~top n acc =
        if (not top) && List.mem_assoc (Plan.id n) root_set then acc
        else
          List.fold_left
            (fun acc c -> collect ~top:false c acc)
            (n :: acc) (Plan.children n)
      in
      collect ~top:true root []

let check ?(canon = fun id -> id) ~(extended : Extend.t) ~clusters
    ~(requests : Dispatch.request list) ~paths () =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let roots = fragment_roots extended in
  (* One-to-one correspondence between fragments and requests. *)
  let req_of_root id =
    List.find_opt (fun (r : Dispatch.request) -> r.Dispatch.root_id = id)
      requests
  in
  List.iter
    (fun (id, subject) ->
      match req_of_root id with
      | None ->
          emit
            (Diag.makef ~node_id:id ?path:(Hashtbl.find_opt paths id)
               ~code:"MPQ055" ~severity:Diag.Error
               "fragment rooted at node %d (executor %s) has no dispatch \
                request"
               (canon id) (Subject.name subject))
      | Some r ->
          if not (Subject.equal r.Dispatch.subject subject) then
            emit
              (Diag.makef ~node_id:id ?path:(Hashtbl.find_opt paths id)
                 ~code:"MPQ053" ~severity:Diag.Error
                 "request %s is addressed to %s but its fragment's \
                  executor is %s"
                 r.Dispatch.name
                 (Subject.name r.Dispatch.subject)
                 (Subject.name subject)))
    roots;
  List.iter
    (fun (r : Dispatch.request) ->
      if not (List.mem_assoc r.Dispatch.root_id roots) then
        emit
          (Diag.makef ~node_id:r.Dispatch.root_id ~code:"MPQ055"
             ~severity:Diag.Error
             "request %s claims fragment root %d, which roots no fragment"
             r.Dispatch.name (canon r.Dispatch.root_id)))
    requests;
  let names = List.map (fun (r : Dispatch.request) -> r.Dispatch.name) requests in
  let dup =
    List.filter
      (fun n -> List.length (List.filter (String.equal n) names) > 1)
      names
    |> List.sort_uniq String.compare
  in
  List.iter
    (fun n ->
      emit
        (Diag.makef ~code:"MPQ055" ~severity:Diag.Error
           "request name %s is used by several requests" n))
    dup;
  (* Reference resolution: declared calls and embedded ⟦...⟧ marks. *)
  let known n = List.mem n names in
  List.iter
    (fun (r : Dispatch.request) ->
      let refs = references r.Dispatch.expression in
      List.iter
        (fun callee ->
          if not (known callee) then
            emit
              (Diag.makef ~code:"MPQ050" ~severity:Diag.Error
                 "request %s references unknown sub-query %s"
                 r.Dispatch.name callee))
        (List.sort_uniq String.compare (refs @ r.Dispatch.calls));
      let refset = List.sort_uniq String.compare refs in
      let callset = List.sort_uniq String.compare r.Dispatch.calls in
      if refset <> callset then
        emit
          (Diag.makef ~code:"MPQ050" ~severity:Diag.Error
             "request %s declares calls {%s} but its expression references \
              {%s}"
             r.Dispatch.name
             (String.concat "," callset)
             (String.concat "," refset)))
    requests;
  (* Dependency order and acyclicity over the declared call graph. *)
  let index =
    List.mapi (fun i (r : Dispatch.request) -> (r.Dispatch.name, i)) requests
  in
  List.iteri
    (fun i (r : Dispatch.request) ->
      List.iter
        (fun callee ->
          match List.assoc_opt callee index with
          | Some j when j >= i ->
              emit
                (Diag.makef ~code:"MPQ052" ~severity:Diag.Error
                   "request %s calls %s, which is not listed before it"
                   r.Dispatch.name callee)
          | _ -> ())
        r.Dispatch.calls)
    requests;
  let rec cyclic seen name =
    if List.mem name seen then true
    else
      match
        List.find_opt
          (fun (r : Dispatch.request) -> String.equal r.Dispatch.name name)
          requests
      with
      | None -> false
      | Some r ->
          List.exists (cyclic (name :: seen)) r.Dispatch.calls
  in
  List.iter
    (fun (r : Dispatch.request) ->
      if List.exists (cyclic [ r.Dispatch.name ]) r.Dispatch.calls then
        emit
          (Diag.makef ~code:"MPQ051" ~severity:Diag.Error
             "request %s participates in a call cycle" r.Dispatch.name))
    requests;
  (* Key completeness: a request ships exactly the clusters its
     fragment's encryption/decryption operations touch. *)
  List.iter
    (fun (r : Dispatch.request) ->
      if List.mem_assoc r.Dispatch.root_id roots then begin
        let nodes = fragment_nodes extended roots r.Dispatch.root_id in
        let touched =
          List.fold_left
            (fun acc n ->
              match Plan.node n with
              | Plan.Encrypt (s, _) | Plan.Decrypt (s, _) ->
                  Attr.Set.union acc s
              | _ -> acc)
            Attr.Set.empty nodes
        in
        let needed =
          List.filter_map
            (fun (c : Plan_keys.cluster) ->
              if Attr.Set.is_empty (Attr.Set.inter touched c.Plan_keys.attrs)
              then None
              else Some c.Plan_keys.id)
            clusters
          |> List.sort_uniq String.compare
        in
        let held = List.sort_uniq String.compare r.Dispatch.key_clusters in
        let missing = List.filter (fun k -> not (List.mem k held)) needed in
        let extra = List.filter (fun k -> not (List.mem k needed)) held in
        List.iter
          (fun k ->
            emit
              (Diag.makef ~node_id:r.Dispatch.root_id ~code:"MPQ054"
                 ~severity:Diag.Error
                 "request %s needs key k%s for its encryption/decryption \
                  operations but does not carry it"
                 r.Dispatch.name k))
          missing;
        List.iter
          (fun k ->
            emit
              (Diag.makef ~node_id:r.Dispatch.root_id ~code:"MPQ054"
                 ~severity:Diag.Error
                 "request %s carries key k%s, which none of its \
                  encryption/decryption operations needs"
                 r.Dispatch.name k))
          extra
      end)
    requests;
  List.rev !diags
