open Relalg

type severity = Error | Warning

type t = {
  code : string;
  severity : severity;
  node_id : int option;
  path : string option;
  message : string;
  suggestion : string option;
}

let make ?node_id ?path ?suggestion ~code ~severity message =
  { code; severity; node_id; path; message; suggestion }

let makef ?node_id ?path ?suggestion ~code ~severity fmt =
  Format.kasprintf (make ?node_id ?path ?suggestion ~code ~severity) fmt

let catalog =
  [ ("MPQ001", Error,
     "re-derived node profile differs from the stored one (Def. 3.1, Fig. 2)");
    ("MPQ002", Error,
     "operator precondition violated: operand not visible or compared \
      attributes not uniformly visible (Sec. 3.2)");
    ("MPQ003", Error, "extended-plan node carries no stored profile");
    ("MPQ010", Error, "extended-plan node has no executor (Def. 4.2)");
    ("MPQ011", Error,
     "executor is not authorized for an operand relation (Defs. 4.1/4.2, \
      Thm. 5.1)");
    ("MPQ012", Error,
     "executor is not authorized for the relation it produces (Defs. \
      4.1/4.2, Thm. 5.1)");
    ("MPQ020", Warning,
     "injected encryption is unnecessary: removing it leaves every node \
      authorized (Thm. 5.3 minimality)");
    ("MPQ030", Error,
     "key holder lacks plaintext authorization over the cluster's \
      attributes (Def. 6.1)");
    ("MPQ031", Error,
     "encryption/decryption executor does not hold the cluster key it \
      needs (Def. 6.1)");
    ("MPQ032", Warning,
     "key over-distributed: holder performs no encryption/decryption over \
      the cluster (Def. 6.1 least privilege)");
    ("MPQ033", Error,
     "encrypted attribute belongs to no key cluster (Def. 6.1)");
    ("MPQ040", Error,
     "operation computes on ciphertext its cluster's scheme does not \
      support (Sec. 6)");
    ("MPQ050", Error,
     "dispatch request references an unknown sub-query (Fig. 8)");
    ("MPQ051", Error, "dispatch fragment call graph is cyclic (Fig. 8)");
    ("MPQ052", Error,
     "dispatch callee appears after its caller (dependency order, Fig. 8)");
    ("MPQ053", Error,
     "dispatch request subject differs from the fragment root's executor");
    ("MPQ054", Error,
     "dispatch request key set inconsistent with its fragment's \
      encryption/decryption needs (Def. 6.1)");
    ("MPQ055", Error,
     "fragments and dispatch requests do not match one-to-one (Fig. 8)") ]

let describe code =
  List.find_map
    (fun (c, _, d) -> if String.equal c code then Some d else None)
    catalog

let errors = List.filter (fun d -> d.severity = Error)
let warnings = List.filter (fun d -> d.severity = Warning)
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let compare a b =
  match String.compare a.code b.code with
  | 0 -> (
      match Option.compare Int.compare a.node_id b.node_id with
      | 0 -> String.compare a.message b.message
      | c -> c)
  | c -> c

let sort ds = List.sort compare ds

let severity_name = function Error -> "error" | Warning -> "warning"

let pp fmt d =
  Format.fprintf fmt "%s %s" d.code (severity_name d.severity);
  (match d.node_id with
  | Some id -> Format.fprintf fmt " [node %d]" id
  | None -> ());
  Format.fprintf fmt ": %s" d.message;
  (match d.path with
  | Some p -> Format.fprintf fmt "@\n    at %s" p
  | None -> ());
  match d.suggestion with
  | Some s -> Format.fprintf fmt "@\n    hint: %s" s
  | None -> ()

let render ds =
  let buf = Buffer.create 256 in
  List.iter
    (fun d -> Buffer.add_string buf (Format.asprintf "%a@." pp d))
    (sort ds);
  let e = List.length (errors ds) and w = List.length (warnings ds) in
  if e = 0 && w = 0 then Buffer.add_string buf "clean: no findings\n"
  else
    Buffer.add_string buf
      (Printf.sprintf "%d error%s, %d warning%s\n" e
         (if e = 1 then "" else "s")
         w
         (if w = 1 then "" else "s"));
  Buffer.contents buf

let to_json d =
  let opt f = function Some v -> f v | None -> Json.Null in
  Json.Obj
    [ ("code", Json.String d.code);
      ("severity", Json.String (severity_name d.severity));
      ("node", opt (fun i -> Json.Int i) d.node_id);
      ("path", opt (fun p -> Json.String p) d.path);
      ("message", Json.String d.message);
      ("suggestion", opt (fun s -> Json.String s) d.suggestion) ]

let report_json ds =
  let ds = sort ds in
  Json.Obj
    [ ("ok", Json.Bool (not (has_errors ds)));
      ("errors", Json.Int (List.length (errors ds)));
      ("warnings", Json.Int (List.length (warnings ds)));
      ("diagnostics", Json.List (List.map to_json ds)) ]

let path_table ?(ids = fun id -> id) plan =
  let tbl = Hashtbl.create 64 in
  let rec go prefix n =
    let seg =
      Printf.sprintf "%s#%d" (Plan.operator_name n) (ids (Plan.id n))
    in
    let path = if prefix = "" then seg else prefix ^ "/" ^ seg in
    Hashtbl.replace tbl (Plan.id n) path;
    List.iter (go path) (Plan.children n)
  in
  go "" plan;
  tbl
