(** V4/V5 — query-plan keys (Def. 6.1) and scheme sufficiency (Sec. 6).

    [distribution] re-checks the key-distribution invariants: every
    holder of a cluster key is plaintext-authorized for the cluster's
    attributes ([MPQ030]); every encryption/decryption executor — and
    the authority provisioning at-rest encryption — holds the keys it
    needs ([MPQ031]); no key reaches a subject with no
    encryption/decryption duty over it ([MPQ032], Warning); every
    attribute that is ever encrypted belongs to a cluster ([MPQ033]).

    [schemes] re-extracts, with its own scan, the computations each node
    runs over ciphertext and checks the owning cluster's scheme supports
    them ([MPQ040]): equality tests need Det or Ope, order tests Ope,
    additive aggregation Phe, LIKE patterns and non-capable udfs nothing
    at all. *)

open Relalg
open Authz

val duty_map : Extend.t -> Attr.Set.t -> Attr.Set.t Subject.Map.t
(** Per-subject encryption/decryption duty over the given attributes:
    which of them each subject encrypts or decrypts somewhere in the
    plan (including the at-rest encryption a base relation's authority
    provisioned). The key-distribution check consults exactly
    [view(holder).plain ⊇ duty]; the dependency analysis
    ([Analysis.Deps]) re-reads the same map to know which plaintext
    facts that consultation touched. *)

val distribution :
  policy:Authorization.t ->
  extended:Extend.t ->
  clusters:Plan_keys.cluster list ->
  paths:(int, string) Hashtbl.t ->
  Diag.t list

val schemes :
  config:Opreq.config ->
  extended:Extend.t ->
  clusters:Plan_keys.cluster list ->
  derived:(int, Authz.Profile.t) Hashtbl.t ->
  paths:(int, string) Hashtbl.t ->
  Diag.t list
