open Relalg

(* --- selection pushdown ----------------------------------------------- *)

let clause_attrs clause =
  Attr.Set.of_list
    (List.concat_map
       (function
         | Predicate.Cmp_const (a, _, _)
         | Predicate.In_list (a, _)
         | Predicate.Like (a, _) ->
             [ a ]
         | Predicate.Cmp_attr (a, _, b) -> [ a; b ])
       clause)

(* push the clauses of [pending] as deep as possible over [plan] *)
let rec push pending plan =
  let wrap clauses node =
    match clauses with [] -> node | _ -> Plan.select clauses node
  in
  match Plan.node plan with
  | Plan.Select (pred, c) -> push (pending @ pred) c
  | Plan.Project (a, c) ->
      let inside, outside =
        List.partition (fun cl -> Attr.Set.subset (clause_attrs cl) a) pending
      in
      (* clauses over projected-away attributes cannot exist (they came
         from selections above the projection), but keep the guard *)
      wrap outside (Plan.project a (push inside c))
  | Plan.Join (pred, l, r) ->
      let ls = Plan.schema l and rs = Plan.schema r in
      let to_l, rest =
        List.partition (fun cl -> Attr.Set.subset (clause_attrs cl) ls) pending
      in
      let to_r, keep =
        List.partition (fun cl -> Attr.Set.subset (clause_attrs cl) rs) rest
      in
      wrap keep (Plan.join pred (push to_l l) (push to_r r))
  | Plan.Product (l, r) ->
      let ls = Plan.schema l and rs = Plan.schema r in
      let to_l, rest =
        List.partition (fun cl -> Attr.Set.subset (clause_attrs cl) ls) pending
      in
      let to_r, keep =
        List.partition (fun cl -> Attr.Set.subset (clause_attrs cl) rs) rest
      in
      wrap keep (Plan.product (push to_l l) (push to_r r))
  | Plan.Base s -> wrap pending (Plan.base s)
  | Plan.Group_by (k, ag, c) ->
      (* selections over group keys could commute, but a clause over an
         aggregate output cannot; stay conservative *)
      wrap pending (Plan.group_by k ag (push [] c))
  | Plan.Udf (n, i, o, c) -> wrap pending (Plan.udf n i o (push [] c))
  | Plan.Order_by (k, c) ->
      (* selection commutes with sorting *)
      Plan.order_by k (push pending c)
  | Plan.Limit (n, c) -> wrap pending (Plan.limit n (push [] c))
  | Plan.Encrypt (a, c) -> wrap pending (Plan.encrypt a (push [] c))
  | Plan.Decrypt (a, c) -> wrap pending (Plan.decrypt a (push [] c))

let push_selections plan = push [] plan

(* --- projection pruning ------------------------------------------------ *)

let rec prune needed plan =
  let needed = Attr.Set.inter needed (Plan.schema plan) in
  let needed =
    (* never produce an empty relation schema *)
    if Attr.Set.is_empty needed then
      Attr.Set.singleton (Attr.Set.min_elt (Plan.schema plan))
    else needed
  in
  match Plan.node plan with
  | Plan.Base s ->
      if Attr.Set.equal needed (Schema.attrs s) then Plan.base s
      else Plan.project needed (Plan.base s)
  | Plan.Project (_, c) ->
      (* collapse: the narrower requirement wins *)
      let c' = prune needed c in
      if Attr.Set.equal (Plan.schema c') needed then c'
      else Plan.project needed c'
  | Plan.Select (p, c) ->
      Plan.select p (prune (Attr.Set.union needed (Predicate.attrs p)) c)
  | Plan.Join (p, l, r) ->
      let want = Attr.Set.union needed (Predicate.attrs p) in
      Plan.join p
        (prune (Attr.Set.inter want (Plan.schema l)) l)
        (prune (Attr.Set.inter want (Plan.schema r)) r)
  | Plan.Product (l, r) ->
      Plan.product
        (prune (Attr.Set.inter needed (Plan.schema l)) l)
        (prune (Attr.Set.inter needed (Plan.schema r)) r)
  | Plan.Group_by (keys, aggs, c) ->
      let operands =
        List.fold_left
          (fun acc (agg : Aggregate.t) ->
            match Aggregate.operand agg with
            | Some a -> Attr.Set.add a acc
            | None -> acc)
          Attr.Set.empty aggs
      in
      Plan.group_by keys aggs (prune (Attr.Set.union keys operands) c)
  | Plan.Udf (n, i, o, c) ->
      let pass_through = Attr.Set.diff needed (Attr.Set.singleton o) in
      Plan.udf n i o (prune (Attr.Set.union pass_through i) c)
  | Plan.Order_by (k, c) ->
      let keys = Attr.Set.of_list (List.map fst k) in
      Plan.order_by k (prune (Attr.Set.union needed keys) c)
  | Plan.Limit (n, c) -> Plan.limit n (prune needed c)
  | Plan.Encrypt (a, c) ->
      Plan.encrypt a (prune (Attr.Set.union needed a) c)
  | Plan.Decrypt (a, c) ->
      Plan.decrypt a (prune (Attr.Set.union needed a) c)

let prune_projections plan = prune (Plan.schema plan) plan
let normalize plan = prune_projections (push_selections plan)
