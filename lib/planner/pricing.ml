type rates = {
  cpu_per_min : float;
  io_per_gb : float;
  net_out_per_gb : float;
}

type t = {
  provider_multipliers : (string * float) list;
  authority_factor : float;
  user_factor : float;
}

let base_provider_rates =
  { cpu_per_min = 0.01; io_per_gb = 0.001; net_out_per_gb = 0.02 }

let make ?(provider_multipliers = []) ?(authority_factor = 3.0)
    ?(user_factor = 10.0) () =
  { provider_multipliers; authority_factor; user_factor }

let scale f r =
  { cpu_per_min = r.cpu_per_min *. f;
    io_per_gb = r.io_per_gb *. f;
    net_out_per_gb = r.net_out_per_gb *. f }

let rates_for t (s : Authz.Subject.t) =
  match s.Authz.Subject.role with
  | Authz.Subject.Provider ->
      let f =
        match List.assoc_opt s.Authz.Subject.name t.provider_multipliers with
        | Some f -> f
        | None -> 1.0
      in
      scale f base_provider_rates
  | Authz.Subject.Authority ->
      { (scale 1.0 base_provider_rates) with
        cpu_per_min = base_provider_rates.cpu_per_min *. t.authority_factor }
  | Authz.Subject.User ->
      { (scale 1.0 base_provider_rates) with
        cpu_per_min = base_provider_rates.cpu_per_min *. t.user_factor }

let cheapest_provider_factor t =
  List.fold_left (fun acc (_, f) -> Float.min acc f) 1.0 t.provider_multipliers

let fingerprint t =
  let buf = Buffer.create 64 in
  Fingerprint.float_field buf t.authority_factor;
  Fingerprint.float_field buf t.user_factor;
  Fingerprint.list_field buf
    (fun (name, f) ->
      let b = Buffer.create 16 in
      Fingerprint.field b name;
      Fingerprint.float_field b f;
      Buffer.contents b)
    (List.sort compare t.provider_multipliers);
  Buffer.contents buf
