open Relalg

let field buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let int_field buf i = field buf (string_of_int i)

(* bit-exact: Printf "%f"-style roundings would merge distinct floats *)
let float_field buf f = field buf (Printf.sprintf "%Lx" (Int64.bits_of_float f))

let list_field buf elt xs =
  int_field buf (List.length xs);
  List.iter (fun x -> field buf (elt x)) xs

let in_buf build =
  let buf = Buffer.create 64 in
  build buf;
  Buffer.contents buf

let of_attr = Attr.name

let attr_set buf s = list_field buf of_attr (Attr.Set.elements s)

let of_value v =
  in_buf @@ fun buf ->
  match (v : Value.t) with
  | Null -> field buf "null"
  | Bool b ->
      field buf "bool";
      field buf (string_of_bool b)
  | Int i ->
      field buf "int";
      int_field buf i
  | Float f ->
      field buf "float";
      float_field buf f
  | Str s ->
      field buf "str";
      field buf s
  | Date d ->
      field buf "date";
      int_field buf d
  | Enc c ->
      field buf "enc";
      field buf c.Value.scheme;
      field buf c.Value.key_id;
      field buf c.Value.payload

let of_op (op : Predicate.op) =
  match op with
  | Eq -> "eq"
  | Neq -> "neq"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let of_atom (a : Predicate.atom) =
  in_buf @@ fun buf ->
  match a with
  | Cmp_const (x, op, v) ->
      field buf "cmp_const";
      field buf (of_attr x);
      field buf (of_op op);
      field buf (of_value v)
  | Cmp_attr (x, op, y) ->
      field buf "cmp_attr";
      field buf (of_attr x);
      field buf (of_op op);
      field buf (of_attr y)
  | In_list (x, vs) ->
      field buf "in";
      field buf (of_attr x);
      list_field buf of_value vs
  | Like (x, pat) ->
      field buf "like";
      field buf (of_attr x);
      field buf pat

let of_predicate (p : Predicate.t) =
  in_buf @@ fun buf ->
  list_field buf (fun clause -> in_buf (fun b -> list_field b of_atom clause)) p

let of_aggregate (a : Aggregate.t) =
  in_buf @@ fun buf ->
  (match a.Aggregate.func with
  | Count_star -> field buf "count*"
  | Count x ->
      field buf "count";
      field buf (of_attr x)
  | Sum x ->
      field buf "sum";
      field buf (of_attr x)
  | Avg x ->
      field buf "avg";
      field buf (of_attr x)
  | Min x ->
      field buf "min";
      field buf (of_attr x)
  | Max x ->
      field buf "max";
      field buf (of_attr x));
  field buf (of_attr a.Aggregate.output)

(* One node level, children delegated to [child]: the hash-consed DAG
   store (Dag) computes subtree fingerprints bottom-up with memoized
   children, and the encoding must stay byte-identical to [of_plan] so
   DAG-level keys line up with the plan cache's structural keys. *)
let of_plan_via child plan =
  in_buf @@ fun buf ->
  (match Plan.node plan with
  | Plan.Base s ->
      field buf "base";
      field buf s.Schema.name
  | Plan.Project (attrs, _) ->
      field buf "project";
      attr_set buf attrs
  | Plan.Select (pred, _) ->
      field buf "select";
      field buf (of_predicate pred)
  | Plan.Product _ -> field buf "product"
  | Plan.Join (pred, _, _) ->
      field buf "join";
      field buf (of_predicate pred)
  | Plan.Group_by (keys, aggs, _) ->
      field buf "group_by";
      attr_set buf keys;
      list_field buf of_aggregate aggs
  | Plan.Udf (name, inputs, output, _) ->
      field buf "udf";
      field buf name;
      attr_set buf inputs;
      field buf (of_attr output)
  | Plan.Order_by (keys, _) ->
      field buf "order_by";
      list_field buf
        (fun (a, dir) ->
          in_buf (fun b ->
              field b (of_attr a);
              field b (match dir with Plan.Asc -> "asc" | Plan.Desc -> "desc")))
        keys
  | Plan.Limit (n, _) ->
      field buf "limit";
      int_field buf n
  | Plan.Encrypt (attrs, _) ->
      field buf "encrypt";
      attr_set buf attrs
  | Plan.Decrypt (attrs, _) ->
      field buf "decrypt";
      attr_set buf attrs);
  list_field buf child (Plan.children plan)

let rec of_plan plan = of_plan_via of_plan plan

let of_subject (s : Authz.Subject.t) =
  in_buf @@ fun buf ->
  field buf
    (match s.Authz.Subject.role with
    | Authz.Subject.User -> "user"
    | Authz.Subject.Authority -> "authority"
    | Authz.Subject.Provider -> "provider");
  field buf s.Authz.Subject.name

let of_schema (s : Schema.t) =
  in_buf @@ fun buf ->
  field buf s.Schema.name;
  field buf s.Schema.owner;
  (match s.Schema.storage with
  | Schema.At_authority -> field buf "at_authority"
  | Schema.Outsourced { host; encrypted } ->
      field buf "outsourced";
      field buf host;
      attr_set buf encrypted);
  list_field buf
    (fun (a, ty) ->
      in_buf (fun b ->
          field b (of_attr a);
          field b
            (match (ty : Schema.column_type) with
            | Tint -> "int"
            | Tfloat -> "float"
            | Tstring -> "string"
            | Tdate -> "date"
            | Tbool -> "bool")))
    s.Schema.columns

let of_rule (r : Authz.Authorization.rule) =
  in_buf @@ fun buf ->
  field buf r.Authz.Authorization.relation;
  (match r.Authz.Authorization.grantee with
  | Authz.Authorization.Any -> field buf "any"
  | Authz.Authorization.To s ->
      field buf "to";
      field buf (of_subject s));
  attr_set buf r.Authz.Authorization.plain;
  attr_set buf r.Authz.Authorization.enc

(* rule and schema order carry no meaning: sort the serialized forms so
   textually-reordered but equivalent policies fingerprint identically *)
let of_policy policy =
  in_buf @@ fun buf ->
  let schemas =
    List.sort compare (List.map of_schema (Authz.Authorization.schemas policy))
  in
  let rules =
    List.sort compare (List.map of_rule (Authz.Authorization.rules policy))
  in
  list_field buf Fun.id schemas;
  list_field buf Fun.id rules

let of_config (c : Authz.Opreq.config) =
  in_buf @@ fun buf ->
  field buf (string_of_bool c.Authz.Opreq.equality_over_cipher);
  field buf (string_of_bool c.Authz.Opreq.order_over_cipher);
  field buf (string_of_bool c.Authz.Opreq.addition_over_cipher);
  list_field buf Fun.id
    (List.sort_uniq compare c.Authz.Opreq.enc_capable_udfs);
  (* Imap iterates in ascending node-id order: deterministic *)
  let forced = ref [] in
  Authz.Imap.iter
    (fun id attrs -> forced := (id, attrs) :: !forced)
    c.Authz.Opreq.forced_plaintext;
  list_field buf
    (fun (id, attrs) ->
      in_buf (fun b ->
          int_field b id;
          attr_set b attrs))
    (List.rev !forced)
