(** Folding source-side constant filters into leaves.

    The paper draws leaves as boxes containing "(the projection of) a
    source relation", with empty implicit content — and reads its input
    plans off the PostgreSQL optimizer, where constant predicates appear
    as filters {e on the scan nodes}, i.e. inside those boxes. A
    selection kept as an explicit plan node instead leaves an implicit
    trace (Fig. 2) that, when its evaluation needs plaintext (LIKE, or a
    scheme-less range), locks every ancestor to plaintext-authorized
    subjects.

    [fold] rewrites a plan to the PostgreSQL-mapped reading: selections
    sitting directly on a (projected) base relation whose atoms only
    compare attributes with constants are removed, and their selectivity
    is returned so that base statistics can be scaled accordingly. The
    filter still runs — at the data authority, on its own data, before
    release — it just is not a delegable plan node anymore, and the
    released relation is profiled as a plain (sub-)relation. *)

open Relalg

val fold : Plan.t -> Plan.t * (string * float) list
(** [(plan', factors)]: the rewritten plan and, per base-relation name,
    the cardinality multiplier of the folded filters. *)

val scale_stats :
  Estimate.base_stats -> (string * float) list -> Estimate.base_stats

val foldable : Plan.t -> bool
(** Is this node a source-side constant selection? *)
