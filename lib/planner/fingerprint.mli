(** Canonical, collision-free fingerprints of planner inputs.

    The plan cache ([lib/serve]) keys entries by the planner's full
    input — query structure, policy, operation-requirement config,
    prices, network — so distinct inputs {e must} never serialize to
    the same string. Every atomic field is therefore emitted
    length-prefixed ([<len>:<bytes>]) and every composite carries a
    constructor tag and an element count: no concatenation of fields
    can collide with a different field split, unlike naive
    [String.concat] keys (see the regression tests in
    [test/test_serve.ml]).

    Fingerprints are structural: plan node ids (fresh per parse) never
    appear, so re-parsing the same query yields the same fingerprint.
    They are not cryptographic hashes — equal fingerprints mean equal
    inputs by construction, and keys stay inspectable in debug
    output. *)

open Relalg

val field : Buffer.t -> string -> unit
(** Append one length-prefixed field: [<len>:<bytes>]. *)

val int_field : Buffer.t -> int -> unit
val float_field : Buffer.t -> float -> unit
(** Exact (bit-pattern) encoding, so [0.1 +. 0.2] and [0.3] differ. *)

val list_field : Buffer.t -> ('a -> string) -> 'a list -> unit
(** Count prefix followed by one field per element. *)

val of_value : Value.t -> string
val of_predicate : Predicate.t -> string

val of_plan : Plan.t -> string
(** Structural fingerprint of a query plan, independent of node ids:
    two plans have equal fingerprints iff {!Plan.equal_shape} holds. *)

val of_plan_via : (Plan.t -> string) -> Plan.t -> string
(** One node level of {!of_plan}, with child fingerprints delegated to
    the given function. [of_plan_via of_plan] ≡ [of_plan]; the
    hash-consed DAG store ({!Dag}) passes a memoized child function so
    a batch's subtree fingerprints are computed bottom-up in linear
    total time while staying byte-identical to {!of_plan}. *)

val of_subject : Authz.Subject.t -> string
(** Role and name (two subjects may share a name across roles). *)

val of_policy : Authz.Authorization.t -> string
(** Schemas (sorted by relation name: name, owner, storage, typed
    columns in declaration order) plus rules (canonically sorted), so
    any grant or revocation of a single permission rotates the
    fingerprint. *)

val of_config : Authz.Opreq.config -> string
(** Capability flags, encryption-capable udfs (order-insensitive) and
    per-node forced-plaintext overrides. Note that [forced_plaintext]
    is keyed by plan-node ids, which are instance-specific: cache keys
    should be built from the {e input} config, before
    {!Authz.Opreq.resolve_conflicts} specializes it to a plan. *)
