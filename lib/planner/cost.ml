open Relalg
module Scheme = Mpq_crypto.Scheme

type breakdown = {
  cpu : float;
  io : float;
  net : float;
  seconds : float;
  latency : float;
  per_subject : (Authz.Subject.t * float) list;
}

let total b = b.cpu +. b.io +. b.net

let zero =
  { cpu = 0.0; io = 0.0; net = 0.0; seconds = 0.0; latency = 0.0;
    per_subject = [] }

let add_subject per_subject s v =
  let rec go = function
    | [] -> [ (s, v) ]
    | (s', v') :: rest when Authz.Subject.equal s s' -> (s', v' +. v) :: rest
    | x :: rest -> x :: go rest
  in
  if v = 0.0 then per_subject else go per_subject

let add a b =
  { cpu = a.cpu +. b.cpu;
    io = a.io +. b.io;
    net = a.net +. b.net;
    seconds = a.seconds +. b.seconds;
    latency = Float.max a.latency b.latency;
    per_subject =
      List.fold_left
        (fun acc (s, v) -> add_subject acc s v)
        a.per_subject b.per_subject }

(* Relational throughput in tuples per minute, and the udf slowdown. *)
let tuples_per_minute = 2e6
let udf_factor = 100.0

let crypto_minutes scheme mbytes = Scheme.cpu_cost_per_mb scheme *. mbytes

let cpu_minutes ~scheme_of ~node ~child_stats ~out_stats =
  let in_card =
    List.fold_left (fun acc (s : Estimate.stats) -> acc +. s.Estimate.card) 0.0
      child_stats
  in
  match Plan.node node with
  | Plan.Base _ -> out_stats.Estimate.card /. (4.0 *. tuples_per_minute)
  | Plan.Project _ ->
      (* column picking, folded into the producing scan/operator *)
      in_card /. (20.0 *. tuples_per_minute)
  | Plan.Select _ ->
      (* predicate evaluation piggybacks on the scan *)
      in_card /. (4.0 *. tuples_per_minute)
  | Plan.Product _ ->
      (in_card +. out_stats.Estimate.card) /. tuples_per_minute
  | Plan.Join _ ->
      (* hash build + probe + materialization: the dominant relational
         cost, in line with PostgreSQL's estimates on TPC-H *)
      5.0 *. (in_card +. out_stats.Estimate.card) /. tuples_per_minute
  | Plan.Group_by _ -> 2.0 *. in_card /. tuples_per_minute
  | Plan.Udf (name, _, _, _) ->
      (* "expr:" udfs are per-row arithmetic, not the paper's
         computation-heavy analytics udfs *)
      let factor =
        if String.length name >= 5 && String.sub name 0 5 = "expr:" then 1.0
        else udf_factor
      in
      factor *. in_card /. tuples_per_minute
  | Plan.Order_by _ ->
      (* comparison sort: a few passes over the input *)
      4.0 *. in_card /. tuples_per_minute
  | Plan.Limit _ -> 0.0
  | Plan.Encrypt (attrs, _) | Plan.Decrypt (attrs, _) ->
      let child =
        match child_stats with [ c ] -> c | _ -> out_stats
      in
      Attr.Set.fold
        (fun a acc ->
          let w =
            match Attr.Map.find_opt a child.Estimate.widths with
            | Some w -> w
            | None -> 8.0
          in
          let mb = child.Estimate.card *. w /. 1e6 in
          acc +. crypto_minutes (scheme_of a) mb)
        attrs 0.0

let of_extended ~pricing ~network ~base ~scheme_of (ext : Authz.Extend.t) =
  let stats = Estimate.annotate ~scheme_of ~base ext.Authz.Extend.plan in
  let stat_of n = Authz.Imap.find (Plan.id n) stats in
  let executor n = Authz.Imap.find (Plan.id n) ext.Authz.Extend.assignment in
  let acc = ref zero in
  let charge s ~cpu ~io ~net ~seconds =
    let r = Pricing.rates_for pricing s in
    let cpu_usd = cpu *. r.Pricing.cpu_per_min in
    let io_usd = io /. 1e9 *. r.Pricing.io_per_gb in
    let net_usd = net /. 1e9 *. r.Pricing.net_out_per_gb in
    acc :=
      add !acc
        { cpu = cpu_usd;
          io = io_usd;
          net = net_usd;
          seconds;
          latency = 0.0;
          per_subject = [ (s, cpu_usd +. io_usd +. net_usd) ] }
  in
  Plan.iter
    (fun n ->
      let s = executor n in
      let child_stats = List.map stat_of (Plan.children n) in
      let out = stat_of n in
      let cpu =
        cpu_minutes ~scheme_of ~node:n ~child_stats ~out_stats:out
      in
      let io_bytes =
        Estimate.table_bytes out
        +. List.fold_left
             (fun a cs -> a +. Estimate.table_bytes cs)
             0.0 child_stats
      in
      charge s ~cpu ~io:io_bytes ~net:0.0 ~seconds:(cpu *. 60.0);
      (* network: edges whose endpoints differ *)
      List.iter
        (fun c ->
          let cs = executor c in
          if not (Authz.Subject.equal cs s) then begin
            let bytes = Estimate.table_bytes (stat_of c) in
            charge cs ~cpu:0.0 ~io:0.0 ~net:bytes
              ~seconds:(Network.transfer_seconds network cs s bytes)
          end)
        (Plan.children n))
    ext.Authz.Extend.plan;
  (* critical-path latency: children complete in parallel; a transfer is
     paid when the edge crosses subjects *)
  let rec finish n =
    let s = executor n in
    let children = Plan.children n in
    let ready =
      List.fold_left
        (fun acc c ->
          let cs = executor c in
          let transfer =
            if Authz.Subject.equal cs s then 0.0
            else
              Network.transfer_seconds network cs s
                (Estimate.table_bytes (stat_of c))
          in
          Float.max acc (finish c +. transfer))
        0.0 children
    in
    let cpu =
      cpu_minutes ~scheme_of ~node:n ~child_stats:(List.map stat_of children)
        ~out_stats:(stat_of n)
    in
    ready +. (cpu *. 60.0)
  in
  { !acc with latency = finish ext.Authz.Extend.plan }

let pp fmt b =
  Format.fprintf fmt
    "total=$%.6f (cpu=$%.6f io=$%.6f net=$%.6f, latency ~%.1fs)" (total b)
    b.cpu b.io b.net b.latency
