(** Machine-readable planning reports.

    JSON export of an {!Optimizer.result}: the extended plan tree with
    per-node executor and profile, the key clusters with schemes and
    holders, the dispatch requests, and the cost breakdown. Consumed by
    external visualization or audit tooling (and by `mpqcli --json`). *)

val plan_json :
  ?profiles:(int, Authz.Profile.t) Hashtbl.t ->
  ?assignment:Authz.Subject.t Authz.Imap.t ->
  Relalg.Plan.t ->
  Relalg.Json.t
(** Plan tree with optional per-node annotations. *)

val result_json : Optimizer.result -> Relalg.Json.t
val to_string : Optimizer.result -> string
