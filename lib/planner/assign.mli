(** Assignment computation (Sec. 6 step 2 + Sec. 7).

    A bottom-up dynamic program over (node, candidate) pairs: the best
    cost of executing a subtree with its root at a given subject is the
    node's execution cost plus, per child, the cheapest choice of child
    executor including the edge costs — transfer (with ciphertext
    expansion), on-the-fly encryption demanded by the receiving subject's
    view, and decryption demanded by the operation's plaintext needs.
    This combines the paper's steps 2 and 3, as their tool does when
    encryption costs are not negligible.

    The DP's edge model ignores the ancestor-driven early-encryption
    term of Def. 5.4 (it only moves an encryption earlier in the plan);
    the returned assignment is re-costed exactly by
    {!Cost.of_extended} downstream. *)

open Relalg

val optimize :
  ?view_cache:(string, Authz.Authorization.view) Hashtbl.t ->
  candidates:Authz.Candidates.t ->
  policy:Authz.Authorization.t ->
  config:Authz.Opreq.config ->
  pricing:Pricing.t ->
  stats:Estimate.stats Authz.Imap.t ->
  scheme_of:(Attr.t -> Mpq_crypto.Scheme.t) ->
  Plan.t ->
  Authz.Subject.t Authz.Imap.t
(** Minimum-cost assignment drawn from the candidate sets. Raises
    [Invalid_argument] when some assignable node has no candidate.

    [view_cache] (keyed by subject name) shares the derivation of
    subject views across multiple DP rounds over the same policy; pass
    the same table to each call. Views are policy-dependent only, so the
    cache must not be reused across policies. *)

val dp_cost :
  ?view_cache:(string, Authz.Authorization.view) Hashtbl.t ->
  candidates:Authz.Candidates.t ->
  policy:Authz.Authorization.t ->
  config:Authz.Opreq.config ->
  pricing:Pricing.t ->
  stats:Estimate.stats Authz.Imap.t ->
  scheme_of:(Attr.t -> Mpq_crypto.Scheme.t) ->
  Plan.t ->
  float
(** The DP's own estimate of the optimum (model cost, USD). *)

val enumerate : Authz.Candidates.t -> Plan.t -> Authz.Subject.t Authz.Imap.t list
(** Every assignment in [Π Λ(n)] — exponential; for tests and small
    plans only. *)
