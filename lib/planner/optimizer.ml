open Relalg

type result = {
  config : Authz.Opreq.config;
  candidates : Authz.Candidates.t;
  assignment : Authz.Subject.t Authz.Imap.t;
  extended : Authz.Extend.t;
  clusters : Authz.Plan_keys.cluster list;
  requests : Authz.Dispatch.request list;
  cost : Cost.breakdown;
  scheme_of : Attr.t -> Mpq_crypto.Scheme.t;
}

exception No_candidate of string
exception User_not_authorized of string
exception Verification_failed of string

let self_check =
  ref (match Sys.getenv_opt "MPQ_SELF_CHECK" with Some "0" -> false | _ -> true)

(* Post-planning assertion gate: the independent verifier re-derives
   every invariant over the finished artifacts. Minimality findings are
   warnings, so only Error-severity diagnostics abort. *)
let assert_verified ~policy ~config extended clusters requests =
  let input =
    { Verify.Verifier.policy; config; extended; clusters; requests }
  in
  let diags = Obs.with_span "planner.self_check" (fun () -> Verify.Verifier.run input) in
  if Verify.Diag.has_errors diags then
    raise
      (Verification_failed
         ("planner self-check failed:\n"
         ^ Verify.Diag.render (Verify.Diag.errors diags)))

(* Canonical text key for an assignment: Imap iterates in node-id order,
   so equal assignments always fingerprint identically. Fields are
   length-prefixed (Fingerprint.field): with the earlier bare
   `id ":" name ";"` concatenation, a subject named "A;2:B" on node 1
   collided with subjects A and B on nodes 1 and 2. *)
let fingerprint assignment =
  let buf = Buffer.create 64 in
  Authz.Imap.iter
    (fun id s ->
      Fingerprint.int_field buf id;
      Fingerprint.field buf (Fingerprint.of_subject s))
    assignment;
  Buffer.contents buf

(* The serving layer's cache key is the planner's entire input: the
   environment half (policy, config, prices, network, recipient,
   latency bound) changes rarely and is cached by the service; the
   query half is recomputed per request. *)
let environment_fingerprint ?(tenant = "default") ~policy ~subjects
    ?(config = Authz.Opreq.default) ?(pricing = Pricing.make ())
    ?(network = Network.make ()) ?deliver_to ?max_latency () =
  let buf = Buffer.create 256 in
  Fingerprint.field buf "mpq-env-v2";
  (* the tenant component is the multi-tenant leakage gate: two tenants
     with byte-identical policies, subjects, prices and networks still
     get disjoint environment fingerprints — and therefore disjoint
     plan-cache and sub-plan-cache key spaces — because this field
     differs. Isolation is a key-space property, not a lock property. *)
  Fingerprint.field buf ("tenant:" ^ tenant);
  Fingerprint.field buf (Fingerprint.of_policy policy);
  Fingerprint.list_field buf Fingerprint.of_subject subjects;
  Fingerprint.field buf (Fingerprint.of_config config);
  Fingerprint.field buf (Pricing.fingerprint pricing);
  Fingerprint.field buf (Network.fingerprint network);
  (match deliver_to with
  | None -> Fingerprint.field buf "none"
  | Some s ->
      Fingerprint.field buf "some";
      Fingerprint.field buf (Fingerprint.of_subject s));
  (match max_latency with
  | None -> Fingerprint.field buf "none"
  | Some l ->
      Fingerprint.field buf "some";
      Fingerprint.float_field buf l);
  Buffer.contents buf

let cache_key_of ~env qfp =
  let buf = Buffer.create 512 in
  Fingerprint.field buf "mpq-plan-cache-v1";
  Fingerprint.field buf qfp;
  Fingerprint.field buf env;
  Buffer.contents buf

let cache_key ~env query = cache_key_of ~env (Fingerprint.of_plan query)

let plan ~policy ~subjects ?(config = Authz.Opreq.default)
    ?(pricing = Pricing.make ()) ?(network = Network.make ())
    ?(base = fun _ -> None) ?deliver_to ?max_latency ?(memoize = true) query =
  Obs.with_span "planner.plan" @@ fun () ->
  let config = Authz.Opreq.resolve_conflicts config query in
  (* Sec. 6: the querying user must be authorized for the query's inputs
     (the projected base relations). *)
  (match deliver_to with
  | None -> ()
  | Some user ->
      let view = Authz.Authorization.view policy user in
      let rec check_inputs n =
        if
          Authz.Candidates.is_source_side n
          && not (Authz.Authorized.is_authorized view (Authz.Profile.of_plan n))
        then
          raise
            (User_not_authorized
               (Printf.sprintf "%s is not authorized for input %s"
                  (Authz.Subject.name user) (Plan.operator_name n)))
        else if not (Authz.Candidates.is_source_side n) then
          List.iter check_inputs (Plan.children n)
      in
      check_inputs query);
  let candidates =
    Obs.with_span "planner.candidates" (fun () ->
        Authz.Candidates.compute ~policy ~subjects ~config query)
  in
  Authz.Imap.iter
    (fun id set ->
      if Authz.Subject.Set.is_empty set then
        let name =
          match Plan.find query id with
          | Some n -> Plan.operator_name n
          | None -> string_of_int id
        in
        raise
          (No_candidate
             (Printf.sprintf
                "operation %s admits no authorized executor under the policy"
                name)))
    candidates;
  (* subject views are policy-derived and shared across the DP rounds *)
  let view_cache = Hashtbl.create 8 in
  (* One planning round: DP under a scheme hypothesis, extend, then read
     the actual schemes and exact cost off the extended plan. The first
     round uses the conservative (worst-case) schemes; the second re-runs
     the DP under the schemes the first round's plan actually needs —
     e.g. an attribute only aggregated in plaintext at its authority
     drops from Paillier to cheap randomized encryption, unblocking
     delegation. The cheaper of the two rounds wins. *)
  let round cands scheme_of =
    Obs.with_span "planner.round" @@ fun () ->
    let stats =
      Obs.with_span "planner.estimate" (fun () ->
          Estimate.annotate ~scheme_of ~base query)
    in
    let assignment =
      Obs.with_span "planner.dp" (fun () ->
          Assign.optimize ~view_cache ~candidates:cands ~policy ~config
            ~pricing ~stats ~scheme_of query)
    in
    let extended =
      Obs.with_span "planner.extend" (fun () ->
          Authz.Extend.extend ~policy ~config ~assignment ?deliver_to query)
    in
    let actual = Authz.Plan_keys.actual_schemes ~original:query extended in
    let cost =
      Obs.with_span "planner.cost" (fun () ->
          Cost.of_extended ~pricing ~network ~base ~scheme_of:actual extended)
    in
    (assignment, extended, actual, cost)
  in
  let conservative a = Authz.Opreq.scheme_of_attr config query a in
  let ((_, _, scheme1, _) as r1) = round candidates conservative in
  (* Fallback round without providers: the DP's edge model is heuristic
     (Def. 5.4's ancestor-driven encryption is priced only approximately),
     so guarantee we never lose to the provider-free plan. *)
  let no_providers =
    Authz.Imap.map
      (Authz.Subject.Set.filter (fun s ->
           s.Authz.Subject.role <> Authz.Subject.Provider))
      candidates
  in
  let rounds =
    [ r1; round candidates scheme1 ]
    @
    if Authz.Imap.exists (fun _ s -> Authz.Subject.Set.is_empty s) no_providers
    then []
    else [ round no_providers conservative ]
  in
  (* the paper's threshold: minimize cost subject to latency <= bound;
     if nothing qualifies, minimize latency instead *)
  let better ((_, _, _, a) as ra) ((_, _, _, b) as rb) =
    match max_latency with
    | None -> if Cost.total b < Cost.total a then rb else ra
    | Some bound ->
        let ok c = c.Cost.latency <= bound in
        if ok a && ok b then if Cost.total b < Cost.total a then rb else ra
        else if ok a then ra
        else if ok b then rb
        else if b.Cost.latency < a.Cost.latency then rb
        else ra
  in
  let seed =
    match rounds with
    | [] -> assert false
    | first :: rest -> List.fold_left better first rest
  in
  (* Exact local search: the DP's edge model is heuristic (Def. 5.4's
     ancestor term and the uniformity repairs are priced approximately),
     so polish the winner by re-assigning one node at a time and
     re-costing the real extension. Two sweeps close nearly all of the
     residual gap at a few dozen extensions' cost. *)
  let compute assignment =
    Obs.with_span "planner.evaluate" @@ fun () ->
    let extended =
      Authz.Extend.extend ~policy ~config ~assignment ?deliver_to query
    in
    let actual = Authz.Plan_keys.actual_schemes ~original:query extended in
    let cost =
      Cost.of_extended ~pricing ~network ~base ~scheme_of:actual extended
    in
    (assignment, extended, actual, cost)
  in
  (* Memo over assignment fingerprints: the two sweeps (and the round
     seeds) revisit many identical assignments — the extension, scheme
     derivation and exact costing are deterministic in the assignment, so
     the first evaluation's outcome (value or planner rejection) is
     replayed. *)
  let memo = Hashtbl.create 64 in
  let remember assignment outcome =
    if memoize then Hashtbl.replace memo (fingerprint assignment) outcome
  in
  List.iter (fun ((a, _, _, _) as r) -> remember a (Ok r)) rounds;
  let evaluate assignment =
    Obs.incr "planner.evaluate.calls";
    if not memoize then compute assignment
    else
      let key = fingerprint assignment in
      match Hashtbl.find_opt memo key with
      | Some (Ok r) ->
          Obs.incr "planner.evaluate.memo_hits";
          r
      | Some (Error e) ->
          Obs.incr "planner.evaluate.memo_hits";
          raise e
      | None -> (
          match compute assignment with
          | r ->
              Hashtbl.add memo key (Ok r);
              r
          | exception ((No_candidate _ | Invalid_argument _) as e) ->
              Hashtbl.add memo key (Error e);
              raise e)
  in
  (* Only planner rejections (no candidate, or an extension refusing the
     assignment with Invalid_argument) discard a move; genuine failures —
     Stack_overflow, Out_of_memory, verifier bugs — must propagate. *)
  let sweep current =
    Obs.with_span "planner.sweep" @@ fun () ->
    Authz.Imap.fold
      (fun id cands best ->
        Authz.Subject.Set.fold
          (fun s best ->
            let (assignment, _, _, _) = best in
            match Authz.Imap.find_opt id assignment with
            | Some cur when Authz.Subject.equal cur s -> best
            | _ -> (
                Obs.incr "planner.sweep.moves";
                let candidate = Authz.Imap.add id s assignment in
                match evaluate candidate with
                | result -> better best result
                | exception (No_candidate _ | Invalid_argument _) ->
                    Obs.incr "planner.sweep.discarded";
                    best))
          cands best)
      candidates current
  in
  let assignment, extended, scheme_of, cost = sweep (sweep seed) in
  let clusters =
    Obs.with_span "planner.keys" (fun () ->
        Authz.Plan_keys.compute ~config ~original:query extended)
  in
  let requests =
    Obs.with_span "planner.dispatch" (fun () ->
        Authz.Dispatch.requests extended clusters)
  in
  if !self_check then assert_verified ~policy ~config extended clusters requests;
  { config; candidates; assignment; extended; clusters; requests; cost;
    scheme_of }

let report r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "=== extended plan ===\n";
  Buffer.add_string buf (Authz.Extend.to_ascii r.extended);
  Buffer.add_string buf "\n=== key clusters ===\n";
  List.iter
    (fun c ->
      Buffer.add_string buf (Format.asprintf "%a\n" Authz.Plan_keys.pp_cluster c))
    r.clusters;
  Buffer.add_string buf "\n=== dispatch ===\n";
  List.iter
    (fun req ->
      Buffer.add_string buf
        (Format.asprintf "%a\n" Authz.Dispatch.pp_request req))
    r.requests;
  Buffer.add_string buf (Format.asprintf "\n=== cost ===\n%a\n" Cost.pp r.cost);
  List.iter
    (fun (s, v) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-4s $%.6f\n" (Authz.Subject.name s) v))
    r.cost.Cost.per_subject;
  Buffer.contents buf
