open Relalg

(* Hash-consed plan DAGs (ROADMAP item 2, after the
   jstolarek/algebra-dag idiom: an algebra over shared-node DAGs).

   Plans enter the system as trees with globally unique node ids; the
   store interns them bottom-up by canonical structural fingerprint
   (Fingerprint.of_plan encodings — collision-free, so equal
   fingerprints mean equal shapes by construction). Structurally
   identical subtrees — across the queries of a serve batch, across
   the cached TPC-H shapes, and even within one query — collapse onto
   one representative node, turning the forest of cached executable
   plans into a DAG whose shared nodes can be planned, verified and
   executed once.

   The store never rewrites a plan's semantics: [intern] returns a
   plan [equal_shape]-identical to its input, with physically shared
   subtrees. Consumers that label nodes per occurrence (the executor's
   position-derived encryption randomness) must therefore thread
   positions through their traversal (Plan.child_positions) rather
   than keying tables by node id — see Exec. *)

type info = {
  rep : Plan.t;  (* canonical representative (children interned) *)
  size : int;
  crypto_free : bool;
  mutable occurrences : int;
}

type t = {
  store : (string, info) Hashtbl.t;  (* structural fingerprint -> node *)
  fps : (int, string) Hashtbl.t;  (* physical node id -> fp memo *)
  mutable interned : int;  (* plans interned (root-level calls) *)
}

let create () =
  { store = Hashtbl.create 256; fps = Hashtbl.create 1024; interned = 0 }

(* Bottom-up memoized structural fingerprint: one Fingerprint.of_plan_via
   level per physical node, children read from the memo — linear total
   work over a batch even though subtree fingerprints nest. Byte-identical
   to Fingerprint.of_plan, so DAG keys line up with plan-cache keys. *)
let rec fingerprint t p =
  match Hashtbl.find_opt t.fps (Plan.id p) with
  | Some fp -> fp
  | None ->
      let fp = Fingerprint.of_plan_via (fingerprint t) p in
      Hashtbl.add t.fps (Plan.id p) fp;
      fp

(* A subtree is crypto-free when it produces no ciphertext: no
   Encrypt/Decrypt operation and no outsourced (encrypted-at-rest) base
   relation. Its result table is then a pure function of structure and
   stored data — independent of the subtree's preorder position in the
   enclosing plan — so results may be shared across occurrences at
   different positions. Anything touching ciphertext is position-bound:
   encryption randomness derives from preorder positions. *)
let rec crypto_free p =
  (match Plan.node p with
  | Plan.Encrypt _ | Plan.Decrypt _ -> false
  | Plan.Base s -> Attr.Set.is_empty (Schema.stored_encrypted s)
  | _ -> true)
  && List.for_all crypto_free (Plan.children p)

let rec intern_node t p =
  let children = Plan.children p in
  let interned = List.map (intern_node t) children in
  let p =
    if List.for_all2 ( == ) children interned then p
    else Plan.with_children p interned
  in
  let fp = fingerprint t p in
  match Hashtbl.find_opt t.store fp with
  | Some info ->
      info.occurrences <- info.occurrences + 1;
      info.rep
  | None ->
      Hashtbl.add t.store fp
        { rep = p; size = Plan.size p; crypto_free = crypto_free p;
          occurrences = 1 };
      p

let intern t p =
  t.interned <- t.interned + 1;
  intern_node t p

let find t p = Hashtbl.find_opt t.store (fingerprint t p)

let occurrences t p =
  match find t p with Some i -> i.occurrences | None -> 0

let is_shared t p =
  match find t p with Some i -> i.occurrences > 1 | None -> false

type stats = {
  plans : int;  (* intern calls *)
  nodes : int;  (* distinct nodes in the store *)
  occurrences : int;  (* total occurrences across interned plans *)
  shared_nodes : int;  (* distinct nodes with > 1 occurrence *)
  shared_occurrences : int;
      (* occurrences beyond the first of each shared node: the count of
         subtrees the DAG representation did not have to materialize *)
}

let stats t =
  let nodes = Hashtbl.length t.store in
  let occurrences, shared_nodes, shared_occurrences =
    Hashtbl.fold
      (fun _ (info : info) (occ, sn, so) ->
        ( occ + info.occurrences,
          (if info.occurrences > 1 then sn + 1 else sn),
          if info.occurrences > 1 then so + info.occurrences - 1 else so ))
      t.store (0, 0, 0)
  in
  { plans = t.interned; nodes; occurrences; shared_nodes;
    shared_occurrences }

let clear t =
  Hashtbl.reset t.store;
  Hashtbl.reset t.fps;
  t.interned <- 0
