open Relalg

let attr_set_json s =
  Json.List (List.map (fun a -> Json.String (Attr.name a)) (Attr.Set.elements s))

let profile_json (p : Authz.Profile.t) =
  Json.Obj
    [ ("visible_plaintext", attr_set_json p.Authz.Profile.vp);
      ("visible_encrypted", attr_set_json p.Authz.Profile.ve);
      ("implicit_plaintext", attr_set_json p.Authz.Profile.ip);
      ("implicit_encrypted", attr_set_json p.Authz.Profile.ie);
      ( "equivalence_sets",
        Json.List
          (List.map attr_set_json (Authz.Partition.sets p.Authz.Profile.eq)) )
    ]

let rec plan_json ?profiles ?assignment plan =
  let base =
    [ ("id", Json.Int (Plan.id plan));
      ("operator", Json.String (Plan.operator_name plan));
      ("label", Json.String (Plan_printer.node_label plan)) ]
  in
  let annot =
    (match assignment with
    | Some m -> (
        match Authz.Imap.find_opt (Plan.id plan) m with
        | Some s -> [ ("executor", Json.String (Authz.Subject.name s)) ]
        | None -> [])
    | None -> [])
    @
    match profiles with
    | Some tbl -> (
        match Hashtbl.find_opt tbl (Plan.id plan) with
        | Some p -> [ ("profile", profile_json p) ]
        | None -> [])
    | None -> []
  in
  let children =
    match Plan.children plan with
    | [] -> []
    | cs ->
        [ ( "children",
            Json.List (List.map (plan_json ?profiles ?assignment) cs) ) ]
  in
  Json.Obj (base @ annot @ children)

let cluster_json (c : Authz.Plan_keys.cluster) =
  Json.Obj
    [ ("id", Json.String c.Authz.Plan_keys.id);
      ("attributes", attr_set_json c.Authz.Plan_keys.attrs);
      ( "scheme",
        Json.String (Mpq_crypto.Scheme.name c.Authz.Plan_keys.scheme) );
      ( "holders",
        Json.List
          (List.map
             (fun s -> Json.String (Authz.Subject.name s))
             (Authz.Subject.Set.elements c.Authz.Plan_keys.holders)) ) ]

let request_json (r : Authz.Dispatch.request) =
  Json.Obj
    [ ("name", Json.String r.Authz.Dispatch.name);
      ("subject", Json.String (Authz.Subject.name r.Authz.Dispatch.subject));
      ("expression", Json.String r.Authz.Dispatch.expression);
      ( "keys",
        Json.List
          (List.map (fun k -> Json.String k) r.Authz.Dispatch.key_clusters) );
      ( "calls",
        Json.List (List.map (fun c -> Json.String c) r.Authz.Dispatch.calls) )
    ]

let cost_json (c : Cost.breakdown) =
  Json.Obj
    [ ("total_usd", Json.Float (Cost.total c));
      ("cpu_usd", Json.Float c.Cost.cpu);
      ("io_usd", Json.Float c.Cost.io);
      ("net_usd", Json.Float c.Cost.net);
      ("latency_seconds", Json.Float c.Cost.latency);
      ( "per_subject",
        Json.Obj
          (List.map
             (fun (s, v) -> (Authz.Subject.name s, Json.Float v))
             c.Cost.per_subject) ) ]

let result_json (r : Optimizer.result) =
  Json.Obj
    [ ( "plan",
        plan_json ~profiles:r.Optimizer.extended.Authz.Extend.profiles
          ~assignment:r.Optimizer.extended.Authz.Extend.assignment
          r.Optimizer.extended.Authz.Extend.plan );
      ("keys", Json.List (List.map cluster_json r.Optimizer.clusters));
      ("dispatch", Json.List (List.map request_json r.Optimizer.requests));
      ("cost", cost_json r.Optimizer.cost) ]

let to_string r = Json.to_string (result_json r)
