(** End-to-end authorization-aware planning (Sec. 6's five steps).

    Given a query plan, a policy, the participating subjects, prices and
    network: resolve scheme conflicts, compute candidates (step 1),
    choose a minimum-cost assignment (step 2, DP), inject minimal
    encryption/decryption (step 3), derive the plan keys (step 4), and
    build the dispatch requests (step 5). *)

open Relalg

type result = {
  config : Authz.Opreq.config;  (** after conflict resolution *)
  candidates : Authz.Candidates.t;
  assignment : Authz.Subject.t Authz.Imap.t;
  extended : Authz.Extend.t;
  clusters : Authz.Plan_keys.cluster list;
  requests : Authz.Dispatch.request list;
  cost : Cost.breakdown;
  scheme_of : Attr.t -> Mpq_crypto.Scheme.t;
}

exception No_candidate of string
(** Raised when some operation admits no authorized executor — the query
    cannot run under the policy. *)

exception User_not_authorized of string
(** Raised when [deliver_to] is given but that subject is not authorized
    for some base relation the query reads (Sec. 6: "a user requesting
    query execution is required to be authorized to access all data that
    are input to the query"). *)

exception Verification_failed of string
(** Raised by the post-planning self-check when the independent static
    verifier ([Verify.Verifier]) finds an [Error]-severity diagnostic in
    the produced plan. Indicates a planner bug, never a policy problem. *)

val fingerprint : Authz.Subject.t Authz.Imap.t -> string
(** Canonical key of an assignment (the local-search memo key): node
    ids and subjects, length-prefixed so distinct assignments cannot
    collide by concatenation (see {!Fingerprint}). *)

val environment_fingerprint :
  ?tenant:string ->
  policy:Authz.Authorization.t ->
  subjects:Authz.Subject.t list ->
  ?config:Authz.Opreq.config ->
  ?pricing:Pricing.t ->
  ?network:Network.t ->
  ?deliver_to:Authz.Subject.t ->
  ?max_latency:float ->
  unit ->
  string
(** Fingerprint of every planning input except the query itself. The
    serving layer computes it once per policy/config epoch: any change
    to the policy, the participating subjects, the operation
    requirements, prices, bandwidths, the recipient or the latency
    bound yields a different string, which rotates every cache key
    built from it (explicit invalidation — stale entries become
    unreachable). Defaults mirror {!plan}'s.

    [tenant] (default ["default"]) is folded in as its own field: the
    serving layer's multi-tenant registry names each tenant's planning
    environment, so structurally identical queries planned for
    different tenants — even under byte-identical policies — occupy
    disjoint key spaces in every cache keyed by this fingerprint. *)

val cache_key_of : env:string -> string -> string
(** [cache_key_of ~env qfp] is {!cache_key} for a query whose
    structural fingerprint [qfp] ({!Fingerprint.of_plan}) is already
    known — the serve layer uses it to rekey surviving cache entries
    under a new environment fingerprint without re-fingerprinting the
    query. *)

val cache_key : env:string -> Relalg.Plan.t -> string
(** [cache_key ~env query] is the plan-cache key for planning [query]
    under the environment fingerprinted as [env]: the structural query
    fingerprint ({!Fingerprint.of_plan}, node-id independent — equal
    for any two parses of the same query text) composed with [env],
    each length-prefixed. *)

val self_check : bool ref
(** Whether {!plan} re-verifies its own output before returning it
    (default [true]; initialized to [false] when the [MPQ_SELF_CHECK]
    environment variable is ["0"]). The check is pure and adds one
    verifier pass per planned query. *)

val plan :
  policy:Authz.Authorization.t ->
  subjects:Authz.Subject.t list ->
  ?config:Authz.Opreq.config ->
  ?pricing:Pricing.t ->
  ?network:Network.t ->
  ?base:Estimate.base_stats ->
  ?deliver_to:Authz.Subject.t ->
  ?max_latency:float ->
  ?memoize:bool ->
  Plan.t ->
  result
(** [max_latency] (seconds) is the paper's performance threshold: among
    the explored assignments, the cheapest whose critical-path latency
    stays under the bound wins; when none qualifies, the lowest-latency
    one is returned (cost is secondary at that point).

    [memoize] (default [true]) caches the exact re-costing of the local
    search by assignment fingerprint: the two polish sweeps (and the DP
    round seeds) revisit many identical assignments, whose extension and
    costing are deterministic in the assignment. Planning output is
    identical either way — [false] exists for benchmarking the
    unmemoized baseline (see [bench/planner_bench.ml]). *)

val report : result -> string
(** Human-readable planning report: annotated plan, keys, requests,
    cost. *)
