(** Price lists (Sec. 7).

    Query cost is [C_q = Σ_n C_cpu + C_io + C_net_io], in USD: CPU time ×
    price per minute, local I/O volume × price per GB, transmitted volume
    × price per GB. Defaults follow the paper's calibration: provider
    prices modelled on public cloud listings, data authorities at 3× and
    the user at 10× the provider CPU price (government-backed price lists
    vs. the open market). Individual providers can carry multipliers —
    the savings of Figs. 9-10 come from delegating to cheap providers. *)

type rates = {
  cpu_per_min : float;  (** USD per CPU-minute *)
  io_per_gb : float;  (** USD per GB read/written locally *)
  net_out_per_gb : float;  (** USD per GB sent *)
}

type t

val base_provider_rates : rates

val make :
  ?provider_multipliers:(string * float) list ->
  ?authority_factor:float ->
  ?user_factor:float ->
  unit ->
  t
(** [authority_factor] (default 3.0) and [user_factor] (default 10.0)
    scale the CPU price; multipliers scale a named provider's whole rate
    card (default 1.0). *)

val rates_for : t -> Authz.Subject.t -> rates

val cheapest_provider_factor : t -> float
(** Smallest provider multiplier (useful in reporting). *)

val fingerprint : t -> string
(** Canonical collision-free serialization (see {!Fingerprint}):
    factors bit-exact, multipliers sorted by provider name. Part of the
    plan-cache key — any price change rotates it. *)
