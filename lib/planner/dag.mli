(** Hash-consed plan DAGs.

    A node store keyed by canonical structural fingerprint
    ({!Fingerprint.of_plan} encodings — collision-free, so equal keys
    mean equal shapes by construction). {!intern} rewrites a plan tree
    bottom-up so every structurally identical subtree — across the
    queries of a serve batch, across cached shapes, or within one
    query — becomes one physically shared node. The returned plan is
    [Plan.equal_shape]-identical to the input; only sharing changes.

    Shared nodes are what multi-query optimization acts on: the
    serving layer plans/verifies per distinct key, memoizes sub-plan
    result tables for nodes the store has seen more than once, and
    executes each distinct node once per batch. Occurrence labelling
    caveat: on an interned plan one node may sit at several preorder
    positions, so position consumers must use
    {!Relalg.Plan.child_positions} traversal arithmetic, never
    id-keyed tables (see {!Engine.Exec}). *)

open Relalg

type t

type info = {
  rep : Plan.t;
      (** canonical representative; its children are themselves
          representatives *)
  size : int;  (** tree-equivalent node count of the subtree *)
  crypto_free : bool;
      (** no [Encrypt]/[Decrypt] node and no encrypted-at-rest base
          inside: the subtree's result is independent of its preorder
          position, so results may be shared across positions *)
  mutable occurrences : int;
      (** times the node occurred across all interned plans *)
}

val create : unit -> t

val intern : t -> Plan.t -> Plan.t
(** Hash-cons a plan into the store, returning its maximally shared
    form. Counts one occurrence per subtree encounter. Call only from
    one domain at a time (the serve coordinator): the store is not
    synchronized. *)

val fingerprint : t -> Plan.t -> string
(** Memoized structural fingerprint, byte-identical to
    {!Fingerprint.of_plan}. *)

val find : t -> Plan.t -> info option
val occurrences : t -> Plan.t -> int
val is_shared : t -> Plan.t -> bool
(** A node is shared once the store has seen its shape at least twice
    — the admission test for the sub-plan result cache. *)

val crypto_free : Plan.t -> bool
(** See {!type:info.crypto_free}; exported for tests. *)

type stats = {
  plans : int;
  nodes : int;
  occurrences : int;
  shared_nodes : int;
  shared_occurrences : int;
      (** subtree materializations saved by sharing *)
}

val stats : t -> stats
val clear : t -> unit
