type t = { backbone_bps : float; client_bps : float }

let make ?(backbone_gbps = 10.0) ?(client_mbps = 100.0) () =
  { backbone_bps = backbone_gbps *. 1e9; client_bps = client_mbps *. 1e6 }

let is_user (s : Authz.Subject.t) = s.Authz.Subject.role = Authz.Subject.User

let bandwidth_bps t a b =
  if is_user a || is_user b then t.client_bps else t.backbone_bps

let transfer_seconds t a b bytes =
  if Authz.Subject.equal a b then 0.0
  else 8.0 *. bytes /. bandwidth_bps t a b

let fingerprint t =
  let buf = Buffer.create 32 in
  Fingerprint.float_field buf t.backbone_bps;
  Fingerprint.float_field buf t.client_bps;
  Buffer.contents buf
