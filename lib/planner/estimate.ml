open Relalg
module Scheme = Mpq_crypto.Scheme

type stats = { card : float; widths : float Attr.Map.t }
type base_stats = string -> stats option

let row_bytes s = Attr.Map.fold (fun _ w acc -> acc +. w) s.widths 0.0
let table_bytes s = s.card *. row_bytes s

let of_widths ~card widths =
  { card;
    widths =
      List.fold_left
        (fun m (n, w) -> Attr.Map.add (Attr.make n) w m)
        Attr.Map.empty widths }

let default_selectivity = function
  | Predicate.Cmp_const (_, (Predicate.Eq | Predicate.Neq), _) -> 0.1
  | Predicate.Cmp_const (_, _, _) -> 1.0 /. 3.0
  | Predicate.Cmp_attr (_, (Predicate.Eq | Predicate.Neq), _) -> 0.1
  | Predicate.Cmp_attr (_, _, _) -> 1.0 /. 3.0
  | Predicate.In_list (_, vs) ->
      Float.min 0.5 (0.05 *. float_of_int (List.length vs))
  | Predicate.Like _ -> 0.05

let predicate_selectivity pred =
  (* clauses multiply; atoms within a clause (disjunction) add, capped *)
  List.fold_left
    (fun acc clause ->
      let s =
        Float.min 1.0
          (List.fold_left (fun a atom -> a +. default_selectivity atom) 0.0
             clause)
      in
      acc *. s)
    1.0 pred

let restrict_widths widths attrs =
  Attr.Map.filter (fun a _ -> Attr.Set.mem a attrs) widths

let annotate ?(scheme_of = fun _ -> Scheme.Det) ~base plan =
  let table = ref Authz.Imap.empty in
  let record n s =
    table := Authz.Imap.add (Plan.id n) s !table;
    s
  in
  let width widths a =
    match Attr.Map.find_opt a widths with Some w -> w | None -> 8.0
  in
  let rec go n =
    let s =
      match Plan.node n with
      | Plan.Base sch -> (
          match base sch.Schema.name with
          | Some s -> s
          | None ->
              (* default: small relation, 8-byte columns *)
              { card = 1000.0;
                widths =
                  List.fold_left
                    (fun m a -> Attr.Map.add a 8.0 m)
                    Attr.Map.empty
                    (Schema.attr_list sch) })
      | Plan.Project (attrs, c) ->
          let cs = go c in
          { cs with widths = restrict_widths cs.widths attrs }
      | Plan.Select (pred, c) ->
          let cs = go c in
          { cs with card = Float.max 1.0 (cs.card *. predicate_selectivity pred) }
      | Plan.Product (l, r) ->
          let ls = go l and rs = go r in
          { card = ls.card *. rs.card;
            widths = Attr.Map.union (fun _ a _ -> Some a) ls.widths rs.widths }
      | Plan.Join (pred, l, r) ->
          let ls = go l and rs = go r in
          let pairs = List.length (Predicate.attr_pairs pred) in
          (* classic equi-join estimate: |L|*|R| / max(|L|,|R|) per pair *)
          let card =
            if pairs > 0 then
              Float.max 1.0
                (ls.card *. rs.card /. Float.max ls.card rs.card)
            else ls.card *. rs.card *. predicate_selectivity pred
          in
          { card;
            widths = Attr.Map.union (fun _ a _ -> Some a) ls.widths rs.widths }
      | Plan.Group_by (keys, aggs, c) ->
          let cs = go c in
          (* distinct groups: a tenth of the input, floored *)
          let card = Float.max 1.0 (cs.card /. 10.0) in
          let kept =
            List.fold_left
              (fun acc (a : Aggregate.t) -> Attr.Set.add a.Aggregate.output acc)
              keys aggs
          in
          let widths =
            Attr.Set.fold
              (fun a m -> Attr.Map.add a (width cs.widths a) m)
              kept Attr.Map.empty
          in
          { card; widths }
      | Plan.Udf (_, inputs, output, c) ->
          let cs = go c in
          let dropped = Attr.Set.remove output inputs in
          { cs with
            widths =
              Attr.Map.filter (fun a _ -> not (Attr.Set.mem a dropped)) cs.widths }
      | Plan.Order_by (_, c) -> go c
      | Plan.Limit (n, c) ->
          let cs = go c in
          { cs with card = Float.min cs.card (float_of_int n) }
      | Plan.Encrypt (attrs, c) ->
          let cs = go c in
          let widths =
            Attr.Set.fold
              (fun a m ->
                Attr.Map.add a
                  (width cs.widths a *. Scheme.expansion (scheme_of a))
                  m)
              attrs cs.widths
          in
          { cs with widths }
      | Plan.Decrypt (attrs, c) ->
          let cs = go c in
          let widths =
            Attr.Set.fold
              (fun a m ->
                Attr.Map.add a
                  (width cs.widths a /. Scheme.expansion (scheme_of a))
                  m)
              attrs cs.widths
          in
          { cs with widths }
    in
    record n s
  in
  ignore (go plan);
  !table
