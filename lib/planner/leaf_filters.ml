open Relalg

let const_only pred =
  List.for_all
    (fun clause ->
      List.for_all
        (function
          | Predicate.Cmp_const _ | Predicate.In_list _ | Predicate.Like _ ->
              true
          | Predicate.Cmp_attr _ -> false)
        clause)
    pred

let rec source_relation plan =
  match Plan.node plan with
  | Plan.Base s -> Some s.Schema.name
  | Plan.Project (_, c) -> source_relation c
  | _ -> None

let foldable plan =
  match Plan.node plan with
  | Plan.Select (pred, c) -> const_only pred && source_relation c <> None
  | _ -> false

let fold plan =
  let factors = ref [] in
  let note rel sel =
    let prev = try List.assoc rel !factors with Not_found -> 1.0 in
    factors := (rel, prev *. sel) :: List.remove_assoc rel !factors
  in
  let rec go p =
    match Plan.node p with
    | Plan.Base s -> Plan.base s
    | Plan.Select (pred, c) when foldable p ->
        (match source_relation c with
        | Some rel ->
            note rel (Estimate.predicate_selectivity pred)
        | None -> ());
        go c
    | Plan.Project (a, c) -> Plan.project a (go c)
    | Plan.Select (pred, c) -> Plan.select pred (go c)
    | Plan.Product (l, r) -> Plan.product (go l) (go r)
    | Plan.Join (pred, l, r) -> Plan.join pred (go l) (go r)
    | Plan.Group_by (k, ag, c) -> Plan.group_by k ag (go c)
    | Plan.Udf (n, i, o, c) -> Plan.udf n i o (go c)
    | Plan.Order_by (k, c) -> Plan.order_by k (go c)
    | Plan.Limit (n, c) -> Plan.limit n (go c)
    | Plan.Encrypt (a, c) -> Plan.encrypt a (go c)
    | Plan.Decrypt (a, c) -> Plan.decrypt a (go c)
  in
  let plan' = go plan in
  (plan', !factors)

let scale_stats base factors name =
  match base name with
  | None -> None
  | Some s ->
      let f = try List.assoc name factors with Not_found -> 1.0 in
      Some { s with Estimate.card = Float.max 1.0 (s.Estimate.card *. f) }
