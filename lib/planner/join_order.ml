open Relalg

let max_blocks = 12

(* stats for a subtree, via the shared estimator *)
let stats_of ~base plan =
  Authz.Imap.find (Plan.id plan) (Estimate.annotate ~base plan)

let clause_attrs clause =
  Attr.Set.of_list
    (List.concat_map
       (function
         | Predicate.Cmp_const (a, _, _)
         | Predicate.In_list (a, _)
         | Predicate.Like (a, _) ->
             [ a ]
         | Predicate.Cmp_attr (a, _, b) -> [ a; b ])
       clause)

let clause_has_pair clause =
  List.exists (function Predicate.Cmp_attr _ -> true | _ -> false) clause

(* flatten a maximal join region into blocks + the union of clauses *)
let rec blocks_of plan =
  match Plan.node plan with
  | Plan.Join (pred, l, r) ->
      let bl, cl = blocks_of l and br, cr = blocks_of r in
      (bl @ br, cl @ cr @ pred)
  | _ -> ([ plan ], [])

let rec reorder ~base plan =
  match Plan.node plan with
  | Plan.Join _ -> (
      let blocks, clauses = blocks_of plan in
      let blocks = List.map (reorder ~base) blocks in
      if List.length blocks < 2 || List.length blocks > max_blocks then
        rebuild_untouched ~base plan
      else dp ~base blocks clauses)
  | Plan.Base s -> Plan.base s
  | Plan.Project (a, c) -> Plan.project a (reorder ~base c)
  | Plan.Select (p, c) -> Plan.select p (reorder ~base c)
  | Plan.Product (l, r) -> Plan.product (reorder ~base l) (reorder ~base r)
  | Plan.Group_by (k, ag, c) -> Plan.group_by k ag (reorder ~base c)
  | Plan.Udf (n, i, o, c) -> Plan.udf n i o (reorder ~base c)
  | Plan.Order_by (k, c) -> Plan.order_by k (reorder ~base c)
  | Plan.Limit (n, c) -> Plan.limit n (reorder ~base c)
  | Plan.Encrypt (a, c) -> Plan.encrypt a (reorder ~base c)
  | Plan.Decrypt (a, c) -> Plan.decrypt a (reorder ~base c)

and rebuild_untouched ~base plan =
  match Plan.node plan with
  | Plan.Join (p, l, r) -> Plan.join p (reorder ~base l) (reorder ~base r)
  | _ -> assert false

(* System R DP, left-deep, over <= max_blocks inputs. State per subset
   bitmask: best (cost, plan, card, applied clause indexes). *)
and dp ~base blocks clauses =
  let n = List.length blocks in
  let block = Array.of_list blocks in
  let bstats = Array.map (fun b -> stats_of ~base b) block in
  let bschema = Array.map Plan.schema block in
  let nclauses = List.length clauses in
  let clause = Array.of_list clauses in
  let cattrs = Array.map clause_attrs clause in
  (* subset -> (cost, plan, card, applied bitmask) *)
  let best : (float * Plan.t * float * int) option array =
    Array.make (1 lsl n) None
  in
  for i = 0 to n - 1 do
    best.(1 lsl i) <- Some (0.0, block.(i), bstats.(i).Estimate.card, 0)
  done;
  let schema_of_mask mask =
    let s = ref Attr.Set.empty in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then s := Attr.Set.union !s bschema.(i)
    done;
    !s
  in
  let consider mask =
    (* extend every strict subset missing exactly one block *)
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 && mask <> 1 lsl i then begin
        let rest = mask lxor (1 lsl i) in
        match best.(rest) with
        | None -> ()
        | Some (cost, left, lcard, applied) ->
            let combined = Attr.Set.union (schema_of_mask rest) bschema.(i) in
            (* clauses that become applicable here *)
            let newly =
              List.filter
                (fun k ->
                  applied land (1 lsl k) = 0
                  && Attr.Set.subset cattrs.(k) combined)
                (List.init nclauses Fun.id)
            in
            let pair_clauses, filter_clauses =
              List.partition (fun k -> clause_has_pair clause.(k)) newly
            in
            let rcard = bstats.(i).Estimate.card in
            let card =
              if pair_clauses <> [] then
                Float.max 1.0 (lcard *. rcard /. Float.max lcard rcard)
              else lcard *. rcard
            in
            (* residual constant clauses reduce cardinality *)
            let card =
              List.fold_left
                (fun c k ->
                  Float.max 1.0
                    (c *. Estimate.predicate_selectivity [ clause.(k) ]))
                card filter_clauses
            in
            let node () =
              let right = block.(i) in
              let joined =
                if pair_clauses <> [] then
                  Plan.join (List.map (fun k -> clause.(k)) pair_clauses) left
                    right
                else Plan.product left right
              in
              if filter_clauses = [] then joined
              else
                Plan.select (List.map (fun k -> clause.(k)) filter_clauses)
                  joined
            in
            let cost' = cost +. card in
            let applied' =
              List.fold_left (fun a k -> a lor (1 lsl k)) applied newly
            in
            (match best.(mask) with
            | Some (c, _, _, _) when c <= cost' -> ()
            | _ -> best.(mask) <- Some (cost', node (), card, applied'))
      end
    done
  in
  for mask = 1 to (1 lsl n) - 1 do
    consider mask
  done;
  match best.((1 lsl n) - 1) with
  | Some (_, plan, _, applied) ->
      (* any clause never applied (attrs outside all blocks — impossible
         for well-formed regions) would be dropped; guard: *)
      let leftover =
        List.filter
          (fun k -> applied land (1 lsl k) = 0)
          (List.init nclauses Fun.id)
      in
      if leftover = [] then plan
      else Plan.select (List.map (fun k -> clause.(k)) leftover) plan
  | None -> assert false

let cout ~base plan =
  let stats = Estimate.annotate ~base plan in
  Plan.fold
    (fun acc n ->
      match Plan.node n with
      | Plan.Join _ | Plan.Product _ ->
          acc +. (Authz.Imap.find (Plan.id n) stats).Estimate.card
      | _ -> acc)
    0.0 plan
