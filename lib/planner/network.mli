(** Network configuration (Sec. 7).

    The paper's testbed connects authorities and providers with 10 Gbps
    links, and the client with a 100 Mbps link. Bandwidth drives the
    performance estimate (transfer time), which the user can cap with a
    threshold; monetary network cost is bandwidth-independent (volume ×
    egress price, see {!Pricing}). *)

type t

val make : ?backbone_gbps:float -> ?client_mbps:float -> unit -> t
(** Defaults: 10 Gbps backbone, 100 Mbps client link. *)

val bandwidth_bps : t -> Authz.Subject.t -> Authz.Subject.t -> float
(** Bottleneck bandwidth between two subjects (client link applies as
    soon as a user is an endpoint). *)

val transfer_seconds : t -> Authz.Subject.t -> Authz.Subject.t -> float -> float
(** [transfer_seconds t a b bytes]. Zero when [a = b]. *)

val fingerprint : t -> string
(** Canonical collision-free serialization of the two bandwidths (see
    {!Fingerprint}). Part of the plan-cache key. *)
