(** Classical plan normalization.

    The paper assumes plans "produced with classical optimization
    criteria and, in particular, projections pushed down to avoid
    retrieving data that are not of interest" (Sec. 1). This pass
    supplies that normal form for arbitrary plans:

    - {b selection pushdown}: conjunct clauses of a selection move below
      joins/products into the side covering their attributes (and
      through projections); adjacent selections merge;
    - {b projection pruning}: every subtree is narrowed to the
      attributes its ancestors actually consume, with projections
      re-inserted directly over base relations.

    Both transformations preserve the computed relation (bag
    semantics). Crypto operators are left untouched — normalization is
    meant for original plans, before authorization-aware planning. *)

open Relalg

val push_selections : Plan.t -> Plan.t
val prune_projections : Plan.t -> Plan.t

val normalize : Plan.t -> Plan.t
(** [prune_projections ∘ push_selections]. *)
