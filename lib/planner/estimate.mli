(** Cardinality and size estimation.

    A textbook System-R-style estimator standing in for the PostgreSQL
    optimizer the paper reads its estimates from (DESIGN.md documents the
    substitution). Tracks per-attribute byte widths so that encryption's
    ciphertext expansion (per-scheme factors) shows up in transferred
    volumes. *)

open Relalg

type stats = {
  card : float;  (** estimated row count *)
  widths : float Attr.Map.t;  (** average bytes per attribute *)
}

type base_stats = string -> stats option
(** Statistics of base relations by name. *)

val row_bytes : stats -> float
val table_bytes : stats -> float

val of_widths : card:float -> (string * float) list -> stats

val default_selectivity : Predicate.atom -> float
(** 0.1 for equality with a constant, 1/3 for ranges, 0.05 for LIKE,
    0.25 for IN. *)

val predicate_selectivity : Predicate.t -> float
(** CNF combination: clauses multiply, atoms of a disjunction add
    (capped at 1). *)

val annotate :
  ?scheme_of:(Attr.t -> Mpq_crypto.Scheme.t) ->
  base:base_stats ->
  Plan.t ->
  stats Authz.Imap.t
(** Per-node output statistics. [scheme_of] determines the expansion
    factor applied by [Encrypt] nodes (default: deterministic). *)
