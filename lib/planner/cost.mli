(** Economic cost model (Sec. 7).

    [C_q = Σ_n C_cpu + C_io + C_net_io]: per node, CPU time × the
    executor's per-minute price, locally processed volume × the I/O
    price, and — on every edge whose endpoints have different executors —
    transferred volume × the sender's egress price. Encryption and
    decryption operators are charged CPU by scheme (Paillier orders of
    magnitude above symmetric schemes) and change transferred volumes
    through ciphertext expansion. *)

open Relalg

type breakdown = {
  cpu : float;
  io : float;
  net : float;
  seconds : float;  (** total work time (CPU + transfer, summed) *)
  latency : float;
      (** critical-path completion time: parallel branches overlap,
          transfers on the slow client link dominate — the quantity the
          paper's performance threshold bounds (Sec. 7) *)
  per_subject : (Authz.Subject.t * float) list;  (** USD by participant *)
}

val total : breakdown -> float
val zero : breakdown
val add : breakdown -> breakdown -> breakdown

val cpu_minutes :
  scheme_of:(Attr.t -> Mpq_crypto.Scheme.t) ->
  node:Plan.t ->
  child_stats:Estimate.stats list ->
  out_stats:Estimate.stats ->
  float
(** CPU minutes to execute one node (crypto operators are charged by
    volume and scheme; udfs at 100× the relational per-tuple cost). *)

val of_extended :
  pricing:Pricing.t ->
  network:Network.t ->
  base:Estimate.base_stats ->
  scheme_of:(Attr.t -> Mpq_crypto.Scheme.t) ->
  Authz.Extend.t ->
  breakdown
(** Exact cost of a minimally extended plan under a given assignment. *)

val pp : Format.formatter -> breakdown -> unit
