open Relalg
module Scheme = Mpq_crypto.Scheme

type entry = {
  cost : float;
  enc : (float * float) Attr.Map.t;
      (* encrypted attrs in the node's output, with the (MB, cpu rate)
         at which their encryption was charged — the basis for lazily
         pricing scheme upgrades when an operation later computes on the
         ciphertext *)
  choice : (int * Authz.Subject.t) list;  (* assignments in the subtree *)
}

let width_of (s : Estimate.stats) a =
  match Attr.Map.find_opt a s.Estimate.widths with Some w -> w | None -> 8.0

let solve ?view_cache ~candidates ~policy ~config ~pricing ~stats ~scheme_of
    plan =
  (* Subject views depend only on the policy; a caller planning several
     DP rounds over the same policy shares one cache across them instead
     of re-deriving every view per round. *)
  let view_cache =
    match view_cache with Some tbl -> tbl | None -> Hashtbl.create 8
  in
  let view s =
    let k = Authz.Subject.name s in
    match Hashtbl.find_opt view_cache k with
    | Some v ->
        Obs.incr "planner.dp.view_cache_hits";
        v
    | None ->
        Obs.incr "planner.dp.view_cache_misses";
        let v = Authz.Authorization.view policy s in
        Hashtbl.add view_cache k v;
        v
  in
  let enc_view s = (view s).Authz.Authorization.enc in
  let stat_of n = Authz.Imap.find (Plan.id n) stats in
  let rates s = Pricing.rates_for pricing s in
  (* crypto cpu minutes to transform [attrs] of a table with [st] stats *)
  let crypto_minutes st attrs =
    Attr.Set.fold
      (fun a acc ->
        let mb = st.Estimate.card *. width_of st a /. 1e6 in
        acc +. (Scheme.cpu_cost_per_mb (scheme_of a) *. mb))
      attrs 0.0
  in
  let bytes_with_enc st enc =
    st.Estimate.card
    *. Attr.Map.fold
         (fun a w acc ->
           if Attr.Map.mem a enc then
             acc +. (w *. Scheme.expansion (scheme_of a))
           else acc +. w)
         st.Estimate.widths 0.0
  in
  (* returns the per-candidate table for node n *)
  let rec options n : (Authz.Subject.t * entry) list =
    Obs.incr "planner.dp.nodes";
    let subjects =
      if Authz.Candidates.is_source_side n then
        [ Authz.Candidates.owner_of_source n ]
      else
        match
          Authz.Subject.Set.elements (Authz.Candidates.candidates_of candidates n)
        with
        | [] ->
            invalid_arg
              (Printf.sprintf "Assign: node %d (%s) has no candidate"
                 (Plan.id n) (Plan.operator_name n))
        | l -> l
    in
    let child_tables = List.map (fun c -> (c, options c)) (Plan.children n) in
    let ap = Authz.Opreq.plaintext_attrs config n in
    let demands = Authz.Opreq.capability_demands n in
    (* aggregate operands (outside the keys) are decrypted when the
       executor holds plaintext rights — mirrors Extend's rule *)
    let agg_operands =
      match Plan.node n with
      | Plan.Group_by (keys, aggs, _) ->
          let ops =
            List.fold_left
              (fun acc (agg : Aggregate.t) ->
                match Aggregate.operand agg with
                | Some a -> Attr.Set.add a acc
                | None -> acc)
              Attr.Set.empty aggs
          in
          Attr.Set.diff ops keys
      | _ -> Attr.Set.empty
    in
    List.map
      (fun s ->
        let r_s = rates s in
        let ap =
          Attr.Set.union ap
            (Attr.Set.inter agg_operands (view s).Authz.Authorization.plain)
        in
        (* per child: cheapest executor including edge costs *)
        let picked =
          List.map
            (fun (c, table) ->
              let cst = stat_of c in
              let schema_c = Plan.schema c in
              let best =
                List.fold_left
                  (fun best (sc, (e : entry)) ->
                    let r_sc = rates sc in
                    let to_encrypt =
                      Attr.Set.filter
                        (fun a -> not (Attr.Map.mem a e.enc))
                        (Attr.Set.inter (enc_view s) schema_c)
                    in
                    let enc_after =
                      Attr.Set.fold
                        (fun a m ->
                          let mb =
                            cst.Estimate.card *. width_of cst a /. 1e6
                          in
                          Attr.Map.add a (mb, r_sc.Pricing.cpu_per_min) m)
                        to_encrypt e.enc
                    in
                    let to_decrypt =
                      Attr.Set.filter
                        (fun a -> Attr.Map.mem a enc_after)
                        ap
                    in
                    let enc_final =
                      Attr.Set.fold Attr.Map.remove to_decrypt enc_after
                    in
                    let enc_cost =
                      crypto_minutes cst to_encrypt *. r_sc.Pricing.cpu_per_min
                    in
                    (* Evaluating n's operation over ciphertext commits
                       the attribute to a scheme supporting it; charge
                       the gap between that scheme and the symmetric
                       baseline, at the sender performing the
                       encryption (Paillier-grade aggregation must not
                       delegate blindly). *)
                    let surcharge =
                      List.fold_left
                        (fun acc (a, cap) ->
                          match Attr.Map.find_opt a enc_final with
                          | Some (paid_mb, paid_rate)
                            when Attr.Set.mem a schema_c -> (
                              match Scheme.strongest_supporting [ cap ] with
                              | None -> acc +. 1e6
                              | Some sch ->
                                  let gap =
                                    Float.max 0.0
                                      (Scheme.cpu_cost_per_mb sch
                                      -. Scheme.cpu_cost_per_mb Scheme.Det)
                                  in
                                  acc +. (gap *. paid_mb *. paid_rate))
                          | _ -> acc)
                        0.0 demands
                    in
                    let dec_cost =
                      crypto_minutes cst to_decrypt *. r_s.Pricing.cpu_per_min
                    in
                    let transfer =
                      if Authz.Subject.equal sc s then 0.0
                      else
                        bytes_with_enc cst enc_after /. 1e9
                        *. r_sc.Pricing.net_out_per_gb
                    in
                    let cost =
                      e.cost +. enc_cost +. dec_cost +. transfer +. surcharge
                    in
                    match best with
                    | Some (bc, _, _) when bc <= cost -> best
                    | _ -> Some (cost, enc_final, e.choice))
                  None table
              in
              match best with
              | Some (cost, enc, choice) -> (cost, enc, choice)
              | None -> assert false)
            child_tables
        in
        let child_cost = List.fold_left (fun a (c, _, _) -> a +. c) 0.0 picked in
        let child_enc =
          List.fold_left
            (fun a (_, e, _) ->
              Attr.Map.union (fun _ x _ -> Some x) a e)
            Attr.Map.empty picked
        in
        let out = stat_of n in
        let cpu =
          Cost.cpu_minutes ~scheme_of ~node:n
            ~child_stats:(List.map (fun (c, _) -> stat_of c) child_tables)
            ~out_stats:out
        in
        let io_bytes =
          Estimate.table_bytes out
          +. List.fold_left
               (fun a (c, _) -> a +. Estimate.table_bytes (stat_of c))
               0.0 child_tables
        in
        let exec_cost =
          (cpu *. r_s.Pricing.cpu_per_min)
          +. (io_bytes /. 1e9 *. r_s.Pricing.io_per_gb)
        in
        let enc_out =
          Attr.Map.filter (fun a _ -> Attr.Set.mem a (Plan.schema n)) child_enc
        in
        let choice =
          (if Authz.Candidates.is_source_side n then []
           else [ (Plan.id n, s) ])
          @ List.concat_map (fun (_, _, ch) -> ch) picked
        in
        (s, { cost = child_cost +. exec_cost; enc = enc_out; choice }))
      subjects
  in
  options plan

let best_entry table =
  match table with
  | [] -> invalid_arg "Assign: empty candidate table"
  | first :: rest ->
      List.fold_left
        (fun (bs, (be : entry)) (s, e) ->
          if e.cost < be.cost then (s, e) else (bs, be))
        first rest

let optimize ?view_cache ~candidates ~policy ~config ~pricing ~stats ~scheme_of
    plan =
  let table =
    solve ?view_cache ~candidates ~policy ~config ~pricing ~stats ~scheme_of
      plan
  in
  let _, e = best_entry table in
  List.fold_left
    (fun acc (id, s) -> Authz.Imap.add id s acc)
    Authz.Imap.empty e.choice

let dp_cost ?view_cache ~candidates ~policy ~config ~pricing ~stats ~scheme_of
    plan =
  let table =
    solve ?view_cache ~candidates ~policy ~config ~pricing ~stats ~scheme_of
      plan
  in
  (snd (best_entry table)).cost

let enumerate candidates plan =
  let assignable =
    List.filter
      (fun n -> not (Authz.Candidates.is_source_side n))
      (Plan.nodes plan)
  in
  List.fold_left
    (fun acc n ->
      let cands =
        Authz.Subject.Set.elements
          (Authz.Candidates.candidates_of candidates n)
      in
      List.concat_map
        (fun partial ->
          List.map (fun s -> Authz.Imap.add (Plan.id n) s partial) cands)
        acc)
    [ Authz.Imap.empty ] assignable
