(** Classical join-order optimization (System R style).

    The paper assumes input plans "produced with classical optimization
    criteria" (Sec. 1); our SQL front end, like any naive translator,
    joins relations in FROM order. This pass rewrites every maximal
    region of conjunctive equi-joins into the cheapest left-deep order
    under the C_out metric (sum of intermediate cardinalities), using
    the same cardinality model as {!Estimate}. Join predicates are placed
    at the earliest join where both sides are available; disconnected
    regions fall back to cartesian products, ordered last. *)

open Relalg

val reorder : base:Estimate.base_stats -> Plan.t -> Plan.t
(** Rewrites join regions; every other operator is preserved in place.
    The result computes the same relation (joins are commutative and
    associative over bags). Regions with more than 12 inputs are left
    untouched (exhaustive DP would blow up). *)

val cout : base:Estimate.base_stats -> Plan.t -> float
(** The C_out objective: the sum of estimated cardinalities of all join
    and product nodes (used by tests and the ablation bench). *)
