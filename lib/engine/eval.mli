(** Predicate evaluation over rows, including over ciphertext.

    Comparisons between two ciphertexts require the same scheme and key
    cluster: deterministic encryption supports (in)equality, OPE supports
    ordering. A comparison between a ciphertext and a plaintext constant
    encrypts the constant on the fly under the ciphertext's cluster —
    modelling dispatched conditions "formulated on encrypted values"
    (Sec. 5) — and therefore needs a crypto context. SQL three-valued
    logic is approximated: any comparison involving [Null] is false. *)

open Relalg

exception Eval_error of string

val compare_values :
  ?ctx:Enc_exec.ctx -> Predicate.op -> Value.t -> Value.t -> bool

val atom :
  ?ctx:Enc_exec.ctx -> Table.t -> Value.t array -> Predicate.atom -> bool

val predicate :
  ?ctx:Enc_exec.ctx -> Table.t -> Value.t array -> Predicate.t -> bool
(** CNF evaluation: every clause must have a true atom. *)
