open Relalg

type event = {
  node_id : int;
  kind : [ `Transfer of Authz.Subject.t | `Consistency ];
  detail : string;
}

type report = { events : event list; violations : event list }

exception Violation of event

let check_consistency (profile : Authz.Profile.t) table =
  let column_kind a =
    let vals =
      List.filter_map
        (fun row ->
          match Table.value table row a with
          | Value.Null -> None
          | v -> Some (Value.is_encrypted v))
        (Table.rows table)
    in
    match vals with
    | [] -> `Unknown
    | first :: rest ->
        if List.for_all (Bool.equal first) rest then
          if first then `Encrypted else `Plain
        else `Mixed
  in
  let bad =
    List.filter_map
      (fun a ->
        let expected_enc = Attr.Set.mem a profile.Authz.Profile.ve in
        match column_kind a with
        | `Unknown -> None
        | `Mixed -> Some (Attr.name a ^ " mixed plaintext/ciphertext")
        | `Encrypted when not expected_enc ->
            Some (Attr.name a ^ " encrypted but profiled plaintext")
        | `Plain when expected_enc ->
            Some (Attr.name a ^ " plaintext but profiled encrypted")
        | _ -> None)
      (Table.attrs table)
  in
  match bad with [] -> None | msgs -> Some (String.concat "; " msgs)

let run ?(enforce = true) ?pool ~policy ctx (ext : Authz.Extend.t) =
  let events = ref [] and violations = ref [] in
  let emit ~bad ev =
    Obs.incr "monitor.checks";
    if bad then Obs.incr "monitor.violations";
    events := ev :: !events;
    if bad then
      if enforce then raise (Violation ev) else violations := ev :: !violations
  in
  let executor n = Authz.Imap.find_opt (Plan.id n) ext.Authz.Extend.assignment in
  let profile_of n = Hashtbl.find_opt ext.Authz.Extend.profiles (Plan.id n) in
  let parent_of =
    (* child id -> parent node *)
    let tbl = Hashtbl.create 32 in
    Plan.iter
      (fun n -> List.iter (fun c -> Hashtbl.replace tbl (Plan.id c) n) (Plan.children n))
      ext.Authz.Extend.plan;
    fun n -> Hashtbl.find_opt tbl (Plan.id n)
  in
  let hook node table =
    (match profile_of node with
    | Some p -> (
        match check_consistency p table with
        | Some detail ->
            emit ~bad:true { node_id = Plan.id node; kind = `Consistency; detail }
        | None -> ())
    | None -> ());
    match parent_of node with
    | None -> ()
    | Some parent -> (
        match (executor node, executor parent, profile_of node) with
        | Some s_from, Some s_to, Some p when not (Authz.Subject.equal s_from s_to)
          ->
            let view = Authz.Authorization.view policy s_to in
            let ok = Authz.Authorized.is_authorized view p in
            let detail =
              Printf.sprintf "%s -> %s: %s"
                (Authz.Subject.name s_from)
                (Authz.Subject.name s_to)
                (if ok then "authorized"
                 else
                   match Authz.Authorized.check view p with
                   | Error v ->
                       Format.asprintf "%a" Authz.Authorized.pp_violation v
                   | Ok () -> "authorized")
            in
            emit ~bad:(not ok)
              { node_id = Plan.id node; kind = `Transfer s_to; detail }
        | _ -> ())
  in
  let table =
    Obs.with_span "engine.monitor" (fun () ->
        Exec.run_with_hook ?pool ctx ~hook ext.Authz.Extend.plan)
  in
  (table, { events = List.rev !events; violations = List.rev !violations })
